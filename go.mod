module mtprefetch

go 1.22
