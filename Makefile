GO ?= go

.PHONY: check build test vet race bench bench-parallel

# The full gate used before committing: vet, build, race-enabled tests
# (including the scaled-down parallel-harness sweep; see harness_test.go).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Records the parallel harness's wall-clock scaling: per-worker-count
# sweep times plus the headline speedup-j4 metric.
bench-parallel:
	$(GO) test -bench='Sweep' -run=^$$ -benchtime=1x .
