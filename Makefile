GO ?= go

.PHONY: check build test vet race chaos bench bench-parallel bench-core bench-shards bench-alloc pfreport cpistack spans

# The full gate used before committing: vet, build, race-enabled tests
# (including the scaled-down parallel-harness sweep; see harness_test.go),
# then the fault-injection suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) chaos

# Fault-injection suite: injected livelocks, dropped completions, and
# corrupted stride tables must be caught by the watchdog / invariant
# checker (internal/faults); a poisoned run must degrade to ERR cells
# without disturbing its siblings (internal/harness); and the result
# store must quarantine corruption, survive torn writes and kill-9,
# retry transient faults to byte-identical output, and drain gracefully
# (internal/store, internal/faults, internal/harness).
chaos:
	$(GO) test -timeout 10m -run 'Chaos|Stalled|Dropped|Corrupt|CleanRun|Poisoned|CrashDump|Taxonomy|Store|Torn|Quarantine|Resume|Flake|Retry|Drain|RunTimeout|Sanitize' \
		./internal/faults/... ./internal/harness/... ./internal/store/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Prefetch attribution demo: run the GS-table sweep with per-(source, PC)
# lifecycle attribution enabled, then render the per-source summary and
# per-PC breakdown with cmd/pfstat. Leaves the raw JSONL in
# pfreport.jsonl for further post-processing (e.g. pfstat -run REGEX).
pfreport:
	$(GO) run ./cmd/mtpref -waves 1 -pfreport pfreport.jsonl run gstable > /dev/null
	$(GO) run ./cmd/pfstat -bypc pfreport.jsonl

# Cycle-accounting demo: run the GS-table sweep with CPI stacks enabled,
# then render the per-run breakdown (each bucket's share of all
# core-cycles) with cmd/cpistat. Leaves the raw JSONL in cpistack.jsonl
# for further post-processing (e.g. cpistat -bycore, or the epoch time
# series under the "cpiepoch"/"cpitol" records).
cpistack:
	$(GO) run ./cmd/mtpref -waves 1 -cpistack cpistack.jsonl run gstable > /dev/null
	$(GO) run ./cmd/cpistat cpistack.jsonl

# Span-tracing demo: run the GS-table sweep with request span sampling
# enabled, then render the per-source latency waterfall (where each
# sampled request's end-to-end cycles went: MRQ, NoC, DRAM queueing,
# DRAM service, response NoC) with cmd/spanstat. Leaves the raw JSONL in
# spans.jsonl for further post-processing (e.g. spanstat -byrun).
spans:
	$(GO) run ./cmd/mtpref -waves 1 -spans spans.jsonl run gstable > /dev/null
	$(GO) run ./cmd/spanstat spans.jsonl

# Records the parallel harness's wall-clock scaling: per-worker-count
# sweep times plus the headline speedup-j4 metric.
bench-parallel:
	$(GO) test -bench='Sweep' -run=^$$ -benchtime=1x .

# Core-loop benchmarks, archived as BENCH_core.json: absolute simulation
# rate (cycles/s), allocation counts, the fraction of cycles the
# event-driven skipper elided, and the paired skip-vs-noskip wall-clock
# speedup per memory-intensive benchmark. Override BENCHTIME=1x for a
# CI smoke run; the default gives stable ratios on an idle machine.
BENCHTIME ?= 3x
bench-core:
	$(GO) test -bench='CoreRun|CoreSkipSpeedup|CoreShardSpeedup' -benchmem -run=^$$ -benchtime=$(BENCHTIME) . > bench_core.tmp
	$(GO) run ./cmd/benchjson < bench_core.tmp > BENCH_core.json
	@rm bench_core.tmp
	@echo wrote BENCH_core.json

# Sharded-stepping smoke: just the core-sharding benchmarks (serial vs
# 4-shard rate and the paired speedup), archived as BENCH_shards.json.
# On a many-core host the speedup metric is the headline; on a
# scarce-CPU host it records the barrier overhead trajectory instead.
bench-shards:
	$(GO) test -bench='CoreRunSharded|CoreShardSpeedup' -benchmem -run=^$$ -benchtime=$(BENCHTIME) . > bench_shards.tmp
	$(GO) run ./cmd/benchjson < bench_shards.tmp > BENCH_shards.json
	@rm bench_shards.tmp
	@echo wrote BENCH_shards.json

# GC-pressure gate, archived as BENCH_alloc.json: allocs/op, bytes/op
# and cycles/s per workload with observability attached and detached.
# benchjson compares each result against the committed per-benchmark
# budgets in ci/alloc_budget.json and fails (after writing the JSON, so
# the artifact survives) when a budget is exceeded — allocation-rate
# regressions in the steady-state loop break the build instead of
# silently eroding sweep throughput.
bench-alloc:
	$(GO) test -bench='CoreAlloc' -benchmem -run=^$$ -benchtime=$(BENCHTIME) . > bench_alloc.tmp
	$(GO) run ./cmd/benchjson -budget ci/alloc_budget.json < bench_alloc.tmp > BENCH_alloc.json
	@rm bench_alloc.tmp
	@echo wrote BENCH_alloc.json
