GO ?= go

.PHONY: check build test vet race bench

# The full gate used before committing: vet, build, race-enabled tests.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
