package mtprefetch_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mtprefetch/internal/core"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/workload"
)

// Core-loop benchmarks: unlike the experiment benchmarks above, these
// time raw core.Run invocations so the simulator's per-cycle cost and
// the event-driven cycle-skipping win are visible in isolation.
// `make bench-core` runs them and converts the output to BENCH_core.json
// via cmd/benchjson.

// coreBenchSpec scales a benchmark to two occupancy waves per core, the
// same shape the unit tests and the harness default to.
func coreBenchSpec(b *testing.B, name string) *workload.Spec {
	b.Helper()
	s := workload.ByName(name)
	if s == nil {
		b.Fatalf("unknown benchmark %s", name)
	}
	target := 14 * s.MaxBlocksPerCore * 2
	return s.Scaled(s.Blocks / target)
}

// benchCoreRun times complete simulations of one benchmark, reporting
// simulation throughput (cycles/s), how many cycles skipping elided, and
// the CPI stack: each bucket's share of all attributed core-cycles as a
// `cpi%<bucket>` metric, so BENCH_core.json records where the simulated
// machine's cycles went alongside how fast the simulator ran. The huge
// CPIEpoch keeps the epoch machinery out of the timed loop; the
// accounting itself is a handful of array increments per cycle.
func benchCoreRun(b *testing.B, name string, noskip bool) {
	spec := coreBenchSpec(b, name)
	b.ReportAllocs()
	var cycles, skipped uint64
	var buckets [obs.NumBuckets]uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sim, err := core.New(core.Options{Workload: spec, NoCycleSkip: noskip,
			Obs: obs.New(obs.Config{CPIStack: true, CPIEpoch: 1 << 40})})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		skipped += sim.SkippedCycles()
		for bk, v := range sim.CPIStack().Totals() {
			buckets[bk] += v
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(cycles)/elapsed, "cycles/s")
	}
	if cycles > 0 {
		b.ReportMetric(float64(skipped)/float64(cycles)*100, "%skipped")
	}
	var attributed uint64
	for _, v := range buckets {
		attributed += v
	}
	if attributed > 0 {
		for bk, v := range buckets {
			b.ReportMetric(float64(v)/float64(attributed)*100,
				"cpi%"+obs.Bucket(bk).String())
		}
	}
}

// BenchmarkCoreRun covers the full Table III memory-intensive suite,
// with and without cycle skipping, so BENCH_core.json records both the
// absolute simulation rate and the skip win per benchmark.
func BenchmarkCoreRun(b *testing.B) {
	for _, s := range workload.MemoryIntensive() {
		name := s.Name
		b.Run(name+"/skip", func(b *testing.B) { benchCoreRun(b, name, false) })
		b.Run(name+"/noskip", func(b *testing.B) { benchCoreRun(b, name, true) })
	}
}

// benchCoreRunSharded times complete simulations at a fixed core-shard
// count, reporting simulation throughput and the shard count itself as a
// `shards` metric so BENCH_core.json rows are self-describing. Output is
// byte-identical to serial stepping (shard_test.go proves it), so this
// benchmark is purely about the wall-clock trajectory of the sharded
// barrier on the host it runs on.
func benchCoreRunSharded(b *testing.B, name string, shards int) {
	spec := coreBenchSpec(b, name)
	b.ReportAllocs()
	var cycles uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sim, err := core.New(core.Options{Workload: spec, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(cycles)/elapsed, "cycles/s")
	}
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkCoreRunSharded records the sharded-stepping rate at shard
// counts 1 and 4 for two memory-intensive benchmarks. Subnames use /sN
// (no trailing dash) so benchjson's GOMAXPROCS-suffix stripping leaves
// them intact.
func BenchmarkCoreRunSharded(b *testing.B) {
	for _, name := range []string{"mersenne", "stream"} {
		for _, shards := range []int{1, 4} {
			name, shards := name, shards
			b.Run(fmt.Sprintf("%s/s%d", name, shards), func(b *testing.B) {
				benchCoreRunSharded(b, name, shards)
			})
		}
	}
}

// BenchmarkCoreShardSpeedup reports the paired serial-vs-4-shard
// wall-clock ratio per benchmark, mirroring BenchmarkCoreSkipSpeedup.
// On a many-core host this is the headline sharding win; on a scarce-CPU
// host it records the barrier overhead instead — either way the
// trajectory lands in BENCH_core.json.
func BenchmarkCoreShardSpeedup(b *testing.B) {
	for _, name := range []string{"mersenne", "stream"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec := coreBenchSpec(b, name)
			var tSerial, tSharded time.Duration
			for i := 0; i < b.N; i++ {
				for _, shards := range []int{1, 4} {
					runtime.GC() // settle: keep one leg's garbage off the other's clock
					start := time.Now()
					sim, err := core.New(core.Options{Workload: spec, Shards: shards})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sim.Run(); err != nil {
						b.Fatal(err)
					}
					if shards == 1 {
						tSerial += time.Since(start)
					} else {
						tSharded += time.Since(start)
					}
				}
			}
			if tSharded > 0 {
				b.ReportMetric(float64(tSerial)/float64(tSharded), "speedup")
			}
			b.ReportMetric(4, "shards")
		})
	}
}

// benchSkipPair times paired skip/noskip runs of one spec and reports
// the wall-clock ratio (noskip time / skip time) as a `speedup` metric,
// plus the skipped-cycle fraction.
func benchSkipPair(b *testing.B, spec *workload.Spec) {
	var tSkip, tFull time.Duration
	var cycles, skipped uint64
	for i := 0; i < b.N; i++ {
		for _, noskip := range []bool{false, true} {
			o := core.Options{Workload: spec, NoCycleSkip: noskip}
			runtime.GC() // settle: keep one leg's garbage off the other's clock
			start := time.Now()
			sim, err := core.New(o)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				b.Fatal(err)
			}
			if noskip {
				tFull += time.Since(start)
			} else {
				tSkip += time.Since(start)
				cycles += res.Cycles
				skipped += sim.SkippedCycles()
			}
		}
	}
	if tSkip > 0 {
		b.ReportMetric(float64(tFull)/float64(tSkip), "speedup")
	}
	if cycles > 0 {
		b.ReportMetric(float64(skipped)/float64(cycles)*100, "%skipped")
	}
}

// BenchmarkCoreSkipSpeedup reports the headline skip-vs-noskip ratio per
// memory-intensive benchmark at two occupancy points. The default
// two-wave scale keeps the machine busy, so most wall time sits in dense
// cycles and the ratio stays modest; the single-block-per-core `lowocc`
// variant spends most of its cycles machine-wide stalled on memory —
// the regime event-driven skipping exists for — and is where the
// headline speedup is measured.
func BenchmarkCoreSkipSpeedup(b *testing.B) {
	for _, s := range workload.MemoryIntensive() {
		spec := s
		b.Run(spec.Name, func(b *testing.B) {
			benchSkipPair(b, coreBenchSpec(b, spec.Name))
		})
		b.Run(spec.Name+"/lowocc", func(b *testing.B) {
			full := workload.ByName(spec.Name)
			benchSkipPair(b, full.Scaled(full.Blocks/14))
		})
	}
}
