package faults

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mtprefetch/internal/core"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/store"
	"mtprefetch/internal/workload"
)

// storeSpec is a tiny but real run for store round-trips.
func storeSpec(t *testing.T) core.Options {
	t.Helper()
	s := workload.ByName("stream")
	if s == nil {
		t.Fatal("workload suite missing stream")
	}
	return core.Options{Workload: s.Scaled(8)}
}

func storeEntry(t *testing.T, key string, o core.Options) (*store.Entry, string) {
	t.Helper()
	fp, err := store.Fingerprint(key, o)
	if err != nil {
		t.Fatal(err)
	}
	return &store.Entry{
		Key:         key,
		Fingerprint: fp,
		Result:      &core.Result{Benchmark: "stream", Cycles: 777, CPI: 1.25},
		Artifacts:   map[string][]byte{"metrics": []byte("{}\n")},
	}, fp
}

// TestChaosStoreTornWriteNeverServed: a torn commit (crash mid-write)
// must fail typed-transient, must never be served — not by the writing
// store and not by a fresh Open over the same directory — and the slot
// must accept a clean re-commit.
func TestChaosStoreTornWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Inner: store.OSFS(), TornWriteN: 1}
	s, err := store.Open(dir, store.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	e, fp := storeEntry(t, "k", storeSpec(t))
	err = s.Put(e)
	if err == nil {
		t.Fatal("Put succeeded through a torn write")
	}
	if !simerr.IsTransient(err) {
		t.Fatalf("torn-write failure %v is not typed transient", err)
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("torn entry was served by the writing store")
	}
	// A fresh process (Open sweeps tmp/) must not resurrect the torn
	// bytes either.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(fp); ok {
		t.Fatal("torn entry was served after reopen")
	}
	if s2.Len() != 0 {
		t.Fatalf("reopened store indexed %d entries from torn state, want 0", s2.Len())
	}
	// The second write is clean: the slot heals.
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp)
	if !ok || got.Result.Cycles != 777 {
		t.Fatalf("healed commit not served intact: %+v ok=%v", got, ok)
	}
}

// TestChaosStoreWriteAndRenameFaults: ENOSPC-style write failures and
// rename refusals must fail typed-transient without publishing
// anything, and the store must recover on the next clean commit.
func TestChaosStoreWriteAndRenameFaults(t *testing.T) {
	ffs := &FaultFS{Inner: store.OSFS(), FailWriteN: 1, FailRenameN: 1}
	s, err := store.Open(t.TempDir(), store.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	e, fp := storeEntry(t, "k", storeSpec(t))
	if err := s.Put(e); !simerr.IsTransient(err) { // write 1 fails
		t.Fatalf("ENOSPC commit error %v is not typed transient", err)
	}
	if err := s.Put(e); !simerr.IsTransient(err) { // write 2 ok, rename 1 fails
		t.Fatalf("rename commit error %v is not typed transient", err)
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("failed commit's entry was served")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded while commits fail")
	}
	if err := s.Put(e); err != nil { // clean
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after a clean commit")
	}
	if _, ok := s.Get(fp); !ok {
		t.Fatal("clean commit missed")
	}
}

// TestChaosStoreReadCorruptionQuarantined: a bit flipped on the read
// path must be detected by the checksum, quarantined, and served as a
// miss — never as data.
func TestChaosStoreReadCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Inner: store.OSFS()}
	s, err := store.Open(dir, store.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	e, fp := storeEntry(t, "k", storeSpec(t))
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	ffs.CorruptReadN = ffs.Reads() + 1
	if got, ok := s.Get(fp); ok {
		t.Fatalf("corrupted read was served: %+v", got)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
	// The entry was quarantined (conservatively: the store cannot tell a
	// bad disk from a bad read); a re-commit restores service.
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp); !ok {
		t.Fatal("re-committed entry missed after read corruption")
	}
}

// TestChaosStoreKillNineResume simulates SIGKILL mid-commit: committed
// entries plus in-flight tmp garbage on disk. A fresh Open must serve
// exactly the committed entries, byte-identically, and sweep the rest.
func TestChaosStoreKillNineResume(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := storeSpec(t)
	e1, fp1 := storeEntry(t, "k1", o)
	e2, fp2 := storeEntry(t, "k2", o)
	if err := s.Put(e1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(e2); err != nil {
		t.Fatal(err)
	}
	// The kill-9 debris: torn tmp files from in-flight commits.
	for _, name := range []string{"a.1.1.tmp", "b.2.9.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, "tmp", name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("resumed store indexed %d entries, want 2", s2.Len())
	}
	for _, tc := range []struct {
		fp   string
		want *store.Entry
	}{{fp1, e1}, {fp2, e2}} {
		got, ok := s2.Get(tc.fp)
		if !ok {
			t.Fatalf("resumed store missed %s", tc.want.Key)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(tc.want)
		if string(gb) != string(wb) {
			t.Fatalf("resumed entry diverges:\ngot  %s\nwant %s", gb, wb)
		}
	}
	if st := s2.Stats(); st.Quarantined != 0 {
		t.Fatalf("resume quarantined %d clean entries", st.Quarantined)
	}
}

// TestChaosFlakeRunRetriesConverge: a run that transiently aborts must
// fail typed-transient for exactly Fails executions and then produce a
// Result byte-identical to a never-faulted run — retrying perturbs
// nothing.
func TestChaosFlakeRunRetriesConverge(t *testing.T) {
	clean, err := core.Run(storeSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	flake := &FlakeRun{FailCycle: 1000, Fails: 2}
	o := storeSpec(t)
	o.Inject = flake
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := core.Run(o)
		if err == nil {
			t.Fatalf("attempt %d succeeded while the flake was armed", attempt)
		}
		if !simerr.IsTransient(err) {
			t.Fatalf("attempt %d failed non-transiently: %v", attempt, err)
		}
		if !errors.Is(err, simerr.ErrTransient) {
			t.Fatalf("attempt %d error %v does not unwrap to ErrTransient", attempt, err)
		}
	}
	got, err := core.Run(o)
	if err != nil {
		t.Fatalf("post-flake attempt failed: %v", err)
	}
	gb, _ := json.Marshal(got)
	cb, _ := json.Marshal(clean)
	if string(gb) != string(cb) {
		t.Fatalf("retried run diverges from the fault-free run:\ngot  %s\nwant %s", gb, cb)
	}
}
