// Package faults provides deterministic fault injectors for chaos
// testing the simulator's robustness machinery (core.FaultInjector):
// a stalled issue stage to trip the forward-progress watchdog, dropped
// memory responses and completions to trip the watchdog and the
// scoreboard-balance invariant, and a stride-table corrupter to show
// that bad prefetch candidates degrade performance without breaking
// correctness. Injectors are single-run: they hold counters, so build
// a fresh one per simulation.
package faults

import (
	"mtprefetch/internal/core"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/prefetch"
)

// Injector implements core.FaultInjector with three independent,
// deterministic fault dials. The zero value injects nothing; use the
// constructors (or New) so the disabled-core sentinel is set.
type Injector struct {
	// StalledCore suppresses one core's issue stage (-1 disables).
	StalledCore int
	// StallFrom is the first cycle the stall applies.
	StallFrom uint64
	// DropResponseN discards the Nth memory response outright (1-based;
	// 0 disables): its MRQ entry leaks and its waiters sleep forever.
	DropResponseN uint64
	// DropCompletionN frees the Nth demand response's MRQ entry without
	// waking its waiters (1-based; 0 disables) — the lost-wakeup fault.
	DropCompletionN uint64

	responses uint64 // responses seen, for DropResponseN
	demands   uint64 // demand responses seen, for DropCompletionN
}

var _ core.FaultInjector = (*Injector)(nil)

// New returns an Injector with every fault disabled.
func New() *Injector { return &Injector{StalledCore: -1} }

// StallIssue builds an injector that freezes core's issue stage from
// cycle from onward. In-flight memory eventually drains, no instruction
// retires, and the watchdog must fire.
func StallIssue(coreID int, from uint64) *Injector {
	i := New()
	i.StalledCore = coreID
	i.StallFrom = from
	return i
}

// DropNthResponse builds an injector that discards the nth (1-based)
// memory response on its way to the core.
func DropNthResponse(n uint64) *Injector {
	i := New()
	i.DropResponseN = n
	return i
}

// DropNthCompletion builds an injector that completes the nth (1-based)
// demand response's MRQ entry without waking its waiters, unbalancing
// the scoreboard for the invariant checker to catch.
func DropNthCompletion(n uint64) *Injector {
	i := New()
	i.DropCompletionN = n
	return i
}

// NextEvent implements core.EventSource, keeping chaos runs compatible
// with event-driven cycle skipping. Every dial triggers on cycles the
// loop visits regardless: response faults fire on response-delivery
// cycles, and the issue stall only suppresses action on cycles the core
// would otherwise act — so the injector never needs a wakeup of its own.
func (i *Injector) NextEvent(cycle uint64) uint64 { return ^uint64(0) }

// ShardAware implements core.ShardAware: StallCore is a pure function of
// construction-time fields, so concurrent calls from the sharded
// core-stepping phase are safe. The mutating dials live in OnResponse,
// which only runs on the serial response-delivery phase.
func (i *Injector) ShardAware() {}

// StallCore implements core.FaultInjector.
func (i *Injector) StallCore(cycle uint64, coreID int) bool {
	return i.StalledCore == coreID && cycle >= i.StallFrom
}

// OnResponse implements core.FaultInjector.
func (i *Injector) OnResponse(cycle uint64, r *memreq.Request) core.ResponseAction {
	i.responses++
	if i.DropResponseN != 0 && i.responses == i.DropResponseN {
		return core.DropResponse
	}
	if r.Kind == memreq.Demand {
		i.demands++
		if i.DropCompletionN != 0 && i.demands == i.DropCompletionN {
			return core.DropCompletion
		}
	}
	return core.DeliverResponse
}

// CorruptStride wraps a hardware prefetcher and XORs Mask into every
// candidate address it emits once After observations have passed —
// modelling a corrupted stride-table entry. The machine must absorb the
// garbage prefetches (wasted bandwidth, polluted cache) and still finish
// with correct accounting; chaos tests run it under Options.Checks.
type CorruptStride struct {
	Inner prefetch.Prefetcher
	After uint64 // observations before corruption starts
	Mask  uint64 // XORed into candidate block addresses

	seen uint64
}

var _ prefetch.Prefetcher = (*CorruptStride)(nil)

// Name implements prefetch.Prefetcher.
func (c *CorruptStride) Name() string { return c.Inner.Name() + "+corrupt" }

// Observe implements prefetch.Prefetcher.
func (c *CorruptStride) Observe(t prefetch.Train, out []prefetch.Candidate) []prefetch.Candidate {
	before := len(out)
	out = c.Inner.Observe(t, out)
	c.seen++
	if c.seen > c.After {
		for i := before; i < len(out); i++ {
			out[i].Addr ^= c.Mask
		}
	}
	return out
}
