package faults

import (
	"fmt"
	"sync/atomic"

	"mtprefetch/internal/core"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/store"
)

// FaultFS wraps a store.FS and injects the disk failure modes the
// result store's crash-safety argument must survive: torn writes (a
// crash mid-write leaves a prefix), ENOSPC-style write failures,
// rename refusal (commit cannot publish), and read corruption (a bit
// flips between commit and lookup). Each dial fires on the Nth
// matching operation (1-based; 0 disables) and is counted atomically,
// so a concurrent sweep hits a deterministic operation even when the
// hitting goroutine varies. The zero value with an Inner injects
// nothing.
type FaultFS struct {
	// Inner is the real filesystem (typically store.OSFS()).
	Inner store.FS
	// TornWriteN makes the Nth WriteFile persist only the first half of
	// its data and then fail — the classic torn write a crash between
	// write and sync produces.
	TornWriteN int64
	// FailWriteN makes the Nth WriteFile fail outright (no space left
	// on device) without persisting anything.
	FailWriteN int64
	// FailRenameN makes the Nth Rename fail, stranding a committed tmp
	// file.
	FailRenameN int64
	// CorruptReadN flips one byte in the middle of the Nth ReadFile's
	// result; the file on disk is untouched.
	CorruptReadN int64

	writes  atomic.Int64
	renames atomic.Int64
	reads   atomic.Int64
}

var _ store.FS = (*FaultFS)(nil)

// MkdirAll implements store.FS.
func (f *FaultFS) MkdirAll(path string) error { return f.Inner.MkdirAll(path) }

// ReadDir implements store.FS.
func (f *FaultFS) ReadDir(path string) ([]string, error) { return f.Inner.ReadDir(path) }

// ReadFile implements store.FS, corrupting the CorruptReadN-th read.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	b, err := f.Inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if n := f.reads.Add(1); f.CorruptReadN != 0 && n == f.CorruptReadN && len(b) > 0 {
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0x01
		return c, nil
	}
	return b, nil
}

// WriteFile implements store.FS, tearing or failing the dialled write.
func (f *FaultFS) WriteFile(path string, data []byte) error {
	n := f.writes.Add(1)
	if f.TornWriteN != 0 && n == f.TornWriteN {
		// Persist a prefix, then report failure — as a crash after a
		// partial write would leave things.
		if err := f.Inner.WriteFile(path, data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("injected: write torn after %d bytes", len(data)/2)
	}
	if f.FailWriteN != 0 && n == f.FailWriteN {
		return fmt.Errorf("injected: no space left on device")
	}
	return f.Inner.WriteFile(path, data)
}

// Rename implements store.FS, refusing the FailRenameN-th rename.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	if n := f.renames.Add(1); f.FailRenameN != 0 && n == f.FailRenameN {
		return fmt.Errorf("injected: rename refused")
	}
	return f.Inner.Rename(oldPath, newPath)
}

// Remove implements store.FS.
func (f *FaultFS) Remove(path string) error { return f.Inner.Remove(path) }

// Reads reports how many ReadFile calls have completed, for arming
// CorruptReadN relative to the present.
func (f *FaultFS) Reads() int64 { return f.reads.Load() }

// Writes reports how many WriteFile calls have been attempted.
func (f *FaultFS) Writes() int64 { return f.writes.Load() }

// Renames reports how many Rename calls have been attempted.
func (f *FaultFS) Renames() int64 { return f.renames.Load() }

// FlakeRun is a core.FaultInjector that aborts a simulation with a
// typed transient error (simerr.IsTransient) at a fixed cycle for its
// first Fails runs, then injects nothing — the canonical "retry
// converges" chaos injector. It perturbs no machine state: the run
// either aborts at FailCycle or executes exactly as if uninjected, so
// a retried run's output must be byte-identical to a fault-free one.
// One FlakeRun may serve several sequential simulations (runs counts
// across them) but, like every injector, not concurrent ones.
type FlakeRun struct {
	// FailCycle is the cycle the transient fault fires on (the run
	// visits it via NextEvent even under event-driven skipping).
	FailCycle uint64
	// Fails is how many runs abort before the flake clears.
	Fails int

	runs int
}

var (
	_ core.FaultInjector = (*FlakeRun)(nil)
	_ core.EventSource   = (*FlakeRun)(nil)
	_ core.RunFaulter    = (*FlakeRun)(nil)
)

// StallCore implements core.FaultInjector (no stalls).
func (f *FlakeRun) StallCore(cycle uint64, coreID int) bool { return false }

// OnResponse implements core.FaultInjector (no response faults).
func (f *FlakeRun) OnResponse(cycle uint64, r *memreq.Request) core.ResponseAction {
	return core.DeliverResponse
}

// NextEvent implements core.EventSource: while the flake is armed the
// fault cycle is an event, so cycle skipping cannot jump past it.
func (f *FlakeRun) NextEvent(cycle uint64) uint64 {
	if f.runs < f.Fails && cycle < f.FailCycle {
		return f.FailCycle
	}
	return ^uint64(0)
}

// RunFault implements core.RunFaulter: abort with a transient error at
// FailCycle until Fails runs have been sacrificed. The first non-nil
// return ends its run, so runs advances exactly once per failing run.
func (f *FlakeRun) RunFault(cycle uint64) error {
	if f.runs >= f.Fails || cycle < f.FailCycle {
		return nil
	}
	f.runs++
	return simerr.Transient("injected flake", fmt.Errorf("run %d aborted at cycle %d", f.runs, cycle))
}
