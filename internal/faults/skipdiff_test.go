package faults

import (
	"errors"
	"testing"

	"mtprefetch/internal/core"
)

// Differential fault tests: injected failures must be detected at the
// exact same cycle with event-driven cycle skipping on and off. This
// closes the loop the core-side equivalence matrix (core/skip_test.go)
// cannot: faults imports core, so fault-injected differential runs have
// to live here. The injector implements core.EventSource, so skipping
// stays enabled during chaos runs — these tests prove that is safe.

// runBoth executes o with skipping enabled and disabled and returns the
// two errors.
func runBoth(t *testing.T, mk func() core.Options) (errSkip, errFull error) {
	t.Helper()
	o := mk()
	_, errSkip = core.Run(o)
	o = mk() // fresh injector: they are single-run
	o.NoCycleSkip = true
	_, errFull = core.Run(o)
	return errSkip, errFull
}

// TestChaosStalledWatchdogSkipEquivalence: the watchdog must fire at
// the identical cycle with identical diagnostics whether or not the
// loop skipped its way to it.
func TestChaosStalledWatchdogSkipEquivalence(t *testing.T) {
	mk := func() core.Options {
		return core.Options{
			Workload:  chaosSpec(t),
			MaxCycles: 500_000_000,
			Inject:    StallIssue(0, 1000),
		}
	}
	errSkip, errFull := runBoth(t, mk)
	var a, b *core.LivelockError
	if !errors.As(errSkip, &a) || !errors.As(errFull, &b) {
		t.Fatalf("want LivelockError from both: skip=%v full=%v", errSkip, errFull)
	}
	if a.Cycle != b.Cycle || a.Window != b.Window {
		t.Errorf("watchdog fired at cycle %d (window %d) with skipping, %d (window %d) without",
			a.Cycle, a.Window, b.Cycle, b.Window)
	}
	if a.Error() != b.Error() {
		t.Errorf("livelock diagnostics diverge:\nskip: %s\nfull: %s", a, b)
	}
}

// TestChaosDroppedCompletionSkipEquivalence: the scoreboard-balance
// invariant sweep runs on deadline-clamped cycles, so it must catch the
// lost wakeup at the same sweep cycle either way.
func TestChaosDroppedCompletionSkipEquivalence(t *testing.T) {
	mk := func() core.Options {
		return core.Options{
			Workload:   chaosSpec(t),
			MaxCycles:  50_000_000,
			Checks:     true,
			CheckEvery: 10_000,
			Inject:     DropNthCompletion(1),
		}
	}
	errSkip, errFull := runBoth(t, mk)
	var a, b *core.InvariantError
	if !errors.As(errSkip, &a) || !errors.As(errFull, &b) {
		t.Fatalf("want InvariantError from both: skip=%v full=%v", errSkip, errFull)
	}
	if *a != *b {
		t.Errorf("invariant reports diverge:\nskip: %+v\nfull: %+v", *a, *b)
	}
}
