package faults

import (
	"errors"
	"testing"

	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/workload"
)

// chaosSpec is a small grid that still keeps several cores busy with
// in-flight memory for thousands of cycles.
func chaosSpec(t *testing.T) *workload.Spec {
	t.Helper()
	s := workload.ByName("stream")
	if s == nil {
		t.Fatal("workload suite missing stream")
	}
	return s.Scaled(16)
}

// TestStalledCoreTripsWatchdog freezes core 0's issue stage after it has
// taken a block. Its warps can never retire, so once the other cores
// drain, nothing retires and nothing fills — the watchdog must abort
// far sooner than the MaxCycles timeout would.
func TestStalledCoreTripsWatchdog(t *testing.T) {
	const maxCycles = 500_000_000
	o := core.Options{
		Workload:  chaosSpec(t),
		MaxCycles: maxCycles,
		Inject:    StallIssue(0, 1000),
	}
	_, err := core.Run(o)
	if !errors.Is(err, core.ErrLivelock) {
		t.Fatalf("stalled core returned %v, want ErrLivelock", err)
	}
	var ll *core.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("error %v (%T) is not a *LivelockError", err, err)
	}
	if ll.Cycle >= maxCycles/100 {
		t.Fatalf("watchdog fired at cycle %d, want < %d (MaxCycles/100)", ll.Cycle, maxCycles/100)
	}
	if len(ll.Snapshot.Cores) == 0 {
		t.Fatal("livelock snapshot has no per-core diagnostics")
	}
	live := 0
	for _, d := range ll.Snapshot.Cores {
		live += d.LiveWarps
	}
	if live == 0 {
		t.Fatal("livelock snapshot shows no live warps; the stall faulted nothing")
	}
}

// TestDroppedResponseTripsWatchdog discards one memory response: the
// waiting warp sleeps on its scoreboard forever and the watchdog must
// notice once everything else drains.
func TestDroppedResponseTripsWatchdog(t *testing.T) {
	o := core.Options{
		Workload:       chaosSpec(t),
		MaxCycles:      50_000_000,
		WatchdogWindow: 200_000,
		Inject:         DropNthResponse(1),
	}
	_, err := core.Run(o)
	if !errors.Is(err, core.ErrLivelock) {
		t.Fatalf("dropped response returned %v, want ErrLivelock", err)
	}
}

// TestDroppedCompletionTripsInvariant frees an MRQ entry without waking
// its waiters; the opt-in scoreboard-balance check must flag the
// imbalance long before the watchdog window elapses.
func TestDroppedCompletionTripsInvariant(t *testing.T) {
	o := core.Options{
		Workload:   chaosSpec(t),
		MaxCycles:  50_000_000,
		Checks:     true,
		CheckEvery: 512,
		Inject:     DropNthCompletion(1),
	}
	_, err := core.Run(o)
	if !errors.Is(err, core.ErrInvariant) {
		t.Fatalf("dropped completion returned %v, want ErrInvariant", err)
	}
	var ie *core.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v (%T) is not an *InvariantError", err, err)
	}
	if ie.Name != "scoreboard-balance" {
		t.Fatalf("invariant %q tripped, want scoreboard-balance (%v)", ie.Name, err)
	}
}

// TestCorruptStrideIsAbsorbed corrupts every stride-prefetch candidate
// after a warm-up: the machine must absorb the garbage (wasted
// bandwidth, polluted cache) and still finish with clean accounting
// under the full invariant sweep.
func TestCorruptStrideIsAbsorbed(t *testing.T) {
	o := core.Options{
		Workload:  chaosSpec(t),
		MaxCycles: 50_000_000,
		Checks:    true,
		Hardware: func() prefetch.Prefetcher {
			return &CorruptStride{
				Inner: prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true}),
				After: 100,
				Mask:  0xff << 20,
			}
		},
	}
	res, err := core.Run(o)
	if err != nil {
		t.Fatalf("corrupted stride table broke the run: %v", err)
	}
	if res.ProgInstructions == 0 {
		t.Fatal("run completed without retiring instructions")
	}
}

// TestCleanRunNoFalsePositives runs an unfaulted simulation with both
// the watchdog and the invariant sweep enabled: neither may fire.
func TestCleanRunNoFalsePositives(t *testing.T) {
	o := core.Options{
		Workload:   chaosSpec(t),
		MaxCycles:  50_000_000,
		Checks:     true,
		CheckEvery: 1024,
	}
	res, err := core.Run(o)
	if err != nil {
		t.Fatalf("clean run failed under checks+watchdog: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("clean run reported zero cycles")
	}
}
