package faults

import (
	"errors"
	"testing"

	"mtprefetch/internal/core"
)

// Differential fault tests for core sharding, mirroring skipdiff_test.go
// on the other parallelism axis: injected failures must be detected at
// the exact same cycle with identical diagnostics at any shard count.
// The injector implements core.ShardAware (StallCore is pure), so
// sharding stays enabled during chaos runs — these tests prove that is
// safe, and that the watchdog/invariant sweeps on the serial phase see a
// barrier-quiesced machine.

// runSharded executes mk() at the given shard count and returns the
// run's error.
func runSharded(t *testing.T, mk func() core.Options, shards int) error {
	t.Helper()
	o := mk() // fresh injector per run: they are single-run
	o.Shards = shards
	_, err := core.Run(o)
	return err
}

// TestChaosStalledWatchdogShardEquivalence: a livelock must abort at the
// identical cycle with identical diagnostics at shard counts 1, 4, 8.
func TestChaosStalledWatchdogShardEquivalence(t *testing.T) {
	mk := func() core.Options {
		return core.Options{
			Workload:  chaosSpec(t),
			MaxCycles: 500_000_000,
			Inject:    StallIssue(0, 1000),
		}
	}
	var ref *core.LivelockError
	if err := runSharded(t, mk, 1); !errors.As(err, &ref) {
		t.Fatalf("want LivelockError from the serial run, got %v", err)
	}
	for _, shards := range []int{4, 8} {
		var got *core.LivelockError
		if err := runSharded(t, mk, shards); !errors.As(err, &got) {
			t.Fatalf("shards=%d: want LivelockError, got %v", shards, err)
		}
		if got.Cycle != ref.Cycle || got.Window != ref.Window {
			t.Errorf("watchdog fired at cycle %d (window %d) with %d shards, %d (window %d) serial",
				got.Cycle, got.Window, shards, ref.Cycle, ref.Window)
		}
		if got.Error() != ref.Error() {
			t.Errorf("shards=%d: livelock diagnostics diverge:\nsharded: %s\nserial:  %s",
				shards, got, ref)
		}
	}
}

// TestChaosDroppedCompletionShardEquivalence: the scoreboard-balance
// invariant sweep must catch the lost wakeup at the same sweep cycle
// with the same report at any shard count.
func TestChaosDroppedCompletionShardEquivalence(t *testing.T) {
	mk := func() core.Options {
		return core.Options{
			Workload:   chaosSpec(t),
			MaxCycles:  50_000_000,
			Checks:     true,
			CheckEvery: 10_000,
			Inject:     DropNthCompletion(1),
		}
	}
	var ref *core.InvariantError
	if err := runSharded(t, mk, 1); !errors.As(err, &ref) {
		t.Fatalf("want InvariantError from the serial run, got %v", err)
	}
	for _, shards := range []int{4, 8} {
		var got *core.InvariantError
		if err := runSharded(t, mk, shards); !errors.As(err, &got) {
			t.Fatalf("shards=%d: want InvariantError, got %v", shards, err)
		}
		if *got != *ref {
			t.Errorf("shards=%d: invariant reports diverge:\nsharded: %+v\nserial:  %+v",
				shards, *got, *ref)
		}
	}
}
