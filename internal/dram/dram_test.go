package dram

import (
	"testing"
	"testing/quick"

	"mtprefetch/internal/memreq"
)

// testConfig: 2 channels, 2 banks, small rows, easy numbers.
func testConfig() Config {
	return Config{
		Channels:   2,
		Banks:      2,
		RowBytes:   256, // 4 blocks per row
		BlockBytes: 64,
		QueueSize:  4,
		TCL:        9,
		TRCD:       9,
		TRP:        10,
		BusCycles:  8,
	}
}

func demand(addr uint64) *memreq.Request {
	return memreq.New(addr, 64, memreq.Demand, 0, 0, 0, 0)
}

func prefetch(addr uint64) *memreq.Request {
	return memreq.New(addr, 64, memreq.Prefetch, 1, 0, 0, 0)
}

// run advances the memory until drained or maxCycles, collecting responses.
func run(m *Memory, from uint64, maxCycles int) []*memreq.Request {
	var done []*memreq.Request
	for c := from; c < from+uint64(maxCycles); c++ {
		done = m.Step(c, done)
		if m.Drained() {
			break
		}
	}
	return done
}

func TestSingleReadLatency(t *testing.T) {
	m := New(testConfig())
	r := demand(64)
	if !m.Enqueue(0, r) {
		t.Fatal("enqueue refused")
	}
	done := run(m, 0, 1000)
	if len(done) != 1 || done[0] != r {
		t.Fatalf("done = %v", done)
	}
	s := m.Stats()
	if s.Demands != 1 {
		t.Errorf("Demands = %d, want 1", s.Demands)
	}
	if s.RowClosed != 1 {
		t.Errorf("RowClosed = %d, want 1 (first access to idle bank)", s.RowClosed)
	}
}

func TestChannelInterleaving(t *testing.T) {
	m := New(testConfig())
	// Consecutive blocks alternate channels.
	if m.ChannelOf(0) == m.ChannelOf(64) {
		t.Error("adjacent blocks on same channel")
	}
	if m.ChannelOf(0) != m.ChannelOf(128) {
		t.Error("stride-2 blocks should revisit the channel")
	}
}

func TestRowHitVsConflict(t *testing.T) {
	m := New(testConfig())
	// Blocks 0 and 128 are channel 0; with 4-block rows per channel they
	// share a row (chanBlocks 0 and 1).
	m.Enqueue(0, demand(0))
	m.Enqueue(0, demand(128))
	run(m, 0, 1000)
	s := m.Stats()
	if s.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1 (same row)", s.RowHits)
	}

	// Now touch a different row on the same bank: channel 0 has 4-block
	// rows and 2 banks, so chanBlock 8 (addr 8*2*64=1024) is bank 0 row 1.
	m2 := New(testConfig())
	m2.Enqueue(0, demand(0))
	m2.Enqueue(0, demand(1024))
	run(m2, 0, 1000)
	s2 := m2.Stats()
	if s2.RowMisses != 1 {
		t.Errorf("RowMisses = %d, want 1 (row conflict)", s2.RowMisses)
	}
}

func TestDemandPriorityOverPrefetch(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Same channel: prefetch enqueued first, demand second, different rows.
	p := prefetch(0)
	d := demand(1024)
	m.Enqueue(0, p)
	m.Enqueue(0, d)
	// Step once: scheduler must pick the demand despite arrival order.
	var done []*memreq.Request
	var dDone, pDone uint64
	for c := uint64(0); c < 500; c++ {
		done = done[:0]
		done = m.Step(c, done)
		for _, r := range done {
			if r == d {
				dDone = c
			}
			if r == p {
				pDone = c
			}
		}
		if m.Drained() {
			break
		}
	}
	if dDone == 0 || pDone == 0 {
		t.Fatal("requests not completed")
	}
	if dDone >= pDone {
		t.Errorf("demand finished at %d, prefetch at %d; demand must win", dDone, pDone)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Three demands, same channel: A row0, B row1(conflict), C row0.
	a, b, c := demand(0), demand(1024), demand(128)
	m.Enqueue(0, a)
	m.Enqueue(0, b)
	m.Enqueue(0, c)
	order := map[*memreq.Request]uint64{}
	var done []*memreq.Request
	for cyc := uint64(0); cyc < 1000; cyc++ {
		done = done[:0]
		done = m.Step(cyc, done)
		for _, r := range done {
			order[r] = cyc
		}
		if m.Drained() {
			break
		}
	}
	// After A opens row 0, C (row-hit) must be served before B.
	if !(order[c] < order[b]) {
		t.Errorf("row-hit C at %d not before conflict B at %d", order[c], order[b])
	}
}

func TestInterCoreMerging(t *testing.T) {
	m := New(testConfig())
	a := demand(64)
	b := demand(64) // same block, conceptually another core
	b.CoreID = 1
	m.Enqueue(0, a)
	m.Enqueue(0, b)
	done := run(m, 0, 1000)
	if len(done) != 2 {
		t.Fatalf("done = %d responses, want both merged requests", len(done))
	}
	s := m.Stats()
	if s.InterCoreMerges != 1 {
		t.Errorf("InterCoreMerges = %d, want 1", s.InterCoreMerges)
	}
	if s.Demands != 1 {
		t.Errorf("Demands = %d, want 1 (one access serves both)", s.Demands)
	}
}

func TestDemandMergeUpgradesBufferedPrefetch(t *testing.T) {
	m := New(testConfig())
	p := prefetch(64)
	d := demand(64)
	m.Enqueue(0, p)
	m.Enqueue(0, d)
	done := run(m, 0, 1000)
	if len(done) != 2 {
		t.Fatalf("expected 2 responses, got %d", len(done))
	}
	if p.Kind != memreq.Demand || !p.DemandMerged {
		t.Errorf("buffered prefetch not upgraded: %+v", p)
	}
}

func TestQueueFullRejects(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Fill channel 0's queue (stride 2 blocks stays on channel 0).
	for i := 0; i < cfg.QueueSize; i++ {
		if !m.Enqueue(0, demand(uint64(i*128))) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if m.Enqueue(0, demand(9999*128)) {
		t.Fatal("enqueue accepted above capacity")
	}
	if got := m.Stats().Rejects; got != 1 {
		t.Errorf("Rejects = %d, want 1", got)
	}
	// Merging is allowed even when full.
	if !m.Enqueue(0, demand(0)) {
		t.Error("merge refused at capacity")
	}
}

func TestWritebackNoResponse(t *testing.T) {
	m := New(testConfig())
	wb := memreq.New(64, 64, memreq.Writeback, 0, 0, 0, 0)
	m.Enqueue(0, wb)
	done := run(m, 0, 1000)
	if len(done) != 0 {
		t.Fatalf("writeback produced %d responses", len(done))
	}
	if got := m.Stats().Writebacks; got != 1 {
		t.Errorf("Writebacks = %d, want 1", got)
	}
}

func TestWritebacksDoNotMergeWithReads(t *testing.T) {
	m := New(testConfig())
	wb := memreq.New(64, 64, memreq.Writeback, 0, 0, 0, 0)
	d := demand(64)
	m.Enqueue(0, wb)
	m.Enqueue(0, d)
	done := run(m, 0, 1000)
	if len(done) != 1 || done[0] != d {
		t.Fatalf("done = %v, want just the demand", done)
	}
	if got := m.Stats().InterCoreMerges; got != 0 {
		t.Errorf("InterCoreMerges = %d, want 0", got)
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Two row-hit reads on one channel: completions must be >= BusCycles apart.
	m.Enqueue(0, demand(0))
	m.Enqueue(0, demand(128))
	var times []uint64
	var done []*memreq.Request
	for c := uint64(0); c < 1000; c++ {
		done = done[:0]
		done = m.Step(c, done)
		for range done {
			times = append(times, c)
		}
		if m.Drained() {
			break
		}
	}
	if len(times) != 2 {
		t.Fatalf("completions = %d, want 2", len(times))
	}
	if times[1]-times[0] < uint64(cfg.BusCycles) {
		t.Errorf("transfers %d cycles apart, want >= %d", times[1]-times[0], cfg.BusCycles)
	}
}

func TestThroughputUnderLoad(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Keep channel 0 saturated with row-hit traffic; service rate should
	// approach one block per BusCycles.
	next := uint64(0)
	completed := 0
	for c := uint64(0); c < 2000; c++ {
		for m.QueueLen(0) < cfg.QueueSize {
			m.Enqueue(c, demand(next))
			next += 128 // stay on channel 0
		}
		var done []*memreq.Request
		done = m.Step(c, done)
		completed += len(done)
	}
	// Ideal is one block per BusCycles; row crossings every 4 blocks eat
	// some of that, so expect at least 80% utilization.
	minExpected := 2000 / cfg.BusCycles * 8 / 10
	if completed < minExpected {
		t.Errorf("completed %d in 2000 cycles, want >= %d", completed, minExpected)
	}
}

func TestDrained(t *testing.T) {
	m := New(testConfig())
	if !m.Drained() {
		t.Error("fresh memory not drained")
	}
	m.Enqueue(0, demand(0))
	if m.Drained() {
		t.Error("queued request but Drained() true")
	}
	run(m, 0, 1000)
	if !m.Drained() {
		t.Error("not drained after completion")
	}
}

func TestL2HitBypassesBanksAndBus(t *testing.T) {
	cfg := testConfig()
	cfg.L2Bytes = 4 * 1024
	cfg.L2Ways = 4
	cfg.L2HitLatency = 5
	cfg.Overhead = 100
	m := New(cfg)
	// First access misses L2 and takes the full DRAM path.
	m.Enqueue(0, demand(64))
	first := uint64(0)
	var done []*memreq.Request
	for c := uint64(0); c < 1000 && first == 0; c++ {
		done = m.Step(c, done[:0])
		if len(done) > 0 {
			first = c
		}
	}
	if first < 100 {
		t.Fatalf("first access finished at %d, should include overhead", first)
	}
	// Second access to the same block hits L2.
	m.Enqueue(first, demand(64))
	second := uint64(0)
	for c := first; c < first+1000 && second == 0; c++ {
		done = m.Step(c, done[:0])
		if len(done) > 0 {
			second = c
		}
	}
	if second-first > 20 {
		t.Errorf("L2 hit took %d cycles, want ~%d", second-first, cfg.L2HitLatency)
	}
	s := m.Stats()
	if s.L2Hits != 1 || s.L2Misses != 1 {
		t.Errorf("L2 stats = %d hits / %d misses, want 1/1", s.L2Hits, s.L2Misses)
	}
}

func TestNoL2ByDefault(t *testing.T) {
	m := New(testConfig())
	m.Enqueue(0, demand(64))
	run(m, 0, 1000)
	m.Enqueue(500, demand(64))
	run(m, 500, 1000)
	if s := m.Stats(); s.L2Hits != 0 || s.L2Misses != 0 {
		t.Errorf("L2 active without configuration: %+v", s)
	}
}

// TestConservationProperty: under random request streams, every enqueued
// read completes exactly once and nothing is invented.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		cfg := testConfig()
		cfg.QueueSize = 64
		m := New(cfg)
		rng := seed
		next := func() uint32 { rng = rng*1664525 + 1013904223; return rng }
		want := 0
		issued := map[*memreq.Request]bool{}
		for i := 0; i < int(n); i++ {
			addr := uint64(next()%256) * 64
			var r *memreq.Request
			switch next() % 3 {
			case 0:
				r = demand(addr)
			case 1:
				r = prefetch(addr)
			default:
				r = memreq.New(addr, 64, memreq.Writeback, 0, 0, 0, 0)
			}
			if m.Enqueue(uint64(i), r) && r.Kind != memreq.Writeback {
				want++
				issued[r] = true
			}
		}
		got := 0
		var done []*memreq.Request
		for c := uint64(0); c < 100_000; c++ {
			done = m.Step(c, done[:0])
			for _, r := range done {
				if !issued[r] {
					return false // invented or double response
				}
				delete(issued, r)
				got++
			}
			if m.Drained() {
				break
			}
		}
		return got == want && m.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
