// Package dram models the off-chip memory system: per-channel memory
// controllers with finite request buffers, inter-core request merging
// (Fig. 2b of the paper), banks with open-row (2KB page) state, FR-FCFS
// scheduling, and a data bus sized so the aggregate peak bandwidth matches
// Table II's 57.6 GB/s.
//
// Demand requests have strictly higher scheduling priority than prefetch
// requests (Table II) — the property that lets 100%-accurate prefetches
// still delay demands and hurt performance (Section IV-B).
package dram

import (
	"fmt"

	"mtprefetch/internal/addrmap"
	"mtprefetch/internal/cache"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/ring"
)

// Config is the memory-system geometry with timings already converted to
// core cycles (see config.DRAMCyclesToCore).
type Config struct {
	Channels   int
	Banks      int // per channel
	RowBytes   int
	BlockBytes int
	QueueSize  int // request-buffer entries per channel
	TCL        int // core cycles
	TRCD       int // core cycles
	TRP        int // core cycles
	BusCycles  int // data-bus occupancy per block, core cycles
	Overhead   int // fixed controller/DRAM-core overhead per access, core cycles

	// AgePromote prevents prefetch starvation: a prefetch that has waited
	// this many core cycles is scheduled at demand priority. Zero
	// disables promotion (strict demand-first).
	AgePromote int

	// L2Bytes, when non-zero, adds a shared L2 cache slice at each memory
	// controller — the "more complex memory hierarchies" extension the
	// paper's Section XI leaves to future work. The paper's baseline has
	// no L2; this is off by default.
	L2Bytes      int // total bytes, divided evenly across channels
	L2Ways       int
	L2HitLatency int // core cycles for an L2 hit, replacing the DRAM access
}

// Stats are the memory system's lifetime counters.
type Stats struct {
	Demands         uint64 // serviced demand reads
	Prefetches      uint64 // serviced prefetch reads
	Writebacks      uint64 // serviced writes
	RowHits         uint64
	RowMisses       uint64 // row conflict: another row was open
	RowClosed       uint64 // bank was idle/closed
	L2Hits          uint64
	L2Misses        uint64
	InterCoreMerges uint64 // Fig. 2b merges
	Rejects         uint64 // enqueue attempts refused by a full buffer
	BusBusy         uint64 // total core cycles of data-bus occupancy
}

type entry struct {
	req    *memreq.Request
	merged []*memreq.Request
	arrive uint64
	doneAt uint64
	// bank/row are cached from bankRow at enqueue: the address never
	// changes, and the FR-FCFS priority scan reads them every cycle.
	bank int
	row  int64
}

type bank struct {
	openRow int64 // -1 = closed
	readyAt uint64
}

type channel struct {
	queue    ring.Buffer[*entry] // unscheduled, arrival order
	inflight []*entry            // scheduled, awaiting doneAt
	minDone  uint64              // min doneAt over inflight (stale when empty)
	// reads indexes the non-writeback entries of queue+inflight by block
	// address for O(1) inter-core merging; merging keeps it unique.
	reads     *addrmap.Table[*entry]
	banks     []bank
	busFreeAt uint64
	l2        *cache.Cache // nil when no L2 is configured
}

// track updates the channel's completion watermark as e joins inflight;
// call immediately before appending.
func (ch *channel) track(e *entry) {
	if len(ch.inflight) == 0 || e.doneAt < ch.minDone {
		ch.minDone = e.doneAt
	}
}

// Memory is the whole off-chip memory system.
type Memory struct {
	cfg       Config
	rowBlocks uint64
	chans     []*channel
	pool      *memreq.Pool // nil: retired writebacks are garbage-collected
	free      []*entry     // entry free-list; retirement recycles into it
	stats     Stats
}

// getEntry reuses a retired entry (and its merged backing array) when one
// is available, so steady-state enqueues stop allocating.
func (m *Memory) getEntry(r *memreq.Request, cycle uint64, b int, row int64) *entry {
	if n := len(m.free); n > 0 {
		e := m.free[n-1]
		m.free = m.free[:n-1]
		e.req, e.arrive, e.doneAt, e.bank, e.row = r, cycle, 0, b, row
		return e
	}
	return &entry{req: r, arrive: cycle, bank: b, row: row}
}

// primeMergedCap is the merged capacity carved out for each primed entry;
// mergeInto resizes the heavy mergers once (see mergeEntryCap).
const primeMergedCap = 4

// primeEntries stocks the free-list from one contiguous arena so the
// warm-up ramp — otherwise one allocation per concurrently buffered
// request — collapses into two arena allocations. n is sized to the
// request buffers' high-water mark: every channel's queue and service
// pipeline full at once.
func (m *Memory) primeEntries(n int) {
	arena := make([]entry, n)
	merged := make([]*memreq.Request, n*primeMergedCap)
	for i := range arena {
		arena[i].merged = merged[i*primeMergedCap : i*primeMergedCap : (i+1)*primeMergedCap]
		m.free = append(m.free, &arena[i])
	}
}

// putEntry recycles a retired entry. The merged slots are cleared so the
// free-list never retains requests whose lifecycle has moved on.
func (m *Memory) putEntry(e *entry) {
	for i := range e.merged {
		e.merged[i] = nil
	}
	e.merged = e.merged[:0]
	e.req = nil
	m.free = append(m.free, e)
}

// SetPool attaches a request free-list; serviced writebacks are recycled
// into it at retirement, since they carry no response back to a core.
func (m *Memory) SetPool(p *memreq.Pool) { m.pool = p }

// New builds the memory system.
func New(cfg Config) *Memory {
	m := &Memory{
		cfg:       cfg,
		rowBlocks: uint64(cfg.RowBytes / cfg.BlockBytes),
		chans:     make([]*channel, cfg.Channels),
	}
	for i := range m.chans {
		ch := &channel{
			banks: make([]bank, cfg.Banks),
			reads: addrmap.New[*entry](cfg.QueueSize + pipelineDepth),
		}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		if cfg.L2Bytes > 0 {
			ch.l2 = cache.New(cfg.L2Bytes/cfg.Channels, cfg.L2Ways, cfg.BlockBytes)
		}
		m.chans[i] = ch
	}
	m.primeEntries(cfg.Channels * (cfg.QueueSize + pipelineDepth))
	return m
}

// Stats returns a snapshot of the counters.
func (m *Memory) Stats() Stats { return m.stats }

// Register wires the memory system's counters into the registry. The
// DRAM system is machine-wide, so callers label it obs.CoreGlobal.
func (m *Memory) Register(r *obs.Registry, l obs.Labels) {
	st := &m.stats
	r.CounterU64("dram.demands", l, &st.Demands)
	r.CounterU64("dram.prefetches", l, &st.Prefetches)
	r.CounterU64("dram.writebacks", l, &st.Writebacks)
	r.CounterU64("dram.row_hits", l, &st.RowHits)
	r.CounterU64("dram.row_misses", l, &st.RowMisses)
	r.CounterU64("dram.row_closed", l, &st.RowClosed)
	r.CounterU64("dram.l2_hits", l, &st.L2Hits)
	r.CounterU64("dram.l2_misses", l, &st.L2Misses)
	r.CounterU64("dram.inter_core_merges", l, &st.InterCoreMerges)
	r.CounterU64("dram.rejects", l, &st.Rejects)
	r.CounterU64("dram.bus_busy", l, &st.BusBusy)
	r.Gauge("dram.queued", l, func() float64 {
		n := 0
		for _, ch := range m.chans {
			n += ch.queue.Len() + len(ch.inflight)
		}
		return float64(n)
	})
	// Per-channel unscheduled backlog: the live backpressure signal a
	// latency waterfall's dram_queue stage points at.
	for i := range m.chans {
		ch := m.chans[i]
		r.Gauge(fmt.Sprintf("dram.ch%d_queued", i), l, func() float64 {
			return float64(ch.queue.Len())
		})
	}
}

// ChannelOf maps a block address to its channel (block-interleaved).
func (m *Memory) ChannelOf(addr uint64) int {
	return int((addr / uint64(m.cfg.BlockBytes)) % uint64(m.cfg.Channels))
}

// bankRow maps an address to (bank, row) within its channel. Consecutive
// blocks in a channel fill a row before moving to the next bank, so
// streaming accesses enjoy row-buffer locality.
func (m *Memory) bankRow(addr uint64) (int, int64) {
	chanBlock := addr / uint64(m.cfg.BlockBytes) / uint64(m.cfg.Channels)
	b := int((chanBlock / m.rowBlocks) % uint64(m.cfg.Banks))
	row := int64(chanBlock / m.rowBlocks / uint64(m.cfg.Banks))
	return b, row
}

// QueueLen reports unscheduled entries queued at a channel.
func (m *Memory) QueueLen(ch int) int { return m.chans[ch].queue.Len() }

// Enqueue offers a request to its channel's buffer at the given cycle. It
// returns false when the buffer is full (the caller must retry later,
// modelling backpressure into the interconnect). A request matching an
// already-buffered block merges instead (inter-core merging).
func (m *Memory) Enqueue(cycle uint64, r *memreq.Request) bool {
	ch := m.chans[m.ChannelOf(r.Addr)]
	if r.Kind != memreq.Writeback {
		if e, ok := ch.reads.Get(r.Addr); ok {
			// The rider arrives but is never scheduled itself: its data
			// comes with the carrying entry, so its span skips the
			// scheduler and bank sites.
			r.StampSpan(memreq.SpanDRAMArrive, cycle)
			r.SpanFlag(memreq.FlagDRAMMerged)
			m.mergeInto(e, r)
			return true
		}
	}
	if ch.queue.Len() >= m.cfg.QueueSize {
		// No stamp on a reject: the request retries from the simulator's
		// pending list and arrives for real when a slot frees.
		m.stats.Rejects++
		return false
	}
	r.StampSpan(memreq.SpanDRAMArrive, cycle)
	b, row := m.bankRow(r.Addr)
	e := m.getEntry(r, cycle, b, row)
	if r.Kind != memreq.Writeback {
		ch.reads.Put(r.Addr, e)
	}
	ch.queue.Push(e)
	return true
}

func (m *Memory) mergeInto(e *entry, r *memreq.Request) {
	m.stats.InterCoreMerges++
	// A demand merging into a buffered prefetch upgrades its priority.
	if r.Kind == memreq.Demand && e.req.Kind == memreq.Prefetch {
		e.req.DemandMerged = e.req.DemandMerged || e.req.WasPrefetch
		e.req.Kind = memreq.Demand
	}
	if len(e.merged) == cap(e.merged) {
		// Jump past append's small-capacity ladder: entries recycle
		// through the free-list for the whole run, so one right-sized
		// backing array replaces a 1-2-4-8 reallocation sequence.
		c := cap(e.merged) * 2
		if c < mergeEntryCap {
			c = mergeEntryCap
		}
		nm := make([]*memreq.Request, len(e.merged), c)
		copy(nm, e.merged)
		e.merged = nm
	}
	e.merged = append(e.merged, r)
}

// mergeEntryCap is the minimum merged capacity allocated on the first
// growth past the primed carve-out.
const mergeEntryCap = 16

// prio ranks an entry for FR-FCFS with demand priority: lower is better.
func (m *Memory) prio(cycle uint64, ch *channel, e *entry) int {
	hit := ch.banks[e.bank].openRow == e.row
	demand := e.req.Kind == memreq.Demand
	if !demand && m.cfg.AgePromote > 0 && cycle-e.arrive > uint64(m.cfg.AgePromote) {
		demand = true
	}
	switch {
	case demand && hit:
		return 0
	case demand:
		return 1
	case hit:
		return 2
	default:
		return 3
	}
}

// Step advances all channels to the given cycle: it completes finished
// accesses (appending every satisfied request, including merged ones, to
// done) and schedules new accesses. Writebacks complete silently and are
// not appended. The extended done slice is returned.
func (m *Memory) Step(cycle uint64, done []*memreq.Request) []*memreq.Request {
	for _, ch := range m.chans {
		done = m.stepChannel(cycle, ch, done)
	}
	return done
}

// pipelineDepth bounds how many scheduled accesses a channel may hold.
// It must cover the fixed access-latency window (Overhead/BusCycles deep)
// or the data bus can never saturate; 32 covers the baseline comfortably
// while keeping FR-FCFS decisions reasonably late.
const pipelineDepth = 32

func (m *Memory) stepChannel(cycle uint64, ch *channel, done []*memreq.Request) []*memreq.Request {
	// Retire completed accesses. The watermark makes the common
	// nothing-due cycle a single comparison instead of an inflight walk.
	if len(ch.inflight) > 0 && ch.minDone <= cycle {
		newMin := ^uint64(0)
		for i := 0; i < len(ch.inflight); {
			e := ch.inflight[i]
			if e.doneAt > cycle {
				if e.doneAt < newMin {
					newMin = e.doneAt
				}
				i++
				continue
			}
			ch.inflight[i] = ch.inflight[len(ch.inflight)-1]
			ch.inflight = ch.inflight[:len(ch.inflight)-1]
			if e.req.Kind != memreq.Writeback {
				ch.reads.Del(e.req.Addr)
				e.req.StampSpan(memreq.SpanDRAMDone, cycle)
				done = append(done, e.req)
			} else {
				m.pool.Put(e.req)
			}
			// Merged entries never hold writebacks (Enqueue only merges reads).
			for _, mr := range e.merged {
				mr.StampSpan(memreq.SpanDRAMDone, cycle)
			}
			done = append(done, e.merged...)
			m.putEntry(e)
		}
		ch.minDone = newMin
	}
	// Schedule at most one new access per call while the pipeline has room.
	if ch.queue.Len() == 0 || len(ch.inflight) >= pipelineDepth {
		return done
	}
	best := -1
	bestPrio := 4
	for i := 0; i < ch.queue.Len(); i++ {
		p := m.prio(cycle, ch, ch.queue.At(i))
		if p < bestPrio { // ties resolved oldest-first by scan order
			bestPrio = p
			best = i
		}
		if bestPrio == 0 {
			break
		}
	}
	e := ch.queue.RemoveAt(best)
	e.req.StampSpan(memreq.SpanDRAMSched, cycle)
	// L2 slice: a hit bypasses the banks and the data bus entirely.
	if ch.l2 != nil && e.req.Kind != memreq.Writeback && ch.l2.Lookup(e.req.Addr) {
		m.stats.L2Hits++
		e.req.SpanFlag(memreq.FlagL2Hit)
		e.doneAt = cycle + uint64(m.cfg.L2HitLatency)
		ch.track(e)
		ch.inflight = append(ch.inflight, e)
		return done
	}
	if ch.l2 != nil && e.req.Kind != memreq.Writeback {
		m.stats.L2Misses++
	}
	m.service(cycle, ch, e)
	ch.track(e)
	ch.inflight = append(ch.inflight, e)
	if ch.l2 != nil {
		// Fill on the way out (write-allocate for writebacks too); marked
		// used so L2 evictions never pollute early-eviction accounting.
		ch.l2.Fill(e.req.Addr, true)
	}
	return done
}

func (m *Memory) service(cycle uint64, ch *channel, e *entry) {
	row := e.row
	bk := &ch.banks[e.bank]
	start := cycle
	if bk.readyAt > start {
		start = bk.readyAt
	}
	e.req.StampSpan(memreq.SpanDRAMActivate, start)
	var access int
	switch {
	case bk.openRow == row:
		access = m.cfg.TCL
		m.stats.RowHits++
		e.req.SpanFlag(memreq.FlagRowHit)
	case bk.openRow == -1:
		access = m.cfg.TRCD + m.cfg.TCL
		m.stats.RowClosed++
		e.req.SpanFlag(memreq.FlagRowClosed)
	default:
		access = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCL
		m.stats.RowMisses++
		e.req.SpanFlag(memreq.FlagRowMiss)
	}
	bk.openRow = row
	bankDone := start + uint64(access)
	// The fixed overhead is pipeline latency (controller, command queues,
	// DRAM core), not occupancy: it delays the data without blocking the
	// bank or the bus.
	dataReady := bankDone + uint64(m.cfg.Overhead)
	busStart := dataReady
	if ch.busFreeAt > busStart {
		busStart = ch.busFreeAt
	}
	busDone := busStart + uint64(m.cfg.BusCycles)
	ch.busFreeAt = busDone
	bk.readyAt = bankDone
	e.doneAt = busDone
	m.stats.BusBusy += uint64(m.cfg.BusCycles)
	switch e.req.Kind {
	case memreq.Demand:
		m.stats.Demands++
	case memreq.Prefetch:
		m.stats.Prefetches++
	case memreq.Writeback:
		m.stats.Writebacks++
	}
}

// NextEvent reports the next cycle at which the memory system will act:
// cycle+1 while any channel can schedule (queue occupied with pipeline
// room — FR-FCFS ranking and age promotion are cycle-dependent, so every
// scheduling-opportunity cycle must be visited), otherwise the earliest
// in-flight completion. The maximum uint64 when fully drained. Part of
// the event-driven cycle-skipping contract (see core.Run).
func (m *Memory) NextEvent(cycle uint64) uint64 {
	// Cheap pass first: any channel able to schedule pins the next event
	// to the very next cycle, making the in-flight scan unnecessary.
	for _, ch := range m.chans {
		if ch.queue.Len() > 0 && len(ch.inflight) < pipelineDepth {
			return cycle + 1
		}
	}
	next := ^uint64(0)
	for _, ch := range m.chans {
		if len(ch.inflight) > 0 && ch.minDone < next {
			next = ch.minDone
		}
	}
	return next
}

// Drained reports whether no requests remain anywhere in the memory system.
func (m *Memory) Drained() bool {
	for _, ch := range m.chans {
		if ch.queue.Len() > 0 || len(ch.inflight) > 0 {
			return false
		}
	}
	return true
}
