package cache

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := New(16*1024, 8, 64)
	if c.Lookup(0x1000) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000) {
		t.Fatal("miss after fill")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGeometry(t *testing.T) {
	c := New(16*1024, 8, 64)
	if c.Sets() != 32 {
		t.Errorf("Sets = %d, want 32", c.Sets())
	}
}

func TestBlockGranularity(t *testing.T) {
	c := New(16*1024, 8, 64)
	c.Fill(0x1000, false)
	if !c.Lookup(0x103F) {
		t.Error("same-block offset missed")
	}
	if c.Lookup(0x1040) {
		t.Error("next block hit spuriously")
	}
}

func TestFirstUseCountedOnce(t *testing.T) {
	c := New(16*1024, 8, 64)
	c.Fill(0x40, false)
	c.Lookup(0x40)
	c.Lookup(0x40)
	c.Lookup(0x40)
	if got := c.Stats().FirstUses; got != 1 {
		t.Errorf("FirstUses = %d, want 1", got)
	}
}

func TestFillUsedMarksUseful(t *testing.T) {
	c := New(16*1024, 8, 64)
	c.Fill(0x40, true) // late prefetch that already served a demand
	if got := c.Stats().FirstUses; got != 1 {
		t.Errorf("FirstUses = %d, want 1", got)
	}
	// Evicting it later must not count as early.
	evictAll(c, 0x40)
	if got := c.Stats().EarlyEvictions; got != 0 {
		t.Errorf("EarlyEvictions = %d, want 0", got)
	}
}

// evictAll fills the set containing addr with conflicting blocks.
func evictAll(c *Cache, addr uint64) {
	setSpan := uint64(c.Sets() * 64)
	for i := 1; i <= 16; i++ {
		c.Fill(addr+uint64(i)*setSpan, true)
	}
}

func TestEarlyEviction(t *testing.T) {
	c := New(16*1024, 8, 64)
	c.Fill(0x40, false) // never used
	evictAll(c, 0x40)
	if got := c.Stats().EarlyEvictions; got != 1 {
		t.Errorf("EarlyEvictions = %d, want 1", got)
	}
	if c.Lookup(0x40) {
		t.Error("evicted block still resident")
	}
}

func TestUsedEvictionNotEarly(t *testing.T) {
	c := New(16*1024, 8, 64)
	c.Fill(0x40, false)
	c.Lookup(0x40) // use it
	evictAll(c, 0x40)
	if got := c.Stats().EarlyEvictions; got != 0 {
		t.Errorf("EarlyEvictions = %d, want 0 (block was used)", got)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(2*64, 2, 64) // 1 set, 2 ways
	c.Fill(0*64, true)
	c.Fill(32*64, true) // same set (any addr maps to set 0)
	c.Lookup(0)         // block 0 most recent
	c.Fill(64*64, true) // evicts block 32*64
	if !c.Lookup(0) {
		t.Error("LRU evicted the recently used block")
	}
	if c.Lookup(32 * 64) {
		t.Error("LRU kept the stale block")
	}
}

func TestDuplicateFillRefreshes(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Fill(0, false)
	c.Fill(0, false) // duplicate: no new fill/eviction
	s := c.Stats()
	if s.Fills != 1 || s.Evictions != 0 {
		t.Errorf("stats after dup fill = %+v", s)
	}
	// Duplicate fill with used=true upgrades the line.
	c.Fill(0, true)
	if got := c.Stats().FirstUses; got != 1 {
		t.Errorf("FirstUses = %d, want 1 after upgrade", got)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Fill(0, false)
	before := c.Stats()
	if !c.Contains(0) || c.Contains(64) {
		t.Error("Contains wrong")
	}
	if c.Stats() != before {
		t.Error("Contains mutated stats")
	}
	if got := c.Stats().FirstUses; got != 0 {
		t.Errorf("Contains marked block used: %d", got)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(16*1024, 8, 64)
	c.Fill(0x80, false)
	if !c.Invalidate(0x80) {
		t.Fatal("Invalidate missed resident block")
	}
	if c.Lookup(0x80) {
		t.Fatal("block resident after invalidate")
	}
	if got := c.Stats().EarlyEvictions; got != 1 {
		t.Errorf("unused invalidation should count early: %d", got)
	}
	if c.Invalidate(0x80) {
		t.Error("Invalidate hit absent block")
	}
}

func TestZeroSizeCacheAlwaysMisses(t *testing.T) {
	c := New(0, 8, 64)
	if c.Lookup(0x40) || c.Contains(0x40) {
		t.Error("zero-size cache hit")
	}
	if early, _ := c.Fill(0x40, false); early {
		t.Error("zero-size cache fill reported eviction")
	}
	if c.Invalidate(0x40) {
		t.Error("zero-size cache invalidated something")
	}
	if c.Occupancy() != 0 {
		t.Error("zero-size cache occupied")
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := New(1024, 4, 64) // 16 lines
	for i := 0; i < 100; i++ {
		c.Fill(uint64(i*64), true)
	}
	if got := c.Occupancy(); got != 16 {
		t.Errorf("Occupancy = %d, want 16", got)
	}
}

// Property: accounting identities hold under arbitrary operation sequences.
func TestAccountingInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(1024, 4, 64)
		for _, op := range ops {
			addr := uint64(op%64) * 64
			switch op % 3 {
			case 0:
				c.Lookup(addr)
			case 1:
				c.Fill(addr, op%5 == 0)
			case 2:
				c.Invalidate(addr)
			}
		}
		s := c.Stats()
		// Evictions never exceed fills; early evictions never exceed
		// evictions+invalidations; occupancy bounded by capacity.
		if s.Evictions > s.Fills {
			return false
		}
		if c.Occupancy() > 16 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFillReportsVictimAddress(t *testing.T) {
	c := New(64, 1, 64) // direct-mapped single line
	c.Fill(0x1000, false)
	early, victim := c.Fill(0x2000, false) // evicts the unused block
	if !early {
		t.Fatal("eviction of unused block not reported early")
	}
	if victim != 0x1000 {
		t.Errorf("victim = %#x, want 0x1000", victim)
	}
	// Evicting a used block reports neither early nor a victim.
	c.Lookup(0x2000)
	early, victim = c.Fill(0x3000, false)
	if early || victim != 0 {
		t.Errorf("used-block eviction misreported: early=%v victim=%#x", early, victim)
	}
}
