// Package cache implements the per-core prefetch cache: a set-associative,
// LRU-replaced block cache that additionally tracks whether each resident
// block has been used since it was prefetched.
//
// The early-eviction counter is the numerator of the paper's primary
// throttling metric (Eq. 5): a block evicted before its first use was a
// harmful prefetch — it consumed bandwidth and displaced useful blocks
// without ever serving a demand.
package cache

import (
	"fmt"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/simerr"
)

// Stats are the cache's lifetime counters. Accesses == Hits + Misses by
// construction; the invariant is asserted by the cross-component
// consistency tests.
type Stats struct {
	Accesses       uint64 // demand lookups
	Hits           uint64 // demand lookups that hit
	Misses         uint64 // demand lookups that missed
	Fills          uint64 // blocks inserted
	Evictions      uint64 // blocks displaced by fills
	EarlyEvictions uint64 // evicted before first use (harmful prefetches)
	FirstUses      uint64 // blocks used at least once (useful prefetches)
}

type line struct {
	tag   uint64
	valid bool
	used  bool
	lru   uint64 // last-touch stamp; higher = more recent
	prov  memreq.Provenance
}

// Cache is a set-associative block cache. The zero value is an always-miss
// cache (zero sets), which models a machine without a prefetch cache.
type Cache struct {
	sets      int
	ways      int
	blockBits uint
	setMask   uint64 // sets-1 when sets is a power of two, else 0
	occupied  int    // valid lines
	lines     []line // sets*ways, row-major by set
	stamp     uint64
	stats     Stats
	pf        *obs.PFReport // nil: attribution disabled
}

// New builds a cache with the given geometry. sizeBytes of zero yields an
// always-miss cache.
func New(sizeBytes, ways, blockBytes int) *Cache {
	c := &Cache{ways: ways}
	for b := blockBytes; b > 1; b >>= 1 {
		c.blockBits++
	}
	if sizeBytes > 0 && ways > 0 {
		c.sets = sizeBytes / blockBytes / ways
		c.lines = make([]line, c.sets*ways)
		if c.sets&(c.sets-1) == 0 {
			c.setMask = uint64(c.sets - 1)
		}
	}
	return c
}

// Empty reports whether no block is resident; the hot demand path uses it
// to skip per-transaction lookups when prefetching is inactive.
func (c *Cache) Empty() bool { return c.occupied == 0 }

// SetPFReport attaches prefetch attribution: the cache classifies hit,
// early-eviction, and drain outcomes against the provenance each fill
// carried. A nil report disables classification.
func (c *Cache) SetPFReport(p *obs.PFReport) { c.pf = p }

// Sets reports the number of sets (0 for the always-miss cache).
func (c *Cache) Sets() int { return c.sets }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Register wires the cache's counters into the observability registry
// under l.Component-prefixed names (e.g. "pfcache.hits"), so the same
// type can serve as a per-core prefetch cache or a shared slice without
// metric-name collisions.
func (c *Cache) Register(r *obs.Registry, l obs.Labels) {
	n := l.Component
	st := &c.stats
	r.CounterU64(n+".accesses", l, &st.Accesses)
	r.CounterU64(n+".hits", l, &st.Hits)
	r.CounterU64(n+".misses", l, &st.Misses)
	r.CounterU64(n+".fills", l, &st.Fills)
	r.CounterU64(n+".evictions", l, &st.Evictions)
	r.CounterU64(n+".early_evictions", l, &st.EarlyEvictions)
	r.CounterU64(n+".first_uses", l, &st.FirstUses)
	r.Gauge(n+".occupancy", l, func() float64 { return float64(c.occupied) })
}

func (c *Cache) set(addr uint64) []line {
	blk := addr >> c.blockBits
	var idx int
	if c.setMask != 0 {
		idx = int(blk & c.setMask)
	} else {
		idx = int(blk % uint64(c.sets))
	}
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// Lookup services a demand access: on hit the block is marked used and
// true is returned. The first use of a prefetched block increments
// FirstUses (Eq. 5 denominator, "useful prefetches").
func (c *Cache) Lookup(addr uint64) bool {
	c.stats.Accesses++
	if c.sets == 0 {
		c.stats.Misses++
		return false
	}
	set := c.set(addr)
	tag := addr >> c.blockBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lru = c.stamp
			if !set[i].used {
				set[i].used = true
				c.stats.FirstUses++
				if c.pf != nil {
					c.pf.Record(set[i].prov, memreq.OutUseful)
				}
			}
			if c.pf != nil {
				c.pf.Hit(set[i].prov)
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains reports residency without touching LRU, used bits, or stats
// (prefetch-candidate filtering must not perturb the replacement state).
func (c *Cache) Contains(addr uint64) bool {
	if c.sets == 0 {
		return false
	}
	set := c.set(addr)
	tag := addr >> c.blockBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts a prefetched block with no provenance (unattributed
// callers: the shared L2 slice, tests). See FillProv.
func (c *Cache) Fill(addr uint64, used bool) (earlyEvict bool, victimAddr uint64) {
	return c.FillProv(addr, used, memreq.Provenance{})
}

// FillProv inserts a prefetched block. used=true marks blocks that already
// served a demand on arrival (late prefetches that merged with a demand) so
// their eventual eviction is not counted as early. It reports whether an
// unused block was evicted (an early eviction) and, when so, the victim's
// block address — the input the pollution filter trains on.
//
// prov is remembered per line so attribution (when attached) can charge
// the eventual hit/eviction/drain outcome to the mechanism that issued
// the prefetch. A used=true fill is already terminally classified as late
// by the core, so only used=false fills are given a terminal here.
func (c *Cache) FillProv(addr uint64, used bool, prov memreq.Provenance) (earlyEvict bool, victimAddr uint64) {
	if c.sets == 0 {
		// The always-miss cache drops the block on the floor: an issued
		// prefetch that can never serve a demand is lost before use.
		if c.pf != nil && !used {
			c.pf.Record(prov, memreq.OutEarlyEvicted)
		}
		return false, 0
	}
	set := c.set(addr)
	tag := addr >> c.blockBits
	c.stamp++
	// Refresh on duplicate fill.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if used && !set[i].used {
				set[i].used = true
				c.stats.FirstUses++
				if c.pf != nil {
					// The resident line is consumed by the merged demand;
					// it will never see a false->true Lookup transition.
					c.pf.Record(set[i].prov, memreq.OutUseful)
				}
			}
			if c.pf != nil && !used {
				c.pf.Record(prov, memreq.OutRedundant)
			}
			return false, 0
		}
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if !set[victim].valid {
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
		if !set[victim].used {
			c.stats.EarlyEvictions++
			earlyEvict = true
			victimAddr = set[victim].tag << c.blockBits
			if c.pf != nil {
				c.pf.Record(set[victim].prov, memreq.OutEarlyEvicted)
			}
		}
	} else {
		c.occupied++
	}
	if used {
		c.stats.FirstUses++
	}
	c.stats.Fills++
	set[victim] = line{tag: tag, valid: true, used: used, lru: c.stamp, prov: prov}
	return earlyEvict, victimAddr
}

// Invalidate drops a block if present, reporting whether it was resident.
// An unused invalidated block counts as an early eviction.
func (c *Cache) Invalidate(addr uint64) bool {
	if c.sets == 0 {
		return false
	}
	set := c.set(addr)
	tag := addr >> c.blockBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if !set[i].used {
				c.stats.EarlyEvictions++
				if c.pf != nil {
					c.pf.Record(set[i].prov, memreq.OutEarlyEvicted)
				}
			}
			set[i].valid = false
			c.occupied--
			return true
		}
	}
	return false
}

// DrainUnused terminally classifies every still-resident, never-used line
// as unused-at-drain. The simulator calls it once when the run ends so
// the outcome ledger closes (every issued prefetch has exactly one fate).
func (c *Cache) DrainUnused() {
	if c.pf == nil {
		return
	}
	for i := range c.lines {
		if c.lines[i].valid && !c.lines[i].used {
			c.pf.Record(c.lines[i].prov, memreq.OutUnusedAtDrain)
		}
	}
}

// Occupancy returns the number of valid lines, for tests and debugging.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// CheckInvariants verifies line accounting (core.Options.Checks): the
// occupancy counter must match the number of valid lines — a fill or
// invalidation that loses track of a line breaks it — and the demand
// lookup counters must satisfy Accesses == Hits + Misses.
func (c *Cache) CheckInvariants(cycle uint64, core int) error {
	if valid := c.Occupancy(); valid != c.occupied {
		return &simerr.InvariantError{
			Component: "pfcache", Name: "entry-accounting", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: occupancy counter %d but %d valid lines", core, c.occupied, valid),
		}
	}
	if c.stats.Accesses != c.stats.Hits+c.stats.Misses {
		return &simerr.InvariantError{
			Component: "pfcache", Name: "lookup-accounting", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: %d accesses != %d hits + %d misses",
				core, c.stats.Accesses, c.stats.Hits, c.stats.Misses),
		}
	}
	return nil
}
