package noc

import (
	"testing"

	"mtprefetch/internal/memreq"
)

func req(addr uint64) *memreq.Request {
	return memreq.New(addr, 64, memreq.Demand, 0, 0, 0, 0)
}

func TestFixedLatencyDelivery(t *testing.T) {
	n := New(20, 7)
	r := req(64)
	if !n.TryInjectRequest(100, r) {
		t.Fatal("injection refused under budget")
	}
	if got := n.ArrivedRequests(119, nil); len(got) != 0 {
		t.Fatalf("delivered %d requests before latency elapsed", len(got))
	}
	got := n.ArrivedRequests(120, nil)
	if len(got) != 1 || got[0] != r {
		t.Fatalf("delivery at cycle 120 = %v", got)
	}
	// Nothing delivered twice.
	if got := n.ArrivedRequests(200, nil); len(got) != 0 {
		t.Fatal("request delivered twice")
	}
}

func TestInjectionLimitPerCycle(t *testing.T) {
	n := New(20, 2)
	if !n.TryInjectRequest(5, req(0)) || !n.TryInjectRequest(5, req(64)) {
		t.Fatal("within-budget injections refused")
	}
	if n.TryInjectRequest(5, req(128)) {
		t.Fatal("third injection in one cycle accepted with limit 2")
	}
	if got := n.Stats().InjectStalls; got != 1 {
		t.Errorf("InjectStalls = %d, want 1", got)
	}
	// Budget resets next cycle.
	if !n.TryInjectRequest(6, req(128)) {
		t.Fatal("injection refused after budget reset")
	}
}

func TestResponsesUnlimited(t *testing.T) {
	n := New(10, 1)
	for i := 0; i < 5; i++ {
		n.InjectResponse(0, req(uint64(i*64)))
	}
	got := n.ArrivedResponses(10, nil)
	if len(got) != 5 {
		t.Fatalf("responses delivered = %d, want 5", len(got))
	}
}

func TestOrderingPreserved(t *testing.T) {
	n := New(20, 10)
	addrs := []uint64{0, 64, 128, 192}
	for i, a := range addrs {
		n.TryInjectRequest(uint64(i), req(a))
	}
	var got []uint64
	for _, r := range n.ArrivedRequests(100, nil) {
		got = append(got, r.Addr)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("order = %v, want %v", got, addrs)
		}
	}
}

func TestInFlightAccounting(t *testing.T) {
	n := New(20, 10)
	n.TryInjectRequest(0, req(0))
	n.InjectResponse(0, req(64))
	if got := n.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	n.ArrivedRequests(50, nil)
	n.ArrivedResponses(50, nil)
	if got := n.InFlight(); got != 0 {
		t.Errorf("InFlight after drain = %d, want 0", got)
	}
}

func TestFIFOCompaction(t *testing.T) {
	// Push and drain enough to trigger internal compaction.
	n := New(1, 1000)
	for c := uint64(0); c < 500; c++ {
		if !n.TryInjectRequest(c, req(c*64)) {
			t.Fatal("injection refused")
		}
		got := n.ArrivedRequests(c, nil)
		if c == 0 {
			if len(got) != 0 {
				t.Fatal("zero-latency-like delivery")
			}
			continue
		}
		if len(got) != 1 || got[0].Addr != (c-1)*64 {
			t.Fatalf("cycle %d: got %v", c, got)
		}
	}
}

func TestZeroLatency(t *testing.T) {
	n := New(0, 10)
	n.TryInjectRequest(7, req(0))
	if got := n.ArrivedRequests(7, nil); len(got) != 1 {
		t.Fatalf("zero-latency delivery = %d msgs, want 1", len(got))
	}
}

func TestStatsCounters(t *testing.T) {
	n := New(5, 2)
	n.TryInjectRequest(0, req(0))
	n.TryInjectRequest(0, req(64))
	n.TryInjectRequest(0, req(128)) // refused
	n.InjectResponse(0, req(192))
	s := n.Stats()
	if s.RequestsInjected != 2 || s.ResponsesInjected != 1 || s.InjectStalls != 1 {
		t.Errorf("stats = %+v", s)
	}
}
