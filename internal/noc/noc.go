// Package noc models the interconnection network between cores and memory
// controllers: a fixed 20-cycle latency in each direction, with request
// injection limited to one request from every 2 cores per cycle (Table II).
package noc

import (
	"fmt"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/ring"
	"mtprefetch/internal/simerr"
)

// Stats are the network's lifetime counters.
type Stats struct {
	RequestsInjected   uint64
	ResponsesInjected  uint64
	RequestsDelivered  uint64
	ResponsesDelivered uint64
	InjectStalls       uint64 // injection attempts refused by the per-cycle limit
}

type delivery struct {
	at  uint64
	req *memreq.Request
}

// Network is the core<->memory interconnect. Because the latency is fixed,
// each direction is a simple FIFO of timestamped deliveries; the ring
// buffers reach a steady state after warmup, so pushes and pops stop
// allocating.
type Network struct {
	latency           int
	maxInject         int
	toMem             ring.Buffer[delivery]
	toCore            ring.Buffer[delivery]
	curCycle          uint64
	injectedThisCycle int
	stats             Stats
}

// New creates a network with the given one-way latency and per-cycle
// request-injection limit.
func New(latency, maxInjectPerCycle int) *Network {
	return &Network{latency: latency, maxInject: maxInjectPerCycle}
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Register wires the network's lifetime counters and its per-direction
// in-flight gauges into the registry. The gauges expose the link depth
// each way — the queue a span's noc_req / noc_resp stage waits in.
func (n *Network) Register(r *obs.Registry, l obs.Labels) {
	st := &n.stats
	r.CounterU64("noc.requests_injected", l, &st.RequestsInjected)
	r.CounterU64("noc.responses_injected", l, &st.ResponsesInjected)
	r.CounterU64("noc.requests_delivered", l, &st.RequestsDelivered)
	r.CounterU64("noc.responses_delivered", l, &st.ResponsesDelivered)
	r.CounterU64("noc.inject_stalls", l, &st.InjectStalls)
	r.Gauge("noc.req_in_flight", l, func() float64 { return float64(n.toMem.Len()) })
	r.Gauge("noc.resp_in_flight", l, func() float64 { return float64(n.toCore.Len()) })
}

func (n *Network) tick(cycle uint64) {
	if cycle != n.curCycle {
		n.curCycle = cycle
		n.injectedThisCycle = 0
	}
}

// TryInjectRequest offers a core->memory request at the given cycle. It
// returns false when this cycle's injection budget is exhausted.
func (n *Network) TryInjectRequest(cycle uint64, r *memreq.Request) bool {
	n.tick(cycle)
	if n.injectedThisCycle >= n.maxInject {
		n.stats.InjectStalls++
		return false
	}
	n.injectedThisCycle++
	n.stats.RequestsInjected++
	n.toMem.Push(delivery{at: cycle + uint64(n.latency), req: r})
	return true
}

// InjectResponse sends a memory->core response (fill); responses are not
// rate-limited here — the DRAM data bus already paces them.
func (n *Network) InjectResponse(cycle uint64, r *memreq.Request) {
	n.stats.ResponsesInjected++
	n.toCore.Push(delivery{at: cycle + uint64(n.latency), req: r})
}

// ArrivedRequests appends to buf every request due at or before cycle and
// returns the extended slice.
func (n *Network) ArrivedRequests(cycle uint64, buf []*memreq.Request) []*memreq.Request {
	for {
		d, ok := n.toMem.Front()
		if !ok || d.at > cycle {
			return buf
		}
		n.toMem.Pop()
		buf = append(buf, d.req)
		n.stats.RequestsDelivered++
	}
}

// ArrivedResponses appends to buf every response due at or before cycle
// and returns the extended slice.
func (n *Network) ArrivedResponses(cycle uint64, buf []*memreq.Request) []*memreq.Request {
	for {
		d, ok := n.toCore.Front()
		if !ok || d.at > cycle {
			return buf
		}
		n.toCore.Pop()
		buf = append(buf, d.req)
		n.stats.ResponsesDelivered++
	}
}

// InFlight reports messages currently traversing the network.
func (n *Network) InFlight() int { return n.toMem.Len() + n.toCore.Len() }

// NextEvent reports the earliest cycle at which a message is due for
// delivery in either direction, or the maximum uint64 when the network
// is empty. The fixed latency makes delivery times monotonic within each
// direction, so each FIFO head is that direction's minimum. Part of the
// event-driven cycle-skipping contract (see core.Run).
func (n *Network) NextEvent() uint64 {
	next := ^uint64(0)
	if d, ok := n.toMem.Front(); ok {
		next = d.at
	}
	if d, ok := n.toCore.Front(); ok && d.at < next {
		next = d.at
	}
	return next
}

// CheckInvariants verifies flit conservation (core.Options.Checks):
// every message injected and not yet delivered must still be traversing
// the network — a dropped or duplicated flit breaks the identity.
func (n *Network) CheckInvariants(cycle uint64) error {
	want := int(n.stats.RequestsInjected-n.stats.RequestsDelivered) +
		int(n.stats.ResponsesInjected-n.stats.ResponsesDelivered)
	if got := n.InFlight(); got != want {
		return &simerr.InvariantError{
			Component: "noc", Name: "flit-conservation", Cycle: cycle,
			Detail: fmt.Sprintf("%d messages in flight but injected-delivered = %d (req %d-%d, resp %d-%d)",
				got, want, n.stats.RequestsInjected, n.stats.RequestsDelivered,
				n.stats.ResponsesInjected, n.stats.ResponsesDelivered),
		}
	}
	return nil
}
