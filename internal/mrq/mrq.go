// Package mrq implements the per-core Memory Request Queue with intra-core
// merging (Fig. 2a of the paper).
//
// A new request whose block address matches an outstanding entry merges
// into it instead of occupying a slot. Merges are the numerator of the
// throttle engine's merge-ratio metric (Eq. 6); a demand merging into an
// in-flight prefetch additionally marks that prefetch "late".
package mrq

import (
	"fmt"
	"mtprefetch/internal/addrmap"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/ring"
	"mtprefetch/internal/simerr"
)

// AddResult reports what happened to a request offered to the queue.
type AddResult uint8

const (
	// Accepted means a new entry was allocated.
	Accepted AddResult = iota
	// Merged means the request folded into an existing entry.
	Merged
	// Rejected means the queue was full; the issuer must stall and retry.
	Rejected
)

// Stats are the queue's lifetime counters.
type Stats struct {
	Demands    uint64 // new demand entries
	Prefetches uint64 // new prefetch entries
	Writebacks uint64 // new writeback entries
	Merges     uint64 // intra-core merges of any kind (Eq. 6 numerator)

	DemandIntoPrefetch uint64 // late-prefetch merges
	PrefetchMerged     uint64 // prefetches dropped into existing entries
	Rejects            uint64
}

// TotalArrivals is the denominator of the merge ratio: every request that
// arrived at the queue, whether it allocated or merged.
func (s *Stats) TotalArrivals() uint64 {
	return s.Demands + s.Prefetches + s.Writebacks + s.Merges
}

// Queue is one core's MRQ. It tracks entries from allocation until the
// fill returns (Complete), so in-flight requests still absorb merges, like
// an MSHR file.
type Queue struct {
	capacity    int
	byAddr      *addrmap.Table[*memreq.Request]
	sendq       ring.Buffer[*memreq.Request]
	outstanding int
	stats       Stats
	pf          *obs.PFReport // nil: attribution disabled
}

// New creates a queue with the given entry capacity.
func New(capacity int) *Queue {
	return &Queue{
		capacity: capacity,
		byAddr:   addrmap.New[*memreq.Request](capacity),
	}
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats { return q.stats }

// Register wires the queue's counters and its occupancy gauge (the MSHR
// occupancy series of the epoch sampler) into the registry.
func (q *Queue) Register(r *obs.Registry, l obs.Labels) {
	st := &q.stats
	r.CounterU64("mrq.demands", l, &st.Demands)
	r.CounterU64("mrq.prefetches", l, &st.Prefetches)
	r.CounterU64("mrq.writebacks", l, &st.Writebacks)
	r.CounterU64("mrq.merges", l, &st.Merges)
	r.CounterU64("mrq.demand_into_prefetch", l, &st.DemandIntoPrefetch)
	r.CounterU64("mrq.prefetch_merged", l, &st.PrefetchMerged)
	r.CounterU64("mrq.rejects", l, &st.Rejects)
	r.Gauge("mrq.outstanding", l, func() float64 { return float64(q.outstanding) })
	r.Gauge("mrq.sendq", l, func() float64 { return float64(q.sendq.Len()) })
}

// SetPFReport attaches prefetch attribution: the queue reports
// demand-into-prefetch merges per provenance bucket (the per-source view
// of the Eq. 6 lateness signal). A nil report disables it.
func (q *Queue) SetPFReport(p *obs.PFReport) { q.pf = p }

// Outstanding reports occupied entries (queued or in flight).
func (q *Queue) Outstanding() int { return q.outstanding }

// Capacity reports the queue's entry capacity.
func (q *Queue) Capacity() int { return q.capacity }

// OldestIssueCycle reports the earliest issue cycle among in-flight
// tracked entries, ok=false when none are in flight. It walks the entry
// table, so it is for epoch-boundary telemetry (the latency-tolerance
// snapshot's oldest-outstanding-fill age), not the per-cycle path.
func (q *Queue) OldestIssueCycle() (uint64, bool) {
	var oldest uint64
	found := false
	q.byAddr.Each(func(r *memreq.Request) {
		if !found || r.IssueCycle < oldest {
			oldest = r.IssueCycle
			found = true
		}
	})
	return oldest, found
}

// SendQueueLen reports requests accepted but not yet injected into the
// network, for diagnostic snapshots.
func (q *Queue) SendQueueLen() int { return q.sendq.Len() }

// WaiterCount sums the waiters attached to in-flight entries, the MRQ
// side of the core's scoreboard-balance invariant.
func (q *Queue) WaiterCount() int {
	n := 0
	q.byAddr.Each(func(r *memreq.Request) { n += len(r.Waiters) })
	return n
}

// CheckInvariants verifies entry accounting (core.Options.Checks): every
// occupied slot must be either an in-flight tracked entry or an unsent
// writeback — an entry completed twice or never completed breaks the
// identity — and occupancy must stay within [0, capacity].
func (q *Queue) CheckInvariants(cycle uint64, core int) error {
	wbs := 0
	for i := 0; i < q.sendq.Len(); i++ {
		if q.sendq.At(i).Kind == memreq.Writeback {
			wbs++
		}
	}
	if want := q.byAddr.Len() + wbs; q.outstanding != want {
		return &simerr.InvariantError{
			Component: "mrq", Name: "entry-accounting", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: %d slots occupied but %d in-flight entries + %d unsent writebacks",
				core, q.outstanding, q.byAddr.Len(), wbs),
		}
	}
	if q.outstanding < 0 || q.outstanding > q.capacity {
		return &simerr.InvariantError{
			Component: "mrq", Name: "capacity", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: occupancy %d outside [0, %d]", core, q.outstanding, q.capacity),
		}
	}
	return nil
}

// Lookup returns the outstanding entry for a block address, or nil. It is
// used by prefetch generation to drop candidates already in flight.
func (q *Queue) Lookup(addr uint64) *memreq.Request { r, _ := q.byAddr.Get(addr); return r }

// NextEvent reports the next cycle at which the queue itself has work to
// drive: cycle+1 while a sendable entry waits for NOC injection, and
// never otherwise (completions are the memory system's events). It is
// part of the event-driven cycle-skipping contract (see core.Run).
func (q *Queue) NextEvent(cycle uint64) uint64 {
	if q.sendq.Len() > 0 {
		return cycle + 1
	}
	return ^uint64(0)
}

// Add offers a request to the queue.
func (q *Queue) Add(r *memreq.Request) AddResult {
	if r.Kind != memreq.Writeback {
		if existing, ok := q.byAddr.Get(r.Addr); ok {
			q.stats.Merges++
			switch r.Kind {
			case memreq.Demand:
				if existing.Kind == memreq.Prefetch {
					q.stats.DemandIntoPrefetch++
					if q.pf != nil {
						q.pf.DemandMerge(existing.Prov)
					}
				}
				existing.MergeDemand(r.Waiters)
			case memreq.Prefetch:
				q.stats.PrefetchMerged++
			}
			return Merged
		}
	}
	if q.outstanding >= q.capacity {
		q.stats.Rejects++
		return Rejected
	}
	q.outstanding++
	switch r.Kind {
	case memreq.Demand:
		q.stats.Demands++
	case memreq.Prefetch:
		q.stats.Prefetches++
	case memreq.Writeback:
		q.stats.Writebacks++
	}
	if r.Kind != memreq.Writeback {
		q.byAddr.Put(r.Addr, r)
	}
	q.sendq.Push(r)
	return Accepted
}

// NextSend peeks the oldest unsent request, or nil.
func (q *Queue) NextSend() *memreq.Request {
	r, _ := q.sendq.Front()
	return r
}

// PopSend removes and returns the oldest unsent request. Writebacks are
// fire-and-forget: popping one frees its entry immediately.
func (q *Queue) PopSend() *memreq.Request {
	r, ok := q.sendq.Pop()
	if !ok {
		return nil
	}
	if r.Kind == memreq.Writeback {
		q.outstanding--
	}
	return r
}

// Complete retires the entry for a returned fill and hands it back with
// any merged waiters. It returns nil for unknown addresses.
func (q *Queue) Complete(addr uint64) *memreq.Request {
	r, ok := q.byAddr.Del(addr)
	if !ok {
		return nil
	}
	q.outstanding--
	return r
}
