package mrq

import (
	"testing"

	"mtprefetch/internal/memreq"
)

func demand(addr uint64, warp int) *memreq.Request {
	r := memreq.New(addr, 64, memreq.Demand, 0, warp, 1, 0)
	r.Waiters = []memreq.Waiter{{Warp: int32(warp), Reg: 1}}
	return r
}

func prefetch(addr uint64) *memreq.Request {
	return memreq.New(addr, 64, memreq.Prefetch, 0, 0, 1, 0)
}

func TestAcceptAndComplete(t *testing.T) {
	q := New(4)
	if got := q.Add(demand(64, 1)); got != Accepted {
		t.Fatalf("Add = %v, want Accepted", got)
	}
	if q.Outstanding() != 1 {
		t.Errorf("Outstanding = %d, want 1", q.Outstanding())
	}
	r := q.Complete(64)
	if r == nil || len(r.Waiters) != 1 {
		t.Fatalf("Complete returned %+v", r)
	}
	if q.Outstanding() != 0 {
		t.Errorf("Outstanding after complete = %d, want 0", q.Outstanding())
	}
	if q.Complete(64) != nil {
		t.Error("double Complete returned an entry")
	}
}

func TestDemandDemandMerge(t *testing.T) {
	q := New(4)
	q.Add(demand(64, 1))
	if got := q.Add(demand(64, 2)); got != Merged {
		t.Fatalf("second demand = %v, want Merged", got)
	}
	r := q.Complete(64)
	if len(r.Waiters) != 2 {
		t.Errorf("merged waiters = %d, want 2", len(r.Waiters))
	}
	s := q.Stats()
	if s.Merges != 1 || s.Demands != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.DemandIntoPrefetch != 0 {
		t.Error("demand-demand merge counted as late prefetch")
	}
}

func TestDemandIntoPrefetchMarksLate(t *testing.T) {
	q := New(4)
	q.Add(prefetch(128))
	if got := q.Add(demand(128, 3)); got != Merged {
		t.Fatalf("demand into prefetch = %v, want Merged", got)
	}
	r := q.Complete(128)
	if r.Kind != memreq.Demand || !r.DemandMerged || !r.WasPrefetch {
		t.Errorf("merged request state wrong: %+v", r)
	}
	if got := q.Stats().DemandIntoPrefetch; got != 1 {
		t.Errorf("DemandIntoPrefetch = %d, want 1", got)
	}
}

func TestPrefetchIntoExistingDropped(t *testing.T) {
	q := New(4)
	q.Add(demand(64, 1))
	if got := q.Add(prefetch(64)); got != Merged {
		t.Fatalf("prefetch into demand = %v, want Merged", got)
	}
	s := q.Stats()
	if s.PrefetchMerged != 1 {
		t.Errorf("PrefetchMerged = %d, want 1", s.PrefetchMerged)
	}
	// Only one entry allocated, one send queued.
	if q.Outstanding() != 1 {
		t.Errorf("Outstanding = %d, want 1", q.Outstanding())
	}
	q.PopSend()
	if q.NextSend() != nil {
		t.Error("merged prefetch queued a second send")
	}
}

func TestCapacityRejects(t *testing.T) {
	q := New(2)
	q.Add(demand(64, 1))
	q.Add(demand(128, 2))
	if got := q.Add(demand(192, 3)); got != Rejected {
		t.Fatalf("over-capacity Add = %v, want Rejected", got)
	}
	if got := q.Stats().Rejects; got != 1 {
		t.Errorf("Rejects = %d, want 1", got)
	}
	// Merging is still allowed at capacity.
	if got := q.Add(demand(64, 4)); got != Merged {
		t.Errorf("merge at capacity = %v, want Merged", got)
	}
}

func TestSendOrderFIFO(t *testing.T) {
	q := New(4)
	q.Add(demand(64, 1))
	q.Add(prefetch(128))
	q.Add(demand(192, 2))
	var got []uint64
	for r := q.PopSend(); r != nil; r = q.PopSend() {
		got = append(got, r.Addr)
	}
	want := []uint64{64, 128, 192}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("send order = %v, want %v", got, want)
		}
	}
}

func TestInFlightStillMerges(t *testing.T) {
	q := New(4)
	q.Add(demand(64, 1))
	q.PopSend() // now in flight
	if got := q.Add(demand(64, 2)); got != Merged {
		t.Fatalf("merge with in-flight = %v, want Merged", got)
	}
	r := q.Complete(64)
	if len(r.Waiters) != 2 {
		t.Errorf("in-flight merge lost waiters: %d", len(r.Waiters))
	}
}

func TestWritebackFireAndForget(t *testing.T) {
	q := New(2)
	wb := memreq.New(64, 64, memreq.Writeback, 0, 0, 0, 0)
	if got := q.Add(wb); got != Accepted {
		t.Fatalf("writeback Add = %v", got)
	}
	// Writebacks do not merge with loads at the same address.
	if got := q.Add(demand(64, 1)); got != Accepted {
		t.Fatalf("demand after writeback = %v, want Accepted", got)
	}
	if q.Outstanding() != 2 {
		t.Errorf("Outstanding = %d, want 2", q.Outstanding())
	}
	q.PopSend() // sends the writeback, freeing its slot
	if q.Outstanding() != 1 {
		t.Errorf("Outstanding after writeback send = %d, want 1", q.Outstanding())
	}
	// A second writeback to the same address also does not merge.
	wb2 := memreq.New(64, 64, memreq.Writeback, 0, 0, 0, 0)
	if got := q.Add(wb2); got != Accepted {
		t.Errorf("second writeback = %v, want Accepted", got)
	}
}

func TestLookup(t *testing.T) {
	q := New(4)
	p := prefetch(256)
	q.Add(p)
	if q.Lookup(256) != p {
		t.Error("Lookup missed outstanding prefetch")
	}
	if q.Lookup(512) != nil {
		t.Error("Lookup invented an entry")
	}
}

func TestTotalArrivals(t *testing.T) {
	q := New(8)
	q.Add(demand(64, 1)) // demand
	q.Add(demand(64, 2)) // merge
	q.Add(prefetch(128)) // prefetch
	q.Add(prefetch(128)) // merge
	wb := memreq.New(192, 64, memreq.Writeback, 0, 0, 0, 0)
	q.Add(wb) // writeback
	s := q.Stats()
	if got := s.TotalArrivals(); got != 5 {
		t.Errorf("TotalArrivals = %d, want 5", got)
	}
	if s.Merges != 2 {
		t.Errorf("Merges = %d, want 2", s.Merges)
	}
}

func TestPopSendEmpty(t *testing.T) {
	q := New(2)
	if q.PopSend() != nil || q.NextSend() != nil {
		t.Error("empty queue returned a request")
	}
}
