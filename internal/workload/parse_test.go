package workload

import (
	"strings"
	"testing"

	"mtprefetch/internal/kernel"
)

const demoKernel = `
# a sliding-window stride kernel
kernel demo warps=1024 blocks=128 maxblk=2 regs=20 class=stride
loop 8
  load   A0 lane=4 iter=128
  load   A0 lane=4 iter=128 offset=128
  compute 6
  imul 1
  store  A1 lane=4 iter=128
end
`

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(demoKernel)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || s.TotalWarps != 1024 || s.Blocks != 128 ||
		s.MaxBlocksPerCore != 2 || s.RegsPerThread != 20 || s.Class != Stride {
		t.Fatalf("header parsed wrong: %+v", s)
	}
	if !s.Program.HasLoop() || s.Program.LoopTrips != 8 {
		t.Fatal("loop lost")
	}
	c := s.Program.DynamicCounts()
	if c.Loads != 16 { // 2 loads x 8 trips
		t.Errorf("dynamic loads = %d, want 16", c.Loads)
	}
	if c.Compute != 7*8 { // 6 alu + 1 imul per trip
		t.Errorf("dynamic compute = %d, want 56", c.Compute)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecAccessAttributes(t *testing.T) {
	src := `
kernel x warps=32 blocks=32 maxblk=1
load A2 lane=64 hash span=1048576
load A3 lane=4 shared=16
prefetch A2 lane=64 warpahead=1
store A4 lane=4
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	in := s.Program.Instrs
	if !in[0].Mem.Hash || in[0].Mem.Span != 1<<20 || in[0].Mem.Array != 2 {
		t.Errorf("hash load parsed wrong: %+v", in[0].Mem)
	}
	if in[1].Mem.WarpPeriod != 16 {
		t.Errorf("shared load parsed wrong: %+v", in[1].Mem)
	}
	if in[2].Op != kernel.OpPrefetch || in[2].Mem.WarpAhead != 1 {
		t.Errorf("prefetch parsed wrong: %+v", in[2])
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no header", "load A0 lane=4"},
		{"duplicate header", "kernel a warps=32 blocks=32\nkernel b warps=32 blocks=32"},
		{"missing grid", "kernel a\nload A0 lane=4"},
		{"bad warps", "kernel a warps=x blocks=32\nload A0 lane=4"},
		{"indivisible warps", "kernel a warps=33 blocks=32\nload A0 lane=4"},
		{"unknown class", "kernel a warps=32 blocks=32 class=weird\nload A0 lane=4"},
		{"unknown directive", "kernel a warps=32 blocks=32\nfly A0"},
		{"bad array", "kernel a warps=32 blocks=32\nload B0 lane=4"},
		{"bad attribute", "kernel a warps=32 blocks=32\nload A0 lane=four"},
		{"unknown attribute", "kernel a warps=32 blocks=32\nload A0 wat=4"},
		{"nested loop", "kernel a warps=32 blocks=32\nloop 2\nloop 2\ncompute 1\nend\nend"},
		{"unclosed loop", "kernel a warps=32 blocks=32\nloop 2\ncompute 1"},
		{"end without loop", "kernel a warps=32 blocks=32\ncompute 1\nend"},
		{"zero trips", "kernel a warps=32 blocks=32\nloop 0\ncompute 1\nend"},
		{"no instructions", "kernel a warps=32 blocks=32"},
		{"compute without count", "kernel a warps=32 blocks=32\ncompute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpec(tc.src); err == nil {
				t.Errorf("ParseSpec accepted %q", tc.name)
			}
		})
	}
}

func TestParseSpecErrorHasLineNumber(t *testing.T) {
	_, err := ParseSpec("kernel a warps=32 blocks=32\nload A0 lane=4\nfly")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v should name line 3", err)
	}
}

func TestParsedSpecMatchesBuiltEquivalent(t *testing.T) {
	// The parsed demo kernel must coalesce identically to the same kernel
	// built through the Go API.
	s, err := ParseSpec(demoKernel)
	if err != nil {
		t.Fatal(err)
	}
	b := kernel.NewBuilder("demo")
	b.BeginLoop(8)
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4, IterStrideB: 128})
	b.Load(kernel.Access{Array: 0, LaneStrideB: 4, IterStrideB: 128, Offset: 128})
	r := b.Compute(6, v)
	r = b.IMul(r)
	b.Store(kernel.Access{Array: 1, LaneStrideB: 4, IterStrideB: 128}, r)
	b.EndLoop()
	want := b.MustBuild()
	for i := range want.Instrs {
		wi, gi := &want.Instrs[i], &s.Program.Instrs[i]
		if wi.Op != gi.Op {
			t.Fatalf("instr %d op %v vs %v", i, gi.Op, wi.Op)
		}
		if wi.Mem != nil && *wi.Mem != *gi.Mem {
			t.Fatalf("instr %d access %+v vs %+v", i, gi.Mem, wi.Mem)
		}
	}
}
