package workload

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"mtprefetch/internal/kernel"
)

// ParseSpec reads a benchmark description in the mtprefetch kernel text
// format, so users can study their own workloads without writing Go:
//
//	kernel mykernel warps=1024 blocks=128 maxblk=2 regs=16 class=stride
//	loop 16
//	  load   A0 lane=4 iter=128
//	  load   A0 lane=4 iter=128 offset=128
//	  compute 8
//	  imul 1
//	  prefetch A0 lane=4 iter=128 iterahead=1
//	  store  A1 lane=4 iter=128
//	end
//
// Lines are instructions in program order; `#` starts a comment. Loads
// and stores name an array (A0, A1, ...) and take lane=/iter=/offset=
// byte strides, plus `hash` (irregular) and `shared=N` (data shared by
// groups of N warps). `loop N`/`end` bracket the single loop. Values and
// classes mirror the fields of Spec and kernel.Access.
func ParseSpec(src string) (*Spec, error) {
	s := &Spec{Suite: "user", Class: MP, RegsPerThread: 16}
	b := kernel.NewBuilder("user")
	var lastVal kernel.Reg
	inLoop := false
	sawKernel := false
	sc := bufio.NewScanner(strings.NewReader(src))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "kernel":
			if sawKernel {
				return nil, fail("duplicate kernel header")
			}
			sawKernel = true
			if len(fields) < 2 {
				return nil, fail("kernel needs a name")
			}
			s.Name = fields[1]
			for _, f := range fields[2:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fail("bad kernel attribute %q", f)
				}
				switch k {
				case "warps", "blocks", "maxblk", "regs":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, fail("bad %s=%q", k, v)
					}
					switch k {
					case "warps":
						s.TotalWarps = n
					case "blocks":
						s.Blocks = n
					case "maxblk":
						s.MaxBlocksPerCore = n
					case "regs":
						s.RegsPerThread = n
					}
				case "class":
					switch v {
					case "stride":
						s.Class = Stride
					case "mp":
						s.Class = MP
					case "uncoal":
						s.Class = Uncoal
					case "non-intensive":
						s.Class = NonIntensive
					default:
						return nil, fail("unknown class %q", v)
					}
				default:
					return nil, fail("unknown kernel attribute %q", k)
				}
			}
		case "loop":
			if !sawKernel {
				return nil, fail("loop before kernel header")
			}
			if inLoop {
				return nil, fail("nested loop")
			}
			if len(fields) != 2 {
				return nil, fail("loop needs a trip count")
			}
			trips, err := strconv.Atoi(fields[1])
			if err != nil || trips < 1 {
				return nil, fail("bad trip count %q", fields[1])
			}
			b.BeginLoop(trips)
			inLoop = true
		case "end":
			if !inLoop {
				return nil, fail("end without loop")
			}
			b.EndLoop()
			inLoop = false
		case "load", "store", "prefetch":
			if !sawKernel {
				return nil, fail("%s before kernel header", fields[0])
			}
			if len(fields) < 2 {
				return nil, fail("%s needs an array", fields[0])
			}
			acc, err := parseAccess(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			switch fields[0] {
			case "load":
				lastVal = b.Load(*acc)
			case "store":
				b.Store(*acc, lastVal)
			case "prefetch":
				b.Prefetch(*acc)
			}
		case "compute", "imul", "fdiv":
			if len(fields) != 2 {
				return nil, fail("%s needs a count", fields[0])
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fail("bad count %q", fields[1])
			}
			switch fields[0] {
			case "compute":
				lastVal = b.Compute(n, lastVal)
			case "imul":
				for i := 0; i < n; i++ {
					lastVal = b.IMul(lastVal)
				}
			case "fdiv":
				for i := 0; i < n; i++ {
					lastVal = b.FDiv(lastVal)
				}
			}
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawKernel {
		return nil, fmt.Errorf("missing kernel header")
	}
	if inLoop {
		return nil, fmt.Errorf("unclosed loop")
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = s.Name
	s.Program = prog
	if s.TotalWarps == 0 || s.Blocks == 0 {
		return nil, fmt.Errorf("kernel header must set warps= and blocks=")
	}
	if s.MaxBlocksPerCore == 0 {
		s.MaxBlocksPerCore = 1
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseAccess(fields []string) (*kernel.Access, error) {
	name := fields[0]
	if len(name) < 2 || name[0] != 'A' {
		return nil, fmt.Errorf("array must be named A<n>, got %q", name)
	}
	idx, err := strconv.Atoi(name[1:])
	if err != nil || idx < 0 {
		return nil, fmt.Errorf("bad array name %q", name)
	}
	acc := &kernel.Access{Array: idx}
	for _, f := range fields[1:] {
		if f == "hash" {
			acc.Hash = true
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("bad access attribute %q", f)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad value in %q", f)
		}
		switch k {
		case "lane":
			acc.LaneStrideB = uint64(n)
		case "iter":
			acc.IterStrideB = uint64(n)
		case "offset":
			acc.Offset = uint64(n)
		case "span":
			acc.Span = uint64(n)
		case "shared":
			acc.WarpPeriod = n
		case "iterahead":
			acc.IterAhead = n
		case "warpahead":
			acc.WarpAhead = n
		default:
			return nil, fmt.Errorf("unknown access attribute %q", k)
		}
	}
	return acc, nil
}
