package workload

import (
	"testing"

	"mtprefetch/internal/kernel"
)

func TestSuiteComposition(t *testing.T) {
	if got := len(MemoryIntensive()); got != 14 {
		t.Errorf("memory-intensive count = %d, want 14 (Table III)", got)
	}
	if got := len(NonIntensiveSpecs()); got != 12 {
		t.Errorf("non-intensive count = %d, want 12 (Table IV)", got)
	}
	if got := len(Specs()); got != 26 {
		t.Errorf("total suite = %d, want 26", got)
	}
	if got := len(ByClass(Stride)); got != 7 {
		t.Errorf("stride-type count = %d, want 7", got)
	}
	if got := len(ByClass(MP)); got != 3 {
		t.Errorf("mp-type count = %d, want 3", got)
	}
	if got := len(ByClass(Uncoal)); got != 4 {
		t.Errorf("uncoal-type count = %d, want 4", got)
	}
}

func TestAllSpecsValid(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestTableIIIGridParameters pins the published per-benchmark grid values.
func TestTableIIIGridParameters(t *testing.T) {
	cases := []struct {
		name          string
		warps, blocks int
		maxBlk        int
		class         Class
	}{
		{"black", 1920, 480, 3, Stride},
		{"conv", 4128, 688, 2, Stride},
		{"mersenne", 128, 32, 2, Stride},
		{"monte", 2048, 256, 2, Stride},
		{"pns", 144, 18, 1, Stride},
		{"scalar", 1024, 128, 2, Stride},
		{"stream", 2048, 128, 1, Stride},
		{"backprop", 16384, 2048, 2, MP},
		{"cell", 21296, 1331, 1, MP},
		{"ocean", 32768, 16384, 8, MP},
		{"bfs", 2048, 128, 1, Uncoal},
		{"cfd", 7272, 1212, 1, Uncoal},
		{"linear", 8192, 1024, 2, Uncoal},
		{"sepia", 8192, 1024, 3, Uncoal},
	}
	for _, c := range cases {
		s := ByName(c.name)
		if s == nil {
			t.Errorf("benchmark %s missing", c.name)
			continue
		}
		if s.TotalWarps != c.warps || s.Blocks != c.blocks || s.MaxBlocksPerCore != c.maxBlk {
			t.Errorf("%s grid = %d/%d/%d, want %d/%d/%d", c.name,
				s.TotalWarps, s.Blocks, s.MaxBlocksPerCore, c.warps, c.blocks, c.maxBlk)
		}
		if s.Class != c.class {
			t.Errorf("%s class = %v, want %v", c.name, s.Class, c.class)
		}
	}
}

func TestClassShapes(t *testing.T) {
	for _, s := range MemoryIntensive() {
		hasLoop := s.Program.HasLoop()
		switch s.Class {
		case Stride:
			if !hasLoop {
				t.Errorf("%s: stride-type benchmarks must contain loops", s.Name)
			}
		case MP, Uncoal:
			if hasLoop {
				t.Errorf("%s: %v-type benchmarks must be loop-free (short threads)", s.Name, s.Class)
			}
		}
		if s.Class == Uncoal {
			uncoal := false
			for i := range s.Program.Instrs {
				in := &s.Program.Instrs[i]
				// A lane stride of 16B or more spreads a warp over at
				// least 8 blocks — far from the 2-block coalesced ideal.
				if in.Op == kernel.OpLoad && in.Mem.LaneStrideB >= 16 {
					uncoal = true
				}
			}
			if !uncoal {
				t.Errorf("%s: uncoal-type benchmark has no uncoalesced loads", s.Name)
			}
		}
	}
}

func TestWarpsPerBlockDivides(t *testing.T) {
	for _, s := range Specs() {
		if s.TotalWarps%s.Blocks != 0 {
			t.Errorf("%s: %d warps not divisible by %d blocks", s.Name, s.TotalWarps, s.Blocks)
		}
		if s.WarpsPerBlock() < 1 {
			t.Errorf("%s: warps per block < 1", s.Name)
		}
	}
}

func TestActiveWarpsPerCore(t *testing.T) {
	s := ByName("stream")
	// 16 warps/block x 1 block/core.
	if got := s.ActiveWarpsPerCore(); got != 16 {
		t.Errorf("stream active warps = %d, want 16", got)
	}
	s = ByName("black")
	// 4 warps/block x 3 blocks/core.
	if got := s.ActiveWarpsPerCore(); got != 12 {
		t.Errorf("black active warps = %d, want 12", got)
	}
}

func TestScaled(t *testing.T) {
	s := ByName("backprop")
	sc := s.Scaled(8)
	if sc.WarpsPerBlock() != s.WarpsPerBlock() {
		t.Errorf("Scaled changed warps-per-block: %d vs %d", sc.WarpsPerBlock(), s.WarpsPerBlock())
	}
	if sc.Blocks != s.Blocks/8 {
		t.Errorf("Scaled blocks = %d, want %d", sc.Blocks, s.Blocks/8)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("scaled spec invalid: %v", err)
	}
	// Scaling never drops below one block.
	tiny := ByName("mersenne").Scaled(1000)
	if tiny.Blocks != 1 {
		t.Errorf("tiny scale blocks = %d, want 1", tiny.Blocks)
	}
	// Factor <= 1 is identity.
	if s.Scaled(1) != s {
		t.Error("Scaled(1) should return the receiver")
	}
	// Original untouched.
	if s.Blocks != 2048 {
		t.Errorf("Scaled mutated the original: %d blocks", s.Blocks)
	}
}

func TestSpecsReturnsCopy(t *testing.T) {
	a := Specs()
	a[0] = nil
	if Specs()[0] == nil {
		t.Fatal("Specs exposes internal slice")
	}
}

func TestByNameMissing(t *testing.T) {
	if ByName("nope") != nil {
		t.Fatal("ByName should return nil for unknown benchmark")
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{Stride, MP, Uncoal, NonIntensive, Class(9)} {
		if c.String() == "" {
			t.Errorf("Class(%d).String empty", uint8(c))
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := *ByName("black")
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero blocks", func(s *Spec) { s.Blocks = 0 }},
		{"indivisible warps", func(s *Spec) { s.TotalWarps = 7; s.Blocks = 2 }},
		{"zero occupancy", func(s *Spec) { s.MaxBlocksPerCore = 0 }},
		{"zero regs", func(s *Spec) { s.RegsPerThread = 0 }},
		{"nil program", func(s *Spec) { s.Program = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %q", tc.name)
			}
		})
	}
}

// TestMemoryIntensityRatio sanity-checks that memory-intensive kernels
// generate more memory transactions per compute instruction than the
// non-intensive set (transactions, not instructions, are what load the
// memory system — an uncoalesced load counts many times).
func TestMemoryIntensityRatio(t *testing.T) {
	txPerCompute := func(s *Spec) float64 {
		c := s.Program.DynamicCounts()
		txs := 0
		for i := range s.Program.Instrs {
			in := &s.Program.Instrs[i]
			if in.Op.IsMemory() {
				txs += len(in.Mem.Transactions(0, 32, 0, 64, nil))
			}
		}
		return float64(txs) / float64(c.Compute/maxInt(1, s.Program.LoopTrips)+1)
	}
	minIntensive := 1e9
	for _, s := range MemoryIntensive() {
		if r := txPerCompute(s); r < minIntensive {
			minIntensive = r
		}
	}
	for _, s := range NonIntensiveSpecs() {
		if r := txPerCompute(s); r >= minIntensive {
			t.Errorf("%s tx:compute ratio %.2f not below the memory-intensive minimum %.2f",
				s.Name, r, minIntensive)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDesignTableModels pins the kernel-model claims of DESIGN.md's
// per-benchmark table.
func TestDesignTableModels(t *testing.T) {
	hasShared := func(s *Spec) bool {
		for i := range s.Program.Instrs {
			in := &s.Program.Instrs[i]
			if in.Op == kernel.OpLoad && in.Mem.WarpPeriod > 0 {
				return true
			}
		}
		return false
	}
	hasHashed := func(s *Spec) bool {
		for i := range s.Program.Instrs {
			in := &s.Program.Instrs[i]
			if in.Op == kernel.OpLoad && in.Mem.Hash {
				return true
			}
		}
		return false
	}
	if !hasShared(ByName("backprop")) || !hasShared(ByName("cell")) {
		t.Error("backprop/cell must carry shared loads")
	}
	if hasShared(ByName("ocean")) {
		t.Error("ocean must be pure streaming (the IP-harm case)")
	}
	if !hasHashed(ByName("bfs")) {
		t.Error("bfs must carry hash-scrambled loads")
	}
	for _, n := range []string{"conv", "monte", "mersenne", "pns", "black"} {
		s := ByName(n)
		taps := 0
		for i := range s.Program.Instrs {
			in := &s.Program.Instrs[i]
			if in.Op == kernel.OpLoad && in.Mem.Array == 0 {
				taps++
			}
		}
		if taps < 2 {
			t.Errorf("%s: expected a sliding-window tap structure, found %d taps", n, taps)
		}
	}
}
