// Package workload defines the synthetic benchmark suite used to drive the
// simulator.
//
// The paper evaluates 14 memory-intensive CUDA benchmarks (Table III) and
// 12 non-memory-intensive ones (Table IV) via GPUOcelot-generated PTX
// traces. Those traces are not redistributable, so each benchmark is
// reproduced here as a small kernel (internal/kernel) parameterised by the
// published characteristics: thread/block counts, occupancy (max blocks
// per core), the stride / massively-parallel / uncoalesced taxonomy, and
// approximate memory intensity. See DESIGN.md for the substitution
// rationale.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"mtprefetch/internal/kernel"
)

// Class is the paper's benchmark taxonomy (Section VI-B).
type Class uint8

const (
	// Stride benchmarks show strong per-thread stride behaviour
	// (loop-based kernels, including multidimensional patterns).
	Stride Class = iota
	// MP benchmarks are massively parallel: very many short threads
	// with no loops — the inter-thread prefetching candidates.
	MP
	// Uncoal benchmarks are dominated by uncoalesced accesses.
	Uncoal
	// NonIntensive benchmarks are compute-bound (Table IV).
	NonIntensive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Stride:
		return "stride"
	case MP:
		return "mp"
	case Uncoal:
		return "uncoal"
	case NonIntensive:
		return "non-intensive"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Spec describes one benchmark.
type Spec struct {
	Name  string
	Suite string
	Class Class

	TotalWarps       int // Table III "# Total warps"
	Blocks           int // Table III "# Blocks"
	MaxBlocksPerCore int // Table III "# Max blocks/core" (occupancy)
	RegsPerThread    int // register usage (occupancy input for reg. prefetch)

	// Delinquent-load counts from Table III, kept as reference metadata
	// (our kernels use a scaled-down number of static loads).
	DelStride int
	DelIP     int

	// Paper-reported CPIs for EXPERIMENTS.md comparison.
	PaperBaseCPI float64
	PaperPMemCPI float64

	Program *kernel.Program
}

// WarpsPerBlock returns the warps in one thread block.
func (s *Spec) WarpsPerBlock() int {
	if s.Blocks == 0 {
		return 0
	}
	return s.TotalWarps / s.Blocks
}

// ActiveWarpsPerCore is the number of concurrently resident warps on one
// core at full occupancy.
func (s *Spec) ActiveWarpsPerCore() int {
	return s.MaxBlocksPerCore * s.WarpsPerBlock()
}

// Scaled returns a copy with the grid shrunk by factor (warps-per-block
// and all per-warp behaviour preserved), for fast tests and benches.
// A factor <= 1 returns the spec unchanged.
func (s *Spec) Scaled(factor int) *Spec {
	if factor <= 1 {
		return s
	}
	t := *s
	blocks := s.Blocks / factor
	if blocks < 1 {
		blocks = 1
	}
	t.Blocks = blocks
	t.TotalWarps = blocks * s.WarpsPerBlock()
	return &t
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: unnamed spec")
	}
	if s.Blocks <= 0 || s.TotalWarps <= 0 {
		return fmt.Errorf("workload %s: non-positive grid", s.Name)
	}
	if s.TotalWarps%s.Blocks != 0 {
		return fmt.Errorf("workload %s: %d warps not divisible by %d blocks", s.Name, s.TotalWarps, s.Blocks)
	}
	if s.MaxBlocksPerCore <= 0 {
		return fmt.Errorf("workload %s: non-positive occupancy", s.Name)
	}
	if s.RegsPerThread <= 0 {
		return fmt.Errorf("workload %s: non-positive register usage", s.Name)
	}
	if s.Program == nil {
		return fmt.Errorf("workload %s: missing program", s.Name)
	}
	return s.Program.Validate()
}

// params drives the shared kernel template.
type params struct {
	trips      int    // loop trips; 0 = straight-line kernel
	loads      int    // parallel loads per body
	laneStride uint64 // 4 = coalesced, >=16 = uncoalesced
	hashLoads  int    // of the loads, how many are hash-scrambled (irregular)
	compute    int    // chained ALU ops after the loads
	imul       int    // extra IMUL ops
	fdiv       int    // extra FDIV ops
	iterStride uint64 // per-iteration advance for loop kernels
	span       uint64 // array working-set bound
	store      bool

	// tapStride, when non-zero, turns the loads into filter taps: all
	// loads read the same array at offsets i*tapStride. Choosing
	// tapStride equal to the warp's footprint makes consecutive warps
	// touch overlapping blocks — the cross-thread spatial reuse of image
	// filters and stencils, which the (prefetch) cache can exploit.
	// Combined with iterStride == tapStride in a loop kernel it models a
	// sliding window (convolution): each iteration re-reads most of the
	// previous iteration's taps.
	tapStride uint64

	// sharedLoads makes the last N loads read data shared by groups of
	// sharePeriod warps (weight vectors, broadcast inputs) — re-fetches
	// of shared data are what a cache absorbs.
	sharedLoads int
	sharePeriod int
}

// buildKernel instantiates the shared template:
//
//	[loop trips times:]
//	  v_i = load A_i        (i = 0..loads-1; first hashLoads are hashed)
//	  c   = compute chain over all v_i
//	  extra IMUL/FDIV ops
//	  [store C c]
func buildKernel(name string, p params) (*kernel.Program, error) {
	b := kernel.NewBuilder(name)
	body := func() {
		var vals []kernel.Reg
		for i := 0; i < p.loads; i++ {
			acc := kernel.Access{
				Array:       i,
				LaneStrideB: p.laneStride,
				IterStrideB: p.iterStride,
				Span:        p.span,
			}
			switch {
			case i < p.hashLoads:
				acc.Hash = true
			case p.tapStride != 0:
				acc.Array = p.hashLoads                          // taps share one array...
				acc.Offset = uint64(i-p.hashLoads) * p.tapStride // ...at row offsets
			case i >= p.loads-p.sharedLoads:
				acc.WarpPeriod = p.sharePeriod
			}
			vals = append(vals, b.Load(acc))
		}
		c := vals[0]
		for _, v := range vals[1:] {
			c = b.ALU(c, v)
		}
		c = b.Compute(p.compute, c)
		for i := 0; i < p.imul; i++ {
			c = b.IMul(c)
		}
		for i := 0; i < p.fdiv; i++ {
			c = b.FDiv(c)
		}
		if p.store {
			b.Store(kernel.Access{
				Array:       p.loads,
				LaneStrideB: 4,
				IterStrideB: p.iterStride,
				Span:        p.span,
			}, c)
		}
	}
	if p.trips > 0 {
		b.BeginLoop(p.trips)
		body()
		b.EndLoop()
	} else {
		body()
	}
	return b.Build()
}

// suite is built lazily, exactly once, by load(); Specs hands out copies.
// Lazy construction (instead of an init-time panic) lets a kernel-template
// bug surface as an error through Load, so a sweep can report it instead
// of crashing the process before main runs.
var (
	loadOnce sync.Once
	suite    []*Spec
	loadErr  error
)

// Load builds (once) and returns the built-in benchmark suite in
// declaration order, surfacing any kernel-construction or validation
// error. The convenience accessors (Specs, ByName, ByClass, ...) funnel
// through the same build but return empty results on failure; callers
// that must distinguish an empty result from a broken suite use Load.
func Load() ([]*Spec, error) {
	loadOnce.Do(func() { suite, loadErr = buildSuite() })
	return suite, loadErr
}

func buildSuite() ([]*Spec, error) {
	var out []*Spec
	var firstErr error
	mk := func(name, su string, class Class, warps, blocks, maxBlk, regs, delS, delIP int,
		baseCPI, pmemCPI float64, p params) {
		if firstErr != nil {
			return
		}
		prog, err := buildKernel(name, p)
		if err != nil {
			firstErr = fmt.Errorf("workload %s: %w", name, err)
			return
		}
		s := &Spec{
			Name: name, Suite: su, Class: class,
			TotalWarps: warps, Blocks: blocks, MaxBlocksPerCore: maxBlk,
			RegsPerThread: regs, DelStride: delS, DelIP: delIP,
			PaperBaseCPI: baseCPI, PaperPMemCPI: pmemCPI,
			Program: prog,
		}
		if err := s.Validate(); err != nil {
			firstErr = err
			return
		}
		out = append(out, s)
	}

	// --- Memory-intensive suite (Table III) -------------------------------
	// Stride-type: loop kernels with strong per-warp strides.
	// black walks multidimensional strided windows over its option
	// arrays (the paper's "including multidimensional patterns").
	mk("black", "sdk", Stride, 1920, 480, 3, 24, 3, 0, 8.86, 4.15,
		params{trips: 8, loads: 3, laneStride: 4, compute: 12, fdiv: 1,
			iterStride: 128, tapStride: 128, store: true})
	// conv is a sliding-window convolution: taps overlap across
	// iterations and warps.
	mk("conv", "sdk", Stride, 4128, 688, 2, 20, 1, 0, 7.98, 4.21,
		params{trips: 8, loads: 3, laneStride: 4, compute: 10, imul: 1,
			iterStride: 128, tapStride: 128, store: true})
	// mersenne slides over its twister state vector.
	mk("mersenne", "sdk", Stride, 128, 32, 2, 16, 2, 0, 7.09, 4.99,
		params{trips: 32, loads: 2, laneStride: 4, compute: 10, imul: 1,
			iterStride: 128, tapStride: 128, store: true})
	// monte re-reads overlapping windows of its path table.
	mk("monte", "sdk", Stride, 2048, 256, 2, 22, 1, 0, 13.69, 5.36,
		params{trips: 16, loads: 2, laneStride: 4, compute: 8,
			iterStride: 128, tapStride: 128, store: true})
	mk("pns", "parboil", Stride, 144, 18, 1, 28, 1, 1, 18.87, 5.25,
		params{trips: 16, loads: 2, laneStride: 4, compute: 8, imul: 1,
			iterStride: 128, tapStride: 128, store: true})
	mk("scalar", "sdk", Stride, 1024, 128, 2, 18, 2, 0, 19.25, 4.19,
		params{trips: 32, loads: 2, laneStride: 4, compute: 5,
			iterStride: 1 << 14, store: true})
	mk("stream", "rodinia", Stride, 2048, 128, 1, 20, 2, 5, 18.93, 4.21,
		params{trips: 48, loads: 1, laneStride: 4, compute: 2,
			iterStride: 1 << 13, store: true})

	// Mp-type: massively parallel, loop-free, very short threads.
	// backprop's second input (the weight vector) is shared across warp
	// groups — re-fetched every wave without a cache.
	mk("backprop", "rodinia", MP, 16384, 2048, 2, 16, 0, 5, 21.47, 4.16,
		params{loads: 2, laneStride: 4, compute: 12, store: true,
			sharedLoads: 2, sharePeriod: 32})
	mk("cell", "rodinia", MP, 21296, 1331, 1, 20, 0, 1, 8.81, 4.19,
		params{loads: 2, laneStride: 4, compute: 18, imul: 2, store: true,
			sharedLoads: 1, sharePeriod: 32})
	mk("ocean", "sdk", MP, 32768, 16384, 8, 10, 0, 1, 62.63, 4.19,
		params{loads: 2, laneStride: 4, compute: 4, store: true})

	// Uncoal-type: dominant uncoalesced accesses. The tap loads give the
	// image-filter/stencil benchmarks their cross-warp spatial reuse,
	// which only a (prefetch) cache can exploit.
	mk("bfs", "rodinia", Uncoal, 2048, 128, 1, 12, 4, 3, 102.02, 4.19,
		params{loads: 4, laneStride: 32, hashLoads: 2, compute: 6, store: true,
			tapStride: 32 * 32})
	mk("cfd", "rodinia", Uncoal, 7272, 1212, 1, 24, 0, 36, 29.01, 4.37,
		params{loads: 4, laneStride: 32, compute: 12, store: true,
			tapStride: 32 * 32})
	mk("linear", "merge", Uncoal, 8192, 1024, 2, 10, 0, 27, 408.9, 4.18,
		params{loads: 4, laneStride: 16, compute: 2, store: true,
			tapStride: 16 * 32})
	mk("sepia", "merge", Uncoal, 8192, 1024, 3, 12, 0, 2, 149.46, 4.19,
		params{loads: 3, laneStride: 32, compute: 6, store: true,
			tapStride: 32 * 32})

	// --- Non-memory-intensive suite (Table IV) ----------------------------
	ni := func(name, su string, baseCPI, pmemCPI float64, compute, trips int) {
		mk(name, su, NonIntensive, 1024, 128, 4, 16, 0, 0, baseCPI, pmemCPI,
			params{trips: trips, loads: 1, laneStride: 4, compute: compute,
				iterStride: 1 << 13, store: true})
	}
	ni("binomial", "sdk", 4.29, 4.27, 28, 4)
	ni("dwthaar1d", "sdk", 4.6, 4.37, 24, 4)
	ni("eigenvalue", "sdk", 4.73, 4.72, 22, 4)
	ni("gaussian", "rodinia", 6.36, 4.18, 16, 4)
	ni("histogram", "sdk", 6.29, 5.17, 16, 4)
	ni("leukocyte", "rodinia", 4.23, 4.2, 30, 4)
	ni("matrix", "sdk", 5.14, 4.14, 18, 4)
	ni("mri-fhd", "parboil", 4.36, 4.26, 26, 4)
	ni("mri-q", "parboil", 4.31, 4.23, 26, 4)
	ni("nbody", "sdk", 4.72, 4.54, 22, 4)
	ni("qusirandom", "sdk", 4.12, 4.12, 32, 4)
	ni("sad", "rodinia", 5.28, 4.17, 18, 4)

	return out, firstErr
}

// load returns the suite for the convenience accessors, which keep their
// error-free signatures: on a build failure they see an empty suite, and
// the error is reported by whichever caller consults Load directly.
func load() []*Spec {
	s, _ := Load()
	return s
}

// Specs returns the full suite in declaration order (memory-intensive
// first, matching Table III, then Table IV).
func Specs() []*Spec {
	suite := load()
	out := make([]*Spec, len(suite))
	copy(out, suite)
	return out
}

// MemoryIntensive returns the 14 Table III benchmarks.
func MemoryIntensive() []*Spec {
	var out []*Spec
	for _, s := range load() {
		if s.Class != NonIntensive {
			out = append(out, s)
		}
	}
	return out
}

// NonIntensiveSpecs returns the 12 Table IV benchmarks.
func NonIntensiveSpecs() []*Spec {
	var out []*Spec
	for _, s := range load() {
		if s.Class == NonIntensive {
			out = append(out, s)
		}
	}
	return out
}

// ByClass returns memory-intensive benchmarks of one class, sorted by name.
func ByClass(c Class) []*Spec {
	var out []*Spec
	for _, s := range load() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks a benchmark up; it returns nil when absent.
func ByName(name string) *Spec {
	for _, s := range load() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
