package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(10, 2); got != 5 {
		t.Errorf("SafeDiv(10,2) = %v, want 5", got)
	}
	if got := SafeDiv(10, 0); got != 0 {
		t.Errorf("SafeDiv(10,0) = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio(3,4) = %v, want 0.75", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio(3,0) = %v, want 0", got)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean(1,4) = %v, want 2", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
	// Non-positive entries are ignored.
	got = Geomean([]float64{-1, 0, 8, 2})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean ignoring nonpositive = %v, want 4", got)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	// Property: geomean(k*xs) = k * geomean(xs) for k > 0.
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		scaled := []float64{xs[0] * 3, xs[1] * 3, xs[2] * 3}
		return math.Abs(Geomean(scaled)-3*Geomean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	l.Add(10)
	l.Add(30)
	if l.Count != 2 || l.Sum != 40 || l.Max != 30 {
		t.Errorf("Latency state = %+v, want count 2 sum 40 max 30", l)
	}
	if got := l.Avg(); got != 20 {
		t.Errorf("Avg = %v, want 20", got)
	}
	var empty Latency
	if empty.Avg() != 0 {
		t.Error("empty latency Avg should be 0")
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Add(10)
	a.Add(30)
	b.Add(100)
	a.Merge(b)
	if a.Count != 3 || a.Sum != 140 || a.Max != 100 {
		t.Errorf("Merge result = %+v", a)
	}
	if p := a.Percentile(100); p != 100 {
		t.Errorf("merged P100 = %v, want 100 (clamped to Max)", p)
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
	// 100 samples of 10 and one of 1000: the median sits in the 10s, the
	// tail in the 1000s.
	for i := 0; i < 100; i++ {
		h.Add(10)
	}
	h.Add(1000)
	p50 := h.Percentile(50)
	if p50 < 8 || p50 > 16 {
		t.Errorf("P50 = %v, want within the [8,16) bucket", p50)
	}
	p100 := h.Percentile(100)
	if p100 != 1000 {
		t.Errorf("P100 = %v, want 1000 (clamped to Max)", p100)
	}
	if h.Percentile(-5) != h.Percentile(0) {
		t.Error("negative p should clamp to 0")
	}
	// Zero samples land in bucket 0 and report exactly 0.
	var z Histogram
	z.Add(0)
	z.Add(0)
	if z.Percentile(99) != 0 {
		t.Errorf("all-zero P99 = %v, want 0", z.Percentile(99))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i <= 64; i++ {
		a.Add(i)
		b.Add(i * 100)
	}
	count, sum, max := a.Count+b.Count, a.Sum+b.Sum, b.Max
	a.Merge(&b)
	if a.Count != count || a.Sum != sum || a.Max != max {
		t.Errorf("merged = count %d sum %d max %d, want %d/%d/%d",
			a.Count, a.Sum, a.Max, count, sum, max)
	}
	var total uint64
	for _, n := range a.Buckets {
		total += n
	}
	if total != a.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, a.Count)
	}
	if p := a.Percentile(50); p < 32 || p > 128 {
		t.Errorf("merged P50 = %v, out of plausible range", p)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Speedups", "bench", "stride", "ip")
	tab.AddRowValues("black", 1.25, 1.0)
	tab.AddRow("stream", "0.900", "1.100")
	s := tab.String()
	for _, want := range []string{"Speedups", "bench", "stride", "black", "1.250", "stream", "0.900"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tab.NumRows())
	}
}

func TestTableExtraCells(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x", "y", "z")
	s := tab.String()
	if !strings.Contains(s, "z") {
		t.Errorf("extra cell dropped:\n%s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{4, "4"},
		{4.5, "4.500"},
		{123.456, "123.5"},
		{0.015, "0.015"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Inf"},
		{math.Inf(-1), "-Inf"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("T", "a", "b")
	tab.AddRow("x,y", `say "hi"`)
	tab.AddRow("plain", "1.5")
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\nplain,1.5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
	if tab.Title() != "T" {
		t.Errorf("Title = %q", tab.Title())
	}
}

// exactPercentile mirrors Percentile's rank definition over the raw
// samples: the ceil(p/100*n)-th smallest (1-indexed, min 1).
func exactPercentile(sorted []uint64, p float64) uint64 {
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramPercentileProperty compares Percentile against the exact
// percentile of generated sample sets. The log2 buckets guarantee at most
// one power-of-two of error for nonzero values, results always stay
// inside the observed [Min, Max] range, and a rank landing in bucket 0
// reports exactly 0 (only zero samples live there).
func TestHistogramPercentileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := map[string]func(i int) uint64{
		"uniform":    func(int) uint64 { return uint64(rng.Intn(1 << 20)) },
		"powers":     func(int) uint64 { return uint64(1) << uint(rng.Intn(30)) },
		"constant":   func(int) uint64 { return 10 },
		"ones":       func(int) uint64 { return 1 },
		"heavy-tail": func(int) uint64 { return uint64(rng.Intn(8)) * uint64(rng.Intn(1<<16)) },
		"with-zeros": func(i int) uint64 {
			if i%3 == 0 {
				return 0
			}
			return uint64(1 + rng.Intn(1000))
		},
	}
	ps := []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 100}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]uint64, 500)
			for i := range samples {
				samples[i] = gen(i)
				h.Add(samples[i])
			}
			sorted := append([]uint64(nil), samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			if h.Min != sorted[0] || h.Max != sorted[len(sorted)-1] {
				t.Fatalf("Min/Max = %d/%d, want %d/%d", h.Min, h.Max, sorted[0], sorted[len(sorted)-1])
			}
			for _, p := range ps {
				got := h.Percentile(p)
				exact := exactPercentile(sorted, p)
				if got < float64(h.Min) || got > float64(h.Max) {
					t.Errorf("P%v = %v outside sample range [%d, %d]", p, got, h.Min, h.Max)
				}
				if exact == 0 {
					if got != 0 {
						t.Errorf("P%v = %v, want exactly 0 (zero-valued rank)", p, got)
					}
					continue
				}
				if got == 0 {
					t.Errorf("P%v = 0, want ~%d (nonzero rank must not report 0)", p, exact)
					continue
				}
				if ratio := got / float64(exact); ratio < 0.5 || ratio > 2 {
					t.Errorf("P%v = %v, exact %d: off by more than one power of two", p, got, exact)
				}
			}
		})
	}
}

// TestHistogramPercentileSingleValue pins the regression the Min clamp
// fixes: a histogram of identical samples must report that value exactly
// for every percentile, not an interpolated point elsewhere in its
// power-of-two bucket.
func TestHistogramPercentileSingleValue(t *testing.T) {
	for _, v := range []uint64{1, 3, 10, 1000} {
		var h Histogram
		for i := 0; i < 50; i++ {
			h.Add(v)
		}
		for _, p := range []float64{0, 50, 99, 100} {
			if got := h.Percentile(p); got != float64(v) {
				t.Errorf("all-%d histogram: P%v = %v, want %d", v, p, got, v)
			}
		}
	}
}

func TestHistogramMinTracking(t *testing.T) {
	var h Histogram
	h.Add(7)
	h.Add(3)
	h.Add(100)
	if h.Min != 3 {
		t.Errorf("Min = %d, want 3", h.Min)
	}
	var other Histogram
	other.Add(2)
	h.Merge(&other)
	if h.Min != 2 {
		t.Errorf("merged Min = %d, want 2", h.Min)
	}
	var empty Histogram
	h.Merge(&empty)
	if h.Min != 2 {
		t.Errorf("merging an empty histogram changed Min to %d", h.Min)
	}
	var fresh Histogram
	fresh.Merge(&h)
	if fresh.Min != 2 {
		t.Errorf("merge into empty: Min = %d, want 2", fresh.Min)
	}
}

// TestHistogramMergeProperty is the exactness contract Merge makes to
// the sharded simulator: splitting a sample stream across any number of
// shard histograms and merging must reproduce, field for field, the
// histogram that saw every sample directly — including every percentile
// query. Byte-identical sharded output depends on this holding exactly,
// not approximately.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 50; trial++ {
		shards := 1 + rng.Intn(8)
		parts := make([]Histogram, shards)
		var direct Histogram
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Mix magnitudes so samples land across many buckets,
			// including 0 (bucket 0) and wide outliers.
			v := uint64(rng.Int63()) >> uint(rng.Intn(63))
			direct.Add(v)
			parts[rng.Intn(shards)].Add(v)
		}
		var merged Histogram
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged != direct {
			t.Fatalf("trial %d (%d samples, %d shards): merged differs from direct\nmerged: %+v\ndirect: %+v",
				trial, n, shards, merged, direct)
		}
		for _, p := range []float64{0, 25, 50, 90, 95, 99, 100} {
			if mp, dp := merged.Percentile(p), direct.Percentile(p); mp != dp {
				t.Fatalf("trial %d: P%.0f = %v merged vs %v direct", trial, p, mp, dp)
			}
		}
	}
}

// TestHistogramMergeIdentities: merging an empty histogram is a no-op
// in both directions, and merge order is invisible.
func TestHistogramMergeIdentities(t *testing.T) {
	var a Histogram
	for _, v := range []uint64{3, 0, 77, 1 << 40} {
		a.Add(v)
	}
	var empty Histogram
	merged := a
	merged.Merge(&empty)
	if merged != a {
		t.Errorf("merging empty changed the histogram: %+v vs %+v", merged, a)
	}
	fromEmpty := empty
	fromEmpty.Merge(&a)
	if fromEmpty != a {
		t.Errorf("merge into empty differs from source: %+v vs %+v", fromEmpty, a)
	}
	var b Histogram
	for _, v := range []uint64{12, 5, 1 << 20} {
		b.Add(v)
	}
	ab, ba := a, b
	ab.Merge(&b)
	ba.Merge(&a)
	if ab != ba {
		t.Errorf("merge is order-sensitive:\na+b: %+v\nb+a: %+v", ab, ba)
	}
}
