package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(10, 2); got != 5 {
		t.Errorf("SafeDiv(10,2) = %v, want 5", got)
	}
	if got := SafeDiv(10, 0); got != 0 {
		t.Errorf("SafeDiv(10,0) = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio(3,4) = %v, want 0.75", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio(3,0) = %v, want 0", got)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean(1,4) = %v, want 2", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
	// Non-positive entries are ignored.
	got = Geomean([]float64{-1, 0, 8, 2})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean ignoring nonpositive = %v, want 4", got)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	// Property: geomean(k*xs) = k * geomean(xs) for k > 0.
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		scaled := []float64{xs[0] * 3, xs[1] * 3, xs[2] * 3}
		return math.Abs(Geomean(scaled)-3*Geomean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	l.Add(10)
	l.Add(30)
	if l.Count != 2 || l.Sum != 40 || l.Max != 30 {
		t.Errorf("Latency state = %+v, want count 2 sum 40 max 30", l)
	}
	if got := l.Avg(); got != 20 {
		t.Errorf("Avg = %v, want 20", got)
	}
	var empty Latency
	if empty.Avg() != 0 {
		t.Error("empty latency Avg should be 0")
	}
}

func TestLatencyMerge(t *testing.T) {
	a := Latency{Count: 2, Sum: 40, Max: 30}
	b := Latency{Count: 1, Sum: 100, Max: 100}
	a.Merge(b)
	if a.Count != 3 || a.Sum != 140 || a.Max != 100 {
		t.Errorf("Merge result = %+v", a)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Speedups", "bench", "stride", "ip")
	tab.AddRowValues("black", 1.25, 1.0)
	tab.AddRow("stream", "0.900", "1.100")
	s := tab.String()
	for _, want := range []string{"Speedups", "bench", "stride", "black", "1.250", "stream", "0.900"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tab.NumRows())
	}
}

func TestTableExtraCells(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x", "y", "z")
	s := tab.String()
	if !strings.Contains(s, "z") {
		t.Errorf("extra cell dropped:\n%s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{4, "4"},
		{4.5, "4.500"},
		{123.456, "123.5"},
		{0.015, "0.015"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("T", "a", "b")
	tab.AddRow("x,y", `say "hi"`)
	tab.AddRow("plain", "1.5")
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\nplain,1.5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
	if tab.Title() != "T" {
		t.Errorf("Title = %q", tab.Title())
	}
}
