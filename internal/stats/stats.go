// Package stats provides small statistics helpers shared by the simulator:
// safe ratios, latency accumulators, geometric means, and fixed-width table
// rendering used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// SafeDiv returns a/b, or 0 when b is zero.
func SafeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Ratio returns a/b as float64 with a zero-guard, for counter pairs.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Geomean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 when no positive entries exist.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram accumulates a distribution of uint64 samples in logarithmic
// (power-of-two) buckets: Buckets[i] counts samples whose bit length is i,
// i.e. samples in [2^(i-1), 2^i). The fixed bucket array makes Histogram a
// plain value type — snapshots are struct copies and Merge is exact — while
// Percentile recovers quantiles with at most one power-of-two of error,
// plenty for latency distributions spanning 1..10^6 cycles.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64 // smallest sample; meaningful only when Count > 0
	Max     uint64
	Buckets [65]uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(v)]++
}

// Avg returns the mean sample, or 0 with no samples.
func (h *Histogram) Avg() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.Count > 0 && (h.Count == 0 || other.Min < h.Min) {
		h.Min = other.Min
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Percentile estimates the p-th percentile (p in [0,100]) by locating the
// bucket containing the rank and interpolating linearly inside it. Bucket
// i spans [2^(i-1), 2^i), so the raw interpolation can land outside the
// observed sample range at the edge buckets — e.g. a histogram of all-10s
// would interpolate past 10 inside [8,16), and one of all-3s would start
// below 3 inside [2,4). The result is therefore clamped into [Min, Max],
// which also makes single-valued histograms exact. A rank landing in
// bucket 0 is exactly the value 0 (only Add(0) populates it, since
// bits.Len64(0) == 0), and an empty histogram reports 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := math.Ceil(p / 100 * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += float64(n)
		if cum < target {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := float64(uint64(1) << (i - 1))
		frac := (target - (cum - float64(n))) / float64(n)
		v := lo + frac*lo // bucket spans [lo, 2*lo)
		if v < float64(h.Min) {
			v = float64(h.Min)
		}
		if v > float64(h.Max) {
			v = float64(h.Max)
		}
		return v
	}
	return float64(h.Max)
}

// Latency accumulates per-event latencies. It is a Histogram, so beyond
// Count/Sum/Max it answers Percentile queries over the distribution.
type Latency struct {
	Histogram
}

// Merge folds other into l.
func (l *Latency) Merge(other Latency) {
	l.Histogram.Merge(&other.Histogram)
}

// Table renders rows of labelled values as an aligned text table, the
// format used by the experiment harness to mirror the paper's tables and
// figure series.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowValues appends a row with a label followed by numeric cells
// rendered with %.3g-style compact formatting.
func (t *Table) AddRowValues(label string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, FormatFloat(v))
	}
	t.rows = append(t.rows, cells)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// FormatFloat renders v compactly: integers without decimals, small values
// with three significant digits. Non-finite values render as NaN/Inf/-Inf.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// SortedKeys returns the keys of m in sorted order, for deterministic
// iteration when printing per-benchmark maps.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
