// Package throttle implements the paper's adaptive prefetch throttling
// (Section V): a per-core engine that samples two GPU-specific metrics
// every period and adjusts a throttle degree between 0 (keep every
// prefetch) and 5 (drop every prefetch).
//
// The metrics are:
//
//   - early eviction rate (Eq. 5): prefetched blocks evicted before first
//     use, per useful prefetch — early prefetches are always harmful;
//   - merge ratio (Eq. 6): intra-core merges per request — in a GPGPU a
//     merged (late) prefetch is typically a benefit, not a stall, because
//     other warps hide the remaining latency.
//
// The decision table is Table I of the paper. One deviation is made
// explicit here: Table I's "early low, merge low -> no prefetch" row is
// only applied when the period also produced (almost) no useful
// prefetches. Our counters make "prefetching is contributing nothing"
// directly observable, and without this guard the row would also disable
// perfectly-working prefetchers whose timely prefetches produce neither
// merges nor early evictions — contradicting the paper's own Fig. 15/16
// results, where throttling preserves the gains of well-behaved
// benchmarks.
package throttle

import (
	"mtprefetch/internal/obs"
	"mtprefetch/internal/stats"
)

// Metrics is one period's monitored counters, gathered by the core.
type Metrics struct {
	EarlyEvictions   uint64 // prefetch-cache evictions before first use
	UsefulPrefetches uint64 // prefetched blocks used during the period
	IntraCoreMerges  uint64 // all MRQ merges (Eq. 6 numerator)
	TotalRequests    uint64 // all MRQ arrivals (Eq. 6 denominator)
	PrefetchesIssued uint64 // prefetches sent to memory
}

// Config holds the thresholds of Table I and the smoothing behaviour of
// Eqs. 7-8.
type Config struct {
	EarlyHigh  float64 // early eviction rate above this is "high" (0.02)
	EarlyLow   float64 // below this is "low" (0.01)
	MergeHigh  float64 // merge ratio above this is "high" (0.15)
	InitDegree int     // initial throttle degree (the paper uses 2)
}

// MaxDegree is the "no prefetch" degree.
const MaxDegree = 5

// probeInterval lets one prefetch in probeInterval through at degree 5 so
// the metrics keep flowing and the engine can recover (the paper does not
// specify its recovery mechanism; without probing, "no prefetch" would be
// absorbing).
const probeInterval = 64

// Engine is one core's throttle engine.
type Engine struct {
	cfg         Config
	degree      int
	prevMerge   float64
	haveHistory bool
	counter     uint64

	// Decision history for inspection.
	periods           uint64
	noPrefetchPeriods uint64
}

// New builds an engine with the given thresholds.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, degree: cfg.InitDegree}
}

// Degree reports the current throttle degree (0..5).
func (e *Engine) Degree() int { return e.degree }

// StampDegree is Degree for provenance stamping: it is nil-safe (cores
// without a throttle engine stamp degree 0) and narrowed to the uint8 the
// provenance struct stores.
func (e *Engine) StampDegree() uint8 {
	if e == nil {
		return 0
	}
	return uint8(e.degree)
}

// Periods reports how many periods have been evaluated.
func (e *Engine) Periods() uint64 { return e.periods }

// NoPrefetchPeriods reports periods spent fully throttled.
func (e *Engine) NoPrefetchPeriods() uint64 { return e.noPrefetchPeriods }

// Register wires the engine's degree gauge and period counters into the
// registry; the degree gauge is the throttle-degree series of the epoch
// sampler and reads zero-by-absence when throttling is disabled.
func (e *Engine) Register(r *obs.Registry, l obs.Labels) {
	r.Gauge("throttle.degree", l, func() float64 { return float64(e.degree) })
	r.CounterU64("throttle.periods", l, &e.periods)
	r.CounterU64("throttle.no_prefetch_periods", l, &e.noPrefetchPeriods)
}

// Allow decides the fate of one candidate prefetch under the current
// degree: degree d drops d out of every 5 candidates; at degree 5 only a
// sparse probe stream survives.
func (e *Engine) Allow() bool {
	if e.degree <= 0 {
		return true
	}
	e.counter++
	if e.degree >= MaxDegree {
		return e.counter%probeInterval == 0
	}
	return int(e.counter%MaxDegree) >= e.degree
}

// EndPeriod applies Table I to the period's metrics and returns the new
// degree.
func (e *Engine) EndPeriod(m Metrics) int {
	e.periods++
	// Eq. 7: the early eviction rate uses only the monitored value.
	early := stats.Ratio(m.EarlyEvictions, m.UsefulPrefetches)
	if m.UsefulPrefetches == 0 && m.EarlyEvictions > 0 {
		early = 1 // all harm, no use
	}
	// Eq. 8: the merge ratio is smoothed with the previous period.
	monitoredMerge := stats.Ratio(m.IntraCoreMerges, m.TotalRequests)
	merge := monitoredMerge
	if e.haveHistory {
		merge = (e.prevMerge + monitoredMerge) / 2
	}
	e.prevMerge = merge
	e.haveHistory = true

	usefulRate := stats.Ratio(m.UsefulPrefetches, m.PrefetchesIssued)

	switch {
	case early > e.cfg.EarlyHigh:
		e.degree = MaxDegree // Table I row 1: no prefetch
	case early >= e.cfg.EarlyLow:
		if e.degree < MaxDegree {
			e.degree++ // row 2: fewer prefetches
		}
	case merge > e.cfg.MergeHigh:
		if e.degree > 0 {
			e.degree-- // row 3: more prefetches
		}
	default:
		// Row 4 (early low, merge low): "no prefetch" — applied only
		// when prefetching is demonstrably contributing nothing (see
		// the package comment).
		if m.PrefetchesIssued > 0 && usefulRate < 0.1 {
			e.degree = MaxDegree
		}
	}
	if e.degree >= MaxDegree {
		e.noPrefetchPeriods++
	}
	return e.degree
}
