package throttle

import "testing"

func cfg() Config {
	return Config{EarlyHigh: 0.02, EarlyLow: 0.01, MergeHigh: 0.15, InitDegree: 2}
}

func TestInitialDegree(t *testing.T) {
	e := New(cfg())
	if e.Degree() != 2 {
		t.Errorf("initial degree = %d, want 2 (paper default)", e.Degree())
	}
}

func TestHighEarlyEvictionDisablesPrefetch(t *testing.T) {
	e := New(cfg())
	got := e.EndPeriod(Metrics{
		EarlyEvictions: 10, UsefulPrefetches: 100, // rate 0.1 > 0.02
		IntraCoreMerges: 50, TotalRequests: 100, PrefetchesIssued: 200,
	})
	if got != MaxDegree {
		t.Errorf("degree = %d, want %d (Table I row 1)", got, MaxDegree)
	}
	if e.NoPrefetchPeriods() != 1 {
		t.Errorf("NoPrefetchPeriods = %d, want 1", e.NoPrefetchPeriods())
	}
}

func TestMediumEarlyIncreasesThrottle(t *testing.T) {
	e := New(cfg())
	got := e.EndPeriod(Metrics{
		EarlyEvictions: 15, UsefulPrefetches: 1000, // 0.015: medium
		IntraCoreMerges: 0, TotalRequests: 100, PrefetchesIssued: 200,
	})
	if got != 3 {
		t.Errorf("degree = %d, want 3 (Table I row 2)", got)
	}
}

func TestLowEarlyHighMergeDecreasesThrottle(t *testing.T) {
	e := New(cfg())
	got := e.EndPeriod(Metrics{
		EarlyEvictions: 1, UsefulPrefetches: 1000, // 0.001: low
		IntraCoreMerges: 30, TotalRequests: 100, // 0.30 > 0.15
		PrefetchesIssued: 200,
	})
	if got != 1 {
		t.Errorf("degree = %d, want 1 (Table I row 3)", got)
	}
	// Bounded at 0.
	e.EndPeriod(Metrics{UsefulPrefetches: 1000, IntraCoreMerges: 90, TotalRequests: 100, PrefetchesIssued: 200})
	got = e.EndPeriod(Metrics{UsefulPrefetches: 1000, IntraCoreMerges: 90, TotalRequests: 100, PrefetchesIssued: 200})
	if got != 0 {
		t.Errorf("degree = %d, want 0 (floor)", got)
	}
}

func TestLowLowWithUselessPrefetchingDisables(t *testing.T) {
	e := New(cfg())
	got := e.EndPeriod(Metrics{
		EarlyEvictions: 0, UsefulPrefetches: 5, // low early
		IntraCoreMerges: 1, TotalRequests: 100, // low merge
		PrefetchesIssued: 1000, // useful rate 0.005 < 0.1
	})
	if got != MaxDegree {
		t.Errorf("degree = %d, want %d (Table I row 4)", got, MaxDegree)
	}
}

func TestLowLowWithUsefulPrefetchingKeepsDegree(t *testing.T) {
	// The documented deviation: well-working prefetching (high useful
	// rate, no early evictions, no merges) must not be disabled.
	e := New(cfg())
	got := e.EndPeriod(Metrics{
		EarlyEvictions: 0, UsefulPrefetches: 950,
		IntraCoreMerges: 1, TotalRequests: 1000,
		PrefetchesIssued: 1000,
	})
	if got != 2 {
		t.Errorf("degree = %d, want unchanged 2", got)
	}
}

func TestAllEarlyNoUseful(t *testing.T) {
	e := New(cfg())
	got := e.EndPeriod(Metrics{
		EarlyEvictions: 50, UsefulPrefetches: 0,
		TotalRequests: 100, PrefetchesIssued: 100,
	})
	if got != MaxDegree {
		t.Errorf("degree = %d, want %d (pure harm)", got, MaxDegree)
	}
}

func TestMergeSmoothing(t *testing.T) {
	// Eq. 8: merge ratio is averaged with the previous period, so one
	// quiet period after a merge-heavy one still reads as "high".
	e := New(cfg())
	e.EndPeriod(Metrics{UsefulPrefetches: 1000, IntraCoreMerges: 60, TotalRequests: 100, PrefetchesIssued: 100}) // 0.6
	got := e.EndPeriod(Metrics{UsefulPrefetches: 1000, IntraCoreMerges: 0, TotalRequests: 100, PrefetchesIssued: 100})
	// smoothed = (0.6 + 0)/2 = 0.3 > 0.15 -> decrease again.
	if got != 0 {
		t.Errorf("degree = %d, want 0 (smoothed merge still high)", got)
	}
}

func TestAllowFractions(t *testing.T) {
	counts := func(degree int) int {
		e := New(Config{InitDegree: degree})
		allowed := 0
		for i := 0; i < 1000; i++ {
			if e.Allow() {
				allowed++
			}
		}
		return allowed
	}
	if got := counts(0); got != 1000 {
		t.Errorf("degree 0 allowed %d/1000, want all", got)
	}
	if got := counts(1); got != 800 {
		t.Errorf("degree 1 allowed %d/1000, want 800", got)
	}
	if got := counts(3); got != 400 {
		t.Errorf("degree 3 allowed %d/1000, want 400", got)
	}
	if got := counts(5); got < 10 || got > 20 {
		t.Errorf("degree 5 allowed %d/1000, want a sparse probe stream (~15)", got)
	}
}

func TestRecoveryFromNoPrefetch(t *testing.T) {
	e := New(cfg())
	// Driven to no-prefetch...
	e.EndPeriod(Metrics{EarlyEvictions: 50, UsefulPrefetches: 100, TotalRequests: 100, PrefetchesIssued: 100})
	if e.Degree() != MaxDegree {
		t.Fatal("not disabled")
	}
	// ...probe prefetches turn out useful and merge-heavy: recover.
	e.EndPeriod(Metrics{UsefulPrefetches: 10, IntraCoreMerges: 40, TotalRequests: 100, PrefetchesIssued: 10})
	if e.Degree() != MaxDegree-1 {
		t.Errorf("degree = %d, want %d (one step of recovery)", e.Degree(), MaxDegree-1)
	}
}

func TestPeriodsCounted(t *testing.T) {
	e := New(cfg())
	for i := 0; i < 7; i++ {
		e.EndPeriod(Metrics{UsefulPrefetches: 100, PrefetchesIssued: 100})
	}
	if e.Periods() != 7 {
		t.Errorf("Periods = %d, want 7", e.Periods())
	}
}

func TestZeroMetricsNoCrash(t *testing.T) {
	e := New(cfg())
	got := e.EndPeriod(Metrics{})
	if got != 2 {
		t.Errorf("degree = %d, want unchanged 2 on empty period", got)
	}
}
