package harness

import (
	"fmt"

	"mtprefetch/internal/core"
	"mtprefetch/internal/model"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/swpref"
)

func init() {
	register("thresholds", "Throttle threshold sensitivity (the study footnote 5 omits)",
		"Section V fn.5", runThresholds)
	register("mtaml", "MTAML model classification vs measured outcome",
		"Section IV / Figure 7", runMTAML)
}

// runThresholds reconstructs the experiment the paper says it ran but did
// not show: how sensitive the adaptive throttle is to its three
// thresholds. Each candidate setting is evaluated as the geomean MT-SWP+T
// speedup over the sensitivity subset; the paper's published values
// (0.02 / 0.01 / 15%) are marked.
func runThresholds(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	type setting struct {
		high, low, merge float64
	}
	settings := []setting{
		{0.08, 0.04, 0.15},
		{0.04, 0.02, 0.15},
		{0.02, 0.01, 0.15}, // the paper's choice
		{0.01, 0.005, 0.15},
		{0.02, 0.01, 0.05},
		{0.02, 0.01, 0.30},
		{0.005, 0.002, 0.05},
	}
	t := stats.NewTable("Throttle threshold sensitivity (geomean MT-SWP+T speedup, sensitivity subset)",
		"earlyHigh", "earlyLow", "mergeHigh", "geomean", "note")
	specs := r.sweepSuite()
	bases := make([]*future, len(specs))
	for i, spec := range specs {
		bases[i] = r.baselineF(spec)
	}
	runs := make([][]*future, len(settings)) // [setting][spec]
	for si, s := range settings {
		for _, spec := range specs {
			cfg := r.machine()
			cfg.EarlyHighThresh = s.high
			cfg.EarlyLowThresh = s.low
			cfg.MergeHighThresh = s.merge
			key := fmt.Sprintf("thr/%s/%v", spec.Name, s)
			runs[si] = append(runs[si], r.submit(key, core.Options{
				Config: cfg, Workload: r.spec(spec),
				Software: swpref.MTSWP, Throttle: true,
			}))
		}
	}
	for si, s := range settings {
		var sp []float64
		for i := range specs {
			base, res := bases[i].res(), runs[si][i].res()
			if base == nil || res == nil {
				continue
			}
			sp = append(sp, res.Speedup(base))
		}
		geo := errCell()
		if len(sp) > 0 {
			geo = stats.Geomean(sp)
		}
		note := ""
		if s.high == 0.02 && s.low == 0.01 && s.merge == 0.15 {
			note = "<- paper (Table I)"
		}
		t.AddRow(stats.FormatFloat(s.high), stats.FormatFloat(s.low),
			stats.FormatFloat(s.merge), fmtCell(geo), note)
	}
	return []*stats.Table{t}, r.failures()
}

// runMTAML validates the Section IV analytical model against simulation:
// for every memory-intensive benchmark, classify prefetch utility from
// Eqs. 1-4 and the measured latencies, then compare with the measured
// MT-SWP speedup.
func runMTAML(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := stats.NewTable("MTAML classification vs measured MT-SWP outcome",
		"bench", "warps", "MTAML", "MTAML_pref", "lat", "model says", "measured")
	issue := r.machine().IssueCostALU
	specs := suite()
	type row struct{ base, pf *future }
	rows := make([]row, len(specs))
	for i, s := range specs {
		rows[i] = row{r.baselineF(s), r.softwareF(s, swpref.MTSWP, false)}
	}
	for i, s := range specs {
		base, pf := rows[i].base.res(), rows[i].pf.res()
		if base == nil || pf == nil {
			t.AddRow(s.Name, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		a := model.Analyze(s, pf.Coverage)
		cls := a.ClassifyMeasured(base.AvgDemandLatency, pf.AvgDemandLatency, issue)
		t.AddRow(s.Name, fmt.Sprint(a.Warps),
			stats.FormatFloat(a.MTAML), stats.FormatFloat(a.MTAMLPref),
			stats.FormatFloat(base.AvgDemandLatency/float64(issue)),
			cls.String(), fmt.Sprintf("%.2fx", pf.Speedup(base)))
	}
	return []*stats.Table{t}, r.failures()
}
