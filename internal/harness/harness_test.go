package harness

import (
	"strings"
	"testing"

	"mtprefetch/internal/workload"
)

func fastConfig() Config {
	subset := true
	return Config{Waves: 1, Subset: &subset}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6",
		"fig8", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "gstable",
		"thresholds", "mtaml",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].PaperRef == "" || got[i].Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("fig10") == nil {
		t.Error("fig10 not found")
	}
	if ByID("nope") != nil {
		t.Error("unknown id found")
	}
}

func TestStaticTables(t *testing.T) {
	// The config-only experiments run instantly and pin key content.
	for id, want := range map[string]string{
		"table2": "57.6 GB/s",
		"table5": "GHB AC/DC",
		"table6": "557 bytes",
	} {
		tables, err := ByID(id).Run(fastConfig())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := ""
		for _, tb := range tables {
			out += tb.String()
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q:\n%s", id, want, out)
		}
	}
}

func TestTable3RunsAllBenchmarks(t *testing.T) {
	tables, err := ByID("table3").Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() != 14 {
		t.Errorf("table3 rows = %d, want 14", tables[0].NumRows())
	}
	out := tables[0].String()
	for _, b := range []string{"black", "stream", "ocean", "sepia"} {
		if !strings.Contains(out, b) {
			t.Errorf("table3 missing %s", b)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tables, err := ByID("fig10").Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// 14 benchmarks + geomean.
	if tb.NumRows() != 15 {
		t.Errorf("fig10 rows = %d, want 15", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "geomean") {
		t.Error("fig10 missing geomean row")
	}
}

func TestGSTableShape(t *testing.T) {
	tables, err := ByID("gstable").Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tables[0].NumRows(), len(workload.ByClass(workload.Stride)); got != want {
		t.Errorf("gstable rows = %d, want %d", got, want)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := newRunner(fastConfig())
	s := workload.ByName("mersenne")
	a, err := r.baseline(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.baseline(s)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("baseline not cached")
	}
}

func TestSweepSuiteSubset(t *testing.T) {
	sub := true
	r := newRunner(Config{Subset: &sub})
	if got := len(r.sweepSuite()); got != len(sensitivitySubset) {
		t.Errorf("subset size = %d, want %d", got, len(sensitivitySubset))
	}
	full := false
	r2 := newRunner(Config{Subset: &full})
	if got := len(r2.sweepSuite()); got != 14 {
		t.Errorf("full sweep size = %d, want 14", got)
	}
	for _, n := range sensitivitySubset {
		if workload.ByName(n) == nil {
			t.Errorf("subset names unknown benchmark %q", n)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.waves() != 2 {
		t.Errorf("default waves = %d, want 2", c.waves())
	}
	if c.throttlePeriod() != 10_000 {
		t.Errorf("default throttle period = %d, want 10000", c.throttlePeriod())
	}
	if !c.subset() {
		t.Error("default subset should be true")
	}
}

// raceSweepIDs is the scaled-down experiment subset the sweep runs under
// the race detector (where the full registry exceeds the default test
// timeout): the static tables plus the cheapest simulating experiments,
// which together still exercise the parallel runner (baseline, perfect
// memory, hardware-prefetch and pmem futures racing on shared baselines).
var raceSweepIDs = map[string]bool{
	"table2": true, "table4": true, "table5": true,
	"table6": true, "gstable": true,
}

// TestAllExperimentsRun executes every registry entry at the smallest
// scale, verifying each produces non-empty tables without error. This is
// the expensive integration test; skip with -short. Under the race
// detector it runs the raceSweepIDs subset with a multi-worker pool, so
// the parallel runner and sink paths get race coverage on every `make
// check` instead of being skipped wholesale.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	cfg := fastConfig()
	if raceEnabled {
		cfg.Workers = 4
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if raceEnabled && !raceSweepIDs[e.ID] {
				t.Skip("scaled race sweep runs only the raceSweepIDs subset")
			}
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for i, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("table %d empty", i)
				}
				if tb.String() == "" {
					t.Errorf("table %d renders empty", i)
				}
			}
		})
	}
}
