// Live sweep introspection: an optional HTTP debug server the CLI can
// attach to a harness invocation (mtpref -http :6060). It exposes
//
//	/            JSON summary: per-run progress in submission order
//	/metrics     Prometheus text exposition: harness progress gauges plus
//	             the final registry snapshot of recently finished runs
//	/healthz     liveness JSON: run-state counts, uptime, result-store
//	             health, and a status that degrades when any run has
//	             failed; HTTP 503 while the store cannot commit
//	/store       result-store statistics (hits, misses, quarantined,
//	             commit errors) plus the harness retry count
//	/tolerance   live per-core latency-tolerance snapshots (ready warps,
//	             MRQ headroom, oldest-fill age) of running simulations
//	             with cycle accounting attached
//	/spans       live per-source latency waterfalls (plain text, one
//	             table per run) of simulations with span tracing attached
//	/debug/pprof the standard Go profiling endpoints
//
// The server only reads run states the runner publishes at start/finish
// boundaries (plus each finished run's frozen registry snapshot), so it
// never races with a simulation's hot loop and never perturbs results.
package harness

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"mtprefetch/internal/obs"
	"mtprefetch/internal/store"
)

// DefaultSnapshotKeep bounds how many finished runs keep their full
// registry snapshot for /metrics; older runs keep only their progress
// line. A big sweep has hundreds of runs with hundreds of instruments
// each, and the recent tail is what live debugging looks at. Override
// per server with SetSnapshotKeep.
const DefaultSnapshotKeep = 32

// runState is one simulation's progress entry as served by the debug
// endpoints.
type runState struct {
	Key     string  `json:"key"`
	Status  string  `json:"status"` // "running", "done", "cached", "failed"
	Seconds float64 `json:"seconds"`
	Retries int     `json:"retries,omitempty"`
	Error   string  `json:"error,omitempty"`

	started time.Time
	snap    []obs.SnapshotEntry // non-nil only for recent finished runs
	cpi     *obs.CPIStack       // live cycle accounting while running
	spans   *obs.SpanSet        // live span aggregation while running
}

// DebugServer is the optional live-introspection HTTP server. A nil
// *DebugServer is disabled: the runner's publish hooks do nothing, so the
// harness carries no conditionals.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	closed  bool     // Close called: publish hooks become inert
	order   []string // submission order, for stable listings
	runs    map[string]*runState
	snaps   []string // keys of finished runs still holding snapshots
	keep    int      // snapshot cap (DefaultSnapshotKeep unless overridden)
	failed  int
	done    int
	cached  int // runs served from the result store
	retried int // transient-failure retries across all runs
	st      *store.Store

	started time.Time
}

// NewDebugServer starts the server on addr (":0" picks a free port; see
// Addr). Close shuts it down.
func NewDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, runs: make(map[string]*runState),
		keep: DefaultSnapshotKeep, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.serveRuns)
	mux.HandleFunc("/metrics", d.serveMetrics)
	mux.HandleFunc("/healthz", d.serveHealthz)
	mux.HandleFunc("/store", d.serveStore)
	mux.HandleFunc("/tolerance", d.serveTolerance)
	mux.HandleFunc("/spans", d.serveSpans)
	// net/http/pprof registers on http.DefaultServeMux; with a private mux
	// the handlers must be wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return d, nil
}

// Addr reports the listening address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the server down. The publish hooks (RunStarted,
// RunFinished, RunLive, RunCached, RunRetried) become inert, so
// stragglers from a draining sweep cannot mutate a closed server's
// state mid-report.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return d.srv.Close()
}

// SetStore attaches the persistent result store whose statistics
// /store and /healthz report; nil detaches.
func (d *DebugServer) SetStore(s *store.Store) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.st = s
	d.mu.Unlock()
}

// SetSnapshotKeep overrides how many finished runs keep their registry
// snapshot (negative values clamp to zero, dropping snapshots entirely).
// Shrinking below the currently retained count evicts the oldest
// snapshots immediately.
func (d *DebugServer) SetSnapshotKeep(n int) {
	if d == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keep = n
	for len(d.snaps) > d.keep {
		d.runs[d.snaps[0]].snap = nil
		d.snaps = d.snaps[1:]
	}
}

// RunLive attaches a running simulation's observability state so
// /tolerance can serve its latest latency-tolerance snapshot and /spans
// its latency waterfall while the run is in flight. CPIStack publishes
// epoch snapshots and SpanSet aggregates finished spans under their own
// mutexes, so reads never touch the simulation's hot loop. Nil
// arguments (features not enabled) are ignored individually.
func (d *DebugServer) RunLive(key string, cpi *obs.CPIStack, spans *obs.SpanSet) {
	if d == nil || (cpi == nil && spans == nil) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	st := d.runs[key]
	if st == nil {
		st = &runState{Key: key, Status: "running", started: time.Now()}
		d.order = append(d.order, key)
		d.runs[key] = st
	}
	st.cpi = cpi
	st.spans = spans
}

// RunStarted publishes that the runner began executing key.
func (d *DebugServer) RunStarted(key string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if _, ok := d.runs[key]; ok {
		return
	}
	d.order = append(d.order, key)
	d.runs[key] = &runState{Key: key, Status: "running", started: time.Now()}
}

// RunCached publishes that key was served from the result store
// without simulating.
func (d *DebugServer) RunCached(key string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	st := d.runs[key]
	if st == nil {
		st = &runState{Key: key, started: time.Now()}
		d.order = append(d.order, key)
		d.runs[key] = st
	}
	st.Status = "cached"
	st.Seconds = time.Since(st.started).Seconds()
	d.done++
	d.cached++
}

// RunRetried publishes that key's attempt (1-based) failed with a
// transient error and is being retried; the run stays "running".
func (d *DebugServer) RunRetried(key string, attempt int, err error) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	st := d.runs[key]
	if st == nil {
		st = &runState{Key: key, Status: "running", started: time.Now()}
		d.order = append(d.order, key)
		d.runs[key] = st
	}
	if attempt > st.Retries {
		st.Retries = attempt
	}
	if err != nil {
		st.Error = err.Error() // last transient error, cleared on success
	}
	d.retried++
}

// RunFinished publishes a run's completion, its error (nil on success),
// and its frozen end-of-run registry snapshot (may be nil, e.g. after a
// panic).
func (d *DebugServer) RunFinished(key string, snap []obs.SnapshotEntry, err error) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	st := d.runs[key]
	if st == nil {
		st = &runState{Key: key, started: time.Now()}
		d.order = append(d.order, key)
		d.runs[key] = st
	}
	st.Seconds = time.Since(st.started).Seconds()
	if err != nil {
		st.Status = "failed"
		st.Error = err.Error()
		d.failed++
	} else {
		st.Status = "done"
		st.Error = "" // clear a retried attempt's transient error
		d.done++
	}
	if snap != nil && d.keep > 0 {
		st.snap = snap
		d.snaps = append(d.snaps, key)
		if len(d.snaps) > d.keep {
			d.runs[d.snaps[0]].snap = nil
			d.snaps = d.snaps[1:]
		}
	}
}

// serveRuns renders the JSON progress summary.
func (d *DebugServer) serveRuns(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != "/runs" {
		http.NotFound(w, r)
		return
	}
	d.mu.Lock()
	out := struct {
		Running int        `json:"running"`
		Done    int        `json:"done"`
		Failed  int        `json:"failed"`
		Runs    []runState `json:"runs"`
	}{Done: d.done, Failed: d.failed}
	for _, k := range d.order {
		st := d.runs[k]
		row := *st
		if row.Status == "running" {
			row.Seconds = time.Since(st.started).Seconds()
			out.Running++
		}
		out.Runs = append(out.Runs, row)
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client went away
}

// serveMetrics renders the Prometheus text exposition: harness progress
// gauges plus every retained finished run's registry snapshot, labelled
// by run key, core, and component.
func (d *DebugServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	running := 0
	for _, st := range d.runs {
		if st.Status == "running" {
			running++
		}
	}
	fmt.Fprintf(w, "# TYPE mtpref_runs gauge\n")
	fmt.Fprintf(w, "mtpref_runs{status=%q} %d\n", "running", running)
	fmt.Fprintf(w, "mtpref_runs{status=%q} %d\n", "done", d.done)
	fmt.Fprintf(w, "mtpref_runs{status=%q} %d\n", "failed", d.failed)
	for _, key := range d.snaps {
		for _, e := range d.runs[key].snap {
			fmt.Fprintf(w, "sim_%s{run=%q,core=%q,component=%q} %g\n",
				promName(e.Name), key, fmt.Sprint(e.Core), e.Component, e.Value)
		}
	}
}

// storeHealth is the result-store section of /healthz.
type storeHealth struct {
	Entries         int    `json:"entries"`
	Quarantined     int64  `json:"quarantined"`
	CommitErrors    int64  `json:"commit_errors"`
	LastCommitError string `json:"last_commit_error,omitempty"`
	Degraded        bool   `json:"degraded"`
}

// serveHealthz renders the liveness summary: overall status ("ok", or
// "degraded" once any run has failed or the result store cannot
// commit), run-state counts, store health, and uptime. A store stuck
// degraded — its most recent commit attempt failed — additionally
// answers HTTP 503, so external probes catch a sweep silently losing
// its persistence (failed runs alone stay 200: the process is healthy
// and the damage is already reported per run).
func (d *DebugServer) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	running := 0
	for _, st := range d.runs {
		if st.Status == "running" {
			running++
		}
	}
	out := struct {
		Status        string       `json:"status"`
		Running       int          `json:"running"`
		Done          int          `json:"done"`
		Failed        int          `json:"failed"`
		UptimeSeconds float64      `json:"uptime_seconds"`
		Store         *storeHealth `json:"store,omitempty"`
	}{
		Status:        "ok",
		Running:       running,
		Done:          d.done,
		Failed:        d.failed,
		UptimeSeconds: time.Since(d.started).Seconds(),
	}
	if d.failed > 0 {
		out.Status = "degraded"
	}
	code := http.StatusOK
	if d.st != nil {
		s := d.st.Stats()
		out.Store = &storeHealth{
			Entries:         s.Entries,
			Quarantined:     s.Quarantined,
			CommitErrors:    s.CommitErrors,
			LastCommitError: s.LastCommitError,
			Degraded:        s.Degraded,
		}
		if s.Degraded {
			out.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client went away
}

// serveStore renders the result store's statistics plus the harness's
// cached/retried run counts; attached=false (and zero stats) when no
// store is configured.
func (d *DebugServer) serveStore(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	out := struct {
		Attached bool        `json:"attached"`
		Cached   int         `json:"cached_runs"`
		Retried  int         `json:"retried_attempts"`
		Stats    store.Stats `json:"stats"`
	}{Attached: d.st != nil, Cached: d.cached, Retried: d.retried}
	if d.st != nil {
		out.Stats = d.st.Stats()
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client went away
}

// serveTolerance renders the latest latency-tolerance snapshot of every
// run that attached live cycle accounting (RunLive), in submission
// order. Finished runs keep their final snapshot.
func (d *DebugServer) serveTolerance(w http.ResponseWriter, _ *http.Request) {
	type tolRun struct {
		Key    string          `json:"key"`
		Status string          `json:"status"`
		Cycle  uint64          `json:"cycle"`
		Cores  []obs.Tolerance `json:"cores"`
	}
	d.mu.Lock()
	var runs []tolRun
	for _, k := range d.order {
		st := d.runs[k]
		if st.cpi == nil {
			continue
		}
		cyc, tol := st.cpi.Tolerances()
		runs = append(runs, tolRun{Key: k, Status: st.Status, Cycle: cyc, Cores: tol})
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Runs []tolRun `json:"runs"`
	}{runs}) //nolint:errcheck // client went away
}

// serveSpans renders the live latency waterfall of every run that
// attached span tracing (RunLive), in submission order, as plain text —
// the same per-source table cmd/spanstat renders from the JSONL.
// Finished runs keep their final waterfall.
func (d *DebugServer) serveSpans(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	var runs []*runState
	for _, k := range d.order {
		if st := d.runs[k]; st.spans != nil {
			runs = append(runs, st)
		}
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, st := range runs {
		// WriteTable locks the SpanSet itself, so a mid-run snapshot is
		// consistent without holding the server mutex across renders.
		fmt.Fprintf(w, "%s (%s): %d/%d spans finished\n", st.Key, st.Status,
			st.spans.Finished(), st.spans.Started())
		st.spans.WriteTable(w) //nolint:errcheck // client went away
		fmt.Fprintln(w)
	}
}

// promName sanitises a registry metric name ("smcore.demand_latency")
// into the Prometheus name charset [a-zA-Z0-9_:].
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, s)
}
