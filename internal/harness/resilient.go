// Resilient run lifecycle: per-run wall-clock deadlines, bounded
// retries with deterministic seeded backoff for transient failures,
// persistent result-store integration (lookups, artifact replay, and
// retried commits), and graceful drain on SIGTERM — in-flight runs
// cancel at their next poll barrier, completed results stay committed,
// and the aborted keys are reported so a re-run resumes exactly the
// missing cells from the store.
package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"mtprefetch/internal/core"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/store"
)

// ErrDrained marks runs the harness refused to start (or gave up
// waiting on) because a drain had begun; errors.Is sees it through the
// *RunError wrapper. Runs canceled mid-flight carry core.ErrCanceled
// instead — both kinds are listed by Lifecycle.Aborted.
var ErrDrained = errors.New("harness: run aborted by drain")

// Lifecycle coordinates graceful shutdown across every experiment of
// one harness invocation. Drain (typically wired to SIGTERM/SIGINT via
// HandleSignals) stops new simulations from starting and cancels
// in-flight ones at their next cancellation-poll barrier; results that
// completed before the drain stay committed to the result store, so a
// later invocation resumes from exactly the aborted cells. A nil
// *Lifecycle never drains and costs nothing.
type Lifecycle struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	aborted map[string]bool
}

// NewLifecycle builds an armed lifecycle.
func NewLifecycle() *Lifecycle {
	ctx, cancel := context.WithCancel(context.Background())
	return &Lifecycle{ctx: ctx, cancel: cancel, aborted: make(map[string]bool)}
}

// Context is the base context every run's Options.Ctx derives from; it
// is canceled by Drain. A nil lifecycle yields context.Background().
func (l *Lifecycle) Context() context.Context {
	if l == nil {
		return context.Background()
	}
	return l.ctx
}

// Drain begins a graceful shutdown; it is idempotent and safe from any
// goroutine (including signal handlers).
func (l *Lifecycle) Drain() {
	if l != nil {
		l.cancel()
	}
}

// Draining reports whether Drain has been called.
func (l *Lifecycle) Draining() bool {
	if l == nil {
		return false
	}
	select {
	case <-l.ctx.Done():
		return true
	default:
		return false
	}
}

// drainingC is the channel form of Draining for select sites; nil (a
// never-ready channel) when the lifecycle is nil.
func (l *Lifecycle) drainingC() <-chan struct{} {
	if l == nil {
		return nil
	}
	return l.ctx.Done()
}

// noteAborted records a run key the drain cost.
func (l *Lifecycle) noteAborted(key string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.aborted[key] = true
	l.mu.Unlock()
}

// Aborted lists, sorted, every run key the drain aborted — refused
// before start or canceled in flight. The exit summary prints it so
// the operator knows exactly which cells a resumed sweep will fill.
func (l *Lifecycle) Aborted() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.aborted))
	for k := range l.aborted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HandleSignals wires OS signals to Drain: the first SIGTERM/SIGINT
// (or the given signals) begins a graceful drain, a second one exits
// immediately. The returned stop function uninstalls the handler.
func (l *Lifecycle) HandleSignals(sigs ...os.Signal) (stop func()) {
	if l == nil {
		return func() {}
	}
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGTERM, os.Interrupt}
	}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "harness: %v: draining (in-flight runs cancel at the next barrier; signal again to exit now)\n", sig)
		l.Drain()
		if _, ok := <-ch; ok {
			os.Exit(130)
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// defaultRetryBackoff is the base delay between transient-failure
// retries when Config.RetryBackoff is zero.
const defaultRetryBackoff = 100 * time.Millisecond

// maxBackoffShift caps the exponential growth (base << 6 = 64x).
const maxBackoffShift = 6

// retryDelay computes the deterministic, seeded backoff before retry
// attempt (0-based) of key: exponential in the attempt with a jitter
// factor in [0.5, 1.0) seeded by FNV-64a over (key, attempt). The
// schedule decorrelates concurrent retries of different runs while any
// two executions of the same sweep back off identically — wall clock
// varies, results never do.
func retryDelay(key string, attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		base = defaultRetryBackoff
	}
	shift := attempt
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	h := fnv.New64a()
	io.WriteString(h, key)                       //nolint:errcheck // hash writes cannot fail
	fmt.Fprintf(h, "#%d", attempt)               //nolint:errcheck
	jitter := 0.5 + float64(h.Sum64()&1023)/2048 // [0.5, 1.0)
	return time.Duration(float64(base<<shift) * jitter)
}

// retries resolves the retry budget (negative treated as zero).
func (c Config) retries() int {
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

// runCtx derives one attempt's context: the lifecycle's drain context,
// deadline-bounded when RunTimeout is set. Both absent returns nil so
// the simulator skips cancellation polling entirely.
func (r *runner) runCtx() (context.Context, context.CancelFunc) {
	if r.c.RunTimeout > 0 {
		return context.WithTimeout(r.c.Lifecycle.Context(), r.c.RunTimeout)
	}
	if r.c.Lifecycle == nil {
		return nil, nil
	}
	return r.c.Lifecycle.Context(), nil
}

// storeEnabled reports whether a run may be served from / committed to
// the persistent store: a store is configured, the run carries no
// chaos injector (an injected run's Result may deliberately differ
// from the fault-free one, and injectors are stateful), and the sink
// has no live-only stream (tracing serialises the event ring directly,
// which stored artifacts cannot reproduce).
func (r *runner) storeEnabled(o core.Options) bool {
	return r.c.Store != nil && o.Inject == nil && !r.c.Obs.NeedsLive()
}

// storeFingerprint computes the run's content address, or "" when the
// store does not apply. A fingerprint failure only costs persistence:
// the run simulates normally.
func (r *runner) storeFingerprint(key string, o core.Options) string {
	if !r.storeEnabled(o) {
		return ""
	}
	fp, err := store.Fingerprint(key, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harness: %v (run will not use the store)\n", err)
		return ""
	}
	return fp
}

// storeGet serves a run from the store when possible, replaying its
// artifact bundle into the sink so shared output files stay
// byte-identical with a live execution. ok reports a hit; err is a
// sink write failure on an otherwise-good hit (mirroring Finish
// errors, it surfaces without discarding the result).
func (r *runner) storeGet(key, fp string) (res *core.Result, ok bool, err error) {
	if fp == "" {
		return nil, false, nil
	}
	e, hit := r.c.Store.Get(fp, r.c.Obs.Streams()...)
	if !hit {
		return nil, false, nil
	}
	if err := r.c.Obs.FinishStored(key, e.Artifacts); err != nil {
		return e.Result, true, fmt.Errorf("%s: %w", key, err)
	}
	r.c.Debug.RunCached(key)
	return e.Result, true, nil
}

// storePut commits a completed run, retrying transient commit faults
// on the same seeded backoff schedule as run retries. A commit that
// stays failed degrades the store (visible on /healthz and /store) but
// never the run: the result is already in hand.
func (r *runner) storePut(key, fp string, ob *obs.Observer, res *core.Result) {
	if fp == "" {
		return
	}
	artifacts, err := r.c.Obs.Capture(key, ob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harness: %v (run not committed to store)\n", err)
		return
	}
	e := &store.Entry{Key: key, Fingerprint: fp, Result: res, Artifacts: artifacts}
	for try := 0; ; try++ {
		err = r.c.Store.Put(e)
		if err == nil || !simerr.IsTransient(err) || try >= r.c.retries() || r.c.Lifecycle.Draining() {
			break
		}
		r.c.Debug.RunRetried(key, try+1, err)
		time.Sleep(retryDelay(key, try, r.c.RetryBackoff))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "harness: store commit for %s failed: %v\n", key, err)
	}
}
