package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/obs"
)

// dump writes a crash-dump bundle for a failed run when Config.CrashDir
// is set, returning the bundle directory ("" when dumping is disabled
// or the write failed — a dump failure must never mask the run error).
func (r *runner) dump(re *RunError, o core.Options, sim *core.Simulator) string {
	if r.c.CrashDir == "" {
		return ""
	}
	dir, err := writeCrashDump(r.c.CrashDir, re, o, sim)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harness: crash dump for %s failed: %v\n", re.Key, err)
		return ""
	}
	return dir
}

// writeCrashDump materialises one failed run's diagnostics under
// dir/<sanitised-key>/:
//
//	error.txt      the failure message, options fingerprint, and stack
//	config.json    the machine configuration the run used
//	metrics.json   a snapshot of the metrics registry (when a simulator
//	               was built)
//	livelock.json  the watchdog's machine snapshot (livelock aborts only)
//	trace.json     the obs ring-buffer tail as a Chrome trace (when the
//	               run had a tracer attached)
func writeCrashDump(dir string, re *RunError, o core.Options, sim *core.Simulator) (string, error) {
	sub := filepath.Join(dir, sanitizeKey(re.Key))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}

	var b strings.Builder
	if re.Panic != nil {
		fmt.Fprintf(&b, "panic: %v\n", re.Panic)
	} else if re.Err != nil {
		fmt.Fprintf(&b, "error: %v\n", re.Err)
	}
	fmt.Fprintf(&b, "run: %s\noptions: %s\n", re.Key, re.Fingerprint)
	if len(re.Stack) > 0 {
		fmt.Fprintf(&b, "\n%s", re.Stack)
	}
	if err := os.WriteFile(filepath.Join(sub, "error.txt"), []byte(b.String()), 0o644); err != nil {
		return "", err
	}

	cfg := o.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	if err := writeJSON(filepath.Join(sub, "config.json"), cfg); err != nil {
		return "", err
	}
	if sim != nil {
		if err := writeJSON(filepath.Join(sub, "metrics.json"), sim.Registry().Snapshot()); err != nil {
			return "", err
		}
	}
	var ll *core.LivelockError
	if errors.As(re.Err, &ll) {
		if err := writeJSON(filepath.Join(sub, "livelock.json"), ll.Snapshot); err != nil {
			return "", err
		}
	}
	if o.Obs != nil && o.Obs.Tracer != nil {
		if err := writeTrace(filepath.Join(sub, "trace.json"), re.Key, o.Obs.Tracer); err != nil {
			return "", err
		}
	}
	return sub, nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func writeTrace(path, key string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw, err := obs.NewTraceWriter(f)
	if err == nil {
		err = tw.AddRun(0, key, "core", t)
	}
	if err == nil {
		err = tw.Close()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitizeKey maps a memoisation key onto a filesystem-safe directory
// name (keys embed '/' separators). The readable part is lossy — every
// disallowed rune flattens to '_', so distinct keys like "sw/a_b" and
// "sw/a/b" collide — hence the suffix: an FNV-32a hash of the raw key
// keeps the directory unique per key, so two failed runs can never
// overwrite each other's dump bundles.
func sanitizeKey(key string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '+', r == '=':
			return r
		default:
			return '_'
		}
	}, key)
	h := fnv.New32a()
	io.WriteString(h, key) //nolint:errcheck // hash writes cannot fail
	return fmt.Sprintf("%s-%08x", mapped, h.Sum32())
}
