package harness

import (
	"fmt"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

func init() {
	register("table2", "Baseline processor configuration", "Table II", runTable2)
	register("table3", "Memory-intensive benchmark characteristics", "Table III", runTable3)
	register("table4", "Non-memory-intensive benchmarks", "Table IV", runTable4)
	register("table5", "Evaluated hardware prefetchers", "Table V", runTable5)
	register("table6", "Hardware cost of MT-HWP", "Table VI", runTable6)
	register("fig8", "Normalized memory latency and accuracy under SW prefetching", "Figure 8", runFig8)
	register("fig10", "Software prefetching speedups", "Figure 10", runFig10)
	register("fig11", "MT-SWP with adaptive throttling", "Figure 11", runFig11)
	register("fig12", "Early prefetches and bandwidth under MT-SWP throttling", "Figure 12", runFig12)
	register("fig13", "Hardware prefetchers: naive vs warp-id training", "Figure 13", runFig13)
	register("fig14", "MT-HWP table ablation", "Figure 14", runFig14)
	register("fig15", "Hardware prefetching with feedback/throttling", "Figure 15", runFig15)
	register("fig16", "Prefetch cache size sensitivity", "Figure 16", runFig16)
	register("fig17", "Prefetch distance sensitivity (MT-HWP)", "Figure 17", runFig17)
	register("fig18", "Core count sensitivity", "Figure 18", runFig18)
	register("gstable", "GS-table PWS-access savings on stride-type", "Section VIII-B", runGSTable)
}

func runTable2(Config) ([]*stats.Table, error) {
	c := config.Baseline()
	t := stats.NewTable("Table II — baseline processor configuration", "parameter", "value")
	t.AddRow("cores", fmt.Sprintf("%d x %d-wide SIMD", c.NumCores, c.SIMDWidth))
	t.AddRow("warp size", fmt.Sprint(c.WarpSize))
	t.AddRow("issue occupancy (ALU/IMUL/FDIV)", fmt.Sprintf("%d/%d/%d cycles per warp-instruction",
		c.IssueCostALU, c.IssueCostIMul, c.IssueCostFDiv))
	t.AddRow("core / DRAM clock", fmt.Sprintf("%d / %d MHz", c.CoreClockMHz, c.DRAMClockMHz))
	t.AddRow("interconnect", fmt.Sprintf("%d-cycle fixed latency, 1 req per %d cores per cycle",
		c.NOCLatency, c.NOCCoresPerInject))
	t.AddRow("DRAM", fmt.Sprintf("%d channels x %d banks, %dB rows, tCL/tRCD/tRP = %d/%d/%d",
		c.DRAMChannels, c.DRAMBanks, c.DRAMRowBytes, c.DRAMtCL, c.DRAMtRCD, c.DRAMtRP))
	t.AddRow("peak bandwidth", fmt.Sprintf("%.1f GB/s", c.BandwidthGBs()))
	t.AddRow("prefetch cache", fmt.Sprintf("%d KB, %d-way", c.PrefetchCacheBytes/1024, c.PrefetchCacheWays))
	t.AddRow("prefetch distance/degree", fmt.Sprintf("%d / %d", c.PrefetchDistance, c.PrefetchDegree))
	t.AddRow("scheduling priority", "demand over prefetch")
	return []*stats.Table{t}, nil
}

// pmemF submits the perfect-memory run for a benchmark.
func pmemF(r *runner, s *workload.Spec) *future {
	return r.submit("pmem/"+s.Name, core.Options{
		Config: r.machine(), Workload: r.spec(s), PerfectMemory: true,
	})
}

func runTable3(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := stats.NewTable("Table III — memory-intensive benchmark characteristics",
		"bench", "suite", "type", "warps", "blocks", "maxBlk/core",
		"baseCPI", "pmemCPI", "paperBase", "paperPMem", "DEL(S/IP)")
	specs := suite()
	bases := make([]*future, len(specs))
	pmems := make([]*future, len(specs))
	for i, s := range specs {
		bases[i] = r.baselineF(s)
		pmems[i] = pmemF(r, s)
	}
	for i, s := range specs {
		base, pm := bases[i].res(), pmems[i].res()
		baseCPI, pmCPI := errCell(), errCell()
		if base != nil {
			baseCPI = base.CPI
		}
		if pm != nil {
			pmCPI = pm.CPI
		}
		t.AddRow(s.Name, s.Suite, s.Class.String(),
			fmt.Sprint(s.TotalWarps), fmt.Sprint(s.Blocks), fmt.Sprint(s.MaxBlocksPerCore),
			fmtCell(baseCPI), fmtCell(pmCPI),
			stats.FormatFloat(s.PaperBaseCPI), stats.FormatFloat(s.PaperPMemCPI),
			fmt.Sprintf("%d/%d", s.DelStride, s.DelIP))
	}
	return []*stats.Table{t}, r.failures()
}

func runTable4(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	mt := hwMTHWP(true, true, 1)
	t := stats.NewTable("Table IV — non-memory-intensive benchmarks",
		"bench", "suite", "baseCPI", "pmemCPI", "hwpCPI", "paperBase", "paperPMem")
	specs := workload.NonIntensiveSpecs()
	type row struct{ base, pmem, hw *future }
	rows := make([]row, len(specs))
	for i, s := range specs {
		rows[i] = row{r.baselineF(s), pmemF(r, s), r.hardwareF(s, mt.name, mt.make, false)}
	}
	for i, s := range specs {
		base, pm, hw := rows[i].base.res(), rows[i].pmem.res(), rows[i].hw.res()
		baseCPI, pmCPI, hwCPI := errCell(), errCell(), errCell()
		if base != nil {
			baseCPI = base.CPI
		}
		if pm != nil {
			pmCPI = pm.CPI
		}
		if hw != nil {
			hwCPI = hw.CPI
		}
		t.AddRow(s.Name, s.Suite,
			fmtCell(baseCPI), fmtCell(pmCPI), fmtCell(hwCPI),
			stats.FormatFloat(s.PaperBaseCPI), stats.FormatFloat(s.PaperPMemCPI))
	}
	return []*stats.Table{t}, r.failures()
}

func runTable5(Config) ([]*stats.Table, error) {
	t := stats.NewTable("Table V — evaluated hardware prefetchers",
		"prefetcher", "description", "configuration")
	t.AddRow("Stride RPT", "region-based stride prefetcher [13]", "1024-entry, 16 region bits")
	t.AddRow("StridePC", "per-PC stride prefetcher [4,11]", "1024-entry")
	t.AddRow("Stream", "stream prefetcher [29]", "512-entry")
	t.AddRow("GHB AC/DC", "global history buffer prefetcher [14,21]", "1024-entry GHB, 12-bit CZone, 128-entry index")
	t.AddRow("MT-HWP", "this paper", "32-entry PWS + 8-entry GS + 8-entry IP")
	return []*stats.Table{t}, nil
}

func runTable6(Config) ([]*stats.Table, error) {
	t := stats.NewTable("Table VI — hardware cost of MT-HWP",
		"table", "fields", "bits/entry", "entries", "total bits")
	total := 0
	for _, tc := range prefetch.MTHWPCost() {
		t.AddRow(tc.Name, tc.Fields, fmt.Sprint(tc.BitsPerEntry),
			fmt.Sprint(tc.Entries), fmt.Sprint(tc.TotalBits()))
		total += tc.TotalBits()
	}
	t.AddRow("total", "", "", "", fmt.Sprintf("%d bits = %d bytes", total, prefetch.MTHWPCostBytes()))
	return []*stats.Table{t}, nil
}

func runFig8(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := stats.NewTable("Figure 8 — normalized avg memory latency (bar) and prefetch accuracy (circle) under MT-SWP",
		"bench", "normLatency", "accuracy%")
	specs := suite()
	type row struct{ base, pf *future }
	rows := make([]row, len(specs))
	for i, s := range specs {
		rows[i] = row{r.baselineF(s), r.softwareF(s, swpref.MTSWP, false)}
	}
	for i, s := range specs {
		base, pf := rows[i].base.res(), rows[i].pf.res()
		norm, acc := errCell(), errCell()
		if base != nil && pf != nil {
			norm = stats.SafeDiv(pf.AvgDemandLatency, base.AvgDemandLatency)
			acc = pf.Accuracy * 100
		}
		t.AddRow(s.Name, fmtCell(norm), fmtCell(acc))
	}
	return []*stats.Table{t}, r.failures()
}

// speedupMatrix waits for a baseline-per-row plus a futures matrix and
// folds them into per-row speedup vectors, preserving submission order.
// Cells whose run (or baseline) failed are NaN, rendered as ERR.
func speedupMatrix(bases []*future, runs [][]*future) [][]float64 {
	matrix := make([][]float64, len(bases))
	for i := range bases {
		base := bases[i].res()
		row := make([]float64, 0, len(runs[i]))
		for _, f := range runs[i] {
			res := f.res()
			if base == nil || res == nil {
				row = append(row, errCell())
				continue
			}
			row = append(row, res.Speedup(base))
		}
		matrix[i] = row
	}
	return matrix
}

// speedupTable assembles the standard bench/type/columns speedup table
// (plus the geomean footer) from a completed matrix.
func speedupTable(title string, specs []*workload.Spec, cols []string, matrix [][]float64) *stats.Table {
	headers := append([]string{"bench", "type"}, cols...)
	t := stats.NewTable(title, headers...)
	for i, s := range specs {
		cells := []string{s.Name, s.Class.String()}
		for _, v := range matrix[i] {
			cells = append(cells, fmtCell(v))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean", ""}
	for i := range cols {
		cells = append(cells, fmtCell(geomeanColumn(matrix, i)))
	}
	t.AddRow(cells...)
	return t
}

// swSpeedupTable renders one speedup column set for the software figures.
func swSpeedupTable(r *runner, title string, modes []swpref.Mode, names []string, throttleLast bool) *stats.Table {
	specs := suite()
	bases := make([]*future, len(specs))
	runs := make([][]*future, len(specs))
	for i, s := range specs {
		bases[i] = r.baselineF(s)
		for j, m := range modes {
			throttle := throttleLast && j == len(modes)-1
			runs[i] = append(runs[i], r.softwareF(s, m, throttle))
		}
	}
	return speedupTable(title, specs, names, speedupMatrix(bases, runs))
}

func runFig10(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := swSpeedupTable(r,
		"Figure 10 — software prefetching speedup over no-prefetching baseline",
		[]swpref.Mode{swpref.Register, swpref.Stride, swpref.IP, swpref.MTSWP},
		[]string{"register", "stride", "ip", "stride+ip"}, false)
	return []*stats.Table{t}, r.failures()
}

func runFig11(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := swSpeedupTable(r,
		"Figure 11 — MT-SWP with adaptive prefetch throttling (speedup over baseline)",
		[]swpref.Mode{swpref.Register, swpref.Stride, swpref.MTSWP, swpref.MTSWP},
		[]string{"register", "stride", "mt-swp", "mt-swp+T"}, true)
	return []*stats.Table{t}, r.failures()
}

func runFig12(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	early := stats.NewTable("Figure 12a — ratio of early prefetches",
		"bench", "mt-swp", "mt-swp+T")
	bw := stats.NewTable("Figure 12b — bandwidth consumption normalized to no-prefetching",
		"bench", "mt-swp", "mt-swp+T")
	specs := suite()
	type row struct{ base, pf, pfT *future }
	rows := make([]row, len(specs))
	for i, s := range specs {
		rows[i] = row{r.baselineF(s),
			r.softwareF(s, swpref.MTSWP, false),
			r.softwareF(s, swpref.MTSWP, true)}
	}
	for i, s := range specs {
		base, pf, pfT := rows[i].base.res(), rows[i].pf.res(), rows[i].pfT.res()
		earlyRatio := func(x *core.Result) float64 {
			if x == nil {
				return errCell()
			}
			return stats.Ratio(x.EarlyEvictions, x.PrefetchesIssued)
		}
		bwRatio := func(x *core.Result) float64 {
			if x == nil || base == nil {
				return errCell()
			}
			return stats.SafeDiv(float64(x.BytesTransferred), float64(base.BytesTransferred))
		}
		early.AddRow(s.Name, fmtCell(earlyRatio(pf)), fmtCell(earlyRatio(pfT)))
		bw.AddRow(s.Name, fmtCell(bwRatio(pf)), fmtCell(bwRatio(pfT)))
	}
	return []*stats.Table{early, bw}, r.failures()
}

// hwSpeedupTable renders one speedup table over the full suite for a list
// of hardware prefetchers.
func hwSpeedupTable(r *runner, title string, hws []namedHW, throttled []bool) *stats.Table {
	cols := make([]string, 0, len(hws))
	for i, h := range hws {
		n := h.name
		if throttled != nil && throttled[i] {
			n += "+T"
		}
		cols = append(cols, n)
	}
	specs := suite()
	bases := make([]*future, len(specs))
	runs := make([][]*future, len(specs))
	for i, s := range specs {
		bases[i] = r.baselineF(s)
		for j, h := range hws {
			thr := throttled != nil && throttled[j]
			runs[i] = append(runs[i], r.hardwareF(s, h.name, h.make, thr))
		}
	}
	return speedupTable(title, specs, cols, speedupMatrix(bases, runs))
}

func runFig13(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	naive := hwSpeedupTable(r,
		"Figure 13a — hardware prefetchers, original indexing (speedup over baseline)",
		[]namedHW{hwStrideRPT(false), hwStridePC(false, false), hwStream(false), hwGHB(false, false)}, nil)
	enhanced := hwSpeedupTable(r,
		"Figure 13b — hardware prefetchers, enhanced warp-id indexing (speedup over baseline)",
		[]namedHW{hwStrideRPT(true), hwStridePC(true, false), hwStream(true), hwGHB(true, false)}, nil)
	return []*stats.Table{naive, enhanced}, r.failures()
}

func runFig14(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := hwSpeedupTable(r,
		"Figure 14 — MT-HWP table ablation (speedup over baseline)",
		[]namedHW{
			hwGHB(true, false),
			hwMTHWP(false, false, 1), // PWS only (= enhanced StridePC at MT-HWP sizing)
			hwMTHWP(true, false, 1),  // PWS+GS
			hwMTHWP(false, true, 1),  // PWS+IP
			hwMTHWP(true, true, 1),   // PWS+GS+IP
		}, nil)
	return []*stats.Table{t}, r.failures()
}

func runFig15(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := hwSpeedupTable(r,
		"Figure 15 — feedback-driven and throttled hardware prefetching (speedup over baseline)",
		[]namedHW{
			hwGHB(true, false),
			hwGHB(true, true), // GHB+F
			hwStridePC(true, false),
			hwStridePC(true, true), // StridePC+T
			hwMTHWP(true, true, 1),
			hwMTHWP(true, true, 1), // MT-HWP+T (throttled flag below)
		},
		[]bool{false, false, false, false, false, true})
	return []*stats.Table{t}, r.failures()
}

// sweepModes are the four series the Fig. 16/18 sweeps plot.
var sweepModes = []struct {
	hw  bool
	thr bool
}{{true, false}, {true, true}, {false, false}, {false, true}}

func runFig16(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128}
	t := stats.NewTable("Figure 16 — sensitivity to prefetch cache size (geomean speedup over baseline)",
		"sizeKB", "mt-hwp", "mt-hwp+T", "mt-swp", "mt-swp+T")
	mt := hwMTHWP(true, true, 1)
	specs := r.sweepSuite()
	bases := make([]*future, len(specs))
	for i, s := range specs {
		bases[i] = r.baselineF(s)
	}
	runs := make([][][]*future, len(sizes)) // [size][spec][mode]
	for si, kb := range sizes {
		cfg := r.machine()
		cfg.PrefetchCacheBytes = kb * 1024
		runs[si] = make([][]*future, len(specs))
		for i, s := range specs {
			for _, mode := range sweepModes {
				o := core.Options{Config: cfg, Workload: r.spec(s), Throttle: mode.thr}
				key := fmt.Sprintf("fig16/%s/%d/%v/%v", s.Name, kb, mode.hw, mode.thr)
				if mode.hw {
					o.Hardware = mt.make
				} else {
					o.Software = swpref.MTSWP
				}
				runs[si][i] = append(runs[si][i], r.submit(key, o))
			}
		}
	}
	for si, kb := range sizes {
		rows := speedupMatrix(bases, runs[si])
		t.AddRow(fmt.Sprint(kb),
			fmtCell(geomeanColumn(rows, 0)), fmtCell(geomeanColumn(rows, 1)),
			fmtCell(geomeanColumn(rows, 2)), fmtCell(geomeanColumn(rows, 3)))
	}
	return []*stats.Table{t}, r.failures()
}

func runFig17(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	distances := []int{1, 3, 5, 7, 9, 11, 13, 15}
	specs := r.sweepSuite()
	headers := []string{"bench"}
	for _, d := range distances {
		headers = append(headers, fmt.Sprintf("d=%d", d))
	}
	t := stats.NewTable("Figure 17 — MT-HWP prefetch distance sensitivity (speedup over baseline)", headers...)
	bases := make([]*future, len(specs))
	runs := make([][]*future, len(specs))
	for i, s := range specs {
		bases[i] = r.baselineF(s)
		for _, d := range distances {
			h := hwMTHWP(true, true, d)
			runs[i] = append(runs[i], r.hardwareF(s, h.name, h.make, false))
		}
	}
	matrix := speedupMatrix(bases, runs)
	for i, s := range specs {
		cells := []string{s.Name}
		for _, v := range matrix[i] {
			cells = append(cells, fmtCell(v))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geomean"}
	for i := range distances {
		cells = append(cells, fmtCell(geomeanColumn(matrix, i)))
	}
	t.AddRow(cells...)
	return []*stats.Table{t}, r.failures()
}

func runFig18(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := stats.NewTable("Figure 18 — sensitivity to number of cores (geomean speedup over same-core baseline)",
		"cores", "mt-hwp", "mt-hwp+T", "mt-swp", "mt-swp+T")
	mt := hwMTHWP(true, true, 1)
	specs := r.sweepSuite()
	var coreCounts []int
	for cores := 8; cores <= 20; cores += 2 {
		coreCounts = append(coreCounts, cores)
	}
	bases := make([][]*future, len(coreCounts)) // [cores][spec]
	runs := make([][][]*future, len(coreCounts))
	for ci, cores := range coreCounts {
		cfg := r.machine()
		cfg.NumCores = cores
		bases[ci] = make([]*future, len(specs))
		runs[ci] = make([][]*future, len(specs))
		for i, s := range specs {
			spec := r.spec(s)
			bases[ci][i] = r.submit(fmt.Sprintf("fig18base/%s/%d", s.Name, cores),
				core.Options{Config: cfg, Workload: spec})
			for _, mode := range sweepModes {
				o := core.Options{Config: cfg, Workload: spec, Throttle: mode.thr}
				key := fmt.Sprintf("fig18/%s/%d/%v/%v", s.Name, cores, mode.hw, mode.thr)
				if mode.hw {
					o.Hardware = mt.make
				} else {
					o.Software = swpref.MTSWP
				}
				runs[ci][i] = append(runs[ci][i], r.submit(key, o))
			}
		}
	}
	for ci, cores := range coreCounts {
		rows := speedupMatrix(bases[ci], runs[ci])
		t.AddRow(fmt.Sprint(cores),
			fmtCell(geomeanColumn(rows, 0)), fmtCell(geomeanColumn(rows, 1)),
			fmtCell(geomeanColumn(rows, 2)), fmtCell(geomeanColumn(rows, 3)))
	}
	return []*stats.Table{t}, r.failures()
}

func runGSTable(c Config) ([]*stats.Table, error) {
	r := newRunner(c)
	t := stats.NewTable("Section VIII-B — PWS accesses saved by the GS table (stride-type)",
		"bench", "pwsAccesses(noGS)", "pwsAccesses(GS)", "gsHits", "saved%")
	specs := workload.ByClass(workload.Stride)
	type row struct{ noGS, withGS *future }
	rows := make([]row, len(specs))
	for i, s := range specs {
		noGS := hwMTHWP(false, false, 1)
		withGS := hwMTHWP(true, false, 1)
		rows[i] = row{r.hardwareF(s, noGS.name, noGS.make, false),
			r.hardwareF(s, withGS.name, withGS.make, false)}
	}
	for i, s := range specs {
		a, b := rows[i].noGS.res(), rows[i].withGS.res()
		if a == nil || b == nil {
			t.AddRow(s.Name, "ERR", "ERR", "ERR", "ERR")
			continue
		}
		saved := 100 * (1 - stats.SafeDiv(float64(b.MTHWP.PWSAccesses), float64(a.MTHWP.PWSAccesses)))
		t.AddRow(s.Name,
			fmt.Sprint(a.MTHWP.PWSAccesses), fmt.Sprint(b.MTHWP.PWSAccesses),
			fmt.Sprint(b.MTHWP.GSHits), stats.FormatFloat(saved))
	}
	return []*stats.Table{t}, r.failures()
}
