package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtprefetch/internal/core"
	"mtprefetch/internal/faults"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/workload"
)

// poisonTable runs a two-benchmark, one-column speedup sweep where the
// mersenne run's prefetcher factory panics, and returns the rendered
// table plus the runner's failure report.
func poisonTable(c Config) (*stats.Table, error) {
	specs := []*workload.Spec{workload.ByName("mersenne"), workload.ByName("stream")}
	good := hwStrideRPT(true)
	bases := make([]*future, len(specs))
	runs := make([][]*future, len(specs))
	r := newRunner(c)
	for i, s := range specs {
		bases[i] = r.baselineF(s)
		h := good
		if s.Name == "mersenne" {
			h = namedHW{"poisoned", func() prefetch.Prefetcher {
				panic("poisoned prefetcher factory")
			}}
		}
		runs[i] = append(runs[i], r.hardwareF(s, h.name, h.make, false))
	}
	return speedupTable("poison test", specs, []string{"hw"}, speedupMatrix(bases, runs)), r.failures()
}

// TestPoisonedRunIsolated checks the panic-isolation contract: one
// panicking run in a parallel sweep renders as an ERR cell, every
// sibling's cell is byte-identical to a clean sequential sweep, and the
// failure surfaces as a *RunError carrying the panic and its stack.
func TestPoisonedRunIsolated(t *testing.T) {
	par, perr := poisonTable(Config{Waves: 1, Workers: 8})
	seq, serr := poisonTable(Config{Waves: 1, Workers: 1})
	if par.String() != seq.String() {
		t.Fatalf("8-worker table differs from sequential table:\n%s\nvs\n%s", par, seq)
	}
	rendered := par.String()
	if !strings.Contains(rendered, "ERR") {
		t.Fatalf("poisoned run did not render an ERR cell:\n%s", rendered)
	}
	var streamRow string
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "stream") {
			streamRow = line
		}
	}
	if streamRow == "" || strings.Contains(streamRow, "ERR") {
		t.Fatalf("sibling stream row damaged by the poisoned run: %q", streamRow)
	}

	for _, err := range []error{perr, serr} {
		var se *SweepError
		if !errors.As(err, &se) {
			t.Fatalf("failures() returned %v (%T), want *SweepError", err, err)
		}
		if se.Failed != 1 {
			t.Fatalf("SweepError reports %d failures, want 1: %v", se.Failed, se)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("SweepError does not unwrap to a *RunError: %v", err)
		}
		if re.Panic == nil || len(re.Stack) == 0 {
			t.Fatalf("RunError missing panic payload or stack: %+v", re)
		}
		if !strings.Contains(re.Key, "poisoned") {
			t.Fatalf("RunError key %q does not identify the poisoned run", re.Key)
		}
	}
}

// TestCrashDumpBundle injects a livelock under a CrashDir-configured
// runner and checks the dump bundle: error text with the options
// fingerprint, machine config, metrics snapshot, the watchdog's machine
// snapshot, and the obs trace tail.
func TestCrashDumpBundle(t *testing.T) {
	dir := t.TempDir()
	r := newRunner(Config{Waves: 1, CrashDir: dir})
	spec := workload.ByName("stream").Scaled(16)
	_, err := r.run("chaos/livelock", core.Options{
		Workload:       spec,
		MaxCycles:      50_000_000,
		WatchdogWindow: 100_000,
		Inject:         faults.StallIssue(0, 1000),
	})
	if !errors.Is(err, core.ErrLivelock) {
		t.Fatalf("injected livelock returned %v, want ErrLivelock", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *RunError", err, err)
	}
	if re.DumpPath == "" {
		t.Fatal("RunError has no crash-dump path despite CrashDir")
	}
	for _, f := range []string{"error.txt", "config.json", "metrics.json", "livelock.json", "trace.json"} {
		if _, err := os.Stat(filepath.Join(re.DumpPath, f)); err != nil {
			t.Errorf("crash dump missing %s: %v", f, err)
		}
	}
	msg, err := os.ReadFile(filepath.Join(re.DumpPath, "error.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(msg), "bench=stream") {
		t.Fatalf("error.txt lacks the options fingerprint:\n%s", msg)
	}
}

// TestShardedCrashDumpBundle: a failure under core sharding produces
// the same crash-dump bundle as a serial one — the watchdog fires on
// the serial phase after the barrier, so the snapshot captures a
// quiesced machine, never mid-shard state.
func TestShardedCrashDumpBundle(t *testing.T) {
	dir := t.TempDir()
	r := newRunner(Config{Waves: 1, CrashDir: dir, Shards: 4})
	_, err := r.run("chaos/sharded-livelock", core.Options{
		Workload:       workload.ByName("stream").Scaled(16),
		MaxCycles:      50_000_000,
		WatchdogWindow: 100_000,
		Inject:         faults.StallIssue(0, 1000),
	})
	if !errors.Is(err, core.ErrLivelock) {
		t.Fatalf("sharded injected livelock returned %v, want ErrLivelock", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *RunError", err, err)
	}
	if re.DumpPath == "" {
		t.Fatal("RunError has no crash-dump path despite CrashDir")
	}
	for _, f := range []string{"error.txt", "config.json", "metrics.json", "livelock.json", "trace.json"} {
		if _, err := os.Stat(filepath.Join(re.DumpPath, f)); err != nil {
			t.Errorf("sharded crash dump missing %s: %v", f, err)
		}
	}
}

// panicAfterPF panics inside Observe after n trainings — under
// sharding, on a shard worker goroutine mid-phase.
type panicAfterPF struct{ n int }

func (p *panicAfterPF) Name() string { return "panic-after" }

func (p *panicAfterPF) Observe(tr prefetch.Train, out []prefetch.Candidate) []prefetch.Candidate {
	p.n--
	if p.n <= 0 {
		panic("prefetcher exploded mid-phase")
	}
	return out
}

// TestShardWorkerPanicIsolated: a panic raised on a shard worker
// goroutine must cross the barrier and surface through the harness's
// per-run panic isolation like a serial panic — a *RunError with the
// payload, a stack, and a crash dump — instead of killing the process.
func TestShardWorkerPanicIsolated(t *testing.T) {
	dir := t.TempDir()
	r := newRunner(Config{Waves: 1, CrashDir: dir, Shards: 4})
	_, err := r.run("chaos/shard-panic", core.Options{
		Workload: workload.ByName("stream").Scaled(16),
		Hardware: func() prefetch.Prefetcher { return &panicAfterPF{n: 100} },
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("worker panic surfaced as %v (%T), want *RunError", err, err)
	}
	if re.Panic == nil || len(re.Stack) == 0 {
		t.Fatalf("RunError missing panic payload or stack: %+v", re)
	}
	payload := fmt.Sprint(re.Panic)
	if !strings.Contains(payload, "prefetcher exploded mid-phase") {
		t.Errorf("panic payload %q lost the original panic value", payload)
	}
	if !strings.Contains(payload, "shard worker stack") {
		t.Errorf("panic payload %q lacks the worker goroutine's stack", payload)
	}
	if re.DumpPath == "" {
		t.Error("RunError has no crash-dump path despite CrashDir")
	}
}

// TestRunErrorTaxonomy checks that errors.Is/As see through the
// harness wrapper to the core sentinel types.
func TestRunErrorTaxonomy(t *testing.T) {
	r := newRunner(Config{Waves: 1})
	_, err := r.run("chaos/invariant", core.Options{
		Workload:   workload.ByName("stream").Scaled(16),
		MaxCycles:  50_000_000,
		Checks:     true,
		CheckEvery: 512,
		Inject:     faults.DropNthCompletion(1),
	})
	if !errors.Is(err, core.ErrInvariant) {
		t.Fatalf("wrapped invariant error not matched by errors.Is: %v", err)
	}
	var ie *core.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("wrapped invariant error not matched by errors.As: %v", err)
	}

	_, err = r.run("chaos/options", core.Options{})
	var oe *core.OptionError
	if !errors.As(err, &oe) || oe.Field != "Workload" {
		t.Fatalf("nil-workload run returned %v, want *OptionError{Field: Workload}", err)
	}
}
