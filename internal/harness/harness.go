// Package harness regenerates the paper's evaluation: one experiment per
// table and figure, each returning text tables whose rows/series mirror
// what the paper reports. The cmd/mtpref CLI and the repository-level
// benchmarks are thin wrappers around this registry.
package harness

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/store"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// Config controls experiment scale. The zero value is usable and selects
// the defaults noted per field.
type Config struct {
	// Waves scales each benchmark's grid down to roughly this many full
	// occupancy waves per core (default 2). Larger values run longer and
	// reduce warm-up noise; the shapes are stable across scales.
	Waves int
	// ThrottlePeriod overrides the Table II 100k-cycle throttling period,
	// which is far longer than a scaled-down run (default 10k).
	ThrottlePeriod uint64
	// Subset restricts the expensive sensitivity sweeps (Figs. 16-18) to
	// a representative benchmark subset instead of the full suite
	// (default true).
	Subset *bool
	// Obs, when non-nil, streams every simulation's epoch samples and
	// trace events into the sink's shared output files (cmd/mtpref's
	// -metrics/-trace/-sample flags). Memoised runs are recorded once,
	// under the key of their first execution.
	Obs *obs.Sink
	// Workers bounds how many simulations one experiment runs
	// concurrently (default GOMAXPROCS). Simulations are independent, so
	// any setting produces byte-identical tables: experiments submit
	// their full run set up front and assemble rows from the completed
	// futures in registration order. 1 reproduces strictly sequential
	// execution.
	Workers int
	// CrashDir, when non-empty, receives a per-run crash-dump bundle
	// (machine config, metrics snapshot, trace tail, stack) for every
	// failed simulation; see crashdump.go. Empty disables dumping.
	CrashDir string
	// NoCycleSkip forces every simulation to visit every cycle instead
	// of event-driven skipping (core.Options.NoCycleSkip). Tables are
	// byte-identical either way; the CLI's -noskip flag and CI's
	// differential gate rely on that.
	NoCycleSkip bool
	// Shards sets the intra-run core shard count for every simulation
	// (core.Options.Shards; default 1 = serial core stepping). Results
	// are byte-identical at any value. Shards multiply the threads one
	// simulation uses, so the worker pool is budgeted down to keep
	// workers x shards within GOMAXPROCS — see workers().
	Shards int
	// Debug, when non-nil, receives per-run progress and end-of-run
	// registry snapshots for live introspection over HTTP (cmd/mtpref's
	// -http flag); see NewDebugServer. It never affects results.
	Debug *DebugServer
	// Store, when non-nil, is the persistent content-addressed result
	// store (cmd/mtpref's -store flag): runs whose fingerprint is
	// already committed are served from disk (their sink artifacts
	// replayed byte-identically), and completed runs are committed for
	// later invocations. Chaos-injected and tracing runs bypass it; see
	// runner.storeEnabled.
	Store *store.Store
	// RunTimeout, when positive, bounds each simulation attempt in wall
	// clock (core.Options.Ctx), complementing the cycle-domain livelock
	// watchdog: a run that exceeds it fails with context.
	// DeadlineExceeded wrapped in *core.CanceledError. Zero disables
	// the deadline.
	RunTimeout time.Duration
	// Retries bounds how many times a run whose failure is typed
	// transient (simerr.IsTransient — store I/O faults, injected chaos
	// faults) is re-executed with a fresh observer before the failure
	// is final (default 0: fail fast). Each retry backs off on a
	// deterministic per-(key, attempt) seeded schedule; see retryDelay.
	Retries int
	// RetryBackoff is the base delay between transient-failure retries
	// (default 100ms); attempt n waits roughly base<<n, jittered.
	RetryBackoff time.Duration
	// Lifecycle, when non-nil, coordinates graceful drain: once its
	// Drain fires (typically from SIGTERM via HandleSignals), queued
	// runs abort with ErrDrained, in-flight runs cancel at their next
	// poll barrier, and the aborted keys are recorded for the exit
	// summary. Completed results already committed to Store survive, so
	// re-running the sweep resumes from exactly the missing cells.
	Lifecycle *Lifecycle
}

func (c Config) waves() int {
	if c.Waves <= 0 {
		return 2
	}
	return c.Waves
}

func (c Config) throttlePeriod() uint64 {
	if c.ThrottlePeriod == 0 {
		return 10_000
	}
	return c.ThrottlePeriod
}

func (c Config) subset() bool {
	if c.Subset == nil {
		return true
	}
	return *c.Subset
}

func (c Config) shards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

// workers resolves the worker-pool size, budgeting it down when core
// sharding is on: each simulation runs shards() goroutines of its own,
// so the pool is capped at GOMAXPROCS/shards (floor 1) to keep the
// total thread demand within GOMAXPROCS rather than oversubscribing.
func (c Config) workers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if s := c.shards(); s > 1 {
		if budget := runtime.GOMAXPROCS(0) / s; budget < w {
			w = budget
			if w < 1 {
				w = 1
			}
		}
	}
	return w
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(Config) ([]*stats.Table, error)
}

var registry []Experiment

func register(id, title, ref string, run func(Config) ([]*stats.Table, error)) {
	// Every experiment depends on the lazily-built workload suite; a
	// suite-construction failure surfaces here, once, instead of as an
	// empty sweep.
	wrapped := func(c Config) ([]*stats.Table, error) {
		if _, err := workload.Load(); err != nil {
			return nil, err
		}
		return run(c)
	}
	registry = append(registry, Experiment{ID: id, Title: title, PaperRef: ref, Run: wrapped})
}

// Experiments lists the registry in registration (paper) order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment; nil when absent.
func ByID(id string) *Experiment {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

// runner executes simulations with memoisation, so experiments sharing
// baselines (Figs. 10-15 all normalise to the no-prefetching run) do not
// repeat them. It is safe for concurrent use: submissions for the same
// key are collapsed singleflight-style onto one execution (racing
// goroutines wait for the first), and distinct keys run concurrently on a
// bounded worker pool of Config.Workers goroutines.
type runner struct {
	c   Config
	sem chan struct{} // worker-pool slots; acquired for each execution

	mu    sync.Mutex
	tasks map[string]*task
}

// task is one memoised execution; done is closed once res/err are set.
type task struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// future is a handle on a submitted simulation; wait blocks until its
// task completes.
type future struct{ t *task }

func (f *future) wait() (*core.Result, error) {
	<-f.t.done
	return f.t.res, f.t.err
}

// res waits and returns the result, or nil when the run failed; table
// assembly uses it so one failed run degrades to ERR cells while its
// siblings' cells are untouched. The failure itself is reported by
// runner.failures.
func (f *future) res() *core.Result {
	r, _ := f.wait()
	return r
}

func newRunner(c Config) *runner {
	return &runner{
		c:     c,
		sem:   make(chan struct{}, c.workers()),
		tasks: make(map[string]*task),
	}
}

// spec scales a benchmark to the configured number of waves, computed
// against the baseline 14-core machine so sweeps stay comparable. The
// factor rounds to nearest (min 1): truncation would run a benchmark
// with Blocks just under a multiple of the target at up to ~2x the
// intended waves, and one with Blocks < target entirely unscaled.
func (r *runner) spec(s *workload.Spec) *workload.Spec {
	target := 14 * s.MaxBlocksPerCore * r.c.waves()
	f := (s.Blocks + target/2) / target
	if f < 1 {
		f = 1
	}
	return s.Scaled(f)
}

// machine returns the baseline config with the scaled throttle period.
func (r *runner) machine() *config.Config {
	cfg := config.Baseline()
	cfg.ThrottlePeriod = r.c.throttlePeriod()
	return cfg
}

// submit schedules one simulation (or joins the in-flight/completed
// execution memoised under key) and returns its future. key must
// uniquely identify the configuration; the options of later submissions
// with the same key are ignored.
func (r *runner) submit(key string, o core.Options) *future {
	r.mu.Lock()
	t, ok := r.tasks[key]
	if !ok {
		t = &task{done: make(chan struct{})}
		r.tasks[key] = t
		go r.execute(key, t, o)
	}
	r.mu.Unlock()
	return &future{t}
}

// execute runs one simulation on a worker-pool slot and completes t.
// Under a drain, queued executions abort instead of starting (waiting
// for a slot counts as queued), and in-flight cancellations are
// recorded as aborted rather than failed.
func (r *runner) execute(key string, t *task, o core.Options) {
	defer close(t.done)
	select {
	case r.sem <- struct{}{}:
	case <-r.c.Lifecycle.drainingC():
		t.err = r.abortDrained(key, o)
		return
	}
	defer func() { <-r.sem }()
	if r.c.Lifecycle.Draining() { // won the slot race, but too late
		t.err = r.abortDrained(key, o)
		return
	}
	r.c.Debug.RunStarted(key)
	t.res, t.err = r.runOne(key, o)
	if t.err != nil && errors.Is(t.err, core.ErrCanceled) && r.c.Lifecycle.Draining() {
		r.c.Lifecycle.noteAborted(key)
	}
}

// abortDrained fails a run that never started because of a drain.
func (r *runner) abortDrained(key string, o core.Options) error {
	r.c.Lifecycle.noteAborted(key)
	err := &RunError{Key: key, Fingerprint: fingerprint(o), Err: ErrDrained}
	r.c.Debug.RunFinished(key, nil, err)
	return err
}

// runOne resolves one simulation: a store hit replays the committed
// result and artifacts without simulating; otherwise the run executes
// (attempt), transient failures retry on a bounded seeded-backoff
// schedule with a fresh observer each time — so the surviving output
// is byte-identical to a first-try success — and the final outcome is
// published once and, on success, committed to the store.
//
// The result is recorded in the memo cache before the observability
// sink flushes it: a Finish error must not discard the simulation, or
// a retry under the same key would re-run it and duplicate the sink's
// trace/sample output (the sink is additionally idempotent per key).
func (r *runner) runOne(key string, o core.Options) (*core.Result, error) {
	fp := r.storeFingerprint(key, o)
	if res, ok, err := r.storeGet(key, fp); ok {
		return res, err
	}
	res, ob, snap, err := r.attempt(key, o)
	for try := 1; err != nil && simerr.IsTransient(err) &&
		try <= r.c.retries() && !r.c.Lifecycle.Draining(); try++ {
		r.c.Debug.RunRetried(key, try, err)
		time.Sleep(retryDelay(key, try-1, r.c.RetryBackoff))
		res, ob, snap, err = r.attempt(key, o)
	}
	r.c.Debug.RunFinished(key, snap, err)
	if err != nil {
		return nil, err
	}
	if err := r.c.Obs.Finish(key, ob); err != nil {
		return res, fmt.Errorf("%s: %w", key, err)
	}
	r.storePut(key, fp, ob, res)
	return res, nil
}

// attempt executes one simulation attempt with panic isolation: a
// panic anywhere in the simulator becomes a *RunError carrying the run
// key, an options fingerprint, and the stack, so one poisoned run
// costs its own table cells and nothing else. Run/New errors are
// wrapped the same way, and either path writes a crash dump when
// Config.CrashDir is set. Each attempt gets a fresh observer (retried
// runs must not double-record epochs) and its own deadline-bounded
// context; snap is nil after a panic (the simulator may be
// mid-mutation).
func (r *runner) attempt(key string, o core.Options) (res *core.Result, ob *obs.Observer, snap []obs.SnapshotEntry, err error) {
	var sim *core.Simulator
	defer func() {
		if p := recover(); p != nil {
			re := &RunError{Key: key, Fingerprint: fingerprint(o), Panic: p, Stack: debug.Stack()}
			re.DumpPath = r.dump(re, o, sim)
			res, snap, err = nil, nil, re
		}
	}()
	ctx, cancel := r.runCtx()
	if cancel != nil {
		defer cancel()
	}
	o.Ctx = ctx
	o.Obs = r.c.Obs.Observer()
	o.NoCycleSkip = r.c.NoCycleSkip
	o.Shards = r.c.shards()
	if o.Obs != nil {
		// Live telemetry: CPIStack publishes epoch snapshots and SpanSet
		// aggregates finished spans under their own mutexes, so
		// /tolerance and /spans reads are safe while the run is in
		// flight.
		r.c.Debug.RunLive(key, o.Obs.CPI, o.Obs.Spans)
	}
	if o.Obs == nil && r.c.CrashDir != "" {
		// No sink, but crash dumps are wanted: attach a private tracer so
		// a failure's dump includes the event tail leading up to it.
		o.Obs = obs.New(obs.Config{TraceCapacity: obs.DefaultTraceCapacity})
	}
	sim, err = core.New(o)
	if err == nil {
		res, err = sim.Run()
	}
	if err != nil {
		re := &RunError{Key: key, Fingerprint: fingerprint(o), Err: err}
		re.DumpPath = r.dump(re, o, sim)
		return nil, o.Obs, snapshotOf(sim), re
	}
	return res, o.Obs, snapshotOf(sim), nil
}

// snapshotOf freezes a simulator's registry for the debug server; nil
// when the simulator was never built (a New error).
func snapshotOf(sim *core.Simulator) []obs.SnapshotEntry {
	if sim == nil {
		return nil
	}
	return sim.Registry().Snapshot()
}

// fingerprint summarises the options that define a run, for failure
// reports (the memo key is compact but drops the machine shape).
func fingerprint(o core.Options) string {
	cfg := o.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	bench := "<nil>"
	if o.Workload != nil {
		bench = o.Workload.Name
	}
	hw := "none"
	if o.Hardware != nil {
		hw = "set"
	}
	return fmt.Sprintf("bench=%s cores=%d sw=%v hw=%s throttle=%v filter=%v pmem=%v",
		bench, cfg.NumCores, o.Software, hw, o.Throttle, o.PollutionFilter, o.PerfectMemory)
}

// failures aggregates every failed completed run into a *SweepError
// (nil when all completed runs succeeded). Experiments call it after
// assembling their tables, so a degraded sweep returns both the tables
// (with ERR cells) and the damage report.
func (r *runner) failures() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var keys []string
	for k, t := range r.tasks {
		select {
		case <-t.done:
			if t.err != nil {
				keys = append(keys, k)
			}
		default: // still running (not part of this experiment's wait set)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	se := &SweepError{Failed: len(keys), Total: len(r.tasks)}
	for _, k := range keys {
		se.Errs = append(se.Errs, r.tasks[k].err)
	}
	return se
}

// run executes (or recalls) one simulation synchronously.
func (r *runner) run(key string, o core.Options) (*core.Result, error) {
	return r.submit(key, o).wait()
}

// baselineF submits the no-prefetching binary for a benchmark.
func (r *runner) baselineF(s *workload.Spec) *future {
	return r.submit("base/"+s.Name, core.Options{
		Config:   r.machine(),
		Workload: r.spec(s),
	})
}

// baseline is the synchronous form of baselineF.
func (r *runner) baseline(s *workload.Spec) (*core.Result, error) {
	return r.baselineF(s).wait()
}

// softwareF submits a software-prefetching configuration.
func (r *runner) softwareF(s *workload.Spec, m swpref.Mode, throttle bool) *future {
	key := fmt.Sprintf("sw/%s/%v/%v", s.Name, m, throttle)
	return r.submit(key, core.Options{
		Config:   r.machine(),
		Workload: r.spec(s),
		Software: m,
		Throttle: throttle,
	})
}

// software is the synchronous form of softwareF.
func (r *runner) software(s *workload.Spec, m swpref.Mode, throttle bool) (*core.Result, error) {
	return r.softwareF(s, m, throttle).wait()
}

// hardwareF submits a hardware-prefetching configuration.
func (r *runner) hardwareF(s *workload.Spec, name string, f func() prefetch.Prefetcher, throttle bool) *future {
	key := fmt.Sprintf("hw/%s/%s/%v", s.Name, name, throttle)
	return r.submit(key, core.Options{
		Config:   r.machine(),
		Workload: r.spec(s),
		Hardware: f,
		Throttle: throttle,
	})
}

// hardware is the synchronous form of hardwareF.
func (r *runner) hardware(s *workload.Spec, name string, f func() prefetch.Prefetcher, throttle bool) (*core.Result, error) {
	return r.hardwareF(s, name, f, throttle).wait()
}

// suite returns the memory-intensive benchmarks in Table III order.
func suite() []*workload.Spec { return workload.MemoryIntensive() }

// sensitivitySubset is the representative set used by Figs. 16-18: two
// stride winners, the sliding-window benchmark, the pathological
// late-prefetch case, and two uncoalesced filters.
var sensitivitySubset = []string{"mersenne", "monte", "conv", "stream", "cfd", "sepia"}

func (r *runner) sweepSuite() []*workload.Spec {
	if !r.c.subset() {
		return suite()
	}
	var out []*workload.Spec
	for _, n := range sensitivitySubset {
		out = append(out, workload.ByName(n))
	}
	return out
}

// Named hardware-prefetcher factories (Table V + the paper's MT-HWP).
type namedHW struct {
	name string
	make func() prefetch.Prefetcher
}

func hwStrideRPT(warpAware bool) namedHW {
	n := "stride"
	if warpAware {
		n = "stride+wid"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: warpAware})
	}}
}

func hwStridePC(warpAware, throttled bool) namedHW {
	n := "stridepc"
	if warpAware {
		n += "+wid"
	}
	if throttled {
		n += "+T"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewStridePC(prefetch.StridePCOptions{WarpAware: warpAware, Throttled: throttled})
	}}
}

func hwStream(warpAware bool) namedHW {
	n := "stream"
	if warpAware {
		n = "stream+wid"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewStream(prefetch.StreamOptions{WarpAware: warpAware})
	}}
}

func hwGHB(warpAware, feedback bool) namedHW {
	n := "ghb"
	if warpAware {
		n += "+wid"
	}
	if feedback {
		n += "+F"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: warpAware, Feedback: feedback})
	}}
}

func hwMTHWP(gs, ip bool, distance int) namedHW {
	n := "pws"
	if gs {
		n += "+gs"
	}
	if ip {
		n += "+ip"
	}
	if distance > 1 {
		n += fmt.Sprintf("/d%d", distance)
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: gs, EnableIP: ip, Distance: distance})
	}}
}

// errCell marks a table cell whose run failed; fmtCell renders it.
func errCell() float64 { return math.NaN() }

// fmtCell renders one numeric table cell, with failed runs as ERR.
func fmtCell(v float64) string {
	if math.IsNaN(v) {
		return "ERR"
	}
	return stats.FormatFloat(v)
}

// geomeanColumn computes the per-column geomean of a speedup matrix,
// skipping failed (NaN) cells; all-failed columns stay NaN (ERR).
func geomeanColumn(rows [][]float64, col int) float64 {
	var xs []float64
	for _, r := range rows {
		if col < len(r) && !math.IsNaN(r[col]) {
			xs = append(xs, r[col])
		}
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Geomean(xs)
}

// classOrder renders benchmarks grouped stride -> mp -> uncoal, the
// grouping the paper's figures use.
func classOrder(specs []*workload.Spec) []*workload.Spec {
	out := make([]*workload.Spec, len(specs))
	copy(out, specs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
