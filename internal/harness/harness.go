// Package harness regenerates the paper's evaluation: one experiment per
// table and figure, each returning text tables whose rows/series mirror
// what the paper reports. The cmd/mtpref CLI and the repository-level
// benchmarks are thin wrappers around this registry.
package harness

import (
	"fmt"
	"sort"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// Config controls experiment scale. The zero value is usable and selects
// the defaults noted per field.
type Config struct {
	// Waves scales each benchmark's grid down to roughly this many full
	// occupancy waves per core (default 2). Larger values run longer and
	// reduce warm-up noise; the shapes are stable across scales.
	Waves int
	// ThrottlePeriod overrides the Table II 100k-cycle throttling period,
	// which is far longer than a scaled-down run (default 10k).
	ThrottlePeriod uint64
	// Subset restricts the expensive sensitivity sweeps (Figs. 16-18) to
	// a representative benchmark subset instead of the full suite
	// (default true).
	Subset *bool
	// Obs, when non-nil, streams every simulation's epoch samples and
	// trace events into the sink's shared output files (cmd/mtpref's
	// -metrics/-trace/-sample flags). Memoised runs are recorded once,
	// under the key of their first execution.
	Obs *obs.Sink
}

func (c Config) waves() int {
	if c.Waves <= 0 {
		return 2
	}
	return c.Waves
}

func (c Config) throttlePeriod() uint64 {
	if c.ThrottlePeriod == 0 {
		return 10_000
	}
	return c.ThrottlePeriod
}

func (c Config) subset() bool {
	if c.Subset == nil {
		return true
	}
	return *c.Subset
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(Config) ([]*stats.Table, error)
}

var registry []Experiment

func register(id, title, ref string, run func(Config) ([]*stats.Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, PaperRef: ref, Run: run})
}

// Experiments lists the registry in registration (paper) order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment; nil when absent.
func ByID(id string) *Experiment {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

// runner executes simulations with memoisation, so experiments sharing
// baselines (Figs. 10-15 all normalise to the no-prefetching run) do not
// repeat them.
type runner struct {
	c     Config
	cache map[string]*core.Result
}

func newRunner(c Config) *runner {
	return &runner{c: c, cache: make(map[string]*core.Result)}
}

// spec scales a benchmark to the configured number of waves, computed
// against the baseline 14-core machine so sweeps stay comparable.
func (r *runner) spec(s *workload.Spec) *workload.Spec {
	target := 14 * s.MaxBlocksPerCore * r.c.waves()
	f := s.Blocks / target
	return s.Scaled(f)
}

// machine returns the baseline config with the scaled throttle period.
func (r *runner) machine() *config.Config {
	cfg := config.Baseline()
	cfg.ThrottlePeriod = r.c.throttlePeriod()
	return cfg
}

// run executes (or recalls) one simulation. key must uniquely identify
// the configuration.
func (r *runner) run(key string, o core.Options) (*core.Result, error) {
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	o.Obs = r.c.Obs.Observer()
	res, err := core.Run(o)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	if err := r.c.Obs.Finish(key, o.Obs); err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	r.cache[key] = res
	return res, nil
}

// baseline runs the no-prefetching binary for a benchmark.
func (r *runner) baseline(s *workload.Spec) (*core.Result, error) {
	return r.run("base/"+s.Name, core.Options{
		Config:   r.machine(),
		Workload: r.spec(s),
	})
}

// software runs a software-prefetching configuration.
func (r *runner) software(s *workload.Spec, m swpref.Mode, throttle bool) (*core.Result, error) {
	key := fmt.Sprintf("sw/%s/%v/%v", s.Name, m, throttle)
	return r.run(key, core.Options{
		Config:   r.machine(),
		Workload: r.spec(s),
		Software: m,
		Throttle: throttle,
	})
}

// hardware runs a hardware-prefetching configuration.
func (r *runner) hardware(s *workload.Spec, name string, f func() prefetch.Prefetcher, throttle bool) (*core.Result, error) {
	key := fmt.Sprintf("hw/%s/%s/%v", s.Name, name, throttle)
	return r.run(key, core.Options{
		Config:   r.machine(),
		Workload: r.spec(s),
		Hardware: f,
		Throttle: throttle,
	})
}

// suite returns the memory-intensive benchmarks in Table III order.
func suite() []*workload.Spec { return workload.MemoryIntensive() }

// sensitivitySubset is the representative set used by Figs. 16-18: two
// stride winners, the sliding-window benchmark, the pathological
// late-prefetch case, and two uncoalesced filters.
var sensitivitySubset = []string{"mersenne", "monte", "conv", "stream", "cfd", "sepia"}

func (r *runner) sweepSuite() []*workload.Spec {
	if !r.c.subset() {
		return suite()
	}
	var out []*workload.Spec
	for _, n := range sensitivitySubset {
		out = append(out, workload.ByName(n))
	}
	return out
}

// Named hardware-prefetcher factories (Table V + the paper's MT-HWP).
type namedHW struct {
	name string
	make func() prefetch.Prefetcher
}

func hwStrideRPT(warpAware bool) namedHW {
	n := "stride"
	if warpAware {
		n = "stride+wid"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: warpAware})
	}}
}

func hwStridePC(warpAware, throttled bool) namedHW {
	n := "stridepc"
	if warpAware {
		n += "+wid"
	}
	if throttled {
		n += "+T"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewStridePC(prefetch.StridePCOptions{WarpAware: warpAware, Throttled: throttled})
	}}
}

func hwStream(warpAware bool) namedHW {
	n := "stream"
	if warpAware {
		n = "stream+wid"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewStream(prefetch.StreamOptions{WarpAware: warpAware})
	}}
}

func hwGHB(warpAware, feedback bool) namedHW {
	n := "ghb"
	if warpAware {
		n += "+wid"
	}
	if feedback {
		n += "+F"
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: warpAware, Feedback: feedback})
	}}
}

func hwMTHWP(gs, ip bool, distance int) namedHW {
	n := "pws"
	if gs {
		n += "+gs"
	}
	if ip {
		n += "+ip"
	}
	if distance > 1 {
		n += fmt.Sprintf("/d%d", distance)
	}
	return namedHW{n, func() prefetch.Prefetcher {
		return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: gs, EnableIP: ip, Distance: distance})
	}}
}

// geomeanColumn computes the per-column geomean of a speedup matrix.
func geomeanColumn(rows [][]float64, col int) float64 {
	var xs []float64
	for _, r := range rows {
		if col < len(r) {
			xs = append(xs, r[col])
		}
	}
	return stats.Geomean(xs)
}

// classOrder renders benchmarks grouped stride -> mp -> uncoal, the
// grouping the paper's figures use.
func classOrder(specs []*workload.Spec) []*workload.Spec {
	out := make([]*workload.Spec, len(specs))
	copy(out, specs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
