package harness

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"mtprefetch/internal/workload"
)

// specWith builds a minimal spec for scale-factor tests; only the grid
// fields matter to runner.spec.
func specWith(blocks, maxPerCore int) *workload.Spec {
	return &workload.Spec{
		Name:             "synthetic",
		Blocks:           blocks,
		TotalWarps:       blocks * 2, // 2 warps per block
		MaxBlocksPerCore: maxPerCore,
	}
}

func TestSpecScaleRounding(t *testing.T) {
	// Waves=1, MaxBlocksPerCore=1: the wave target is 14 blocks. The
	// scale factor must round to nearest (min 1), not truncate — a
	// benchmark with Blocks just under a multiple of the target would
	// otherwise run at up to ~2x the intended waves.
	r := newRunner(Config{Waves: 1, Workers: 1})
	cases := []struct {
		blocks     int
		wantFactor int
	}{
		{1, 1},  // far below one wave: unscaled (factor clamps to 1)
		{13, 1}, // just under one wave: unscaled
		{14, 1}, // exactly one wave
		{20, 1}, // rounds down to 1 (20+7)/14
		{21, 2}, // rounds up to 2: previously truncated to 1 (~1.5 waves kept)
		{27, 2}, // just under 2 waves: previously truncated to 1 (~2x work)
		{28, 2}, // exactly two waves
		{34, 2}, // rounds down
		{35, 3}, // rounds up
		{140, 10},
	}
	for _, tc := range cases {
		s := specWith(tc.blocks, 1)
		got := r.spec(s)
		want := s.Scaled(tc.wantFactor)
		if got.Blocks != want.Blocks {
			t.Errorf("Blocks=%d: scaled to %d blocks, want %d (factor %d)",
				tc.blocks, got.Blocks, want.Blocks, tc.wantFactor)
		}
	}
	// The factor scales with waves and occupancy.
	r2 := newRunner(Config{Waves: 2, Workers: 1})
	if got := r2.spec(specWith(27, 1)); got.Blocks != 27 {
		t.Errorf("Waves=2 Blocks=27: scaled to %d blocks, want 27 (one wave target is 28)", got.Blocks)
	}
}

func TestRunnerSingleflight(t *testing.T) {
	// Racing submissions of the same key must collapse onto one
	// execution: every caller sees the same *core.Result pointer.
	r := newRunner(Config{Waves: 1, Workers: 4})
	s := workload.ByName("mersenne")
	const callers = 8
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.baseline(s)
			if err != nil {
				results[i] = err
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got %v, caller 0 got %v — key not collapsed onto one execution",
				i, results[i], results[0])
		}
	}
	if err, ok := results[0].(error); ok {
		t.Fatal(err)
	}
}

func TestParallelDeterminism(t *testing.T) {
	// The determinism guarantee: tables are byte-identical at any worker
	// count, because experiments assemble rows from futures in
	// registration order. table4 covers three runs per benchmark.
	render := func(workers int) string {
		sub := true
		tables, err := ByID("table4").Run(Config{Waves: 1, Subset: &sub, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("table4 output differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}

func TestWorkersDefault(t *testing.T) {
	var c Config
	if c.workers() < 1 {
		t.Errorf("default workers = %d, want >= 1", c.workers())
	}
	c.Workers = 3
	if c.workers() != 3 {
		t.Errorf("workers = %d, want 3", c.workers())
	}
}

func TestShardWorkerBudget(t *testing.T) {
	// workers x shards must never exceed GOMAXPROCS (floor of one
	// worker): -j 8 -shards 4 on an 8-way host runs 2 workers, not 8.
	// Pin GOMAXPROCS so the arithmetic is host-independent; not parallel,
	// since GOMAXPROCS is process-global.
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	cases := []struct {
		workers, shards, want int
	}{
		{8, 4, 2},  // budgeted down: 2 workers x 4 shards = 8
		{8, 1, 8},  // shards=1: no budgeting
		{8, 0, 8},  // unset shards: no budgeting
		{1, 4, 1},  // already within budget
		{2, 16, 1}, // budget rounds to zero: floor of one worker
		{0, 4, 2},  // default workers (GOMAXPROCS) budgeted too
		{3, 2, 3},  // within budget (3x2 <= 8): untouched
	}
	for _, tc := range cases {
		c := Config{Workers: tc.workers, Shards: tc.shards}
		got := c.workers()
		if got != tc.want {
			t.Errorf("Workers=%d Shards=%d: workers() = %d, want %d",
				tc.workers, tc.shards, got, tc.want)
		}
		if s := c.shards(); got > 1 && got*s > 8 {
			t.Errorf("Workers=%d Shards=%d: %d workers x %d shards oversubscribes GOMAXPROCS=8",
				tc.workers, tc.shards, got, s)
		}
	}
}

func TestShardedSweepDeterminism(t *testing.T) {
	// Companion to TestParallelDeterminism for the intra-run axis: the
	// same experiment rendered with sharded simulations is byte-identical
	// to the serial rendering, and the two parallelism axes compose.
	render := func(shards int) string {
		sub := true
		tables, err := ByID("table4").Run(Config{Waves: 1, Subset: &sub, Workers: 2, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	serial := render(1)
	sharded := render(2)
	if serial != sharded {
		t.Errorf("table4 output differs between -shards 1 and -shards 2:\n--- s1 ---\n%s\n--- s2 ---\n%s",
			serial, sharded)
	}
}
