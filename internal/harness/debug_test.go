package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"mtprefetch/internal/core"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/store"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	d.RunStarted("base/monte")
	d.RunStarted("hw/monte/stride/true")
	d.RunFinished("base/monte", []obs.SnapshotEntry{
		{Name: "smcore.demand_transactions", Core: 0, Component: "smcore", Value: 42},
	}, nil)
	d.RunFinished("hw/monte/stride/true", nil, errors.New("boom"))

	var runs struct {
		Running int `json:"running"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
		Runs    []struct {
			Key    string `json:"key"`
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/")), &runs); err != nil {
		t.Fatal(err)
	}
	if runs.Running != 0 || runs.Done != 1 || runs.Failed != 1 || len(runs.Runs) != 2 {
		t.Errorf("progress = %+v", runs)
	}
	if runs.Runs[0].Key != "base/monte" || runs.Runs[0].Status != "done" {
		t.Errorf("first run = %+v, want base/monte done", runs.Runs[0])
	}
	if runs.Runs[1].Status != "failed" || !strings.Contains(runs.Runs[1].Error, "boom") {
		t.Errorf("second run = %+v, want failed with error", runs.Runs[1])
	}

	metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`mtpref_runs{status="done"} 1`,
		`mtpref_runs{status="failed"} 1`,
		`sim_smcore_demand_transactions{run="base/monte",core="0",component="smcore"} 42`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if body := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

// TestDebugServerSnapshotEviction: only the newest DefaultSnapshotKeep finished
// runs keep snapshots; older runs keep their progress line but drop the
// per-instrument payload from /metrics.
func TestDebugServerSnapshotEviction(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < DefaultSnapshotKeep+5; i++ {
		key := fmt.Sprintf("run-%03d", i)
		d.RunStarted(key)
		d.RunFinished(key, []obs.SnapshotEntry{{Name: "x", Component: "c", Value: float64(i)}}, nil)
	}
	metrics := get(t, "http://"+d.Addr()+"/metrics")
	if strings.Contains(metrics, `run="run-000"`) {
		t.Error("evicted run still in /metrics")
	}
	if !strings.Contains(metrics, fmt.Sprintf(`run="run-%03d"`, DefaultSnapshotKeep+4)) {
		t.Error("newest run missing from /metrics")
	}
	if !strings.Contains(metrics, fmt.Sprintf(`mtpref_runs{status="done"} %d`, DefaultSnapshotKeep+5)) {
		t.Error("done count wrong after eviction")
	}
}

// TestDebugServerHealthz: the liveness endpoint reports run-state counts
// and degrades once a run fails.
func TestDebugServerHealthz(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	var h struct {
		Status        string  `json:"status"`
		Running       int     `json:"running"`
		Done          int     `json:"done"`
		Failed        int     `json:"failed"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	read := func() {
		t.Helper()
		if err := json.Unmarshal([]byte(get(t, base+"/healthz")), &h); err != nil {
			t.Fatal(err)
		}
	}
	read()
	if h.Status != "ok" || h.Running != 0 || h.UptimeSeconds < 0 {
		t.Errorf("idle healthz = %+v", h)
	}
	d.RunStarted("a")
	d.RunStarted("b")
	d.RunFinished("a", nil, nil)
	read()
	if h.Status != "ok" || h.Running != 1 || h.Done != 1 {
		t.Errorf("healthz after one finish = %+v", h)
	}
	d.RunFinished("b", nil, errors.New("boom"))
	read()
	if h.Status != "degraded" || h.Failed != 1 {
		t.Errorf("healthz after failure = %+v", h)
	}
}

// TestDebugServerTolerance: runs that attach live cycle accounting via
// RunLive serve their latest per-core tolerance snapshot; runs without
// it are skipped.
func TestDebugServerTolerance(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	d.RunStarted("plain")
	d.RunStarted("live")
	cpi := obs.NewCPIStack(100)
	cpi.Core(0)
	cpi.CloseEpoch(100, []obs.Tolerance{{Core: 0, ReadyWarps: 4, MRQFree: 6, OldestFillAge: 17}}, nil)
	d.RunLive("live", cpi, nil)

	var tol struct {
		Runs []struct {
			Key    string          `json:"key"`
			Status string          `json:"status"`
			Cycle  uint64          `json:"cycle"`
			Cores  []obs.Tolerance `json:"cores"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/tolerance")), &tol); err != nil {
		t.Fatal(err)
	}
	if len(tol.Runs) != 1 || tol.Runs[0].Key != "live" {
		t.Fatalf("tolerance runs = %+v, want only the live run", tol.Runs)
	}
	r := tol.Runs[0]
	if r.Cycle != 100 || len(r.Cores) != 1 || r.Cores[0].ReadyWarps != 4 ||
		r.Cores[0].OldestFillAge != 17 {
		t.Errorf("tolerance snapshot = %+v", r)
	}
}

// TestDebugServerSetSnapshotKeep: shrinking the cap evicts the oldest
// retained snapshots immediately, and a zero cap drops them all.
func TestDebugServerSetSnapshotKeep(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("run-%d", i)
		d.RunStarted(key)
		d.RunFinished(key, []obs.SnapshotEntry{{Name: "x", Component: "c", Value: float64(i)}}, nil)
	}
	d.SetSnapshotKeep(2)
	metrics := get(t, "http://"+d.Addr()+"/metrics")
	for i := 0; i < 4; i++ {
		if strings.Contains(metrics, fmt.Sprintf(`run="run-%d"`, i)) {
			t.Errorf("run-%d snapshot survived shrink to 2", i)
		}
	}
	for i := 4; i < 6; i++ {
		if !strings.Contains(metrics, fmt.Sprintf(`run="run-%d"`, i)) {
			t.Errorf("run-%d snapshot evicted despite keep=2", i)
		}
	}
	d.SetSnapshotKeep(-1) // clamps to zero: no snapshots at all
	d.RunStarted("late")
	d.RunFinished("late", []obs.SnapshotEntry{{Name: "x", Component: "c", Value: 9}}, nil)
	metrics = get(t, "http://"+d.Addr()+"/metrics")
	if strings.Contains(metrics, `run="`) {
		t.Errorf("snapshots served with keep=0:\n%s", metrics)
	}
}

// TestDebugServerNilSafe: a nil server (introspection disabled) accepts
// the runner's publish hooks without panicking.
func TestDebugServerNilSafe(t *testing.T) {
	var d *DebugServer
	d.RunStarted("x")
	d.RunLive("x", obs.NewCPIStack(0), nil)
	d.RunFinished("x", nil, nil)
	d.SetSnapshotKeep(5)
	if d.Addr() != "" {
		t.Error("nil Addr not empty")
	}
	if err := d.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

// TestDebugServerClosedHooksInert: after Close every publish hook is a
// no-op — stragglers from a draining sweep must not mutate a closed
// server's counters or run list.
func TestDebugServerClosedHooksInert(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.RunStarted("early")
	d.RunFinished("early", nil, nil)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d.RunStarted("late")
	d.RunLive("late", obs.NewCPIStack(100), nil)
	d.RunRetried("late", 1, errors.New("flake"))
	d.RunCached("late")
	d.RunFinished("late", []obs.SnapshotEntry{{Name: "x", Component: "c"}}, nil)
	d.RunFinished("early", nil, errors.New("double-report"))

	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.runs) != 1 || d.runs["late"] != nil {
		t.Fatalf("closed server accepted runs: %d tracked", len(d.runs))
	}
	if d.done != 1 || d.failed != 0 || d.retried != 0 || d.cached != 0 {
		t.Fatalf("closed server mutated counters: done=%d failed=%d retried=%d cached=%d",
			d.done, d.failed, d.retried, d.cached)
	}
	if st := d.runs["early"]; st.Status != "done" || st.Error != "" {
		t.Fatalf("closed server rewrote a finished run: %+v", st)
	}
}

// TestDebugServerStoreEndpoint: /store reports attachment, the
// cached/retried counters, and the store's own statistics.
func TestDebugServerStoreEndpoint(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	var out struct {
		Attached bool `json:"attached"`
		Cached   int  `json:"cached_runs"`
		Retried  int  `json:"retried_attempts"`
		Stats    struct {
			Entries int   `json:"entries"`
			Commits int64 `json:"commits"`
		} `json:"stats"`
	}
	read := func() {
		t.Helper()
		if err := json.Unmarshal([]byte(get(t, base+"/store")), &out); err != nil {
			t.Fatal(err)
		}
	}
	read()
	if out.Attached {
		t.Fatalf("/store reports attached with no store: %+v", out)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.SetStore(st)
	if err := st.Put(&storeTestEntry); err != nil {
		t.Fatal(err)
	}
	d.RunCached("a")
	d.RunRetried("b", 1, errors.New("flake"))
	d.RunRetried("b", 2, errors.New("flake"))
	read()
	if !out.Attached || out.Cached != 1 || out.Retried != 2 {
		t.Fatalf("/store = %+v, want attached with 1 cached / 2 retried", out)
	}
	if out.Stats.Entries != 1 || out.Stats.Commits != 1 {
		t.Fatalf("/store stats = %+v, want 1 entry / 1 commit", out.Stats)
	}
}

// TestDebugServerHealthzStoreDegraded: /healthz carries the store
// section and answers 503 while the store's most recent commit attempt
// failed, recovering to 200 once a commit succeeds.
func TestDebugServerHealthzStoreDegraded(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	url := "http://" + d.Addr() + "/healthz"

	ffs := &failingStoreFS{FS: store.OSFS()}
	st, err := store.Open(t.TempDir(), store.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	d.SetStore(st)

	fetch := func() (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := fetch(); code != http.StatusOK || !strings.Contains(body, `"degraded": false`) {
		t.Fatalf("healthy store healthz = %d:\n%s", code, body)
	}

	ffs.fail = true
	if err := st.Put(&storeTestEntry); err == nil {
		t.Fatal("Put succeeded under an injected fault")
	}
	code, body := fetch()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded-store healthz = %d, want 503", code)
	}
	if !strings.Contains(body, `"status": "degraded"`) || !strings.Contains(body, "injected") {
		t.Fatalf("degraded-store healthz body:\n%s", body)
	}

	ffs.fail = false
	if err := st.Put(&storeTestEntry); err != nil {
		t.Fatal(err)
	}
	if code, _ := fetch(); code != http.StatusOK {
		t.Fatalf("healed-store healthz = %d, want 200", code)
	}
}

// failingStoreFS fails every write while fail is set.
type failingStoreFS struct {
	store.FS
	fail bool
}

func (f *failingStoreFS) WriteFile(path string, data []byte) error {
	if f.fail {
		return fmt.Errorf("injected: no space left on device")
	}
	return f.FS.WriteFile(path, data)
}

// storeTestEntry is a minimal valid entry (the fingerprint is a
// literal: debug tests exercise plumbing, not fingerprinting).
var storeTestEntry = store.Entry{
	Key:         "k",
	Fingerprint: strings.Repeat("ab", 32),
	Result:      &core.Result{Benchmark: "stream", Cycles: 1},
}

// TestDebugServerSpans: runs that attach live span tracing via RunLive
// serve their current waterfall snapshot; runs without it are skipped.
func TestDebugServerSpans(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	d.RunStarted("plain")
	d.RunStarted("live")
	ss := obs.NewSpanSet(1) // sample everything
	r := &memreq.Request{CoreID: 2, WarpID: 5}
	ss.Start(r, 0, 100)
	if r.Span == nil {
		t.Fatal("1-in-1 sampling attached no span")
	}
	r.StampSpan(memreq.SpanMRQEnqueue, 101)
	r.StampSpan(memreq.SpanMRQDequeue, 104)
	r.StampSpan(memreq.SpanNoCReqInject, 104)
	r.StampSpan(memreq.SpanNoCReqDeliver, 124)
	r.StampSpan(memreq.SpanDRAMArrive, 124)
	r.StampSpan(memreq.SpanDRAMSched, 140)
	r.StampSpan(memreq.SpanDRAMActivate, 142)
	r.StampSpan(memreq.SpanDRAMDone, 190)
	r.StampSpan(memreq.SpanNoCRespInject, 190)
	r.StampSpan(memreq.SpanNoCRespDeliver, 210)
	r.StampSpan(memreq.SpanFill, 210)
	ss.Finish(r, 210, memreq.TermFill)
	d.RunLive("live", nil, ss)

	body := get(t, base+"/spans")
	if strings.Contains(body, "plain") {
		t.Errorf("/spans lists a run without span tracing:\n%s", body)
	}
	for _, want := range []string{"live (running): 1/1 spans finished", "dramsvc%", "none"} {
		if !strings.Contains(body, want) {
			t.Errorf("/spans missing %q:\n%s", want, body)
		}
	}
}
