package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"mtprefetch/internal/obs"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	d.RunStarted("base/monte")
	d.RunStarted("hw/monte/stride/true")
	d.RunFinished("base/monte", []obs.SnapshotEntry{
		{Name: "smcore.demand_transactions", Core: 0, Component: "smcore", Value: 42},
	}, nil)
	d.RunFinished("hw/monte/stride/true", nil, errors.New("boom"))

	var runs struct {
		Running int `json:"running"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
		Runs    []struct {
			Key    string `json:"key"`
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/")), &runs); err != nil {
		t.Fatal(err)
	}
	if runs.Running != 0 || runs.Done != 1 || runs.Failed != 1 || len(runs.Runs) != 2 {
		t.Errorf("progress = %+v", runs)
	}
	if runs.Runs[0].Key != "base/monte" || runs.Runs[0].Status != "done" {
		t.Errorf("first run = %+v, want base/monte done", runs.Runs[0])
	}
	if runs.Runs[1].Status != "failed" || !strings.Contains(runs.Runs[1].Error, "boom") {
		t.Errorf("second run = %+v, want failed with error", runs.Runs[1])
	}

	metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`mtpref_runs{status="done"} 1`,
		`mtpref_runs{status="failed"} 1`,
		`sim_smcore_demand_transactions{run="base/monte",core="0",component="smcore"} 42`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if body := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

// TestDebugServerSnapshotEviction: only the newest DefaultSnapshotKeep finished
// runs keep snapshots; older runs keep their progress line but drop the
// per-instrument payload from /metrics.
func TestDebugServerSnapshotEviction(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < DefaultSnapshotKeep+5; i++ {
		key := fmt.Sprintf("run-%03d", i)
		d.RunStarted(key)
		d.RunFinished(key, []obs.SnapshotEntry{{Name: "x", Component: "c", Value: float64(i)}}, nil)
	}
	metrics := get(t, "http://"+d.Addr()+"/metrics")
	if strings.Contains(metrics, `run="run-000"`) {
		t.Error("evicted run still in /metrics")
	}
	if !strings.Contains(metrics, fmt.Sprintf(`run="run-%03d"`, DefaultSnapshotKeep+4)) {
		t.Error("newest run missing from /metrics")
	}
	if !strings.Contains(metrics, fmt.Sprintf(`mtpref_runs{status="done"} %d`, DefaultSnapshotKeep+5)) {
		t.Error("done count wrong after eviction")
	}
}

// TestDebugServerHealthz: the liveness endpoint reports run-state counts
// and degrades once a run fails.
func TestDebugServerHealthz(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	var h struct {
		Status        string  `json:"status"`
		Running       int     `json:"running"`
		Done          int     `json:"done"`
		Failed        int     `json:"failed"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	read := func() {
		t.Helper()
		if err := json.Unmarshal([]byte(get(t, base+"/healthz")), &h); err != nil {
			t.Fatal(err)
		}
	}
	read()
	if h.Status != "ok" || h.Running != 0 || h.UptimeSeconds < 0 {
		t.Errorf("idle healthz = %+v", h)
	}
	d.RunStarted("a")
	d.RunStarted("b")
	d.RunFinished("a", nil, nil)
	read()
	if h.Status != "ok" || h.Running != 1 || h.Done != 1 {
		t.Errorf("healthz after one finish = %+v", h)
	}
	d.RunFinished("b", nil, errors.New("boom"))
	read()
	if h.Status != "degraded" || h.Failed != 1 {
		t.Errorf("healthz after failure = %+v", h)
	}
}

// TestDebugServerTolerance: runs that attach live cycle accounting via
// RunLive serve their latest per-core tolerance snapshot; runs without
// it are skipped.
func TestDebugServerTolerance(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	d.RunStarted("plain")
	d.RunStarted("live")
	cpi := obs.NewCPIStack(100)
	cpi.Core(0)
	cpi.CloseEpoch(100, []obs.Tolerance{{Core: 0, ReadyWarps: 4, MRQFree: 6, OldestFillAge: 17}}, nil)
	d.RunLive("live", cpi)

	var tol struct {
		Runs []struct {
			Key    string          `json:"key"`
			Status string          `json:"status"`
			Cycle  uint64          `json:"cycle"`
			Cores  []obs.Tolerance `json:"cores"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/tolerance")), &tol); err != nil {
		t.Fatal(err)
	}
	if len(tol.Runs) != 1 || tol.Runs[0].Key != "live" {
		t.Fatalf("tolerance runs = %+v, want only the live run", tol.Runs)
	}
	r := tol.Runs[0]
	if r.Cycle != 100 || len(r.Cores) != 1 || r.Cores[0].ReadyWarps != 4 ||
		r.Cores[0].OldestFillAge != 17 {
		t.Errorf("tolerance snapshot = %+v", r)
	}
}

// TestDebugServerSetSnapshotKeep: shrinking the cap evicts the oldest
// retained snapshots immediately, and a zero cap drops them all.
func TestDebugServerSetSnapshotKeep(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("run-%d", i)
		d.RunStarted(key)
		d.RunFinished(key, []obs.SnapshotEntry{{Name: "x", Component: "c", Value: float64(i)}}, nil)
	}
	d.SetSnapshotKeep(2)
	metrics := get(t, "http://"+d.Addr()+"/metrics")
	for i := 0; i < 4; i++ {
		if strings.Contains(metrics, fmt.Sprintf(`run="run-%d"`, i)) {
			t.Errorf("run-%d snapshot survived shrink to 2", i)
		}
	}
	for i := 4; i < 6; i++ {
		if !strings.Contains(metrics, fmt.Sprintf(`run="run-%d"`, i)) {
			t.Errorf("run-%d snapshot evicted despite keep=2", i)
		}
	}
	d.SetSnapshotKeep(-1) // clamps to zero: no snapshots at all
	d.RunStarted("late")
	d.RunFinished("late", []obs.SnapshotEntry{{Name: "x", Component: "c", Value: 9}}, nil)
	metrics = get(t, "http://"+d.Addr()+"/metrics")
	if strings.Contains(metrics, `run="`) {
		t.Errorf("snapshots served with keep=0:\n%s", metrics)
	}
}

// TestDebugServerNilSafe: a nil server (introspection disabled) accepts
// the runner's publish hooks without panicking.
func TestDebugServerNilSafe(t *testing.T) {
	var d *DebugServer
	d.RunStarted("x")
	d.RunLive("x", obs.NewCPIStack(0))
	d.RunFinished("x", nil, nil)
	d.SetSnapshotKeep(5)
	if d.Addr() != "" {
		t.Error("nil Addr not empty")
	}
	if err := d.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}
