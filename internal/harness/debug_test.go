package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"mtprefetch/internal/obs"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	d.RunStarted("base/monte")
	d.RunStarted("hw/monte/stride/true")
	d.RunFinished("base/monte", []obs.SnapshotEntry{
		{Name: "smcore.demand_transactions", Core: 0, Component: "smcore", Value: 42},
	}, nil)
	d.RunFinished("hw/monte/stride/true", nil, errors.New("boom"))

	var runs struct {
		Running int `json:"running"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
		Runs    []struct {
			Key    string `json:"key"`
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(get(t, base+"/")), &runs); err != nil {
		t.Fatal(err)
	}
	if runs.Running != 0 || runs.Done != 1 || runs.Failed != 1 || len(runs.Runs) != 2 {
		t.Errorf("progress = %+v", runs)
	}
	if runs.Runs[0].Key != "base/monte" || runs.Runs[0].Status != "done" {
		t.Errorf("first run = %+v, want base/monte done", runs.Runs[0])
	}
	if runs.Runs[1].Status != "failed" || !strings.Contains(runs.Runs[1].Error, "boom") {
		t.Errorf("second run = %+v, want failed with error", runs.Runs[1])
	}

	metrics := get(t, base+"/metrics")
	for _, want := range []string{
		`mtpref_runs{status="done"} 1`,
		`mtpref_runs{status="failed"} 1`,
		`sim_smcore_demand_transactions{run="base/monte",core="0",component="smcore"} 42`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if body := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

// TestDebugServerSnapshotEviction: only the newest snapshotKeep finished
// runs keep snapshots; older runs keep their progress line but drop the
// per-instrument payload from /metrics.
func TestDebugServerSnapshotEviction(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < snapshotKeep+5; i++ {
		key := fmt.Sprintf("run-%03d", i)
		d.RunStarted(key)
		d.RunFinished(key, []obs.SnapshotEntry{{Name: "x", Component: "c", Value: float64(i)}}, nil)
	}
	metrics := get(t, "http://"+d.Addr()+"/metrics")
	if strings.Contains(metrics, `run="run-000"`) {
		t.Error("evicted run still in /metrics")
	}
	if !strings.Contains(metrics, fmt.Sprintf(`run="run-%03d"`, snapshotKeep+4)) {
		t.Error("newest run missing from /metrics")
	}
	if !strings.Contains(metrics, fmt.Sprintf(`mtpref_runs{status="done"} %d`, snapshotKeep+5)) {
		t.Error("done count wrong after eviction")
	}
}

// TestDebugServerNilSafe: a nil server (introspection disabled) accepts
// the runner's publish hooks without panicking.
func TestDebugServerNilSafe(t *testing.T) {
	var d *DebugServer
	d.RunStarted("x")
	d.RunFinished("x", nil, nil)
	if d.Addr() != "" {
		t.Error("nil Addr not empty")
	}
	if err := d.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}
