package harness

import (
	"fmt"
	"strings"
)

// RunError wraps any failure of one memoised simulation — a rejected
// configuration, a watchdog abort, an invariant violation, or a
// recovered panic — with the run's identity, so a sweep-level report
// can say which cell of which table died and why.
type RunError struct {
	Key         string // memoisation key ("hw/stream/pws+gs/false", ...)
	Fingerprint string // human-readable options summary
	Err         error  // the underlying error, when the run returned one
	Panic       any    // the recovered panic value, when it panicked
	Stack       []byte // goroutine stack at the panic site
	DumpPath    string // crash-dump directory, when Config.CrashDir was set
}

// Error implements error.
func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s [%s]: ", e.Key, e.Fingerprint)
	if e.Panic != nil {
		fmt.Fprintf(&b, "panic: %v", e.Panic)
	} else {
		b.WriteString(e.Err.Error())
	}
	if e.DumpPath != "" {
		fmt.Fprintf(&b, " (crash dump: %s)", e.DumpPath)
	}
	return b.String()
}

// Unwrap exposes the underlying error so errors.Is(err, core.ErrLivelock)
// and friends see through the run wrapper. Panics have no inner error.
func (e *RunError) Unwrap() error { return e.Err }

// SweepError aggregates every failed run of one experiment. The
// experiment still returns its tables — failed cells render as ERR —
// and this error reports the damage. Unwrap returns the individual
// *RunErrors for errors.Is/As traversal.
type SweepError struct {
	Failed int // runs that failed
	Total  int // runs the experiment submitted
	Errs   []error
}

// Error implements error.
func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of %d runs failed:", e.Failed, e.Total)
	for _, err := range e.Errs {
		fmt.Fprintf(&b, "\n  %v", err)
	}
	return b.String()
}

// Unwrap implements the multi-error form of errors.Is/As.
func (e *SweepError) Unwrap() []error { return e.Errs }
