package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mtprefetch/internal/core"
	"mtprefetch/internal/faults"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/store"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// resilientOptions is a small real run the lifecycle tests execute.
func resilientOptions(t *testing.T, scale int) core.Options {
	t.Helper()
	s := workload.ByName("stream")
	if s == nil {
		t.Fatal("workload suite missing stream")
	}
	return core.Options{Workload: s.Scaled(scale)}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRetryTransientConverges: a run that transiently flakes under a
// retry budget must succeed, be counted as retried, and return a
// Result byte-identical to a never-faulted run.
func TestRetryTransientConverges(t *testing.T) {
	clean, err := newRunner(Config{}).run("k", resilientOptions(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r := newRunner(Config{Retries: 2, RetryBackoff: time.Millisecond, Debug: d})
	o := resilientOptions(t, 8)
	flake := &faults.FlakeRun{FailCycle: 1000, Fails: 2}
	o.Inject = flake
	got, err := r.run("k", o)
	if err != nil {
		t.Fatalf("run failed despite a sufficient retry budget: %v", err)
	}
	if g, c := mustJSON(t, got), mustJSON(t, clean); g != c {
		t.Fatalf("retried result diverges from fault-free:\ngot  %s\nwant %s", g, c)
	}
	d.mu.Lock()
	retried, st := d.retried, d.runs["k"]
	d.mu.Unlock()
	if retried != 2 || st == nil || st.Retries != 2 {
		t.Fatalf("debug retry accounting: total=%d run=%+v, want 2 retries", retried, st)
	}
	if st.Status != "done" || st.Error != "" {
		t.Fatalf("recovered run state = %+v, want done with cleared error", st)
	}
}

// TestRetryBudgetExhausted: a flake outliving the budget fails with the
// typed transient error after exactly 1+Retries attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	r := newRunner(Config{Retries: 1, RetryBackoff: time.Millisecond})
	o := resilientOptions(t, 8)
	flake := &faults.FlakeRun{FailCycle: 1000, Fails: 10}
	o.Inject = flake
	_, err := r.run("k", o)
	if err == nil {
		t.Fatal("run succeeded with the flake still armed")
	}
	if !simerr.IsTransient(err) {
		t.Fatalf("exhausted-retries error %v is not typed transient", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Key != "k" {
		t.Fatalf("error %v is not a *RunError for k", err)
	}
}

// TestNonTransientNoRetry: a permanent failure (livelock) must not
// consume the retry budget.
func TestNonTransientNoRetry(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r := newRunner(Config{Retries: 5, RetryBackoff: time.Millisecond, Debug: d})
	o := resilientOptions(t, 8)
	o.MaxCycles = 50_000_000
	o.WatchdogWindow = 100_000
	o.Inject = faults.StallIssue(0, 1000)
	if _, err := r.run("k", o); !errors.Is(err, core.ErrLivelock) {
		t.Fatalf("stalled run returned %v, want ErrLivelock", err)
	}
	d.mu.Lock()
	retried := d.retried
	d.mu.Unlock()
	if retried != 0 {
		t.Fatalf("permanent failure consumed %d retries, want 0", retried)
	}
}

// TestRunTimeoutDeadline: RunTimeout bounds a simulation in wall clock;
// the failure is a canceled-run error carrying DeadlineExceeded, not a
// transient one (retrying a deterministic timeout cannot help). The
// deadline is 1ns — already expired at the first poll barrier — so the
// test does not race the simulator (event-driven skipping finishes
// even large runs in well under a millisecond).
func TestRunTimeoutDeadline(t *testing.T) {
	r := newRunner(Config{RunTimeout: time.Nanosecond, Retries: 3})
	_, err := r.run("k", resilientOptions(t, 8))
	if err == nil {
		t.Fatal("an expired deadline did not abort the run")
	}
	if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error %v missing ErrCanceled/DeadlineExceeded", err)
	}
	var ce *core.CanceledError
	if !errors.As(err, &ce) || ce.Benchmark != "stream" {
		t.Fatalf("error %v is not a *CanceledError for stream", err)
	}
	if simerr.IsTransient(err) {
		t.Fatal("deadline error is typed transient; it would retry pointlessly")
	}
}

// TestStoreResumeByteIdentical is the persistence contract end to end:
// a warm sweep (fresh process, same store directory) must simulate
// nothing, serve every run from disk, and emit byte-identical results
// and sink streams.
func TestStoreResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	keys := []string{"base/stream", "sw/stream/mt-swp/true"}
	sweep := func() (map[string]string, string, *store.Store) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var metrics, cpis bytes.Buffer
		sink, err := obs.NewSink(&metrics, nil, nil, &cpis, nil, obs.Config{SampleEvery: 5000})
		if err != nil {
			t.Fatal(err)
		}
		r := newRunner(Config{Store: st, Obs: sink, Workers: 1})
		out := make(map[string]string)
		for _, k := range keys {
			o := resilientOptions(t, 8)
			if strings.HasPrefix(k, "sw/") {
				o.Software = swpref.MTSWP
				o.Throttle = true
			}
			res, err := r.run(k, o)
			if err != nil {
				t.Fatalf("%s: %v", k, err)
			}
			out[k] = mustJSON(t, res)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return out, metrics.String() + "\x00" + cpis.String(), st
	}

	cold, coldStreams, st1 := sweep()
	if got := st1.Stats(); got.Commits != int64(len(keys)) || got.Hits != 0 {
		t.Fatalf("cold sweep stats = %+v, want %d commits and no hits", got, len(keys))
	}
	warm, warmStreams, st2 := sweep()
	if got := st2.Stats(); got.Hits != int64(len(keys)) || got.Commits != 0 {
		t.Fatalf("warm sweep stats = %+v, want %d hits and no commits", got, len(keys))
	}
	for _, k := range keys {
		if cold[k] != warm[k] {
			t.Fatalf("%s: warm result diverges:\ncold %s\nwarm %s", k, cold[k], warm[k])
		}
	}
	if coldStreams != warmStreams {
		t.Fatalf("warm sink streams diverge from cold:\ncold:\n%s\nwarm:\n%s", coldStreams, warmStreams)
	}
}

// TestStoreSkippedForInjectedRuns: chaos-injected runs must bypass the
// store entirely — their results may deliberately diverge and must
// never poison (or be served from) the fault-free cache.
func TestStoreSkippedForInjectedRuns(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(Config{Store: st, Retries: 1, RetryBackoff: time.Millisecond})
	o := resilientOptions(t, 8)
	o.Inject = &faults.FlakeRun{FailCycle: 1000, Fails: 1}
	if _, err := r.run("k", o); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Commits != 0 || s.Hits != 0 || s.Misses != 0 || st.Len() != 0 {
		t.Fatalf("injected run touched the store: %+v", s)
	}
}

// TestDrainAbortsQueuedRuns: once a drain begins, submitted runs fail
// with ErrDrained without simulating, and the lifecycle reports their
// keys sorted.
func TestDrainAbortsQueuedRuns(t *testing.T) {
	lc := NewLifecycle()
	lc.Drain()
	r := newRunner(Config{Lifecycle: lc, Workers: 1})
	for _, k := range []string{"b", "a"} {
		if _, err := r.run(k, resilientOptions(t, 8)); !errors.Is(err, ErrDrained) {
			t.Fatalf("%s under drain returned %v, want ErrDrained", k, err)
		}
	}
	if got := lc.Aborted(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Aborted() = %v, want [a b]", got)
	}
}

// drainAt is a test injector that fires a lifecycle drain from inside
// the simulation at a fixed cycle (perturbing nothing else), so the
// in-flight-cancellation test is deterministic instead of racing the
// simulator's wall clock.
type drainAt struct {
	lc    *Lifecycle
	cycle uint64
}

func (d *drainAt) StallCore(uint64, int) bool { return false }
func (d *drainAt) OnResponse(uint64, *memreq.Request) core.ResponseAction {
	return core.DeliverResponse
}
func (d *drainAt) NextEvent(cyc uint64) uint64 {
	if cyc < d.cycle {
		return d.cycle
	}
	return ^uint64(0)
}
func (d *drainAt) RunFault(cyc uint64) error {
	if cyc >= d.cycle {
		d.lc.Drain()
	}
	return nil
}

// TestDrainCancelsInFlight: a drain mid-simulation cancels the run at
// its next poll barrier with a canceled-run error, and the key lands in
// the aborted set.
func TestDrainCancelsInFlight(t *testing.T) {
	lc := NewLifecycle()
	r := newRunner(Config{Lifecycle: lc})
	o := resilientOptions(t, 64)
	o.Inject = &drainAt{lc: lc, cycle: 1000}
	_, err := r.run("big", o)
	if err == nil {
		t.Fatal("drained in-flight run completed (run shorter than a poll interval?)")
	}
	if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("drained run returned %v, want ErrCanceled wrapping context.Canceled", err)
	}
	var ce *core.CanceledError
	if !errors.As(err, &ce) || ce.Cycle <= 1000 {
		t.Fatalf("error %v did not cancel at a post-drain poll barrier", err)
	}
	if got := lc.Aborted(); len(got) != 1 || got[0] != "big" {
		t.Fatalf("Aborted() = %v, want [big]", got)
	}
}

// TestLifecycleNilSafe: the zero configuration (no lifecycle) must
// behave exactly as before the lifecycle existed.
func TestLifecycleNilSafe(t *testing.T) {
	var lc *Lifecycle
	if lc.Draining() || lc.Aborted() != nil || lc.Context() == nil {
		t.Fatal("nil lifecycle misbehaves")
	}
	lc.Drain()
	lc.noteAborted("x")
	stop := lc.HandleSignals()
	stop()
	if _, err := newRunner(Config{}).run("k", resilientOptions(t, 8)); err != nil {
		t.Fatal(err)
	}
}

// TestRetryDelayDeterministic: the backoff schedule is a pure function
// of (key, attempt, base) — identical across executions — exponential,
// jittered within [base<<n/2, base<<n), and capped.
func TestRetryDelayDeterministic(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		a := retryDelay("sw/stream/mt-swp/true", attempt, base)
		b := retryDelay("sw/stream/mt-swp/true", attempt, base)
		if a != b {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, a, b)
		}
		shift := attempt
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		hi := base << shift
		if a < hi/2 || a >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, a, hi/2, hi)
		}
	}
	if retryDelay("a", 0, base) == retryDelay("b", 0, base) {
		t.Fatal("different keys share a jitter (suspicious seeding)")
	}
	if retryDelay("k", 0, 0) == 0 {
		t.Fatal("zero base did not fall back to the default backoff")
	}
}

// TestSanitizeKeyCollisionResistant: keys that flatten to the same
// readable name must still map to distinct dump directories.
func TestSanitizeKeyCollisionResistant(t *testing.T) {
	a, b := sanitizeKey("sw/a_b"), sanitizeKey("sw/a/b")
	if a == b {
		t.Fatalf("distinct keys share a dump directory: %q", a)
	}
	for _, s := range []string{a, b} {
		if !strings.HasPrefix(s, "sw_a_b-") {
			t.Errorf("sanitized name %q lost its readable prefix", s)
		}
		if strings.ContainsAny(s, "/\\:") {
			t.Errorf("sanitized name %q is not filesystem-safe", s)
		}
	}
	if sanitizeKey("sw/a_b") != a {
		t.Fatal("sanitizeKey is not deterministic")
	}
}
