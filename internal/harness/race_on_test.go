//go:build race

package harness

// raceEnabled mirrors the race-detector build tag so the expensive
// integration sweep can bound its runtime under `go test -race`.
const raceEnabled = true
