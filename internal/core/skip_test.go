package core

import (
	"bytes"
	"reflect"
	"testing"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
)

// This file holds the differential equivalence tests for event-driven
// cycle skipping: every supported configuration must produce a Result
// and an epoch-sample stream byte-identical to a run that visits every
// cycle. This is the contract that lets skipping be on by default.

// runDiff executes o with skipping enabled and disabled and returns
// (skip result, full result, skip JSONL, full JSONL, cycles skipped).
func runDiff(t *testing.T, o Options) (*Result, *Result, []byte, []byte, uint64) {
	t.Helper()
	run := func(noskip bool) (*Result, []byte, uint64) {
		oo := o
		oo.NoCycleSkip = noskip
		oo.Obs = obs.New(obs.Config{SampleEvery: 512})
		s, err := New(oo)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := oo.Obs.Sampler.WriteJSONL(&buf, map[string]string{"bench": res.Benchmark}); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes(), s.SkippedCycles()
	}
	skip, skipJSON, skipped := run(false)
	full, fullJSON, fullSkipped := run(true)
	if fullSkipped != 0 {
		t.Fatalf("NoCycleSkip run still skipped %d cycles", fullSkipped)
	}
	return skip, full, skipJSON, fullJSON, skipped
}

// assertIdentical is the shared comparison: identical Result structs and
// identical epoch-sample streams.
func assertIdentical(t *testing.T, name string, o Options) {
	t.Helper()
	skip, full, skipJSON, fullJSON, skipped := runDiff(t, o)
	if !reflect.DeepEqual(skip, full) {
		t.Errorf("%s: results diverge with cycle skipping\nskip: %+v\nfull: %+v", name, skip, full)
	}
	if !bytes.Equal(skipJSON, fullJSON) {
		t.Errorf("%s: epoch samples diverge with cycle skipping\nskip: %s\nfull: %s", name, skipJSON, fullJSON)
	}
	if skipped == 0 {
		t.Logf("%s: note: no cycles were skippable", name)
	}
}

// TestSkipEquivalenceMatrix sweeps the Options space: baseline, both
// software transforms, hardware prefetchers with throttling and
// filtering, perfect memory, and the invariant sweep.
func TestSkipEquivalenceMatrix(t *testing.T) {
	cases := []struct {
		name string
		opts func(t *testing.T) Options
	}{
		{"baseline", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "monte")}
		}},
		{"mtswp", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "mersenne"), Software: swpref.MTSWP}
		}},
		{"swp-throttle", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "stream"), Software: swpref.Stride, Throttle: true}
		}},
		{"mthwp", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "conv"), Hardware: func() prefetch.Prefetcher {
				return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
			}}
		}},
		{"stride-filter", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "monte"), PollutionFilter: true,
				Hardware: func() prefetch.Prefetcher {
					return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true})
				}}
		}},
		{"perfect-memory", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "monte"), PerfectMemory: true}
		}},
		{"checks", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "stream"), Checks: true, CheckEvery: 1000}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			assertIdentical(t, tc.name, tc.opts(t))
		})
	}
}

// TestSkipActuallySkips guards against the skip machinery silently
// degrading into a no-op: a memory-bound run must skip a substantial
// share of its cycles.
func TestSkipActuallySkips(t *testing.T) {
	o := Options{Workload: tiny(t, "stream")}
	skip, _, _, _, skipped := runDiff(t, o)
	if skipped == 0 {
		t.Fatal("memory-bound run skipped no cycles")
	}
	if frac := float64(skipped) / float64(skip.Cycles); frac < 0.05 {
		t.Errorf("only %.1f%% of cycles skipped; the event calendar is too conservative", frac*100)
	} else {
		t.Logf("skipped %d of %d cycles (%.1f%%)", skipped, skip.Cycles, frac*100)
	}
}

// opaqueInjector implements FaultInjector but not EventSource.
type opaqueInjector struct{}

func (opaqueInjector) StallCore(uint64, int) bool                        { return false }
func (opaqueInjector) OnResponse(uint64, *memreq.Request) ResponseAction { return DeliverResponse }

// TestOpaqueInjectorDisablesSkip: a fault injector that cannot promise
// skip-awareness forces the loop to visit every cycle.
func TestOpaqueInjectorDisablesSkip(t *testing.T) {
	s, err := New(Options{Workload: tiny(t, "monte"), Inject: opaqueInjector{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SkippedCycles() != 0 {
		t.Fatalf("opaque injector run skipped %d cycles", s.SkippedCycles())
	}
}

// TestExactTermination: the run ends on the exact cycle the machine
// drains, not the next multiple of a polling granularity — and MaxCycles
// still truncates identically with skipping on or off.
func TestExactTermination(t *testing.T) {
	spec := tiny(t, "monte")
	a := mustRun(t, Options{Workload: spec})
	b := mustRun(t, Options{Workload: spec, NoCycleSkip: true})
	if a.Cycles != b.Cycles {
		t.Fatalf("termination cycle differs: skip %d vs full %d", a.Cycles, b.Cycles)
	}
}
