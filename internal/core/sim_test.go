package core

import (
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// tiny returns a benchmark scaled down for unit-test speed while keeping
// at least two waves of blocks per core.
func tiny(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s := workload.ByName(name)
	if s == nil {
		t.Fatalf("unknown benchmark %s", name)
	}
	target := 14 * s.MaxBlocksPerCore * 2
	return s.Scaled(s.Blocks / target)
}

func mustRun(t *testing.T, o Options) *Result {
	t.Helper()
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBaseline(t *testing.T) {
	spec := tiny(t, "monte")
	r := mustRun(t, Options{Workload: spec})
	if r.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if r.ProgInstructions == 0 {
		t.Fatal("no instructions executed")
	}
	// Every warp ran the whole program.
	want := uint64(spec.TotalWarps) * uint64(spec.Program.DynamicCounts().Total)
	if r.ProgInstructions != want {
		t.Errorf("ProgInstructions = %d, want %d", r.ProgInstructions, want)
	}
	if r.CPI < 4 {
		t.Errorf("CPI = %.2f, below the 4-cycle issue floor", r.CPI)
	}
}

func TestDeterminism(t *testing.T) {
	spec := tiny(t, "mersenne")
	a := mustRun(t, Options{Workload: spec, Software: swpref.MTSWP})
	b := mustRun(t, Options{Workload: spec, Software: swpref.MTSWP})
	if a.Cycles != b.Cycles || a.PrefetchesIssued != b.PrefetchesIssued {
		t.Errorf("simulation not deterministic: %d/%d vs %d/%d cycles/prefetches",
			a.Cycles, a.PrefetchesIssued, b.Cycles, b.PrefetchesIssued)
	}
}

func TestPerfectMemoryFasterAndNoTraffic(t *testing.T) {
	spec := tiny(t, "monte")
	base := mustRun(t, Options{Workload: spec})
	pm := mustRun(t, Options{Workload: spec, PerfectMemory: true})
	if pm.Cycles >= base.Cycles {
		t.Errorf("perfect memory (%d cycles) not faster than base (%d)", pm.Cycles, base.Cycles)
	}
	if pm.MemTransactions != 0 {
		t.Errorf("perfect memory produced %d DRAM transactions", pm.MemTransactions)
	}
	if pm.CPI < 4 || pm.CPI > 10 {
		t.Errorf("perfect-memory CPI = %.2f, want near the issue bound", pm.CPI)
	}
}

// TestStridePrefetchingWins pins the headline direction: the sliding-window
// stride benchmark speeds up with software stride prefetching.
func TestStridePrefetchingWins(t *testing.T) {
	spec := tiny(t, "monte")
	base := mustRun(t, Options{Workload: spec})
	pf := mustRun(t, Options{Workload: spec, Software: swpref.Stride})
	if sp := pf.Speedup(base); sp < 1.15 {
		t.Errorf("monte stride-SWP speedup = %.3f, want > 1.15", sp)
	}
	if pf.Coverage < 0.3 {
		t.Errorf("coverage = %.2f, want meaningful", pf.Coverage)
	}
}

// TestIPPrefetchingCanHurt pins the paper's harm case: ocean degrades
// under inter-thread prefetching (Section VII-A).
func TestIPPrefetchingCanHurt(t *testing.T) {
	spec := tiny(t, "ocean")
	base := mustRun(t, Options{Workload: spec})
	pf := mustRun(t, Options{Workload: spec, Software: swpref.IP})
	if sp := pf.Speedup(base); sp > 1.0 {
		t.Errorf("ocean IP speedup = %.3f, expected degradation", sp)
	}
}

func TestMTHWPWins(t *testing.T) {
	spec := tiny(t, "mersenne")
	base := mustRun(t, Options{Workload: spec})
	hw := mustRun(t, Options{Workload: spec, Hardware: func() prefetch.Prefetcher {
		return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
	}})
	if sp := hw.Speedup(base); sp < 1.2 {
		t.Errorf("mersenne MT-HWP speedup = %.3f, want > 1.2", sp)
	}
}

func TestThrottleRescuesHarm(t *testing.T) {
	cfg := config.Baseline()
	cfg.ThrottlePeriod = 5_000 // scaled runs are short
	spec := tiny(t, "scalar")
	base := mustRun(t, Options{Workload: spec})
	hurt := mustRun(t, Options{Workload: spec, Software: swpref.IP})
	fixed := mustRun(t, Options{Workload: spec, Config: cfg, Software: swpref.IP, Throttle: true})
	hs, fs := hurt.Speedup(base), fixed.Speedup(base)
	if hs >= 1.0 {
		t.Skipf("scalar IP not harmful at this scale (%.3f); nothing to rescue", hs)
	}
	if fs <= hs {
		t.Errorf("throttling did not help: %.3f -> %.3f", hs, fs)
	}
	if fixed.ThrottlePeriods == 0 {
		t.Error("throttle engine never evaluated a period")
	}
}

func TestResultInvariants(t *testing.T) {
	spec := tiny(t, "cfd")
	r := mustRun(t, Options{Workload: spec, Software: swpref.MTSWP})
	if r.Accuracy < 0 || r.Accuracy > 1 {
		t.Errorf("Accuracy = %v out of range", r.Accuracy)
	}
	if r.Coverage < 0 || r.Coverage > 1 {
		t.Errorf("Coverage = %v out of range", r.Coverage)
	}
	if r.LateFraction < 0 || r.LateFraction > 1 {
		t.Errorf("LateFraction = %v out of range", r.LateFraction)
	}
	if r.PFCacheHits > r.DemandTransactions {
		t.Errorf("more cache hits (%d) than demand transactions (%d)",
			r.PFCacheHits, r.DemandTransactions)
	}
	if r.UsefulPrefetches > r.PrefetchesIssued+r.LatePrefetches {
		t.Errorf("useful (%d) exceeds issued+late (%d+%d)",
			r.UsefulPrefetches, r.PrefetchesIssued, r.LatePrefetches)
	}
	if r.BytesTransferred != r.MemTransactions*64 {
		t.Errorf("BytesTransferred inconsistent with MemTransactions")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("nil workload accepted")
	}
	bad := config.Baseline()
	bad.NumCores = 0
	if _, err := Run(Options{Workload: tiny(t, "monte"), Config: bad}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	spec := tiny(t, "monte")
	if _, err := Run(Options{Workload: spec, MaxCycles: 100}); err == nil {
		t.Error("100-cycle cap should fail loudly")
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := &Result{Cycles: 100}
	b := &Result{Cycles: 50}
	if got := b.Speedup(a); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	zero := &Result{}
	if got := zero.Speedup(a); got != 0 {
		t.Errorf("Speedup with zero cycles = %v, want 0", got)
	}
}

func TestNonIntensiveUnaffectedByPrefetching(t *testing.T) {
	// Table IV: prefetching does not significantly change compute-bound
	// benchmarks.
	s := workload.ByName("binomial")
	spec := s.Scaled(s.Blocks / (14 * s.MaxBlocksPerCore * 2))
	base := mustRun(t, Options{Workload: spec})
	hw := mustRun(t, Options{Workload: spec, Hardware: func() prefetch.Prefetcher {
		return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
	}})
	sp := hw.Speedup(base)
	if sp < 0.9 || sp > 1.1 {
		t.Errorf("binomial speedup with MT-HWP = %.3f, want ~1.0", sp)
	}
}

func TestCoreCountSweep(t *testing.T) {
	// The simulator must run with non-baseline core counts (Fig. 18).
	for _, n := range []int{8, 20} {
		cfg := config.Baseline()
		cfg.NumCores = n
		r := mustRun(t, Options{Workload: tiny(t, "mersenne"), Config: cfg})
		if r.Cycles == 0 {
			t.Errorf("%d cores: zero cycles", n)
		}
	}
}

func TestZeroPrefetchCache(t *testing.T) {
	cfg := config.Baseline()
	cfg.PrefetchCacheBytes = 0
	r := mustRun(t, Options{Workload: tiny(t, "monte"), Config: cfg, Software: swpref.Stride})
	if r.PFCacheHits != 0 {
		t.Errorf("cache hits with no cache: %d", r.PFCacheHits)
	}
}

func TestPollutionFilterDropsHarmfulPCs(t *testing.T) {
	// scalar's IP prefetches are heavily early-evicted; the pollution
	// filter should identify the PCs and drop candidates.
	spec := tiny(t, "scalar")
	base := mustRun(t, Options{Workload: spec})
	blind := mustRun(t, Options{Workload: spec, Software: swpref.IP})
	filtered := mustRun(t, Options{Workload: spec, Software: swpref.IP, PollutionFilter: true})
	if filtered.DroppedByFilter == 0 {
		t.Fatal("filter dropped nothing on a pollution-heavy workload")
	}
	if filtered.Speedup(base) <= blind.Speedup(base) {
		t.Errorf("filter did not help: blind %.3f vs filtered %.3f",
			blind.Speedup(base), filtered.Speedup(base))
	}
}

func TestL2ImprovesMemoryBoundWorkload(t *testing.T) {
	spec := tiny(t, "sepia") // heavy reuse: an L2 should capture it
	base := mustRun(t, Options{Workload: spec})
	cfg := config.Baseline()
	cfg.L2Bytes = 512 * 1024
	cfg.L2Ways = 16
	cfg.L2HitLatency = 20
	l2 := mustRun(t, Options{Workload: spec, Config: cfg})
	if l2.L2Hits == 0 {
		t.Fatal("L2 never hit")
	}
	if sp := l2.Speedup(base); sp < 1.05 {
		t.Errorf("L2 speedup on reuse-heavy workload = %.3f, want > 1.05", sp)
	}
}
