package core

import (
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/smcore"
)

// This file holds the robustness layer around the Run loop: the
// forward-progress watchdog, the opt-in invariant sweeps, fault
// injection hooks, and the diagnostic snapshot attached to failures.

// DiagSnapshot captures the machine state at the moment of a failure;
// it is embedded in LivelockError and serialised into crash dumps.
type DiagSnapshot struct {
	Benchmark        string        `json:"benchmark"`
	Cycle            uint64        `json:"cycle"`
	Cores            []smcore.Diag `json:"cores"`
	NoCInFlight      int           `json:"noc_in_flight"`
	DRAMBackpressure int           `json:"dram_backpressure"` // requests stalled behind full DRAM queues
	DRAMQueues       []int         `json:"dram_queues"`       // per-channel request-queue depth
}

// Diag snapshots the live machine: per-core warp states and MRQ
// occupancy, NoC in-flight count, and DRAM queue depths.
func (s *Simulator) Diag() DiagSnapshot {
	d := DiagSnapshot{
		Benchmark:        s.spec.Name,
		Cycle:            s.cycle,
		NoCInFlight:      s.net.InFlight(),
		DRAMBackpressure: len(s.pending),
	}
	for _, c := range s.cores {
		d.Cores = append(d.Cores, c.Diag())
	}
	for ch := 0; ch < s.cfg.DRAMChannels; ch++ {
		d.DRAMQueues = append(d.DRAMQueues, s.mem.QueueLen(ch))
	}
	return d
}

// ResponseAction is a FaultInjector's verdict on one memory response.
type ResponseAction uint8

const (
	// DeliverResponse lets the fill through untouched.
	DeliverResponse ResponseAction = iota
	// DropResponse discards the fill entirely: the MRQ entry stays
	// allocated and its waiters stay blocked — the lost-message fault.
	DropResponse
	// DropCompletion frees the MRQ entry but never wakes the waiting
	// warps — the lost-wakeup fault the scoreboard-balance check catches.
	DropCompletion
)

// FaultInjector perturbs a run for chaos testing (internal/faults
// provides implementations). Both methods are called on the hot loop,
// so implementations must be cheap; a nil injector costs two nil
// checks per cycle.
type FaultInjector interface {
	// StallCore reports whether the given core's issue stage should be
	// suppressed this cycle.
	StallCore(cycle uint64, core int) bool
	// OnResponse inspects a memory response about to be delivered and
	// decides its fate.
	OnResponse(cycle uint64, r *memreq.Request) ResponseAction
}

// EventSource is the optional interface a FaultInjector implements to
// stay compatible with event-driven cycle skipping: NextEvent returns
// the next cycle at which the injector needs the simulation loop to
// visit on its behalf (the maximum uint64 for "never" — appropriate for
// injectors whose faults trigger only on cycles the loop visits anyway,
// such as response perturbations). An injector that does not implement
// EventSource disables skipping for the whole run, which is always
// correct, just slower.
type EventSource interface {
	NextEvent(cycle uint64) uint64
}

// RunFaulter is the optional interface a FaultInjector implements to
// abort the whole run with an error of its choosing — the hook chaos
// tests use to simulate transient environmental failures (a flaky run
// that heals on retry returns simerr.Transient errors for its first N
// executions, then nil forever). RunFault is polled once per visited
// cycle on the serial phase; the first non-nil error aborts the run
// immediately. An injector whose fault must fire at a specific cycle
// should also report that cycle from NextEvent so event-driven skipping
// visits it.
type RunFaulter interface {
	RunFault(cycle uint64) error
}

// ShardAware is the optional marker a FaultInjector implements to
// declare StallCore safe for concurrent calls from the sharded
// core-stepping phase — a pure function of the cycle and core id, or
// otherwise free of unsynchronized mutation. (OnResponse needs no such
// promise: response delivery always runs on the serial phase of the
// cycle.) An injector that does not implement ShardAware forces
// Options.Shards down to 1 for the run — always correct, just serial —
// mirroring how a non-EventSource injector disables cycle skipping.
type ShardAware interface {
	ShardAware()
}

// checkProgress is the watchdog: called every watchWindow cycles, it
// compares retired warp-instructions and delivered fills against the
// previous window. Neither moving means no warp can ever become ready
// again — the machine is livelocked, and MaxCycles (default 500M) would
// burn hours before the timeout notices.
func (s *Simulator) checkProgress(cyc uint64) error {
	instr := s.reg.Sum("smcore.instructions")
	if instr == s.lastInstr && s.fills == s.lastFills {
		return &LivelockError{
			Benchmark: s.spec.Name,
			Cycle:     cyc,
			Window:    s.watchWindow,
			Snapshot:  s.Diag(),
		}
	}
	s.lastInstr = instr
	s.lastFills = s.fills
	return nil
}

// checkInvariants runs the opt-in conservation sweep (Options.Checks):
// per-core MRQ entry accounting, prefetch-cache line accounting,
// scoreboard release balance, NoC flit conservation, and — with cycle
// accounting on — CPI-stack cycle conservation. The sweep runs after
// step 4 of the visited cycle cyc, so cycles 0..cyc are attributed.
func (s *Simulator) checkInvariants(cyc uint64) error {
	for _, c := range s.cores {
		if err := c.CheckInvariants(cyc); err != nil {
			return err
		}
	}
	if err := s.checkCPIConservation(cyc + 1); err != nil {
		return err
	}
	return s.net.CheckInvariants(cyc)
}
