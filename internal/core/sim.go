// Package core assembles the full system and is the library's main entry
// point: it wires SIMT cores (internal/smcore), the interconnect
// (internal/noc) and the DRAM system (internal/dram) into a cycle-level
// GPGPU simulator, applies the software-prefetching transforms and
// hardware-prefetcher/throttle configuration under study, runs a workload
// to completion, and reports the measurements the paper's evaluation is
// built from.
//
// Typical use:
//
//	res, err := core.Run(core.Options{
//	    Workload: workload.ByName("backprop"),
//	    Software: swpref.MTSWP,
//	    Throttle: true,
//	})
//
// All of Figures 8-18 and Tables III/IV are sweeps over these Options.
package core

import (
	"errors"
	"fmt"

	"mtprefetch/internal/cache"
	"mtprefetch/internal/config"
	"mtprefetch/internal/dram"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/mrq"
	"mtprefetch/internal/noc"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/smcore"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/throttle"
	"mtprefetch/internal/workload"
)

// Options selects the machine, the workload, and the prefetching
// mechanisms for one simulation.
type Options struct {
	// Config is the machine description; nil selects config.Baseline().
	Config *config.Config
	// Workload is the benchmark to run (required). Use Spec.Scaled to
	// shrink grids for fast runs.
	Workload *workload.Spec
	// Software selects a software-prefetching transform applied to the
	// kernel before the run (swpref.None for the baseline binary).
	Software swpref.Mode
	// SoftwareOptions tunes the transform (distance etc.).
	SoftwareOptions swpref.Options
	// Hardware, when non-nil, is called once per core to build its
	// hardware prefetcher.
	Hardware func() prefetch.Prefetcher
	// Throttle enables the adaptive prefetch-throttling engine.
	Throttle bool
	// PollutionFilter enables the per-core PC-indexed cache pollution
	// filter (Zhuang & Lee, Section X-B) as an alternative harm-control
	// mechanism to throttling.
	PollutionFilter bool
	// PerfectMemory makes all memory operations free (the "PMEM" runs of
	// Tables III/IV).
	PerfectMemory bool
	// MaxCycles caps the simulation (default 500M) so configuration bugs
	// fail loudly instead of hanging.
	MaxCycles uint64
}

// Result is the measurement bundle of one simulation.
type Result struct {
	Benchmark string
	Cycles    uint64

	// Instruction counts are warp-instructions summed over all cores.
	ProgInstructions uint64  // the program's own instructions
	AllInstructions  uint64  // including software prefetch instructions
	CPI              float64 // cycles x cores / ProgInstructions

	// Demand-side memory behaviour.
	DemandTransactions uint64
	PFCacheHits        uint64  // demand transactions served by the prefetch cache
	AvgDemandLatency   float64 // cycles, for demands that went to memory
	MaxDemandLatency   uint64

	// Prefetch behaviour.
	PrefetchesGenerated uint64
	PrefetchesIssued    uint64
	UsefulPrefetches    uint64
	LatePrefetches      uint64
	EarlyEvictions      uint64
	DroppedByThrottle   uint64
	DroppedByFilter     uint64
	Accuracy            float64 // useful / issued
	Coverage            float64 // prefetch-cache hits / demand transactions
	LateFraction        float64 // late / issued
	EarlyRate           float64 // early evictions / useful (Eq. 5)

	// Memory-system behaviour.
	MergeRatio       float64 // intra-core merges / MRQ arrivals (Eq. 6)
	InterCoreMerges  uint64
	MemTransactions  uint64 // DRAM accesses actually serviced
	BytesTransferred uint64
	RowHitRate       float64
	L2Hits           uint64 // optional shared L2 (0 when disabled)
	L2Misses         uint64

	// Throttle behaviour.
	ThrottlePeriods   uint64
	NoPrefetchPeriods uint64

	// MT-HWP table behaviour, populated when the hardware prefetcher is
	// an MT-HWP instance (Section VIII-B).
	MTHWP prefetch.MTHWPStats
}

// Speedup is the conventional cycles ratio: baseline.Cycles / r.Cycles.
func (r *Result) Speedup(baseline *Result) float64 {
	return stats.SafeDiv(float64(baseline.Cycles), float64(r.Cycles))
}

// dispatcher deals blocks to cores in order.
type dispatcher struct {
	next, total int
}

func (d *dispatcher) NextBlock() (int, bool) {
	if d.next >= d.total {
		return 0, false
	}
	b := d.next
	d.next++
	return b, true
}

// Simulator is the assembled machine; use New + Run, or core.Run for the
// one-shot form.
type Simulator struct {
	cfg   *config.Config
	spec  *workload.Spec
	cores []*smcore.Core
	net   *noc.Network
	mem   *dram.Memory
	disp  *dispatcher
	opts  Options

	pending []*memreq.Request // DRAM backpressure buffer
	rrCore  int

	cycle uint64
}

// New builds a simulator; see Options.
func New(o Options) (*Simulator, error) {
	if o.Workload == nil {
		return nil, errors.New("core: Options.Workload is required")
	}
	if o.Config == nil {
		o.Config = config.Baseline()
	}
	if err := o.Config.Validate(); err != nil {
		return nil, err
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 500_000_000
	}
	spec := o.Workload
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec, _ = swpref.Apply(spec, o.Software, o.SoftwareOptions)

	cfg := o.Config
	s := &Simulator{
		cfg:  cfg,
		spec: spec,
		net:  noc.New(cfg.NOCLatency, cfg.MaxInjectPerCycle()),
		mem: dram.New(dram.Config{
			Channels:     cfg.DRAMChannels,
			Banks:        cfg.DRAMBanks,
			RowBytes:     cfg.DRAMRowBytes,
			BlockBytes:   cfg.BlockBytes,
			QueueSize:    cfg.DRAMQueueSize,
			TCL:          cfg.DRAMCyclesToCore(cfg.DRAMtCL),
			TRCD:         cfg.DRAMCyclesToCore(cfg.DRAMtRCD),
			TRP:          cfg.DRAMCyclesToCore(cfg.DRAMtRP),
			BusCycles:    cfg.BusCyclesBlock,
			Overhead:     cfg.DRAMOverhead,
			AgePromote:   cfg.DRAMAgePromote,
			L2Bytes:      cfg.L2Bytes,
			L2Ways:       cfg.L2Ways,
			L2HitLatency: cfg.L2HitLatency,
		}),
		disp: &dispatcher{total: spec.Blocks},
		opts: o,
	}
	for i := 0; i < cfg.NumCores; i++ {
		var hwp prefetch.Prefetcher
		if o.Hardware != nil {
			hwp = o.Hardware()
		}
		var filter *prefetch.PollutionFilter
		if o.PollutionFilter {
			filter = prefetch.NewPollutionFilter(0)
		}
		var eng *throttle.Engine
		if o.Throttle {
			eng = throttle.New(throttle.Config{
				EarlyHigh:  cfg.EarlyHighThresh,
				EarlyLow:   cfg.EarlyLowThresh,
				MergeHigh:  cfg.MergeHighThresh,
				InitDegree: cfg.ThrottleInitDegree,
			})
		}
		c, err := smcore.New(smcore.Options{
			ID:         i,
			Config:     cfg,
			Spec:       spec,
			Blocks:     s.disp,
			HWP:        hwp,
			Throttle:   eng,
			Filter:     filter,
			PerfectMem: o.PerfectMemory,
		})
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// Run advances the machine until the grid completes and the memory system
// drains, then returns the measurements.
func (s *Simulator) Run() (*Result, error) {
	var respBuf, reqBuf []*memreq.Request
	for ; s.cycle < s.opts.MaxCycles; s.cycle++ {
		cyc := s.cycle

		// 1. Memory responses reach their cores.
		respBuf = s.net.ArrivedResponses(cyc, respBuf[:0])
		for _, r := range respBuf {
			s.cores[r.CoreID].Fill(cyc, r)
		}

		// 2. Requests reach the DRAM controllers (with backpressure).
		if len(s.pending) > 0 {
			kept := s.pending[:0]
			for _, r := range s.pending {
				if !s.mem.Enqueue(cyc, r) {
					kept = append(kept, r)
				}
			}
			s.pending = kept
		}
		reqBuf = s.net.ArrivedRequests(cyc, reqBuf[:0])
		for _, r := range reqBuf {
			if !s.mem.Enqueue(cyc, r) {
				s.pending = append(s.pending, r)
			}
		}

		// 3. DRAM advances; completions head back through the network.
		respBuf = s.mem.Step(cyc, respBuf[:0])
		for _, r := range respBuf {
			s.net.InjectResponse(cyc, r)
		}

		// 4. Cores issue.
		for _, c := range s.cores {
			c.Cycle(cyc)
		}

		// 5. Cores inject MRQ traffic, round-robin, up to the NOC limit.
		s.inject(cyc)

		// 6. Termination.
		if cyc%64 == 0 && s.done() {
			res := s.collect()
			return res, nil
		}
	}
	if s.done() {
		return s.collect(), nil
	}
	return nil, fmt.Errorf("core: %s did not finish within %d cycles",
		s.spec.Name, s.opts.MaxCycles)
}

// pendingLimit throttles NOC injection while the DRAM request buffers are
// rejecting traffic, propagating backpressure to the cores' MRQs instead
// of accumulating an unbounded overflow buffer.
const pendingLimit = 16

func (s *Simulator) inject(cyc uint64) {
	if len(s.pending) >= pendingLimit {
		return
	}
	n := len(s.cores)
	budget := s.cfg.MaxInjectPerCycle()
	idle := 0
	for budget > 0 && idle < n {
		c := s.cores[s.rrCore]
		s.rrCore = (s.rrCore + 1) % n
		r := c.NextSend()
		if r == nil {
			idle++
			continue
		}
		if !s.net.TryInjectRequest(cyc, r) {
			break
		}
		c.PopSend()
		budget--
		idle = 0
	}
}

func (s *Simulator) done() bool {
	if s.disp.next < s.disp.total {
		return false
	}
	for _, c := range s.cores {
		if !c.Idle() {
			return false
		}
	}
	return s.net.InFlight() == 0 && len(s.pending) == 0 && s.mem.Drained()
}

func (s *Simulator) collect() *Result {
	r := &Result{Benchmark: s.spec.Name, Cycles: s.cycle}
	var cs smcore.Stats
	var cacheTotal cache.Stats
	var mrqTotal mrq.Stats
	var lat stats.Latency
	var periods, noPref uint64
	for _, c := range s.cores {
		st := c.Stats()
		cs.Instructions += st.Instructions
		cs.ProgInstructions += st.ProgInstructions
		cs.DemandTransactions += st.DemandTransactions
		cs.PFCacheHitTransactions += st.PFCacheHitTransactions
		cs.PrefetchesGenerated += st.PrefetchesGenerated
		cs.PrefetchesIssued += st.PrefetchesIssued
		cs.DroppedThrottle += st.DroppedThrottle
		cs.DroppedByFilter += st.DroppedByFilter
		cs.LatePrefetches += st.LatePrefetches
		lat.Merge(st.DemandLatency)
		pcs := c.PFCache.Stats()
		cacheTotal.FirstUses += pcs.FirstUses
		cacheTotal.EarlyEvictions += pcs.EarlyEvictions
		ms := c.MRQ.Stats()
		mrqTotal.Merges += ms.Merges
		mrqTotal.Demands += ms.Demands
		mrqTotal.Prefetches += ms.Prefetches
		mrqTotal.Writebacks += ms.Writebacks
		if c.Throt != nil {
			periods += c.Throt.Periods()
			noPref += c.Throt.NoPrefetchPeriods()
		}
		if mt, ok := c.HWP.(*prefetch.MTHWP); ok {
			ms := mt.Stats()
			r.MTHWP.Observations += ms.Observations
			r.MTHWP.PWSAccesses += ms.PWSAccesses
			r.MTHWP.PWSHits += ms.PWSHits
			r.MTHWP.GSHits += ms.GSHits
			r.MTHWP.IPHits += ms.IPHits
			r.MTHWP.Promotions += ms.Promotions
		}
	}
	r.ProgInstructions = cs.ProgInstructions
	r.AllInstructions = cs.Instructions
	r.CPI = stats.SafeDiv(float64(r.Cycles)*float64(s.cfg.NumCores), float64(cs.ProgInstructions))
	r.DemandTransactions = cs.DemandTransactions
	r.PFCacheHits = cs.PFCacheHitTransactions
	r.AvgDemandLatency = lat.Avg()
	r.MaxDemandLatency = lat.Max
	r.PrefetchesGenerated = cs.PrefetchesGenerated
	r.PrefetchesIssued = cs.PrefetchesIssued
	r.UsefulPrefetches = cacheTotal.FirstUses
	r.LatePrefetches = cs.LatePrefetches
	r.EarlyEvictions = cacheTotal.EarlyEvictions
	r.DroppedByThrottle = cs.DroppedThrottle
	r.DroppedByFilter = cs.DroppedByFilter
	r.Accuracy = stats.Ratio(cacheTotal.FirstUses, cs.PrefetchesIssued)
	if r.Accuracy > 1 {
		r.Accuracy = 1
	}
	r.Coverage = stats.Ratio(cs.PFCacheHitTransactions, cs.DemandTransactions)
	r.LateFraction = stats.Ratio(cs.LatePrefetches, cs.PrefetchesIssued)
	r.EarlyRate = stats.Ratio(cacheTotal.EarlyEvictions, cacheTotal.FirstUses)
	r.MergeRatio = stats.Ratio(mrqTotal.Merges, mrqTotal.TotalArrivals())

	ds := s.mem.Stats()
	r.InterCoreMerges = ds.InterCoreMerges
	r.MemTransactions = ds.Demands + ds.Prefetches + ds.Writebacks
	r.BytesTransferred = r.MemTransactions * uint64(s.cfg.BlockBytes)
	r.RowHitRate = stats.Ratio(ds.RowHits, ds.RowHits+ds.RowMisses+ds.RowClosed)
	r.L2Hits, r.L2Misses = ds.L2Hits, ds.L2Misses
	r.ThrottlePeriods = periods
	r.NoPrefetchPeriods = noPref
	return r
}

// Run is the one-shot convenience: build a Simulator and run it.
func Run(o Options) (*Result, error) {
	s, err := New(o)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
