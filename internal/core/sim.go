// Package core assembles the full system and is the library's main entry
// point: it wires SIMT cores (internal/smcore), the interconnect
// (internal/noc) and the DRAM system (internal/dram) into a cycle-level
// GPGPU simulator, applies the software-prefetching transforms and
// hardware-prefetcher/throttle configuration under study, runs a workload
// to completion, and reports the measurements the paper's evaluation is
// built from.
//
// Typical use:
//
//	res, err := core.Run(core.Options{
//	    Workload: workload.ByName("backprop"),
//	    Software: swpref.MTSWP,
//	    Throttle: true,
//	})
//
// All of Figures 8-18 and Tables III/IV are sweeps over these Options.
package core

import (
	"context"
	"fmt"

	"mtprefetch/internal/config"
	"mtprefetch/internal/dram"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/noc"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/smcore"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/throttle"
	"mtprefetch/internal/workload"
)

// Options selects the machine, the workload, and the prefetching
// mechanisms for one simulation.
type Options struct {
	// Config is the machine description; nil selects config.Baseline().
	Config *config.Config
	// Workload is the benchmark to run (required). Use Spec.Scaled to
	// shrink grids for fast runs.
	Workload *workload.Spec
	// Software selects a software-prefetching transform applied to the
	// kernel before the run (swpref.None for the baseline binary).
	Software swpref.Mode
	// SoftwareOptions tunes the transform (distance etc.).
	SoftwareOptions swpref.Options
	// Hardware, when non-nil, is called once per core to build its
	// hardware prefetcher.
	Hardware func() prefetch.Prefetcher
	// Throttle enables the adaptive prefetch-throttling engine.
	Throttle bool
	// PollutionFilter enables the per-core PC-indexed cache pollution
	// filter (Zhuang & Lee, Section X-B) as an alternative harm-control
	// mechanism to throttling.
	PollutionFilter bool
	// PerfectMemory makes all memory operations free (the "PMEM" runs of
	// Tables III/IV).
	PerfectMemory bool
	// MaxCycles caps the simulation (default 500M) so configuration bugs
	// fail loudly instead of hanging.
	MaxCycles uint64
	// WatchdogWindow is the forward-progress window: if no warp
	// instruction retires and no memory fill is delivered for this many
	// cycles, Run aborts with a LivelockError instead of spinning until
	// MaxCycles. Zero selects the default, min(1M, MaxCycles). Must not
	// exceed MaxCycles.
	WatchdogWindow uint64
	// NoWatchdog disables the forward-progress watchdog entirely (for
	// chaos tests that want the raw MaxCycles timeout). Setting it
	// together with a non-zero WatchdogWindow is rejected.
	NoWatchdog bool
	// Checks enables the periodic invariant sweep: MRQ entry accounting,
	// NoC flit conservation, scoreboard release balance, and
	// prefetch-cache line accounting. Off by default — the sweep walks
	// every core's state, so it is for debugging and chaos tests.
	Checks bool
	// CheckEvery is the invariant-sweep period in cycles (default 65536
	// when Checks is set). Non-zero without Checks is rejected.
	CheckEvery uint64
	// NoCycleSkip disables event-driven cycle skipping, forcing the loop
	// to visit every cycle. Results are byte-identical either way — the
	// differential tests in skip_test.go enforce it — so the flag exists
	// for those tests, for benchmarking the machinery itself, and as an
	// escape hatch while debugging NextEvent implementations.
	NoCycleSkip bool
	// Shards partitions the cores into this many contiguous groups that
	// step concurrently between the machine-wide synchronization points
	// of each visited cycle (see shard.go). 0 or 1 keeps the fully serial
	// loop; values above the core count are clamped to it; negative
	// values are rejected. Results and every observability stream are
	// byte-identical at any shard count — the differential tests in
	// shard_test.go enforce it — so the setting only trades wall clock
	// for host cores. A fault injector that does not implement ShardAware
	// forces serial stepping, like a non-EventSource injector disables
	// cycle skipping.
	Shards int
	// Inject, when non-nil, perturbs the run for chaos testing; see
	// FaultInjector. An injector that does not also implement EventSource
	// disables cycle skipping for the run.
	Inject FaultInjector
	// Ctx, when non-nil, bounds the run in wall-clock terms: Run polls
	// the context at a fixed cycle cadence and aborts with a
	// *CanceledError (wrapping the context cause) once it is done. This
	// complements the cycle-domain watchdog — a deadline context caps
	// elapsed time regardless of how fast cycles advance, and a canceled
	// context is how the harness drains in-flight runs at the next
	// barrier. Nil means the run can only end through the simulation
	// itself (completion, MaxCycles, watchdog, invariants) and the poll
	// costs nothing.
	Ctx context.Context
	// Obs attaches an observability bundle (epoch sampler and/or event
	// tracer; see obs.New). Nil runs with just the internal metrics
	// registry, which costs nothing on the simulation's hot path.
	Obs *obs.Observer
}

// Result is the measurement bundle of one simulation.
type Result struct {
	Benchmark string
	Cycles    uint64

	// Instruction counts are warp-instructions summed over all cores.
	ProgInstructions uint64  // the program's own instructions
	AllInstructions  uint64  // including software prefetch instructions
	CPI              float64 // cycles x cores / ProgInstructions

	// Demand-side memory behaviour.
	DemandTransactions uint64
	PFCacheHits        uint64  // demand transactions served by the prefetch cache
	AvgDemandLatency   float64 // cycles, for demands that went to memory
	MaxDemandLatency   uint64
	P50DemandLatency   float64 // distribution percentiles (log2-bucketed)
	P95DemandLatency   float64
	P99DemandLatency   float64

	// Prefetch behaviour.
	PrefetchesGenerated uint64
	PrefetchesIssued    uint64
	UsefulPrefetches    uint64
	LatePrefetches      uint64
	EarlyEvictions      uint64
	DroppedByThrottle   uint64
	DroppedByFilter     uint64
	Accuracy            float64 // useful / issued
	Coverage            float64 // prefetch-cache hits / demand transactions
	LateFraction        float64 // late / issued
	EarlyRate           float64 // early evictions / useful (Eq. 5)

	// Memory-system behaviour.
	MergeRatio       float64 // intra-core merges / MRQ arrivals (Eq. 6)
	InterCoreMerges  uint64
	MemTransactions  uint64 // DRAM accesses actually serviced
	BytesTransferred uint64
	RowHitRate       float64
	L2Hits           uint64 // optional shared L2 (0 when disabled)
	L2Misses         uint64

	// Throttle behaviour.
	ThrottlePeriods   uint64
	NoPrefetchPeriods uint64

	// MT-HWP table behaviour, populated when the hardware prefetcher is
	// an MT-HWP instance (Section VIII-B).
	MTHWP prefetch.MTHWPStats
}

// Speedup is the conventional cycles ratio: baseline.Cycles / r.Cycles.
func (r *Result) Speedup(baseline *Result) float64 {
	return stats.SafeDiv(float64(baseline.Cycles), float64(r.Cycles))
}

// dispatcher deals blocks to cores in order.
type dispatcher struct {
	next, total int
}

func (d *dispatcher) NextBlock() (int, bool) {
	if d.next >= d.total {
		return 0, false
	}
	b := d.next
	d.next++
	return b, true
}

// Simulator is the assembled machine; use New + Run, or core.Run for the
// one-shot form.
type Simulator struct {
	cfg   *config.Config
	spec  *workload.Spec
	cores []*smcore.Core
	net   *noc.Network
	mem   *dram.Memory
	disp  *dispatcher
	opts  Options

	pending   []*memreq.Request // DRAM backpressure buffer
	rrCore    int
	injBudget int          // cached cfg.MaxInjectPerCycle()
	pool      *memreq.Pool // request free-list shared by cores and DRAM

	// Event-driven cycle skipping (see Run and nextEventCycle).
	skipOK  bool        // skipping enabled for this run
	injEvts EventSource // non-nil when the injector is skip-aware
	skipped uint64      // cycles never visited

	// Intra-run core sharding (see shard.go).
	shards     int             // effective shard count (1: serial stepping)
	shardPool  *shardPool      // non-nil once Run starts with shards > 1
	corePools  []*memreq.Pool  // per-core free-lists when sharded (else nil)
	pfShards   []*obs.PFReport // per-core attribution shards when sharded (else nil)
	spanShards []*obs.SpanSet  // per-core span shards when sharded (else nil)

	reg     *obs.Registry // always non-nil; end-of-run aggregation reads it
	sampler *obs.Sampler  // nil unless Options.Obs enabled sampling
	pfrep   *obs.PFReport // nil unless Options.Obs enabled attribution
	cpi     *obs.CPIStack // nil unless Options.Obs enabled cycle accounting
	spans   *obs.SpanSet  // nil unless Options.Obs enabled span tracing
	tracer  *obs.Tracer   // nil unless Options.Obs enabled tracing

	tolBuf []obs.Tolerance // scratch for epoch tolerance snapshots

	// Robustness state (see robust.go).
	inj         FaultInjector
	runFault    RunFaulter      // non-nil when the injector can abort the run
	ctx         context.Context // nil unless Options.Ctx bounded the run
	nextCtx     uint64          // next cycle the cancellation poll is due
	watchWindow uint64          // 0 disables the watchdog
	nextWatch   uint64
	fills       uint64 // memory fills delivered to cores
	lastInstr   uint64 // watchdog: instructions at last window boundary
	lastFills   uint64 // watchdog: fills at last window boundary
	checkEvery  uint64 // 0 disables the invariant sweep
	nextCheck   uint64

	cycle uint64
}

// Registry exposes the simulator's metrics registry, for inspection and
// consistency tests.
func (s *Simulator) Registry() *obs.Registry { return s.reg }

// defaultWatchdogWindow is the forward-progress window when the caller
// leaves Options.WatchdogWindow zero; it is clamped to MaxCycles so
// short capped runs keep their plain timeout semantics.
const defaultWatchdogWindow = 1_000_000

// defaultCheckEvery is the invariant-sweep period when Options.Checks
// is set without an explicit CheckEvery.
const defaultCheckEvery = 65_536

// ctxPollEvery is the cancellation-poll cadence in visited cycles when
// Options.Ctx is set. It is an observer deadline like the watchdog
// window: it clamps event-driven skips (so a mostly-idle run still
// notices cancellation promptly) but visiting the poll cycle is a
// semantic no-op, keeping results byte-identical whether or not a
// context is attached — unless, of course, the context fires.
const ctxPollEvery = 4096

// New builds a simulator; see Options. Rejected options are reported as
// *OptionError with the offending field named.
func New(o Options) (*Simulator, error) {
	if o.Workload == nil {
		return nil, &OptionError{Field: "Workload", Reason: "is required"}
	}
	if o.Config == nil {
		o.Config = config.Baseline()
	}
	if err := o.Config.Validate(); err != nil {
		return nil, &OptionError{Field: "Config", Err: err}
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 500_000_000
	}
	if o.NoWatchdog && o.WatchdogWindow > 0 {
		return nil, &OptionError{Field: "WatchdogWindow",
			Reason: "set together with NoWatchdog; pick one"}
	}
	if o.WatchdogWindow > o.MaxCycles {
		return nil, &OptionError{Field: "WatchdogWindow",
			Reason: fmt.Sprintf("(%d) exceeds MaxCycles (%d): the watchdog could never fire", o.WatchdogWindow, o.MaxCycles)}
	}
	if o.CheckEvery > 0 && !o.Checks {
		return nil, &OptionError{Field: "CheckEvery",
			Reason: "set without Checks; invariant sweeps are opt-in"}
	}
	if o.Shards < 0 {
		return nil, &OptionError{Field: "Shards",
			Reason: fmt.Sprintf("is negative (%d); use 0 or 1 for serial stepping", o.Shards)}
	}
	if o.Checks && o.CheckEvery == 0 {
		o.CheckEvery = defaultCheckEvery
	}
	spec := o.Workload
	if err := spec.Validate(); err != nil {
		return nil, &OptionError{Field: "Workload", Err: err}
	}
	spec, _, err := swpref.Apply(spec, o.Software, o.SoftwareOptions)
	if err != nil {
		return nil, &OptionError{Field: "Software", Err: err}
	}

	cfg := o.Config
	s := &Simulator{
		cfg:  cfg,
		spec: spec,
		net:  noc.New(cfg.NOCLatency, cfg.MaxInjectPerCycle()),
		mem: dram.New(dram.Config{
			Channels:     cfg.DRAMChannels,
			Banks:        cfg.DRAMBanks,
			RowBytes:     cfg.DRAMRowBytes,
			BlockBytes:   cfg.BlockBytes,
			QueueSize:    cfg.DRAMQueueSize,
			TCL:          cfg.DRAMCyclesToCore(cfg.DRAMtCL),
			TRCD:         cfg.DRAMCyclesToCore(cfg.DRAMtRCD),
			TRP:          cfg.DRAMCyclesToCore(cfg.DRAMtRP),
			BusCycles:    cfg.BusCyclesBlock,
			Overhead:     cfg.DRAMOverhead,
			AgePromote:   cfg.DRAMAgePromote,
			L2Bytes:      cfg.L2Bytes,
			L2Ways:       cfg.L2Ways,
			L2HitLatency: cfg.L2HitLatency,
		}),
		disp: &dispatcher{total: spec.Blocks},
		opts: o,
		inj:  o.Inject,
		pool: memreq.NewPool(),
	}
	s.injBudget = cfg.MaxInjectPerCycle()
	s.skipOK = !o.NoCycleSkip
	if o.Inject != nil {
		if es, ok := o.Inject.(EventSource); ok {
			s.injEvts = es
		} else {
			s.skipOK = false
		}
		if rf, ok := o.Inject.(RunFaulter); ok {
			s.runFault = rf
		}
	}
	s.ctx = o.Ctx
	s.shards = o.Shards
	if s.shards < 2 {
		s.shards = 1
	}
	if s.shards > cfg.NumCores {
		s.shards = cfg.NumCores
	}
	if o.Inject != nil {
		// StallCore is called from inside the stepping phase, so an
		// injector must promise shard-safety or the run stays serial.
		if _, ok := o.Inject.(ShardAware); !ok {
			s.shards = 1
		}
	}
	if s.shards > 1 {
		// Each core issues from a private free-list so concurrent shards
		// never share one; the serial response phase recycles into the
		// originating core's pool (putResponse). DRAM gets no pool —
		// nothing would ever drain the writebacks it retires into one.
		s.corePools = make([]*memreq.Pool, cfg.NumCores)
		for i := range s.corePools {
			s.corePools[i] = memreq.NewPool()
			s.corePools[i].Prime(cfg.MRQSize)
		}
	} else {
		// The pool's high-water mark is the machine's in-flight request
		// capacity — every core's MRQ full at once — so priming to it
		// replaces the warm-up's one-allocation-per-live-request ramp
		// with a single arena.
		s.pool.Prime(cfg.NumCores * cfg.MRQSize)
		s.mem.SetPool(s.pool)
	}
	if !o.NoWatchdog {
		s.watchWindow = o.WatchdogWindow
		if s.watchWindow == 0 {
			s.watchWindow = defaultWatchdogWindow
			if s.watchWindow > o.MaxCycles {
				s.watchWindow = o.MaxCycles
			}
		}
		s.nextWatch = s.watchWindow
	}
	if o.Checks {
		s.checkEvery = o.CheckEvery
		s.nextCheck = s.checkEvery
	}
	for i := 0; i < cfg.NumCores; i++ {
		var hwp prefetch.Prefetcher
		if o.Hardware != nil {
			hwp = o.Hardware()
		}
		var filter *prefetch.PollutionFilter
		if o.PollutionFilter {
			filter = prefetch.NewPollutionFilter(0)
		}
		var eng *throttle.Engine
		if o.Throttle {
			eng = throttle.New(throttle.Config{
				EarlyHigh:  cfg.EarlyHighThresh,
				EarlyLow:   cfg.EarlyLowThresh,
				MergeHigh:  cfg.MergeHighThresh,
				InitDegree: cfg.ThrottleInitDegree,
			})
		}
		c, err := smcore.New(smcore.Options{
			ID:         i,
			Config:     cfg,
			Spec:       spec,
			Blocks:     s.disp,
			HWP:        hwp,
			Throttle:   eng,
			Filter:     filter,
			PerfectMem: o.PerfectMemory,
			Pool:       s.corePool(i),
		})
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}

	// Observability: every component registers its counters; end-of-run
	// aggregation (collect) reads the registry, so the registry always
	// exists even without Options.Obs. The sampler and tracer stay nil
	// unless requested — their call sites are nil-guarded fast paths.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if o.Obs != nil {
		if o.Obs.Registry != nil {
			reg = o.Obs.Registry
		}
		s.sampler = o.Obs.Sampler
		tracer = o.Obs.Tracer
		s.pfrep = o.Obs.PF
		s.cpi = o.Obs.CPI
		s.spans = o.Obs.Spans
	}
	s.reg = reg
	s.tracer = tracer
	if s.pfrep != nil && s.shards > 1 {
		// Attribution is recorded from inside the stepping phase, so each
		// core gets a private shard; collect merges them into s.pfrep.
		s.pfShards = make([]*obs.PFReport, len(s.cores))
		for i := range s.pfShards {
			s.pfShards[i] = obs.NewPFReport()
		}
	}
	if s.spans != nil && s.shards > 1 {
		// Span starts and MRQ-level terminals are recorded from inside the
		// stepping phase, so each core gets a private shard sharing the
		// run's sampling divisor; collect merges them in core order.
		s.spanShards = make([]*obs.SpanSet, len(s.cores))
		for i := range s.spanShards {
			s.spanShards[i] = s.spans.NewShard()
		}
	}
	for i, c := range s.cores {
		// Cycle accounting attaches before Observe so the per-bucket
		// registry counters are registered.
		c.AttachCPI(s.cpi.Core(i))
		c.Observe(reg, tracer)
		c.AttachPFReport(s.corePF(i))
		c.AttachSpans(s.coreSpans(i))
	}
	s.mem.Register(reg, obs.Labels{Core: obs.CoreGlobal, Component: "dram"})
	s.net.Register(reg, obs.Labels{Core: obs.CoreGlobal, Component: "noc"})
	reg.Counter("core.cycles_skipped", obs.Labels{Core: obs.CoreGlobal, Component: "core"},
		func() uint64 { return s.skipped })
	s.sampler.Define(DefaultSeries()...)
	return s, nil
}

// corePool returns the free-list core i issues from: the shared pool in
// serial runs, the core's private pool under sharding.
func (s *Simulator) corePool(i int) *memreq.Pool {
	if s.corePools != nil {
		return s.corePools[i]
	}
	return s.pool
}

// corePF returns the attribution report core i records into: the run's
// report directly in serial runs, the core's private shard otherwise.
func (s *Simulator) corePF(i int) *obs.PFReport {
	if s.pfShards != nil {
		return s.pfShards[i]
	}
	return s.pfrep
}

// coreSpans returns the span set core i records into: the run's set
// directly in serial runs, the core's private shard otherwise.
func (s *Simulator) coreSpans(i int) *obs.SpanSet {
	if s.spanShards != nil {
		return s.spanShards[i]
	}
	return s.spans
}

// putResponse recycles one delivered response into the pool its core
// issues from, so per-core free-lists stay balanced under sharding.
func (s *Simulator) putResponse(r *memreq.Request) {
	if s.corePools != nil {
		s.corePools[r.CoreID].Put(r)
		return
	}
	s.pool.Put(r)
}

// SkippedCycles reports how many cycles event-driven skipping never
// visited; Cycles in the Result still counts them (simulated time is
// identical with skipping on or off — only wall-clock work changes).
func (s *Simulator) SkippedCycles() uint64 { return s.skipped }

// Run advances the machine until the grid completes and the memory system
// drains, then returns the measurements.
//
// The loop is event-driven: after each visited cycle it computes the
// earliest future cycle at which any component can change state or any
// observer deadline falls due (nextEventCycle) and jumps s.cycle straight
// there. Skipped cycles are provably no-ops — every per-cycle step below
// degenerates to a cheap comparison when nothing is due — so results are
// byte-identical with skipping on or off; Options.NoCycleSkip and the
// differential tests in skip_test.go exist to keep that true.
func (s *Simulator) Run() (*Result, error) {
	if s.shards > 1 && s.shardPool == nil {
		s.shardPool = newShardPool(s, s.shards)
		s.shardPool.start()
		// Clearing the pool keeps Run restartable: the workers exit on
		// shutdown, so a retained pool would hang a later call's barrier.
		defer func() { s.shardPool.shutdown(); s.shardPool = nil }()
	}
	var respBuf, reqBuf []*memreq.Request
	for ; s.cycle < s.opts.MaxCycles; s.cycle++ {
		cyc := s.cycle

		// 1. Memory responses reach their cores (optionally perturbed by
		// the fault injector).
		respBuf = s.net.ArrivedResponses(cyc, respBuf[:0])
		for _, r := range respBuf {
			r.StampSpan(memreq.SpanNoCRespDeliver, cyc)
			if s.inj != nil {
				switch s.inj.OnResponse(cyc, r) {
				case DropResponse:
					// Deliberately leaked: the MRQ still tracks r, so it
					// must not be recycled. A sampled span still terminates
					// here so conservation holds under fault injection.
					s.coreSpans(r.CoreID).Finish(r, cyc, memreq.TermDropped)
					continue
				case DropCompletion:
					s.coreSpans(r.CoreID).Finish(r, cyc, memreq.TermDropped)
					s.cores[r.CoreID].DropFill(r)
					continue
				}
			}
			s.cores[r.CoreID].Fill(cyc, r)
			s.fills++
			// Each response object is delivered exactly once and nothing
			// retains it past Fill, so its lifecycle ends here.
			s.putResponse(r)
		}

		// 2. Requests reach the DRAM controllers (with backpressure).
		if len(s.pending) > 0 {
			kept := s.pending[:0]
			for _, r := range s.pending {
				if !s.mem.Enqueue(cyc, r) {
					kept = append(kept, r)
				}
			}
			s.pending = kept
		}
		reqBuf = s.net.ArrivedRequests(cyc, reqBuf[:0])
		for _, r := range reqBuf {
			// Delivery is stamped here, once, even when DRAM backpressure
			// parks the request in pending — retries are queueing time, not
			// network time, and land in the span's dram_queue stage.
			r.StampSpan(memreq.SpanNoCReqDeliver, cyc)
			if !s.mem.Enqueue(cyc, r) {
				s.pending = append(s.pending, r)
			}
		}

		// 3. DRAM advances; completions head back through the network.
		respBuf = s.mem.Step(cyc, respBuf[:0])
		for _, r := range respBuf {
			r.StampSpan(memreq.SpanNoCRespInject, cyc)
			s.net.InjectResponse(cyc, r)
		}

		// 4. Cores issue — serially, or sharded across the worker pool
		// with a barrier before phase 5 (shard.go; byte-identical).
		if s.shardPool != nil {
			if err := s.stepSharded(cyc); err != nil {
				return nil, err
			}
		} else {
			for _, c := range s.cores {
				if s.inj != nil && s.inj.StallCore(cyc, c.ID()) {
					// The suppressed cycle still gets a bucket (throttled) so
					// cycle-accounting conservation holds under fault injection.
					c.AccountExternalStall(1)
					continue
				}
				if err := c.Cycle(cyc); err != nil {
					return nil, err
				}
			}
		}

		// 5. Cores inject MRQ traffic, round-robin, up to the NOC limit.
		s.inject(cyc)

		// 6. Epoch sampling (one comparison per cycle when enabled), for
		// both the metrics sampler and the CPI-stack epoch series.
		if s.sampler != nil {
			s.sampler.Tick(cyc)
		}
		if s.cpi != nil && cyc >= s.cpi.NextTick() {
			s.cpi.CloseEpoch(cyc, s.tolerances(cyc), s.tracer)
		}

		// 7. Robustness: chaos run faults, the cancellation poll, the
		// invariant sweep, and the forward-progress watchdog.
		if s.runFault != nil {
			if err := s.runFault.RunFault(cyc); err != nil {
				return nil, err
			}
		}
		if s.ctx != nil && cyc >= s.nextCtx {
			if err := s.ctx.Err(); err != nil {
				return nil, &CanceledError{Benchmark: s.spec.Name, Cycle: cyc, Cause: err}
			}
			s.nextCtx = cyc + ctxPollEvery
		}
		if s.checkEvery != 0 && cyc >= s.nextCheck {
			if err := s.checkInvariants(cyc); err != nil {
				return nil, err
			}
			s.nextCheck = cyc + s.checkEvery
		}
		if s.watchWindow != 0 && cyc >= s.nextWatch {
			if err := s.checkProgress(cyc); err != nil {
				return nil, err
			}
			s.nextWatch = cyc + s.watchWindow
		}

		// 8. Termination — exact: done() only changes on visited cycles
		// and short-circuits on the first busy component, so checking it
		// every cycle is both cheap and finish-event precise.
		if s.done() {
			res := s.collect()
			if err := s.checkPFConservation(); err != nil {
				return nil, err
			}
			// Cycles 0..s.cycle inclusive were executed on this exit path.
			if err := s.checkCPIConservation(s.cycle + 1); err != nil {
				return nil, err
			}
			if err := s.checkSpanConservation(s.cycle, true); err != nil {
				return nil, err
			}
			return res, nil
		}

		// 9. Event-driven skip: jump to the next cycle anything can
		// happen. s.cycle lands one before the target so the loop
		// increment visits it.
		if s.skipOK {
			if target := s.nextEventCycle(cyc); target > cyc+1 {
				if target > s.opts.MaxCycles {
					target = s.opts.MaxCycles
				}
				if target > cyc+1 {
					if s.cpi != nil {
						// Bulk-attribute the span the per-cycle path will
						// never visit; the cores' state is frozen across it,
						// so the attribution is exact (smcore.AccountSpan).
						for _, c := range s.cores {
							c.AccountSpan(cyc+1, target)
						}
					}
					s.skipped += target - (cyc + 1)
					s.cycle = target - 1
				}
			}
		}
	}
	if s.done() {
		res := s.collect()
		if err := s.checkPFConservation(); err != nil {
			return nil, err
		}
		// The loop exited at the cap: cycles 0..s.cycle-1 were executed.
		if err := s.checkCPIConservation(s.cycle); err != nil {
			return nil, err
		}
		if err := s.checkSpanConservation(s.cycle, true); err != nil {
			return nil, err
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: %s did not finish within %d cycles",
		s.spec.Name, s.opts.MaxCycles)
}

// pendingLimit throttles NOC injection while the DRAM request buffers are
// rejecting traffic, propagating backpressure to the cores' MRQs instead
// of accumulating an unbounded overflow buffer.
const pendingLimit = 16

func (s *Simulator) inject(cyc uint64) {
	if len(s.pending) >= pendingLimit {
		return
	}
	n := len(s.cores)
	budget := s.injBudget
	idle := 0
	for budget > 0 && idle < n {
		c := s.cores[s.rrCore]
		if s.rrCore++; s.rrCore == n {
			s.rrCore = 0
		}
		r := c.NextSend()
		if r == nil {
			idle++
			continue
		}
		if !s.net.TryInjectRequest(cyc, r) {
			break
		}
		// The MRQ hands the request to the network in the same visited
		// cycle, so dequeue and inject coincide; writebacks are never
		// sampled and stamp as no-ops.
		r.StampSpan(memreq.SpanMRQDequeue, cyc)
		r.StampSpan(memreq.SpanNoCReqInject, cyc)
		c.PopSend()
		budget--
		idle = 0
	}
}

// nextEventCycle computes the earliest future cycle at which any
// component can act or any observer deadline falls due. Every term is a
// lower bound on its component's next state change: visiting a cycle
// where nothing happens is a harmless no-op, but skipping one where
// something would have happened breaks byte-identity, so all components
// answer conservatively and Run re-evaluates after every visited cycle.
// Any term at or below cyc+1 means no cycle can be skipped, so the scan
// bails out the moment one is found — on dense (non-skippable) cycles
// the whole computation is a few comparisons, which keeps the skip
// machinery near-free when it cannot win.
func (s *Simulator) nextEventCycle(cyc uint64) uint64 {
	if len(s.pending) > 0 {
		return cyc + 1 // DRAM backpressure retries every cycle
	}
	floor := cyc + 1
	next := s.mem.NextEvent(cyc)
	if next <= floor {
		return next
	}
	for _, c := range s.cores {
		if t := c.NextEvent(cyc); t < next {
			if t <= floor {
				return t
			}
			next = t
		}
		if t := c.MRQ.NextEvent(cyc); t < next {
			return t // a sendable entry always reports cyc+1
		}
	}
	if t := s.net.NextEvent(); t < next {
		if t <= floor {
			return t
		}
		next = t
	}
	if t := s.sampler.NextTick(); t < next {
		next = t
	}
	if t := s.cpi.NextTick(); t < next {
		next = t
	}
	if s.checkEvery != 0 && s.nextCheck < next {
		next = s.nextCheck
	}
	if s.watchWindow != 0 && s.nextWatch < next {
		next = s.nextWatch
	}
	if s.ctx != nil && s.nextCtx < next {
		next = s.nextCtx
	}
	if s.injEvts != nil {
		if t := s.injEvts.NextEvent(cyc); t < next {
			next = t
		}
	}
	return next
}

func (s *Simulator) done() bool {
	if s.disp.next < s.disp.total {
		return false
	}
	for _, c := range s.cores {
		if !c.Idle() {
			return false
		}
	}
	return s.net.InFlight() == 0 && len(s.pending) == 0 && s.mem.Drained()
}

// PFReport exposes the run's prefetch attribution ledger, or nil when
// attribution was not enabled via Options.Obs.
func (s *Simulator) PFReport() *obs.PFReport { return s.pfrep }

// CPIStack exposes the run's cycle-accounting state, or nil when cycle
// accounting was not enabled via Options.Obs.
func (s *Simulator) CPIStack() *obs.CPIStack { return s.cpi }

// Spans exposes the run's span aggregation, or nil when span tracing was
// not enabled via Options.Obs.
func (s *Simulator) Spans() *obs.SpanSet { return s.spans }

// tolerances snapshots every core's latency-tolerance signals into the
// reusable scratch buffer (CPIStack.CloseEpoch copies what it keeps).
func (s *Simulator) tolerances(cyc uint64) []obs.Tolerance {
	s.tolBuf = s.tolBuf[:0]
	for _, c := range s.cores {
		s.tolBuf = append(s.tolBuf, c.Tolerance(cyc))
	}
	return s.tolBuf
}

// checkCPIConservation verifies (Options.Checks only) that every
// executed cycle was attributed to exactly one CPI-stack bucket on every
// core, skipped spans included.
func (s *Simulator) checkCPIConservation(executed uint64) error {
	if s.cpi == nil || !s.opts.Checks {
		return nil
	}
	if ie := s.cpi.CheckConservation(s.cycle, executed); ie != nil {
		return ie
	}
	return nil
}

// checkSpanConservation verifies (Options.Checks only), after collect has
// folded the per-core shards, that every sampled request reached exactly
// one terminal and every recorded span was well-formed. drained marks a
// fully drained machine, where started must equal finished; both Run
// exits require done(), so they always pass true.
func (s *Simulator) checkSpanConservation(cycle uint64, drained bool) error {
	if s.spans == nil || !s.opts.Checks {
		return nil
	}
	if ie := s.spans.CheckConservation(cycle, drained); ie != nil {
		return ie
	}
	return nil
}

// checkPFConservation verifies, after the attribution ledger is closed
// by collect, that every generated prefetch received exactly one fate
// (Options.Checks only). A double- or never-classified prefetch breaks
// the identity and aborts the run like any other invariant violation.
func (s *Simulator) checkPFConservation() error {
	if s.pfrep == nil || !s.opts.Checks {
		return nil
	}
	if ie := s.pfrep.CheckConservation(s.cycle); ie != nil {
		return ie
	}
	return nil
}

func (s *Simulator) collect() *Result {
	s.sampler.Finish(s.cycle)
	if s.cpi != nil {
		s.cpi.Finish(s.cycle, s.tolerances(s.cycle), s.tracer)
	}
	if s.pfrep != nil {
		// Close the attribution ledger: still-resident unused lines get
		// their terminal fate, and the coverage denominator is fixed.
		for _, c := range s.cores {
			c.PFCache.DrainUnused()
		}
		// Sharded runs recorded into per-core shards; fold them into the
		// run's report in core order (the order is invisible: counters
		// are additive and the outputs sort their keys).
		for _, sh := range s.pfShards {
			s.pfrep.MergeFrom(sh)
		}
		s.pfrep.SetDemandTransactions(s.reg.Sum("smcore.demand_transactions"))
	}
	if s.spans != nil {
		// Fold per-core span shards in core order; the order is invisible
		// because records sort by ID and histograms are additive.
		for _, sh := range s.spanShards {
			s.spans.MergeFrom(sh)
		}
	}
	reg := s.reg
	r := &Result{Benchmark: s.spec.Name, Cycles: s.cycle}
	r.ProgInstructions = reg.Sum("smcore.prog_instructions")
	r.AllInstructions = reg.Sum("smcore.instructions")
	r.CPI = stats.SafeDiv(float64(r.Cycles)*float64(s.cfg.NumCores), float64(r.ProgInstructions))
	r.DemandTransactions = reg.Sum("smcore.demand_transactions")
	r.PFCacheHits = reg.Sum("smcore.pfcache_hit_transactions")
	lat := reg.MergedHistogram("smcore.demand_latency")
	r.AvgDemandLatency = lat.Avg()
	r.MaxDemandLatency = lat.Max
	r.P50DemandLatency = lat.Percentile(50)
	r.P95DemandLatency = lat.Percentile(95)
	r.P99DemandLatency = lat.Percentile(99)
	r.PrefetchesGenerated = reg.Sum("smcore.prefetches_generated")
	r.PrefetchesIssued = reg.Sum("smcore.prefetches_issued")
	r.UsefulPrefetches = reg.Sum("pfcache.first_uses")
	r.LatePrefetches = reg.Sum("smcore.late_prefetches")
	r.EarlyEvictions = reg.Sum("pfcache.early_evictions")
	r.DroppedByThrottle = reg.Sum("smcore.dropped_throttle")
	r.DroppedByFilter = reg.Sum("smcore.dropped_filter")
	r.Accuracy = stats.Ratio(r.UsefulPrefetches, r.PrefetchesIssued)
	if r.Accuracy > 1 {
		r.Accuracy = 1
	}
	r.Coverage = stats.Ratio(r.PFCacheHits, r.DemandTransactions)
	r.LateFraction = stats.Ratio(r.LatePrefetches, r.PrefetchesIssued)
	r.EarlyRate = stats.Ratio(r.EarlyEvictions, r.UsefulPrefetches)
	merges := reg.Sum("mrq.merges")
	arrivals := reg.Sum("mrq.demands") + reg.Sum("mrq.prefetches") +
		reg.Sum("mrq.writebacks") + merges
	r.MergeRatio = stats.Ratio(merges, arrivals)

	r.InterCoreMerges = reg.Sum("dram.inter_core_merges")
	r.MemTransactions = reg.Sum("dram.demands") + reg.Sum("dram.prefetches") +
		reg.Sum("dram.writebacks")
	r.BytesTransferred = r.MemTransactions * uint64(s.cfg.BlockBytes)
	rowHits := reg.Sum("dram.row_hits")
	r.RowHitRate = stats.Ratio(rowHits,
		rowHits+reg.Sum("dram.row_misses")+reg.Sum("dram.row_closed"))
	r.L2Hits = reg.Sum("dram.l2_hits")
	r.L2Misses = reg.Sum("dram.l2_misses")
	r.ThrottlePeriods = reg.Sum("throttle.periods")
	r.NoPrefetchPeriods = reg.Sum("throttle.no_prefetch_periods")
	r.MTHWP = prefetch.MTHWPStats{
		Observations: reg.Sum("mthwp.observations"),
		PWSAccesses:  reg.Sum("mthwp.pws_accesses"),
		PWSHits:      reg.Sum("mthwp.pws_hits"),
		GSHits:       reg.Sum("mthwp.gs_hits"),
		IPHits:       reg.Sum("mthwp.ip_hits"),
		Promotions:   reg.Sum("mthwp.promotions"),
	}
	return r
}

// Run is the one-shot convenience: build a Simulator and run it.
func Run(o Options) (*Result, error) {
	s, err := New(o)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
