package core

import "mtprefetch/internal/obs"

// DefaultSeries defines the epoch time series sampled by the observability
// layer (Options.Obs with a SampleEvery period). Each series is derived
// from registry counters summed machine-wide, so per-epoch values are
// deltas over the epoch, not cumulative averages:
//
//	ipc                  warp-instructions retired per cycle (whole machine)
//	mpki                 demand transactions that missed the prefetch cache,
//	                     per 1000 program instructions
//	prefetch_accuracy    first uses per issued prefetch (Fig. 2 metric)
//	prefetch_coverage    demand transactions served by the prefetch cache
//	prefetch_late_fraction  issued prefetches a demand merged into (timeliness)
//	merge_ratio          intra-core MRQ merges per arrival (Eq. 6)
//	early_eviction_rate  early evictions per useful prefetch (Eq. 5)
//	throttle_degree      mean throttle degree across cores (0 when disabled)
//	dram_row_hit_rate    row-buffer hits per DRAM access
//	mshr_occupancy       outstanding MRQ entries, summed across cores
func DefaultSeries() []obs.SeriesDef {
	return []obs.SeriesDef{
		{Name: "ipc", Kind: obs.SeriesPerCycle,
			Num: []string{"smcore.prog_instructions"}},
		{Name: "mpki", Kind: obs.SeriesRatio, Scale: 1000,
			Num: []string{"smcore.demand_transactions"},
			Sub: []string{"smcore.pfcache_hit_transactions"},
			Den: []string{"smcore.prog_instructions"}},
		{Name: "prefetch_accuracy", Kind: obs.SeriesRatio,
			Num: []string{"pfcache.first_uses"},
			Den: []string{"smcore.prefetches_issued"}},
		{Name: "prefetch_coverage", Kind: obs.SeriesRatio,
			Num: []string{"smcore.pfcache_hit_transactions"},
			Den: []string{"smcore.demand_transactions"}},
		{Name: "prefetch_late_fraction", Kind: obs.SeriesRatio,
			Num: []string{"smcore.late_prefetches"},
			Den: []string{"smcore.prefetches_issued"}},
		{Name: "merge_ratio", Kind: obs.SeriesRatio,
			Num: []string{"mrq.merges"},
			Den: []string{"mrq.demands", "mrq.prefetches", "mrq.writebacks", "mrq.merges"}},
		{Name: "early_eviction_rate", Kind: obs.SeriesRatio,
			Num: []string{"pfcache.early_evictions"},
			Den: []string{"pfcache.first_uses"}},
		{Name: "throttle_degree", Kind: obs.SeriesGaugeMean,
			Num: []string{"throttle.degree"}},
		{Name: "dram_row_hit_rate", Kind: obs.SeriesRatio,
			Num: []string{"dram.row_hits"},
			Den: []string{"dram.row_hits", "dram.row_misses", "dram.row_closed"}},
		{Name: "mshr_occupancy", Kind: obs.SeriesGaugeSum,
			Num: []string{"mrq.outstanding"}},
	}
}
