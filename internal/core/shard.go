package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"mtprefetch/internal/smcore"
)

// This file implements deterministic intra-run core sharding: phase 4 of
// the Run loop ("cores issue") partitioned into Options.Shards contiguous
// core ranges that step concurrently between the machine-wide
// synchronization points of one visited cycle. Everything before the
// stepping phase (response delivery, DRAM) and after it (NoC injection,
// sampling, watchdog, termination, event skipping) stays serial, so the
// only state a shard can touch concurrently is what one core's Cycle
// reaches. Per-core state (MRQ, prefetch cache, prefetcher, throttle
// engine, CPI buckets, stats) is private by construction; the four
// cross-core touch points are handled explicitly:
//
//   - the shared block dispatcher: launches are deferred during the
//     stepping phase and flushed in core-index order at the barrier
//     (smcore.DeferLaunches/FlushLaunches), which consumes the source in
//     exactly the serial loop's order — one issue per core per cycle
//     means at most one block completion per core per cycle;
//   - the request free-list: each core gets a private pool, and the
//     serial response phase recycles into the originating core's pool;
//   - the attribution ledger: each core records into a private PFReport
//     shard, merged at collection (the sorted JSONL output makes the
//     merge order invisible);
//   - the event tracer: emissions are staged per track during the phase
//     and replayed in track order at the barrier (obs.Tracer.BeginStage),
//     reproducing the serial emission order.
//
// Error and panic reduction is by shard index — shards hold contiguous
// ascending core ranges, so the lowest-indexed failing shard holds the
// lowest failing core, the one the serial loop would have aborted on.
// Results, epoch/pfreport/cpistack JSONL, and trace streams are
// byte-identical at any shard count; shard_test.go enforces it.

// shardWorker is one shard's contiguous slice of cores plus its
// per-round outcome, read by the coordinator after the barrier.
type shardWorker struct {
	cores []*smcore.Core
	err   error // first in-shard core error, in core-index order

	panicked   bool
	panicVal   any
	panicStack []byte
}

// shardPool steps the cores across persistent worker goroutines, one per
// shard beyond the first; the coordinator (Run's goroutine) steps shard 0
// itself. Synchronization is two atomics: gen released the workers into a
// round (its bump publishes cycle and all pre-step simulator state), and
// pending counts unfinished shards (its decrement publishes each shard's
// cores and outcome back to the coordinator). A visited cycle costs well
// under a microsecond, so the barrier spins briefly and then yields
// rather than parking threads.
type shardPool struct {
	sim     *Simulator
	workers []*shardWorker // workers[0] is stepped inline by the coordinator

	cycle   atomic.Uint64
	gen     atomic.Uint32
	pending atomic.Int32
	stop    atomic.Bool
}

// newShardPool partitions the cores into shards contiguous ranges (the
// first len(cores)%shards ranges take one extra core).
func newShardPool(s *Simulator, shards int) *shardPool {
	p := &shardPool{sim: s}
	n := len(s.cores)
	base, rem := n/shards, n%shards
	lo := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < rem {
			size++
		}
		p.workers = append(p.workers, &shardWorker{cores: s.cores[lo : lo+size]})
		lo += size
	}
	return p
}

// start launches the worker goroutines; shutdown releases them. The
// baseline generation is read on the coordinator before spawning: a
// worker must not read it itself, or a gen bump landing between spawn
// and first load would make the worker miss round one and deadlock the
// barrier.
func (p *shardPool) start() {
	seen := p.gen.Load()
	for _, w := range p.workers[1:] {
		go p.run(w, seen)
	}
}

func (p *shardPool) shutdown() { p.stop.Store(true) }

// run is one worker goroutine: wait for a generation bump, step the
// shard, signal completion.
func (p *shardPool) run(w *shardWorker, seen uint32) {
	for {
		for spin := 0; ; spin++ {
			if g := p.gen.Load(); g != seen {
				seen = g
				break
			}
			if p.stop.Load() {
				return
			}
			if spin > 64 {
				runtime.Gosched()
			}
		}
		p.stepShard(w, p.cycle.Load())
		p.pending.Add(-1)
	}
}

// stepShard steps one shard's cores for one visited cycle — the body of
// Run's phase 4 restricted to the shard. An error or panic stops the
// shard immediately (the serial loop aborts at its first failing core)
// and is parked on w for the coordinator's reduction.
func (p *shardPool) stepShard(w *shardWorker, cyc uint64) {
	w.err = nil
	w.panicked, w.panicVal, w.panicStack = false, nil, nil
	defer func() {
		if r := recover(); r != nil {
			w.panicked, w.panicVal, w.panicStack = true, r, debug.Stack()
		}
	}()
	inj := p.sim.inj
	for _, c := range w.cores {
		if inj != nil && inj.StallCore(cyc, c.ID()) {
			// The suppressed cycle still gets a bucket (throttled) so
			// cycle-accounting conservation holds under fault injection.
			c.AccountExternalStall(1)
			continue
		}
		if err := c.Cycle(cyc); err != nil {
			w.err = err
			return
		}
	}
}

// step runs one visited cycle's core-stepping across all shards and
// blocks until every shard reaches the barrier.
func (p *shardPool) step(cyc uint64) {
	p.cycle.Store(cyc)
	p.pending.Store(int32(len(p.workers) - 1))
	p.gen.Add(1) // release the workers; publishes cycle + pre-step state
	p.stepShard(p.workers[0], cyc)
	for spin := 0; p.pending.Load() != 0; spin++ {
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

// reduce resolves the round's outcome deterministically: the failure of
// the lowest-indexed shard wins, matching the serial loop, which would
// have aborted at the lowest failing core before reaching any higher
// one. A worker panic is re-raised on the coordinator's goroutine (with
// the worker stack attached) so downstream panic isolation — the
// harness's runOne recover — observes it like a serial panic, against a
// machine quiesced at the barrier.
func (p *shardPool) reduce() error {
	for _, w := range p.workers {
		if w.panicked {
			panic(&shardPanic{val: w.panicVal, stack: w.panicStack})
		}
		if w.err != nil {
			return w.err
		}
	}
	return nil
}

// shardPanic carries a worker panic across the barrier for re-raising.
type shardPanic struct {
	val   any
	stack []byte
}

func (sp *shardPanic) String() string {
	return fmt.Sprintf("%v\n\nshard worker stack:\n%s", sp.val, sp.stack)
}

// stepSharded is phase 4 under sharding: switch the cross-core touch
// points into deferred/staged mode, step the shards concurrently, then
// replay the deferred interactions in core-index order — the serial
// loop's order — before resolving errors.
func (s *Simulator) stepSharded(cyc uint64) error {
	for _, c := range s.cores {
		c.DeferLaunches()
	}
	s.tracer.BeginStage(len(s.cores))
	s.shardPool.step(cyc)
	s.tracer.EndStage()
	for _, c := range s.cores {
		c.FlushLaunches()
	}
	return s.shardPool.reduce()
}

// Shards reports the effective shard count after validation: the clamp
// to the core count, and the forced 1 when a fault injector is not
// ShardAware (1 = serial core stepping).
func (s *Simulator) Shards() int { return s.shards }
