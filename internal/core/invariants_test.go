package core

import (
	"math/rand"
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/kernel"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// randomProgram builds a random but valid kernel from a seeded source.
func randomProgram(rng *rand.Rand) *kernel.Program {
	b := kernel.NewBuilder("fuzz")
	loop := rng.Intn(2) == 0
	if loop {
		b.BeginLoop(1 + rng.Intn(6))
	}
	nloads := 1 + rng.Intn(3)
	var last kernel.Reg
	for i := 0; i < nloads; i++ {
		acc := kernel.Access{
			Array:       rng.Intn(3),
			LaneStrideB: []uint64{0, 4, 4, 16, 64}[rng.Intn(5)],
			IterStrideB: uint64(rng.Intn(4)) * 128,
			Hash:        rng.Intn(8) == 0,
			Span:        1 << 22,
		}
		last = b.Load(acc)
		last = b.Compute(rng.Intn(6), last)
	}
	if rng.Intn(2) == 0 {
		last = b.IMul(last)
	}
	if rng.Intn(4) == 0 {
		last = b.FDiv(last)
	}
	if rng.Intn(2) == 0 {
		b.Store(kernel.Access{Array: 3, LaneStrideB: 4}, last)
	}
	if loop {
		b.EndLoop()
	}
	return b.MustBuild()
}

func randomSpec(rng *rand.Rand) *workload.Spec {
	wpb := []int{1, 2, 4, 8}[rng.Intn(4)]
	blocks := 14 * (1 + rng.Intn(4))
	return &workload.Spec{
		Name: "fuzz", Suite: "fuzz", Class: workload.MP,
		TotalWarps: wpb * blocks, Blocks: blocks,
		MaxBlocksPerCore: 1 + rng.Intn(3),
		RegsPerThread:    16,
		Program:          randomProgram(rng),
	}
}

// TestRandomKernelsTerminateAndConserve runs randomly generated kernels
// through every prefetching mode and checks conservation invariants: the
// run terminates, all warps complete, every issued instruction is
// accounted, and the memory system drains.
func TestRandomKernelsTerminateAndConserve(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz-style test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	cfg := config.Baseline()
	cfg.ThrottlePeriod = 5000
	for i := 0; i < 12; i++ {
		spec := randomSpec(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid spec: %v", i, err)
		}
		modes := []Options{
			{Config: cfg, Workload: spec},
			{Config: cfg, Workload: spec, Software: swpref.MTSWP},
			{Config: cfg, Workload: spec, Software: swpref.Register},
			{Config: cfg, Workload: spec, Throttle: true, Hardware: func() prefetch.Prefetcher {
				return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
			}},
			{Config: cfg, Workload: spec, Hardware: func() prefetch.Prefetcher {
				return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true, Feedback: true})
			}},
		}
		for m, o := range modes {
			o.MaxCycles = 50_000_000
			r, err := Run(o)
			if err != nil {
				t.Fatalf("kernel %d mode %d: %v", i, m, err)
			}
			// Instruction conservation: warps x dynamic length.
			spec2, _, _ := swpref.Apply(spec, o.Software, o.SoftwareOptions)
			want := uint64(spec2.TotalWarps) * uint64(spec2.Program.DynamicCounts().Total)
			if r.AllInstructions != want {
				t.Errorf("kernel %d mode %d: instructions %d, want %d",
					i, m, r.AllInstructions, want)
			}
			if r.CPI < 3.99 {
				t.Errorf("kernel %d mode %d: CPI %.2f below issue floor", i, m, r.CPI)
			}
			if r.Accuracy > 1 || r.Coverage > 1 {
				t.Errorf("kernel %d mode %d: ratios out of range: %+v", i, m, r)
			}
		}
	}
}

// TestScaleStability checks that the qualitative result (who wins) is
// stable across grid scales — the property the scaled-down harness relies
// on.
func TestScaleStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale run skipped in -short mode")
	}
	s := workload.ByName("mersenne")
	for _, waves := range []int{1, 2, 4} {
		spec := s.Scaled(s.Blocks / (14 * s.MaxBlocksPerCore * waves))
		base, err := Run(Options{Workload: spec})
		if err != nil {
			t.Fatal(err)
		}
		hw, err := Run(Options{Workload: spec, Hardware: func() prefetch.Prefetcher {
			return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
		}})
		if err != nil {
			t.Fatal(err)
		}
		if sp := hw.Speedup(base); sp < 1.2 {
			t.Errorf("waves=%d: mersenne MT-HWP speedup %.3f, want > 1.2 at every scale", waves, sp)
		}
	}
}

// TestDemandFillConservation uses a deterministic benchmark to assert
// every demand transaction is eventually either served by the prefetch
// cache or filled from memory — nothing is lost or double-filled.
func TestDemandFillConservation(t *testing.T) {
	spec := workload.ByName("monte").Scaled(64)
	for _, sw := range []swpref.Mode{swpref.None, swpref.MTSWP} {
		r, err := Run(Options{Workload: spec, Software: sw})
		if err != nil {
			t.Fatal(err)
		}
		// Demand transactions split into cache hits and MRQ entries;
		// MRQ entries merge or go to memory. All must be covered:
		// hits + (demand latency samples >= demand entries).
		if r.PFCacheHits > r.DemandTransactions {
			t.Errorf("%v: hits exceed demands", sw)
		}
		missed := r.DemandTransactions - r.PFCacheHits
		if missed == 0 && r.AvgDemandLatency > 0 {
			t.Errorf("%v: latency recorded with zero misses", sw)
		}
		if missed > 0 && r.AvgDemandLatency == 0 {
			t.Errorf("%v: %d misses but no latency recorded", sw, missed)
		}
	}
}
