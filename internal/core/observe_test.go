package core

import (
	"strings"
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
)

// mustSim builds and runs a simulator, returning both the result and the
// simulator so tests can inspect the metrics registry.
func mustSim(t *testing.T, o Options) (*Simulator, *Result) {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

// TestCounterConsistency runs several machine configurations and checks the
// cross-component invariants that the registry makes checkable: cache
// lookups partition into hits and misses, MRQ merges never exceed
// arrivals, and the aggregated Result matches the registry it was derived
// from.
func TestCounterConsistency(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"baseline", Options{Workload: tiny(t, "monte")}},
		{"mtswp+throttle", Options{
			Workload: tiny(t, "stream"),
			Software: swpref.MTSWP,
			Throttle: true,
		}},
		{"mthwp", Options{
			Workload: tiny(t, "mersenne"),
			Hardware: func() prefetch.Prefetcher {
				return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, r := mustSim(t, tc.opts)
			reg := s.Registry()

			for _, comp := range []string{"pfcache"} {
				acc := reg.Sum(comp + ".accesses")
				hits := reg.Sum(comp + ".hits")
				misses := reg.Sum(comp + ".misses")
				if hits+misses != acc {
					t.Errorf("%s: hits %d + misses %d != accesses %d", comp, hits, misses, acc)
				}
			}

			merges := reg.Sum("mrq.merges")
			arrivals := reg.Sum("mrq.demands") + reg.Sum("mrq.prefetches") +
				reg.Sum("mrq.writebacks") + merges
			if merges > arrivals {
				t.Errorf("mrq merges %d exceed arrivals %d", merges, arrivals)
			}

			checks := []struct {
				field string
				got   uint64
				want  uint64
			}{
				{"ProgInstructions", r.ProgInstructions, reg.Sum("smcore.prog_instructions")},
				{"DemandTransactions", r.DemandTransactions, reg.Sum("smcore.demand_transactions")},
				{"PFCacheHits", r.PFCacheHits, reg.Sum("smcore.pfcache_hit_transactions")},
				{"PrefetchesIssued", r.PrefetchesIssued, reg.Sum("smcore.prefetches_issued")},
				{"UsefulPrefetches", r.UsefulPrefetches, reg.Sum("pfcache.first_uses")},
				{"EarlyEvictions", r.EarlyEvictions, reg.Sum("pfcache.early_evictions")},
				{"ThrottlePeriods", r.ThrottlePeriods, reg.Sum("throttle.periods")},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Errorf("Result.%s = %d, registry says %d", c.field, c.got, c.want)
				}
			}

			// The useful-prefetch count can never exceed what was issued
			// plus what merged into demand misses.
			if issued := r.PrefetchesIssued; r.UsefulPrefetches > issued && issued > 0 {
				t.Errorf("useful prefetches %d exceed issued %d", r.UsefulPrefetches, issued)
			}
		})
	}
}

// TestRegistryAggregationMatchesResult pins the refactor: collect() reads
// the registry, so an independently recomputed sum must agree exactly.
func TestRegistryAggregationMatchesResult(t *testing.T) {
	s, r := mustSim(t, Options{Workload: tiny(t, "monte"), Software: swpref.MTSWP})
	var manual uint64
	s.Registry().Each(func(in *obs.Instrument) {
		if in.Name == "smcore.demand_transactions" {
			manual += uint64(in.Value())
		}
	})
	if manual != r.DemandTransactions {
		t.Errorf("per-instrument walk gives %d demand transactions, Result has %d",
			manual, r.DemandTransactions)
	}
}

// throttleRun executes a prefetch-heavy workload with a short throttling
// period and a fine sampling epoch, returning the sampled throttle-degree
// series.
func throttleRun(t *testing.T, throttle bool) []float64 {
	t.Helper()
	cfg := config.Baseline()
	cfg.ThrottlePeriod = 1000
	o := obs.New(obs.Config{SampleEvery: 500})
	spec := tiny(t, "cfd")
	_, _ = mustSim(t, Options{
		Config:   cfg,
		Workload: spec,
		Software: swpref.MTSWP,
		Throttle: throttle,
		Obs:      o,
	})
	return o.Sampler.Series("throttle_degree")
}

// TestThrottleDegreeSeries asserts the epoch sampler observes the throttle
// engine actually moving on a workload whose prefetches are habitually
// late (cfd, Fig. 15), and reads a flat zero when throttling is disabled.
func TestThrottleDegreeSeries(t *testing.T) {
	on := throttleRun(t, true)
	if len(on) < 2 {
		t.Fatalf("expected several epochs, got %d", len(on))
	}
	constant := true
	for _, v := range on[1:] {
		if v != on[0] {
			constant = false
			break
		}
	}
	if constant {
		t.Errorf("throttle-degree series is constant at %v over %d epochs; "+
			"expected the engine to adapt", on[0], len(on))
	}

	off := throttleRun(t, false)
	if len(off) < 1 {
		t.Fatal("no epochs sampled")
	}
	for i, v := range off {
		if v != 0 {
			t.Fatalf("epoch %d: throttle degree %v with throttling disabled", i, v)
		}
	}
}

// TestSamplerJSONLFromSim smoke-tests the full path: simulate, export, and
// check every line mentions the series the analysis scripts key on.
func TestSamplerJSONLFromSim(t *testing.T) {
	o := obs.New(obs.Config{SampleEvery: 1000})
	_, _ = mustSim(t, Options{Workload: tiny(t, "monte"), Software: swpref.MTSWP, Obs: o})
	var sb strings.Builder
	if err := o.Sampler.WriteJSONL(&sb, map[string]string{"run": "test"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if out == "" {
		t.Fatal("no JSONL output")
	}
	for _, key := range []string{"\"ipc\"", "\"mpki\"", "\"merge_ratio\"", "\"throttle_degree\""} {
		if !strings.Contains(out, key) {
			t.Errorf("JSONL output missing %s", key)
		}
	}
}

// TestResultPercentiles checks the demand-latency distribution fields are
// ordered and bracket the average.
func TestResultPercentiles(t *testing.T) {
	_, r := mustSim(t, Options{Workload: tiny(t, "monte")})
	if r.P50DemandLatency <= 0 || r.P95DemandLatency < r.P50DemandLatency ||
		r.P99DemandLatency < r.P95DemandLatency {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v",
			r.P50DemandLatency, r.P95DemandLatency, r.P99DemandLatency)
	}
	if float64(r.MaxDemandLatency) < r.P99DemandLatency {
		t.Errorf("p99 %v exceeds max %d", r.P99DemandLatency, r.MaxDemandLatency)
	}
}
