package core

import (
	"errors"
	"fmt"

	"mtprefetch/internal/simerr"
)

// The error taxonomy. Every failure a simulation can report falls into
// one of three families, each matchable with errors.Is / errors.As:
//
//   - *OptionError: the caller asked for a nonsensical machine or run
//     (nil workload, invalid config, watchdog wider than MaxCycles).
//     Returned by New before any cycle executes.
//   - *LivelockError (wraps ErrLivelock): the forward-progress watchdog
//     saw no warp-instruction retire and no memory fill arrive for a
//     whole window. Carries a DiagSnapshot of the stuck machine.
//   - *InvariantError (wraps ErrInvariant): an opt-in conservation check
//     (Options.Checks) found corrupted bookkeeping — leaked MRQ entries,
//     non-conserved NoC flits, unbalanced scoreboard releases, or
//     prefetch-cache lines lost track of.
//
// The harness adds a fourth, *harness.RunError, wrapping any of the
// above (or a recovered panic) with the run's identity.

// ErrLivelock is the sentinel matched by errors.Is when the watchdog
// aborts a run for lack of forward progress.
var ErrLivelock = errors.New("no forward progress (livelock)")

// ErrCanceled is the sentinel matched by errors.Is when a run was
// aborted through its Options.Ctx — a per-run wall-clock deadline or a
// harness drain — rather than by anything the simulated machine did.
var ErrCanceled = errors.New("run canceled")

// ErrInvariant re-exports simerr.ErrInvariant so callers can match
// invariant failures without importing the leaf package.
var ErrInvariant = simerr.ErrInvariant

// InvariantError re-exports simerr.InvariantError; component packages
// (smcore, mrq, noc, cache, swpref) return it directly.
type InvariantError = simerr.InvariantError

// OptionError reports a rejected Options field from New.
type OptionError struct {
	Field  string // the Options field at fault
	Reason string // human-readable rejection, when Err is nil
	Err    error  // underlying validation error, when one exists
}

// Error implements error.
func (e *OptionError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: Options.%s: %v", e.Field, e.Err)
	}
	return fmt.Sprintf("core: Options.%s %s", e.Field, e.Reason)
}

// Unwrap exposes the underlying validation error to errors.Is/As.
func (e *OptionError) Unwrap() error { return e.Err }

// LivelockError is the watchdog's abort: no core retired a warp
// instruction and no memory fill was delivered for Window cycles.
type LivelockError struct {
	Benchmark string
	Cycle     uint64 // cycle at which the watchdog fired
	Window    uint64 // progress window that elapsed without progress
	Snapshot  DiagSnapshot
}

// Error implements error.
func (e *LivelockError) Error() string {
	live := 0
	mrq := 0
	for _, c := range e.Snapshot.Cores {
		live += c.LiveWarps
		mrq += c.MRQOutstanding
	}
	return fmt.Sprintf("core: %s livelocked at cycle %d: no instruction retired and no fill delivered for %d cycles (%d live warps, %d MRQ entries, %d NoC messages in flight)",
		e.Benchmark, e.Cycle, e.Window, live, mrq, e.Snapshot.NoCInFlight)
}

// Unwrap makes errors.Is(err, ErrLivelock) true.
func (e *LivelockError) Unwrap() error { return ErrLivelock }

// CanceledError is the abort raised when Options.Ctx is done: the run's
// wall-clock deadline expired or its caller began draining. It carries
// the simulation cycle at which the cancellation poll noticed, so a
// resumable sweep can report how far the aborted run got.
type CanceledError struct {
	Benchmark string
	Cycle     uint64 // cycle at which the poll observed the cancellation
	Cause     error  // ctx.Err(): context.Canceled or context.DeadlineExceeded
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: %s canceled at cycle %d: %v", e.Benchmark, e.Cycle, e.Cause)
}

// Unwrap exposes both the ErrCanceled sentinel and the context cause,
// so errors.Is matches ErrCanceled, context.Canceled, and
// context.DeadlineExceeded as appropriate.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }
