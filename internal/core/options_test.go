package core

import (
	"errors"
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/workload"
)

// TestOptionsRejection pins the field-level validation in New: every
// nonsensical Options combination must come back as an *OptionError
// naming the offending field, before any cycle executes.
func TestOptionsRejection(t *testing.T) {
	valid := workload.ByName("stream")
	if valid == nil {
		t.Fatal("workload suite missing stream")
	}
	badCfg := config.Baseline()
	badCfg.NumCores = 0
	badSpec := *valid
	badSpec.Blocks = -1

	cases := []struct {
		name  string
		o     Options
		field string
	}{
		{"nil workload", Options{}, "Workload"},
		{"invalid config", Options{Workload: valid, Config: badCfg}, "Config"},
		{"invalid spec", Options{Workload: &badSpec}, "Workload"},
		{"watchdog wider than run", Options{Workload: valid,
			MaxCycles: 1000, WatchdogWindow: 2000}, "WatchdogWindow"},
		{"watchdog window with NoWatchdog", Options{Workload: valid,
			NoWatchdog: true, WatchdogWindow: 100}, "WatchdogWindow"},
		{"check period without Checks", Options{Workload: valid,
			CheckEvery: 1024}, "CheckEvery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.o)
			if err == nil {
				t.Fatal("New accepted nonsense options")
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v (%T) is not an *OptionError", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("rejected field %q, want %q (err: %v)", oe.Field, tc.field, err)
			}
		})
	}
}

// TestOptionsAccepted checks that the watchdog and checker defaults do
// not reject ordinary configurations.
func TestOptionsAccepted(t *testing.T) {
	for _, o := range []Options{
		{Workload: workload.ByName("stream")},
		{Workload: workload.ByName("stream"), NoWatchdog: true},
		{Workload: workload.ByName("stream"), Checks: true},
		{Workload: workload.ByName("stream"), MaxCycles: 100}, // window clamps to MaxCycles
	} {
		if _, err := New(o); err != nil {
			t.Fatalf("New(%+v): %v", o, err)
		}
	}
}
