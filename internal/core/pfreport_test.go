package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// This file holds the differential and conservation tests for prefetch
// attribution: with -pfreport off, attribution must be invisible (Result
// and epoch JSONL byte-identical); with it on, per-(source, PC) outcome
// counts must sum exactly to the prefetches the simulator issued.

// attributedConfigs is the matrix both test groups sweep: every
// prefetch-generating mechanism plus the drop sites (throttle, filter,
// both) that classify candidates before issue.
func attributedConfigs(t *testing.T) []struct {
	name string
	opts Options
} {
	t.Helper()
	return []struct {
		name string
		opts Options
	}{
		{"sw-stride", Options{Workload: tiny(t, "stream"), Software: swpref.Stride}},
		{"mtswp-throttle", Options{Workload: tiny(t, "mersenne"), Software: swpref.MTSWP, Throttle: true}},
		{"mthwp", Options{Workload: tiny(t, "conv"), Hardware: func() prefetch.Prefetcher {
			return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
		}}},
		{"stride-rpt-throttle", Options{Workload: tiny(t, "monte"), Throttle: true,
			Hardware: func() prefetch.Prefetcher {
				return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true})
			}}},
		{"ghb-filter", Options{Workload: tiny(t, "monte"), PollutionFilter: true,
			Hardware: func() prefetch.Prefetcher {
				return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true})
			}}},
		{"stream", Options{Workload: tiny(t, "cfd"), Hardware: func() prefetch.Prefetcher {
			return prefetch.NewStream(prefetch.StreamOptions{WarpAware: true})
		}}},
	}
}

// TestPFReportOffIsInvisible is the zero-cost contract: enabling nothing
// must change nothing. Each configuration runs twice with identical
// observability except Config.PFReport, and the Result structs and epoch
// JSONL streams must be byte-identical.
func TestPFReportOffIsInvisible(t *testing.T) {
	for _, tc := range attributedConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(pfOn bool) (*Result, []byte) {
				o := tc.opts
				o.Obs = obs.New(obs.Config{SampleEvery: 512, PFReport: pfOn})
				s, err := New(o)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := o.Obs.Sampler.WriteJSONL(&buf, map[string]string{"bench": res.Benchmark}); err != nil {
					t.Fatal(err)
				}
				return res, buf.Bytes()
			}
			off, offJSON := run(false)
			on, onJSON := run(true)
			if !reflect.DeepEqual(off, on) {
				t.Errorf("results diverge with attribution on\noff: %+v\non:  %+v", off, on)
			}
			if !bytes.Equal(offJSON, onJSON) {
				t.Errorf("epoch samples diverge with attribution on\noff: %s\non:  %s", offJSON, onJSON)
			}
		})
	}
}

// pfTotals parses a report's JSONL and cross-foots the bucket lines.
type pfTotals struct {
	generated, dropped, issued, terminals uint64
	perSource                             map[string]uint64 // issued per source
	summaryIssued                         uint64
}

func parsePF(t *testing.T, p *obs.PFReport) pfTotals {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf, "t"); err != nil {
		t.Fatal(err)
	}
	tot := pfTotals{perSource: make(map[string]uint64)}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec struct {
			Record           string `json:"record"`
			Source           string `json:"source"`
			Generated        uint64 `json:"generated"`
			DroppedThrottle  uint64 `json:"dropped_throttle"`
			DroppedFilter    uint64 `json:"dropped_filter"`
			DroppedInCache   uint64 `json:"dropped_in_cache"`
			DroppedQueueFull uint64 `json:"dropped_queue_full"`
			MergedMRQ        uint64 `json:"merged_mrq"`
			Issued           uint64 `json:"issued"`
			Late             uint64 `json:"late"`
			Redundant        uint64 `json:"redundant"`
			Useful           uint64 `json:"useful"`
			EarlyEvicted     uint64 `json:"early_evicted"`
			UnusedAtDrain    uint64 `json:"unused_at_drain"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Record {
		case "pfreport":
			if rec.Source == memreq.SrcNone.String() {
				t.Errorf("attributed bucket with source none: %s", sc.Text())
			}
			tot.generated += rec.Generated
			tot.dropped += rec.DroppedThrottle + rec.DroppedFilter + rec.DroppedInCache +
				rec.DroppedQueueFull + rec.MergedMRQ
			tot.issued += rec.Issued
			tot.terminals += rec.Late + rec.Redundant + rec.Useful + rec.EarlyEvicted + rec.UnusedAtDrain
			tot.perSource[rec.Source] += rec.Issued
		case "pfsummary":
			tot.summaryIssued = rec.Issued
		}
	}
	return tot
}

// TestPFReportConservationAcrossConfigs runs every attributed
// configuration with Checks on (so the simulator's own conservation
// sweep is armed) and additionally cross-foots the JSONL against the
// Result's prefetch counters: generated and issued must match the
// simulator's counts exactly, and the outcome terminals must partition
// the issued count.
func TestPFReportConservationAcrossConfigs(t *testing.T) {
	for _, tc := range attributedConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			o := tc.opts
			o.Obs = obs.New(obs.Config{PFReport: true})
			o.Checks = true
			s, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.PrefetchesGenerated == 0 {
				t.Fatalf("%s generated no prefetches; config not exercising attribution", tc.name)
			}
			tot := parsePF(t, s.PFReport())
			if tot.generated != res.PrefetchesGenerated {
				t.Errorf("attributed generated %d != simulator %d", tot.generated, res.PrefetchesGenerated)
			}
			if tot.issued != res.PrefetchesIssued {
				t.Errorf("attributed issued %d != simulator %d", tot.issued, res.PrefetchesIssued)
			}
			if tot.dropped+tot.issued != tot.generated {
				t.Errorf("generation ledger open: %d dropped + %d issued != %d generated",
					tot.dropped, tot.issued, tot.generated)
			}
			if tot.terminals != tot.issued {
				t.Errorf("outcome ledger open: %d terminals != %d issued", tot.terminals, tot.issued)
			}
			if tot.summaryIssued != tot.issued {
				t.Errorf("summary issued %d != bucket sum %d", tot.summaryIssued, tot.issued)
			}
		})
	}
}

// TestPFReportSourceAttribution pins the source tags end to end: an
// MT-HWP run attributes to its own tables only, a software-stride run to
// sw-stride, and the MT-SWP transform (which emits inter-warp prefetches
// for uncoalesced accesses) to sw-ip where the workload has them.
func TestPFReportSourceAttribution(t *testing.T) {
	run := func(t *testing.T, o Options) pfTotals {
		o.Obs = obs.New(obs.Config{PFReport: true})
		o.Checks = true
		s, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return parsePF(t, s.PFReport())
	}
	t.Run("mthwp-tables", func(t *testing.T) {
		tot := run(t, Options{Workload: tiny(t, "conv"), Hardware: func() prefetch.Prefetcher {
			return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
		}})
		hwp := tot.perSource["pws"] + tot.perSource["gs"] + tot.perSource["hw-ip"]
		if hwp == 0 || hwp != tot.issued {
			t.Errorf("MT-HWP run issued %d but tables account for %d (%v)",
				tot.issued, hwp, tot.perSource)
		}
	})
	t.Run("sw-stride", func(t *testing.T) {
		tot := run(t, Options{Workload: tiny(t, "stream"), Software: swpref.Stride})
		if tot.perSource["sw-stride"] != tot.issued || tot.issued == 0 {
			t.Errorf("software stride run issued %d, sw-stride %d (%v)",
				tot.issued, tot.perSource["sw-stride"], tot.perSource)
		}
	})
	t.Run("stride-rpt", func(t *testing.T) {
		tot := run(t, Options{Workload: tiny(t, "monte"), Hardware: func() prefetch.Prefetcher {
			return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true})
		}})
		if tot.perSource["stride-rpt"] != tot.issued || tot.issued == 0 {
			t.Errorf("stride-RPT run issued %d, stride-rpt %d (%v)",
				tot.issued, tot.perSource["stride-rpt"], tot.perSource)
		}
	})
}

// TestPFReportConservationTableII sweeps the full Table II suite under
// one attributed configuration each for hardware and software
// prefetching, with Checks armed: the simulator aborts the run itself if
// any bucket's ledger fails to balance.
func TestPFReportConservationTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep in -short mode")
	}
	suite, err := workload.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range suite {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			o := Options{
				Workload: tiny(t, spec.Name),
				Throttle: true,
				Hardware: func() prefetch.Prefetcher {
					return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
				},
				Checks: true,
				Obs:    obs.New(obs.Config{PFReport: true}),
			}
			s, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			tot := parsePF(t, s.PFReport())
			if tot.generated != res.PrefetchesGenerated || tot.issued != res.PrefetchesIssued {
				t.Errorf("ledger totals (gen %d, issued %d) != simulator (%d, %d)",
					tot.generated, tot.issued, res.PrefetchesGenerated, res.PrefetchesIssued)
			}
			if tot.terminals != tot.issued {
				t.Errorf("outcome ledger open: %d terminals != %d issued", tot.terminals, tot.issued)
			}
		})
	}
}

// TestPFReportTableRenders smoke-tests the human-readable export on a
// real run.
func TestPFReportTableRenders(t *testing.T) {
	o := Options{Workload: tiny(t, "stream"), Software: swpref.Stride,
		Obs: obs.New(obs.Config{PFReport: true})}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.PFReport().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sw-stride") || !strings.Contains(out, "accuracy") {
		t.Errorf("table missing expected content:\n%s", out)
	}
}
