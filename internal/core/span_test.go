package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// This file holds the differential and conservation tests for request
// span tracing: with -spans off, tracing must be invisible (Result and
// every other stream byte-identical); with it on, the span stream
// itself must be byte-identical across shard counts and skip settings,
// and every sampled request's stamp set must satisfy the per-terminal
// conservation rules under Options.Checks.

// spanConfigs is the matrix the differential groups sweep: baseline
// demand traffic plus prefetch-generating configurations, so spans
// cover both Kind values and the MRQ merge/reject paths.
func spanConfigs(t *testing.T) []struct {
	name string
	opts Options
} {
	t.Helper()
	return []struct {
		name string
		opts Options
	}{
		{"baseline", Options{Workload: tiny(t, "monte")}},
		{"sw-stride", Options{Workload: tiny(t, "stream"), Software: swpref.Stride}},
		{"mthwp-throttle", Options{Workload: tiny(t, "conv"), Throttle: true,
			Hardware: func() prefetch.Prefetcher {
				return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
			}}},
		{"ghb-filter", Options{Workload: tiny(t, "mersenne"), PollutionFilter: true,
			Hardware: func() prefetch.Prefetcher {
				return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true})
			}}},
	}
}

// runSpans executes o at the given shard count and skip setting with
// the full observability bundle (spans included when spansOn), and
// returns the Result and every output stream keyed by name. SpanEvery
// is set low so tiny workloads still sample densely enough to exercise
// every lifecycle site.
func runSpans(t *testing.T, o Options, shards int, noskip, spansOn bool) (*Result, map[string]string) {
	t.Helper()
	oo := o
	oo.Shards = shards
	oo.NoCycleSkip = noskip
	oo.Obs = obs.New(obs.Config{SampleEvery: 512, TraceCapacity: 1 << 14,
		PFReport: true, CPIStack: true, CPIEpoch: 512,
		Spans: spansOn, SpanEvery: 8})
	s, err := New(oo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string]string{}
	var buf bytes.Buffer
	if err := oo.Obs.Sampler.WriteJSONL(&buf, map[string]string{"bench": res.Benchmark}); err != nil {
		t.Fatal(err)
	}
	streams["epoch"] = buf.String()
	buf.Reset()
	if err := s.PFReport().WriteJSONL(&buf, "run"); err != nil {
		t.Fatal(err)
	}
	streams["pfreport"] = buf.String()
	buf.Reset()
	if err := s.CPIStack().WriteJSONL(&buf, "run"); err != nil {
		t.Fatal(err)
	}
	streams["cpistack"] = buf.String()
	buf.Reset()
	tw, err := obs.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.AddRun(1, "run", "core", oo.Obs.Tracer); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	streams["trace"] = buf.String()
	if spansOn {
		buf.Reset()
		if err := s.Spans().WriteJSONL(&buf, "run"); err != nil {
			t.Fatal(err)
		}
		streams["spans"] = buf.String()
	}
	return res, streams
}

// TestSpansOffInvisible is the zero-cost contract: enabling span
// tracing must change nothing the simulation itself produces. Each
// configuration runs twice with identical observability except
// Config.Spans, and the Result structs and every pre-existing stream
// must be byte-identical.
func TestSpansOffInvisible(t *testing.T) {
	for _, tc := range spanConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			offRes, offStreams := runSpans(t, tc.opts, 1, false, false)
			onRes, onStreams := runSpans(t, tc.opts, 1, false, true)
			if !reflect.DeepEqual(offRes, onRes) {
				t.Errorf("results diverge with spans on\noff: %+v\non:  %+v", offRes, onRes)
			}
			for name, ref := range offStreams {
				if onStreams[name] != ref {
					t.Errorf("%s stream diverges with spans on", name)
				}
			}
			if onStreams["spans"] == "" {
				t.Error("spans-on run produced an empty span stream")
			}
		})
	}
}

// TestSpanEquivalenceMatrix is the determinism contract for the span
// stream itself: the sampler keys on (core, warp, per-core sequence)
// and stamps only at cycles the simulation already visits, so the span
// JSONL — and everything else — must be byte-identical across the full
// shards x skip grid.
func TestSpanEquivalenceMatrix(t *testing.T) {
	grid := []struct {
		shards int
		noskip bool
	}{
		{1, true}, {4, false}, {4, true}, {8, false}, {8, true},
	}
	for _, tc := range spanConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			refRes, refStreams := runSpans(t, tc.opts, 1, false, true)
			if refStreams["spans"] == "" {
				t.Fatal("reference run produced an empty span stream")
			}
			for _, g := range grid {
				label := fmt.Sprintf("shards=%d noskip=%v", g.shards, g.noskip)
				res, streams := runSpans(t, tc.opts, g.shards, g.noskip, true)
				if !reflect.DeepEqual(res, refRes) {
					t.Errorf("%s: Result diverges from the serial reference", label)
				}
				for name, ref := range refStreams {
					if streams[name] != ref {
						t.Errorf("%s: %s stream diverges from the serial reference", label, name)
					}
				}
			}
		})
	}
}

// spanLine mirrors the per-request "span" JSONL schema for
// cross-footing.
type spanLine struct {
	Record      string `json:"record"`
	Source      string `json:"source"`
	Terminal    string `json:"terminal"`
	MRQ         uint64 `json:"mrq"`
	NoCReq      uint64 `json:"noc_req"`
	DRAMQueue   uint64 `json:"dram_queue"`
	DRAMService uint64 `json:"dram_service"`
	NoCResp     uint64 `json:"noc_resp"`
	Total       uint64 `json:"total"`
	DRAMMerged  bool   `json:"dram_merged"`
	L2Hit       bool   `json:"l2_hit"`
}

// TestSpanStreamCrossFoots parses the JSONL a real run emits and
// re-checks the stage telescoping in the exported representation: for
// every filled span the five stages must sum exactly to the end-to-end
// total, and the summary trailer counts must match the per-span lines.
func TestSpanStreamCrossFoots(t *testing.T) {
	o := Options{Workload: tiny(t, "stream"), Software: swpref.Stride,
		Obs: obs.New(obs.Config{Spans: true, SpanEvery: 8})}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Spans().WriteJSONL(&buf, "t"); err != nil {
		t.Fatal(err)
	}
	var spans, fills, summaries uint64
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec spanLine
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Record {
		case "span":
			spans++
			if rec.Terminal != "fill" {
				// Non-fill terminals report issue-to-terminal distance as
				// the total with every stage zero.
				if s := rec.MRQ + rec.NoCReq + rec.DRAMQueue + rec.DRAMService + rec.NoCResp; s != 0 {
					t.Errorf("non-fill span charged %d stage cycles: %s", s, sc.Text())
				}
				continue
			}
			fills++
			sum := rec.MRQ + rec.NoCReq + rec.DRAMQueue + rec.DRAMService + rec.NoCResp
			if sum != rec.Total {
				t.Errorf("stage sum %d != total %d: %s", sum, rec.Total, sc.Text())
			}
			if rec.DRAMMerged && rec.DRAMService != 0 {
				t.Errorf("merged rider charged dram_service %d: %s", rec.DRAMService, sc.Text())
			}
		case "spansummary":
			summaries++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if spans == 0 || fills == 0 {
		t.Fatalf("run sampled %d spans (%d fills); sampler not exercising the stream", spans, fills)
	}
	if summaries == 0 {
		t.Error("no spansummary trailers in the stream")
	}
	if got := s.Spans().Finished(); got != spans {
		t.Errorf("SpanSet finished %d != %d exported span lines", got, spans)
	}
}

// TestSpanConservationTableII sweeps the full Table II suite with spans
// and Checks armed under an attributed hardware-prefetching
// configuration: the simulator aborts the run itself if any sampled
// request ends un-terminated, stamps a site out of order, or fails the
// stage-sum telescoping identity.
func TestSpanConservationTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep in -short mode")
	}
	suite, err := workload.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range suite {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			o := Options{
				Workload: tiny(t, spec.Name),
				Throttle: true,
				Hardware: func() prefetch.Prefetcher {
					return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
				},
				Checks: true,
				Obs:    obs.New(obs.Config{Spans: true, SpanEvery: 8}),
			}
			s, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if s.Spans().Finished() == 0 {
				t.Fatalf("%s sampled no spans; config not exercising tracing", spec.Name)
			}
			if started, finished := s.Spans().Started(), s.Spans().Finished(); started != finished {
				t.Errorf("span ledger open at drain: %d started, %d finished", started, finished)
			}
		})
	}
}

// TestSpanTableRenders smoke-tests the human-readable waterfall on a
// real run.
func TestSpanTableRenders(t *testing.T) {
	o := Options{Workload: tiny(t, "stream"), Software: swpref.Stride,
		Obs: obs.New(obs.Config{Spans: true, SpanEvery: 8})}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Spans().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dramsvc%") || !strings.Contains(out, "none") {
		t.Errorf("waterfall missing expected content:\n%s", out)
	}
}
