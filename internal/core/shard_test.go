package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
)

// This file holds the differential equivalence tests for intra-run core
// sharding (shard.go): every supported configuration must produce a
// Result and epoch/pfreport/cpistack/trace streams byte-identical to the
// serial loop, at every shard count, with and without cycle skipping.
// This is the contract that makes Options.Shards purely a wall-clock
// knob.

// runShard executes o at the given shard count and skip setting with the
// full observability bundle enabled, returning the Result and every
// output stream keyed by name.
func runShard(t *testing.T, o Options, shards int, noskip bool) (*Result, map[string]string) {
	t.Helper()
	oo := o
	oo.Shards = shards
	oo.NoCycleSkip = noskip
	oo.Obs = obs.New(obs.Config{SampleEvery: 512, TraceCapacity: 1 << 14,
		PFReport: true, CPIStack: true, CPIEpoch: 512})
	s, err := New(oo)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 && s.Shards() < 2 {
		t.Fatalf("shards=%d resolved to %d; the sharded path is not under test", shards, s.Shards())
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string]string{}
	var buf bytes.Buffer
	if err := oo.Obs.Sampler.WriteJSONL(&buf, map[string]string{"bench": res.Benchmark}); err != nil {
		t.Fatal(err)
	}
	streams["epoch"] = buf.String()
	buf.Reset()
	if err := s.PFReport().WriteJSONL(&buf, "run"); err != nil {
		t.Fatal(err)
	}
	streams["pfreport"] = buf.String()
	buf.Reset()
	if err := s.CPIStack().WriteJSONL(&buf, "run"); err != nil {
		t.Fatal(err)
	}
	streams["cpistack"] = buf.String()
	buf.Reset()
	tw, err := obs.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.AddRun(1, "run", "core", oo.Obs.Tracer); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	streams["trace"] = buf.String()
	return res, streams
}

// TestShardEquivalenceMatrix sweeps the full shards x skip grid against
// the serial every-cycle reference for configurations exercising every
// cross-core touch point: the shared dispatcher (any run), per-core
// pools (any memory traffic), attribution shards (PFReport always on
// here), and staged tracing (throttle-degree and prefetch events).
func TestShardEquivalenceMatrix(t *testing.T) {
	cases := []struct {
		name string
		opts func(t *testing.T) Options
	}{
		{"baseline", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "monte")}
		}},
		{"mthwp-throttle", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "conv"), Throttle: true,
				Hardware: func() prefetch.Prefetcher {
					return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
				}}
		}},
		{"swp-stride-throttle", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "stream"), Software: swpref.Stride, Throttle: true}
		}},
		{"stride-filter-checks", func(t *testing.T) Options {
			return Options{Workload: tiny(t, "mersenne"), PollutionFilter: true,
				Checks: true, CheckEvery: 1000,
				Hardware: func() prefetch.Prefetcher {
					return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true})
				}}
		}},
	}
	grid := []struct {
		shards int
		noskip bool
	}{
		{1, true}, {4, false}, {4, true}, {8, false}, {8, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			o := tc.opts(t)
			refRes, refStreams := runShard(t, o, 1, false)
			for _, g := range grid {
				label := fmt.Sprintf("shards=%d noskip=%v", g.shards, g.noskip)
				res, streams := runShard(t, o, g.shards, g.noskip)
				if !reflect.DeepEqual(res, refRes) {
					t.Errorf("%s: Result diverges from the serial reference\ngot:  %+v\nwant: %+v",
						label, res, refRes)
				}
				for name, ref := range refStreams {
					if streams[name] != ref {
						t.Errorf("%s: %s stream diverges from the serial reference", label, name)
					}
				}
			}
		})
	}
}

// shardAwareInjector promises shard-safety (it does nothing at all) but
// not skip-awareness.
type shardAwareInjector struct{ opaqueInjector }

func (shardAwareInjector) ShardAware() {}

// TestShardOptionResolution covers the Shards validation and effective
// count: negative rejected, oversized clamped to the core count, opaque
// injectors forcing serial stepping, shard-aware injectors keeping it.
func TestShardOptionResolution(t *testing.T) {
	if _, err := New(Options{Workload: tiny(t, "monte"), Shards: -1}); err == nil {
		t.Error("Shards=-1 was accepted")
	} else {
		var oe *OptionError
		if !errors.As(err, &oe) || oe.Field != "Shards" {
			t.Errorf("Shards=-1 returned %v, want an OptionError naming Shards", err)
		}
	}
	mk := func(o Options) *Simulator {
		t.Helper()
		o.Workload = tiny(t, "monte")
		s, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if got := mk(Options{}).Shards(); got != 1 {
		t.Errorf("default shards = %d, want 1", got)
	}
	if got := mk(Options{Shards: 64}).Shards(); got != 14 {
		t.Errorf("Shards=64 resolved to %d, want the core count (14)", got)
	}
	if got := mk(Options{Shards: 4, Inject: opaqueInjector{}}).Shards(); got != 1 {
		t.Errorf("opaque injector left shards at %d, want forced serial (1)", got)
	}
	s := mk(Options{Shards: 4, Inject: shardAwareInjector{}})
	if got := s.Shards(); got != 4 {
		t.Errorf("shard-aware injector resolved shards to %d, want 4", got)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("sharded run with shard-aware injector failed: %v", err)
	}
}
