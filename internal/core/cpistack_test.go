package core

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

// This file holds the differential and conservation tests for
// cycle accounting: with -cpistack off, accounting must be invisible
// (Result and epoch JSONL byte-identical); with it on, every core-cycle
// must land in exactly one bucket, with and without cycle skipping.

// cpiConfigs is the configuration matrix the CPI-stack tests sweep:
// every distinct stall shape — baseline, software prefetch, hardware
// prefetch with throttling (MRQ pressure), and perfect memory (no
// fill waits at all).
func cpiConfigs(t *testing.T) []struct {
	name string
	opts Options
} {
	t.Helper()
	return []struct {
		name string
		opts Options
	}{
		{"baseline", Options{Workload: tiny(t, "monte")}},
		{"mtswp", Options{Workload: tiny(t, "mersenne"), Software: swpref.MTSWP}},
		{"mthwp-throttle", Options{Workload: tiny(t, "conv"), Throttle: true,
			Hardware: func() prefetch.Prefetcher {
				return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
			}}},
		{"perfect-memory", Options{Workload: tiny(t, "stream"), PerfectMemory: true}},
	}
}

// TestCPIStackOffIsInvisible is the zero-cost contract: enabling cycle
// accounting must change nothing the simulator reports elsewhere. Each
// configuration runs with Config.CPIStack off and on — under both the
// skipping and the every-cycle loop — and the Result structs and epoch
// JSONL streams must be byte-identical.
func TestCPIStackOffIsInvisible(t *testing.T) {
	for _, tc := range cpiConfigs(t) {
		tc := tc
		for _, noskip := range []bool{false, true} {
			noskip := noskip
			name := tc.name + "/skip"
			if noskip {
				name = tc.name + "/noskip"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				run := func(cpiOn bool) (*Result, []byte) {
					o := tc.opts
					o.NoCycleSkip = noskip
					o.Obs = obs.New(obs.Config{SampleEvery: 512, CPIStack: cpiOn})
					s, err := New(o)
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.Run()
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := o.Obs.Sampler.WriteJSONL(&buf, map[string]string{"bench": res.Benchmark}); err != nil {
						t.Fatal(err)
					}
					return res, buf.Bytes()
				}
				off, offJSON := run(false)
				on, onJSON := run(true)
				if !reflect.DeepEqual(off, on) {
					t.Errorf("results diverge with accounting on\noff: %+v\non:  %+v", off, on)
				}
				if !bytes.Equal(offJSON, onJSON) {
					t.Errorf("epoch samples diverge with accounting on\noff: %s\non:  %s", offJSON, onJSON)
				}
			})
		}
	}
}

// TestCPIStackSkipEquivalence is the exactness contract for bulk span
// attribution: the CPI stack a skipping run produces — per-core bucket
// totals, the epoch time series, and every epoch's latency-tolerance
// snapshot — must equal the one an every-cycle run produces.
func TestCPIStackSkipEquivalence(t *testing.T) {
	for _, tc := range cpiConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(noskip bool) *obs.CPIStack {
				o := tc.opts
				o.NoCycleSkip = noskip
				o.Checks = true
				o.Obs = obs.New(obs.Config{SampleEvery: 512, CPIStack: true})
				s, err := New(o)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					t.Fatal(err)
				}
				return s.CPIStack()
			}
			skip, full := run(false), run(true)
			if skip.Totals() != full.Totals() {
				t.Errorf("bucket totals diverge with cycle skipping\nskip: %v\nfull: %v",
					skip.Totals(), full.Totals())
			}
			for i := 0; i < full.NumCores(); i++ {
				if skip.Core(i).Buckets != full.Core(i).Buckets {
					t.Errorf("core %d buckets diverge\nskip: %v\nfull: %v",
						i, skip.Core(i).Buckets, full.Core(i).Buckets)
				}
			}
			if !reflect.DeepEqual(skip.Epochs(), full.Epochs()) {
				t.Errorf("epoch series (incl. tolerance snapshots) diverge with cycle skipping")
			}
		})
	}
}

// TestCPIConservationAcrossConfigs arms Checks (so the simulator's own
// conservation sweep runs during and at the end of the run) and then
// cross-foots the final stack: every core must have attributed exactly
// res.Cycles+1 cycles — the run visited cycles 0..res.Cycles inclusive.
func TestCPIConservationAcrossConfigs(t *testing.T) {
	for _, tc := range cpiConfigs(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			o := tc.opts
			o.Checks = true
			o.CheckEvery = 1000
			o.Obs = obs.New(obs.Config{CPIStack: true})
			s, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			p := s.CPIStack()
			if err := p.CheckConservation(res.Cycles, res.Cycles+1); err != nil {
				t.Errorf("final stack does not balance: %v", err)
			}
			if got := p.Core(0).Cycles(); got != res.Cycles+1 {
				t.Errorf("core 0 attributed %d cycles, want %d", got, res.Cycles+1)
			}
			if p.Totals()[obs.BucketIssued] == 0 {
				t.Error("no issued cycles attributed; accounting not wired to the issue site")
			}
		})
	}
}

// TestCPIConservationDetectsDoubleAttribution tampers with a finished
// run's ledger — one extra cycle in one bucket of one core — and the
// conservation check must fire with a typed invariant error.
func TestCPIConservationDetectsDoubleAttribution(t *testing.T) {
	o := Options{Workload: tiny(t, "monte"), Obs: obs.New(obs.Config{CPIStack: true})}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := s.CPIStack()
	if err := p.CheckConservation(res.Cycles, res.Cycles+1); err != nil {
		t.Fatalf("untampered stack does not balance: %v", err)
	}
	p.Core(0).Buckets[obs.BucketIssued]++
	err = p.CheckConservation(res.Cycles, res.Cycles+1)
	if err == nil {
		t.Fatal("double-attributed cycle not detected")
	}
	var inv *simerr.InvariantError
	if !errors.As(err, &inv) {
		t.Fatalf("conservation failure is %T, want *simerr.InvariantError", err)
	}
	if inv.Component != "cpistack" || !strings.Contains(inv.Detail, "core 0") {
		t.Errorf("invariant error does not identify the offender: %v", inv)
	}
}

// stallInjector suppresses core 0's issue stage for the first n cycles.
// It deliberately does not implement EventSource, so the loop visits
// every cycle.
type stallInjector struct{ n uint64 }

func (i stallInjector) StallCore(cyc uint64, core int) bool { return core == 0 && cyc < i.n }
func (stallInjector) OnResponse(uint64, *memreq.Request) ResponseAction {
	return DeliverResponse
}

// TestCPIStackExternalStall: cycles a fault injector suppresses must
// land in the throttled bucket, exactly one per suppressed cycle, and
// conservation must still hold for every core.
func TestCPIStackExternalStall(t *testing.T) {
	const stalled = 100
	o := Options{Workload: tiny(t, "monte"), Inject: stallInjector{n: stalled},
		Checks: true, Obs: obs.New(obs.Config{CPIStack: true})}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := s.CPIStack()
	if got := p.Core(0).Buckets[obs.BucketThrottled]; got != stalled {
		t.Errorf("core 0 throttled bucket = %d, want %d", got, stalled)
	}
	if got := p.Core(1).Buckets[obs.BucketThrottled]; got != 0 {
		t.Errorf("unstalled core 1 has %d throttled cycles", got)
	}
	if err := p.CheckConservation(res.Cycles, res.Cycles+1); err != nil {
		t.Errorf("stack does not balance under injection: %v", err)
	}
}

// TestCPIConservationTableII sweeps the full Table II suite under the
// paper's combined configuration (MT-HWP GS+IP with throttling) with
// Checks armed: the simulator aborts the run itself if any core's
// cycle ledger fails to balance, mid-run or at exit.
func TestCPIConservationTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep in -short mode")
	}
	suite, err := workload.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range suite {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			o := Options{
				Workload: tiny(t, spec.Name),
				Throttle: true,
				Hardware: func() prefetch.Prefetcher {
					return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
				},
				Checks: true,
				Obs:    obs.New(obs.Config{CPIStack: true}),
			}
			s, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CPIStack().CheckConservation(res.Cycles, res.Cycles+1); err != nil {
				t.Errorf("final stack does not balance: %v", err)
			}
		})
	}
}
