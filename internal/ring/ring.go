// Package ring provides a preallocated, growable ring buffer for the
// simulator's hot-path queues (NOC delivery FIFOs, MRQ send queues, DRAM
// per-channel request buffers). Unlike an appended-and-copied slice, a
// ring reaches a steady state after warmup: pushes and pops stop touching
// the allocator entirely, and popping the front is O(1) instead of the
// O(n) copy-down a slice queue pays.
package ring

// Buffer is a FIFO ring over a power-of-two backing array. The zero value
// is an empty, ready-to-use buffer (the first Push allocates). It is
// single-threaded, like the simulation phases that own its instances.
type Buffer[T any] struct {
	buf  []T // len(buf) is a power of two (or 0 before first use)
	head int // index of the front element
	n    int // live elements
}

const minCap = 8

// Len reports the number of buffered elements.
func (b *Buffer[T]) Len() int { return b.n }

// Cap reports the current backing-array capacity.
func (b *Buffer[T]) Cap() int { return len(b.buf) }

// Push appends v at the back, growing the backing array (by doubling)
// only when full — steady-state pushes never allocate.
func (b *Buffer[T]) Push(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&(len(b.buf)-1)] = v
	b.n++
}

// Pop removes and returns the front element; ok=false when empty. The
// vacated slot is zeroed so the buffer never retains pointers to popped
// elements.
func (b *Buffer[T]) Pop() (v T, ok bool) {
	if b.n == 0 {
		return v, false
	}
	v = b.buf[b.head]
	var zero T
	b.buf[b.head] = zero
	b.head = (b.head + 1) & (len(b.buf) - 1)
	b.n--
	return v, true
}

// Front returns the front element without removing it; ok=false when
// empty.
func (b *Buffer[T]) Front() (v T, ok bool) {
	if b.n == 0 {
		return v, false
	}
	return b.buf[b.head], true
}

// At returns the i-th element from the front (0 = front). The caller
// must keep i within [0, Len()).
func (b *Buffer[T]) At(i int) T {
	return b.buf[(b.head+i)&(len(b.buf)-1)]
}

// Set replaces the i-th element from the front. The caller must keep i
// within [0, Len()).
func (b *Buffer[T]) Set(i int, v T) {
	b.buf[(b.head+i)&(len(b.buf)-1)] = v
}

// RemoveAt deletes and returns the i-th element from the front,
// preserving the relative order of the survivors. It shifts whichever
// side of the ring is shorter, so removing near either end is cheap and
// a middle removal costs at most Len()/2 moves.
func (b *Buffer[T]) RemoveAt(i int) T {
	v := b.At(i)
	mask := len(b.buf) - 1
	if i < b.n-1-i {
		// Shift the front segment [0, i) back by one.
		for j := i; j > 0; j-- {
			b.Set(j, b.At(j-1))
		}
		var zero T
		b.buf[b.head] = zero
		b.head = (b.head + 1) & mask
	} else {
		// Shift the back segment (i, n) forward by one.
		for j := i; j < b.n-1; j++ {
			b.Set(j, b.At(j+1))
		}
		var zero T
		b.buf[(b.head+b.n-1)&mask] = zero
	}
	b.n--
	return v
}

// Reset empties the buffer, zeroing live slots so no elements are
// retained, but keeps the backing array for reuse.
func (b *Buffer[T]) Reset() {
	var zero T
	for i := 0; i < b.n; i++ {
		b.buf[(b.head+i)&(len(b.buf)-1)] = zero
	}
	b.head, b.n = 0, 0
}

// grow doubles the backing array and re-linearises the elements so the
// front lands at index 0.
func (b *Buffer[T]) grow() {
	newCap := len(b.buf) * 2
	if newCap == 0 {
		newCap = minCap
	}
	nb := make([]T, newCap)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)&(len(b.buf)-1)]
	}
	b.buf = nb
	b.head = 0
}
