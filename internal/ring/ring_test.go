package ring

import (
	"math/rand"
	"testing"
)

func TestPushPopWraparound(t *testing.T) {
	var b Buffer[int]
	if _, ok := b.Pop(); ok {
		t.Fatal("Pop on empty buffer reported ok")
	}
	// Force many wraps with a small live population.
	next, expect := 0, 0
	for i := 0; i < 1000; i++ {
		for j := 0; j < 3; j++ {
			b.Push(next)
			next++
		}
		for j := 0; j < 3; j++ {
			v, ok := b.Pop()
			if !ok || v != expect {
				t.Fatalf("Pop = %d,%v want %d", v, ok, expect)
			}
			expect++
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after balanced push/pop", b.Len())
	}
	if b.Cap() > minCap {
		t.Fatalf("Cap = %d, grew despite live population <= 3", b.Cap())
	}
}

func TestGrowPreservesOrder(t *testing.T) {
	var b Buffer[int]
	// Misalign head first so growth must re-linearise.
	for i := 0; i < 5; i++ {
		b.Push(i)
	}
	for i := 0; i < 5; i++ {
		b.Pop()
	}
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	if f, _ := b.Front(); f != 0 {
		t.Fatalf("Front = %d want 0", f)
	}
	for i := 0; i < 100; i++ {
		if got := b.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	for i := 0; i < 100; i++ {
		if v, _ := b.Pop(); v != i {
			t.Fatalf("Pop = %d want %d", v, i)
		}
	}
}

func TestRemoveAtAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b Buffer[int]
	var oracle []int
	next := 0
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op < 2 || len(oracle) == 0:
			b.Push(next)
			oracle = append(oracle, next)
			next++
		case op == 2:
			i := rng.Intn(len(oracle))
			got := b.RemoveAt(i)
			want := oracle[i]
			oracle = append(oracle[:i], oracle[i+1:]...)
			if got != want {
				t.Fatalf("step %d: RemoveAt(%d) = %d want %d", step, i, got, want)
			}
		default:
			got, _ := b.Pop()
			want := oracle[0]
			oracle = oracle[1:]
			if got != want {
				t.Fatalf("step %d: Pop = %d want %d", step, got, want)
			}
		}
		if b.Len() != len(oracle) {
			t.Fatalf("step %d: Len = %d want %d", step, b.Len(), len(oracle))
		}
		for i, want := range oracle {
			if got := b.At(i); got != want {
				t.Fatalf("step %d: At(%d) = %d want %d", step, i, got, want)
			}
		}
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	var b Buffer[*int]
	x := 7
	for i := 0; i < 20; i++ {
		b.Push(&x)
	}
	c := b.Cap()
	b.Reset()
	if b.Len() != 0 || b.Cap() != c {
		t.Fatalf("after Reset: Len=%d Cap=%d want 0,%d", b.Len(), b.Cap(), c)
	}
	for _, p := range b.buf {
		if p != nil {
			t.Fatal("Reset retained a pointer")
		}
	}
}

func TestPopZeroesSlot(t *testing.T) {
	var b Buffer[*int]
	x := 1
	b.Push(&x)
	b.Pop()
	for _, p := range b.buf {
		if p != nil {
			t.Fatal("Pop retained a pointer")
		}
	}
}
