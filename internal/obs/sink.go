package obs

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// Sink fans a sequence of simulation runs into shared output files: a
// JSONL metrics file (one line per run per epoch) and a single Chrome
// trace file in which each run is one process. The experiment harness
// holds one Sink per invocation and attaches an Observer to every
// simulation it launches.
//
// Sink is safe for concurrent use: the parallel harness finishes runs
// from many goroutines. Each run's metrics lines are buffered and
// flushed as one atomic write, and its trace events are appended under
// the sink lock, so concurrent runs never interleave inside each
// other's records. Finish is idempotent per run key — a retried or
// duplicated completion records nothing the second time.
//
// A nil *Sink is fully disabled: Observer returns nil (which in turn
// disables sampling and tracing inside the simulator) and Finish/Close do
// nothing, so the harness carries no conditionals.
type Sink struct {
	cfg Config

	mu       sync.Mutex
	metrics  io.Writer
	trace    *TraceWriter
	pfreport io.Writer
	cpistack io.Writer
	spans    io.Writer
	runs     int
	done     map[string]bool
	closed   bool
}

// NewSink builds a sink. metrics, trace, pfreport, cpistack, and spans
// may each be nil to disable that output; when all are nil the sink
// itself is nil (disabled).
func NewSink(metrics, trace, pfreport, cpistack, spans io.Writer, cfg Config) (*Sink, error) {
	if metrics == nil && trace == nil && pfreport == nil && cpistack == nil && spans == nil {
		return nil, nil
	}
	s := &Sink{cfg: cfg, metrics: metrics, pfreport: pfreport, cpistack: cpistack, spans: spans, done: make(map[string]bool)}
	if metrics == nil {
		s.cfg.SampleEvery = 0
	}
	if trace != nil {
		if s.cfg.TraceCapacity == 0 {
			s.cfg.TraceCapacity = DefaultTraceCapacity
		}
		tw, err := NewTraceWriter(trace)
		if err != nil {
			return nil, err
		}
		s.trace = tw
	} else {
		s.cfg.TraceCapacity = 0
	}
	s.cfg.PFReport = pfreport != nil
	s.cfg.CPIStack = cpistack != nil
	s.cfg.Spans = spans != nil
	return s, nil
}

// Observer creates a fresh Observer for one run, or nil when the sink is
// disabled.
func (s *Sink) Observer() *Observer {
	if s == nil {
		return nil
	}
	return New(s.cfg)
}

// Streams names the JSONL streams this sink records — the artifact
// blobs a stored run must carry before it can substitute for a live
// one. Tracing is excluded: it has no per-run replayable form (see
// NeedsLive). A nil sink records nothing.
func (s *Sink) Streams() []string {
	if s == nil {
		return nil
	}
	var out []string
	if s.metrics != nil {
		out = append(out, "metrics")
	}
	if s.pfreport != nil {
		out = append(out, "pfreport")
	}
	if s.cpistack != nil {
		out = append(out, "cpistack")
	}
	if s.spans != nil {
		out = append(out, "spans")
	}
	return out
}

// NeedsLive reports whether this sink requires live simulations: the
// Chrome-trace stream serialises each run's event ring directly into a
// shared JSON array, which cannot be reproduced from stored artifacts,
// so a tracing sweep must bypass result-store reads to keep its trace
// complete.
func (s *Sink) NeedsLive() bool { return s != nil && s.trace != nil }

// Capture renders one finished run's enabled JSONL streams into named
// artifact blobs — byte-for-byte what Finish appends to the shared
// files — for committing alongside the Result in a persistent store.
// A nil sink or observer captures nothing.
func (s *Sink) Capture(runKey string, o *Observer) (map[string][]byte, error) {
	if s == nil || o == nil {
		return nil, nil
	}
	out := make(map[string][]byte)
	if s.metrics != nil && o.Sampler != nil {
		var buf bytes.Buffer
		if err := o.Sampler.WriteJSONL(&buf, map[string]string{"run": runKey}); err != nil {
			return nil, fmt.Errorf("obs: capture metrics for %s: %w", runKey, err)
		}
		out["metrics"] = buf.Bytes()
	}
	if s.pfreport != nil && o.PF != nil {
		var buf bytes.Buffer
		if err := o.PF.WriteJSONL(&buf, runKey); err != nil {
			return nil, fmt.Errorf("obs: capture pfreport for %s: %w", runKey, err)
		}
		out["pfreport"] = buf.Bytes()
	}
	if s.cpistack != nil && o.CPI != nil {
		var buf bytes.Buffer
		if err := o.CPI.WriteJSONL(&buf, runKey); err != nil {
			return nil, fmt.Errorf("obs: capture cpistack for %s: %w", runKey, err)
		}
		out["cpistack"] = buf.Bytes()
	}
	if s.spans != nil && o.Spans != nil {
		var buf bytes.Buffer
		if err := o.Spans.WriteJSONL(&buf, runKey); err != nil {
			return nil, fmt.Errorf("obs: capture spans for %s: %w", runKey, err)
		}
		out["spans"] = buf.Bytes()
	}
	return out, nil
}

// FinishStored records a run from previously captured artifacts — the
// store-hit path — under the same per-key idempotency and post-Close
// inertness as Finish. Only streams this sink has enabled are written;
// the caller guarantees those are present (store.Get's need parameter).
func (s *Sink) FinishStored(runKey string, artifacts map[string][]byte) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.done[runKey] {
		return nil
	}
	s.done[runKey] = true
	for _, st := range []struct {
		name string
		w    io.Writer
	}{{"metrics", s.metrics}, {"pfreport", s.pfreport}, {"cpistack", s.cpistack}, {"spans", s.spans}} {
		if st.w == nil {
			continue
		}
		if b, ok := artifacts[st.name]; ok && len(b) > 0 {
			if _, err := st.w.Write(b); err != nil {
				return fmt.Errorf("obs: stored %s for %s: %w", st.name, runKey, err)
			}
		}
	}
	s.runs++
	return nil
}

// Finish flushes one completed run's observer into the shared files,
// tagging its metrics lines and trace process with the run key. A key
// that was already recorded (or a Finish after Close) is a no-op, so
// memoised runs are recorded exactly once, under the key of their first
// completed execution.
func (s *Sink) Finish(runKey string, o *Observer) error {
	if s == nil || o == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.done[runKey] {
		return nil
	}
	// Mark before writing: a failed write aborts the harness, and a
	// retry must not append a second partial record to the shared files.
	s.done[runKey] = true
	if s.metrics != nil && o.Sampler != nil {
		var buf bytes.Buffer
		meta := map[string]string{"run": runKey}
		if err := o.Sampler.WriteJSONL(&buf, meta); err != nil {
			return fmt.Errorf("obs: metrics for %s: %w", runKey, err)
		}
		if _, err := s.metrics.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("obs: metrics for %s: %w", runKey, err)
		}
	}
	if s.trace != nil && o.Tracer != nil {
		if err := s.trace.AddRun(s.runs, runKey, "core", o.Tracer); err != nil {
			return fmt.Errorf("obs: trace for %s: %w", runKey, err)
		}
	}
	if s.trace != nil && o.Spans != nil {
		// Flow events come from the span records, never from the Tracer
		// ring: enabling spans changes nothing in the ring, it only
		// appends this extra flow section per run.
		if err := s.trace.AddSpanFlows(s.runs, o.Spans); err != nil {
			return fmt.Errorf("obs: span flows for %s: %w", runKey, err)
		}
	}
	if s.pfreport != nil && o.PF != nil {
		var buf bytes.Buffer
		if err := o.PF.WriteJSONL(&buf, runKey); err != nil {
			return fmt.Errorf("obs: pfreport for %s: %w", runKey, err)
		}
		if _, err := s.pfreport.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("obs: pfreport for %s: %w", runKey, err)
		}
	}
	if s.cpistack != nil && o.CPI != nil {
		var buf bytes.Buffer
		if err := o.CPI.WriteJSONL(&buf, runKey); err != nil {
			return fmt.Errorf("obs: cpistack for %s: %w", runKey, err)
		}
		if _, err := s.cpistack.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("obs: cpistack for %s: %w", runKey, err)
		}
	}
	if s.spans != nil && o.Spans != nil {
		var buf bytes.Buffer
		if err := o.Spans.WriteJSONL(&buf, runKey); err != nil {
			return fmt.Errorf("obs: spans for %s: %w", runKey, err)
		}
		if _, err := s.spans.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("obs: spans for %s: %w", runKey, err)
		}
	}
	s.runs++
	return nil
}

// Close finalizes the trace file's JSON array. Later Finish calls are
// no-ops, so stragglers from an aborted parallel experiment cannot write
// past the closing bracket.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.trace.Close()
}
