package obs

import (
	"fmt"
	"io"
)

// Sink fans a sequence of simulation runs into shared output files: a
// JSONL metrics file (one line per run per epoch) and a single Chrome
// trace file in which each run is one process. The experiment harness
// holds one Sink per invocation and attaches an Observer to every
// simulation it launches.
//
// A nil *Sink is fully disabled: Observer returns nil (which in turn
// disables sampling and tracing inside the simulator) and Finish/Close do
// nothing, so the harness carries no conditionals.
type Sink struct {
	cfg     Config
	metrics io.Writer
	trace   *TraceWriter
	runs    int
}

// NewSink builds a sink. metrics and trace may each be nil to disable
// that output; when both are nil the sink itself is nil (disabled).
func NewSink(metrics, trace io.Writer, cfg Config) (*Sink, error) {
	if metrics == nil && trace == nil {
		return nil, nil
	}
	s := &Sink{cfg: cfg, metrics: metrics}
	if metrics == nil {
		s.cfg.SampleEvery = 0
	}
	if trace != nil {
		if s.cfg.TraceCapacity == 0 {
			s.cfg.TraceCapacity = DefaultTraceCapacity
		}
		tw, err := NewTraceWriter(trace)
		if err != nil {
			return nil, err
		}
		s.trace = tw
	} else {
		s.cfg.TraceCapacity = 0
	}
	return s, nil
}

// Observer creates a fresh Observer for one run, or nil when the sink is
// disabled.
func (s *Sink) Observer() *Observer {
	if s == nil {
		return nil
	}
	return New(s.cfg)
}

// Finish flushes one completed run's observer into the shared files,
// tagging its metrics lines and trace process with the run key.
func (s *Sink) Finish(runKey string, o *Observer) error {
	if s == nil || o == nil {
		return nil
	}
	if s.metrics != nil && o.Sampler != nil {
		meta := map[string]string{"run": runKey}
		if err := o.Sampler.WriteJSONL(s.metrics, meta); err != nil {
			return fmt.Errorf("obs: metrics for %s: %w", runKey, err)
		}
	}
	if s.trace != nil && o.Tracer != nil {
		if err := s.trace.AddRun(s.runs, runKey, "core", o.Tracer); err != nil {
			return fmt.Errorf("obs: trace for %s: %w", runKey, err)
		}
	}
	s.runs++
	return nil
}

// Close finalizes the trace file's JSON array.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	return s.trace.Close()
}
