package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"mtprefetch/internal/simerr"
)

func TestCPIStackNilSafe(t *testing.T) {
	var p *CPIStack
	if c := p.Core(3); c != nil {
		t.Error("nil stack returned a live core")
	}
	if p.NumCores() != 0 {
		t.Error("nil stack reports cores")
	}
	if p.NextTick() != ^uint64(0) {
		t.Error("nil stack schedules an epoch tick")
	}
	p.CloseEpoch(100, nil, nil)
	p.Finish(200, nil, nil)
	if p.Epochs() != nil {
		t.Error("nil stack has epochs")
	}
	if p.Totals() != ([NumBuckets]uint64{}) {
		t.Error("nil stack has totals")
	}
	if cyc, tol := p.Tolerances(); cyc != 0 || tol != nil {
		t.Error("nil stack has tolerance snapshots")
	}
	if err := p.CheckConservation(0, 42); err != nil {
		t.Error("nil stack fails conservation")
	}
	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf, "x"); err != nil || buf.Len() != 0 {
		t.Error("nil stack wrote JSONL")
	}
	if err := p.WriteTable(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil stack wrote a table")
	}
}

func TestBucketString(t *testing.T) {
	want := map[Bucket]string{
		BucketIssued: "issued", BucketIdle: "idle", BucketScoreboard: "scoreboard",
		BucketMRQFull: "mrq_full", BucketThrottled: "throttled", BucketDrain: "drain",
	}
	if len(want) != int(NumBuckets) {
		t.Fatalf("test covers %d buckets, enum has %d", len(want), NumBuckets)
	}
	for b, s := range want {
		if b.String() != s {
			t.Errorf("Bucket(%d).String() = %q, want %q", b, b, s)
		}
	}
	if !strings.Contains(Bucket(200).String(), "200") {
		t.Errorf("out-of-range bucket renders as %q", Bucket(200))
	}
}

// fill attributes the given per-bucket counts to core id.
func fill(p *CPIStack, id int, counts map[Bucket]uint64) {
	c := p.Core(id)
	for b, v := range counts {
		c.Buckets[b] += v
	}
}

func TestCPIStackEpochDeltas(t *testing.T) {
	p := NewCPIStack(1000)
	if p.NextTick() != 1000 {
		t.Fatalf("first tick at %d, want 1000", p.NextTick())
	}
	fill(p, 0, map[Bucket]uint64{BucketIssued: 600, BucketScoreboard: 400})
	fill(p, 1, map[Bucket]uint64{BucketIssued: 1000})
	p.CloseEpoch(999, []Tolerance{{Core: 0, ReadyWarps: 3}}, nil)
	if p.NextTick() != 1999 {
		t.Errorf("next tick at %d, want 1999", p.NextTick())
	}
	// Second epoch: only the deltas since the first close may appear.
	fill(p, 0, map[Bucket]uint64{BucketMRQFull: 1000})
	fill(p, 1, map[Bucket]uint64{BucketIssued: 250, BucketDrain: 750})
	p.CloseEpoch(1999, []Tolerance{{Core: 0, ReadyWarps: 1}}, nil)

	es := p.Epochs()
	if len(es) != 2 {
		t.Fatalf("got %d epochs, want 2", len(es))
	}
	want0 := [NumBuckets]uint64{BucketIssued: 1600, BucketScoreboard: 400}
	if es[0].Buckets != want0 {
		t.Errorf("epoch 0 deltas = %v, want %v", es[0].Buckets, want0)
	}
	want1 := [NumBuckets]uint64{BucketIssued: 250, BucketMRQFull: 1000, BucketDrain: 750}
	if es[1].Buckets != want1 {
		t.Errorf("epoch 1 deltas = %v, want %v", es[1].Buckets, want1)
	}
	if es[1].Cycle != 1999 || es[1].Tol[0].ReadyWarps != 1 {
		t.Errorf("epoch 1 snapshot wrong: %+v", es[1])
	}
	// The latest tolerance snapshot tracks the most recent close.
	cyc, tol := p.Tolerances()
	if cyc != 1999 || len(tol) != 1 || tol[0].ReadyWarps != 1 {
		t.Errorf("Tolerances() = %d %+v", cyc, tol)
	}
}

func TestCPIStackCloseEpochCopiesTol(t *testing.T) {
	p := NewCPIStack(100)
	buf := []Tolerance{{Core: 0, ReadyWarps: 7}}
	p.CloseEpoch(100, buf, nil)
	buf[0].ReadyWarps = 99 // simulator reuses its scratch buffer
	if p.Epochs()[0].Tol[0].ReadyWarps != 7 {
		t.Error("CloseEpoch aliased the caller's tolerance buffer")
	}
	_, tol := p.Tolerances()
	if tol[0].ReadyWarps != 7 {
		t.Error("published snapshot aliased the caller's buffer")
	}
	tol[0].ReadyWarps = 5
	if _, again := p.Tolerances(); again[0].ReadyWarps != 7 {
		t.Error("Tolerances() returned an aliased slice")
	}
}

func TestCPIStackFinishClosesPartialEpoch(t *testing.T) {
	p := NewCPIStack(1000)
	fill(p, 0, map[Bucket]uint64{BucketIssued: 500})
	p.Finish(499, nil, nil)
	if len(p.Epochs()) != 1 {
		t.Fatalf("partial epoch not closed: %d epochs", len(p.Epochs()))
	}
	// A second Finish at the same cycle must not duplicate the epoch.
	p.Finish(499, nil, nil)
	if len(p.Epochs()) != 1 {
		t.Error("Finish at the same cycle closed a second epoch")
	}
}

func TestCPIStackConservation(t *testing.T) {
	p := NewCPIStack(0)
	fill(p, 0, map[Bucket]uint64{BucketIssued: 60, BucketScoreboard: 40})
	fill(p, 1, map[Bucket]uint64{BucketIdle: 100})
	if err := p.CheckConservation(99, 100); err != nil {
		t.Errorf("balanced stack fails: %v", err)
	}
	p.Core(1).Buckets[BucketDrain]++ // double-attributed cycle
	err := p.CheckConservation(99, 100)
	if err == nil {
		t.Fatal("unbalanced stack passes")
	}
	var inv *simerr.InvariantError
	if !errors.As(err, &inv) {
		t.Fatalf("conservation failure is %T, want *simerr.InvariantError", err)
	}
	if inv.Component != "cpistack" || !strings.Contains(inv.Detail, "core 1") {
		t.Errorf("invariant error does not identify the offender: %v", inv)
	}
}

func TestCPIStackWriteJSONL(t *testing.T) {
	p := NewCPIStack(1000)
	fill(p, 0, map[Bucket]uint64{BucketIssued: 600, BucketMRQFull: 400})
	fill(p, 1, map[Bucket]uint64{BucketScoreboard: 1000})
	p.CloseEpoch(999, []Tolerance{{Core: 0, ReadyWarps: 2, MRQFree: 6, OldestFillAge: 40}}, nil)

	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf, "runkey"); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		kind, _ := rec["record"].(string)
		counts[kind]++
		if rec["run"] != "runkey" {
			t.Errorf("%s line missing run key: %v", kind, rec)
		}
		switch kind {
		case "cpiepoch":
			if rec["issued"] != float64(600) || rec["scoreboard"] != float64(1000) {
				t.Errorf("epoch deltas wrong: %v", rec)
			}
		case "cpitol":
			if rec["ready_warps"] != float64(2) || rec["oldest_fill_age"] != float64(40) {
				t.Errorf("tolerance snapshot wrong: %v", rec)
			}
		case "cpistack":
			if rec["core"] == float64(0) && rec["mrq_full"] != float64(400) {
				t.Errorf("core 0 stack wrong: %v", rec)
			}
		case "cpisummary":
			if rec["cores"] != float64(2) || rec["cycles"] != float64(2000) {
				t.Errorf("summary wrong: %v", rec)
			}
		}
	}
	want := map[string]int{"cpiepoch": 1, "cpitol": 1, "cpistack": 2, "cpisummary": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("record counts = %v, want %v", counts, want)
	}
}

func TestCPIStackWriteTable(t *testing.T) {
	p := NewCPIStack(0)
	fill(p, 0, map[Bucket]uint64{BucketIssued: 750, BucketScoreboard: 250})
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"issued", "scoreboard", "mrq_full", "total",
		"share", "75.0%", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCPIStackEmitsCounterEvents(t *testing.T) {
	tr := NewTracer(128)
	p := NewCPIStack(100)
	fill(p, 0, map[Bucket]uint64{BucketIssued: 90, BucketScoreboard: 10})
	p.CloseEpoch(100, nil, tr)
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.AddRun(0, "run", "core", tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cpi issued c0") || !strings.Contains(out, `"ph":"C"`) {
		t.Errorf("trace missing CPI counter track:\n%s", out)
	}
}

func TestObserverConfigCPIStack(t *testing.T) {
	if o := New(Config{}); o.CPI != nil {
		t.Error("CPI stack built without being requested")
	}
	o := New(Config{CPIStack: true, CPIEpoch: 777})
	if o.CPI == nil {
		t.Fatal("CPIStack config did not build a stack")
	}
	if o.CPI.NextTick() != 777 {
		t.Errorf("configured epoch not honoured: first tick at %d", o.CPI.NextTick())
	}
	// Epoch defaults to the sampler cadence when unset.
	o = New(Config{CPIStack: true, SampleEvery: 512})
	if o.CPI.NextTick() != 512 {
		t.Errorf("epoch did not default to SampleEvery: %d", o.CPI.NextTick())
	}
}
