package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mtprefetch/internal/memreq"
)

// EventKind enumerates the structured simulation events the tracer
// records.
type EventKind uint8

const (
	// EvPrefetchIssued: a prefetch entered the MRQ. Arg = block address,
	// Arg2 = generating PC.
	EvPrefetchIssued EventKind = iota
	// EvPrefetchThrottled: a candidate was dropped by the throttle
	// engine. Arg = block address, Arg2 = current degree.
	EvPrefetchThrottled
	// EvPrefetchFiltered: a candidate was dropped by the pollution
	// filter. Arg = block address, Arg2 = generating PC.
	EvPrefetchFiltered
	// EvEarlyEviction: a prefetched block was evicted before first use.
	// Arg = victim block address.
	EvEarlyEviction
	// EvLatePrefetch: a prefetch completed after a demand merged into it.
	// Arg = block address.
	EvLatePrefetch
	// EvThrottleDegree: a throttle period closed. Arg = new degree,
	// Arg2 = previous degree. Emitted every period so the Chrome trace
	// renders a step-function counter track.
	EvThrottleDegree
	// EvStridePromotion: MT-HWP promoted a (PC, stride) pair into the GS
	// table. Arg = PC, Arg2 = stride.
	EvStridePromotion
	// EvDemandAccess: offline replay only — one warp demand access.
	// Arg = block address, Arg2 = 1 when served by a prefetched block.
	EvDemandAccess
	// EvCPIBucket: a CPI-stack epoch closed. Arg = cycles the bucket
	// absorbed during the epoch, Arg2 = the Bucket, Track = core. Emitted
	// per bucket per core so the Chrome trace renders per-core counter
	// tracks of where cycles go.
	EvCPIBucket
)

var eventNames = [...]string{
	EvPrefetchIssued:    "prefetch issued",
	EvPrefetchThrottled: "prefetch throttled",
	EvPrefetchFiltered:  "prefetch filtered",
	EvEarlyEviction:     "early eviction",
	EvLatePrefetch:      "late prefetch",
	EvThrottleDegree:    "throttle degree",
	EvStridePromotion:   "stride promotion",
	EvDemandAccess:      "demand access",
	EvCPIBucket:         "cpi bucket",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one ring entry; Track is the per-core (or, for offline replay,
// per-warp) trace lane.
type Event struct {
	Cycle uint64
	Arg   uint64
	Arg2  int64
	Track int32
	Kind  EventKind
}

// Tracer is a fixed-capacity event ring: when full, the oldest events are
// overwritten, so the export holds the newest window of the run. A nil
// Tracer drops every Emit — instrumentation sites need no branching
// beyond the implicit nil check.
type Tracer struct {
	ring    []Event
	next    int
	dropped uint64

	// Per-track staging for the sharded core-stepping phase (BeginStage):
	// while staging, Emit appends to the emitting track's buffer instead
	// of the ring, and EndStage replays the buffers in track order.
	staging bool
	stages  [][]Event
}

// NewTracer builds a tracer with the given ring capacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Emit records one event; nil tracers ignore the call.
func (t *Tracer) Emit(kind EventKind, cycle uint64, track int, arg uint64, arg2 int64) {
	if t == nil {
		return
	}
	e := Event{Cycle: cycle, Arg: arg, Arg2: arg2, Track: int32(track), Kind: kind}
	if t.staging && track >= 0 && track < len(t.stages) {
		t.stages[track] = append(t.stages[track], e)
		return
	}
	t.push(e)
}

// push appends one event to the ring, overwriting the oldest when full.
func (t *Tracer) push(e Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	t.dropped++
}

// BeginStage switches the tracer into per-track staging for the sharded
// core-stepping phase: during it each core emits only on its own track
// (its core id), so buffering per track and replaying in ascending track
// order at EndStage reproduces the exact ring order of the serial core
// loop, which steps core 0 to completion before touching core 1. Tracks
// at or above tracks — none occur during the stepping phase — fall
// through to the ring directly.
func (t *Tracer) BeginStage(tracks int) {
	if t == nil {
		return
	}
	for len(t.stages) < tracks {
		t.stages = append(t.stages, nil)
	}
	t.staging = true
}

// EndStage replays the staged events in track order and returns the
// tracer to direct ring emission.
func (t *Tracer) EndStage() {
	if t == nil {
		return
	}
	t.staging = false
	for i := range t.stages {
		for _, e := range t.stages[i] {
			t.push(e)
		}
		t.stages[i] = t.stages[i][:0]
	}
}

// Dropped reports how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in cycle order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, len(t.ring))
	copy(out, t.ring[t.next:])
	copy(out[len(t.ring)-t.next:], t.ring[:t.next])
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// Count reports retained events, for tests.
func (t *Tracer) Count() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// TraceWriter streams one or more runs' events as a single Chrome
// trace-event JSON array (the format chrome://tracing and Perfetto load).
// Each run becomes one "process" (pid) whose name is the run key; each
// core becomes one "thread" (tid) within it, giving per-core tracks.
type TraceWriter struct {
	w      io.Writer
	wrote  bool
	closed bool
}

// NewTraceWriter starts the JSON array on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return nil, err
	}
	return &TraceWriter{w: w}, nil
}

func (tw *TraceWriter) emit(obj map[string]any) error {
	b, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	sep := ",\n"
	if !tw.wrote {
		sep = ""
		tw.wrote = true
	}
	if _, err := io.WriteString(tw.w, sep); err != nil {
		return err
	}
	_, err = tw.w.Write(b)
	return err
}

// AddRun appends one tracer's events under pid with the given process
// name. trackPrefix names the tids ("core" for the timing simulator,
// "warp" for offline replay). A nil tracer adds nothing.
func (tw *TraceWriter) AddRun(pid int, name, trackPrefix string, t *Tracer) error {
	if tw == nil || t == nil {
		return nil
	}
	events := t.Events()
	if err := tw.emit(map[string]any{
		"name": "process_name", "ph": "M", "pid": pid,
		"args": map[string]any{"name": name},
	}); err != nil {
		return err
	}
	seen := map[int32]bool{}
	var tracks []int32
	for i := range events {
		if tr := events[i].Track; !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, tid := range tracks {
		if err := tw.emit(map[string]any{
			"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
			"args": map[string]any{"name": fmt.Sprintf("%s %d", trackPrefix, tid)},
		}); err != nil {
			return err
		}
	}
	if t.Dropped() > 0 {
		if err := tw.emit(map[string]any{
			"name": fmt.Sprintf("ring wrapped: %d oldest events dropped", t.Dropped()),
			"ph":   "i", "s": "g", "ts": tsOf(events), "pid": pid, "tid": 0,
		}); err != nil {
			return err
		}
	}
	for i := range events {
		if err := tw.emit(eventJSON(pid, &events[i])); err != nil {
			return err
		}
	}
	return nil
}

// AddSpanFlows appends one flow-event chain per filled span under pid:
// a flow start ("ph":"s") at issue, a step ("ph":"t") at each stage
// boundary the span crossed, and a binding end ("ph":"f") at the fill.
// Loaded in Perfetto alongside the run's event tracks, the arrows
// visualise where each sampled request spent its latency. Records come
// from SpanSet.Records (sorted by id), so the section is byte-stable
// across -j/-shards/-noskip; it never touches the Tracer ring.
func (tw *TraceWriter) AddSpanFlows(pid int, ss *SpanSet) error {
	if tw == nil || ss == nil {
		return nil
	}
	steps := []memreq.SpanSite{
		memreq.SpanMRQDequeue, memreq.SpanNoCReqDeliver,
		memreq.SpanDRAMSched, memreq.SpanDRAMDone,
	}
	for _, rec := range ss.Records() {
		if rec.Term != memreq.TermFill {
			continue
		}
		id := fmt.Sprintf("0x%x", rec.ID)
		flow := func(ph string, site memreq.SpanSite) map[string]any {
			return map[string]any{
				"name": "memspan", "cat": "span", "ph": ph, "id": id,
				"ts": rec.Stamp[site], "pid": pid, "tid": rec.Core,
			}
		}
		start := flow("s", memreq.SpanIssue)
		start["args"] = map[string]any{
			"source": rec.Source.String(), "warp": rec.Warp, "pc": rec.PC,
		}
		if err := tw.emit(start); err != nil {
			return err
		}
		for _, site := range steps {
			if !rec.has(site) {
				continue
			}
			if err := tw.emit(flow("t", site)); err != nil {
				return err
			}
		}
		end := flow("f", memreq.SpanFill)
		end["bp"] = "e"
		if err := tw.emit(end); err != nil {
			return err
		}
	}
	return nil
}

// tsOf returns the first event's timestamp (0 when empty), anchoring
// metadata instants at the window start.
func tsOf(events []Event) uint64 {
	if len(events) == 0 {
		return 0
	}
	return events[0].Cycle
}

// eventJSON maps one Event to a trace-event object. Timestamps are in
// "microseconds", which we equate with core cycles — units in the viewer
// are nominal.
func eventJSON(pid int, e *Event) map[string]any {
	obj := map[string]any{
		"name": e.Kind.String(),
		"ts":   e.Cycle,
		"pid":  pid,
		"tid":  e.Track,
	}
	switch e.Kind {
	case EvThrottleDegree:
		// Counter events render as a per-core step-function track.
		obj["name"] = fmt.Sprintf("throttle degree c%d", e.Track)
		obj["ph"] = "C"
		obj["args"] = map[string]any{"degree": e.Arg}
	case EvCPIBucket:
		obj["name"] = fmt.Sprintf("cpi %s c%d", Bucket(e.Arg2), e.Track)
		obj["ph"] = "C"
		obj["args"] = map[string]any{"cycles": e.Arg}
	case EvStridePromotion:
		obj["ph"] = "i"
		obj["s"] = "t"
		obj["args"] = map[string]any{"pc": e.Arg, "stride": e.Arg2}
	case EvPrefetchThrottled:
		obj["ph"] = "i"
		obj["s"] = "t"
		obj["args"] = map[string]any{"addr": hexAddr(e.Arg), "degree": e.Arg2}
	case EvDemandAccess:
		obj["ph"] = "i"
		obj["s"] = "t"
		obj["args"] = map[string]any{"addr": hexAddr(e.Arg), "covered": e.Arg2 == 1}
	default:
		obj["ph"] = "i"
		obj["s"] = "t"
		obj["args"] = map[string]any{"addr": hexAddr(e.Arg), "pc": e.Arg2}
	}
	return obj
}

func hexAddr(a uint64) string { return fmt.Sprintf("0x%x", a) }

// Close terminates the JSON array. The TraceWriter must not be used
// afterwards.
func (tw *TraceWriter) Close() error {
	if tw == nil || tw.closed {
		return nil
	}
	tw.closed = true
	_, err := io.WriteString(tw.w, "\n]\n")
	return err
}
