package obs

import (
	"errors"
	"math"
	"strconv"
	"unicode/utf8"
)

// Append-based JSON encoding primitives for the observability JSONL
// writers. They replicate encoding/json's output byte-for-byte (string
// escaping with HTML-safe mode on, the float format selection and
// exponent cleanup of its floatEncoder) so converting a writer from
// json.Marshal to these helpers cannot change committed golden files —
// jsonl_test.go fuzzes that equivalence. What they buy is allocation
// behaviour: everything appends into a caller-reused buffer instead of
// building interface maps and intermediate byte slices per record.

// jsonSafe reports whether byte c can appear verbatim inside a JSON
// string with HTML escaping on (encoding/json's htmlSafeSet).
func jsonSafe(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted, escaped JSON string.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe(c) {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch c {
			case '\\', '"':
				buf = append(buf, '\\', c)
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				// Control characters and the HTML-sensitive <, >, &
				// become \u00xx, matching encoding/json.
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 are valid JSON but break JS string literals;
		// encoding/json escapes them.
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// appendJSONUint appends n as a JSON number.
func appendJSONUint(buf []byte, n uint64) []byte {
	return strconv.AppendUint(buf, n, 10)
}

// errUnsupportedFloat mirrors encoding/json's refusal to encode
// non-finite floats.
var errUnsupportedFloat = errors.New("unsupported value: NaN or Infinity")

// appendJSONFloat appends f as a JSON number using encoding/json's
// format selection: shortest representation, 'f' form except for very
// small or very large magnitudes which use 'e' form with a trimmed
// single-digit exponent ("2e-07" not "2e-07"... i.e. "e-07" → "e-7").
func appendJSONFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return buf, errUnsupportedFloat
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(buf)
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// Trim the leading zero of a single-digit exponent: e-09 → e-9.
		if n := len(buf); n-start >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, nil
}
