package obs

import (
	"sort"
	"sync"

	"mtprefetch/internal/stats"
)

// Labels locate an instrument in the machine: which core it belongs to
// (CoreGlobal for machine-wide components like the DRAM system) and which
// component produced it.
type Labels struct {
	Core      int
	Component string
}

// CoreGlobal is the Core label of machine-wide instruments.
const CoreGlobal = -1

// Kind distinguishes instrument flavours.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing uint64 (aggregated by
	// summing across label sets).
	KindCounter Kind = iota
	// KindGauge is an instantaneous float64 (aggregated by sum or mean).
	KindGauge
	// KindHistogram is a stats.Histogram snapshot (aggregated by merge).
	KindHistogram
)

// Instrument is one registered metric source. The sampling closure reads
// the owning component's live state, so registration costs nothing on the
// simulation's hot path.
type Instrument struct {
	Name   string
	Labels Labels
	Kind   Kind

	counter    func() uint64
	counterPtr *uint64
	gauge      func() float64
	hist       func() stats.Histogram
}

// readCounter samples a counter instrument through whichever source it was
// registered with.
func (in *Instrument) readCounter() uint64 {
	if in.counterPtr != nil {
		return *in.counterPtr
	}
	return in.counter()
}

// Registry holds a simulation's instruments, indexed by name. The index
// itself is guarded by a mutex so registration and aggregation may race
// (the harness debug server snapshots registries from HTTP goroutines);
// the sampling closures still read component state unsynchronised, so
// live-value reads are only meaningful between simulation steps.
type Registry struct {
	mu          sync.RWMutex
	instruments []Instrument
	byName      map[string][]int
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string][]int)}
}

func (r *Registry) add(in Instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := r.byName[in.Name]
	if ids == nil {
		// Most names register once per core; starting at per-core width
		// skips the append ladder the 14-core machine would otherwise
		// walk for every shared name.
		ids = make([]int, 0, 16)
	}
	r.byName[in.Name] = append(ids, len(r.instruments))
	r.instruments = append(r.instruments, in)
}

// Counter registers a counter sampled by fn. Nil receivers and nil fn are
// ignored, so components may register unconditionally.
func (r *Registry) Counter(name string, l Labels, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.add(Instrument{Name: name, Labels: l, Kind: KindCounter, counter: fn})
}

// CounterU64 registers a counter sampled by reading *p directly. It is the
// allocation-free flavour of Counter for the common case where the sample
// is a plain field read: no closure is allocated per instrument, which
// keeps per-run setup off the allocator when a machine registers hundreds
// of counters. Nil receivers and nil p are ignored.
func (r *Registry) CounterU64(name string, l Labels, p *uint64) {
	if r == nil || p == nil {
		return
	}
	r.add(Instrument{Name: name, Labels: l, Kind: KindCounter, counterPtr: p})
}

// Gauge registers an instantaneous value sampled by fn.
func (r *Registry) Gauge(name string, l Labels, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.add(Instrument{Name: name, Labels: l, Kind: KindGauge, gauge: fn})
}

// Histogram registers a distribution sampled by fn.
func (r *Registry) Histogram(name string, l Labels, fn func() stats.Histogram) {
	if r == nil || fn == nil {
		return
	}
	r.add(Instrument{Name: name, Labels: l, Kind: KindHistogram, hist: fn})
}

// Sum aggregates a counter across all label sets. Unknown names sum to 0,
// which keeps aggregation code free of existence checks for optional
// components (throttle engine, MT-HWP tables).
func (r *Registry) Sum(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total uint64
	for _, i := range r.byName[name] {
		if in := &r.instruments[i]; in.Kind == KindCounter {
			total += in.readCounter()
		}
	}
	return total
}

// GaugeSum aggregates a gauge across label sets by summing.
func (r *Registry) GaugeSum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total float64
	for _, i := range r.byName[name] {
		if in := &r.instruments[i]; in.Kind == KindGauge {
			total += in.gauge()
		}
	}
	return total
}

// GaugeMean aggregates a gauge across label sets by averaging; 0 when the
// gauge is unregistered.
func (r *Registry) GaugeMean(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total float64
	n := 0
	for _, i := range r.byName[name] {
		if in := &r.instruments[i]; in.Kind == KindGauge {
			total += in.gauge()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// MergedHistogram merges a histogram across all label sets.
func (r *Registry) MergedHistogram(name string) stats.Histogram {
	var h stats.Histogram
	if r == nil {
		return h
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, i := range r.byName[name] {
		if in := &r.instruments[i]; in.Kind == KindHistogram {
			s := in.hist()
			h.Merge(&s)
		}
	}
	return h
}

// Names returns all registered instrument names, sorted, deduplicated.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each visits every instrument, for exporters.
func (r *Registry) Each(fn func(in *Instrument)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := range r.instruments {
		fn(&r.instruments[i])
	}
}

// SnapshotEntry is one instrument's value frozen at a point in time, in
// a JSON-serialisable form for crash dumps.
type SnapshotEntry struct {
	Name      string  `json:"name"`
	Core      int     `json:"core"`
	Component string  `json:"component"`
	Value     float64 `json:"value"`
}

// Snapshot freezes every instrument's current value, in registration
// order (stable across runs of the same configuration). A nil registry
// yields nil.
func (r *Registry) Snapshot() []SnapshotEntry {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SnapshotEntry, 0, len(r.instruments))
	for i := range r.instruments {
		in := &r.instruments[i]
		out = append(out, SnapshotEntry{
			Name:      in.Name,
			Core:      in.Labels.Core,
			Component: in.Labels.Component,
			Value:     in.Value(),
		})
	}
	return out
}

// Value reads one instrument's current value as a float64 (histograms
// report their mean).
func (in *Instrument) Value() float64 {
	switch in.Kind {
	case KindCounter:
		return float64(in.readCounter())
	case KindGauge:
		return in.gauge()
	case KindHistogram:
		h := in.hist()
		return h.Avg()
	}
	return 0
}
