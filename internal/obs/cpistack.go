package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"mtprefetch/internal/simerr"
)

// Bucket is one CPI-stack loss category. Every core-cycle is attributed
// to exactly one bucket at the issue site (internal/smcore), so the
// per-core sums partition the run's cycles — the conservation invariant
// CheckConservation verifies.
type Bucket uint8

const (
	// BucketIssued: a warp-instruction issued, or the issue stage was
	// still occupied finishing a previous instruction (multi-cycle
	// occupancy counts as useful issue bandwidth, not a stall).
	BucketIssued Bucket = iota
	// BucketIdle: no resident warp at all — the grid is exhausted and
	// this core's blocks have fully drained.
	BucketIdle
	// BucketScoreboard: resident warps exist but every one is stalled
	// waiting on an outstanding fill (operand scoreboard).
	BucketScoreboard
	// BucketMRQFull: at least one stalled warp was ready to issue a
	// memory instruction but the MRQ had no space — the capacity stall
	// the issue_stall_full_mrq counter ticks.
	BucketMRQFull
	// BucketThrottled: the core was externally prevented from issuing
	// (a fault injector holding the issue stage); zero in production
	// runs.
	BucketThrottled
	// BucketDrain: every resident warp finished its program but fills
	// are still outstanding — the end-of-kernel drain/barrier tail.
	BucketDrain

	// NumBuckets is the bucket count, for arrays indexed by Bucket.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	BucketIssued:     "issued",
	BucketIdle:       "idle",
	BucketScoreboard: "scoreboard",
	BucketMRQFull:    "mrq_full",
	BucketThrottled:  "throttled",
	BucketDrain:      "drain",
}

// String implements fmt.Stringer.
func (b Bucket) String() string {
	if b < NumBuckets {
		return bucketNames[b]
	}
	return fmt.Sprintf("Bucket(%d)", uint8(b))
}

// DefaultCPIEpoch is the CPI-stack epoch length when the configuration
// leaves it unset.
const DefaultCPIEpoch = 10_000

// CoreCPI is one core's bucket counters. The core holds a pointer and
// increments Buckets directly on its issue path, so attribution is one
// nil check plus one add per cycle.
type CoreCPI struct {
	Buckets [NumBuckets]uint64
}

// Cycles sums the buckets — the cycles attributed to this core so far.
func (c *CoreCPI) Cycles() uint64 {
	var n uint64
	for _, v := range c.Buckets {
		n += v
	}
	return n
}

// Tolerance is one core's latency-tolerance snapshot: the signals that
// say how much memory latency the core can still hide (ready warps to
// switch to, MRQ/MSHR headroom to issue into, and how stale the oldest
// outstanding fill is).
type Tolerance struct {
	Core           int    `json:"core"`
	ReadyWarps     int    `json:"ready_warps"`     // issue-eligible warps
	ActiveWarps    int    `json:"active_warps"`    // resident, still executing
	LiveWarps      int    `json:"live_warps"`      // resident incl. draining
	MRQOutstanding int    `json:"mrq_outstanding"` // occupied MRQ/MSHR entries
	MRQFree        int    `json:"mrq_free"`        // capacity - outstanding
	OldestFillAge  uint64 `json:"oldest_fill_age"` // cycles the oldest in-flight fill has waited
}

// Epoch is one closed CPI-stack epoch: the machine-wide bucket deltas
// over the epoch and the per-core tolerance snapshots taken at its
// closing cycle.
type Epoch struct {
	Cycle   uint64
	Buckets [NumBuckets]uint64
	Tol     []Tolerance
}

// CPIStack aggregates per-core cycle accounting for one run: lifetime
// per-core bucket counters, an epoch time series of machine-wide bucket
// deltas plus tolerance snapshots, and a mutex-guarded latest snapshot
// the harness debug server reads live. A nil *CPIStack accepts every
// call and does nothing, like every obs component.
type CPIStack struct {
	every     uint64
	next      uint64
	prevCycle uint64

	cores    []*CoreCPI
	prevCore [][NumBuckets]uint64 // per-core totals at the last epoch close
	epochs   []Epoch
	tolStore []Tolerance // arena the epochs' Tol views are carved from

	mu        sync.Mutex
	latest    []Tolerance
	latestCyc uint64
}

// NewCPIStack builds a CPI stack with the given epoch length (0 selects
// DefaultCPIEpoch).
func NewCPIStack(every uint64) *CPIStack {
	if every == 0 {
		every = DefaultCPIEpoch
	}
	return &CPIStack{every: every, next: every}
}

// Core returns core id's bucket counters, growing the table as needed;
// nil receivers return nil (which in turn disables attribution in the
// core holding it).
func (p *CPIStack) Core(id int) *CoreCPI {
	if p == nil {
		return nil
	}
	for len(p.cores) <= id {
		p.cores = append(p.cores, &CoreCPI{})
		p.prevCore = append(p.prevCore, [NumBuckets]uint64{})
	}
	return p.cores[id]
}

// NumCores reports how many cores attached.
func (p *CPIStack) NumCores() int {
	if p == nil {
		return 0
	}
	return len(p.cores)
}

// NextTick reports the cycle of the next epoch boundary (the maximum
// uint64 for a nil stack), so the event-driven simulation loop can skip
// idle spans without missing an epoch close.
func (p *CPIStack) NextTick() uint64 {
	if p == nil {
		return ^uint64(0)
	}
	return p.next
}

// CloseEpoch closes the epoch ending at cycle: it records the per-core
// bucket deltas since the previous close (machine-wide in the epoch
// series, per-core as Chrome counter events into tr when tracing), and
// publishes tol as the latest tolerance snapshot. The tol slice is
// copied, so callers may reuse their buffer.
func (p *CPIStack) CloseEpoch(cycle uint64, tol []Tolerance, tr *Tracer) {
	if p == nil {
		return
	}
	// Carve the epoch's tolerance copy from a shared arena with a
	// full-slice expression: later arena growth either reallocates
	// (earlier epochs keep their old backing arrays) or appends past this
	// view's capacity, so the view stays immutable and steady-state epoch
	// closes stop allocating per call.
	start := len(p.tolStore)
	p.tolStore = append(p.tolStore, tol...)
	e := Epoch{Cycle: cycle, Tol: p.tolStore[start:len(p.tolStore):len(p.tolStore)]}
	for i, c := range p.cores {
		for b := 0; b < int(NumBuckets); b++ {
			d := c.Buckets[b] - p.prevCore[i][b]
			e.Buckets[b] += d
			if tr != nil {
				tr.Emit(EvCPIBucket, cycle, i, d, int64(b))
			}
		}
		p.prevCore[i] = c.Buckets
	}
	p.epochs = append(p.epochs, e)
	p.next = cycle + p.every
	p.prevCycle = cycle

	p.mu.Lock()
	p.latest = e.Tol
	p.latestCyc = cycle
	p.mu.Unlock()
}

// Finish closes the final partial epoch (if it saw any cycles) so short
// runs still produce at least one epoch record.
func (p *CPIStack) Finish(cycle uint64, tol []Tolerance, tr *Tracer) {
	if p == nil || cycle <= p.prevCycle {
		return
	}
	p.CloseEpoch(cycle, tol, tr)
}

// Epochs returns the closed epochs in order.
func (p *CPIStack) Epochs() []Epoch {
	if p == nil {
		return nil
	}
	return p.epochs
}

// Totals sums the buckets across all cores.
func (p *CPIStack) Totals() [NumBuckets]uint64 {
	var t [NumBuckets]uint64
	if p == nil {
		return t
	}
	for _, c := range p.cores {
		for b, v := range c.Buckets {
			t[b] += v
		}
	}
	return t
}

// Tolerances returns the latest published tolerance snapshot and the
// cycle it was taken at. It is safe to call from another goroutine while
// the simulation runs (the harness debug server does), because the
// simulator only publishes through CloseEpoch under the same mutex.
func (p *CPIStack) Tolerances() (uint64, []Tolerance) {
	if p == nil {
		return 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latestCyc, append([]Tolerance(nil), p.latest...)
}

// CheckConservation verifies that every core's buckets sum to exactly
// cyclesPerCore — each executed cycle attributed exactly once, skipped
// spans included. A double- or never-attributed cycle breaks it.
func (p *CPIStack) CheckConservation(cycle, cyclesPerCore uint64) error {
	if p == nil {
		return nil
	}
	for i, c := range p.cores {
		if got := c.Cycles(); got != cyclesPerCore {
			return &simerr.InvariantError{
				Component: "cpistack", Name: "cycle-conservation", Cycle: cycle,
				Detail: fmt.Sprintf("core %d: %d cycles attributed across buckets but %d executed (%+v)",
					i, got, cyclesPerCore, c.Buckets),
			}
		}
	}
	return nil
}

// cpiBuckets is the shared JSONL bucket layout; field order is the wire
// order.
type cpiBuckets struct {
	Issued     uint64 `json:"issued"`
	Idle       uint64 `json:"idle"`
	Scoreboard uint64 `json:"scoreboard"`
	MRQFull    uint64 `json:"mrq_full"`
	Throttled  uint64 `json:"throttled"`
	Drain      uint64 `json:"drain"`
}

func toBuckets(b [NumBuckets]uint64) cpiBuckets {
	return cpiBuckets{
		Issued:     b[BucketIssued],
		Idle:       b[BucketIdle],
		Scoreboard: b[BucketScoreboard],
		MRQFull:    b[BucketMRQFull],
		Throttled:  b[BucketThrottled],
		Drain:      b[BucketDrain],
	}
}

// cpiEpochRec is the JSONL schema of one epoch's machine-wide deltas.
type cpiEpochRec struct {
	Record string `json:"record"`
	Run    string `json:"run,omitempty"`
	Cycle  uint64 `json:"cycle"`
	cpiBuckets
}

// cpiTolRec is the JSONL schema of one core's tolerance snapshot at an
// epoch close.
type cpiTolRec struct {
	Record string `json:"record"`
	Run    string `json:"run,omitempty"`
	Cycle  uint64 `json:"cycle"`
	Tolerance
}

// cpiCoreRec is the JSONL schema of one core's lifetime CPI stack.
type cpiCoreRec struct {
	Record string `json:"record"`
	Run    string `json:"run,omitempty"`
	Core   int    `json:"core"`
	Cycles uint64 `json:"cycles"`
	cpiBuckets
}

// cpiSummary is the per-run trailer with machine-wide totals.
type cpiSummary struct {
	Record string `json:"record"`
	Run    string `json:"run,omitempty"`
	Cores  int    `json:"cores"`
	Cycles uint64 `json:"cycles"`
	cpiBuckets
}

// WriteJSONL emits the epoch time series ("cpiepoch" lines with their
// per-core "cpitol" tolerance snapshots), one "cpistack" line per core,
// and a "cpisummary" trailer, all tagged with the run key.
func (p *CPIStack) WriteJSONL(w io.Writer, run string) error {
	if p == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range p.epochs {
		if err := enc.Encode(cpiEpochRec{Record: "cpiepoch", Run: run,
			Cycle: e.Cycle, cpiBuckets: toBuckets(e.Buckets)}); err != nil {
			return err
		}
		for _, t := range e.Tol {
			if err := enc.Encode(cpiTolRec{Record: "cpitol", Run: run,
				Cycle: e.Cycle, Tolerance: t}); err != nil {
				return err
			}
		}
	}
	sum := cpiSummary{Record: "cpisummary", Run: run, Cores: len(p.cores)}
	for i, c := range p.cores {
		cyc := c.Cycles()
		if err := enc.Encode(cpiCoreRec{Record: "cpistack", Run: run, Core: i,
			Cycles: cyc, cpiBuckets: toBuckets(c.Buckets)}); err != nil {
			return err
		}
		sum.Cycles += cyc
	}
	sum.cpiBuckets = toBuckets(p.Totals())
	return enc.Encode(sum)
}

// WriteTable renders the human-readable per-core CPI stack: raw bucket
// counts per core, machine totals, and each bucket's share of all
// attributed cycles.
func (p *CPIStack) WriteTable(w io.Writer) error {
	if p == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-5s %12s", "core", "cycles"); err != nil {
		return err
	}
	for b := Bucket(0); b < NumBuckets; b++ {
		if _, err := fmt.Fprintf(w, " %12s", b); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	row := func(label string, cycles uint64, buckets [NumBuckets]uint64) error {
		if _, err := fmt.Fprintf(w, "%-5s %12d", label, cycles); err != nil {
			return err
		}
		for _, v := range buckets {
			if _, err := fmt.Fprintf(w, " %12d", v); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	for i, c := range p.cores {
		if err := row(fmt.Sprint(i), c.Cycles(), c.Buckets); err != nil {
			return err
		}
	}
	tot := p.Totals()
	var cycles uint64
	for _, v := range tot {
		cycles += v
	}
	if err := row("total", cycles, tot); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-5s %12s", "share", "-"); err != nil {
		return err
	}
	for _, v := range tot {
		if _, err := fmt.Fprintf(w, " %12s", shareStr(v, cycles)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// shareStr formats a/b as a percentage, "-" for an empty denominator.
func shareStr(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", float64(a)/float64(b)*100)
}
