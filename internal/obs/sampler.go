package obs

import (
	"fmt"
	"io"
	"sort"
)

// SeriesKind selects how a series value is derived from the registry at
// each epoch boundary.
type SeriesKind uint8

const (
	// SeriesRatio is (Δsum(Num) - Δsum(Sub)) / Δsum(Den) * Scale over the
	// epoch, 0 when the denominator did not move.
	SeriesRatio SeriesKind = iota
	// SeriesPerCycle is Δsum(Num) / Δcycles * Scale over the epoch.
	SeriesPerCycle
	// SeriesGaugeSum is the instantaneous sum of a gauge across cores.
	SeriesGaugeSum
	// SeriesGaugeMean is the instantaneous mean of a gauge across cores.
	SeriesGaugeMean
)

// SeriesDef defines one derived time series over registry metrics. The
// counter name lists are summed across all label sets before the delta is
// taken, so a series is machine-wide by construction.
type SeriesDef struct {
	Name  string
	Kind  SeriesKind
	Num   []string // counter names (or the gauge name for gauge kinds)
	Sub   []string // counter names subtracted from Num (SeriesRatio only)
	Den   []string // denominator counter names (SeriesRatio only)
	Scale float64  // multiplier; 0 means 1 (use 1000 for MPKI-style series)
}

func (d *SeriesDef) scale() float64 {
	if d.Scale == 0 {
		return 1
	}
	return d.Scale
}

// compiledDef is a SeriesDef with its counter names resolved to indices
// into the sampler's interned name table, so each epoch's delta sums are
// slice walks instead of map lookups.
type compiledDef struct {
	num, sub, den []int
}

// Point is one epoch sample: the cycle it closed at and each series'
// value for the epoch, in definition order (see Sampler.Series for
// extraction by name).
type Point struct {
	Cycle  uint64
	Values []float64 // parallel to the sampler's defs
}

// Sampler snapshots derived series every epoch. Create with NewSampler,
// add series with Define, then call Tick from the simulation loop (cheap:
// one comparison per cycle) and Finish once at end of run.
//
// The per-epoch state is flat: counter names are interned into one
// ordered table at Define time, the previous/current sums live in two
// reused slices, and point values are carved from a shared growable
// arena — after warmup an epoch close performs no heap allocation.
type Sampler struct {
	reg   *Registry
	every uint64
	next  uint64
	defs  []SeriesDef
	comp  []compiledDef

	names     []string // interned counter names, in first-use order
	nameIdx   map[string]int
	prev, cur []uint64 // summed counters at the last/current epoch close
	prevCycle uint64
	points    []Point
	valStore  []float64 // arena the points' Values are carved from
}

// NewSampler builds a sampler over reg with the given epoch length.
func NewSampler(reg *Registry, every uint64) *Sampler {
	if every == 0 {
		return nil
	}
	return &Sampler{
		reg:     reg,
		every:   every,
		next:    every,
		nameIdx: make(map[string]int),
	}
}

// Define appends series definitions; nil receivers ignore the call.
func (s *Sampler) Define(defs ...SeriesDef) {
	if s == nil {
		return
	}
	for _, d := range defs {
		s.defs = append(s.defs, d)
		var c compiledDef
		if d.Kind == SeriesRatio || d.Kind == SeriesPerCycle {
			c.num = s.intern(d.Num)
			c.sub = s.intern(d.Sub)
			c.den = s.intern(d.Den)
		}
		s.comp = append(s.comp, c)
	}
	s.prev = growTo(s.prev, len(s.names))
	s.cur = growTo(s.cur, len(s.names))
}

// intern maps counter names to indices in the shared name table.
func (s *Sampler) intern(names []string) []int {
	if len(names) == 0 {
		return nil
	}
	idx := make([]int, len(names))
	for i, n := range names {
		j, ok := s.nameIdx[n]
		if !ok {
			j = len(s.names)
			s.names = append(s.names, n)
			s.nameIdx[n] = j
		}
		idx[i] = j
	}
	return idx
}

// growTo extends v with zeros to length n, preserving the prefix.
func growTo(v []uint64, n int) []uint64 {
	for len(v) < n {
		v = append(v, 0)
	}
	return v
}

// Tick samples an epoch if cycle crossed the epoch boundary. It is safe
// to call every cycle; between boundaries it is one comparison.
func (s *Sampler) Tick(cycle uint64) {
	if s == nil || cycle < s.next {
		return
	}
	s.sample(cycle)
	s.next = cycle + s.every
}

// NextTick reports the cycle of the next epoch boundary (the maximum
// uint64 for a nil sampler), so an event-driven simulation loop can
// skip idle spans without missing an epoch close.
func (s *Sampler) NextTick() uint64 {
	if s == nil {
		return ^uint64(0)
	}
	return s.next
}

// Finish closes the final partial epoch (if it saw any cycles) so short
// runs still produce at least one sample.
func (s *Sampler) Finish(cycle uint64) {
	if s == nil || cycle <= s.prevCycle {
		return
	}
	s.sample(cycle)
	s.next = cycle + s.every
}

func (s *Sampler) sample(cycle uint64) {
	for i, n := range s.names {
		s.cur[i] = s.reg.Sum(n)
	}
	dsum := func(idx []int) float64 {
		var d uint64
		for _, i := range idx {
			d += s.cur[i] - s.prev[i]
		}
		return float64(d)
	}
	start := len(s.valStore)
	dcycles := float64(cycle - s.prevCycle)
	for i := range s.defs {
		d := &s.defs[i]
		var v float64
		switch d.Kind {
		case SeriesRatio:
			if den := dsum(s.comp[i].den); den > 0 {
				v = (dsum(s.comp[i].num) - dsum(s.comp[i].sub)) / den * d.scale()
			}
		case SeriesPerCycle:
			if dcycles > 0 {
				v = dsum(s.comp[i].num) / dcycles * d.scale()
			}
		case SeriesGaugeSum:
			if len(d.Num) > 0 {
				v = s.reg.GaugeSum(d.Num[0]) * d.scale()
			}
		case SeriesGaugeMean:
			if len(d.Num) > 0 {
				v = s.reg.GaugeMean(d.Num[0]) * d.scale()
			}
		}
		s.valStore = append(s.valStore, v)
	}
	// Carve this epoch's values with a full-slice expression: later arena
	// growth either reallocates (earlier points keep their old backing
	// arrays, data intact) or appends past this point's capacity — either
	// way the carved view is immutable.
	s.points = append(s.points, Point{Cycle: cycle, Values: s.valStore[start:len(s.valStore):len(s.valStore)]})
	s.prev, s.cur = s.cur, s.prev
	s.prevCycle = cycle
}

// Points returns the recorded samples.
func (s *Sampler) Points() []Point {
	if s == nil {
		return nil
	}
	return s.points
}

// Series extracts one named series in epoch order; nil when the name was
// never defined.
func (s *Sampler) Series(name string) []float64 {
	if s == nil {
		return nil
	}
	di := -1
	for i := range s.defs {
		if s.defs[i].Name == name {
			di = i
			break
		}
	}
	if di < 0 {
		return nil
	}
	out := make([]float64, 0, len(s.points))
	for _, p := range s.points {
		out = append(out, p.Values[di])
	}
	return out
}

// WriteJSONL writes one JSON object per epoch: the meta key/values (run
// identity etc.), the cycle, and every series value, with keys sorted so
// the output is deterministic. The encoding is hand-rolled into one
// reused buffer (see jsonl.go) and byte-identical to what encoding/json
// produced for the equivalent map — the fuzz test in jsonl_test.go holds
// it to that. Values are finite by construction (zero-guarded ratios),
// which keeps the lines valid JSON.
func (s *Sampler) WriteJSONL(w io.Writer, meta map[string]string) error {
	if s == nil {
		return nil
	}
	// Key order replicates encoding/json marshalling of the map the
	// previous implementation built: all keys sorted; on collision the
	// later map write won — series values over "cycle" over meta.
	type field struct {
		key string
		src int // 0: meta, 1: cycle, 2: series (def index)
		def int
	}
	fields := make([]field, 0, len(meta)+1+len(s.defs))
	for k := range meta {
		fields = append(fields, field{key: k, src: 0})
	}
	fields = append(fields, field{key: "cycle", src: 1})
	for i := range s.defs {
		fields = append(fields, field{key: s.defs[i].Name, src: 2, def: i})
	}
	sort.SliceStable(fields, func(i, j int) bool { return fields[i].key < fields[j].key })
	// Deduplicate equal keys keeping the highest-precedence source.
	out := fields[:0]
	for _, f := range fields {
		if n := len(out); n > 0 && out[n-1].key == f.key {
			if f.src >= out[n-1].src {
				out[n-1] = f
			}
			continue
		}
		out = append(out, f)
	}
	fields = out

	var buf []byte
	for _, p := range s.points {
		buf = buf[:0]
		buf = append(buf, '{')
		for i, f := range fields {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, f.key)
			buf = append(buf, ':')
			switch f.src {
			case 0:
				buf = appendJSONString(buf, meta[f.key])
			case 1:
				buf = appendJSONUint(buf, p.Cycle)
			case 2:
				var err error
				if buf, err = appendJSONFloat(buf, p.Values[f.def]); err != nil {
					return fmt.Errorf("obs: marshal sample at cycle %d: %w", p.Cycle, err)
				}
			}
		}
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
