package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// SeriesKind selects how a series value is derived from the registry at
// each epoch boundary.
type SeriesKind uint8

const (
	// SeriesRatio is (Δsum(Num) - Δsum(Sub)) / Δsum(Den) * Scale over the
	// epoch, 0 when the denominator did not move.
	SeriesRatio SeriesKind = iota
	// SeriesPerCycle is Δsum(Num) / Δcycles * Scale over the epoch.
	SeriesPerCycle
	// SeriesGaugeSum is the instantaneous sum of a gauge across cores.
	SeriesGaugeSum
	// SeriesGaugeMean is the instantaneous mean of a gauge across cores.
	SeriesGaugeMean
)

// SeriesDef defines one derived time series over registry metrics. The
// counter name lists are summed across all label sets before the delta is
// taken, so a series is machine-wide by construction.
type SeriesDef struct {
	Name  string
	Kind  SeriesKind
	Num   []string // counter names (or the gauge name for gauge kinds)
	Sub   []string // counter names subtracted from Num (SeriesRatio only)
	Den   []string // denominator counter names (SeriesRatio only)
	Scale float64  // multiplier; 0 means 1 (use 1000 for MPKI-style series)
}

func (d *SeriesDef) scale() float64 {
	if d.Scale == 0 {
		return 1
	}
	return d.Scale
}

// Point is one epoch sample: the cycle it closed at and each series'
// value for the epoch.
type Point struct {
	Cycle  uint64
	Values map[string]float64
}

// Sampler snapshots derived series every epoch. Create with NewSampler,
// add series with Define, then call Tick from the simulation loop (cheap:
// one comparison per cycle) and Finish once at end of run.
type Sampler struct {
	reg   *Registry
	every uint64
	next  uint64
	defs  []SeriesDef

	prev      map[string]uint64 // summed counters at the last epoch close
	prevCycle uint64
	points    []Point
	counters  map[string]bool // counter names needed by the defs
}

// NewSampler builds a sampler over reg with the given epoch length.
func NewSampler(reg *Registry, every uint64) *Sampler {
	if every == 0 {
		return nil
	}
	return &Sampler{
		reg:      reg,
		every:    every,
		next:     every,
		prev:     make(map[string]uint64),
		counters: make(map[string]bool),
	}
}

// Define appends series definitions; nil receivers ignore the call.
func (s *Sampler) Define(defs ...SeriesDef) {
	if s == nil {
		return
	}
	s.defs = append(s.defs, defs...)
	for _, d := range defs {
		if d.Kind == SeriesRatio || d.Kind == SeriesPerCycle {
			for _, lists := range [][]string{d.Num, d.Sub, d.Den} {
				for _, n := range lists {
					s.counters[n] = true
				}
			}
		}
	}
}

// Tick samples an epoch if cycle crossed the epoch boundary. It is safe
// to call every cycle; between boundaries it is one comparison.
func (s *Sampler) Tick(cycle uint64) {
	if s == nil || cycle < s.next {
		return
	}
	s.sample(cycle)
	s.next = cycle + s.every
}

// NextTick reports the cycle of the next epoch boundary (the maximum
// uint64 for a nil sampler), so an event-driven simulation loop can
// skip idle spans without missing an epoch close.
func (s *Sampler) NextTick() uint64 {
	if s == nil {
		return ^uint64(0)
	}
	return s.next
}

// Finish closes the final partial epoch (if it saw any cycles) so short
// runs still produce at least one sample.
func (s *Sampler) Finish(cycle uint64) {
	if s == nil || cycle <= s.prevCycle {
		return
	}
	s.sample(cycle)
	s.next = cycle + s.every
}

func (s *Sampler) sample(cycle uint64) {
	cur := make(map[string]uint64, len(s.counters))
	for n := range s.counters {
		cur[n] = s.reg.Sum(n)
	}
	dsum := func(names []string) float64 {
		var d uint64
		for _, n := range names {
			d += cur[n] - s.prev[n]
		}
		return float64(d)
	}
	p := Point{Cycle: cycle, Values: make(map[string]float64, len(s.defs))}
	dcycles := float64(cycle - s.prevCycle)
	for i := range s.defs {
		d := &s.defs[i]
		var v float64
		switch d.Kind {
		case SeriesRatio:
			if den := dsum(d.Den); den > 0 {
				v = (dsum(d.Num) - dsum(d.Sub)) / den * d.scale()
			}
		case SeriesPerCycle:
			if dcycles > 0 {
				v = dsum(d.Num) / dcycles * d.scale()
			}
		case SeriesGaugeSum:
			if len(d.Num) > 0 {
				v = s.reg.GaugeSum(d.Num[0]) * d.scale()
			}
		case SeriesGaugeMean:
			if len(d.Num) > 0 {
				v = s.reg.GaugeMean(d.Num[0]) * d.scale()
			}
		}
		p.Values[d.Name] = v
	}
	s.points = append(s.points, p)
	s.prev = cur
	s.prevCycle = cycle
}

// Points returns the recorded samples.
func (s *Sampler) Points() []Point {
	if s == nil {
		return nil
	}
	return s.points
}

// Series extracts one named series in epoch order.
func (s *Sampler) Series(name string) []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, 0, len(s.points))
	for _, p := range s.points {
		out = append(out, p.Values[name])
	}
	return out
}

// WriteJSONL writes one JSON object per epoch: the meta key/values (run
// identity etc.), the cycle, and every series value. encoding/json sorts
// map keys, so the output is deterministic. Values are finite by
// construction (zero-guarded ratios), which keeps the lines valid JSON.
func (s *Sampler) WriteJSONL(w io.Writer, meta map[string]string) error {
	if s == nil {
		return nil
	}
	for _, p := range s.points {
		line := make(map[string]any, len(p.Values)+len(meta)+1)
		for k, v := range meta {
			line[k] = v
		}
		line["cycle"] = p.Cycle
		for k, v := range p.Values {
			line[k] = v
		}
		b, err := json.Marshal(line)
		if err != nil {
			return fmt.Errorf("obs: marshal sample at cycle %d: %w", p.Cycle, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
