package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mtprefetch/internal/stats"
)

func TestRegistryAggregation(t *testing.T) {
	r := NewRegistry()
	c0, c1 := uint64(10), uint64(32)
	r.Counter("cache.hits", Labels{Core: 0, Component: "cache"}, func() uint64 { return c0 })
	r.Counter("cache.hits", Labels{Core: 1, Component: "cache"}, func() uint64 { return c1 })
	if got := r.Sum("cache.hits"); got != 42 {
		t.Errorf("Sum = %d, want 42", got)
	}
	c1 = 40
	if got := r.Sum("cache.hits"); got != 50 {
		t.Errorf("Sum after update = %d, want 50 (closures must read live state)", got)
	}
	if got := r.Sum("cache.misses"); got != 0 {
		t.Errorf("unknown counter Sum = %d, want 0", got)
	}

	g := 3.0
	r.Gauge("throttle.degree", Labels{Core: 0, Component: "throttle"}, func() float64 { return g })
	r.Gauge("throttle.degree", Labels{Core: 1, Component: "throttle"}, func() float64 { return 1 })
	if got := r.GaugeSum("throttle.degree"); got != 4 {
		t.Errorf("GaugeSum = %v, want 4", got)
	}
	if got := r.GaugeMean("throttle.degree"); got != 2 {
		t.Errorf("GaugeMean = %v, want 2", got)
	}

	var h0, h1 stats.Histogram
	h0.Add(10)
	h1.Add(1000)
	r.Histogram("lat", Labels{Core: 0}, func() stats.Histogram { return h0 })
	r.Histogram("lat", Labels{Core: 1}, func() stats.Histogram { return h1 })
	m := r.MergedHistogram("lat")
	if m.Count != 2 || m.Max != 1000 || m.Sum != 1010 {
		t.Errorf("merged histogram = %+v", m)
	}

	names := r.Names()
	if len(names) != 3 {
		t.Errorf("Names = %v, want 3 entries", names)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x", Labels{}, func() uint64 { return 1 })
	r.Gauge("y", Labels{}, func() float64 { return 1 })
	if r.Sum("x") != 0 || r.GaugeMean("y") != 0 || r.Names() != nil {
		t.Error("nil registry must be inert")
	}
}

func TestSamplerEpochDeltas(t *testing.T) {
	r := NewRegistry()
	var instrs, cycles uint64
	r.Counter("instrs", Labels{}, func() uint64 { return instrs })
	s := NewSampler(r, 100)
	s.Define(
		SeriesDef{Name: "ipc", Kind: SeriesPerCycle, Num: []string{"instrs"}},
		SeriesDef{Name: "ratio", Kind: SeriesRatio, Num: []string{"instrs"}, Den: []string{"instrs"}},
	)
	for cycles = 0; cycles < 250; cycles++ {
		instrs += 2 // perfectly steady 2 IPC
		s.Tick(cycles)
	}
	s.Finish(cycles)
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (two epochs + final partial)", len(pts))
	}
	ipc, ratio := s.Series("ipc"), s.Series("ratio")
	for i := range pts {
		if ipc[i] < 1.9 || ipc[i] > 2.1 {
			t.Errorf("point %d ipc = %v, want ~2", i, ipc[i])
		}
		if ratio[i] != 1 {
			t.Errorf("point %d self-ratio = %v, want 1", i, ratio[i])
		}
	}
	if got := s.Series("ipc"); len(got) != 3 {
		t.Errorf("Series length = %d, want 3", len(got))
	}
}

func TestSamplerJSONL(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.Counter("n", Labels{}, func() uint64 { return n })
	s := NewSampler(r, 10)
	s.Define(SeriesDef{Name: "rate", Kind: SeriesPerCycle, Num: []string{"n"}})
	n = 20
	s.Tick(10)
	n = 30
	s.Tick(20)
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf, map[string]string{"run": "unit"}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if obj["run"] != "unit" {
			t.Errorf("line %d missing run meta: %v", lines, obj)
		}
		if _, ok := obj["cycle"]; !ok {
			t.Errorf("line %d missing cycle", lines)
		}
		if _, ok := obj["rate"]; !ok {
			t.Errorf("line %d missing series value", lines)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(EvPrefetchIssued, i, int(i%2), i*64, 7)
	}
	if tr.Count() != 4 {
		t.Errorf("ring holds %d events, want 4", tr.Count())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if evs[0].Cycle != 6 || evs[3].Cycle != 9 {
		t.Errorf("ring kept cycles %d..%d, want 6..9", evs[0].Cycle, evs[3].Cycle)
	}
	var nilTr *Tracer
	nilTr.Emit(EvEarlyEviction, 0, 0, 0, 0) // must not panic
	if nilTr.Count() != 0 || nilTr.Events() != nil {
		t.Error("nil tracer must be inert")
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(EvPrefetchIssued, 100, 0, 0x1000, 3)
	tr.Emit(EvThrottleDegree, 200, 1, 4, 2)
	tr.Emit(EvEarlyEviction, 300, 0, 0x2000, 0)
	tr.Emit(EvStridePromotion, 400, 1, 5, 128)

	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.AddRun(0, "unit-run", "core", tr); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2 thread_name + 4 events.
	if len(events) != 7 {
		t.Fatalf("trace has %d objects, want 7", len(events))
	}
	byPh := map[string]int{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		byPh[ph]++
		if _, ok := e["pid"]; !ok {
			t.Errorf("event missing pid: %v", e)
		}
	}
	if byPh["M"] != 3 {
		t.Errorf("metadata events = %d, want 3", byPh["M"])
	}
	if byPh["C"] != 1 {
		t.Errorf("counter events = %d, want 1", byPh["C"])
	}
	if byPh["i"] != 3 {
		t.Errorf("instant events = %d, want 3", byPh["i"])
	}
	if !strings.Contains(buf.String(), "unit-run") {
		t.Error("process name missing from trace")
	}
}

func TestSinkDisabled(t *testing.T) {
	var s *Sink
	if s.Observer() != nil {
		t.Error("nil sink must hand out nil observers")
	}
	if err := s.Finish("k", nil); err != nil {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	s2, err := NewSink(nil, nil, nil, nil, nil, Config{SampleEvery: 100})
	if err != nil || s2 != nil {
		t.Errorf("NewSink(nil, nil, nil) = %v, %v; want nil sink", s2, err)
	}
}

func TestSinkMultiRun(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	s, err := NewSink(&mbuf, &tbuf, nil, nil, nil, Config{SampleEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		o := s.Observer()
		if o == nil || o.Sampler == nil || o.Tracer == nil {
			t.Fatal("enabled sink must build full observers")
		}
		n := uint64(0)
		o.Registry.Counter("n", Labels{}, func() uint64 { return n })
		o.Sampler.Define(SeriesDef{Name: "rate", Kind: SeriesPerCycle, Num: []string{"n"}})
		n = 100
		o.Sampler.Tick(50)
		o.Tracer.Emit(EvPrefetchIssued, 10, 0, 0x40, 1)
		if err := s.Finish("run"+string(rune('A'+run)), o); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(mbuf.String(), "\n"); got != 2 {
		t.Errorf("metrics lines = %d, want 2", got)
	}
	var events []map[string]any
	if err := json.Unmarshal(tbuf.Bytes(), &events); err != nil {
		t.Fatalf("combined trace invalid: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range events {
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Errorf("trace pids = %v, want 2 distinct runs", pids)
	}
}

// sinkObserver builds an observer with one counter, a defined series, and
// one trace event, finished under the given key.
func sinkObserver(s *Sink, cycles uint64) *Observer {
	o := s.Observer()
	n := uint64(0)
	o.Registry.Counter("n", Labels{}, func() uint64 { return n })
	o.Sampler.Define(SeriesDef{Name: "rate", Kind: SeriesPerCycle, Num: []string{"n"}})
	n = cycles
	o.Sampler.Tick(cycles)
	o.Tracer.Emit(EvPrefetchIssued, cycles/2, 0, 0x80, 7)
	return o
}

func TestSinkConcurrentFinish(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	s, err := NewSink(&mbuf, &tbuf, nil, nil, nil, Config{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := sinkObserver(s, uint64(10*(i+1)))
			errs[i] = s.Finish(fmt.Sprintf("run-%02d", i), o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every metrics line must be intact JSON with its own run key:
	// concurrent finishes may not interleave inside a run's records.
	keys := map[string]int{}
	sc := bufio.NewScanner(&mbuf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("metrics line corrupted: %v: %q", err, sc.Text())
		}
		keys[line["run"].(string)]++
	}
	if len(keys) != runs {
		t.Errorf("metrics cover %d runs, want %d: %v", len(keys), runs, keys)
	}
	// The combined trace must stay one valid JSON array with one distinct
	// pid per run.
	var events []map[string]any
	if err := json.Unmarshal(tbuf.Bytes(), &events); err != nil {
		t.Fatalf("combined trace invalid: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range events {
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != runs {
		t.Errorf("trace pids = %d, want %d", len(pids), runs)
	}
}

func TestSinkFinishIdempotent(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	s, err := NewSink(&mbuf, &tbuf, nil, nil, nil, Config{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Finish("same-key", sinkObserver(s, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(mbuf.String(), "\n"); got != 1 {
		t.Errorf("metrics lines = %d, want 1 (a single epoch from a single recorded run)", got)
	}
	var events []map[string]any
	if err := json.Unmarshal(tbuf.Bytes(), &events); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range events {
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 1 {
		t.Errorf("trace pids = %d, want 1 (duplicate finishes must not re-record)", len(pids))
	}
}

func TestSinkFinishAfterCloseIsNoop(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	s, err := NewSink(&mbuf, &tbuf, nil, nil, nil, Config{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := tbuf.String()
	if err := s.Finish("late", sinkObserver(s, 20)); err != nil {
		t.Fatal(err)
	}
	if tbuf.String() != before || mbuf.Len() != 0 {
		t.Error("Finish after Close wrote to the shared files")
	}
}
