package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/simerr"
)

func provOf(src memreq.Source, pc int32) memreq.Provenance {
	return memreq.Provenance{Source: src, TrainPC: pc, Warp: 3, Degree: 2}
}

// issueOne drives one candidate through a balanced generate->issue->fate
// sequence.
func issueOne(p *PFReport, src memreq.Source, pc int32, fate memreq.Outcome) {
	prov := provOf(src, pc)
	p.Generated(prov)
	p.Issued(prov)
	p.Record(prov, fate)
}

func TestPFReportConservationBalanced(t *testing.T) {
	p := NewPFReport()
	issueOne(p, memreq.SrcPWS, 4, memreq.OutUseful)
	issueOne(p, memreq.SrcPWS, 4, memreq.OutEarlyEvicted)
	issueOne(p, memreq.SrcGHB, 9, memreq.OutLate)
	// A dropped candidate: generated, then one pre-issue fate.
	prov := provOf(memreq.SrcStream, 1)
	p.Generated(prov)
	p.Record(prov, memreq.OutDroppedThrottle)
	if err := p.CheckConservation(100); err != nil {
		t.Fatalf("balanced ledger flagged: %v", err)
	}
}

// TestPFReportConservationCatchesDoubleClassify deliberately classifies
// one prefetch twice and proves the invariant fires — the check must not
// silently tolerate a broken ledger.
func TestPFReportConservationCatchesDoubleClassify(t *testing.T) {
	p := NewPFReport()
	prov := provOf(memreq.SrcPWS, 4)
	p.Generated(prov)
	p.Issued(prov)
	p.Record(prov, memreq.OutUseful)
	p.Record(prov, memreq.OutEarlyEvicted) // the bug: a second terminal
	err := p.CheckConservation(42)
	if err == nil {
		t.Fatal("double-classified prefetch not flagged")
	}
	ie, ok := err.(*simerr.InvariantError)
	if !ok {
		t.Fatalf("error type = %T, want *simerr.InvariantError", err)
	}
	if ie.Name != "outcome-conservation" || ie.Cycle != 42 {
		t.Errorf("got invariant %q at cycle %d, want outcome-conservation at 42", ie.Name, ie.Cycle)
	}
}

// TestPFReportConservationCatchesLostCandidate: a generated candidate
// with no fate at all breaks the generation identity.
func TestPFReportConservationCatchesLostCandidate(t *testing.T) {
	p := NewPFReport()
	p.Generated(provOf(memreq.SrcGS, 7)) // never dropped, never issued
	err := p.CheckConservation(7)
	if err == nil {
		t.Fatal("lost candidate not flagged")
	}
	if ie := err.(*simerr.InvariantError); ie.Name != "generation-conservation" {
		t.Errorf("invariant = %q, want generation-conservation", ie.Name)
	}
}

func TestPFReportNilSafe(t *testing.T) {
	var p *PFReport
	prov := provOf(memreq.SrcPWS, 0)
	p.Generated(prov)
	p.Issued(prov)
	p.Record(prov, memreq.OutUseful)
	p.Hit(prov)
	p.DemandMerge(prov)
	p.SetDemandTransactions(5)
	p.AddDemandTransactions(5)
	p.Add(PFKey{}, PFCounts{Generated: 1})
	if p.Enabled() {
		t.Error("nil report claims enabled")
	}
	if err := p.CheckConservation(0); err != nil {
		t.Errorf("nil report conservation = %v", err)
	}
	if got := p.DemandTransactions(); got != 0 {
		t.Errorf("nil DemandTransactions = %d", got)
	}
	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf, "x"); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSONL wrote %q, err %v", buf.String(), err)
	}
	if err := p.WriteTable(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteTable wrote %q, err %v", buf.String(), err)
	}
}

func TestPFReportJSONL(t *testing.T) {
	p := NewPFReport()
	issueOne(p, memreq.SrcStridePC, 12, memreq.OutUseful)
	issueOne(p, memreq.SrcPWS, 3, memreq.OutLate)
	p.Hit(provOf(memreq.SrcStridePC, 12))
	p.SetDemandTransactions(50)

	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf, "run1"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 2 buckets + 1 summary:\n%s", len(lines), buf.String())
	}
	var first struct {
		Record, Run, Source string
		PC                  int32
		Issued, Useful      uint64
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	// Buckets are sorted by (source, PC); pws < stride-pc in enum order.
	if first.Record != "pfreport" || first.Run != "run1" || first.Source != "pws" || first.PC != 3 {
		t.Errorf("first line = %+v, want pws/3 bucket", first)
	}
	var sum struct {
		Record             string
		DemandTransactions uint64 `json:"demand_transactions"`
		Issued, Hits       uint64
	}
	if err := json.Unmarshal([]byte(lines[2]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Record != "pfsummary" || sum.DemandTransactions != 50 || sum.Issued != 2 || sum.Hits != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestPFReportTable(t *testing.T) {
	p := NewPFReport()
	issueOne(p, memreq.SrcGHB, 5, memreq.OutUseful)
	p.Hit(provOf(memreq.SrcGHB, 5))
	p.SetDemandTransactions(10)
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"source", "accuracy", "ghb", "1.000", "0.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPFReportAddRebuild(t *testing.T) {
	p := NewPFReport()
	k := PFKey{Source: memreq.SrcStrideRPT, PC: 8}
	p.Add(k, PFCounts{Generated: 3, Issued: 2, Useful: 1, EarlyEvicted: 1, DroppedThrottle: 1})
	p.Add(k, PFCounts{Generated: 2, Issued: 2, Useful: 2, Hits: 4})
	p.AddDemandTransactions(20)
	p.AddDemandTransactions(5)
	if err := p.CheckConservation(0); err != nil {
		t.Fatalf("merged ledger flagged: %v", err)
	}
	if got := p.DemandTransactions(); got != 25 {
		t.Errorf("DemandTransactions = %d, want 25", got)
	}
	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"generated":5`) {
		t.Errorf("merged bucket not summed:\n%s", buf.String())
	}
}

func TestParseSourceRoundTrip(t *testing.T) {
	for s := memreq.SrcNone; s < memreq.NumSources; s++ {
		got, ok := memreq.ParseSource(s.String())
		if !ok || got != s {
			t.Errorf("ParseSource(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := memreq.ParseSource("not-a-source"); ok {
		t.Error("unknown source parsed")
	}
}

// TestRegistrySnapshotConcurrentRegistration races registration against
// Snapshot/Sum/Names readers; run under -race this proves the index
// mutex actually guards the instrument table (the harness debug server
// snapshots registries from HTTP goroutines).
func TestRegistrySnapshotConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			var n uint64
			for i := 0; i < 200; i++ {
				r.Counter("conc.counter", Labels{Core: g, Component: "t"}, func() uint64 { return n })
				r.Gauge("conc.gauge", Labels{Core: g, Component: "t"}, func() float64 { return 1 })
			}
		}(g)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
				r.Sum("conc.counter")
				r.Names()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := len(r.Snapshot()); got != 4*200*2 {
		t.Errorf("snapshot has %d instruments, want %d", got, 4*200*2)
	}
}

// TestTracerWraparoundBoundary pins the exact boundary: filling the ring
// to capacity drops nothing; one more event drops exactly one and the
// survivor window slides by one.
func TestTracerWraparoundBoundary(t *testing.T) {
	tr := NewTracer(8)
	for i := uint64(0); i < 8; i++ {
		tr.Emit(EvPrefetchIssued, i, 0, i, 0)
	}
	if tr.Count() != 8 || tr.Dropped() != 0 {
		t.Fatalf("at capacity: count %d dropped %d, want 8/0", tr.Count(), tr.Dropped())
	}
	if evs := tr.Events(); evs[0].Cycle != 0 || evs[7].Cycle != 7 {
		t.Fatalf("pre-wrap window [%d..%d], want [0..7]", evs[0].Cycle, evs[7].Cycle)
	}
	tr.Emit(EvPrefetchIssued, 8, 0, 8, 0)
	if tr.Count() != 8 || tr.Dropped() != 1 {
		t.Fatalf("after wrap: count %d dropped %d, want 8/1", tr.Count(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Cycle != 1 || evs[7].Cycle != 8 {
		t.Errorf("post-wrap window [%d..%d], want [1..8]", evs[0].Cycle, evs[7].Cycle)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle != evs[i-1].Cycle+1 {
			t.Fatalf("window not contiguous: %v", evs)
		}
	}
}
