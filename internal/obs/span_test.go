package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/simerr"
)

// sampledSeq returns the first sequence number at or after start that
// the sampler selects for (core, warp) at the given rate.
func sampledSeq(t *testing.T, core, warp int, start, every uint64) uint64 {
	t.Helper()
	for seq := start; seq < start+every*64; seq++ {
		if SpanSampled(core, warp, seq, every) {
			return seq
		}
	}
	t.Fatalf("no sampled seq in [%d, %d) for core %d warp %d every %d",
		start, start+every*64, core, warp, every)
	return 0
}

// startSampled builds a request and attaches a span to it via the
// sampler, failing the test if the chosen seq is not selected.
func startSampled(t *testing.T, ss *SpanSet, core, warp int, cycle uint64) *memreq.Request {
	t.Helper()
	seq := sampledSeq(t, core, warp, 0, ss.every)
	r := &memreq.Request{Addr: 0x1000, CoreID: core, WarpID: warp, PC: 7}
	ss.Start(r, seq, cycle)
	if r.Span == nil {
		t.Fatalf("seq %d selected by SpanSampled but Start attached no span", seq)
	}
	return r
}

// stampFill walks a request through the canonical uncontended fill
// path, returning the fill cycle.
func stampFill(r *memreq.Request, base uint64) uint64 {
	r.StampSpan(memreq.SpanMRQEnqueue, base+1)
	r.StampSpan(memreq.SpanMRQDequeue, base+4)
	r.StampSpan(memreq.SpanNoCReqInject, base+4)
	r.StampSpan(memreq.SpanNoCReqDeliver, base+24)
	r.StampSpan(memreq.SpanDRAMArrive, base+24)
	r.StampSpan(memreq.SpanDRAMSched, base+40)
	r.StampSpan(memreq.SpanDRAMActivate, base+42)
	r.StampSpan(memreq.SpanDRAMDone, base+90)
	r.StampSpan(memreq.SpanNoCRespInject, base+90)
	r.StampSpan(memreq.SpanNoCRespDeliver, base+110)
	r.StampSpan(memreq.SpanFill, base+110)
	return base + 110
}

// TestSpanHashDeterministic pins the sampling contract: the hash is a
// pure function of the simulated identity, and the selection rate is
// close to 1-in-every over a dense sequence range.
func TestSpanHashDeterministic(t *testing.T) {
	if a, b := SpanHash(3, 17, 900), SpanHash(3, 17, 900); a != b {
		t.Errorf("SpanHash not deterministic: %#x vs %#x", a, b)
	}
	if SpanHash(3, 17, 900) == SpanHash(3, 17, 901) {
		t.Error("adjacent sequence numbers hash identically")
	}
	if SpanHash(3, 17, 900) == SpanHash(4, 17, 900) {
		t.Error("different cores hash identically")
	}
	const every, n = 32, 100000
	var hits int
	for seq := uint64(0); seq < n; seq++ {
		if SpanSampled(2, 9, seq, every) {
			hits++
		}
	}
	want := n / every
	if hits < want/2 || hits > want*2 {
		t.Errorf("sampled %d of %d at 1-in-%d; expected about %d", hits, n, every, want)
	}
}

// TestSpanStartSampling: Start attaches spans to exactly the selected
// sequence numbers and counts them.
func TestSpanStartSampling(t *testing.T) {
	ss := NewSpanSet(4)
	var attached uint64
	for seq := uint64(0); seq < 256; seq++ {
		r := &memreq.Request{CoreID: 1, WarpID: 2}
		ss.Start(r, seq, 100)
		if got, want := r.Span != nil, SpanSampled(1, 2, seq, 4); got != want {
			t.Fatalf("seq %d: span attached %v, sampler says %v", seq, got, want)
		}
		if r.Span != nil {
			attached++
			if r.Span.ID != SpanID(1, seq) {
				t.Errorf("seq %d: span id %#x, want %#x", seq, r.Span.ID, SpanID(1, seq))
			}
			if !r.Span.Has(memreq.SpanIssue) {
				t.Errorf("seq %d: no issue stamp at start", seq)
			}
		}
	}
	if attached == 0 {
		t.Fatal("no spans attached over 256 sequences at 1-in-4")
	}
	if ss.Started() != attached {
		t.Errorf("Started() = %d, want %d", ss.Started(), attached)
	}
}

// TestSpanFillRoundTrip: a fully stamped fill validates, decomposes
// into the five telescoping stages, and exports.
func TestSpanFillRoundTrip(t *testing.T) {
	ss := NewSpanSet(4)
	r := startSampled(t, ss, 3, 11, 1000)
	end := stampFill(r, 1000)
	ss.Finish(r, end, memreq.TermFill)
	if r.Span != nil {
		t.Error("Finish left the span attached to the request")
	}
	if err := ss.CheckConservation(end, true); err != nil {
		t.Fatalf("well-formed fill failed conservation: %v", err)
	}
	recs := ss.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	st, total := recs[0].Stages()
	want := [NumSpanStages]uint64{4, 20, 16, 50, 20}
	if st != want {
		t.Errorf("stages = %v, want %v", st, want)
	}
	if total != 110 {
		t.Errorf("total = %d, want 110", total)
	}
	var buf bytes.Buffer
	if err := ss.WriteJSONL(&buf, "rt"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"record":"span"`, `"terminal":"fill"`,
		`"total":110`, `"dram_service":50`, `"record":"spansummary"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("JSONL missing %s:\n%s", frag, out)
		}
	}
}

// TestSpanRiderDecomposition: an inter-core merge rider (FlagDRAMMerged)
// is never scheduled itself, so its wait is all dram_queue and its
// dram_service is zero.
func TestSpanRiderDecomposition(t *testing.T) {
	ss := NewSpanSet(4)
	r := startSampled(t, ss, 5, 3, 0)
	r.StampSpan(memreq.SpanMRQEnqueue, 1)
	r.StampSpan(memreq.SpanMRQDequeue, 2)
	r.StampSpan(memreq.SpanNoCReqInject, 2)
	r.StampSpan(memreq.SpanNoCReqDeliver, 22)
	r.StampSpan(memreq.SpanDRAMArrive, 22)
	r.SpanFlag(memreq.FlagDRAMMerged)
	r.StampSpan(memreq.SpanDRAMDone, 80)
	r.StampSpan(memreq.SpanNoCRespInject, 80)
	r.StampSpan(memreq.SpanNoCRespDeliver, 100)
	r.StampSpan(memreq.SpanFill, 100)
	ss.Finish(r, 100, memreq.TermFill)
	if err := ss.CheckConservation(100, true); err != nil {
		t.Fatalf("rider span failed conservation: %v", err)
	}
	st, total := ss.Records()[0].Stages()
	if st[StageDRAMQueue] != 58 || st[StageDRAMService] != 0 {
		t.Errorf("rider decomposition: dram_queue %d (want 58), dram_service %d (want 0)",
			st[StageDRAMQueue], st[StageDRAMService])
	}
	var sum uint64
	for _, d := range st {
		sum += d
	}
	if sum != total {
		t.Errorf("rider stages sum to %d but total is %d", sum, total)
	}
}

// TestSpanMissingStampFires: deliberately dropping a required stage
// stamp must surface as a missing-stamp invariant error — the test the
// ISSUE requires proving the conservation check actually bites.
func TestSpanMissingStampFires(t *testing.T) {
	ss := NewSpanSet(4)
	r := startSampled(t, ss, 2, 6, 500)
	r.StampSpan(memreq.SpanMRQEnqueue, 501)
	r.StampSpan(memreq.SpanMRQDequeue, 504)
	r.StampSpan(memreq.SpanNoCReqInject, 504)
	r.StampSpan(memreq.SpanNoCReqDeliver, 524)
	r.StampSpan(memreq.SpanDRAMArrive, 524)
	// SpanDRAMSched deliberately dropped: a non-merged, non-L2 fill
	// must carry it.
	r.StampSpan(memreq.SpanDRAMActivate, 530)
	r.StampSpan(memreq.SpanDRAMDone, 580)
	r.StampSpan(memreq.SpanNoCRespInject, 580)
	r.StampSpan(memreq.SpanNoCRespDeliver, 600)
	r.StampSpan(memreq.SpanFill, 600)
	ss.Finish(r, 600, memreq.TermFill)
	assertInvariant(t, ss.CheckConservation(600, true), "missing-stamp")
}

// TestSpanExcessStampFires: an MRQ-rejected request must not carry
// stamps past issue.
func TestSpanExcessStampFires(t *testing.T) {
	ss := NewSpanSet(4)
	r := startSampled(t, ss, 1, 1, 10)
	r.StampSpan(memreq.SpanMRQEnqueue, 11)
	ss.Finish(r, 11, memreq.TermMRQRejected)
	assertInvariant(t, ss.CheckConservation(11, true), "excess-stamp")
}

// TestSpanStampOrderFires: present stamps must be monotone in
// lifecycle order.
func TestSpanStampOrderFires(t *testing.T) {
	ss := NewSpanSet(4)
	r := startSampled(t, ss, 4, 8, 1000)
	stampFill(r, 1000)
	// Rewind the DRAM completion behind its scheduling point.
	r.Span.StampAt(memreq.SpanDRAMDone, 1030)
	ss.Finish(r, 1110, memreq.TermFill)
	assertInvariant(t, ss.CheckConservation(1110, true), "stamp-order")
}

// TestSpanDoubleFinishFires: a span reaching a second terminal (a
// recycling bug — Finish detaches, so this needs a re-attach) is a
// single-terminal violation.
func TestSpanDoubleFinishFires(t *testing.T) {
	ss := NewSpanSet(4)
	r := startSampled(t, ss, 6, 2, 0)
	sp := r.Span
	end := stampFill(r, 0)
	ss.Finish(r, end, memreq.TermFill)
	r.Span = sp
	ss.Finish(r, end+1, memreq.TermDropped)
	assertInvariant(t, ss.CheckConservation(end+1, true), "single-terminal")
}

// TestSpanConservationLedger: an unfinished span is fine mid-run
// (drained=false) and an error at drain.
func TestSpanConservationLedger(t *testing.T) {
	ss := NewSpanSet(4)
	startSampled(t, ss, 0, 0, 0)
	if err := ss.CheckConservation(50, false); err != nil {
		t.Errorf("in-flight span failed mid-run conservation: %v", err)
	}
	assertInvariant(t, ss.CheckConservation(50, true), "span-conservation")
}

// TestSpanMergeFromEquivalence: feeding two requests through per-core
// shards and merging must render identically to feeding one set
// directly — the contract that makes sharded runs byte-identical.
func TestSpanMergeFromEquivalence(t *testing.T) {
	direct := NewSpanSet(4)
	for core := 0; core < 2; core++ {
		r := startSampled(t, direct, core, core+1, 100)
		direct.Finish(r, stampFill(r, 100), memreq.TermFill)
	}
	sharded := NewSpanSet(4)
	for core := 0; core < 2; core++ {
		sh := sharded.NewShard()
		r := startSampled(t, sh, core, core+1, 100)
		sh.Finish(r, stampFill(r, 100), memreq.TermFill)
		sharded.MergeFrom(sh)
	}
	var a, b bytes.Buffer
	if err := direct.WriteJSONL(&a, "m"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteJSONL(&b, "m"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("merged shards render differently:\ndirect:\n%s\nsharded:\n%s", a.String(), b.String())
	}
	if direct.Started() != sharded.Started() || direct.Finished() != sharded.Finished() {
		t.Errorf("ledgers diverge: direct %d/%d, sharded %d/%d",
			direct.Started(), direct.Finished(), sharded.Started(), sharded.Finished())
	}
}

// TestSpanNilSafety: every method on a nil *SpanSet (spans disabled)
// must be a no-op, and stamps on unsampled requests must be free.
func TestSpanNilSafety(t *testing.T) {
	var ss *SpanSet
	if ss.Enabled() {
		t.Error("nil SpanSet reports enabled")
	}
	r := &memreq.Request{CoreID: 1, WarpID: 1}
	ss.Start(r, 0, 0)
	if r.Span != nil {
		t.Error("nil SpanSet attached a span")
	}
	r.StampSpan(memreq.SpanFill, 10) // unsampled: must not panic
	r.SpanFlag(memreq.FlagL2Hit)
	ss.Finish(r, 10, memreq.TermFill)
	ss.MergeFrom(NewSpanSet(4))
	NewSpanSet(4).MergeFrom(ss)
	if ss.NewShard() != nil {
		t.Error("nil SpanSet built a shard")
	}
	if ss.Started() != 0 || ss.Finished() != 0 || ss.Records() != nil {
		t.Error("nil SpanSet reports state")
	}
	if err := ss.CheckConservation(0, true); err != nil {
		t.Errorf("nil SpanSet failed conservation: %v", err)
	}
	var buf bytes.Buffer
	if err := ss.WriteJSONL(&buf, "x"); err != nil || buf.Len() != 0 {
		t.Errorf("nil SpanSet wrote JSONL: %q, %v", buf.String(), err)
	}
	if err := ss.WriteTable(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil SpanSet wrote a table: %q, %v", buf.String(), err)
	}
}

// assertInvariant requires err to be a spans InvariantError with the
// given name.
func assertInvariant(t *testing.T, err error, name string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected a %s invariant error, got nil", name)
	}
	var ie *simerr.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("expected *simerr.InvariantError, got %T: %v", err, err)
	}
	if ie.Component != "spans" || ie.Name != name {
		t.Errorf("got %s/%s, want spans/%s: %v", ie.Component, ie.Name, name, err)
	}
}
