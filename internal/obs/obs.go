// Package obs is the simulator's cycle-level observability layer. It has
// three cooperating pieces:
//
//   - a metrics Registry of named counters, gauges, and histograms,
//     labelled by core and component. Components register closures over
//     their existing Stats fields once at build time, so the hot
//     simulation path is untouched — the registry only reads state when a
//     sample or an end-of-run aggregation asks for it.
//   - an epoch Sampler that snapshots derived time series (IPC, MPKI,
//     prefetch accuracy/coverage, merge ratio, early-eviction rate,
//     throttle degree, DRAM row-hit rate, MSHR occupancy, ...) every N
//     cycles and exports them as JSONL.
//   - a structured event Tracer: a fixed-capacity ring of simulation
//     events (prefetch issued/dropped, throttle transitions, early
//     evictions, stride promotions) exported as Chrome trace-event JSON
//     loadable in Perfetto or chrome://tracing, one track per core.
//
// Everything is nil-safe: a nil *Registry, *Sampler, *Tracer, or *Sink
// accepts every call and does nothing, so instrumentation sites never
// need to branch and a disabled run pays only a nil check.
package obs

// Config selects which observability pieces a run gets.
type Config struct {
	// SampleEvery is the epoch length in cycles between time-series
	// samples; 0 disables the sampler.
	SampleEvery uint64
	// TraceCapacity is the event ring size; 0 disables tracing.
	// DefaultTraceCapacity is a reasonable value.
	TraceCapacity int
	// PFReport enables prefetch provenance and lifecycle attribution
	// (per-source/per-PC outcome accounting).
	PFReport bool
	// CPIStack enables per-core cycle accounting: every core-cycle is
	// attributed to exactly one CPI-stack bucket, with an epoch time
	// series and latency-tolerance snapshots (cpistack.go).
	CPIStack bool
	// CPIEpoch is the CPI-stack epoch length in cycles; 0 inherits
	// SampleEvery when the sampler is on, else DefaultCPIEpoch.
	CPIEpoch uint64
	// Spans enables request-level span tracing: a deterministic sample
	// of memory requests carries a lifecycle stamp record, aggregated
	// into per-(source, stage) latency histograms (span.go).
	Spans bool
	// SpanEvery is the span sampling divisor (one in SpanEvery requests
	// is sampled); 0 means DefaultSpanEvery.
	SpanEvery uint64
}

// DefaultTraceCapacity bounds the trace ring at a size that holds the
// interesting dynamics of a scaled-down run (~64k events) without
// unbounded growth on long ones; the ring keeps the newest events.
const DefaultTraceCapacity = 1 << 16

// Observer bundles one simulation's observability state. The zero/nil
// Observer is fully disabled.
type Observer struct {
	Registry *Registry
	Sampler  *Sampler
	Tracer   *Tracer
	PF       *PFReport
	CPI      *CPIStack
	Spans    *SpanSet
}

// New builds an Observer with a fresh Registry plus whatever cfg enables.
// The Sampler's series definitions are added later by the simulator,
// which knows the metric names it registered.
func New(cfg Config) *Observer {
	o := &Observer{Registry: NewRegistry()}
	if cfg.SampleEvery > 0 {
		o.Sampler = NewSampler(o.Registry, cfg.SampleEvery)
	}
	if cfg.TraceCapacity > 0 {
		o.Tracer = NewTracer(cfg.TraceCapacity)
	}
	if cfg.PFReport {
		o.PF = NewPFReport()
	}
	if cfg.CPIStack {
		every := cfg.CPIEpoch
		if every == 0 {
			every = cfg.SampleEvery // 0 falls through to DefaultCPIEpoch
		}
		o.CPI = NewCPIStack(every)
	}
	if cfg.Spans {
		o.Spans = NewSpanSet(cfg.SpanEvery)
	}
	return o
}
