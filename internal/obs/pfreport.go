package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/simerr"
)

// PFKey identifies one attribution bucket: the mechanism that generated a
// prefetch and the PC whose training produced it.
type PFKey struct {
	Source memreq.Source
	PC     int32
}

// PFCounts is one bucket's lifecycle ledger. The pre-issue drops plus
// Issued partition Generated; the post-issue terminals partition Issued —
// the two conservation identities CheckConservation verifies.
type PFCounts struct {
	Generated uint64 // candidates emitted by the prefetcher

	DroppedThrottle  uint64 // rejected by the throttle engine
	DroppedFilter    uint64 // rejected by the pollution filter
	DroppedInCache   uint64 // block already in the prefetch cache
	DroppedQueueFull uint64 // MRQ full
	MergedMRQ        uint64 // folded into an outstanding entry

	Issued uint64 // sent to memory

	Late          uint64 // demand merged into the in-flight prefetch
	Redundant     uint64 // fill found the block already resident
	Useful        uint64 // filled block served a demand before eviction
	EarlyEvicted  uint64 // evicted or invalidated before first use (Eq. 5)
	UnusedAtDrain uint64 // resident and unused when the run ended

	Hits         uint64 // prefetch-cache demand hits on this bucket's lines
	DemandMerges uint64 // intra-core demand-into-prefetch merges (Eq. 6 view)
	DegreeSum    uint64 // sum of throttle degrees at issue (mean = DegreeSum/Issued)
}

// dropped sums the pre-issue drops.
func (c *PFCounts) dropped() uint64 {
	return c.DroppedThrottle + c.DroppedFilter + c.DroppedInCache +
		c.DroppedQueueFull + c.MergedMRQ
}

// terminals sums the post-issue fates.
func (c *PFCounts) terminals() uint64 {
	return c.Late + c.Redundant + c.Useful + c.EarlyEvicted + c.UnusedAtDrain
}

// used is the Eq. 5 "useful prefetch" count: blocks that served a demand,
// whether the fill beat the demand (Useful) or not (Late).
func (c *PFCounts) used() uint64 { return c.Useful + c.Late }

// PFReport aggregates prefetch provenance and outcomes for one run. It is
// single-threaded like the simulation that feeds it, and nil-safe like
// every obs component: a nil *PFReport accepts all recordings and does
// nothing, so attribution is one predictable branch when disabled.
type PFReport struct {
	m map[PFKey]*PFCounts

	// demandTransactions is the coverage denominator (all demand
	// transactions the cores issued), set once at collection time.
	demandTransactions uint64
}

// NewPFReport builds an empty report.
func NewPFReport() *PFReport {
	return &PFReport{m: make(map[PFKey]*PFCounts)}
}

func (p *PFReport) bucket(prov memreq.Provenance) *PFCounts {
	k := PFKey{Source: prov.Source, PC: prov.TrainPC}
	c := p.m[k]
	if c == nil {
		c = &PFCounts{}
		p.m[k] = c
	}
	return c
}

// Generated records one candidate emitted by a prefetcher.
func (p *PFReport) Generated(prov memreq.Provenance) {
	if p == nil {
		return
	}
	p.bucket(prov).Generated++
}

// Issued records one prefetch sent to memory, accumulating the throttle
// degree in force at issue.
func (p *PFReport) Issued(prov memreq.Provenance) {
	if p == nil {
		return
	}
	c := p.bucket(prov)
	c.Issued++
	c.DegreeSum += uint64(prov.Degree)
}

// Record classifies one candidate's drop or one issued prefetch's
// terminal fate. OutNone is ignored.
func (p *PFReport) Record(prov memreq.Provenance, out memreq.Outcome) {
	if p == nil {
		return
	}
	c := p.bucket(prov)
	switch out {
	case memreq.OutDroppedThrottle:
		c.DroppedThrottle++
	case memreq.OutDroppedFilter:
		c.DroppedFilter++
	case memreq.OutDroppedInCache:
		c.DroppedInCache++
	case memreq.OutDroppedQueueFull:
		c.DroppedQueueFull++
	case memreq.OutMergedMRQ:
		c.MergedMRQ++
	case memreq.OutLate:
		c.Late++
	case memreq.OutRedundant:
		c.Redundant++
	case memreq.OutUseful:
		c.Useful++
	case memreq.OutEarlyEvicted:
		c.EarlyEvicted++
	case memreq.OutUnusedAtDrain:
		c.UnusedAtDrain++
	}
}

// Hit records one prefetch-cache demand hit served by a line this bucket
// filled — the per-source coverage numerator.
func (p *PFReport) Hit(prov memreq.Provenance) {
	if p == nil {
		return
	}
	p.bucket(prov).Hits++
}

// DemandMerge records one intra-core demand-into-prefetch merge observed
// at the MRQ, the per-source view of Eq. 6's numerator. It is
// informational: the prefetch's terminal outcome (Late) is classified
// once, at fill delivery, which also covers inter-core DRAM merges.
func (p *PFReport) DemandMerge(prov memreq.Provenance) {
	if p == nil {
		return
	}
	p.bucket(prov).DemandMerges++
}

// Add merges one bucket's counts into the report. It exists for
// post-processors (cmd/pfstat) that rebuild reports from JSONL records,
// e.g. to aggregate a sweep's runs into one table.
func (p *PFReport) Add(k PFKey, c PFCounts) {
	if p == nil {
		return
	}
	b := p.m[k]
	if b == nil {
		b = &PFCounts{}
		p.m[k] = b
	}
	b.Generated += c.Generated
	b.DroppedThrottle += c.DroppedThrottle
	b.DroppedFilter += c.DroppedFilter
	b.DroppedInCache += c.DroppedInCache
	b.DroppedQueueFull += c.DroppedQueueFull
	b.MergedMRQ += c.MergedMRQ
	b.Issued += c.Issued
	b.Late += c.Late
	b.Redundant += c.Redundant
	b.Useful += c.Useful
	b.EarlyEvicted += c.EarlyEvicted
	b.UnusedAtDrain += c.UnusedAtDrain
	b.Hits += c.Hits
	b.DemandMerges += c.DemandMerges
	b.DegreeSum += c.DegreeSum
}

// MergeFrom folds another report's buckets and coverage denominator into
// p. The simulator gives each core a private report during sharded runs
// and merges them here at collection time; Add is purely additive and
// the JSONL/table outputs sort their keys, so merge order is invisible.
func (p *PFReport) MergeFrom(o *PFReport) {
	if p == nil || o == nil {
		return
	}
	for k, c := range o.m {
		p.Add(k, *c)
	}
	p.demandTransactions += o.demandTransactions
}

// AddDemandTransactions accumulates the coverage denominator, for
// post-processors merging several runs.
func (p *PFReport) AddDemandTransactions(n uint64) {
	if p == nil {
		return
	}
	p.demandTransactions += n
}

// DemandTransactions reports the coverage denominator.
func (p *PFReport) DemandTransactions() uint64 {
	if p == nil {
		return 0
	}
	return p.demandTransactions
}

// SetDemandTransactions sets the coverage denominator.
func (p *PFReport) SetDemandTransactions(n uint64) {
	if p == nil {
		return
	}
	p.demandTransactions = n
}

// Enabled reports whether attribution is active.
func (p *PFReport) Enabled() bool { return p != nil }

// keys returns the buckets sorted by (source, PC) for deterministic
// output.
func (p *PFReport) keys() []PFKey {
	ks := make([]PFKey, 0, len(p.m))
	for k := range p.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].Source != ks[j].Source {
			return ks[i].Source < ks[j].Source
		}
		return ks[i].PC < ks[j].PC
	})
	return ks
}

// CheckConservation verifies, per bucket, that every generated candidate
// was classified exactly once before issue and every issued prefetch
// exactly once after — the ledger identities
//
//	Generated = drops + Issued
//	Issued    = Late + Redundant + Useful + EarlyEvicted + UnusedAtDrain
//
// A double- or never-classified prefetch breaks one of them. It returns
// nil when attribution is disabled.
func (p *PFReport) CheckConservation(cycle uint64) error {
	if p == nil {
		return nil
	}
	for _, k := range p.keys() {
		c := p.m[k]
		if got := c.dropped() + c.Issued; got != c.Generated {
			return &simerr.InvariantError{
				Component: "pfreport", Name: "generation-conservation", Cycle: cycle,
				Detail: fmt.Sprintf("source %s pc %d: %d generated but %d dropped+issued",
					k.Source, k.PC, c.Generated, got),
			}
		}
		if got := c.terminals(); got != c.Issued {
			return &simerr.InvariantError{
				Component: "pfreport", Name: "outcome-conservation", Cycle: cycle,
				Detail: fmt.Sprintf("source %s pc %d: %d issued but %d terminal outcomes",
					k.Source, k.PC, c.Issued, got),
			}
		}
	}
	return nil
}

// pfRecord is the JSONL schema of one bucket; field order is the wire
// order.
type pfRecord struct {
	Record string `json:"record"`
	Run    string `json:"run,omitempty"`
	Source string `json:"source"`
	PC     int32  `json:"pc"`

	Generated        uint64 `json:"generated"`
	DroppedThrottle  uint64 `json:"dropped_throttle"`
	DroppedFilter    uint64 `json:"dropped_filter"`
	DroppedInCache   uint64 `json:"dropped_in_cache"`
	DroppedQueueFull uint64 `json:"dropped_queue_full"`
	MergedMRQ        uint64 `json:"merged_mrq"`
	Issued           uint64 `json:"issued"`
	Late             uint64 `json:"late"`
	Redundant        uint64 `json:"redundant"`
	Useful           uint64 `json:"useful"`
	EarlyEvicted     uint64 `json:"early_evicted"`
	UnusedAtDrain    uint64 `json:"unused_at_drain"`
	Hits             uint64 `json:"hits"`
	DemandMerges     uint64 `json:"demand_merges"`
	DegreeSum        uint64 `json:"degree_sum"`
}

// pfSummary is the JSONL schema of the per-run trailer line carrying the
// coverage denominator and run-wide totals.
type pfSummary struct {
	Record             string `json:"record"`
	Run                string `json:"run,omitempty"`
	DemandTransactions uint64 `json:"demand_transactions"`
	Generated          uint64 `json:"generated"`
	Issued             uint64 `json:"issued"`
	Useful             uint64 `json:"useful"`
	Late               uint64 `json:"late"`
	EarlyEvicted       uint64 `json:"early_evicted"`
	Hits               uint64 `json:"hits"`
}

// WriteJSONL emits one "pfreport" line per bucket, sorted by (source,
// PC), then one "pfsummary" trailer, all tagged with the run key.
func (p *PFReport) WriteJSONL(w io.Writer, run string) error {
	if p == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	var sum pfSummary
	for _, k := range p.keys() {
		c := p.m[k]
		rec := pfRecord{
			Record: "pfreport", Run: run, Source: k.Source.String(), PC: k.PC,
			Generated:        c.Generated,
			DroppedThrottle:  c.DroppedThrottle,
			DroppedFilter:    c.DroppedFilter,
			DroppedInCache:   c.DroppedInCache,
			DroppedQueueFull: c.DroppedQueueFull,
			MergedMRQ:        c.MergedMRQ,
			Issued:           c.Issued,
			Late:             c.Late,
			Redundant:        c.Redundant,
			Useful:           c.Useful,
			EarlyEvicted:     c.EarlyEvicted,
			UnusedAtDrain:    c.UnusedAtDrain,
			Hits:             c.Hits,
			DemandMerges:     c.DemandMerges,
			DegreeSum:        c.DegreeSum,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		sum.Generated += c.Generated
		sum.Issued += c.Issued
		sum.Useful += c.Useful
		sum.Late += c.Late
		sum.EarlyEvicted += c.EarlyEvicted
		sum.Hits += c.Hits
	}
	sum.Record = "pfsummary"
	sum.Run = run
	sum.DemandTransactions = p.demandTransactions
	return enc.Encode(sum)
}

// WriteTable renders the human-readable per-(source, PC) table: raw
// outcome counts plus the paper's derived metrics — accuracy (used
// prefetches per issued), coverage (prefetch-cache hits per demand
// transaction), lateness (late per issued) and the Eq. 5 early-eviction
// rate (early evictions per used prefetch).
func (p *PFReport) WriteTable(w io.Writer) error {
	if p == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-10s %6s %9s %8s %8s %7s %7s %7s %8s %8s %8s %8s\n",
		"source", "pc", "generated", "dropped", "issued", "useful", "late", "early",
		"accuracy", "coverage", "lateness", "earlyrate"); err != nil {
		return err
	}
	for _, k := range p.keys() {
		c := p.m[k]
		if _, err := fmt.Fprintf(w, "%-10s %6d %9d %8d %8d %7d %7d %7d %8s %8s %8s %8s\n",
			k.Source, k.PC, c.Generated, c.dropped(), c.Issued, c.Useful, c.Late, c.EarlyEvicted,
			ratioStr(c.used(), c.Issued), ratioStr(c.Hits, p.demandTransactions),
			ratioStr(c.Late, c.Issued), ratioStr(c.EarlyEvicted, c.used())); err != nil {
			return err
		}
	}
	return nil
}

// ratioStr formats a/b to three decimals, "-" for an empty denominator.
func ratioStr(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(a)/float64(b))
}
