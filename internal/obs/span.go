package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/stats"
)

// SpanStage is one leg of the per-request latency decomposition. The
// five stages telescope: their durations sum to the request's
// end-to-end latency (issue to fill), which is the conservation
// identity CheckConservation enforces per span.
type SpanStage uint8

const (
	// StageMRQ: smcore issue until the request leaves the MRQ send
	// queue — intra-core queueing, including the enqueue wait.
	StageMRQ SpanStage = iota
	// StageNoCReq: NoC transit of the request, inject to delivery at
	// the memory side (includes inject-budget stalls, which happen
	// before the dequeue stamp, so this is pure link latency).
	StageNoCReq
	// StageDRAMQueue: delivery until the FR-FCFS scheduler picks the
	// request (for inter-core-merge riders, until the carrying entry's
	// data is done — riders are never scheduled themselves).
	StageDRAMQueue
	// StageDRAMService: scheduling until the data leaves the channel —
	// bank-ready wait, row activate, and data bus.
	StageDRAMService
	// StageNoCResp: response NoC transit plus response-queue wait,
	// until the core fills.
	StageNoCResp
	NumSpanStages
)

var spanStageNames = [NumSpanStages]string{
	"mrq", "noc_req", "dram_queue", "dram_service", "noc_resp",
}

func (s SpanStage) String() string {
	if s < NumSpanStages {
		return spanStageNames[s]
	}
	return "unknown"
}

// DefaultSpanEvery is the sampling divisor when the config leaves it
// zero: roughly one in 32 requests carries a span.
const DefaultSpanEvery = 32

// spanSeed salts the sampling hash so the selection is not correlated
// with any power-of-two structure in warp ids or sequence numbers.
const spanSeed = 0x6d74707265665370

// spanMix is the splitmix64 finalizer: a cheap, well-distributed
// deterministic mixer with no process-level state.
func spanMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SpanHash is the deterministic sampling hash over a request's identity
// (core, global warp id, per-core issue sequence). All three inputs are
// properties of the simulated machine, never of the host: the selection
// is identical across -j, -shards, and cycle skipping.
func SpanHash(core, warp int, seq uint64) uint64 {
	h := spanMix(spanSeed ^ uint64(uint32(core)))
	h = spanMix(h ^ uint64(uint32(warp)))
	h = spanMix(h ^ seq)
	return h
}

// SpanSampled reports whether the request identified by (core, warp,
// seq) is selected at a 1-in-every sampling rate.
func SpanSampled(core, warp int, seq, every uint64) bool {
	return SpanHash(core, warp, seq)%every == 0
}

// SpanID builds the globally unique, shard-independent span id.
func SpanID(core int, seq uint64) uint64 {
	return uint64(core)<<40 | seq
}

// SpanRec is one finished span, copied out of the request at its
// terminal so the record survives request recycling.
type SpanRec struct {
	ID     uint64
	Core   int32
	Warp   int32
	PC     int32
	Kind   memreq.Kind
	Source memreq.Source
	Term   memreq.SpanTerminal
	Flags  uint8
	Seen   uint16
	End    uint64 // cycle of the terminal
	Stamp  [memreq.NumSpanSites]uint64
}

func (r *SpanRec) has(site memreq.SpanSite) bool {
	return r.Seen&(1<<site) != 0
}

// sub is a saturating subtraction: a malformed span (missing stamp)
// must not wrap into a huge duration while being reported.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Stages decomposes a filled span into per-stage durations and the
// end-to-end total. For non-fill terminals every stage is zero and the
// total is the issue-to-terminal distance.
func (r *SpanRec) Stages() (st [NumSpanStages]uint64, total uint64) {
	total = sub(r.End, r.Stamp[memreq.SpanIssue])
	if r.Term != memreq.TermFill {
		return st, total
	}
	st[StageMRQ] = sub(r.Stamp[memreq.SpanMRQDequeue], r.Stamp[memreq.SpanIssue])
	st[StageNoCReq] = sub(r.Stamp[memreq.SpanNoCReqDeliver], r.Stamp[memreq.SpanMRQDequeue])
	if r.Flags&memreq.FlagDRAMMerged != 0 {
		st[StageDRAMQueue] = sub(r.Stamp[memreq.SpanDRAMDone], r.Stamp[memreq.SpanNoCReqDeliver])
	} else {
		st[StageDRAMQueue] = sub(r.Stamp[memreq.SpanDRAMSched], r.Stamp[memreq.SpanNoCReqDeliver])
		st[StageDRAMService] = sub(r.Stamp[memreq.SpanDRAMDone], r.Stamp[memreq.SpanDRAMSched])
	}
	st[StageNoCResp] = sub(r.Stamp[memreq.SpanFill], r.Stamp[memreq.SpanDRAMDone])
	return st, total
}

// row renders the row-buffer outcome flag, "" when none applies (L2
// hits and merge riders never touch a bank).
func (r *SpanRec) row() string {
	switch {
	case r.Flags&memreq.FlagRowHit != 0:
		return "hit"
	case r.Flags&memreq.FlagRowClosed != 0:
		return "closed"
	case r.Flags&memreq.FlagRowMiss != 0:
		return "miss"
	}
	return ""
}

// SpanSet aggregates the spans of one run (or one core shard of one
// run). Like every obs component it is nil-safe: a nil *SpanSet accepts
// every call and does nothing, so the instrumented hot paths pay one
// predictable branch when spans are off. The mutex serializes the
// sampled-path mutations against the debug server's live /spans reads;
// unsampled requests never touch it.
type SpanSet struct {
	every uint64

	mu       sync.Mutex
	started  uint64
	finished uint64
	terms    [memreq.NumSources][memreq.NumSpanTerminals]uint64
	stage    [memreq.NumSources][NumSpanStages]stats.Histogram
	total    [memreq.NumSources]stats.Histogram
	recs     []SpanRec
	err      error // first malformed span, surfaced by CheckConservation
}

// NewSpanSet builds an empty set sampling one in every requests (0
// means DefaultSpanEvery).
func NewSpanSet(every uint64) *SpanSet {
	if every == 0 {
		every = DefaultSpanEvery
	}
	return &SpanSet{every: every}
}

// NewShard builds an empty set with the same sampling rate, for
// per-core shards that merge back at collection time.
func (ss *SpanSet) NewShard() *SpanSet {
	if ss == nil {
		return nil
	}
	return NewSpanSet(ss.every)
}

// Enabled reports whether span tracing is active.
func (ss *SpanSet) Enabled() bool { return ss != nil }

// Start runs the sampling decision for a just-created request and, when
// selected, attaches a span stamped at SpanIssue. seq is the core-local
// candidate sequence number (every demand and prefetch request the core
// creates, counted in issue order), which makes the decision
// independent of host-side execution order.
func (ss *SpanSet) Start(r *memreq.Request, seq, cycle uint64) {
	if ss == nil {
		return
	}
	if !SpanSampled(r.CoreID, r.WarpID, seq, ss.every) {
		return
	}
	sp := &memreq.Span{ID: SpanID(r.CoreID, seq)}
	sp.StampAt(memreq.SpanIssue, cycle)
	r.Span = sp
	ss.mu.Lock()
	ss.started++
	ss.mu.Unlock()
}

// Finish records the span's terminal, validates it, and detaches it
// from the request (so recycling cannot double-finish). Requests
// without a span are ignored.
func (ss *SpanSet) Finish(r *memreq.Request, cycle uint64, term memreq.SpanTerminal) {
	if ss == nil || r == nil || r.Span == nil {
		return
	}
	sp := r.Span
	r.Span = nil
	rec := SpanRec{
		ID:   sp.ID,
		Core: int32(r.CoreID), Warp: int32(r.WarpID), PC: int32(r.PC),
		Kind: r.Kind, Term: term, Flags: sp.Flags, Seen: sp.Seen,
		End: cycle, Stamp: sp.Stamp,
	}
	if r.WasPrefetch {
		rec.Source = r.Prov.Source
	}
	var verr error
	if sp.Term != memreq.TermNone {
		verr = &simerr.InvariantError{
			Component: "spans", Name: "single-terminal", Cycle: cycle,
			Detail: fmt.Sprintf("span %#x reached %s after %s", sp.ID, term, sp.Term),
		}
	} else {
		verr = checkSpan(&rec)
	}
	sp.Term = term

	ss.mu.Lock()
	ss.finished++
	ss.terms[rec.Source][term]++
	if verr == nil && term == memreq.TermFill {
		st, total := rec.Stages()
		for i := range st {
			ss.stage[rec.Source][i].Add(st[i])
		}
		ss.total[rec.Source].Add(total)
	}
	ss.recs = append(ss.recs, rec)
	if ss.err == nil {
		ss.err = verr
	}
	ss.mu.Unlock()
}

// checkSpan validates one finished span: the sites its path variant
// requires are all present, the present stamps are monotone in
// lifecycle order, and (for fills) the stage durations sum exactly to
// the end-to-end latency.
func checkSpan(rec *SpanRec) error {
	bad := func(name, format string, args ...any) error {
		return &simerr.InvariantError{
			Component: "spans", Name: name, Cycle: rec.End,
			Detail: fmt.Sprintf("span %#x (core %d warp %d): %s",
				rec.ID, rec.Core, rec.Warp, fmt.Sprintf(format, args...)),
		}
	}
	if !rec.has(memreq.SpanIssue) {
		return bad("missing-stamp", "no %s stamp", memreq.SpanIssue)
	}
	switch rec.Term {
	case memreq.TermFill:
		required := []memreq.SpanSite{
			memreq.SpanIssue, memreq.SpanMRQEnqueue, memreq.SpanMRQDequeue,
			memreq.SpanNoCReqInject, memreq.SpanNoCReqDeliver, memreq.SpanDRAMArrive,
			memreq.SpanDRAMDone, memreq.SpanNoCRespInject, memreq.SpanNoCRespDeliver,
			memreq.SpanFill,
		}
		merged := rec.Flags&memreq.FlagDRAMMerged != 0
		l2 := rec.Flags&memreq.FlagL2Hit != 0
		if !merged {
			required = append(required, memreq.SpanDRAMSched)
			if !l2 {
				required = append(required, memreq.SpanDRAMActivate)
			}
		}
		for _, site := range required {
			if !rec.has(site) {
				return bad("missing-stamp", "filled with no %s stamp (flags %#x)", site, rec.Flags)
			}
		}
	case memreq.TermMRQMerged, memreq.TermMRQRejected:
		// The request died at the MRQ door: it must not have been
		// accepted (and certainly never travelled further).
		if rec.Seen != 1<<memreq.SpanIssue {
			return bad("excess-stamp", "%s terminal but stamps beyond issue (seen %#x)",
				rec.Term, rec.Seen)
		}
	case memreq.TermDropped:
		// Fault injection can drop the response anywhere past issue; no
		// further sites are required.
	default:
		return bad("no-terminal", "finished with terminal %d", rec.Term)
	}
	// Monotonicity over the present sites in lifecycle (enum) order.
	var prev uint64
	var prevSite memreq.SpanSite
	seen := false
	for site := memreq.SpanSite(0); site < memreq.NumSpanSites; site++ {
		if !rec.has(site) {
			continue
		}
		if seen && rec.Stamp[site] < prev {
			return bad("stamp-order", "%s@%d before %s@%d",
				site, rec.Stamp[site], prevSite, prev)
		}
		prev, prevSite, seen = rec.Stamp[site], site, true
	}
	if rec.End < prev {
		return bad("stamp-order", "terminal %s@%d before %s@%d", rec.Term, rec.End, prevSite, prev)
	}
	if rec.Term == memreq.TermFill {
		st, total := rec.Stages()
		var sum uint64
		for _, d := range st {
			sum += d
		}
		if sum != total {
			return bad("stage-conservation", "stages sum to %d but end-to-end is %d", sum, total)
		}
	}
	return nil
}

// MergeFrom folds a core shard's spans into ss. Histogram merging is
// exact and records are re-sorted by id at output time, so merge order
// is invisible in every rendered form.
func (ss *SpanSet) MergeFrom(o *SpanSet) {
	if ss == nil || o == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.started += o.started
	ss.finished += o.finished
	for s := range o.terms {
		for t := range o.terms[s] {
			ss.terms[s][t] += o.terms[s][t]
		}
		for st := range o.stage[s] {
			ss.stage[s][st].Merge(&o.stage[s][st])
		}
		ss.total[s].Merge(&o.total[s])
	}
	ss.recs = append(ss.recs, o.recs...)
	if ss.err == nil {
		ss.err = o.err
	}
}

// Started reports how many requests were sampled.
func (ss *SpanSet) Started() uint64 {
	if ss == nil {
		return 0
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.started
}

// Finished reports how many sampled requests reached a terminal.
func (ss *SpanSet) Finished() uint64 {
	if ss == nil {
		return 0
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.finished
}

// Records returns the finished spans sorted by id — the canonical,
// shard-order-independent view used by the JSONL and flow-event
// exporters.
func (ss *SpanSet) Records() []SpanRec {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	out := make([]SpanRec, len(ss.recs))
	copy(out, ss.recs)
	ss.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CheckConservation verifies the run-level span ledger: every malformed
// span recorded during the run surfaces here, and — when the run
// drained — every sampled request reached exactly one terminal
// (started == finished). A run stopped at MaxCycles legitimately has
// in-flight spans, so drained=false only checks that terminals never
// exceed starts. It returns nil when spans are disabled.
func (ss *SpanSet) CheckConservation(cycle uint64, drained bool) error {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.err != nil {
		return ss.err
	}
	if ss.finished > ss.started {
		return &simerr.InvariantError{
			Component: "spans", Name: "span-conservation", Cycle: cycle,
			Detail: fmt.Sprintf("%d spans finished but only %d started", ss.finished, ss.started),
		}
	}
	if drained && ss.started != ss.finished {
		return &simerr.InvariantError{
			Component: "spans", Name: "span-conservation", Cycle: cycle,
			Detail: fmt.Sprintf("drained with %d spans started but %d finished",
				ss.started, ss.finished),
		}
	}
	return nil
}

// spanRecord is the JSONL schema of one finished span; field order is
// the wire order.
type spanRecord struct {
	Record      string `json:"record"`
	Run         string `json:"run,omitempty"`
	ID          uint64 `json:"id"`
	Core        int32  `json:"core"`
	Warp        int32  `json:"warp"`
	PC          int32  `json:"pc"`
	Kind        string `json:"kind"`
	Source      string `json:"source"`
	Terminal    string `json:"terminal"`
	Issue       uint64 `json:"issue"`
	MRQ         uint64 `json:"mrq"`
	NoCReq      uint64 `json:"noc_req"`
	DRAMQueue   uint64 `json:"dram_queue"`
	DRAMService uint64 `json:"dram_service"`
	NoCResp     uint64 `json:"noc_resp"`
	Total       uint64 `json:"total"`
	DRAMMerged  bool   `json:"dram_merged,omitempty"`
	L2Hit       bool   `json:"l2_hit,omitempty"`
	Row         string `json:"row,omitempty"`
}

// spanSummary is the JSONL schema of the per-source trailer: terminal
// counts, stage cycle sums (the waterfall numerators), and end-to-end
// percentiles.
type spanSummary struct {
	Record      string  `json:"record"`
	Run         string  `json:"run,omitempty"`
	Source      string  `json:"source"`
	Fills       uint64  `json:"fills"`
	MRQMerged   uint64  `json:"mrq_merged"`
	MRQRejected uint64  `json:"mrq_rejected"`
	Dropped     uint64  `json:"dropped"`
	MRQ         uint64  `json:"mrq"`
	NoCReq      uint64  `json:"noc_req"`
	DRAMQueue   uint64  `json:"dram_queue"`
	DRAMService uint64  `json:"dram_service"`
	NoCResp     uint64  `json:"noc_resp"`
	Total       uint64  `json:"total"`
	P50         float64 `json:"p50"`
	P95         float64 `json:"p95"`
	P99         float64 `json:"p99"`
}

// WriteJSONL emits one "span" line per finished span, sorted by id,
// then one "spansummary" trailer per source that saw any terminal, all
// tagged with the run key.
func (ss *SpanSet) WriteJSONL(w io.Writer, run string) error {
	if ss == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, rec := range ss.Records() {
		st, total := rec.Stages()
		out := spanRecord{
			Record: "span", Run: run, ID: rec.ID,
			Core: rec.Core, Warp: rec.Warp, PC: rec.PC,
			Kind:        rec.Kind.String(),
			Source:      rec.Source.String(),
			Terminal:    rec.Term.String(),
			Issue:       rec.Stamp[memreq.SpanIssue],
			MRQ:         st[StageMRQ],
			NoCReq:      st[StageNoCReq],
			DRAMQueue:   st[StageDRAMQueue],
			DRAMService: st[StageDRAMService],
			NoCResp:     st[StageNoCResp],
			Total:       total,
			DRAMMerged:  rec.Flags&memreq.FlagDRAMMerged != 0,
			L2Hit:       rec.Flags&memreq.FlagL2Hit != 0,
			Row:         rec.row(),
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for s := memreq.Source(0); s < memreq.NumSources; s++ {
		var n uint64
		for _, c := range ss.terms[s] {
			n += c
		}
		if n == 0 {
			continue
		}
		sum := spanSummary{
			Record: "spansummary", Run: run, Source: s.String(),
			Fills:       ss.terms[s][memreq.TermFill],
			MRQMerged:   ss.terms[s][memreq.TermMRQMerged],
			MRQRejected: ss.terms[s][memreq.TermMRQRejected],
			Dropped:     ss.terms[s][memreq.TermDropped],
			MRQ:         ss.stage[s][StageMRQ].Sum,
			NoCReq:      ss.stage[s][StageNoCReq].Sum,
			DRAMQueue:   ss.stage[s][StageDRAMQueue].Sum,
			DRAMService: ss.stage[s][StageDRAMService].Sum,
			NoCResp:     ss.stage[s][StageNoCResp].Sum,
			Total:       ss.total[s].Sum,
			P50:         ss.total[s].Percentile(50),
			P95:         ss.total[s].Percentile(95),
			P99:         ss.total[s].Percentile(99),
		}
		if err := enc.Encode(sum); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the latency waterfall: one row per source with the
// share of end-to-end cycles spent in each stage. It locks the set, so
// the debug server can render a live snapshot mid-run.
func (ss *SpanSet) WriteTable(w io.Writer) error {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, err := fmt.Fprintf(w, "%-10s %8s %9s %7s %8s %8s %9s %9s %8s %8s %8s\n",
		"source", "fills", "avgtotal", "mrq%", "nocreq%", "dramq%", "dramsvc%",
		"nocresp%", "p50", "p95", "p99"); err != nil {
		return err
	}
	for s := memreq.Source(0); s < memreq.NumSources; s++ {
		t := &ss.total[s]
		if t.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-10s %8d %9.1f %7s %8s %8s %9s %9s %8.1f %8.1f %8.1f\n",
			s, t.Count, t.Avg(),
			pctStr(ss.stage[s][StageMRQ].Sum, t.Sum),
			pctStr(ss.stage[s][StageNoCReq].Sum, t.Sum),
			pctStr(ss.stage[s][StageDRAMQueue].Sum, t.Sum),
			pctStr(ss.stage[s][StageDRAMService].Sum, t.Sum),
			pctStr(ss.stage[s][StageNoCResp].Sum, t.Sum),
			t.Percentile(50), t.Percentile(95), t.Percentile(99)); err != nil {
			return err
		}
	}
	return nil
}

// pctStr formats a/b as a percentage to one decimal, "-" for an empty
// denominator.
func pctStr(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(a)/float64(b)*100)
}
