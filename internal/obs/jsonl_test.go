package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// refMarshal is the encoding the hand-rolled helpers must replicate.
func refMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal(%v): %v", v, err)
	}
	return b
}

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"", "plain", "with space", `quote"inside`, `back\slash`,
		"new\nline", "tab\there", "carriage\rreturn", "nul\x00byte",
		"ctrl\x1fchar", "html<>&escapes", "unicode: 日本語",
		"line sep   and   para", "invalid \xff utf8",
		"mixed<\n\xfe >&end", "\x7f del is safe",
	}
	for _, s := range cases {
		want := refMarshal(t, s)
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 2.0 / 3.0, 1e-6, 9.9e-7, 1e-7,
		-1e-7, 1e21, 1e20, -1e21, 1e-20, 123456.789, 3.141592653589793,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 42, 1000000,
	}
	for _, f := range cases {
		want := refMarshal(t, f)
		got, err := appendJSONFloat(nil, f)
		if err != nil {
			t.Fatalf("appendJSONFloat(%v): %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONFloat(%v) = %s, want %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := appendJSONFloat(nil, f); err == nil {
			t.Errorf("appendJSONFloat(%v) accepted a non-finite value", f)
		}
	}
}

func TestAppendJSONFloatFuzzMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		f := math.Ldexp(rng.Float64()*2-1, rng.Intn(160)-80)
		want := refMarshal(t, f)
		got, err := appendJSONFloat(nil, f)
		if err != nil {
			t.Fatalf("appendJSONFloat(%v): %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestAppendJSONStringFuzzMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(24)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		s := string(b)
		want := refMarshal(t, s)
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
}

// TestSamplerWriteJSONLMatchesMapMarshal pins the hand-rolled sampler
// writer to what the previous implementation produced: one json.Marshal
// of a map holding the meta keys, "cycle", and every series value.
func TestSamplerWriteJSONLMatchesMapMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		r := NewRegistry()
		var n uint64
		r.CounterU64("n", Labels{}, &n)
		s := NewSampler(r, 10)
		names := []string{"rate", "ipc<odd>", "run", "cycle", "z w"}
		defs := make([]SeriesDef, 1+rng.Intn(4))
		for i := range defs {
			defs[i] = SeriesDef{Name: names[rng.Intn(len(names))], Kind: SeriesPerCycle, Num: []string{"n"}, Scale: math.Ldexp(rng.Float64(), rng.Intn(40)-20)}
		}
		s.Define(defs...)
		meta := map[string]string{}
		for _, k := range []string{"run", "bench", "cycle", "odd\"key"} {
			if rng.Intn(2) == 0 {
				meta[k] = []string{"gstable", "a<b>&c", "x\xffy", ""}[rng.Intn(4)]
			}
		}
		epochs := 1 + rng.Intn(3)
		for e := 1; e <= epochs; e++ {
			n += uint64(rng.Intn(1000))
			s.Tick(uint64(10 * e))
		}

		var got bytes.Buffer
		if err := s.WriteJSONL(&got, meta); err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		for _, p := range s.Points() {
			line := make(map[string]any, len(defs)+len(meta)+1)
			for k, v := range meta {
				line[k] = v
			}
			line["cycle"] = p.Cycle
			for i, d := range defs {
				line[d.Name] = p.Values[i]
			}
			b, err := json.Marshal(line)
			if err != nil {
				t.Fatal(err)
			}
			want.Write(append(b, '\n'))
		}
		if got.String() != want.String() {
			t.Fatalf("trial %d: writer diverged from json.Marshal\n got: %s\nwant: %s", trial, got.String(), want.String())
		}
	}
}
