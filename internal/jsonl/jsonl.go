// Package jsonl provides a line reader for JSONL streams with no upper
// bound on line length. The analysis tools (cmd/pfstat, cmd/cpistat)
// used bufio.Scanner with a fixed maximum buffer, which fails with
// "token too long" once a record — e.g. a per-PC table serialized for a
// large sweep — outgrows it; this reader grows its buffer to whatever
// the longest line needs instead of failing.
package jsonl

import (
	"bufio"
	"bytes"
	"io"
)

// Reader yields one line at a time from an underlying stream. The
// returned line slices are valid until the next Line call, like
// bufio.Scanner's Bytes — the buffer is reused across lines.
type Reader struct {
	br   *bufio.Reader
	long []byte // assembly buffer for lines longer than the bufio buffer
}

// NewReader wraps r; the initial buffer handles common line lengths and
// longer lines grow it on demand.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024)}
}

// Line returns the next line with its trailing newline (and any
// carriage return before it) removed. At end of stream it returns the
// final unterminated line if there is one, then (nil, io.EOF); any
// other error is returned as-is.
func (r *Reader) Line() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == nil {
		return trimEOL(line), nil
	}
	if err == bufio.ErrBufferFull {
		// The line outgrew the bufio buffer: assemble the fragments in
		// the reusable long-line buffer.
		r.long = append(r.long[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = r.br.ReadSlice('\n')
			r.long = append(r.long, line...)
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		if len(r.long) == 0 && err == io.EOF {
			return nil, io.EOF
		}
		return trimEOL(r.long), nil
	}
	if err == io.EOF && len(line) > 0 {
		return trimEOL(line), nil
	}
	return nil, err
}

// trimEOL strips one trailing "\n" or "\r\n".
func trimEOL(b []byte) []byte {
	b = bytes.TrimSuffix(b, []byte("\n"))
	return bytes.TrimSuffix(b, []byte("\r"))
}
