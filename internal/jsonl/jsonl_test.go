package jsonl

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// collect drains r into a slice of line copies.
func collect(t *testing.T, r *Reader) []string {
	t.Helper()
	var out []string
	for {
		line, err := r.Line()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(line))
	}
}

func TestShortLines(t *testing.T) {
	r := NewReader(strings.NewReader("a\nbb\r\n\nccc"))
	got := collect(t, r)
	want := []string{"a", "bb", "", "ccc"}
	if len(got) != len(want) {
		t.Fatalf("lines = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLongLines is the regression test for the bufio.Scanner "token too
// long" failure: lines several times the internal buffer size must come
// back intact.
func TestLongLines(t *testing.T) {
	long1 := strings.Repeat("x", 3<<20) // 3 MiB, past any fixed scanner cap
	long2 := strings.Repeat("y", 256<<10)
	input := "short\n" + long1 + "\n" + long2 + "\nlast"
	r := NewReader(strings.NewReader(input))
	got := collect(t, r)
	if len(got) != 4 {
		t.Fatalf("lines = %d, want 4", len(got))
	}
	if got[0] != "short" || got[3] != "last" {
		t.Errorf("framing lines = %q, %q", got[0], got[3])
	}
	if got[1] != long1 {
		t.Errorf("3MiB line came back with %d bytes", len(got[1]))
	}
	if got[2] != long2 {
		t.Errorf("256KiB line came back with %d bytes", len(got[2]))
	}
}

func TestUnterminatedLongFinalLine(t *testing.T) {
	long := strings.Repeat("z", 1<<20)
	r := NewReader(strings.NewReader(long))
	line, err := r.Line()
	if err != nil {
		t.Fatal(err)
	}
	if string(line) != long {
		t.Fatalf("final line came back with %d bytes, want %d", len(line), len(long))
	}
	if _, err := r.Line(); err != io.EOF {
		t.Fatalf("after final line: err = %v, want EOF", err)
	}
}

func TestEmptyStream(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(nil)).Line(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want EOF", err)
	}
}
