// Package config describes the simulated GPGPU machine.
//
// The baseline configuration mirrors Table II of Lee et al., MICRO 2010
// ("Many-Thread Aware Prefetching Mechanisms for GPGPU Applications"):
// an NVIDIA 8800GT-like processor with 14 cores of 8-wide SIMD, a 16KB
// 8-way prefetch cache per core, a 20-cycle fixed-latency interconnect,
// and an 8-channel, 16-bank DRAM with 2KB row buffers at 57.6 GB/s.
package config

import (
	"errors"
	"fmt"
)

// SchedPolicy selects how a core picks the next warp to issue from.
type SchedPolicy uint8

const (
	// SwitchOnStall keeps issuing from the current warp until its
	// operands are not ready (Section II-B: "it executes instructions
	// from one warp, switching to another warp if source operands are
	// not ready"). This is the paper's scheduler and the default.
	SwitchOnStall SchedPolicy = iota
	// RoundRobin rotates to the next ready warp after every issued
	// instruction; provided for ablation (it removes the inter-warp
	// stagger that inter-thread prefetching exploits).
	RoundRobin
)

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case SwitchOnStall:
		return "switch-on-stall"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", uint8(p))
	}
}

// Config is a complete machine description. The zero value is not usable;
// start from Baseline and override fields as needed.
type Config struct {
	// Cores.
	NumCores  int         // number of SIMT cores (SMs)
	SIMDWidth int         // lanes per core
	WarpSize  int         // threads per warp
	Scheduler SchedPolicy // warp scheduling policy (default SwitchOnStall)

	// Issue occupancy in core cycles per warp-instruction. With 8-wide
	// SIMD and 32-thread warps a warp instruction occupies the pipeline
	// for WarpSize/SIMDWidth = 4 cycles; IMUL and FDIV are slower per
	// the CUDA manual latencies quoted in Table II.
	IssueCostALU  int
	IssueCostIMul int
	IssueCostFDiv int
	IssueCostMem  int // address generation + queue insertion occupancy

	// Clocks in MHz. The simulator advances in core cycles; DRAM timing
	// parameters expressed in DRAM cycles are converted by the clock
	// ratio (see DRAMCyclesToCore).
	CoreClockMHz int
	DRAMClockMHz int

	// Interconnect.
	NOCLatency        int // fixed one-way latency in core cycles
	NOCCoresPerInject int // at most 1 request per this many cores per cycle

	// Memory system.
	BlockBytes     int // memory transaction granularity (cache block)
	DRAMChannels   int
	DRAMBanks      int // banks per channel
	DRAMRowBytes   int // row-buffer (page) size per bank
	DRAMtCL        int // CAS latency, DRAM cycles
	DRAMtRCD       int // RAS-to-CAS, DRAM cycles
	DRAMtRP        int // row precharge, DRAM cycles
	DRAMQueueSize  int // memory-request buffer entries per channel
	BusCyclesBlock int // core cycles of channel data-bus occupancy per block
	DRAMOverhead   int // fixed controller/DRAM-core overhead per access, core cycles
	DRAMAgePromote int // cycles before a queued prefetch gains demand priority (0 = never)

	// Optional shared L2 at the memory controllers (Section XI future
	// work; the Table II baseline has none, so L2Bytes defaults to 0).
	L2Bytes      int
	L2Ways       int
	L2HitLatency int

	// Per-core memory request queue (MRQ).
	MRQSize int
	// MRQPrefetchReserve keeps this many MRQ entries usable only by
	// prefetch requests, so a demand-saturated queue cannot starve the
	// prefetcher outright (demands may occupy at most
	// MRQSize-MRQPrefetchReserve entries).
	MRQPrefetchReserve int

	// Prefetch cache (per core).
	PrefetchCacheBytes int
	PrefetchCacheWays  int
	PrefetchHitLatency int // cycles; a prefetch-cache hit costs like shared memory

	// Prefetcher aggressiveness defaults (Section II-C3).
	PrefetchDistance int
	PrefetchDegree   int

	// Adaptive throttling (Section V).
	ThrottlePeriod     uint64  // cycles between throttle decisions
	ThrottleInitDegree int     // initial throttle degree (paper uses 2)
	EarlyHighThresh    float64 // early eviction rate considered "high"
	EarlyLowThresh     float64 // below this it is "low"
	MergeHighThresh    float64 // merge ratio considered "high"
}

// Baseline returns the Table II machine.
func Baseline() *Config {
	return &Config{
		NumCores:  14,
		SIMDWidth: 8,
		WarpSize:  32,

		IssueCostALU:  4,
		IssueCostIMul: 16,
		IssueCostFDiv: 32,
		IssueCostMem:  4,

		CoreClockMHz: 900,
		DRAMClockMHz: 1200,

		NOCLatency:        20,
		NOCCoresPerInject: 2,

		BlockBytes:     64,
		DRAMChannels:   8,
		DRAMBanks:      16,
		DRAMRowBytes:   2048,
		DRAMtCL:        11,
		DRAMtRCD:       11,
		DRAMtRP:        13,
		DRAMQueueSize:  32,
		BusCyclesBlock: 8, // 8 channels x 64B/8cyc @900MHz = 57.6 GB/s
		// Fixed access latency (controller + DRAM core, pipelined): the
		// 8800GT's measured ~340ns global-memory latency is ~300+ cycles
		// at 900 MHz.
		DRAMOverhead: 500,
		// Prefetches lose to demands in the DRAM scheduler but are
		// age-promoted after this many cycles so continuous demand
		// traffic cannot starve them forever.
		DRAMAgePromote: 512,

		MRQSize:            64,
		MRQPrefetchReserve: 32,

		PrefetchCacheBytes: 16 * 1024,
		PrefetchCacheWays:  8,
		PrefetchHitLatency: 1,

		PrefetchDistance: 1,
		PrefetchDegree:   1,

		ThrottlePeriod:     100_000,
		ThrottleInitDegree: 2,
		EarlyHighThresh:    0.02,
		EarlyLowThresh:     0.01,
		MergeHighThresh:    0.15,
	}
}

// Clone returns a deep copy, so sweeps can mutate fields freely.
func (c *Config) Clone() *Config {
	d := *c
	return &d
}

// DRAMCyclesToCore converts a duration in DRAM cycles to core cycles,
// rounding up. With a 900 MHz core and 1.2 GHz DRAM the factor is 3/4.
func (c *Config) DRAMCyclesToCore(n int) int {
	num := n * c.CoreClockMHz
	return (num + c.DRAMClockMHz - 1) / c.DRAMClockMHz
}

// MaxInjectPerCycle is the interconnect injection limit per core cycle.
func (c *Config) MaxInjectPerCycle() int {
	n := c.NumCores / c.NOCCoresPerInject
	if n < 1 {
		n = 1
	}
	return n
}

// PrefetchCacheSets derives the set count of the prefetch cache.
func (c *Config) PrefetchCacheSets() int {
	lines := c.PrefetchCacheBytes / c.BlockBytes
	return lines / c.PrefetchCacheWays
}

// BandwidthGBs reports the peak DRAM bandwidth implied by the bus model.
func (c *Config) BandwidthGBs() float64 {
	bytesPerCycle := float64(c.DRAMChannels) * float64(c.BlockBytes) / float64(c.BusCyclesBlock)
	return bytesPerCycle * float64(c.CoreClockMHz) * 1e6 / 1e9
}

// Validate reports the first configuration inconsistency found.
func (c *Config) Validate() error {
	switch {
	case c.NumCores <= 0:
		return errors.New("config: NumCores must be positive")
	case c.SIMDWidth <= 0 || c.WarpSize <= 0:
		return errors.New("config: SIMDWidth and WarpSize must be positive")
	case c.WarpSize%c.SIMDWidth != 0:
		return fmt.Errorf("config: WarpSize %d not a multiple of SIMDWidth %d", c.WarpSize, c.SIMDWidth)
	case c.IssueCostALU <= 0 || c.IssueCostIMul <= 0 || c.IssueCostFDiv <= 0 || c.IssueCostMem <= 0:
		return errors.New("config: issue costs must be positive")
	case c.CoreClockMHz <= 0 || c.DRAMClockMHz <= 0:
		return errors.New("config: clocks must be positive")
	case c.NOCLatency < 0:
		return errors.New("config: NOCLatency must be non-negative")
	case c.NOCCoresPerInject <= 0:
		return errors.New("config: NOCCoresPerInject must be positive")
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("config: BlockBytes %d must be a positive power of two", c.BlockBytes)
	case c.DRAMChannels <= 0 || c.DRAMChannels&(c.DRAMChannels-1) != 0:
		return fmt.Errorf("config: DRAMChannels %d must be a positive power of two", c.DRAMChannels)
	case c.DRAMBanks <= 0 || c.DRAMBanks&(c.DRAMBanks-1) != 0:
		return fmt.Errorf("config: DRAMBanks %d must be a positive power of two", c.DRAMBanks)
	case c.DRAMRowBytes < c.BlockBytes:
		return errors.New("config: DRAMRowBytes smaller than BlockBytes")
	case c.DRAMtCL < 0 || c.DRAMtRCD < 0 || c.DRAMtRP < 0:
		return errors.New("config: DRAM timing parameters must be non-negative")
	case c.DRAMQueueSize <= 0:
		return errors.New("config: DRAMQueueSize must be positive")
	case c.BusCyclesBlock <= 0:
		return errors.New("config: BusCyclesBlock must be positive")
	case c.DRAMOverhead < 0:
		return errors.New("config: DRAMOverhead must be non-negative")
	case c.DRAMAgePromote < 0:
		return errors.New("config: DRAMAgePromote must be non-negative")
	case c.L2Bytes < 0 || c.L2HitLatency < 0:
		return errors.New("config: L2 parameters must be non-negative")
	case c.L2Bytes > 0 && c.L2Ways <= 0:
		return errors.New("config: L2Ways must be positive when L2 is enabled")
	case c.MRQSize <= 0:
		return errors.New("config: MRQSize must be positive")
	case c.MRQPrefetchReserve < 0 || c.MRQPrefetchReserve >= c.MRQSize:
		return errors.New("config: MRQPrefetchReserve must be in [0, MRQSize)")
	case c.PrefetchCacheBytes < 0:
		return errors.New("config: PrefetchCacheBytes must be non-negative")
	case c.PrefetchCacheBytes > 0 && c.PrefetchCacheWays <= 0:
		return errors.New("config: PrefetchCacheWays must be positive")
	case c.PrefetchCacheBytes > 0 && c.PrefetchCacheSets() <= 0:
		return errors.New("config: prefetch cache too small for its associativity")
	case c.PrefetchDistance < 1:
		return errors.New("config: PrefetchDistance must be >= 1")
	case c.PrefetchDegree < 1:
		return errors.New("config: PrefetchDegree must be >= 1")
	case c.ThrottlePeriod == 0:
		return errors.New("config: ThrottlePeriod must be positive")
	case c.ThrottleInitDegree < 0 || c.ThrottleInitDegree > 5:
		return errors.New("config: ThrottleInitDegree must be in [0,5]")
	case c.EarlyLowThresh < 0 || c.EarlyHighThresh < c.EarlyLowThresh:
		return errors.New("config: early-eviction thresholds out of order")
	case c.MergeHighThresh < 0 || c.MergeHighThresh > 1:
		return errors.New("config: MergeHighThresh must be in [0,1]")
	}
	return nil
}
