package config

import (
	"math"
	"testing"
)

func TestBaselineValid(t *testing.T) {
	if err := Baseline().Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
}

func TestBaselineMatchesTableII(t *testing.T) {
	c := Baseline()
	if c.NumCores != 14 {
		t.Errorf("NumCores = %d, want 14", c.NumCores)
	}
	if c.SIMDWidth != 8 {
		t.Errorf("SIMDWidth = %d, want 8", c.SIMDWidth)
	}
	if c.WarpSize != 32 {
		t.Errorf("WarpSize = %d, want 32", c.WarpSize)
	}
	if c.IssueCostIMul != 16 || c.IssueCostFDiv != 32 || c.IssueCostALU != 4 {
		t.Errorf("issue costs = %d/%d/%d, want 4/16/32",
			c.IssueCostALU, c.IssueCostIMul, c.IssueCostFDiv)
	}
	if c.DRAMChannels != 8 || c.DRAMBanks != 16 || c.DRAMRowBytes != 2048 {
		t.Errorf("DRAM geometry = %d ch / %d banks / %dB rows, want 8/16/2048",
			c.DRAMChannels, c.DRAMBanks, c.DRAMRowBytes)
	}
	if c.DRAMtCL != 11 || c.DRAMtRCD != 11 || c.DRAMtRP != 13 {
		t.Errorf("DRAM timing = %d/%d/%d, want 11/11/13", c.DRAMtCL, c.DRAMtRCD, c.DRAMtRP)
	}
	if c.PrefetchCacheBytes != 16*1024 || c.PrefetchCacheWays != 8 {
		t.Errorf("prefetch cache = %dB %d-way, want 16KB 8-way",
			c.PrefetchCacheBytes, c.PrefetchCacheWays)
	}
	if c.NOCLatency != 20 {
		t.Errorf("NOCLatency = %d, want 20", c.NOCLatency)
	}
}

func TestBandwidthMatches57GBs(t *testing.T) {
	got := Baseline().BandwidthGBs()
	if math.Abs(got-57.6) > 1e-9 {
		t.Errorf("BandwidthGBs = %v, want 57.6", got)
	}
}

func TestDRAMCyclesToCore(t *testing.T) {
	c := Baseline()
	// 900/1200 = 3/4: 11 DRAM cycles -> ceil(8.25) = 9 core cycles.
	if got := c.DRAMCyclesToCore(11); got != 9 {
		t.Errorf("DRAMCyclesToCore(11) = %d, want 9", got)
	}
	if got := c.DRAMCyclesToCore(0); got != 0 {
		t.Errorf("DRAMCyclesToCore(0) = %d, want 0", got)
	}
	if got := c.DRAMCyclesToCore(4); got != 3 {
		t.Errorf("DRAMCyclesToCore(4) = %d, want 3", got)
	}
}

func TestMaxInjectPerCycle(t *testing.T) {
	c := Baseline()
	if got := c.MaxInjectPerCycle(); got != 7 {
		t.Errorf("MaxInjectPerCycle = %d, want 7 (14 cores / 2)", got)
	}
	c.NumCores = 1
	if got := c.MaxInjectPerCycle(); got != 1 {
		t.Errorf("MaxInjectPerCycle with 1 core = %d, want 1", got)
	}
}

func TestPrefetchCacheSets(t *testing.T) {
	c := Baseline()
	// 16KB / 64B = 256 lines / 8 ways = 32 sets.
	if got := c.PrefetchCacheSets(); got != 32 {
		t.Errorf("PrefetchCacheSets = %d, want 32", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := Baseline()
	d := c.Clone()
	d.NumCores = 99
	if c.NumCores == 99 {
		t.Fatal("Clone shares state with original")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero cores", func(c *Config) { c.NumCores = 0 }},
		{"negative cores", func(c *Config) { c.NumCores = -3 }},
		{"warp not multiple of simd", func(c *Config) { c.WarpSize = 30 }},
		{"zero ALU cost", func(c *Config) { c.IssueCostALU = 0 }},
		{"zero clock", func(c *Config) { c.CoreClockMHz = 0 }},
		{"negative NOC latency", func(c *Config) { c.NOCLatency = -1 }},
		{"zero inject divisor", func(c *Config) { c.NOCCoresPerInject = 0 }},
		{"non power-of-two block", func(c *Config) { c.BlockBytes = 48 }},
		{"non power-of-two channels", func(c *Config) { c.DRAMChannels = 3 }},
		{"non power-of-two banks", func(c *Config) { c.DRAMBanks = 12 }},
		{"row smaller than block", func(c *Config) { c.DRAMRowBytes = 32 }},
		{"negative tCL", func(c *Config) { c.DRAMtCL = -1 }},
		{"zero queue", func(c *Config) { c.DRAMQueueSize = 0 }},
		{"zero bus cycles", func(c *Config) { c.BusCyclesBlock = 0 }},
		{"zero MRQ", func(c *Config) { c.MRQSize = 0 }},
		{"cache ways zero", func(c *Config) { c.PrefetchCacheWays = 0 }},
		{"cache smaller than one set", func(c *Config) { c.PrefetchCacheBytes = 64; c.PrefetchCacheWays = 8 }},
		{"distance zero", func(c *Config) { c.PrefetchDistance = 0 }},
		{"degree zero", func(c *Config) { c.PrefetchDegree = 0 }},
		{"zero throttle period", func(c *Config) { c.ThrottlePeriod = 0 }},
		{"throttle degree out of range", func(c *Config) { c.ThrottleInitDegree = 6 }},
		{"early thresholds inverted", func(c *Config) { c.EarlyHighThresh = 0.001 }},
		{"merge threshold above 1", func(c *Config) { c.MergeHighThresh = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Baseline()
			tc.mutate(c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate accepted bad config %q", tc.name)
			}
		})
	}
}

func TestZeroPrefetchCacheAllowed(t *testing.T) {
	c := Baseline()
	c.PrefetchCacheBytes = 0 // no prefetch cache at all
	if err := c.Validate(); err != nil {
		t.Fatalf("zero-size prefetch cache should be valid: %v", err)
	}
}

func TestSchedPolicyString(t *testing.T) {
	for _, p := range []SchedPolicy{SwitchOnStall, RoundRobin, SchedPolicy(9)} {
		if p.String() == "" {
			t.Errorf("SchedPolicy(%d).String empty", uint8(p))
		}
	}
	if Baseline().Scheduler != SwitchOnStall {
		t.Error("baseline scheduler should be switch-on-stall (Section II-B)")
	}
}

func TestValidateL2AndReserve(t *testing.T) {
	c := Baseline()
	c.L2Bytes = 1 << 20
	c.L2Ways = 0
	if err := c.Validate(); err == nil {
		t.Error("L2 without ways accepted")
	}
	c = Baseline()
	c.L2Bytes = -1
	if err := c.Validate(); err == nil {
		t.Error("negative L2Bytes accepted")
	}
	c = Baseline()
	c.MRQPrefetchReserve = c.MRQSize
	if err := c.Validate(); err == nil {
		t.Error("reserve equal to MRQ size accepted")
	}
	c = Baseline()
	c.DRAMAgePromote = -1
	if err := c.Validate(); err == nil {
		t.Error("negative age promote accepted")
	}
}
