// Package simerr defines the simulator's shared error taxonomy for
// broken internal invariants. It lives below every machine component
// (smcore, mrq, noc, cache, swpref) so each can return typed errors
// without importing internal/core; core re-exports the types so callers
// match the whole taxonomy through one package (core.ErrInvariant,
// *core.InvariantError).
package simerr

import (
	"errors"
	"fmt"
)

// ErrInvariant is the sentinel matched by errors.Is for every
// InvariantError, regardless of which component raised it.
var ErrInvariant = errors.New("simulator invariant violated")

// ErrTransient is the sentinel matched by errors.Is for every
// TransientError: a failure that is expected to succeed on retry
// because it came from the environment, not the simulated machine —
// result-store I/O faults, injected chaos flakes. Simulation failures
// (livelocks, invariant violations, rejected options) are deterministic
// and deliberately never match it: retrying them would repeat the same
// failure.
var ErrTransient = errors.New("transient fault")

// TransientError wraps an environmental failure that a bounded retry
// may heal. The harness retries runs (and store commits) whose error
// chain contains one; everything else fails fast.
type TransientError struct {
	// Op names the operation that failed ("store write", "store rename",
	// "chaos"), for failure reports.
	Op string
	// Err is the underlying failure.
	Err error
}

// Transient wraps err as a TransientError. A nil err returns nil.
func Transient(op string, err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Op: op, Err: err}
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("transient %s fault: %v", e.Op, e.Err)
}

// Unwrap exposes both the ErrTransient sentinel and the underlying
// error to errors.Is/As traversal.
func (e *TransientError) Unwrap() []error { return []error{ErrTransient, e.Err} }

// IsTransient reports whether err's chain contains a transient fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// InvariantError reports a broken conservation property inside the
// simulated machine: state that the design guarantees can never occur
// (an MSHR entry leak, a lost NoC flit, an unbalanced scoreboard
// release). It always indicates a simulator bug — or a deliberately
// injected fault (internal/faults) — never a property of the workload.
type InvariantError struct {
	// Component is the raising subsystem: "smcore", "mrq", "noc",
	// "pfcache", "swpref".
	Component string
	// Name is a stable identifier of the violated invariant, e.g.
	// "scoreboard-balance" or "flit-conservation".
	Name string
	// Cycle is the simulation cycle of detection; 0 for violations found
	// outside cycle-by-cycle execution (e.g. kernel transforms).
	Cycle uint64
	// Detail describes the observed inconsistency.
	Detail string
}

// Error implements error.
func (e *InvariantError) Error() string {
	if e.Cycle > 0 {
		return fmt.Sprintf("%s: invariant %s violated at cycle %d: %s",
			e.Component, e.Name, e.Cycle, e.Detail)
	}
	return fmt.Sprintf("%s: invariant %s violated: %s", e.Component, e.Name, e.Detail)
}

// Unwrap makes every InvariantError match ErrInvariant.
func (e *InvariantError) Unwrap() error { return ErrInvariant }
