// Package kernel defines a small intermediate representation for GPGPU
// kernels: per-warp instruction streams with register dependences and
// per-thread address expressions.
//
// The simulator is trace-driven in spirit (the paper drove its simulator
// with GPUOcelot PTX traces); here the "trace" is generated on the fly by
// interpreting these tiny programs per warp, which reproduces the
// properties prefetchers care about — per-PC per-warp address streams,
// warp interleaving, and coalescing behaviour — without shipping
// proprietary traces.
package kernel

import (
	"errors"
	"fmt"
)

// Reg names a per-thread register. Register 0 is reserved as "no register".
type Reg uint8

// NoReg marks an absent operand.
const NoReg Reg = 0

// OpClass classifies instructions by their issue behaviour.
type OpClass uint8

const (
	// OpALU is a generic computational warp-instruction (4-cycle class).
	OpALU OpClass = iota
	// OpIMul is an integer multiply (16-cycle class, Table II).
	OpIMul
	// OpFDiv is a floating divide (32-cycle class, Table II).
	OpFDiv
	// OpLoad reads global memory into Dst.
	OpLoad
	// OpStore writes global memory; nothing depends on it.
	OpStore
	// OpPrefetch is a non-binding software prefetch into the prefetch
	// cache (the Fermi-style instruction of Section II-C1).
	OpPrefetch
	// OpLoopBack jumps back to Target while loop trips remain.
	OpLoopBack
)

// String implements fmt.Stringer.
func (op OpClass) String() string {
	switch op {
	case OpALU:
		return "alu"
	case OpIMul:
		return "imul"
	case OpFDiv:
		return "fdiv"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpPrefetch:
		return "prefetch"
	case OpLoopBack:
		return "loopback"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(op))
	}
}

// IsMemory reports whether the op generates memory transactions.
func (op OpClass) IsMemory() bool {
	return op == OpLoad || op == OpStore || op == OpPrefetch
}

// arrayRegion spaces arrays far apart so their streams never collide.
const arrayRegion uint64 = 1 << 28 // 256 MB

// ArrayBase returns the base address of array id.
func ArrayBase(id int) uint64 {
	return uint64(id+1) * arrayRegion
}

// Access is a per-thread address expression:
//
//	tid   = (warpGID + WarpAhead) * warpSize + lane
//	iter' = iter + IterAhead
//	addr  = ArrayBase(Array) + Offset + tid*LaneStrideB + iter'*IterStrideB
//
// optionally scrambled by a hash within Span bytes (irregular patterns).
// WarpAhead/IterAhead are used by the software prefetching transforms:
// inter-thread prefetching targets the next warp's addresses (WarpAhead),
// conventional stride prefetching targets future iterations (IterAhead).
type Access struct {
	Array       int
	Offset      uint64
	LaneStrideB uint64 // bytes between consecutive thread ids
	IterStrideB uint64 // bytes advanced per loop iteration
	WarpAhead   int    // prefetch-for-other-warp displacement (IP)
	IterAhead   int    // prefetch-ahead displacement in iterations
	Hash        bool   // scramble addresses (irregular access)
	Span        uint64 // wrap addresses within this many bytes (0 = 64 MB)

	// WarpPeriod, when non-zero, folds the warp index modulo this value
	// before address generation: groups of WarpPeriod warps read the
	// same data. This models inputs shared across threads (weight
	// vectors, broadcast tables) whose re-fetches a cache can absorb.
	WarpPeriod int
}

// defaultSpan bounds generated addresses when Span is unset.
const defaultSpan = 64 << 20

func (a *Access) span() uint64 {
	if a.Span != 0 {
		return a.Span
	}
	return defaultSpan
}

// hash64 is a cheap multiplicative scrambler (splitmix-like).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// LaneAddr computes the byte address touched by one lane.
func (a *Access) LaneAddr(warpGID, warpSize, lane, iter int) uint64 {
	w := warpGID + a.WarpAhead
	if a.WarpPeriod > 0 {
		w %= a.WarpPeriod
	}
	tid := uint64(w)*uint64(warpSize) + uint64(lane)
	it := uint64(iter + a.IterAhead)
	off := a.Offset + tid*a.LaneStrideB + it*a.IterStrideB
	if a.Hash {
		off = hash64(off) % a.span()
	} else {
		off %= a.span()
	}
	return ArrayBase(a.Array) + off
}

// Transactions appends to buf the distinct block-aligned addresses touched
// by a full warp executing this access, in first-touch order, and returns
// the extended slice. This models the 8800GT-era coalescer: one memory
// transaction per distinct block.
func (a *Access) Transactions(warpGID, warpSize, iter, blockBytes int, buf []uint64) []uint64 {
	start := len(buf)
	mask := ^(uint64(blockBytes) - 1)
	for lane := 0; lane < warpSize; lane++ {
		blk := a.LaneAddr(warpGID, warpSize, lane, iter) & mask
		dup := false
		for _, b := range buf[start:] {
			if b == blk {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, blk)
		}
	}
	return buf
}

// Instr is one warp-instruction.
type Instr struct {
	Op     OpClass
	Dst    Reg // written register (loads, ALU); NoReg otherwise
	Src1   Reg // read registers; NoReg when absent
	Src2   Reg
	Mem    *Access // for memory ops
	Target int     // for OpLoopBack: index of the loop's first body instruction
}

// Program is a straight-line kernel with at most one loop.
type Program struct {
	Name      string
	Instrs    []Instr
	NumRegs   int // registers allocated (including the reserved NoReg)
	NumArrays int
	LoopTrips int // times the loop body executes; 0 or 1 means no repetition
}

// HasLoop reports whether the program contains a back edge.
func (p *Program) HasLoop() bool {
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpLoopBack {
			return true
		}
	}
	return false
}

// Counts tallies warp-instructions per dynamic execution of one warp,
// expanding the loop.
type Counts struct {
	Compute  int // ALU+IMUL+FDIV warp-instructions
	Memory   int // loads + stores (demand memory instructions)
	Loads    int
	Prefetch int
	Total    int // all dynamic warp-instructions including branches
}

// DynamicCounts returns the per-warp dynamic instruction mix.
func (p *Program) DynamicCounts() Counts {
	var static Counts
	loopStart := -1
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpLoopBack {
			loopStart = p.Instrs[i].Target
		}
	}
	add := func(c *Counts, in *Instr) {
		c.Total++
		switch in.Op {
		case OpALU, OpIMul, OpFDiv:
			c.Compute++
		case OpLoad:
			c.Memory++
			c.Loads++
		case OpStore:
			c.Memory++
		case OpPrefetch:
			c.Prefetch++
		}
	}
	if loopStart < 0 {
		for i := range p.Instrs {
			add(&static, &p.Instrs[i])
		}
		return static
	}
	trips := p.LoopTrips
	if trips < 1 {
		trips = 1
	}
	var pre, body, post Counts
	inBody := false
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if i == loopStart {
			inBody = true
		}
		switch {
		case inBody:
			add(&body, in)
			if in.Op == OpLoopBack {
				inBody = false
			}
		case i < loopStart:
			add(&pre, in)
		default:
			add(&post, in)
		}
	}
	return Counts{
		Compute:  pre.Compute + body.Compute*trips + post.Compute,
		Memory:   pre.Memory + body.Memory*trips + post.Memory,
		Loads:    pre.Loads + body.Loads*trips + post.Loads,
		Prefetch: pre.Prefetch + body.Prefetch*trips + post.Prefetch,
		Total:    pre.Total + body.Total*trips + post.Total,
	}
}

// Validate reports structural problems in the program.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return errors.New("kernel: empty program")
	}
	branches := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op.IsMemory() && in.Mem == nil {
			return fmt.Errorf("kernel: instr %d (%v) missing Access", i, in.Op)
		}
		if !in.Op.IsMemory() && in.Mem != nil {
			return fmt.Errorf("kernel: instr %d (%v) has stray Access", i, in.Op)
		}
		if in.Mem != nil && in.Mem.Array >= p.NumArrays {
			return fmt.Errorf("kernel: instr %d references array %d of %d", i, in.Mem.Array, p.NumArrays)
		}
		for _, r := range []Reg{in.Dst, in.Src1, in.Src2} {
			if int(r) >= p.NumRegs {
				return fmt.Errorf("kernel: instr %d uses reg %d of %d", i, r, p.NumRegs)
			}
		}
		switch in.Op {
		case OpLoopBack:
			branches++
			if in.Target < 0 || in.Target >= i {
				return fmt.Errorf("kernel: instr %d branch target %d not a back edge", i, in.Target)
			}
		case OpLoad:
			if in.Dst == NoReg {
				return fmt.Errorf("kernel: instr %d load without destination", i)
			}
		case OpStore, OpPrefetch:
			if in.Dst != NoReg {
				return fmt.Errorf("kernel: instr %d (%v) must not write a register", i, in.Op)
			}
		}
	}
	if branches > 1 {
		return fmt.Errorf("kernel: %d back edges; at most one loop supported", branches)
	}
	if branches == 1 && p.LoopTrips < 1 {
		return errors.New("kernel: loop present but LoopTrips < 1")
	}
	return nil
}

// Clone deep-copies the program so transforms can mutate it safely.
func (p *Program) Clone() *Program {
	q := *p
	q.Instrs = make([]Instr, len(p.Instrs))
	for i := range p.Instrs {
		q.Instrs[i] = p.Instrs[i]
		if p.Instrs[i].Mem != nil {
			m := *p.Instrs[i].Mem
			q.Instrs[i].Mem = &m
		}
	}
	return &q
}
