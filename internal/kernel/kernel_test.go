package kernel

import (
	"testing"
	"testing/quick"
)

func simpleMPKernel(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("mp")
	a := b.Load(Access{Array: 0, LaneStrideB: 4})
	bb := b.Load(Access{Array: 1, LaneStrideB: 4})
	s := b.ALU(a, bb)
	b.Store(Access{Array: 2, LaneStrideB: 4}, s)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderSimpleProgram(t *testing.T) {
	p := simpleMPKernel(t)
	if len(p.Instrs) != 4 {
		t.Fatalf("len(Instrs) = %d, want 4", len(p.Instrs))
	}
	if p.NumArrays != 3 {
		t.Errorf("NumArrays = %d, want 3", p.NumArrays)
	}
	if p.HasLoop() {
		t.Error("straight-line kernel reports a loop")
	}
	c := p.DynamicCounts()
	if c.Compute != 1 || c.Memory != 3 || c.Loads != 2 || c.Total != 4 {
		t.Errorf("DynamicCounts = %+v", c)
	}
}

func TestBuilderLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.BeginLoop(10)
	v := b.Load(Access{Array: 0, LaneStrideB: 4, IterStrideB: 4096})
	r := b.Compute(3, v)
	b.Store(Access{Array: 1, LaneStrideB: 4, IterStrideB: 4096}, r)
	b.EndLoop()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !p.HasLoop() {
		t.Fatal("loop not recorded")
	}
	c := p.DynamicCounts()
	if c.Loads != 10 {
		t.Errorf("dynamic loads = %d, want 10", c.Loads)
	}
	if c.Compute != 30 {
		t.Errorf("dynamic compute = %d, want 30", c.Compute)
	}
	if c.Memory != 20 {
		t.Errorf("dynamic memory = %d, want 20", c.Memory)
	}
	// body = load + 3 alu + store + loopback = 6 per trip
	if c.Total != 60 {
		t.Errorf("dynamic total = %d, want 60", c.Total)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("nested loop", func(t *testing.T) {
		b := NewBuilder("x")
		b.BeginLoop(2)
		b.BeginLoop(2)
		b.EndLoop()
		b.EndLoop()
		if _, err := b.Build(); err == nil {
			t.Error("nested loops accepted")
		}
	})
	t.Run("unclosed loop", func(t *testing.T) {
		b := NewBuilder("x")
		b.BeginLoop(2)
		b.ALU()
		if _, err := b.Build(); err == nil {
			t.Error("unclosed loop accepted")
		}
	})
	t.Run("end without begin", func(t *testing.T) {
		b := NewBuilder("x")
		b.ALU()
		b.EndLoop()
		if _, err := b.Build(); err == nil {
			t.Error("EndLoop without BeginLoop accepted")
		}
	})
	t.Run("two loops", func(t *testing.T) {
		b := NewBuilder("x")
		b.BeginLoop(2)
		b.ALU()
		b.EndLoop()
		b.BeginLoop(2)
		b.ALU()
		b.EndLoop()
		if _, err := b.Build(); err == nil {
			t.Error("two loops accepted")
		}
	})
	t.Run("zero trips", func(t *testing.T) {
		b := NewBuilder("x")
		b.BeginLoop(0)
		b.ALU()
		b.EndLoop()
		if _, err := b.Build(); err == nil {
			t.Error("zero-trip loop accepted")
		}
	})
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"empty", func(p *Program) { p.Instrs = nil }},
		{"memory without access", func(p *Program) { p.Instrs[0].Mem = nil }},
		{"stray access", func(p *Program) {
			p.Instrs[2].Mem = &Access{}
		}},
		{"array out of range", func(p *Program) { p.Instrs[0].Mem.Array = 99 }},
		{"reg out of range", func(p *Program) { p.Instrs[0].Dst = Reg(p.NumRegs) }},
		{"load without dst", func(p *Program) { p.Instrs[0].Dst = NoReg }},
		{"store with dst", func(p *Program) { p.Instrs[3].Dst = 1 }},
		{"forward branch", func(p *Program) {
			p.Instrs = append(p.Instrs, Instr{Op: OpLoopBack, Target: 10})
			p.LoopTrips = 2
		}},
		{"loop without trips", func(p *Program) {
			p.Instrs = append(p.Instrs, Instr{Op: OpLoopBack, Target: 0})
			p.LoopTrips = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := simpleMPKernel(t).Clone()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate accepted %q", tc.name)
			}
		})
	}
}

func TestLaneAddrLinear(t *testing.T) {
	a := Access{Array: 0, LaneStrideB: 4}
	// warp 0, lane 0 -> base; lane 1 -> base+4.
	base := ArrayBase(0)
	if got := a.LaneAddr(0, 32, 0, 0); got != base {
		t.Errorf("lane 0 addr = %#x, want %#x", got, base)
	}
	if got := a.LaneAddr(0, 32, 1, 0); got != base+4 {
		t.Errorf("lane 1 addr = %#x, want base+4", got)
	}
	// warp 1 lane 0 -> base + 32*4.
	if got := a.LaneAddr(1, 32, 0, 0); got != base+128 {
		t.Errorf("warp 1 lane 0 = %#x, want base+128", got)
	}
}

func TestLaneAddrWarpAhead(t *testing.T) {
	a := Access{Array: 0, LaneStrideB: 4}
	ip := a
	ip.WarpAhead = 1
	// Prefetching warp w with WarpAhead=1 must produce exactly the
	// addresses warp w+1 demands — the defining property of IP (Fig. 4).
	for lane := 0; lane < 32; lane++ {
		if ip.LaneAddr(0, 32, lane, 0) != a.LaneAddr(1, 32, lane, 0) {
			t.Fatalf("IP address mismatch at lane %d", lane)
		}
	}
}

func TestLaneAddrIterAhead(t *testing.T) {
	a := Access{Array: 0, LaneStrideB: 4, IterStrideB: 4096}
	pf := a
	pf.IterAhead = 2
	if pf.LaneAddr(3, 32, 5, 10) != a.LaneAddr(3, 32, 5, 12) {
		t.Fatal("IterAhead does not advance iterations")
	}
}

func TestTransactionsCoalesced(t *testing.T) {
	// 4B per lane, 32 lanes = 128B = exactly 2 blocks of 64B.
	a := Access{Array: 0, LaneStrideB: 4}
	got := a.Transactions(0, 32, 0, 64, nil)
	if len(got) != 2 {
		t.Fatalf("coalesced transactions = %d, want 2 (%v)", len(got), got)
	}
	if got[1] != got[0]+64 {
		t.Errorf("blocks not adjacent: %v", got)
	}
}

func TestTransactionsBroadcast(t *testing.T) {
	// All lanes hit the same address -> 1 transaction.
	a := Access{Array: 0, LaneStrideB: 0}
	got := a.Transactions(5, 32, 0, 64, nil)
	if len(got) != 1 {
		t.Fatalf("broadcast transactions = %d, want 1", len(got))
	}
}

func TestTransactionsUncoalesced(t *testing.T) {
	// One full block per lane -> 32 transactions.
	a := Access{Array: 0, LaneStrideB: 64}
	got := a.Transactions(0, 32, 0, 64, nil)
	if len(got) != 32 {
		t.Fatalf("uncoalesced transactions = %d, want 32", len(got))
	}
}

func TestTransactionsAppendsToBuf(t *testing.T) {
	a := Access{Array: 0, LaneStrideB: 4}
	buf := []uint64{12345}
	got := a.Transactions(0, 32, 0, 64, buf)
	if len(got) != 3 || got[0] != 12345 {
		t.Fatalf("append semantics broken: %v", got)
	}
}

func TestTransactionsProperty(t *testing.T) {
	// Transactions are always block-aligned, distinct, and between 1 and
	// warpSize in count.
	f := func(warp uint16, stride uint8, iter uint8, hash bool) bool {
		a := Access{Array: 1, LaneStrideB: uint64(stride), IterStrideB: 128, Hash: hash}
		txs := a.Transactions(int(warp), 32, int(iter), 64, nil)
		if len(txs) < 1 || len(txs) > 32 {
			return false
		}
		seen := map[uint64]bool{}
		for _, b := range txs {
			if b%64 != 0 || seen[b] {
				return false
			}
			seen[b] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHashedAccessIsDeterministicAndIrregular(t *testing.T) {
	a := Access{Array: 0, LaneStrideB: 4, Hash: true, Span: 1 << 20}
	t1 := a.Transactions(7, 32, 0, 64, nil)
	t2 := a.Transactions(7, 32, 0, 64, nil)
	if len(t1) != len(t2) {
		t.Fatal("hashed access not deterministic")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("hashed access not deterministic")
		}
	}
	// Irregular: most lanes land in distinct blocks.
	if len(t1) < 16 {
		t.Errorf("hashed access coalesced too well: %d blocks", len(t1))
	}
	// And stays within the array's span.
	for _, b := range t1 {
		if b < ArrayBase(0) || b >= ArrayBase(0)+1<<20 {
			t.Errorf("address %#x escapes span", b)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := simpleMPKernel(t)
	q := p.Clone()
	q.Instrs[0].Mem.LaneStrideB = 999
	if p.Instrs[0].Mem.LaneStrideB == 999 {
		t.Fatal("Clone shares Access structs")
	}
}

func TestArrayBasesDisjoint(t *testing.T) {
	// Arrays must be far enough apart that bounded spans never overlap.
	for i := 0; i < 8; i++ {
		if ArrayBase(i)+defaultSpan > ArrayBase(i+1) {
			t.Fatalf("array %d span overlaps array %d", i, i+1)
		}
	}
}

func TestOpClassString(t *testing.T) {
	ops := []OpClass{OpALU, OpIMul, OpFDiv, OpLoad, OpStore, OpPrefetch, OpLoopBack, OpClass(200)}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty String() for %d", uint8(op))
		}
	}
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || !OpPrefetch.IsMemory() {
		t.Error("memory classification wrong")
	}
	if OpALU.IsMemory() || OpLoopBack.IsMemory() {
		t.Error("non-memory op classified as memory")
	}
}
