package kernel

import (
	"fmt"
	"strings"
)

// String renders a human-readable disassembly of the program, used by
// debugging output and the examples. Loop bodies are indented.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s (regs=%d, arrays=%d, trips=%d)\n",
		p.Name, p.NumRegs, p.NumArrays, p.LoopTrips)
	loopStart := -1
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpLoopBack {
			loopStart = p.Instrs[i].Target
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		indent := ""
		if loopStart >= 0 && i >= loopStart {
			indent = "  "
		}
		fmt.Fprintf(&b, "%3d: %s%s\n", i, indent, in.String())
	}
	return b.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("r%-3d = load  %s", in.Dst, in.Mem.String())
	case OpStore:
		return fmt.Sprintf("store r%d -> %s", in.Src1, in.Mem.String())
	case OpPrefetch:
		return fmt.Sprintf("prefetch     %s", in.Mem.String())
	case OpLoopBack:
		return fmt.Sprintf("loop -> %d", in.Target)
	case OpALU, OpIMul, OpFDiv:
		srcs := ""
		if in.Src1 != NoReg {
			srcs = fmt.Sprintf(" r%d", in.Src1)
		}
		if in.Src2 != NoReg {
			srcs += fmt.Sprintf(" r%d", in.Src2)
		}
		return fmt.Sprintf("r%-3d = %s%s", in.Dst, in.Op, srcs)
	default:
		return in.Op.String()
	}
}

// String renders an access expression compactly.
func (a *Access) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("A%d", a.Array))
	if a.Offset != 0 {
		parts = append(parts, fmt.Sprintf("+%d", a.Offset))
	}
	if a.LaneStrideB != 0 {
		parts = append(parts, fmt.Sprintf("lane*%d", a.LaneStrideB))
	}
	if a.IterStrideB != 0 {
		parts = append(parts, fmt.Sprintf("iter*%d", a.IterStrideB))
	}
	if a.WarpAhead != 0 {
		parts = append(parts, fmt.Sprintf("warp+%d", a.WarpAhead))
	}
	if a.IterAhead != 0 {
		parts = append(parts, fmt.Sprintf("iter+%d", a.IterAhead))
	}
	if a.WarpPeriod != 0 {
		parts = append(parts, fmt.Sprintf("shared/%d", a.WarpPeriod))
	}
	if a.Hash {
		parts = append(parts, "hashed")
	}
	return "[" + strings.Join(parts, " ") + "]"
}
