package kernel

import "fmt"

// Builder assembles Programs. Register names are allocated monotonically;
// these kernels are short enough that reuse is unnecessary.
type Builder struct {
	p        Program
	nextReg  Reg
	loopOpen bool
	loopAt   int
	err      error
}

// NewBuilder starts an empty program.
func NewBuilder(name string) *Builder {
	return &Builder{
		p:       Program{Name: name, LoopTrips: 1},
		nextReg: 1, // register 0 is NoReg
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kernel builder %q: %s", b.p.Name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) alloc() Reg {
	if b.nextReg == 0 { // wrapped
		b.fail("register file exhausted")
		return NoReg
	}
	r := b.nextReg
	b.nextReg++
	return r
}

func (b *Builder) noteArray(a *Access) {
	if a.Array >= b.p.NumArrays {
		b.p.NumArrays = a.Array + 1
	}
}

// Load appends a global load and returns its destination register.
func (b *Builder) Load(a Access) Reg {
	dst := b.alloc()
	acc := a
	b.noteArray(&acc)
	b.p.Instrs = append(b.p.Instrs, Instr{Op: OpLoad, Dst: dst, Mem: &acc})
	return dst
}

// Store appends a global store of src.
func (b *Builder) Store(a Access, src Reg) {
	acc := a
	b.noteArray(&acc)
	b.p.Instrs = append(b.p.Instrs, Instr{Op: OpStore, Src1: src, Mem: &acc})
}

// Prefetch appends a non-binding software prefetch.
func (b *Builder) Prefetch(a Access) {
	acc := a
	b.noteArray(&acc)
	b.p.Instrs = append(b.p.Instrs, Instr{Op: OpPrefetch, Mem: &acc})
}

// op appends a computational instruction reading srcs, returns its dst.
func (b *Builder) op(class OpClass, srcs ...Reg) Reg {
	in := Instr{Op: class, Dst: b.alloc()}
	if len(srcs) > 0 {
		in.Src1 = srcs[0]
	}
	if len(srcs) > 1 {
		in.Src2 = srcs[1]
	}
	if len(srcs) > 2 {
		b.fail("at most two sources per instruction")
	}
	b.p.Instrs = append(b.p.Instrs, in)
	return in.Dst
}

// ALU appends a 4-cycle-class compute instruction.
func (b *Builder) ALU(srcs ...Reg) Reg { return b.op(OpALU, srcs...) }

// IMul appends a 16-cycle-class integer multiply.
func (b *Builder) IMul(srcs ...Reg) Reg { return b.op(OpIMul, srcs...) }

// FDiv appends a 32-cycle-class floating divide.
func (b *Builder) FDiv(srcs ...Reg) Reg { return b.op(OpFDiv, srcs...) }

// Compute appends n chained ALU instructions consuming dep (models a
// compute phase that depends on loaded data) and returns the final value.
func (b *Builder) Compute(n int, dep Reg) Reg {
	r := dep
	for i := 0; i < n; i++ {
		r = b.ALU(r)
	}
	return r
}

// BeginLoop marks the start of the (single) loop body executed trips times.
func (b *Builder) BeginLoop(trips int) {
	if b.loopOpen {
		b.fail("nested loops are not supported")
		return
	}
	if b.p.HasLoop() {
		b.fail("only one loop per program")
		return
	}
	if trips < 1 {
		b.fail("loop trips must be >= 1, got %d", trips)
		return
	}
	b.loopOpen = true
	b.loopAt = len(b.p.Instrs)
	b.p.LoopTrips = trips
}

// EndLoop closes the loop body with a back edge.
func (b *Builder) EndLoop() {
	if !b.loopOpen {
		b.fail("EndLoop without BeginLoop")
		return
	}
	b.loopOpen = false
	b.p.Instrs = append(b.p.Instrs, Instr{Op: OpLoopBack, Target: b.loopAt})
}

// Build validates and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	if b.loopOpen {
		b.fail("unclosed loop")
	}
	if b.err != nil {
		return nil, b.err
	}
	b.p.NumRegs = int(b.nextReg)
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	prog := b.p
	return &prog, nil
}

// MustBuild is Build that panics on error. It is intended for tests and
// examples only; production callers (the workload suite) use Build so a
// kernel-template bug surfaces as an error instead of a crash.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
