package kernel

import (
	"strings"
	"testing"
)

func TestProgramString(t *testing.T) {
	b := NewBuilder("demo")
	b.BeginLoop(4)
	v := b.Load(Access{Array: 0, LaneStrideB: 4, IterStrideB: 128})
	w := b.Load(Access{Array: 1, LaneStrideB: 4, WarpPeriod: 32})
	x := b.ALU(v, w)
	x = b.IMul(x)
	b.Prefetch(Access{Array: 0, LaneStrideB: 4, IterAhead: 1, WarpAhead: 1, Offset: 64})
	b.Store(Access{Array: 2, LaneStrideB: 4}, x)
	b.EndLoop()
	p := b.MustBuild()
	s := p.String()
	for _, want := range []string{
		"kernel demo", "trips=4",
		"load", "A0", "lane*4", "iter*128",
		"shared/32",
		"imul",
		"prefetch", "warp+1", "iter+1", "+64",
		"store",
		"loop -> 0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestAccessStringHashed(t *testing.T) {
	a := Access{Array: 3, LaneStrideB: 64, Hash: true}
	s := a.String()
	if !strings.Contains(s, "hashed") || !strings.Contains(s, "A3") {
		t.Errorf("hashed access renders as %q", s)
	}
}

func TestInstrStringAllOps(t *testing.T) {
	instrs := []Instr{
		{Op: OpALU, Dst: 1},
		{Op: OpIMul, Dst: 2, Src1: 1},
		{Op: OpFDiv, Dst: 3, Src1: 1, Src2: 2},
		{Op: OpLoad, Dst: 4, Mem: &Access{}},
		{Op: OpStore, Src1: 4, Mem: &Access{}},
		{Op: OpPrefetch, Mem: &Access{}},
		{Op: OpLoopBack, Target: 2},
		{Op: OpClass(99)},
	}
	for i := range instrs {
		if instrs[i].String() == "" {
			t.Errorf("instr %d renders empty", i)
		}
	}
}
