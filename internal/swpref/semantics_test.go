package swpref

import (
	"testing"

	"mtprefetch/internal/kernel"
	"mtprefetch/internal/workload"
)

// demandBlocks functionally executes a program for one warp and returns
// every block address its demand loads touch, in order.
func demandBlocks(p *kernel.Program, gwid int) []uint64 {
	var out []uint64
	iter := 0
	trips := p.LoopTrips
	for pc := 0; pc < len(p.Instrs); pc++ {
		in := &p.Instrs[pc]
		switch in.Op {
		case kernel.OpLoad:
			out = in.Mem.Transactions(gwid, 32, iter, 64, out)
		case kernel.OpLoopBack:
			if trips > 1 {
				trips--
				iter++
				pc = in.Target - 1
			}
		}
	}
	return out
}

// TestNonBindingTransformsPreserveDemandStream: stride, IP, and MT-SWP
// insert non-binding prefetches only — the demand loads must touch exactly
// the same blocks in the same order as the original binary.
func TestNonBindingTransformsPreserveDemandStream(t *testing.T) {
	for _, s := range workload.MemoryIntensive() {
		want := demandBlocks(s.Program, 3)
		for _, m := range []Mode{Stride, IP, MTSWP} {
			out, _, _ := Apply(s, m, Options{})
			got := demandBlocks(out.Program, 3)
			if len(got) != len(want) {
				t.Errorf("%s/%v: demand stream length %d, want %d", s.Name, m, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s/%v: demand block %d = %#x, want %#x", s.Name, m, i, got[i], want[i])
					break
				}
			}
		}
	}
}

// TestRegisterTransformPreservesDemandSet: binding register prefetching
// reorders loads (pipelines them an iteration ahead) but the set of
// blocks demanded must still cover the original set (it may overfetch one
// trailing iteration per load).
func TestRegisterTransformPreservesDemandSet(t *testing.T) {
	for _, s := range workload.ByClass(workload.Stride) {
		want := map[uint64]bool{}
		for _, b := range demandBlocks(s.Program, 5) {
			want[b] = true
		}
		out, st, _ := Apply(s, Register, Options{})
		if st.PipelinedLoads == 0 {
			continue
		}
		got := map[uint64]bool{}
		for _, b := range demandBlocks(out.Program, 5) {
			got[b] = true
		}
		for b := range want {
			if !got[b] {
				t.Errorf("%s: register transform lost demand block %#x", s.Name, b)
			}
		}
	}
}
