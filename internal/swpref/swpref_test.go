package swpref

import (
	"testing"

	"mtprefetch/internal/kernel"
	"mtprefetch/internal/workload"
)

func strideSpec(t *testing.T) *workload.Spec {
	t.Helper()
	s := workload.ByName("monte") // loop kernel, 2 strided loads per body
	if s == nil {
		t.Fatal("monte missing from suite")
	}
	return s
}

func mpSpec(t *testing.T) *workload.Spec {
	t.Helper()
	s := workload.ByName("backprop") // loop-free, 2 loads
	if s == nil {
		t.Fatal("backprop missing from suite")
	}
	return s
}

func countOps(p *kernel.Program, op kernel.OpClass) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op == op {
			n++
		}
	}
	return n
}

func TestNoneIsIdentity(t *testing.T) {
	s := strideSpec(t)
	out, st, _ := Apply(s, None, Options{})
	if out != s {
		t.Error("None should return the original spec")
	}
	if st.PrefetchInstrs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{None, Register, Stride, IP, MTSWP, Mode(99)} {
		if m.String() == "" {
			t.Errorf("Mode(%d).String empty", uint8(m))
		}
	}
}

func TestStrideTransformInsertsLoopPrefetches(t *testing.T) {
	s := strideSpec(t)
	out, st, _ := Apply(s, Stride, Options{})
	if out == s || out.Program == s.Program {
		t.Fatal("Apply must copy")
	}
	loads := countOps(s.Program, kernel.OpLoad)
	if st.PrefetchInstrs != loads {
		t.Errorf("PrefetchInstrs = %d, want one per strided load (%d)", st.PrefetchInstrs, loads)
	}
	if got := countOps(out.Program, kernel.OpPrefetch); got != loads {
		t.Errorf("prefetch ops in program = %d, want %d", got, loads)
	}
	// Prefetches target the next iteration.
	for i := range out.Program.Instrs {
		in := &out.Program.Instrs[i]
		if in.Op == kernel.OpPrefetch && in.Mem.IterAhead != 1 {
			t.Errorf("prefetch IterAhead = %d, want 1", in.Mem.IterAhead)
		}
	}
	if err := out.Program.Validate(); err != nil {
		t.Fatalf("transformed program invalid: %v", err)
	}
	// Occupancy unchanged: prefetch cache, not registers.
	if out.MaxBlocksPerCore != s.MaxBlocksPerCore {
		t.Error("stride transform changed occupancy")
	}
}

func TestStridePrefetchesInsideLoop(t *testing.T) {
	s := strideSpec(t)
	out, _, _ := Apply(s, Stride, Options{})
	// The back edge must still reach the prefetches: dynamic prefetch
	// count = static * trips.
	c := out.Program.DynamicCounts()
	staticPf := countOps(out.Program, kernel.OpPrefetch)
	if c.Prefetch != staticPf*out.Program.LoopTrips {
		t.Errorf("dynamic prefetches = %d, want %d (prefetches fell out of the loop)",
			c.Prefetch, staticPf*out.Program.LoopTrips)
	}
}

func TestStrideOnLoopFreeKernelIsNoop(t *testing.T) {
	s := mpSpec(t)
	out, st, _ := Apply(s, Stride, Options{})
	if st.PrefetchInstrs != 0 {
		t.Errorf("stride transform touched a loop-free kernel: %+v", st)
	}
	if got := countOps(out.Program, kernel.OpPrefetch); got != 0 {
		t.Errorf("prefetch ops = %d, want 0", got)
	}
}

func TestIPTransformTargetsNextWarp(t *testing.T) {
	s := mpSpec(t)
	out, st, _ := Apply(s, IP, Options{})
	loads := countOps(s.Program, kernel.OpLoad)
	if st.PrefetchInstrs != loads {
		t.Errorf("PrefetchInstrs = %d, want %d", st.PrefetchInstrs, loads)
	}
	for i := range out.Program.Instrs {
		in := &out.Program.Instrs[i]
		if in.Op == kernel.OpPrefetch && in.Mem.WarpAhead != 1 {
			t.Errorf("IP prefetch WarpAhead = %d, want 1", in.Mem.WarpAhead)
		}
	}
	// IP prefetches come first (Fig. 4a: prefetch before the loads).
	if out.Program.Instrs[0].Op != kernel.OpPrefetch {
		t.Error("IP prefetches not at kernel top")
	}
}

func TestIPAddressesMatchNextWarpDemands(t *testing.T) {
	s := mpSpec(t)
	out, _, _ := Apply(s, IP, Options{})
	var pf, ld *kernel.Access
	for i := range out.Program.Instrs {
		in := &out.Program.Instrs[i]
		if in.Op == kernel.OpPrefetch && pf == nil {
			pf = in.Mem
		}
		if in.Op == kernel.OpLoad && ld == nil {
			ld = in.Mem
		}
	}
	if pf == nil || ld == nil {
		t.Fatal("missing prefetch or load")
	}
	// Warp 5's prefetch == warp 6's demand, lane by lane.
	for lane := 0; lane < 32; lane += 7 {
		if pf.LaneAddr(5, 32, lane, 0) != ld.LaneAddr(6, 32, lane, 0) {
			t.Fatalf("IP prefetch does not match next warp's demand at lane %d", lane)
		}
	}
}

func TestMTSWPCombinesBoth(t *testing.T) {
	s := strideSpec(t)
	out, st, _ := Apply(s, MTSWP, Options{})
	loads := countOps(s.Program, kernel.OpLoad)
	if st.PrefetchInstrs != 2*loads {
		t.Errorf("PrefetchInstrs = %d, want %d (stride + IP)", st.PrefetchInstrs, 2*loads)
	}
	sawIter, sawWarp := false, false
	for i := range out.Program.Instrs {
		in := &out.Program.Instrs[i]
		if in.Op != kernel.OpPrefetch {
			continue
		}
		if in.Mem.IterAhead > 0 {
			sawIter = true
		}
		if in.Mem.WarpAhead > 0 {
			sawWarp = true
		}
	}
	if !sawIter || !sawWarp {
		t.Errorf("MT-SWP missing a component: stride=%v ip=%v", sawIter, sawWarp)
	}
}

func TestRegisterTransformPipelinesAndCostsOccupancy(t *testing.T) {
	s := strideSpec(t) // monte: maxBlocks 2, 22 regs, 2 loads
	out, st, _ := Apply(s, Register, Options{})
	if st.PipelinedLoads != 2 {
		t.Fatalf("PipelinedLoads = %d, want 2", st.PipelinedLoads)
	}
	if st.RegistersAdded != 4 {
		t.Errorf("RegistersAdded = %d, want 4", st.RegistersAdded)
	}
	// 2 * 22 / 26 = 1.69 -> 1 block.
	if out.MaxBlocksPerCore != 1 {
		t.Errorf("occupancy after = %d, want 1", out.MaxBlocksPerCore)
	}
	if st.OccupancyBefore != 2 || st.OccupancyAfter != 1 {
		t.Errorf("stats occupancy = %d -> %d, want 2 -> 1", st.OccupancyBefore, st.OccupancyAfter)
	}
	// No non-binding prefetches: it is binding, through registers.
	if got := countOps(out.Program, kernel.OpPrefetch); got != 0 {
		t.Errorf("register prefetching emitted %d prefetch ops", got)
	}
	// Same number of loads per iteration plus the prologue.
	origLoads := countOps(s.Program, kernel.OpLoad)
	if got := countOps(out.Program, kernel.OpLoad); got != 2*origLoads {
		t.Errorf("loads = %d, want %d (prologue + refills)", got, 2*origLoads)
	}
	if err := out.Program.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
}

func TestRegisterRefillAfterConsumers(t *testing.T) {
	s := strideSpec(t)
	out, _, _ := Apply(s, Register, Options{})
	start, end := -1, -1
	for i := range out.Program.Instrs {
		if out.Program.Instrs[i].Op == kernel.OpLoopBack {
			start, end = out.Program.Instrs[i].Target, i
		}
	}
	if start < 0 {
		t.Fatal("loop lost")
	}
	// Within the body, every load must come after every compute.
	lastCompute, firstLoad := -1, end
	for i := start; i < end; i++ {
		switch out.Program.Instrs[i].Op {
		case kernel.OpALU, kernel.OpIMul, kernel.OpFDiv:
			lastCompute = i
		case kernel.OpLoad:
			if i < firstLoad {
				firstLoad = i
			}
		}
	}
	if firstLoad < lastCompute {
		t.Error("refill load issued before its consumers — not pipelined")
	}
}

func TestRegisterOnLoopFreeKernelIsNoop(t *testing.T) {
	s := mpSpec(t)
	out, st, _ := Apply(s, Register, Options{})
	if st.PipelinedLoads != 0 || out.MaxBlocksPerCore != s.MaxBlocksPerCore {
		t.Errorf("register transform touched a loop-free kernel: %+v", st)
	}
}

func TestOccupancyNeverBelowOne(t *testing.T) {
	s := *strideSpec(t)
	s.RegsPerThread = 1
	s.MaxBlocksPerCore = 1
	out, _, _ := Apply(&s, Register, Options{RegsPerLoad: 100})
	if out.MaxBlocksPerCore != 1 {
		t.Errorf("occupancy = %d, want floor of 1", out.MaxBlocksPerCore)
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	s := strideSpec(t)
	before := len(s.Program.Instrs)
	occBefore := s.MaxBlocksPerCore
	Apply(s, MTSWP, Options{})
	Apply(s, Register, Options{})
	if len(s.Program.Instrs) != before || s.MaxBlocksPerCore != occBefore {
		t.Fatal("Apply mutated the input spec")
	}
}

func TestDistanceOption(t *testing.T) {
	s := strideSpec(t)
	out, _, _ := Apply(s, Stride, Options{Distance: 5})
	for i := range out.Program.Instrs {
		in := &out.Program.Instrs[i]
		if in.Op == kernel.OpPrefetch && in.Mem.IterAhead != 5 {
			t.Errorf("IterAhead = %d, want 5", in.Mem.IterAhead)
		}
	}
}

func TestAllSuiteTransformsValid(t *testing.T) {
	for _, s := range workload.Specs() {
		for _, m := range []Mode{Register, Stride, IP, MTSWP} {
			out, _, _ := Apply(s, m, Options{})
			if err := out.Program.Validate(); err != nil {
				t.Errorf("%s/%v: %v", s.Name, m, err)
			}
			if err := out.Validate(); err != nil {
				t.Errorf("%s/%v spec: %v", s.Name, m, err)
			}
		}
	}
}
