// Package swpref implements software prefetching as kernel transforms
// (Section III-A of the paper), mirroring what a programmer or compiler
// would do to the CUDA source:
//
//   - Register prefetching (Ryoo et al. [28]): binding loads are software-
//     pipelined one iteration ahead into registers. No prefetch cache is
//     needed, but the extra registers reduce occupancy — the transform
//     lowers MaxBlocksPerCore accordingly.
//   - Stride prefetching: non-binding prefetch instructions fetch the next
//     iteration's addresses into the prefetch cache. Loop kernels only.
//   - Inter-thread prefetching (IP): each warp prefetches the addresses
//     the *next* warp will demand (Fig. 4) — the transform that works for
//     loop-free, massively-parallel kernels.
//   - MT-SWP: stride + IP combined (the paper's software contribution).
package swpref

import (
	"fmt"

	"mtprefetch/internal/kernel"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/workload"
)

// Mode selects a software prefetching mechanism.
type Mode uint8

const (
	// None leaves the kernel untouched (the baseline binary).
	None Mode = iota
	// Register is binding register prefetching.
	Register
	// Stride is non-binding next-iteration prefetching.
	Stride
	// IP is inter-thread (next-warp) prefetching.
	IP
	// MTSWP combines Stride and IP.
	MTSWP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Register:
		return "register"
	case Stride:
		return "stride"
	case IP:
		return "ip"
	case MTSWP:
		return "mt-swp"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Options tunes the transforms.
type Options struct {
	// Distance is how many iterations ahead stride prefetches target
	// (default 1).
	Distance int
	// WarpAhead is how many warps ahead IP prefetches target (default 1:
	// the next warp, tid+32 in Fig. 4).
	WarpAhead int
	// RegsPerLoad is the register cost of pipelining one load in the
	// register-prefetching transform (default 2).
	RegsPerLoad int
}

func (o *Options) defaults() {
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.WarpAhead == 0 {
		o.WarpAhead = 1
	}
	if o.RegsPerLoad == 0 {
		o.RegsPerLoad = 2
	}
}

// Stats reports what a transform did.
type Stats struct {
	PrefetchInstrs  int // static prefetch instructions inserted
	PipelinedLoads  int // loads converted by register prefetching
	RegistersAdded  int // per-thread register cost
	OccupancyBefore int // MaxBlocksPerCore before
	OccupancyAfter  int // MaxBlocksPerCore after (register pressure)
}

// SourceOf attributes an OpPrefetch access to the transform that inserted
// it: applyIP marks its insertions with WarpAhead, applyStride with
// IterAhead only — the distinction MT-SWP needs to split its two halves
// in per-source reports.
func SourceOf(a *kernel.Access) memreq.Source {
	if a == nil {
		return memreq.SrcNone
	}
	if a.WarpAhead > 0 {
		return memreq.SrcSWIP
	}
	return memreq.SrcSWStride
}

// Apply returns a transformed copy of the spec. The input spec is never
// modified. Transforms that do not apply (e.g. stride prefetching on a
// loop-free kernel) return the spec unchanged — running the "same binary".
func Apply(s *workload.Spec, mode Mode, o Options) (*workload.Spec, Stats, error) {
	o.defaults()
	st := Stats{OccupancyBefore: s.MaxBlocksPerCore, OccupancyAfter: s.MaxBlocksPerCore}
	if mode == None {
		return s, st, nil
	}
	t := *s
	p := s.Program.Clone()
	switch mode {
	case Register:
		applyRegister(&t, p, o, &st)
	case Stride:
		applyStride(p, o, &st)
	case IP:
		applyIP(p, o, &st)
	case MTSWP:
		applyStride(p, o, &st)
		applyIP(p, o, &st)
	}
	if err := p.Validate(); err != nil {
		// Transforms only rearrange validated programs; a failure here is
		// a bug in this package, surfaced as a typed invariant error so a
		// sweep degrades to one ERR cell instead of dying.
		return nil, st, &simerr.InvariantError{
			Component: "swpref", Name: "transform-validity",
			Detail: fmt.Sprintf("%v transform of %s produced an invalid program: %v", mode, s.Name, err),
		}
	}
	t.Program = p
	return &t, st, nil
}

// loopBounds returns the [start, end] instruction indices of the loop
// body, with ok=false for straight-line programs. end is the OpLoopBack.
func loopBounds(p *kernel.Program) (start, end int, ok bool) {
	for i := range p.Instrs {
		if p.Instrs[i].Op == kernel.OpLoopBack {
			return p.Instrs[i].Target, i, true
		}
	}
	return 0, 0, false
}

// applyStride inserts, at the top of the loop body, one non-binding
// prefetch per strided in-loop load, targeting Distance iterations ahead.
func applyStride(p *kernel.Program, o Options, st *Stats) {
	start, end, ok := loopBounds(p)
	if !ok {
		return // no loop: nothing to prefetch ahead of (Fig. 3)
	}
	var pf []kernel.Instr
	for i := start; i < end; i++ {
		in := &p.Instrs[i]
		if in.Op != kernel.OpLoad || in.Mem.IterStrideB == 0 {
			continue
		}
		acc := *in.Mem
		acc.IterAhead += o.Distance
		pf = append(pf, kernel.Instr{Op: kernel.OpPrefetch, Mem: &acc})
	}
	insertInside(p, start, pf)
	st.PrefetchInstrs += len(pf)
}

// applyIP inserts one prefetch per load, targeting the corresponding
// thread WarpAhead warps later. For loop kernels the prefetch sits in the
// body (covering the same iteration of the next warp); for straight-line
// kernels it sits at the top of the kernel, as in Fig. 4a.
func applyIP(p *kernel.Program, o Options, st *Stats) {
	start, end, hasLoop := loopBounds(p)
	lo, hi := 0, len(p.Instrs)
	if hasLoop {
		lo, hi = start, end
	}
	var pf []kernel.Instr
	for i := lo; i < hi; i++ {
		in := &p.Instrs[i]
		if in.Op != kernel.OpLoad {
			continue
		}
		acc := *in.Mem
		acc.WarpAhead += o.WarpAhead
		pf = append(pf, kernel.Instr{Op: kernel.OpPrefetch, Mem: &acc})
	}
	insertInside(p, lo, pf)
	st.PrefetchInstrs += len(pf)
}

// applyRegister software-pipelines every strided in-loop load one
// iteration ahead (binding register prefetching): a prologue load before
// the loop fills the register for iteration 0; the in-loop load moves to
// the *end* of the body — after its consumers — and refills the same
// register for the next iteration. Consumers therefore read a value that
// has had a full iteration to arrive, and the per-warp scoreboard enforces
// exactly the one-iteration slack. The extra pipeline registers reduce
// occupancy.
func applyRegister(s *workload.Spec, p *kernel.Program, o Options, st *Stats) {
	start, end, ok := loopBounds(p)
	if !ok {
		return // loop-free kernels have no iterations to pipeline
	}
	var prologue, refills []kernel.Instr
	var body []kernel.Instr
	for i := start; i < end; i++ {
		in := p.Instrs[i]
		if in.Op == kernel.OpLoad && in.Mem.IterStrideB != 0 {
			// Prologue: load iteration 0's value into the register.
			acc0 := *in.Mem
			prologue = append(prologue, kernel.Instr{Op: kernel.OpLoad, Dst: in.Dst, Mem: &acc0})
			// Refill at end of body: next iteration's value.
			acc1 := *in.Mem
			acc1.IterAhead++
			refills = append(refills, kernel.Instr{Op: kernel.OpLoad, Dst: in.Dst, Mem: &acc1})
			st.PipelinedLoads++
			continue
		}
		body = append(body, in)
	}
	if len(prologue) == 0 {
		return
	}
	out := make([]kernel.Instr, 0, len(p.Instrs)+len(prologue))
	out = append(out, p.Instrs[:start]...)
	out = append(out, prologue...)
	newStart := len(out)
	out = append(out, body...)
	out = append(out, refills...)
	out = append(out, kernel.Instr{Op: kernel.OpLoopBack, Target: newStart})
	out = append(out, p.Instrs[end+1:]...)
	p.Instrs = out

	st.RegistersAdded = st.PipelinedLoads * o.RegsPerLoad
	// Occupancy with the fatter register footprint: the register file was
	// sized to fit the original kernel at its published occupancy.
	regs := s.RegsPerThread
	newBlocks := s.MaxBlocksPerCore * regs / (regs + st.RegistersAdded)
	if newBlocks < 1 {
		newBlocks = 1
	}
	s.MaxBlocksPerCore = newBlocks
	st.OccupancyAfter = newBlocks
}

// insertInside splices instrs into the program at index at, keeping them
// inside any loop whose body starts at that index (the back edge continues
// to target the first inserted instruction).
func insertInside(p *kernel.Program, at int, instrs []kernel.Instr) {
	if len(instrs) == 0 {
		return
	}
	out := make([]kernel.Instr, 0, len(p.Instrs)+len(instrs))
	out = append(out, p.Instrs[:at]...)
	out = append(out, instrs...)
	out = append(out, p.Instrs[at:]...)
	for i := range out {
		if out[i].Op == kernel.OpLoopBack && out[i].Target > at {
			out[i].Target += len(instrs)
		}
	}
	p.Instrs = out
}
