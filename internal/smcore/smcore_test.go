package smcore

import (
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/kernel"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/throttle"
	"mtprefetch/internal/workload"
)

// blockList deals a fixed number of blocks.
type blockList struct{ next, total int }

func (b *blockList) NextBlock() (int, bool) {
	if b.next >= b.total {
		return 0, false
	}
	n := b.next
	b.next++
	return n, true
}

// testSpec builds a tiny 1-block spec around a program.
func testSpec(t *testing.T, prog *kernel.Program, warpsPerBlock, blocks, maxBlk int) *workload.Spec {
	t.Helper()
	s := &workload.Spec{
		Name: "t", Suite: "t", Class: workload.MP,
		TotalWarps: warpsPerBlock * blocks, Blocks: blocks,
		MaxBlocksPerCore: maxBlk, RegsPerThread: 8,
		Program: prog,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newCore(t *testing.T, spec *workload.Spec, hwp prefetch.Prefetcher, eng *throttle.Engine) *Core {
	t.Helper()
	c, err := New(Options{
		ID:       0,
		Config:   config.Baseline(),
		Spec:     spec,
		Blocks:   &blockList{total: spec.Blocks},
		HWP:      hwp,
		Throttle: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drain runs the core with an ideal zero-latency memory: every cycle,
// sends are completed and filled back after `lat` cycles.
func drain(t *testing.T, c *Core, lat uint64, maxCycles int) uint64 {
	t.Helper()
	type pending struct {
		at  uint64
		req *memreq.Request
	}
	var inflight []pending
	for cyc := uint64(0); cyc < uint64(maxCycles); cyc++ {
		kept := inflight[:0]
		for _, p := range inflight {
			if p.at <= cyc {
				c.Fill(cyc, p.req)
			} else {
				kept = append(kept, p)
			}
		}
		inflight = kept
		c.Cycle(cyc)
		for {
			r := c.PopSend()
			if r == nil {
				break
			}
			if r.Kind != memreq.Writeback {
				inflight = append(inflight, pending{at: cyc + lat, req: r})
			}
		}
		if c.Idle() && len(inflight) == 0 {
			return cyc
		}
	}
	t.Fatalf("core did not drain in %d cycles (live=%d outstanding=%d)",
		maxCycles, c.liveWarps, c.MRQ.Outstanding())
	return 0
}

func computeOnly(n int) *kernel.Program {
	b := kernel.NewBuilder("compute")
	r := b.ALU()
	b.Compute(n-1, r)
	return b.MustBuild()
}

func loadUse() *kernel.Program {
	b := kernel.NewBuilder("loaduse")
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4})
	b.Compute(2, v)
	return b.MustBuild()
}

func TestComputeIssueOccupancy(t *testing.T) {
	// 1 warp x 10 ALU instructions at 4 cycles each ~= 40 cycles.
	spec := testSpec(t, computeOnly(10), 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	end := drain(t, c, 0, 1000)
	if end < 36 || end > 60 {
		t.Errorf("10 ALU instructions drained at cycle %d, want ~40", end)
	}
	st := c.Stats()
	if st.Instructions != 10 {
		t.Errorf("Instructions = %d, want 10", st.Instructions)
	}
	if st.WarpsCompleted != 1 || st.BlocksCompleted != 1 {
		t.Errorf("completion counts = %+v", st)
	}
}

func TestIMulFDivCosts(t *testing.T) {
	b := kernel.NewBuilder("heavy")
	r := b.IMul()
	r = b.FDiv(r)
	_ = r
	spec := testSpec(t, b.MustBuild(), 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	end := drain(t, c, 0, 1000)
	// The IMUL occupies issue for 16 cycles, so the FDiv (the final
	// instruction) cannot issue before cycle 16.
	if end < 16 || end > 24 {
		t.Errorf("FDiv issued at %d, want ~16 (after the IMUL's occupancy)", end)
	}
}

func TestLoadStallsAtUse(t *testing.T) {
	spec := testSpec(t, loadUse(), 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	const lat = 200
	end := drain(t, c, lat, 10_000)
	if end < lat {
		t.Errorf("single warp finished at %d, before the %d-cycle load returned", end, lat)
	}
	st := c.Stats()
	if st.MemInstrs != 1 {
		t.Errorf("MemInstrs = %d, want 1", st.MemInstrs)
	}
	if st.DemandTransactions != 2 { // coalesced 4B x 32 lanes = 2 blocks
		t.Errorf("DemandTransactions = %d, want 2", st.DemandTransactions)
	}
}

func TestMultithreadingHidesLatency(t *testing.T) {
	// With many warps, total time should be far below warps x latency.
	const warps = 8
	spec := testSpec(t, loadUse(), warps, 1, 1)
	c := newCore(t, spec, nil, nil)
	const lat = 100
	end := drain(t, c, lat, 100_000)
	serial := uint64(warps * lat)
	if end >= serial {
		t.Errorf("8 warps drained at %d, not faster than serial %d", end, serial)
	}
	if got := c.Stats().WarpsCompleted; got != warps {
		t.Errorf("WarpsCompleted = %d, want %d", got, warps)
	}
}

func TestSwitchOnStallStaggering(t *testing.T) {
	// Warp 0 must issue all its independent work before warp 1 starts:
	// with 2 warps of pure compute, instructions interleave per-warp
	// blocks, not round-robin. We detect this via completion order: warp
	// 0 finishes strictly first even though both are ready every cycle.
	spec := testSpec(t, computeOnly(5), 2, 1, 1)
	c := newCore(t, spec, nil, nil)
	drain(t, c, 0, 1000)
	// Indirect check: total time ~ 2x5x4 = 40 (serialised issue), and
	// both warps complete.
	if got := c.Stats().WarpsCompleted; got != 2 {
		t.Errorf("WarpsCompleted = %d", got)
	}
}

func TestBlockTurnover(t *testing.T) {
	// 4 blocks, occupancy 1: blocks run one after another.
	spec := testSpec(t, computeOnly(3), 2, 4, 1)
	c := newCore(t, spec, nil, nil)
	drain(t, c, 0, 10_000)
	st := c.Stats()
	if st.BlocksCompleted != 4 || st.WarpsCompleted != 8 {
		t.Errorf("blocks=%d warps=%d, want 4/8", st.BlocksCompleted, st.WarpsCompleted)
	}
}

func TestPerfectMemoryNeverStalls(t *testing.T) {
	spec := testSpec(t, loadUse(), 2, 1, 1)
	c, err := New(Options{
		ID: 0, Config: config.Baseline(), Spec: spec,
		Blocks: &blockList{total: 1}, PerfectMem: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := drain(t, c, 1_000_000, 1000) // memory would never respond
	// 2 warps x 3 instrs x 4 cycles = 24.
	if end > 40 {
		t.Errorf("perfect-memory run took %d cycles", end)
	}
	if c.MRQ.Outstanding() != 0 {
		t.Error("perfect memory generated MRQ traffic")
	}
}

func TestScoreboardWAWBlocksSecondLoad(t *testing.T) {
	// Two loads into the same register (software pipelining): the second
	// must wait for the first fill.
	b := kernel.NewBuilder("waw")
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4})
	b.Compute(1, v)
	prog := b.MustBuild()
	// Manually append a load writing the same register.
	prog.Instrs = append(prog.Instrs, kernel.Instr{
		Op: kernel.OpLoad, Dst: v,
		Mem: &kernel.Access{Array: 0, LaneStrideB: 4, Offset: 1 << 16},
	})
	spec := testSpec(t, prog, 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	const lat = 300
	end := drain(t, c, lat, 10_000)
	if end < 2*lat {
		t.Errorf("WAW loads drained at %d, want >= %d (serialised)", end, 2*lat)
	}
}

func TestSWPrefetchFillsCache(t *testing.T) {
	b := kernel.NewBuilder("pf")
	b.Prefetch(kernel.Access{Array: 0, LaneStrideB: 4})
	b.Compute(30, kernel.NoReg) // time for the prefetch to land
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4})
	b.Compute(1, v)
	spec := testSpec(t, b.MustBuild(), 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	end := drain(t, c, 100, 10_000)
	st := c.Stats()
	if st.PrefetchInstrs != 1 {
		t.Fatalf("PrefetchInstrs = %d, want 1", st.PrefetchInstrs)
	}
	if st.PrefetchesIssued != 2 {
		t.Fatalf("PrefetchesIssued = %d, want 2 (two blocks)", st.PrefetchesIssued)
	}
	if st.PFCacheHitTransactions != 2 {
		t.Errorf("PFCacheHitTransactions = %d, want 2 (load fully covered)", st.PFCacheHitTransactions)
	}
	// The covered run must be issue-bound: ~33 instructions x 4 cycles
	// plus the prefetch wait is hidden by compute.
	if end > 250 {
		t.Errorf("covered run took %d cycles", end)
	}
}

func TestLatePrefetchMerges(t *testing.T) {
	b := kernel.NewBuilder("late")
	b.Prefetch(kernel.Access{Array: 0, LaneStrideB: 4})
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4}) // immediately after
	b.Compute(1, v)
	spec := testSpec(t, b.MustBuild(), 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	drain(t, c, 200, 10_000)
	st := c.Stats()
	if st.LatePrefetches == 0 {
		t.Error("demand right behind prefetch should be counted late")
	}
	if got := c.MRQ.Stats().DemandIntoPrefetch; got == 0 {
		t.Error("no demand-into-prefetch merges recorded")
	}
	// Late prefetches still land in the cache, marked used: no early
	// eviction accounting later.
	if got := c.PFCache.Stats().FirstUses; got == 0 {
		t.Error("late prefetch fill not marked used")
	}
}

func TestHWPrefetcherTrainsAndIssues(t *testing.T) {
	// A strided loop load should train the PWS table and emit prefetches.
	b := kernel.NewBuilder("stride")
	b.BeginLoop(8)
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4, IterStrideB: 4096})
	b.Compute(3, v)
	b.EndLoop()
	spec := testSpec(t, b.MustBuild(), 1, 1, 1)
	hwp := prefetch.NewMTHWP(prefetch.MTHWPOptions{})
	c := newCore(t, spec, hwp, nil)
	drain(t, c, 50, 100_000)
	st := c.Stats()
	if st.PrefetchesGenerated == 0 {
		t.Fatal("hardware prefetcher generated nothing on a strided loop")
	}
	if hwp.Stats().PWSHits == 0 {
		t.Error("PWS never hit")
	}
}

func TestThrottleDegree5DropsPrefetches(t *testing.T) {
	b := kernel.NewBuilder("pf")
	b.BeginLoop(16)
	b.Prefetch(kernel.Access{Array: 0, LaneStrideB: 4, IterStrideB: 4096, IterAhead: 1})
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 4, IterStrideB: 4096})
	b.Compute(2, v)
	b.EndLoop()
	spec := testSpec(t, b.MustBuild(), 1, 1, 1)
	eng := throttle.New(throttle.Config{InitDegree: 5})
	c := newCore(t, spec, nil, eng)
	drain(t, c, 50, 100_000)
	st := c.Stats()
	if st.DroppedThrottle == 0 {
		t.Error("degree-5 throttle dropped nothing")
	}
	if st.PrefetchesIssued > st.PrefetchesGenerated/8 {
		t.Errorf("throttle leaked: issued %d of %d", st.PrefetchesIssued, st.PrefetchesGenerated)
	}
}

func TestUncoalescedTransactionCount(t *testing.T) {
	b := kernel.NewBuilder("uncoal")
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 64})
	b.Compute(1, v)
	spec := testSpec(t, b.MustBuild(), 1, 1, 1)
	c := newCore(t, spec, nil, nil)
	drain(t, c, 50, 100_000)
	if got := c.Stats().DemandTransactions; got != 32 {
		t.Errorf("DemandTransactions = %d, want 32", got)
	}
}

func TestDemandCapReservesPrefetchRoom(t *testing.T) {
	cfg := config.Baseline()
	if cfg.MRQSize-cfg.MRQPrefetchReserve >= cfg.MRQSize {
		t.Fatal("config reserve is zero; test is vacuous")
	}
	// An uncoalesced load (32 txs) against demandCap 32 fits exactly;
	// two warps' loads cannot be outstanding at once.
	b := kernel.NewBuilder("cap")
	v := b.Load(kernel.Access{Array: 0, LaneStrideB: 64})
	b.Compute(1, v)
	spec := testSpec(t, b.MustBuild(), 2, 1, 1)
	c := newCore(t, spec, nil, nil)
	// Never fill: after both warps try to issue, outstanding demand must
	// not exceed the demand cap.
	for cyc := uint64(0); cyc < 100; cyc++ {
		c.Cycle(cyc)
		for c.MRQ.NextSend() != nil {
			c.PopSend()
		}
	}
	if out := c.MRQ.Outstanding(); out > cfg.MRQSize-cfg.MRQPrefetchReserve {
		t.Errorf("demand outstanding = %d exceeds demand cap %d",
			out, cfg.MRQSize-cfg.MRQPrefetchReserve)
	}
}

func TestIdleAndRetire(t *testing.T) {
	spec := testSpec(t, loadUse(), 2, 2, 2)
	c := newCore(t, spec, nil, nil)
	if c.Idle() {
		t.Fatal("core idle before running")
	}
	drain(t, c, 20, 10_000)
	if !c.Idle() {
		t.Fatal("core not idle after drain")
	}
}

func TestRoundRobinScheduler(t *testing.T) {
	cfg := config.Baseline()
	cfg.Scheduler = config.RoundRobin
	spec := testSpec(t, computeOnly(6), 4, 1, 1)
	c, err := New(Options{ID: 0, Config: cfg, Spec: spec, Blocks: &blockList{total: 1}})
	if err != nil {
		t.Fatal(err)
	}
	end := drain(t, c, 0, 10_000)
	if got := c.Stats().WarpsCompleted; got != 4 {
		t.Errorf("WarpsCompleted = %d, want 4", got)
	}
	// Issue-bound either way: 4 warps x 6 instrs x 4 cycles.
	if end < 90 || end > 120 {
		t.Errorf("round-robin drained at %d, want ~96", end)
	}
}

func TestPollutionFilterWiring(t *testing.T) {
	// A kernel that prefetches a stream it never reads: every prefetch is
	// eventually early-evicted, so the filter must start dropping.
	b := kernel.NewBuilder("bad")
	b.BeginLoop(64)
	b.Prefetch(kernel.Access{Array: 0, LaneStrideB: 64, IterStrideB: 64 * 64})
	v := b.Load(kernel.Access{Array: 1, LaneStrideB: 4, IterStrideB: 128})
	b.Compute(1, v)
	b.EndLoop()
	spec := testSpec(t, b.MustBuild(), 2, 1, 1)
	c, err := New(Options{
		ID: 0, Config: config.Baseline(), Spec: spec,
		Blocks: &blockList{total: 1},
		Filter: prefetch.NewPollutionFilter(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, c, 60, 200_000)
	if got := c.Stats().DroppedByFilter; got == 0 {
		t.Error("filter never dropped a useless prefetch stream")
	}
}
