// Package smcore models one SIMT core (an SM): an in-order scheduler that
// issues warp-instructions with per-class occupancy (4 cycles for the
// common case — 32-thread warps over 8-wide SIMD — 16 for IMUL, 32 for
// FDIV), per-warp register scoreboards allowing multiple outstanding loads
// per warp, a block scheduler honouring the occupancy limit, the per-core
// MRQ, the prefetch cache, the hardware prefetcher, and the throttle
// engine (Fig. 9).
package smcore

import (
	"fmt"
	"math/bits"

	"mtprefetch/internal/cache"
	"mtprefetch/internal/config"
	"mtprefetch/internal/kernel"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/mrq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/throttle"
	"mtprefetch/internal/workload"
)

// BlockSource dispenses thread-block ids to cores; the simulator shares
// one across all cores.
type BlockSource interface {
	// NextBlock returns the next block id, or ok=false when the grid is
	// exhausted.
	NextBlock() (int, bool)
}

// Stats are one core's lifetime counters.
type Stats struct {
	Instructions     uint64 // all issued warp-instructions
	ProgInstructions uint64 // excluding prefetch instructions
	ComputeInstrs    uint64
	MemInstrs        uint64 // demand loads + stores
	PrefetchInstrs   uint64 // software prefetch instructions issued

	DemandTransactions     uint64 // demand block transactions generated
	PFCacheHitTransactions uint64 // of those, served by the prefetch cache

	PrefetchesGenerated uint64 // candidates from SW instrs + HW prefetcher
	PrefetchesIssued    uint64 // accepted into the MRQ as new entries
	PrefetchMergedMRQ   uint64 // candidates merged into outstanding entries
	DroppedThrottle     uint64
	DroppedByFilter     uint64
	DroppedInCache      uint64
	DroppedQueueFull    uint64

	LatePrefetches uint64 // fills whose prefetch had a demand merged in
	DemandLatency  stats.Latency

	IssueStallFullMRQ uint64 // cycles a ready warp stalled on MRQ space
	BlocksCompleted   uint64
	WarpsCompleted    uint64
}

type blockState struct {
	active    bool
	remaining int // unfinished warps
}

// Core is one SM.
type Core struct {
	id   int
	cfg  *config.Config
	spec *workload.Spec
	prog *kernel.Program

	// Warp state lives in a struct-of-arrays layout, indexed by warp
	// slot: the scheduler's bitmask scan and the fill path each touch
	// one or two of these fields for many warps per event, so parallel
	// flat slices keep those walks on contiguous memory instead of
	// striding across fat per-warp structs.
	numWarps  int
	wActive   []bool
	wDone     []bool
	wGwid     []int32 // global warp id
	wPC       []int32
	wIter     []int32
	wRemTrips []int32
	wOutstand []int32 // total outstanding fills
	wBlock    []int32 // resident-block slot the warp belongs to

	// Flat scoreboard: pending fills per register, slot*numRegs+reg.
	pending []uint16
	numRegs int

	// Memoized coalescing result for the instruction at (txPC, txIter),
	// so a warp stalled on MRQ space does not redo the lane-dedup work
	// every cycle it retries. txs backing arrays are reused per slot.
	txs     [][]uint64
	txPC    []int32
	txIter  []int32
	txValid []bool

	blocks    []blockState
	src       BlockSource
	liveWarps int

	MRQ     *mrq.Queue
	PFCache *cache.Cache
	HWP     prefetch.Prefetcher
	Throt   *throttle.Engine
	Filter  *prefetch.PollutionFilter // nil: no pollution filtering

	trace *obs.Tracer   // nil: event tracing disabled
	pf    *obs.PFReport // nil: prefetch attribution disabled
	cpi   *obs.CoreCPI  // nil: cycle accounting disabled
	spans *obs.SpanSet  // nil: request span tracing disabled

	// spanSeq numbers every candidate request (demand or prefetch) this
	// core creates, in issue order. It feeds the deterministic span
	// sampling hash and advances only while spans are enabled, so the
	// spans-off issue path pays a single nil check.
	spanSeq uint64

	// Cycle-accounting stall cause: stallMRQ counts warps stalled on MRQ
	// capacity since the last wake (the capacity stall can only clear at
	// a wake, so the count stays truthful for the whole stall window);
	// memStall is the transient "this tryIssue failure was an MRQ
	// capacity stall" flag that scanIssue consumes.
	stallMRQ int
	memStall bool

	// pfOrigin maps resident prefetched-but-unused blocks to the PC that
	// generated them, so the pollution filter can attribute outcomes.
	pfOrigin map[uint64]int

	perfectMem bool
	periodic   bool // throttle engine or feedback prefetcher present

	issueBusyUntil uint64
	rr             int // round-robin scan start

	// Warp issue index: activeMask has a bit per resident warp still
	// executing its program (active and not done); issueMask is the
	// subset not stalled since the last memory event. Cycle scans only
	// issueMask, so done and stalled warps cost nothing per tick. Both
	// stall causes (scoreboard and MRQ capacity) can only clear when a
	// fill returns or an MRQ slot frees — the events that call wake and
	// reset issueMask to activeMask.
	activeMask  []uint64
	issueMask   []uint64
	activeCount int // set bits in activeMask
	issuable    int // set bits in issueMask

	pool *memreq.Pool // request free-list (nil: plain allocation)

	// Deferred block launches (core sharding): while deferLaunch is set,
	// tryLaunchBlock queues the freed slot instead of consuming the shared
	// BlockSource — the only cross-core state the issue path touches — so
	// Cycle is safe to run concurrently across cores. FlushLaunches
	// replays the queue in the caller's (core-index) order.
	deferLaunch   bool
	pendingLaunch []int

	// Throttle-period snapshots.
	nextPeriod uint64
	lastCache  cache.Stats
	lastMRQ    mrq.Stats
	lastIssued uint64
	lastLate   uint64

	// Scratch buffers reused across cycles.
	txBuf   []uint64
	candBuf []prefetch.Candidate
	footBuf []uint64

	stats Stats
}

// Options configures a core.
type Options struct {
	ID         int
	Config     *config.Config
	Spec       *workload.Spec
	Blocks     BlockSource
	HWP        prefetch.Prefetcher       // nil: no hardware prefetching
	Throttle   *throttle.Engine          // nil: no adaptive throttling
	Filter     *prefetch.PollutionFilter // nil: no pollution filtering
	PerfectMem bool                      // loads complete instantly (PMEM runs)
	Pool       *memreq.Pool              // nil: requests are plainly allocated
}

// New builds a core and fills it with blocks up to the occupancy limit.
func New(o Options) (*Core, error) {
	prog := o.Spec.Program
	if prog.NumRegs > 256 {
		return nil, fmt.Errorf("smcore: program uses %d registers", prog.NumRegs)
	}
	wpb := o.Spec.WarpsPerBlock()
	maxBlocks := o.Spec.MaxBlocksPerCore
	numWarps := maxBlocks * wpb
	c := &Core{
		id:         o.ID,
		cfg:        o.Config,
		spec:       o.Spec,
		prog:       prog,
		numWarps:   numWarps,
		wActive:    make([]bool, numWarps),
		wDone:      make([]bool, numWarps),
		wGwid:      make([]int32, numWarps),
		wPC:        make([]int32, numWarps),
		wIter:      make([]int32, numWarps),
		wRemTrips:  make([]int32, numWarps),
		wOutstand:  make([]int32, numWarps),
		wBlock:     make([]int32, numWarps),
		pending:    make([]uint16, numWarps*prog.NumRegs),
		numRegs:    prog.NumRegs,
		txs:        make([][]uint64, numWarps),
		txPC:       make([]int32, numWarps),
		txIter:     make([]int32, numWarps),
		txValid:    make([]bool, numWarps),
		blocks:     make([]blockState, maxBlocks),
		src:        o.Blocks,
		MRQ:        mrq.New(o.Config.MRQSize),
		PFCache:    cache.New(o.Config.PrefetchCacheBytes, o.Config.PrefetchCacheWays, o.Config.BlockBytes),
		HWP:        o.HWP,
		Throt:      o.Throttle,
		Filter:     o.Filter,
		perfectMem: o.PerfectMem,
		nextPeriod: o.Config.ThrottlePeriod,
		pool:       o.Pool,
	}
	words := (numWarps + 63) / 64
	c.activeMask = make([]uint64, words)
	c.issueMask = make([]uint64, words)
	if o.Filter != nil {
		c.pfOrigin = make(map[uint64]int)
	}
	if _, ok := o.HWP.(prefetch.FeedbackPrefetcher); ok || o.Throttle != nil {
		c.periodic = true
	}
	for b := range c.blocks {
		c.tryLaunchBlock(b)
	}
	return c, nil
}

// cpiCounterNames pre-builds the per-bucket registry names once, so the
// 14 cores' Observe calls don't re-concatenate them.
var cpiCounterNames = func() [obs.NumBuckets]string {
	var names [obs.NumBuckets]string
	for b := obs.Bucket(0); b < obs.NumBuckets; b++ {
		names[b] = "smcore.cpi_" + b.String()
	}
	return names
}()

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// ID returns the core's index in the machine.
func (c *Core) ID() int { return c.id }

// Observe attaches the observability layer: the core's own counters and
// those of its sub-components (prefetch cache, MRQ, throttle engine,
// MT-HWP tables) register into reg, and structured events are emitted
// into tr. Both may be nil; registration is free on the hot path either
// way, since the registry samples live state through closures.
func (c *Core) Observe(reg *obs.Registry, tr *obs.Tracer) {
	c.trace = tr
	l := obs.Labels{Core: c.id, Component: "smcore"}
	st := &c.stats
	reg.CounterU64("smcore.instructions", l, &st.Instructions)
	reg.CounterU64("smcore.prog_instructions", l, &st.ProgInstructions)
	reg.CounterU64("smcore.compute_instrs", l, &st.ComputeInstrs)
	reg.CounterU64("smcore.mem_instrs", l, &st.MemInstrs)
	reg.CounterU64("smcore.prefetch_instrs", l, &st.PrefetchInstrs)
	reg.CounterU64("smcore.demand_transactions", l, &st.DemandTransactions)
	reg.CounterU64("smcore.pfcache_hit_transactions", l, &st.PFCacheHitTransactions)
	reg.CounterU64("smcore.prefetches_generated", l, &st.PrefetchesGenerated)
	reg.CounterU64("smcore.prefetches_issued", l, &st.PrefetchesIssued)
	reg.CounterU64("smcore.prefetch_merged_mrq", l, &st.PrefetchMergedMRQ)
	reg.CounterU64("smcore.dropped_throttle", l, &st.DroppedThrottle)
	reg.CounterU64("smcore.dropped_filter", l, &st.DroppedByFilter)
	reg.CounterU64("smcore.dropped_in_cache", l, &st.DroppedInCache)
	reg.CounterU64("smcore.dropped_queue_full", l, &st.DroppedQueueFull)
	reg.CounterU64("smcore.late_prefetches", l, &st.LatePrefetches)
	reg.CounterU64("smcore.issue_stall_full_mrq", l, &st.IssueStallFullMRQ)
	reg.CounterU64("smcore.blocks_completed", l, &st.BlocksCompleted)
	reg.CounterU64("smcore.warps_completed", l, &st.WarpsCompleted)
	reg.Histogram("smcore.demand_latency", l, func() stats.Histogram { return st.DemandLatency.Histogram })
	reg.Gauge("smcore.live_warps", l, func() float64 { return float64(c.liveWarps) })
	if c.cpi != nil {
		cb := c.cpi
		for b := obs.Bucket(0); b < obs.NumBuckets; b++ {
			reg.CounterU64(cpiCounterNames[b], l, &cb.Buckets[b])
		}
	}

	c.PFCache.Register(reg, obs.Labels{Core: c.id, Component: "pfcache"})
	c.MRQ.Register(reg, obs.Labels{Core: c.id, Component: "mrq"})
	if c.Throt != nil {
		c.Throt.Register(reg, obs.Labels{Core: c.id, Component: "throttle"})
	}
	if mt, ok := c.HWP.(*prefetch.MTHWP); ok {
		mt.Register(reg, obs.Labels{Core: c.id, Component: "mthwp"})
		mt.SetTrace(tr, c.id)
	}
}

// AttachPFReport enables prefetch provenance attribution on the core and
// its classification sites (prefetch cache, MRQ). With no report attached
// the issue and fill paths skip all attribution work.
func (c *Core) AttachPFReport(p *obs.PFReport) {
	if p == nil {
		return
	}
	c.pf = p
	c.PFCache.SetPFReport(p)
	c.MRQ.SetPFReport(p)
}

// AttachCPI enables cycle accounting: with a bucket set attached, every
// call to Cycle (and every skipped cycle via AccountSpan) attributes
// exactly one cycle to one bucket. Must be attached before Observe so
// the per-bucket registry counters appear. A nil argument leaves
// accounting off and the issue path pays only nil checks.
func (c *Core) AttachCPI(b *obs.CoreCPI) { c.cpi = b }

// AttachSpans enables request span tracing: every demand and prefetch
// request the core creates runs the deterministic sampling decision,
// and the sampled ones carry lifecycle stamp records from issue to
// their terminal. During sharded runs the attached set is the core's
// private shard, merged at collection time. A nil argument leaves span
// tracing off and the request paths pay only nil checks.
func (c *Core) AttachSpans(ss *obs.SpanSet) { c.spans = ss }

// startSpan runs the span sampling decision for a just-created request.
func (c *Core) startSpan(r *memreq.Request, cycle uint64) {
	if c.spans == nil {
		return
	}
	c.spanSeq++
	c.spans.Start(r, c.spanSeq, cycle)
}

// stallBucket classifies a non-issuing cycle by the core's current stall
// cause, read off the issue-index state (see the activeMask/issueMask
// comment): no resident executing warp means the grid drained here
// (idle) or warps are done but fills are outstanding (drain); otherwise
// executing warps exist but all are stalled — on MRQ capacity if any
// warp in this wake-window stalled there, else on the scoreboard.
func (c *Core) stallBucket() obs.Bucket {
	if c.activeCount == 0 {
		if c.liveWarps > 0 {
			return obs.BucketDrain
		}
		return obs.BucketIdle
	}
	if c.stallMRQ > 0 {
		return obs.BucketMRQFull
	}
	return obs.BucketScoreboard
}

// AccountSpan bulk-attributes the skipped span [from, to) exactly as the
// per-cycle path would have: cycles still inside the current issue
// occupancy are issued bandwidth, the rest take the current stall
// bucket. The skip contract (core.nextEventCycle) guarantees this
// equals cycle-by-cycle attribution: with issue-eligible warps the span
// cannot extend past issueBusyUntil (NextEvent caps it), and only a
// visited cycle can change the stall cause.
func (c *Core) AccountSpan(from, to uint64) {
	if c.cpi == nil || to <= from {
		return
	}
	if busy := c.issueBusyUntil; busy > from {
		if busy > to {
			busy = to
		}
		c.cpi.Buckets[obs.BucketIssued] += busy - from
		from = busy
	}
	if to > from {
		c.cpi.Buckets[c.stallBucket()] += to - from
	}
}

// AccountExternalStall attributes n cycles in which the issue stage was
// externally suppressed (a fault injector holding the core) to the
// throttled bucket, keeping conservation exact under fault injection.
func (c *Core) AccountExternalStall(n uint64) {
	if c.cpi != nil {
		c.cpi.Buckets[obs.BucketThrottled] += n
	}
}

// Tolerance snapshots the core's latency-tolerance signals at cycle: how
// many warps remain to switch to, how much MRQ/MSHR headroom is left to
// issue into, and how long the oldest outstanding fill has been in
// flight. Sampled at CPI-stack epoch boundaries, not per cycle.
func (c *Core) Tolerance(cycle uint64) obs.Tolerance {
	out := c.MRQ.Outstanding()
	t := obs.Tolerance{
		Core:           c.id,
		ReadyWarps:     c.issuable,
		ActiveWarps:    c.activeCount,
		LiveWarps:      c.liveWarps,
		MRQOutstanding: out,
		MRQFree:        c.MRQ.Capacity() - out,
	}
	if oldest, ok := c.MRQ.OldestIssueCycle(); ok && cycle > oldest {
		t.OldestFillAge = cycle - oldest
	}
	return t
}

// DeferLaunches makes tryLaunchBlock queue freed block slots instead of
// drawing from the shared BlockSource. The simulator sets it around the
// sharded core-stepping phase; FlushLaunches reverts it.
func (c *Core) DeferLaunches() { c.deferLaunch = true }

// FlushLaunches performs the launches deferred since DeferLaunches and
// returns the core to immediate launching. The simulator calls it core
// by core in index order after the stepping barrier; at most one block
// per core can complete per cycle (one issue per cycle), so replaying
// the queue in that order consumes the BlockSource exactly as the serial
// core loop would have.
func (c *Core) FlushLaunches() {
	c.deferLaunch = false
	for _, b := range c.pendingLaunch {
		c.tryLaunchBlock(b)
	}
	c.pendingLaunch = c.pendingLaunch[:0]
}

// tryLaunchBlock fills block slot b with a fresh thread block if any.
func (c *Core) tryLaunchBlock(b int) {
	if c.deferLaunch {
		c.pendingLaunch = append(c.pendingLaunch, b)
		return
	}
	blockID, ok := c.src.NextBlock()
	if !ok {
		return
	}
	wpb := c.spec.WarpsPerBlock()
	c.blocks[b] = blockState{active: true, remaining: wpb}
	for i := 0; i < wpb; i++ {
		slot := b*wpb + i
		c.wActive[slot] = true
		c.wDone[slot] = false
		c.wGwid[slot] = int32(blockID*wpb + i)
		c.wPC[slot] = 0
		c.wIter[slot] = 0
		c.wRemTrips[slot] = int32(c.prog.LoopTrips)
		c.wOutstand[slot] = 0
		c.wBlock[slot] = int32(b)
		clear(c.pending[slot*c.numRegs : (slot+1)*c.numRegs])
		c.liveWarps++
		c.activateWarp(slot)
	}
}

// wake makes every executing warp eligible for the issue scan again.
// Called when a fill returns or an MRQ slot frees — the only events
// that can clear a scoreboard or capacity stall.
func (c *Core) wake() {
	copy(c.issueMask, c.activeMask)
	c.issuable = c.activeCount
	c.stallMRQ = 0
}

// activateWarp enters a freshly launched warp into the issue index.
func (c *Core) activateWarp(slot int) {
	bit := uint64(1) << (uint(slot) & 63)
	c.activeMask[slot>>6] |= bit
	c.issueMask[slot>>6] |= bit
	c.activeCount++
	c.issuable++
}

// stallWarp drops a warp from the issue scan until the next wake.
func (c *Core) stallWarp(slot int) {
	c.issueMask[slot>>6] &^= 1 << (uint(slot) & 63)
	c.issuable--
}

// warpDone removes a finished warp from the issue index. The caller
// guarantees the warp's issue bit is set (it just issued its final
// instruction, so the scan found it in issueMask).
func (c *Core) warpDone(slot int) {
	bit := uint64(1) << (uint(slot) & 63)
	c.activeMask[slot>>6] &^= bit
	c.issueMask[slot>>6] &^= bit
	c.activeCount--
	c.issuable--
}

// Idle reports whether the core has no resident work and no outstanding
// memory requests.
func (c *Core) Idle() bool {
	return c.liveWarps == 0 && c.MRQ.Outstanding() == 0
}

// NextSend exposes the oldest unsent MRQ request for NOC injection.
func (c *Core) NextSend() *memreq.Request { return c.MRQ.NextSend() }

// PopSend removes it after a successful injection. Popping a writeback
// frees its MRQ slot, so stalled warps become eligible again.
func (c *Core) PopSend() *memreq.Request {
	r := c.MRQ.PopSend()
	if r != nil && r.Kind == memreq.Writeback {
		c.wake()
	}
	return r
}

// Fill delivers a returned memory response to the core.
func (c *Core) Fill(cycle uint64, r *memreq.Request) {
	// The delivered request reaches its terminal here even when its MRQ
	// entry is already gone (inter-core merge leftovers below).
	r.StampSpan(memreq.SpanFill, cycle)
	c.spans.Finish(r, cycle, memreq.TermFill)
	c.wake()
	entry := c.MRQ.Complete(r.Addr)
	if entry == nil {
		// The response belongs to a request merged away inter-core; the
		// surviving entry for this core already completed or never
		// existed. Nothing to do.
		return
	}
	if entry.Kind == memreq.Demand || len(entry.Waiters) > 0 {
		c.stats.DemandLatency.Add(cycle - entry.IssueCycle)
	}
	for _, w := range entry.Waiters {
		slot := int(w.Warp)
		if p := &c.pending[slot*c.numRegs+int(w.Reg)]; *p > 0 {
			*p--
		}
		if c.wOutstand[slot] > 0 {
			c.wOutstand[slot]--
		}
		c.maybeRetire(slot)
	}
	if entry.WasPrefetch {
		if entry.DemandMerged {
			c.stats.LatePrefetches++
			entry.Outcome = memreq.OutLate
			if c.pf != nil {
				c.pf.Record(entry.Prov, memreq.OutLate)
			}
			// Late prefetch: the data still lands in the prefetch cache,
			// already used.
			c.PFCache.FillProv(entry.Addr, true, entry.Prov)
			if c.trace != nil {
				c.trace.Emit(obs.EvLatePrefetch, cycle, c.id, entry.Addr, int64(entry.PC))
			}
		} else {
			early, victim := c.PFCache.FillProv(entry.Addr, false, entry.Prov)
			if early && c.trace != nil {
				c.trace.Emit(obs.EvEarlyEviction, cycle, c.id, victim, 0)
			}
			if c.Filter != nil {
				c.pfOrigin[entry.Addr] = entry.PC
				if early {
					if pc, ok := c.pfOrigin[victim]; ok {
						c.Filter.RecordEarly(pc)
						delete(c.pfOrigin, victim)
					}
				}
			}
		}
	}
}

// DropFill releases the MRQ entry for a response without waking its
// waiters or filling the prefetch cache — a deliberately injected lost
// completion (internal/faults) that the scoreboard-balance invariant is
// designed to catch. Production code never calls it.
func (c *Core) DropFill(r *memreq.Request) { c.MRQ.Complete(r.Addr) }

// Diag is one core's diagnostic snapshot, for livelock reports and crash
// dumps (core.DiagSnapshot).
type Diag struct {
	Core           int `json:"core"`
	LiveWarps      int `json:"live_warps"`
	ActiveWarps    int `json:"active_warps"`    // resident, still executing
	DrainingWarps  int `json:"draining_warps"`  // program done, fills outstanding
	StalledWarps   int `json:"stalled_warps"`   // active but stalled since the last memory event
	MRQOutstanding int `json:"mrq_outstanding"` // occupied MRQ/MSHR entries
	MRQUnsent      int `json:"mrq_unsent"`      // accepted but not yet injected
	PFCacheLines   int `json:"pfcache_lines"`   // resident prefetch-cache blocks
	ThrottleDegree int `json:"throttle_degree"` // 0 when throttling is off
}

// Diag captures the core's current state.
func (c *Core) Diag() Diag {
	d := Diag{
		Core:           c.id,
		LiveWarps:      c.liveWarps,
		MRQOutstanding: c.MRQ.Outstanding(),
		MRQUnsent:      c.MRQ.SendQueueLen(),
		PFCacheLines:   c.PFCache.Occupancy(),
	}
	for i := 0; i < c.numWarps; i++ {
		if !c.wActive[i] {
			continue
		}
		if c.wDone[i] {
			d.DrainingWarps++
			continue
		}
		d.ActiveWarps++
		if c.issueMask[i>>6]&(1<<(uint(i)&63)) == 0 {
			d.StalledWarps++
		}
	}
	if c.Throt != nil {
		d.ThrottleDegree = c.Throt.Degree()
	}
	return d
}

// CheckInvariants verifies the core's conservation properties between
// cycles, when the machine is in a consistent state (core.Options.Checks):
// the MRQ's entry accounting, the prefetch cache's line accounting, and
// the scoreboard release balance — every fill a warp waits on must be
// backed by a waiter on an in-flight MRQ entry and vice versa, so a
// completion that frees an entry without waking its waiters (or a double
// wake) is caught here.
func (c *Core) CheckInvariants(cycle uint64) error {
	if err := c.MRQ.CheckInvariants(cycle, c.id); err != nil {
		return err
	}
	if err := c.PFCache.CheckInvariants(cycle, c.id); err != nil {
		return err
	}
	warpOut, regPending := 0, 0
	active, issuable := 0, 0
	for i := 0; i < c.numWarps; i++ {
		bit := uint64(1) << (uint(i) & 63)
		abit := c.activeMask[i>>6]&bit != 0
		ibit := c.issueMask[i>>6]&bit != 0
		if abit != (c.wActive[i] && !c.wDone[i]) || (ibit && !abit) {
			return &simerr.InvariantError{
				Component: "smcore", Name: "warp-index", Cycle: cycle,
				Detail: fmt.Sprintf("core %d warp %d: active=%v done=%v but activeMask=%v issueMask=%v",
					c.id, i, c.wActive[i], c.wDone[i], abit, ibit),
			}
		}
		if abit {
			active++
		}
		if ibit {
			issuable++
		}
		if !c.wActive[i] {
			continue
		}
		warpOut += int(c.wOutstand[i])
		for _, p := range c.pending[i*c.numRegs : (i+1)*c.numRegs] {
			regPending += int(p)
		}
	}
	if active != c.activeCount || issuable != c.issuable {
		return &simerr.InvariantError{
			Component: "smcore", Name: "warp-index-counts", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: %d active / %d issuable bits but counts say %d / %d",
				c.id, active, issuable, c.activeCount, c.issuable),
		}
	}
	if waiters := c.MRQ.WaiterCount(); warpOut != waiters || regPending != warpOut {
		return &simerr.InvariantError{
			Component: "smcore", Name: "scoreboard-balance", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: warps wait on %d fills (%d pending register slots) but MRQ entries carry %d waiters",
				c.id, warpOut, regPending, waiters),
		}
	}
	return nil
}

// maybeRetire finishes a warp whose program ended and whose loads drained.
func (c *Core) maybeRetire(slot int) {
	if !c.wActive[slot] || !c.wDone[slot] || c.wOutstand[slot] != 0 {
		return
	}
	c.wActive[slot] = false
	c.liveWarps--
	c.stats.WarpsCompleted++
	blk := int(c.wBlock[slot])
	b := &c.blocks[blk]
	b.remaining--
	if b.remaining == 0 {
		b.active = false
		c.stats.BlocksCompleted++
		c.tryLaunchBlock(blk)
	}
}

// Cycle advances the core by one cycle: throttle-period accounting and at
// most one warp-instruction issue. A non-nil error is an invariant
// violation (the simulation must abort).
func (c *Core) Cycle(cycle uint64) error {
	if c.periodic && cycle >= c.nextPeriod {
		c.endPeriod(cycle)
		c.nextPeriod = cycle + c.cfg.ThrottlePeriod
	}
	if cycle < c.issueBusyUntil {
		// Issue-stage occupancy from a previous instruction counts as
		// useful issue bandwidth, not a stall.
		if c.cpi != nil {
			c.cpi.Buckets[obs.BucketIssued]++
		}
		return nil
	}
	if c.issuable == 0 {
		if c.cpi != nil {
			c.cpi.Buckets[c.stallBucket()]++
		}
		return nil
	}
	// Switch-on-stall scheduling (Section II-B): keep issuing from the
	// current warp until its operands are not ready, then move on. The
	// resulting stagger between warps is what gives inter-thread
	// prefetches their timeliness. The scan walks issueMask from rr with
	// wraparound, in the same order as a full (rr+k)%n sweep.
	issued, err := c.scanIssue(cycle, c.rr, c.numWarps)
	if err != nil {
		return err
	}
	if !issued {
		if issued, err = c.scanIssue(cycle, 0, c.rr); err != nil {
			return err
		}
	}
	if c.cpi != nil {
		if issued {
			c.cpi.Buckets[obs.BucketIssued]++
		} else {
			c.cpi.Buckets[c.stallBucket()]++
		}
	}
	return nil
}

// scanIssue walks the set bits of issueMask over slots [from, to) in
// ascending order, trying to issue from each; it stops at the first
// success. Warps that fail to issue leave the mask until the next wake.
func (c *Core) scanIssue(cycle uint64, from, to int) (bool, error) {
	if from >= to {
		return false, nil
	}
	for wi := from >> 6; wi<<6 < to; wi++ {
		word := c.issueMask[wi]
		if base := wi << 6; base < from {
			word &= ^uint64(0) << (uint(from-base) & 63)
		}
		if rem := to - wi<<6; rem < 64 {
			word &= 1<<uint(rem) - 1
		}
		for word != 0 {
			slot := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			issued, err := c.tryIssue(cycle, slot)
			if err != nil {
				return false, err
			}
			if issued {
				if c.cfg.Scheduler == config.RoundRobin {
					c.rr = (slot + 1) % c.numWarps
				} else {
					c.rr = slot
				}
				return true, nil
			}
			if c.memStall {
				c.memStall = false
				c.stallMRQ++
			}
			c.stallWarp(slot)
		}
	}
	return false, nil
}

// NoEvent is the NextEvent result meaning "no self-scheduled work".
const NoEvent = ^uint64(0)

// NextEvent reports the next cycle at which the core can change state on
// its own, given no intervening memory event: the next throttle-period
// boundary, and — while any warp is still issue-eligible — the end of the
// current issue occupancy. NoEvent when every resident warp is done or
// stalled; only a fill or a freed MRQ slot can change that, and those are
// the memory system's events. The value is a conservative lower bound:
// callers re-evaluate after every visited cycle, so visiting a cycle
// where nothing happens is safe, skipping one where something would have
// happened is not.
func (c *Core) NextEvent(cycle uint64) uint64 {
	next := uint64(NoEvent)
	if c.periodic && c.nextPeriod < next {
		next = c.nextPeriod
	}
	if c.issuable > 0 {
		t := c.issueBusyUntil
		if t <= cycle {
			t = cycle + 1
		}
		if t < next {
			next = t
		}
	}
	return next
}

// tryIssue attempts to issue the slot's next instruction; it reports
// success.
func (c *Core) tryIssue(cycle uint64, slot int) (bool, error) {
	in := &c.prog.Instrs[c.wPC[slot]]
	// Scoreboard: sources must be ready.
	sb := c.pending[slot*c.numRegs : (slot+1)*c.numRegs]
	if sb[in.Src1] > 0 || sb[in.Src2] > 0 {
		return false, nil
	}
	// A load destination still being filled (software pipelining WAW)
	// also blocks.
	if in.Op == kernel.OpLoad && sb[in.Dst] > 0 {
		return false, nil
	}
	switch in.Op {
	case kernel.OpALU:
		c.issueOccupy(cycle, c.cfg.IssueCostALU)
		c.stats.ComputeInstrs++
	case kernel.OpIMul:
		c.issueOccupy(cycle, c.cfg.IssueCostIMul)
		c.stats.ComputeInstrs++
	case kernel.OpFDiv:
		c.issueOccupy(cycle, c.cfg.IssueCostFDiv)
		c.stats.ComputeInstrs++
	case kernel.OpLoopBack:
		c.issueOccupy(cycle, c.cfg.IssueCostALU)
	case kernel.OpLoad, kernel.OpStore:
		issued, err := c.issueMemory(cycle, slot, in)
		if err != nil {
			return false, err
		}
		if !issued {
			c.stats.IssueStallFullMRQ++
			c.memStall = true
			return false, nil
		}
		c.stats.MemInstrs++
	case kernel.OpPrefetch:
		c.issueSWPrefetch(cycle, slot, in)
		c.stats.PrefetchInstrs++
	}
	c.stats.Instructions++
	if in.Op != kernel.OpPrefetch {
		c.stats.ProgInstructions++
	}
	// Advance control flow.
	if in.Op == kernel.OpLoopBack && c.wRemTrips[slot] > 1 {
		c.wRemTrips[slot]--
		c.wIter[slot]++
		c.wPC[slot] = int32(in.Target)
	} else {
		c.wPC[slot]++
	}
	if int(c.wPC[slot]) >= len(c.prog.Instrs) {
		c.wDone[slot] = true
		c.warpDone(slot)
		c.maybeRetire(slot)
	}
	return true, nil
}

// demandCap is the MRQ occupancy demands and stores may reach; the
// remainder is reserved for prefetches (config.MRQPrefetchReserve).
func (c *Core) demandCap() int {
	return c.cfg.MRQSize - c.cfg.MRQPrefetchReserve
}

func (c *Core) issueOccupy(cycle uint64, cost int) {
	c.issueBusyUntil = cycle + uint64(cost)
}

// transactions returns the block addresses touched by in for the warp in
// slot, memoized across stalled retries of the same instruction.
func (c *Core) transactions(slot int, in *kernel.Instr) []uint64 {
	pc, iter := c.wPC[slot], c.wIter[slot]
	if c.txValid[slot] && c.txPC[slot] == pc && c.txIter[slot] == iter {
		return c.txs[slot]
	}
	c.txs[slot] = in.Mem.Transactions(int(c.wGwid[slot]), c.cfg.WarpSize, int(iter), c.cfg.BlockBytes, c.txs[slot][:0])
	c.txPC[slot], c.txIter[slot], c.txValid[slot] = pc, iter, true
	return c.txs[slot]
}

// issueMemory handles loads and stores; it reports false when the MRQ
// cannot absorb the access (the warp retries later). A non-nil error is
// an invariant violation.
func (c *Core) issueMemory(cycle uint64, slot int, in *kernel.Instr) (bool, error) {
	txs := c.transactions(slot, in)
	gwid, pc := int(c.wGwid[slot]), int(c.wPC[slot])
	if in.Op == kernel.OpStore {
		if c.perfectMem {
			c.issueOccupy(cycle, c.cfg.IssueCostMem)
			return true, nil
		}
		if c.MRQ.Outstanding()+len(txs) > c.demandCap() {
			return false, nil
		}
		c.issueOccupy(cycle, c.cfg.IssueCostMem)
		for _, addr := range txs {
			c.MRQ.Add(c.pool.Get(addr, c.cfg.BlockBytes, memreq.Writeback, c.id, gwid, pc, cycle))
		}
		return true, nil
	}
	// Demand load.
	if c.perfectMem {
		c.stats.DemandTransactions += uint64(len(txs))
		c.issueOccupy(cycle, c.cfg.IssueCostMem)
		return true, nil
	}
	// Capacity check. Fast paths: a totally full queue always stalls, and
	// a queue with room for the worst case always proceeds; only in
	// between do we need to count prefetch-cache hits.
	out := c.MRQ.Outstanding()
	if out+len(txs) > c.demandCap() {
		if out >= c.demandCap() || c.PFCache.Empty() {
			return false, nil
		}
		misses := 0
		for _, addr := range txs {
			if !c.PFCache.Contains(addr) {
				misses++
			}
		}
		if out+misses > c.demandCap() {
			return false, nil
		}
	}
	c.stats.DemandTransactions += uint64(len(txs))
	c.issueOccupy(cycle, c.cfg.IssueCostMem)
	cacheLive := !c.PFCache.Empty()
	for _, addr := range txs {
		if cacheLive && c.PFCache.Lookup(addr) {
			c.stats.PFCacheHitTransactions++
			if c.Filter != nil {
				if pc, ok := c.pfOrigin[addr]; ok {
					c.Filter.RecordUseful(pc)
					delete(c.pfOrigin, addr)
				}
			}
			continue
		}
		r := c.pool.Get(addr, c.cfg.BlockBytes, memreq.Demand, c.id, gwid, pc, cycle)
		r.Waiters = append(r.Waiters, memreq.Waiter{Warp: int32(slot), Reg: uint8(in.Dst)})
		c.startSpan(r, cycle)
		switch c.MRQ.Add(r) {
		case mrq.Accepted:
			r.StampSpan(memreq.SpanMRQEnqueue, cycle)
			c.pending[slot*c.numRegs+int(in.Dst)]++
			c.wOutstand[slot]++
		case mrq.Merged:
			c.pending[slot*c.numRegs+int(in.Dst)]++
			c.wOutstand[slot]++
			// MergeDemand copied the waiter into the surviving entry; this
			// request is dead and can be recycled.
			c.spans.Finish(r, cycle, memreq.TermMRQMerged)
			c.pool.Put(r)
		case mrq.Rejected:
			// Capacity was checked above; a reject can only happen if
			// another path raced, which cannot occur single-threaded.
			return false, &simerr.InvariantError{
				Component: "smcore", Name: "mrq-capacity-check", Cycle: cycle,
				Detail: fmt.Sprintf("core %d: MRQ rejected a capacity-checked demand at %#x (outstanding %d of %d)",
					c.id, addr, c.MRQ.Outstanding(), c.cfg.MRQSize),
			}
		}
	}
	// Train the hardware prefetcher on the warp access.
	if c.HWP != nil {
		c.trainHWP(cycle, slot, txs)
	}
	return true, nil
}

// trainHWP presents the access to the hardware prefetcher and issues the
// surviving candidates.
func (c *Core) trainHWP(cycle uint64, slot int, txs []uint64) {
	base := txs[0]
	for _, a := range txs[1:] {
		if a < base {
			base = a
		}
	}
	c.footBuf = c.footBuf[:0]
	for _, a := range txs {
		c.footBuf = append(c.footBuf, a-base)
	}
	c.candBuf = c.HWP.Observe(prefetch.Train{
		PC:        int(c.wPC[slot]),
		WarpID:    int(c.wGwid[slot]),
		Cycle:     cycle,
		Addr:      base,
		Footprint: c.footBuf,
	}, c.candBuf[:0])
	c.issuePrefetches(cycle, int(c.wGwid[slot]), int(c.wPC[slot]), c.candBuf)
}

// issueSWPrefetch executes a software prefetch instruction. The source
// tag distinguishes the stride-style and inter-warp (IP-style) software
// schemes so attribution can separate their outcomes.
func (c *Core) issueSWPrefetch(cycle uint64, slot int, in *kernel.Instr) {
	c.issueOccupy(cycle, c.cfg.IssueCostMem)
	if c.perfectMem {
		return
	}
	txs := c.transactions(slot, in)
	src := swpref.SourceOf(in.Mem)
	for _, addr := range txs {
		c.issuePrefetch(cycle, int(c.wGwid[slot]), int(c.wPC[slot]), src, addr)
	}
}

// issuePrefetches routes hardware-prefetcher candidates, each carrying
// the source tag of the mechanism that generated it, into issuePrefetch.
func (c *Core) issuePrefetches(cycle uint64, gwid, pc int, candidates []prefetch.Candidate) {
	for _, cand := range candidates {
		c.issuePrefetch(cycle, gwid, pc, cand.Source, cand.Addr)
	}
}

// issuePrefetch filters one candidate through the throttle engine, the
// pollution filter, the prefetch cache, and the MRQ, issuing it if it
// survives. Prefetches are non-binding: on any resource shortage they are
// dropped, never stalled. When attribution is attached, every candidate
// is counted as generated and given exactly one pre-issue drop outcome or
// an issue, under a provenance stamped with the generating source, the
// training PC, the triggering warp, and the throttle degree at issue.
func (c *Core) issuePrefetch(cycle uint64, gwid, pc int, src memreq.Source, addr uint64) {
	addr = memreq.BlockAlign(addr, c.cfg.BlockBytes)
	c.stats.PrefetchesGenerated++
	var prov memreq.Provenance
	if c.pf != nil || c.spans != nil {
		// Spans reuse the provenance plumbing for per-source latency
		// attribution, so the stamp is built whenever either consumer is
		// on; it never feeds back into the simulated machine.
		prov = memreq.Provenance{
			Source:  src,
			Degree:  c.Throt.StampDegree(),
			TrainPC: int32(pc),
			Warp:    int32(gwid),
		}
		c.pf.Generated(prov)
	}
	if c.Throt != nil && !c.Throt.Allow() {
		c.stats.DroppedThrottle++
		c.pf.Record(prov, memreq.OutDroppedThrottle)
		if c.trace != nil {
			c.trace.Emit(obs.EvPrefetchThrottled, cycle, c.id, addr, int64(c.Throt.Degree()))
		}
		return
	}
	if c.Filter != nil && !c.Filter.Allow(pc) {
		c.stats.DroppedByFilter++
		c.pf.Record(prov, memreq.OutDroppedFilter)
		if c.trace != nil {
			c.trace.Emit(obs.EvPrefetchFiltered, cycle, c.id, addr, int64(pc))
		}
		return
	}
	if c.PFCache.Contains(addr) {
		c.stats.DroppedInCache++
		c.pf.Record(prov, memreq.OutDroppedInCache)
		return
	}
	r := c.pool.Get(addr, c.cfg.BlockBytes, memreq.Prefetch, c.id, gwid, pc, cycle)
	r.Prov = prov
	c.startSpan(r, cycle)
	switch c.MRQ.Add(r) {
	case mrq.Accepted:
		r.StampSpan(memreq.SpanMRQEnqueue, cycle)
		c.stats.PrefetchesIssued++
		c.pf.Issued(prov)
		if c.trace != nil {
			c.trace.Emit(obs.EvPrefetchIssued, cycle, c.id, addr, int64(pc))
		}
	case mrq.Merged:
		c.stats.PrefetchMergedMRQ++
		r.Outcome = memreq.OutMergedMRQ
		c.pf.Record(prov, memreq.OutMergedMRQ)
		c.spans.Finish(r, cycle, memreq.TermMRQMerged)
		c.pool.Put(r)
	case mrq.Rejected:
		c.stats.DroppedQueueFull++
		r.Outcome = memreq.OutDroppedQueueFull
		c.pf.Record(prov, memreq.OutDroppedQueueFull)
		c.spans.Finish(r, cycle, memreq.TermMRQRejected)
		c.pool.Put(r)
	}
}

// endPeriod closes a throttling period: it hands the monitored metrics to
// the throttle engine (Table I) and to any feedback-directed prefetcher.
func (c *Core) endPeriod(cycle uint64) {
	cs := c.PFCache.Stats()
	ms := c.MRQ.Stats()
	useful := cs.FirstUses - c.lastCache.FirstUses
	m := throttle.Metrics{
		EarlyEvictions:   cs.EarlyEvictions - c.lastCache.EarlyEvictions,
		UsefulPrefetches: useful,
		IntraCoreMerges:  ms.Merges - c.lastMRQ.Merges,
		TotalRequests:    ms.TotalArrivals() - c.lastMRQ.TotalArrivals(),
		PrefetchesIssued: c.stats.PrefetchesIssued - c.lastIssued,
	}
	if c.Throt != nil {
		prev := c.Throt.Degree()
		deg := c.Throt.EndPeriod(m)
		if c.trace != nil {
			// Emitted every period, not just on change, so the Chrome
			// trace counter track renders a full step function.
			c.trace.Emit(obs.EvThrottleDegree, cycle, c.id, uint64(deg), int64(prev))
		}
	}
	if fp, ok := c.HWP.(prefetch.FeedbackPrefetcher); ok {
		fp.ApplyFeedback(prefetch.Feedback{
			Issued: m.PrefetchesIssued,
			Useful: useful,
			Late:   c.stats.LatePrefetches - c.lastLate,
		})
	}
	c.lastCache = cs
	c.lastMRQ = ms
	c.lastIssued = c.stats.PrefetchesIssued
	c.lastLate = c.stats.LatePrefetches
}
