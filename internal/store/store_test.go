package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

func testOptions(t *testing.T) core.Options {
	t.Helper()
	spec := workload.ByName("stream").Scaled(64)
	return core.Options{Workload: spec, Software: swpref.MTSWP, Throttle: true}
}

func testEntry(fp string) *Entry {
	return &Entry{
		Key:         "sw/stream/mt-swp/true",
		Fingerprint: fp,
		Result:      &core.Result{Benchmark: "stream", Cycles: 12345, CPI: 2.5},
		Artifacts:   map[string][]byte{"metrics": []byte(`{"run":"x"}` + "\n")},
	}
}

func mustFingerprint(t *testing.T, key string, o core.Options) string {
	t.Helper()
	fp, err := Fingerprint(key, o)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, "sw/stream/mt-swp/true", testOptions(t))
	if _, ok := s.Get(fp); ok {
		t.Fatal("Get hit on an empty store")
	}
	e := testEntry(fp)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp)
	if !ok {
		t.Fatal("Get missed a just-committed entry")
	}
	if got.Key != e.Key || got.Result.Cycles != 12345 || got.Result.CPI != 2.5 {
		t.Fatalf("roundtrip mangled the entry: %+v", got)
	}
	if string(got.Artifacts["metrics"]) != `{"run":"x"}`+"\n" {
		t.Fatalf("roundtrip mangled artifacts: %q", got.Artifacts)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Commits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 commit / 1 entry", st)
	}
}

func TestStoreReopenServesCommitted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, "k", testOptions(t))
	if err := s.Put(testEntry(fp)); err != nil {
		t.Fatal(err)
	}
	// A second Open (fresh process) rebuilds the index by scan.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d entries, want 1", s2.Len())
	}
	if _, ok := s2.Get(fp); !ok {
		t.Fatal("reopened store missed a committed entry")
	}
}

func TestStoreOpenSweepsTmp(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	// Simulate a process killed mid-commit: a torn tmp file.
	torn := filepath.Join(dir, tmpDir, "deadbeef.123.1.tmp")
	if err := os.WriteFile(torn, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("Open left the in-flight tmp file behind (stat err %v)", err)
	}
}

// corruptions maps a name to a mutation of a valid entry file's bytes;
// every one must be detected, quarantined, and served as a miss.
var corruptions = map[string]func([]byte) []byte{
	"truncated": func(b []byte) []byte { return b[:len(b)-7] },
	"bitflip": func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0x40
		return c
	},
	"garbage-header": func(b []byte) []byte { return append([]byte("not a store entry\n"), b...) },
	"version-skew": func(b []byte) []byte {
		return []byte(strings.Replace(string(b), header+" 1 ", header+" 999 ", 1))
	},
	"empty": func([]byte) []byte { return nil },
}

func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			fp := mustFingerprint(t, "k/"+name, testOptions(t))
			if err := s.Put(testEntry(fp)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, entriesDir, fp+entrySuffix)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if e, ok := s.Get(fp); ok {
				t.Fatalf("corrupt entry (%s) was served: %+v", name, e)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("stats = %+v, want 1 quarantined", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still under entries/ (stat err %v)", err)
			}
			if _, err := os.Stat(filepath.Join(dir, quarantineDir, fp+entrySuffix)); err != nil {
				t.Fatalf("corrupt entry not preserved under quarantine/: %v", err)
			}
			// The slot heals: a fresh commit is served again.
			if err := s.Put(testEntry(fp)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(fp); !ok {
				t.Fatal("re-committed entry missed after quarantine")
			}
		})
	}
}

func TestStoreGetNeedsArtifacts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, "k", testOptions(t))
	if err := s.Put(testEntry(fp)); err != nil { // has "metrics" only
		t.Fatal(err)
	}
	if _, ok := s.Get(fp, "metrics"); !ok {
		t.Fatal("Get missed despite the needed artifact being present")
	}
	if _, ok := s.Get(fp, "metrics", "pfreport"); ok {
		t.Fatal("Get hit despite a needed artifact being absent")
	}
	if _, ok := s.Get(fp); !ok {
		t.Fatal("stream-less Get should still hit")
	}
}

func TestStoreRejectsInvalidFingerprints(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"", "../../etc/passwd", "ABCDEF", "xyz"} {
		if _, ok := s.Get(fp); ok {
			t.Fatalf("Get(%q) hit", fp)
		}
		if err := s.Put(&Entry{Fingerprint: fp, Result: &core.Result{}}); err == nil {
			t.Fatalf("Put(%q) succeeded", fp)
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	o := testOptions(t)
	a := mustFingerprint(t, "k", o)
	b := mustFingerprint(t, "k", o)
	if a != b {
		t.Fatalf("same configuration fingerprinted differently: %s vs %s", a, b)
	}
	if len(a) != 64 || !validFingerprint(a) {
		t.Fatalf("fingerprint %q is not 64 lowercase-hex chars", a)
	}
	// Every result-affecting change must move the fingerprint.
	if got := mustFingerprint(t, "k2", o); got == a {
		t.Fatal("different keys share a fingerprint")
	}
	o2 := o
	o2.Throttle = false
	if got := mustFingerprint(t, "k", o2); got == a {
		t.Fatal("Throttle change did not move the fingerprint")
	}
	o3 := o
	o3.Config = config.Baseline()
	o3.Config.ThrottlePeriod = 777
	if got := mustFingerprint(t, "k", o3); got == a {
		t.Fatal("machine-config change did not move the fingerprint")
	}
	o4 := o
	o4.Workload = o.Workload.Scaled(2)
	if got := mustFingerprint(t, "k", o4); got == a {
		t.Fatal("workload scaling did not move the fingerprint")
	}
	// Pure wall-clock / observability knobs must NOT move it.
	o5 := o
	o5.Shards = 8
	o5.NoCycleSkip = true
	if got := mustFingerprint(t, "k", o5); got != a {
		t.Fatal("byte-identity-neutral knobs (Shards, NoCycleSkip) moved the fingerprint")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := testOptions(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				key := fmt.Sprintf("k/%d/%d", i, j%4)
				fp := mustFingerprint(t, key, o)
				e := testEntry(fp)
				e.Key = key
				if err := s.Put(e); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(fp); !ok {
					t.Errorf("missed %s after Put", key)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("store holds %d entries, want 32", s.Len())
	}
}

// failFS wraps the real FS and fails operations on demand, for
// commit-failure accounting tests (the full fault matrix lives in
// internal/faults).
type failFS struct {
	FS
	failWrite, failRename bool
}

func (f *failFS) WriteFile(path string, data []byte) error {
	if f.failWrite {
		return fmt.Errorf("injected: no space left on device")
	}
	return f.FS.WriteFile(path, data)
}

func (f *failFS) Rename(oldPath, newPath string) error {
	if f.failRename {
		return fmt.Errorf("injected: rename refused")
	}
	return f.FS.Rename(oldPath, newPath)
}

func TestStoreCommitFailureDegradesAndHeals(t *testing.T) {
	ffs := &failFS{FS: OSFS()}
	s, err := Open(t.TempDir(), WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, "k", testOptions(t))

	ffs.failWrite = true
	err = s.Put(testEntry(fp))
	if err == nil {
		t.Fatal("Put succeeded under an injected write fault")
	}
	if !simerr.IsTransient(err) {
		t.Fatalf("commit failure %v is not typed transient", err)
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after a failed commit")
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("failed commit's entry was served")
	}

	ffs.failWrite, ffs.failRename = false, true
	if err := s.Put(testEntry(fp)); !simerr.IsTransient(err) {
		t.Fatalf("rename failure %v is not typed transient", err)
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("rename-failed commit's entry was served")
	}

	ffs.failRename = false
	if err := s.Put(testEntry(fp)); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after a successful commit")
	}
	st := s.Stats()
	if st.CommitErrors != 2 || st.Commits != 1 || st.LastCommitError != "" {
		t.Fatalf("stats = %+v, want 2 commit errors, 1 commit, cleared last error", st)
	}
	if _, ok := s.Get(fp); !ok {
		t.Fatal("healed commit missed")
	}
}
