// Package store is the crash-safe, content-addressed on-disk result
// store behind sweep resumption and the warm-simulator-fleet direction:
// a versioned fingerprint of one run's full configuration maps to its
// Result plus the JSONL artifact bundle its observability streams
// produced, so repeated sweeps across processes — including a sweep
// resumed after a kill -9 — serve completed cells from disk and only
// simulate the remainder.
//
// Crash-safety model:
//
//   - Commits are atomic: an entry is serialised into tmp/, made
//     durable, then renamed into entries/. A crash at any point leaves
//     either no entry or a complete one; the in-flight tmp file is
//     swept away by the next Open.
//   - Every entry carries a format-version header and a SHA-256
//     payload checksum. A torn, truncated, bit-flipped, or
//     wrong-version entry is never served: Get quarantines it (moves
//     it into quarantine/ for post-mortem) and reports a miss, so the
//     caller transparently falls back to re-simulation.
//   - The index is the directory itself, rebuilt by scan at Open; no
//     separate manifest can go stale or corrupt.
//
// Commit failures (ENOSPC, rename faults) are typed transient
// (simerr.ErrTransient) so the harness's bounded-retry machinery
// applies; a store whose last commit failed reports itself degraded,
// which the debug server surfaces as HTTP 503 on /healthz.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/simerr"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

const (
	// FormatVersion is the on-disk entry format; entries written by a
	// different version are quarantined rather than misread.
	FormatVersion = 1
	// FingerprintVersion is folded into every fingerprint; bumping it
	// invalidates the whole store when the meaning of a fingerprint
	// changes (new Options fields that affect results, Result schema
	// changes).
	FingerprintVersion = 1

	// header is the magic leading every entry file.
	header = "mtpref-store"

	entriesDir    = "entries"
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
	entrySuffix   = ".entry"
)

// Entry is one stored run: the Result the harness' tables are built
// from plus the named JSONL artifact blobs its observability streams
// rendered (metrics/pfreport/cpistack), byte-for-byte what a live run
// would have appended to the shared output files.
type Entry struct {
	Key         string            `json:"key"`         // harness memo key, for humans
	Fingerprint string            `json:"fingerprint"` // content address (redundant, verified on load)
	Result      *core.Result      `json:"result"`
	Artifacts   map[string][]byte `json:"artifacts,omitempty"`
}

// Stats is a snapshot of the store's counters for /store and /healthz.
type Stats struct {
	Entries         int    `json:"entries"`
	Hits            int64  `json:"hits"`
	Misses          int64  `json:"misses"`
	Quarantined     int64  `json:"quarantined"`
	Commits         int64  `json:"commits"`
	CommitErrors    int64  `json:"commit_errors"`
	LastCommitError string `json:"last_commit_error,omitempty"`
	Degraded        bool   `json:"degraded"`
}

// Store is the on-disk result store. It is safe for concurrent use —
// the parallel harness commits and looks up from many worker
// goroutines — and may be shared with other processes: the directory
// is the source of truth, so entries committed by one process are
// visible to another's Get without coordination.
type Store struct {
	dir string
	fs  FS

	mu      sync.Mutex
	known   map[string]bool // fingerprints seen in entries/ (scan + commits)
	seq     int             // uniquifies tmp names within this process
	hits    int64
	misses  int64
	quar    int64
	commits int64
	cerrs   int64
	lastErr string // last commit failure; "" once a commit succeeds again
}

// Option customises Open.
type Option func(*Store)

// WithFS substitutes the filesystem implementation (chaos tests inject
// faults.FaultFS here).
func WithFS(fs FS) Option { return func(s *Store) { s.fs = fs } }

// Open opens (creating if necessary) the store rooted at dir, sweeps
// the tmp/ directory of in-flight commits a killed process left
// behind, and rebuilds the index by scanning entries/.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, fs: osFS{}, known: make(map[string]bool)}
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{entriesDir, tmpDir, quarantineDir} {
		if err := s.fs.MkdirAll(filepath.Join(dir, sub)); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// A crash loses at most the entries that were mid-commit: their tmp
	// files never reached entries/, so removing them is safe and keeps
	// tmp/ from accumulating garbage across crashes.
	tmps, err := s.fs.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, name := range tmps {
		_ = s.fs.Remove(filepath.Join(dir, tmpDir, name))
	}
	names, err := s.fs.ReadDir(filepath.Join(dir, entriesDir))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, name := range names {
		if fp, ok := strings.CutSuffix(name, entrySuffix); ok && validFingerprint(fp) {
			s.known[fp] = true
		}
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len reports how many entries the index knows about.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:         len(s.known),
		Hits:            s.hits,
		Misses:          s.misses,
		Quarantined:     s.quar,
		Commits:         s.commits,
		CommitErrors:    s.cerrs,
		LastCommitError: s.lastErr,
		Degraded:        s.lastErr != "",
	}
}

// Degraded reports whether the most recent commit failed (and no
// commit has succeeded since): the store is effectively read-only and
// /healthz serves 503 until a commit lands again.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr != ""
}

// Get looks up a fingerprint. need lists artifact names the caller
// cannot do without (the sink's enabled streams): an otherwise-valid
// entry lacking one is a miss — it stays on disk for consumers with
// fewer requirements — so a warm sweep never silently drops records
// from its shared output files.
//
// A corrupted entry (bad header, version skew, checksum or length
// mismatch, fingerprint mismatch, undecodable payload) is quarantined
// and reported as a miss: the caller re-simulates and re-commits, so
// corruption heals transparently and the bad bytes stay available
// under quarantine/ for inspection. Get never returns an error — every
// failure mode degenerates to a miss by design.
func (s *Store) Get(fp string, need ...string) (*Entry, bool) {
	if !validFingerprint(fp) {
		s.count(&s.misses)
		return nil, false
	}
	path := filepath.Join(s.dir, entriesDir, fp+entrySuffix)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.count(&s.misses)
			return nil, false
		}
		// Unreadable but present: treat like corruption so the sweep
		// proceeds on a fresh simulation instead of failing.
		s.quarantine(fp, path)
		return nil, false
	}
	e, err := decodeEntry(data)
	if err != nil || e.Fingerprint != fp || e.Result == nil {
		s.quarantine(fp, path)
		return nil, false
	}
	for _, name := range need {
		if _, ok := e.Artifacts[name]; !ok {
			s.count(&s.misses)
			return nil, false
		}
	}
	s.mu.Lock()
	s.hits++
	s.known[fp] = true // another process may have committed it
	s.mu.Unlock()
	return e, true
}

// Put commits an entry atomically: serialise into tmp/, make durable,
// rename into entries/. Failures are typed transient
// (simerr.ErrTransient) — the bounded-retry machinery applies — and
// mark the store degraded until a later commit succeeds.
func (s *Store) Put(e *Entry) error {
	if !validFingerprint(e.Fingerprint) {
		return fmt.Errorf("store: invalid fingerprint %q", e.Fingerprint)
	}
	data, err := encodeEntry(e)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", e.Key, err)
	}
	s.mu.Lock()
	s.seq++
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("%s.%d.%d.tmp", e.Fingerprint, os.Getpid(), s.seq))
	s.mu.Unlock()
	final := filepath.Join(s.dir, entriesDir, e.Fingerprint+entrySuffix)
	if err := s.fs.WriteFile(tmp, data); err != nil {
		_ = s.fs.Remove(tmp)
		return s.commitFailed("write", e.Key, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return s.commitFailed("rename", e.Key, err)
	}
	s.mu.Lock()
	s.commits++
	s.lastErr = ""
	s.known[e.Fingerprint] = true
	s.mu.Unlock()
	return nil
}

// commitFailed records a commit failure and wraps it transient.
func (s *Store) commitFailed(op, key string, err error) error {
	werr := simerr.Transient("store "+op, fmt.Errorf("%s: %w", key, err))
	s.mu.Lock()
	s.cerrs++
	s.lastErr = werr.Error()
	s.mu.Unlock()
	return werr
}

// quarantine moves a bad entry out of entries/ so it can never be
// served again, counting it; removal is the fallback when even the
// rename fails. The index forgets the fingerprint either way.
func (s *Store) quarantine(fp, path string) {
	if err := s.fs.Rename(path, filepath.Join(s.dir, quarantineDir, fp+entrySuffix)); err != nil {
		_ = s.fs.Remove(path)
	}
	s.mu.Lock()
	s.quar++
	s.misses++
	delete(s.known, fp)
	s.mu.Unlock()
}

func (s *Store) count(c *int64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// encodeEntry serialises an entry as a checksummed, versioned record:
//
//	mtpref-store <format-version> <sha256(payload)> <len(payload)>\n<payload JSON>
func encodeEntry(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d %s %d\n", header, FormatVersion, hex.EncodeToString(sum[:]), len(payload))
	b.Write(payload)
	return b.Bytes(), nil
}

// decodeEntry parses and verifies one entry file.
func decodeEntry(data []byte) (*Entry, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("store: no header line")
	}
	var magic, sumHex string
	var version, n int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %s %d", &magic, &version, &sumHex, &n); err != nil {
		return nil, fmt.Errorf("store: bad header: %w", err)
	}
	if magic != header {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("store: format version %d, want %d", version, FormatVersion)
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("store: payload length %d, header says %d (torn entry)", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	e := &Entry{}
	if err := json.Unmarshal(payload, e); err != nil {
		return nil, fmt.Errorf("store: payload decode: %w", err)
	}
	return e, nil
}

// validFingerprint accepts lowercase-hex content addresses only,
// keeping arbitrary strings out of filesystem paths.
func validFingerprint(fp string) bool {
	if fp == "" {
		return false
	}
	for _, r := range fp {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// fingerprintable is the canonical serialisation fingerprints hash:
// everything that determines a run's Result, in fixed field order.
// Shards, NoCycleSkip, Obs, and Ctx are deliberately absent — the
// byte-identity machinery guarantees they cannot change results — and
// the Hardware factory is represented by the memo key, which encodes
// the prefetcher's name and parameters by construction.
type fingerprintable struct {
	Version         int            `json:"version"`
	Key             string         `json:"key"`
	Config          *config.Config `json:"config"`
	Workload        *workload.Spec `json:"workload"`
	Software        swpref.Mode    `json:"software"`
	SoftwareOptions swpref.Options `json:"software_options"`
	Hardware        bool           `json:"hardware"`
	Throttle        bool           `json:"throttle"`
	PollutionFilter bool           `json:"pollution_filter"`
	PerfectMemory   bool           `json:"perfect_memory"`
	MaxCycles       uint64         `json:"max_cycles"`
	WatchdogWindow  uint64         `json:"watchdog_window"`
	NoWatchdog      bool           `json:"no_watchdog"`
	Checks          bool           `json:"checks"`
	CheckEvery      uint64         `json:"check_every"`
}

// Fingerprint computes the content address of one run configuration:
// SHA-256 over the versioned canonical serialisation of the memo key,
// the machine config, the (scaled) workload — including its full
// kernel program, so a kernel change invalidates stale entries — and
// every Options field that can influence the Result. It is stable
// across processes and runs; two configurations collide only if they
// provably produce the same Result.
func Fingerprint(key string, o core.Options) (string, error) {
	cfg := o.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	b, err := json.Marshal(fingerprintable{
		Version:         FingerprintVersion,
		Key:             key,
		Config:          cfg,
		Workload:        o.Workload,
		Software:        o.Software,
		SoftwareOptions: o.SoftwareOptions,
		Hardware:        o.Hardware != nil,
		Throttle:        o.Throttle,
		PollutionFilter: o.PollutionFilter,
		PerfectMemory:   o.PerfectMemory,
		MaxCycles:       o.MaxCycles,
		WatchdogWindow:  o.WatchdogWindow,
		NoWatchdog:      o.NoWatchdog,
		Checks:          o.Checks,
		CheckEvery:      o.CheckEvery,
	})
	if err != nil {
		return "", fmt.Errorf("store: fingerprint %s: %w", key, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
