package store

import "os"

// FS is the narrow filesystem seam the store runs on. Production code
// uses the osFS implementation below; chaos tests substitute
// faults.FaultFS to inject torn writes, ENOSPC, read corruption, and
// rename failures without touching a real disk's failure modes.
//
// The store's crash-safety argument leans on two properties every
// implementation must preserve:
//
//   - WriteFile makes the data durable before returning (a crash after
//     a successful WriteFile cannot tear the file), and
//   - Rename is atomic: readers see either the old name's absence or
//     the complete new file, never an intermediate state.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists the names (not paths) of a directory's entries.
	ReadDir(path string) ([]string, error)
	// ReadFile returns a file's full contents.
	ReadFile(path string) ([]byte, error)
	// WriteFile creates (or truncates) path with data and syncs it.
	WriteFile(path string, data []byte) error
	// Rename atomically moves oldPath to newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes a file.
	Remove(path string) error
}

// osFS is the real-filesystem implementation of FS.
type osFS struct{}

// OSFS returns the operating-system-backed FS the store uses by
// default; exported so fault-injecting wrappers can delegate to it.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile writes data and fsyncs before closing: the commit protocol
// renames this file into place, and rename-before-durable would let a
// crash publish a torn entry under the final name.
func (osFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }
