// Package addrmap provides a pre-sized open-addressing hash table keyed
// by block address, shared by the simulator's hot paths (the per-core
// MRQ and the per-channel DRAM merge index). It replaces the built-in
// map where the entry count is bounded by a structural capacity: one
// allocation at build time (load factor <= 1/4, no rehashing), linear
// probing with a Fibonacci multiplicative hash, and backward-shift
// deletion so no tombstones accumulate.
package addrmap

// Table maps uint64 keys to V. Build with New; the zero value is not
// usable.
type Table[V any] struct {
	keys  []uint64
	vals  []V
	used  []bool
	mask  uint64
	shift uint
	n     int
}

// New sizes the table for at most capacity live entries.
func New[V any](capacity int) *Table[V] {
	size := 8
	for size < 4*capacity {
		size *= 2
	}
	shift := uint(64)
	for s := size; s > 1; s /= 2 {
		shift--
	}
	return &Table[V]{
		keys:  make([]uint64, size),
		vals:  make([]V, size),
		used:  make([]bool, size),
		mask:  uint64(size - 1),
		shift: shift,
	}
}

// home is the preferred slot for a key (Fibonacci multiplicative hash;
// block-aligned addresses differ only above the block-offset bits, which
// the multiply spreads across the word).
func (t *Table[V]) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

// Len reports the number of live entries.
func (t *Table[V]) Len() int { return t.n }

// Get returns the value for key and whether it was present.
func (t *Table[V]) Get(key uint64) (V, bool) {
	for i := t.home(key); t.used[i]; i = (i + 1) & t.mask {
		if t.keys[i] == key {
			return t.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// Put inserts key -> val. The caller ensures key is absent and the entry
// count stays within the sized capacity.
func (t *Table[V]) Put(key uint64, val V) {
	i := t.home(key)
	for t.used[i] {
		i = (i + 1) & t.mask
	}
	t.keys[i], t.vals[i], t.used[i] = key, val, true
	t.n++
}

// Del removes key, returning its value and whether it was present.
// Removal backward-shifts the following probe chain so lookups never
// need tombstones.
func (t *Table[V]) Del(key uint64) (V, bool) {
	var zero V
	i := t.home(key)
	for {
		if !t.used[i] {
			return zero, false
		}
		if t.keys[i] == key {
			break
		}
		i = (i + 1) & t.mask
	}
	v := t.vals[i]
	t.n--
	// Backward shift (Knuth's algorithm R): scan the cluster after the
	// hole; a key may fill the hole only when that does not place it
	// cyclically before its home slot (i in [home, j)), and the scan
	// continues past keys that cannot move, because a later displaced
	// key may still probe through the hole.
	j := i
	for {
		j = (j + 1) & t.mask
		if !t.used[j] {
			t.keys[i], t.vals[i], t.used[i] = 0, zero, false
			return v, true
		}
		if r := t.home(t.keys[j]); (i-r)&t.mask < (j-r)&t.mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
}

// Each calls f for every live entry, in unspecified order.
func (t *Table[V]) Each(f func(V)) {
	for i, u := range t.used {
		if u {
			f(t.vals[i])
		}
	}
}
