package addrmap

import (
	"math/rand"
	"testing"
)

// TestTableMatchesMap drives the open-addressing table and a plain map
// through the same random insert/delete/lookup sequence and demands
// identical behaviour. Addresses collide deliberately (small
// block-aligned universe) so probe chains and backward-shift deletion
// are exercised.
func TestTableMatchesMap(t *testing.T) {
	const capacity = 64
	rng := rand.New(rand.NewSource(1))
	tab := New[int](capacity)
	ref := make(map[uint64]int)
	addr := func() uint64 { return uint64(rng.Intn(512)) * 64 }
	for op := 0; op < 200_000; op++ {
		a := addr()
		switch rng.Intn(3) {
		case 0: // insert (respecting capacity, like the MRQ does)
			if _, ok := ref[a]; ok || len(ref) >= capacity {
				continue
			}
			ref[a] = op
			tab.Put(a, op)
		case 1: // delete
			want, wantOK := ref[a]
			delete(ref, a)
			if got, ok := tab.Del(a); ok != wantOK || got != want {
				t.Fatalf("op %d: Del(%#x) = %d,%v, want %d,%v", op, a, got, ok, want, wantOK)
			}
		case 2: // lookup
			want, wantOK := ref[a]
			if got, ok := tab.Get(a); ok != wantOK || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v, want %d,%v", op, a, got, ok, want, wantOK)
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tab.Len(), len(ref))
		}
	}
	// Full sweep at the end: every surviving value is visited once.
	seen := 0
	tab.Each(func(v int) { seen++ })
	if seen != len(ref) {
		t.Fatalf("Each visited %d entries, want %d", seen, len(ref))
	}
}

// TestTableClusterDeletion pins the backward-shift edge case: deleting
// the head of a probe cluster must keep later displaced keys reachable,
// including keys that sit at their home slot between two displaced ones.
func TestTableClusterDeletion(t *testing.T) {
	tab := New[uint64](8)
	// Find three keys where b lands at its home slot one past a's home,
	// and c collides with a (so c probes past b's slot).
	var a, b, c uint64
	for k := uint64(0); ; k += 64 {
		if a == 0 && k > 0 {
			a = k
			continue
		}
		if a != 0 && b == 0 && tab.home(k) == (tab.home(a)+1)&tab.mask {
			b = k
			continue
		}
		if a != 0 && b != 0 && k != a && tab.home(k) == tab.home(a) {
			c = k
			break
		}
	}
	for _, k := range []uint64{a, b, c} {
		tab.Put(k, k)
	}
	if got, ok := tab.Del(a); !ok || got != a {
		t.Fatalf("Del(a) = %d,%v, want %d,true", got, ok, a)
	}
	if got, ok := tab.Get(b); !ok || got != b {
		t.Fatalf("Get(b) after cluster deletion = %d,%v, want %d,true", got, ok, b)
	}
	if got, ok := tab.Get(c); !ok || got != c {
		t.Fatalf("Get(c) after cluster deletion = %d,%v, want %d,true (displaced key stranded)", got, ok, c)
	}
}
