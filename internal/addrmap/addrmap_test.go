package addrmap

import (
	"math/rand"
	"testing"
)

// TestTableMatchesMap drives the open-addressing table and a plain map
// through the same random insert/delete/lookup sequence and demands
// identical behaviour. Addresses collide deliberately (small
// block-aligned universe) so probe chains and backward-shift deletion
// are exercised.
func TestTableMatchesMap(t *testing.T) {
	const capacity = 64
	rng := rand.New(rand.NewSource(1))
	tab := New[int](capacity)
	ref := make(map[uint64]int)
	addr := func() uint64 { return uint64(rng.Intn(512)) * 64 }
	for op := 0; op < 200_000; op++ {
		a := addr()
		switch rng.Intn(3) {
		case 0: // insert (respecting capacity, like the MRQ does)
			if _, ok := ref[a]; ok || len(ref) >= capacity {
				continue
			}
			ref[a] = op
			tab.Put(a, op)
		case 1: // delete
			want, wantOK := ref[a]
			delete(ref, a)
			if got, ok := tab.Del(a); ok != wantOK || got != want {
				t.Fatalf("op %d: Del(%#x) = %d,%v, want %d,%v", op, a, got, ok, want, wantOK)
			}
		case 2: // lookup
			want, wantOK := ref[a]
			if got, ok := tab.Get(a); ok != wantOK || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v, want %d,%v", op, a, got, ok, want, wantOK)
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tab.Len(), len(ref))
		}
	}
	// Full sweep at the end: every surviving value is visited once.
	seen := 0
	tab.Each(func(v int) { seen++ })
	if seen != len(ref) {
		t.Fatalf("Each visited %d entries, want %d", seen, len(ref))
	}
}

// TestTableClusterDeletion pins the backward-shift edge case: deleting
// the head of a probe cluster must keep later displaced keys reachable,
// including keys that sit at their home slot between two displaced ones.
func TestTableClusterDeletion(t *testing.T) {
	tab := New[uint64](8)
	// Find three keys where b lands at its home slot one past a's home,
	// and c collides with a (so c probes past b's slot).
	var a, b, c uint64
	for k := uint64(0); ; k += 64 {
		if a == 0 && k > 0 {
			a = k
			continue
		}
		if a != 0 && b == 0 && tab.home(k) == (tab.home(a)+1)&tab.mask {
			b = k
			continue
		}
		if a != 0 && b != 0 && k != a && tab.home(k) == tab.home(a) {
			c = k
			break
		}
	}
	for _, k := range []uint64{a, b, c} {
		tab.Put(k, k)
	}
	if got, ok := tab.Del(a); !ok || got != a {
		t.Fatalf("Del(a) = %d,%v, want %d,true", got, ok, a)
	}
	if got, ok := tab.Get(b); !ok || got != b {
		t.Fatalf("Get(b) after cluster deletion = %d,%v, want %d,true", got, ok, b)
	}
	if got, ok := tab.Get(c); !ok || got != c {
		t.Fatalf("Get(c) after cluster deletion = %d,%v, want %d,true (displaced key stranded)", got, ok, c)
	}
}

// TestTableInterleavedIterateOracle is the churn-pattern property test:
// the simulator's queues now recycle entries through ring buffers, so
// the merge indexes see sustained FIFO-like insert/delete churn with
// lookups and iteration interleaved throughout — not only at the end of
// a run. The oracle check runs Each mid-sequence and demands the visited
// multiset match the map exactly every time.
func TestTableInterleavedIterateOracle(t *testing.T) {
	const capacity = 48
	rng := rand.New(rand.NewSource(23))
	tab := New[int](capacity)
	ref := make(map[uint64]int)
	var fifo []uint64 // insertion order, for ring-buffer-like retirement
	addr := func() uint64 { return uint64(rng.Intn(256)) * 64 }
	for op := 0; op < 100_000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert fresh key
			a := addr()
			if _, ok := ref[a]; ok || len(ref) >= capacity {
				continue
			}
			ref[a] = op
			tab.Put(a, op)
			fifo = append(fifo, a)
		case r < 7: // retire the oldest entry, like a drained queue
			if len(fifo) == 0 {
				continue
			}
			a := fifo[0]
			fifo = fifo[1:]
			want := ref[a]
			delete(ref, a)
			if got, ok := tab.Del(a); !ok || got != want {
				t.Fatalf("op %d: Del(%#x) = %d,%v, want %d,true", op, a, got, ok, want)
			}
		case r < 9: // random lookup
			a := addr()
			want, wantOK := ref[a]
			if got, ok := tab.Get(a); ok != wantOK || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v, want %d,%v", op, a, got, ok, want, wantOK)
			}
		default: // iterate mid-churn and compare the value multiset
			seen := make(map[int]int)
			tab.Each(func(v int) { seen[v]++ })
			if len(seen) != len(ref) {
				t.Fatalf("op %d: Each visited %d distinct values, want %d", op, len(seen), len(ref))
			}
			for _, v := range ref {
				if seen[v] != 1 {
					t.Fatalf("op %d: Each visited value %d %d times, want once", op, v, seen[v])
				}
			}
		}
	}
}

// TestTableWraparoundBackwardShift pins backward-shift deletion where
// the probe cluster crosses the end of the backing array: keys homed in
// the table's last slots probe into slot 0 and beyond, and the cyclic
// distance comparison in Del must keep every displaced key reachable
// when entries retire in any order.
func TestTableWraparoundBackwardShift(t *testing.T) {
	tab := New[uint64](8) // size 32
	size := tab.mask + 1
	// Collect block-aligned keys homed in the final two slots, enough to
	// build a cluster spanning the wrap boundary.
	var tail []uint64
	for k := uint64(64); len(tail) < 5; k += 64 {
		if h := tab.home(k); h == size-1 || h == size-2 {
			tail = append(tail, k)
		}
	}
	// Delete each choice of victim first, then verify every survivor.
	for victim := range tail {
		tab := New[uint64](8)
		for _, k := range tail {
			tab.Put(k, k)
		}
		if got, ok := tab.Del(tail[victim]); !ok || got != tail[victim] {
			t.Fatalf("victim %d: Del = %d,%v, want %d,true", victim, got, ok, tail[victim])
		}
		for i, k := range tail {
			if i == victim {
				if _, ok := tab.Get(k); ok {
					t.Fatalf("victim %d still present after Del", victim)
				}
				continue
			}
			if got, ok := tab.Get(k); !ok || got != k {
				t.Fatalf("victim %d: survivor %#x unreachable after wraparound shift (= %d,%v)", victim, k, got, ok)
			}
		}
		if tab.Len() != len(tail)-1 {
			t.Fatalf("victim %d: Len = %d, want %d", victim, tab.Len(), len(tail)-1)
		}
	}
}
