package memreq

import "testing"

// TestPoolRecycleClearsAttribution: a recycled Request must not leak the
// previous lifecycle's prefetch state — provenance, terminal outcome,
// merge flags, or waiters. A stale WasPrefetch would misclassify a demand
// fill; stale Prov would charge a demand's behaviour to a prefetcher.
func TestPoolRecycleClearsAttribution(t *testing.T) {
	p := NewPool()
	r := p.Get(0x1040, 64, Prefetch, 1, 2, 3, 10)
	r.Prov = Provenance{Source: SrcGS, Degree: 4, TrainPC: 7, Warp: 9}
	r.Outcome = OutLate
	r.DemandMerged = true
	r.Kind = Demand // merged demand upgraded the kind
	r.Waiters = append(r.Waiters, Waiter{Warp: 5, Reg: 2})
	p.Put(r)

	r2 := p.Get(0x2080, 64, Demand, 0, 1, 8, 20)
	if r2 != r {
		t.Fatal("pool did not recycle the request")
	}
	if r2.WasPrefetch {
		t.Error("recycled demand leaked WasPrefetch")
	}
	if r2.DemandMerged {
		t.Error("recycled request leaked DemandMerged")
	}
	if r2.Prov != (Provenance{}) {
		t.Errorf("recycled request leaked provenance %+v", r2.Prov)
	}
	if r2.Outcome != OutNone {
		t.Errorf("recycled request leaked outcome %v", r2.Outcome)
	}
	if len(r2.Waiters) != 0 {
		t.Errorf("recycled request leaked %d waiters", len(r2.Waiters))
	}
	if r2.Addr != 0x2080 || r2.Kind != Demand || r2.CoreID != 0 || r2.WarpID != 1 ||
		r2.PC != 8 || r2.IssueCycle != 20 {
		t.Errorf("recycled request fields wrong: %+v", r2)
	}

	// The prefetch direction too: a recycled prefetch must start with
	// fresh attribution, not the previous owner's.
	p.Put(r2)
	r3 := p.Get(0x3000, 64, Prefetch, 2, 3, 4, 30)
	if !r3.WasPrefetch || r3.Prov != (Provenance{}) || r3.Outcome != OutNone {
		t.Errorf("recycled prefetch not reset: %+v", r3)
	}
}

// TestPoolRecycleClearsSpan: a recycled Request must not carry the
// previous lifecycle's span record. A leaked span would stamp a fresh
// (unsampled) request into a finished trace, double-finishing it and
// corrupting the waterfall — the span analogue of the attribution leak
// above.
func TestPoolRecycleClearsSpan(t *testing.T) {
	p := NewPool()
	r := p.Get(0x1040, 64, Demand, 1, 2, 3, 10)
	r.Span = &Span{ID: 42}
	r.Span.StampAt(SpanIssue, 10)
	r.Span.StampAt(SpanMRQEnqueue, 10)
	r.SpanFlag(FlagRowHit)
	r.Span.Term = TermFill
	p.Put(r)

	r2 := p.Get(0x2080, 64, Demand, 0, 1, 8, 20)
	if r2 != r {
		t.Fatal("pool did not recycle the request")
	}
	if r2.Span != nil {
		t.Errorf("recycled request leaked span %+v", r2.Span)
	}
	// StampSpan / SpanFlag on the recycled (unsampled) request must be
	// no-ops, not resurrect the old span.
	r2.StampSpan(SpanFill, 30)
	r2.SpanFlag(FlagL2Hit)
	if r2.Span != nil {
		t.Error("stamping an unsampled request created a span")
	}
}
