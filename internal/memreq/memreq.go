// Package memreq defines the memory transaction type that flows from the
// cores through the interconnect into the DRAM controllers and back.
//
// A Request corresponds to one cache-block-sized memory transaction. Warp
// memory instructions are coalesced into one Request per distinct block
// (see internal/kernel); requests may then merge inside the core's memory
// request queue (intra-core merging, Fig. 2a of the paper) or inside a
// DRAM controller's request buffer (inter-core merging, Fig. 2b).
package memreq

import "fmt"

// Kind classifies a memory transaction.
type Kind uint8

const (
	// Demand is a load the program needs; a waiting warp blocks on it at
	// its first dependent use.
	Demand Kind = iota
	// Prefetch is a speculative fill of the prefetch cache, generated
	// either by a software prefetch instruction or a hardware prefetcher.
	Prefetch
	// Writeback is a store leaving the core; nothing waits for it.
	Writeback
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Demand:
		return "demand"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Source identifies which mechanism generated a prefetch: one of the
// MT-HWP tables (Sections V, VIII-B of the paper), a software transform
// (Section III), or one of the baseline hardware prefetchers the paper
// compares against (Section VII-C).
type Source uint8

const (
	// SrcNone marks a request that is not an attributed prefetch
	// (demands, writebacks, or attribution disabled).
	SrcNone Source = iota
	// SrcPWS is the MT-HWP per-warp stride table.
	SrcPWS
	// SrcGS is the MT-HWP global stride table (promoted PWS entries).
	SrcGS
	// SrcHWIP is the MT-HWP inter-thread (IP) table.
	SrcHWIP
	// SrcSWStride is the software many-thread aware stride transform.
	SrcSWStride
	// SrcSWIP is the software inter-thread prefetching transform.
	SrcSWIP
	// SrcGHB is the GHB AC/DC (or PC/DC) prefetcher.
	SrcGHB
	// SrcStream is the stream prefetcher.
	SrcStream
	// SrcStridePC is the per-PC stride prefetcher (with or without
	// throttling).
	SrcStridePC
	// SrcStrideRPT is the region-keyed stride reference prediction table.
	SrcStrideRPT

	// NumSources bounds the enum for dense per-source aggregation.
	NumSources
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SrcNone:
		return "none"
	case SrcPWS:
		return "pws"
	case SrcGS:
		return "gs"
	case SrcHWIP:
		return "hw-ip"
	case SrcSWStride:
		return "sw-stride"
	case SrcSWIP:
		return "sw-ip"
	case SrcGHB:
		return "ghb"
	case SrcStream:
		return "stream"
	case SrcStridePC:
		return "stride-pc"
	case SrcStrideRPT:
		return "stride-rpt"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// ParseSource maps a Source.String() value back to the enum, for tools
// that post-process attribution JSONL (cmd/pfstat). Unknown names report
// false.
func ParseSource(name string) (Source, bool) {
	for s := SrcNone; s < NumSources; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return SrcNone, false
}

// Outcome is the terminal fate of a generated prefetch candidate. Every
// candidate ends in exactly one outcome; the pre-issue drops and the
// post-issue fates partition the generated count (the conservation
// invariant checked under core.Options.Checks).
type Outcome uint8

const (
	// OutNone means the fate is not yet decided (or never tracked).
	OutNone Outcome = iota
	// OutDroppedThrottle: rejected by the throttle engine before issue.
	OutDroppedThrottle
	// OutDroppedFilter: rejected by the pollution filter before issue.
	OutDroppedFilter
	// OutDroppedInCache: the block was already in the prefetch cache.
	OutDroppedInCache
	// OutDroppedQueueFull: the MRQ was full; the candidate was abandoned.
	OutDroppedQueueFull
	// OutMergedMRQ: folded into an outstanding entry for the same block.
	OutMergedMRQ
	// OutLate: a demand merged into the in-flight prefetch (Eq. 6's
	// lateness numerator) — the fill was useful but not timely.
	OutLate
	// OutRedundant: the fill found the block already resident.
	OutRedundant
	// OutUseful: the filled block served at least one demand lookup.
	OutUseful
	// OutEarlyEvicted: evicted (or invalidated) before any use — Eq. 5's
	// early-eviction numerator, the pollution signal.
	OutEarlyEvicted
	// OutUnusedAtDrain: still resident and unused when the run ended.
	OutUnusedAtDrain

	// NumOutcomes bounds the enum for dense aggregation.
	NumOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutNone:
		return "none"
	case OutDroppedThrottle:
		return "dropped-throttle"
	case OutDroppedFilter:
		return "dropped-filter"
	case OutDroppedInCache:
		return "dropped-in-cache"
	case OutDroppedQueueFull:
		return "dropped-queue-full"
	case OutMergedMRQ:
		return "merged-mrq"
	case OutLate:
		return "late"
	case OutRedundant:
		return "redundant"
	case OutUseful:
		return "useful"
	case OutEarlyEvicted:
		return "early-evicted"
	case OutUnusedAtDrain:
		return "unused-at-drain"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Provenance records where a prefetch came from: the mechanism, the PC
// whose training produced it, the warp whose access triggered it, and the
// throttle degree in force when it was issued. The struct is compact so
// stamping it on every Request stays cheap.
type Provenance struct {
	Source  Source
	Degree  uint8 // throttle degree at issue (0 when unthrottled)
	TrainPC int32 // instruction index that trained the prefetcher
	Warp    int32 // global warp id whose access triggered generation
}

// Waiter identifies a warp register waiting on a demand fill. It is
// kept to one word so the Waiters lists the hot fill path walks stay
// dense.
type Waiter struct {
	Warp int32 // core-local warp slot index
	Reg  uint8
}

// Request is one block transaction in flight.
type Request struct {
	Addr   uint64 // block-aligned address
	Kind   Kind   // effective kind; a demand merging into a prefetch upgrades it
	CoreID int
	WarpID int // global warp id that triggered the request
	PC     int // instruction index that triggered it (prefetcher training key)

	IssueCycle uint64 // cycle the request entered the MRQ

	// WasPrefetch records that the request started life as a prefetch,
	// even if a demand later merged into it (a "late prefetch").
	WasPrefetch bool
	// DemandMerged is set when a demand merged into an in-flight
	// prefetch; used for the lateness statistic.
	DemandMerged bool

	// Prov attributes a prefetch to the mechanism that generated it. It
	// is the zero value for demands, writebacks, and prefetches issued
	// with attribution disabled.
	Prov Provenance
	// Outcome is the terminal classification of a tracked prefetch,
	// OutNone until (and unless) attribution decides it.
	Outcome Outcome

	// Span is the lifecycle trace record for a sampled request, nil for
	// the (vast) unsampled majority. Pool.Get's struct-literal reset
	// clears it on recycle.
	Span *Span

	// Waiters are warps to wake when the fill returns.
	Waiters []Waiter
}

// BlockAlign truncates addr to the block boundary.
func BlockAlign(addr uint64, blockBytes int) uint64 {
	return addr &^ (uint64(blockBytes) - 1)
}

// New returns a block-aligned request.
func New(addr uint64, blockBytes int, kind Kind, coreID, warpID, pc int, cycle uint64) *Request {
	return &Request{
		Addr:        BlockAlign(addr, blockBytes),
		Kind:        kind,
		CoreID:      coreID,
		WarpID:      warpID,
		PC:          pc,
		IssueCycle:  cycle,
		WasPrefetch: kind == Prefetch,
	}
}

// MergeDemand upgrades r after a demand request to the same block merged
// into it, attaching the demand's waiters and recording lateness when r
// was a prefetch. Growth skips append's small-capacity ladder and jumps
// straight to a merge-sized backing array: requests recycle through the
// Pool for a whole run, so one right-sized allocation per request
// replaces a 1-2-4-8 reallocation sequence.
func (r *Request) MergeDemand(waiters []Waiter) {
	if r.Kind == Prefetch {
		r.DemandMerged = true
		r.Kind = Demand
	}
	if need := len(r.Waiters) + len(waiters); need > cap(r.Waiters) {
		c := cap(r.Waiters) * 2
		if c < mergeWaiterCap {
			c = mergeWaiterCap
		}
		for c < need {
			c *= 2
		}
		nw := make([]Waiter, len(r.Waiters), c)
		copy(nw, r.Waiters)
		r.Waiters = nw
	}
	r.Waiters = append(r.Waiters, waiters...)
}

// mergeWaiterCap is the minimum Waiters capacity allocated on the first
// merge-driven growth; merging entries tend to keep accumulating waiters.
const mergeWaiterCap = 16
