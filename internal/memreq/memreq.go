// Package memreq defines the memory transaction type that flows from the
// cores through the interconnect into the DRAM controllers and back.
//
// A Request corresponds to one cache-block-sized memory transaction. Warp
// memory instructions are coalesced into one Request per distinct block
// (see internal/kernel); requests may then merge inside the core's memory
// request queue (intra-core merging, Fig. 2a of the paper) or inside a
// DRAM controller's request buffer (inter-core merging, Fig. 2b).
package memreq

import "fmt"

// Kind classifies a memory transaction.
type Kind uint8

const (
	// Demand is a load the program needs; a waiting warp blocks on it at
	// its first dependent use.
	Demand Kind = iota
	// Prefetch is a speculative fill of the prefetch cache, generated
	// either by a software prefetch instruction or a hardware prefetcher.
	Prefetch
	// Writeback is a store leaving the core; nothing waits for it.
	Writeback
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Demand:
		return "demand"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Waiter identifies a warp register waiting on a demand fill.
type Waiter struct {
	Warp int // core-local warp slot index
	Reg  uint8
}

// Request is one block transaction in flight.
type Request struct {
	Addr   uint64 // block-aligned address
	Kind   Kind   // effective kind; a demand merging into a prefetch upgrades it
	CoreID int
	WarpID int // global warp id that triggered the request
	PC     int // instruction index that triggered it (prefetcher training key)

	IssueCycle uint64 // cycle the request entered the MRQ

	// WasPrefetch records that the request started life as a prefetch,
	// even if a demand later merged into it (a "late prefetch").
	WasPrefetch bool
	// DemandMerged is set when a demand merged into an in-flight
	// prefetch; used for the lateness statistic.
	DemandMerged bool

	// Waiters are warps to wake when the fill returns.
	Waiters []Waiter
}

// BlockAlign truncates addr to the block boundary.
func BlockAlign(addr uint64, blockBytes int) uint64 {
	return addr &^ (uint64(blockBytes) - 1)
}

// New returns a block-aligned request.
func New(addr uint64, blockBytes int, kind Kind, coreID, warpID, pc int, cycle uint64) *Request {
	return &Request{
		Addr:        BlockAlign(addr, blockBytes),
		Kind:        kind,
		CoreID:      coreID,
		WarpID:      warpID,
		PC:          pc,
		IssueCycle:  cycle,
		WasPrefetch: kind == Prefetch,
	}
}

// MergeDemand upgrades r after a demand request to the same block merged
// into it, attaching the demand's waiters and recording lateness when r
// was a prefetch.
func (r *Request) MergeDemand(waiters []Waiter) {
	if r.Kind == Prefetch {
		r.DemandMerged = true
		r.Kind = Demand
	}
	r.Waiters = append(r.Waiters, waiters...)
}
