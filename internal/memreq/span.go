package memreq

// SpanSite is one lifecycle point a sampled request passes on its way
// from SM issue to fill. The enum order IS the chronological order of a
// request that reaches DRAM and returns, which lets validation walk the
// stamp array once and check monotonicity.
type SpanSite uint8

const (
	SpanIssue          SpanSite = iota // smcore creates the request
	SpanMRQEnqueue                     // accepted into the core's MRQ
	SpanMRQDequeue                     // popped from the MRQ send queue
	SpanNoCReqInject                   // request injected into the NoC
	SpanNoCReqDeliver                  // request delivered at the memory side
	SpanDRAMArrive                     // accepted into a DRAM channel queue (or merged)
	SpanDRAMSched                      // picked by the FR-FCFS scheduler
	SpanDRAMActivate                   // bank begins service (post bank-ready wait)
	SpanDRAMDone                       // data leaves the channel (retire)
	SpanNoCRespInject                  // response injected into the NoC
	SpanNoCRespDeliver                 // response delivered at the core side
	SpanFill                           // smcore fills the MRQ entry / wakes waiters
	NumSpanSites
)

var spanSiteNames = [NumSpanSites]string{
	"issue", "mrq_enqueue", "mrq_dequeue", "noc_req_inject",
	"noc_req_deliver", "dram_arrive", "dram_sched", "dram_activate",
	"dram_done", "noc_resp_inject", "noc_resp_deliver", "fill",
}

func (s SpanSite) String() string {
	if s < NumSpanSites {
		return spanSiteNames[s]
	}
	return "unknown"
}

// Span flags record path variants that change which sites are expected.
const (
	FlagDRAMMerged uint8 = 1 << iota // rider of an inter-core DRAM merge: never scheduled itself
	FlagL2Hit                        // served by the L2 slice: no bank activate
	FlagRowHit
	FlagRowClosed
	FlagRowMiss
)

// SpanTerminal is the single exit every sampled request must reach.
type SpanTerminal uint8

const (
	TermNone        SpanTerminal = iota // still in flight
	TermFill                            // normal completion at the core
	TermMRQMerged                       // died merging into an existing MRQ entry
	TermMRQRejected                     // bounced off a full MRQ (prefetches only)
	TermDropped                         // response dropped by fault injection
	NumSpanTerminals
)

var spanTermNames = [NumSpanTerminals]string{
	"none", "fill", "mrq_merged", "mrq_rejected", "dropped",
}

func (t SpanTerminal) String() string {
	if t < NumSpanTerminals {
		return spanTermNames[t]
	}
	return "unknown"
}

// Span is the compact per-request trace record carried by sampled
// requests. It is heap-allocated only for sampled requests (spans-on
// cost); requests recycled through Pool have the pointer cleared by
// Get's struct-literal reset, so a stale span can never leak into a
// reused request.
type Span struct {
	ID    uint64                // core<<40 | per-core sequence; globally unique, shard-independent
	Stamp [NumSpanSites]uint64  // cycle of each visited site
	Seen  uint16                // bitmask of visited sites (cycle 0 is a valid stamp)
	Flags uint8
	Term  SpanTerminal
}

// StampAt records a visit to site at the given cycle.
func (s *Span) StampAt(site SpanSite, cycle uint64) {
	s.Stamp[site] = cycle
	s.Seen |= 1 << site
}

// Has reports whether site has been stamped.
func (s *Span) Has(site SpanSite) bool { return s.Seen&(1<<site) != 0 }

// StampSpan stamps the request's span, if it carries one. The nil check
// is the entire spans-off cost at every lifecycle site.
func (r *Request) StampSpan(site SpanSite, cycle uint64) {
	if r.Span != nil {
		r.Span.StampAt(site, cycle)
	}
}

// SpanFlag sets a path-variant flag on the request's span, if any.
func (r *Request) SpanFlag(f uint8) {
	if r.Span != nil {
		r.Span.Flags |= f
	}
}
