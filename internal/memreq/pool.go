package memreq

// Pool is a free-list of Requests for one simulation. The simulator's
// hot path allocates one Request per coalesced block transaction and one
// Waiters slice per demand; recycling them once the fill has been
// delivered (or the request merged away) removes that churn from the
// per-cycle cost. A Pool is single-threaded, like the simulation that
// owns it; a nil *Pool is valid and degrades to plain allocation, so
// callers never need to guard.
type Pool struct {
	free []*Request
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// primeWaiterCap is the Waiters capacity carved out for each primed
// request; within it, the first few demand waiters append without
// allocating (MergeDemand resizes the heavy mergers once, see
// mergeWaiterCap).
const primeWaiterCap = 4

// Prime stocks the pool with n requests up front, from one contiguous
// arena, each with a small pre-carved Waiters capacity. Sizing n near the
// machine's in-flight high-water mark (MRQ entries across cores) turns
// the pool's warm-up — otherwise one allocation per concurrently live
// request — into two arena allocations.
func (p *Pool) Prime(n int) {
	if p == nil || n <= 0 {
		return
	}
	arena := make([]Request, n)
	waiters := make([]Waiter, n*primeWaiterCap)
	for i := range arena {
		arena[i].Waiters = waiters[i*primeWaiterCap : i*primeWaiterCap : (i+1)*primeWaiterCap]
		p.free = append(p.free, &arena[i])
	}
}

// Get returns a block-aligned request like New, reusing a recycled
// Request (and its Waiters backing array) when one is available.
func (p *Pool) Get(addr uint64, blockBytes int, kind Kind, coreID, warpID, pc int, cycle uint64) *Request {
	if p == nil || len(p.free) == 0 {
		return New(addr, blockBytes, kind, coreID, warpID, pc, cycle)
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	*r = Request{
		Addr:        BlockAlign(addr, blockBytes),
		Kind:        kind,
		CoreID:      coreID,
		WarpID:      warpID,
		PC:          pc,
		IssueCycle:  cycle,
		WasPrefetch: kind == Prefetch,
		Waiters:     r.Waiters[:0],
	}
	return r
}

// Put recycles a request whose lifecycle has ended: its fill was
// delivered and processed, or it merged into an existing entry and was
// never tracked. The caller must not retain r afterwards.
func (p *Pool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	p.free = append(p.free, r)
}
