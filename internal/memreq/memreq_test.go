package memreq

import (
	"testing"
	"testing/quick"
)

func TestBlockAlign(t *testing.T) {
	cases := []struct {
		addr uint64
		want uint64
	}{
		{0, 0},
		{63, 0},
		{64, 64},
		{100, 64},
		{128, 128},
	}
	for _, c := range cases {
		if got := BlockAlign(c.addr, 64); got != c.want {
			t.Errorf("BlockAlign(%d, 64) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestBlockAlignProperty(t *testing.T) {
	// Aligned addresses are idempotent and never exceed the input.
	f := func(addr uint64) bool {
		a := BlockAlign(addr, 64)
		return a <= addr && a%64 == 0 && BlockAlign(a, 64) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewAlignsAndTags(t *testing.T) {
	r := New(1000, 64, Prefetch, 3, 42, 7, 99)
	if r.Addr != 960 {
		t.Errorf("Addr = %d, want 960", r.Addr)
	}
	if !r.WasPrefetch || r.Kind != Prefetch {
		t.Errorf("prefetch tagging wrong: %+v", r)
	}
	if r.CoreID != 3 || r.WarpID != 42 || r.PC != 7 || r.IssueCycle != 99 {
		t.Errorf("metadata wrong: %+v", r)
	}
	d := New(64, 64, Demand, 0, 0, 0, 0)
	if d.WasPrefetch {
		t.Error("demand request marked WasPrefetch")
	}
}

func TestMergeDemandIntoPrefetch(t *testing.T) {
	r := New(0, 64, Prefetch, 0, 1, 2, 3)
	r.MergeDemand([]Waiter{{Warp: 5, Reg: 2}})
	if r.Kind != Demand {
		t.Errorf("Kind after merge = %v, want demand", r.Kind)
	}
	if !r.DemandMerged {
		t.Error("DemandMerged not set")
	}
	if !r.WasPrefetch {
		t.Error("WasPrefetch lost on merge")
	}
	if len(r.Waiters) != 1 || r.Waiters[0].Warp != 5 {
		t.Errorf("waiters = %+v", r.Waiters)
	}
}

func TestMergeDemandIntoDemand(t *testing.T) {
	r := New(0, 64, Demand, 0, 1, 2, 3)
	r.Waiters = []Waiter{{Warp: 1, Reg: 1}}
	r.MergeDemand([]Waiter{{Warp: 2, Reg: 2}})
	if r.DemandMerged {
		t.Error("demand-demand merge should not set DemandMerged")
	}
	if len(r.Waiters) != 2 {
		t.Errorf("waiters = %+v, want 2 entries", r.Waiters)
	}
}

func TestKindString(t *testing.T) {
	if Demand.String() != "demand" || Prefetch.String() != "prefetch" || Writeback.String() != "writeback" {
		t.Error("Kind.String values wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}
