// Package statcli factors the command-line machinery shared by the
// JSONL post-processing tools (cmd/pfstat, cmd/cpistat, cmd/spanstat):
// the common -run filter flag, the stdin-or-files read loop over
// unbounded JSONL lines, the tailored empty-input diagnostic, and
// buffered stdout rendering with the tools' common exit codes (0 ok;
// 1 read/parse failure or no matching records; 2 usage error).
//
// A tool provides its aggregation state behind four callbacks and calls
// Main; everything the three tools used to duplicate lives here.
package statcli

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"mtprefetch/internal/jsonl"
)

// Probe is the minimal envelope every obs JSONL line carries. The
// framework parses it once per line to apply the -run filter, then
// hands both the probe and the raw line to the tool, which unmarshals
// into its own record schema.
type Probe struct {
	Record string `json:"record"`
	Run    string `json:"run"`
}

// Tool describes one post-processing command.
type Tool struct {
	// Name prefixes every diagnostic ("pfstat").
	Name string
	// Usage is the full usage line printed on flag errors (exit 2).
	Usage string
	// EmptyWhat names the record kinds in the empty-input error, e.g.
	// "pfreport/pfsummary records".
	EmptyWhat string
	// EmptyFlag names the mtpref flag the empty-input hint suggests,
	// e.g. "-pfreport".
	EmptyFlag string
	// Flags registers tool-specific flags; may be nil. The -run filter
	// is registered by the framework.
	Flags func(fs *flag.FlagSet)
	// Line aggregates one non-empty line whose run key passed the
	// filter. A returned error aborts with exit 1.
	Line func(p Probe, line []byte) error
	// Empty reports whether nothing was aggregated, which exits 1 with
	// the tailored diagnostic instead of printing a zero-row table.
	Empty func() bool
	// Render writes the final output.
	Render func(w io.Writer) error
}

// Read consumes one JSONL stream, calling line for every non-empty
// input line whose run key matches filter (nil keeps all).
func Read(r io.Reader, filter *regexp.Regexp, line func(Probe, []byte) error) error {
	sc := jsonl.NewReader(r)
	for {
		b, err := sc.Line()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(b) == 0 {
			continue
		}
		var p Probe
		if err := json.Unmarshal(b, &p); err != nil {
			return fmt.Errorf("bad JSONL line: %w", err)
		}
		if filter != nil && !filter.MatchString(p.Run) {
			continue
		}
		if err := line(p, b); err != nil {
			return err
		}
	}
}

// Main runs the tool end to end: parse flags, read stdin or the file
// arguments, fail on empty input, render. It exits the process.
func Main(t Tool) {
	fs := flag.NewFlagSet(t.Name, flag.ExitOnError)
	runPat := fs.String("run", "", "only aggregate runs whose key matches this regexp")
	if t.Flags != nil {
		t.Flags(fs)
	}
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, t.Usage)
		os.Exit(2)
	}
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	var filter *regexp.Regexp
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintln(os.Stderr, t.Name+":", err)
			os.Exit(2)
		}
		filter = re
	}

	files := fs.Args()
	if len(files) == 0 {
		if err := Read(os.Stdin, filter, t.Line); err != nil {
			fmt.Fprintln(os.Stderr, t.Name+": stdin:", err)
			os.Exit(1)
		}
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, t.Name+":", err)
			os.Exit(1)
		}
		err = Read(f, filter, t.Line)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", t.Name, path, err)
			os.Exit(1)
		}
	}

	if t.Empty() {
		msg := fmt.Sprintf("%s: no %s in input (was the run started with %s?)",
			t.Name, t.EmptyWhat, t.EmptyFlag)
		if filter != nil {
			msg = fmt.Sprintf("%s: no %s match -run %q", t.Name, t.EmptyWhat, *runPat)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(1)
	}

	out := bufio.NewWriter(os.Stdout)
	if err := t.Render(out); err != nil {
		fmt.Fprintln(os.Stderr, t.Name+":", err)
		os.Exit(1)
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, t.Name+":", err)
		os.Exit(1)
	}
}
