package statcli

import (
	"regexp"
	"strings"
	"testing"
)

// collect runs Read over input and returns the probes that reached the
// line callback.
func collect(t *testing.T, input string, filter *regexp.Regexp) []Probe {
	t.Helper()
	var got []Probe
	if err := Read(strings.NewReader(input), filter, func(p Probe, line []byte) error {
		if len(line) == 0 {
			t.Error("line callback received an empty line")
		}
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReadParsesProbeAndSkipsBlanks(t *testing.T) {
	input := `{"record":"a","run":"r1","extra":1}` + "\n\n" +
		`{"record":"b","run":"r2"}` + "\n"
	got := collect(t, input, nil)
	if len(got) != 2 || got[0] != (Probe{Record: "a", Run: "r1"}) ||
		got[1] != (Probe{Record: "b", Run: "r2"}) {
		t.Errorf("probes = %+v", got)
	}
}

func TestReadRunFilter(t *testing.T) {
	input := `{"record":"x","run":"base/monte"}` + "\n" +
		`{"record":"x","run":"hw/monte"}` + "\n" +
		`{"record":"x","run":"hw/stream"}` + "\n"
	got := collect(t, input, regexp.MustCompile(`^hw/`))
	if len(got) != 2 || got[0].Run != "hw/monte" || got[1].Run != "hw/stream" {
		t.Errorf("filtered probes = %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	err := Read(strings.NewReader("not json\n"), nil, func(Probe, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bad JSONL line") {
		t.Errorf("garbage line returned %v", err)
	}
}

// TestReadLongLines: the reader must survive lines far beyond
// bufio.Scanner's default token limit (run keys are unbounded).
func TestReadLongLines(t *testing.T) {
	long := strings.Repeat("x", 2<<20)
	got := collect(t, `{"record":"big","run":"`+long+`"}`+"\n", nil)
	if len(got) != 1 || got[0].Run != long {
		t.Fatalf("long line lost: %d probes", len(got))
	}
}

// TestReadLineErrorPropagates: a tool callback error aborts the read
// with that error.
func TestReadLineErrorPropagates(t *testing.T) {
	input := `{"record":"a"}` + "\n" + `{"record":"b"}` + "\n"
	calls := 0
	err := Read(strings.NewReader(input), nil, func(p Probe, _ []byte) error {
		calls++
		if p.Record == "a" {
			return errBoom
		}
		return nil
	})
	if err != errBoom {
		t.Errorf("callback error not propagated: %v", err)
	}
	if calls != 1 {
		t.Errorf("read continued after callback error: %d calls", calls)
	}
}

var errBoom = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "boom" }
