package model

import (
	"math"
	"testing"
	"testing/quick"

	"mtprefetch/internal/workload"
)

func TestMTAMLEq1(t *testing.T) {
	// 30 compute, 10 memory, 16 warps: 3 x 15 = 45.
	if got := MTAML(30, 10, 16); got != 45 {
		t.Errorf("MTAML = %v, want 45", got)
	}
	if got := MTAML(30, 0, 16); got != 0 {
		t.Errorf("MTAML with no memory = %v, want 0", got)
	}
	if got := MTAML(30, 10, 1); got != 0 {
		t.Errorf("MTAML with one warp = %v, want 0", got)
	}
}

func TestMTAMLPrefEq2to4(t *testing.T) {
	// pHit=0 reduces to Eq. 1.
	if got, want := MTAMLPref(30, 10, 16, 0), MTAML(30, 10, 16); got != want {
		t.Errorf("pHit=0: %v != %v", got, want)
	}
	// pHit=0.5: comp_new = 35, mem_new = 5 -> 7 x 15 = 105.
	if got := MTAMLPref(30, 10, 16, 0.5); got != 105 {
		t.Errorf("pHit=0.5: %v, want 105", got)
	}
	// pHit=1: no memory instructions remain; infinite tolerance modelled
	// as 0-divide guard returning 0? No: mem_new=0 means every request is
	// covered; MTAML returns 0 by the guard, and callers treat it via
	// Classify. Document the edge.
	if got := MTAMLPref(30, 10, 16, 1); got != 0 {
		t.Errorf("pHit=1 guard: %v, want 0", got)
	}
	// Clamping.
	if MTAMLPref(30, 10, 16, -3) != MTAMLPref(30, 10, 16, 0) {
		t.Error("negative pHit not clamped")
	}
}

func TestMTAMLPrefMonotonicInPHit(t *testing.T) {
	f := func(hitA, hitB uint8) bool {
		a := float64(hitA%100) / 100
		b := float64(hitB%100) / 100
		if a > b {
			a, b = b, a
		}
		// Higher hit rate never lowers tolerance.
		return MTAMLPref(40, 10, 8, b) >= MTAMLPref(40, 10, 8, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMTAMLIncreasesWithWarps(t *testing.T) {
	f := func(w uint8) bool {
		warps := int(w%30) + 2
		return MTAML(30, 10, warps+1) > MTAML(30, 10, warps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		lat, latPref, m, mPref float64
		want                   Case
	}{
		{10, 12, 45, 105, NoEffect},         // both tolerated
		{50, 60, 45, 105, Useful},           // base stalls, prefetch covers
		{50, 120, 45, 105, UsefulOrHarmful}, // neither tolerated
		{40, 120, 45, 105, UsefulOrHarmful}, // base fine, prefetch not (degenerate)
	}
	for i, c := range cases {
		if got := Classify(c.lat, c.latPref, c.m, c.mPref); got != c.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestCaseString(t *testing.T) {
	for _, c := range []Case{NoEffect, Useful, UsefulOrHarmful, Case(9)} {
		if c.String() == "" {
			t.Errorf("Case(%d).String empty", uint8(c))
		}
	}
}

func TestAnalyzeFromSpec(t *testing.T) {
	s := workload.ByName("monte")
	a := Analyze(s, 0.8)
	if a.Warps != s.ActiveWarpsPerCore() {
		t.Errorf("Warps = %d, want %d", a.Warps, s.ActiveWarpsPerCore())
	}
	if a.MemInst <= 0 || a.CompInst <= 0 {
		t.Fatalf("degenerate counts: %+v", a)
	}
	if a.MTAML <= 0 {
		t.Errorf("MTAML = %v, want positive", a.MTAML)
	}
	if a.MTAMLPref <= a.MTAML {
		t.Errorf("MTAMLPref (%v) not above MTAML (%v) at pHit=0.8", a.MTAMLPref, a.MTAML)
	}
	// The ratio matches Eq. 1 by hand.
	want := a.CompInst / a.MemInst * float64(a.Warps-1)
	if math.Abs(a.MTAML-want) > 1e-9 {
		t.Errorf("MTAML = %v, want %v", a.MTAML, want)
	}
}

func TestClassifyMeasured(t *testing.T) {
	s := workload.ByName("binomial") // compute-bound: huge MTAML
	a := Analyze(s, 0.5)
	got := a.ClassifyMeasured(400, 420, 4)
	if got != NoEffect {
		t.Errorf("compute-bound benchmark classified %v, want no-effect", got)
	}
	s2 := workload.ByName("linear") // memory-crushed: tiny MTAML
	a2 := Analyze(s2, 0.2)
	got2 := a2.ClassifyMeasured(800, 820, 4)
	if got2 != UsefulOrHarmful {
		t.Errorf("linear classified %v, want useful-or-harmful", got2)
	}
}

// TestNonIntensiveAllNoEffect ties the model to Table IV: at observed
// latencies, prefetching should be classified no-effect for the whole
// compute-bound suite.
func TestNonIntensiveAllNoEffect(t *testing.T) {
	for _, s := range workload.NonIntensiveSpecs() {
		a := Analyze(s, 0.9)
		// Their MTAML is large; a ~100-cycle (25 warp-instruction)
		// latency is tolerated.
		if got := a.ClassifyMeasured(100, 110, 4); got != NoEffect {
			t.Errorf("%s: classified %v, want no-effect (MTAML=%.0f)", s.Name, got, a.MTAML)
		}
	}
}
