// Package model implements the paper's analytical model of prefetch
// utility (Section IV): the minimum tolerable average memory latency
// (MTAML, Eq. 1), its extension under prefetching (Eqs. 2-4), and the
// three-way classification of Fig. 7 — prefetching is useful, has no
// effect, or may be useful-or-harmful depending on contention.
package model

import (
	"fmt"

	"mtprefetch/internal/workload"
)

// MTAML is Eq. 1: the minimum average number of cycles per memory request
// that does not lead to stalls, in warp-instruction units:
//
//	MTAML = (#comp_inst / #mem_inst) x (#warps - 1)
//
// compInst and memInst are per-thread (equivalently per-warp) dynamic
// warp-instruction counts; warps is the number of active warps on a core.
func MTAML(compInst, memInst float64, warps int) float64 {
	if memInst == 0 || warps <= 1 {
		return 0
	}
	return compInst / memInst * float64(warps-1)
}

// MTAMLPref is Eqs. 2-4: MTAML under prefetching with prefetch-cache hit
// probability pHit. A prefetch hit turns a memory instruction into a
// compute-latency instruction, shrinking the denominator:
//
//	#comp_new   = #comp_inst + P(hit) x #mem_inst
//	#memory_new = (1 - P(hit)) x #mem_inst
func MTAMLPref(compInst, memInst float64, warps int, pHit float64) float64 {
	if pHit < 0 {
		pHit = 0
	}
	if pHit > 1 {
		pHit = 1
	}
	compNew := compInst + pHit*memInst
	memNew := (1 - pHit) * memInst
	return MTAML(compNew, memNew, warps)
}

// Case is the Fig. 7 classification.
type Case uint8

const (
	// NoEffect: multithreading already tolerates the latency with and
	// without prefetching (case 1 of Section IV-A).
	NoEffect Case = iota
	// Useful: the baseline cannot tolerate its latency but prefetching
	// raises MTAML above the prefetched latency (case 2).
	Useful
	// UsefulOrHarmful: latency is not fully tolerable either way; the
	// outcome depends on contention (case 3) — the regime the adaptive
	// throttle is built for.
	UsefulOrHarmful
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case NoEffect:
		return "no-effect"
	case Useful:
		return "useful"
	case UsefulOrHarmful:
		return "useful-or-harmful"
	default:
		return fmt.Sprintf("Case(%d)", uint8(c))
	}
}

// Classify applies Section IV-A's three cases given measured average
// latencies (in the same warp-instruction units as MTAML; divide cycle
// latencies by the issue occupancy to convert).
func Classify(avgLat, avgLatPref, mtaml, mtamlPref float64) Case {
	switch {
	case avgLat < mtaml && avgLatPref < mtamlPref:
		return NoEffect
	case avgLat > mtaml && avgLatPref < mtamlPref:
		return Useful
	default:
		return UsefulOrHarmful
	}
}

// Analysis bundles the model outputs for one benchmark configuration.
type Analysis struct {
	Benchmark string
	Warps     int
	CompInst  float64
	MemInst   float64
	MTAML     float64 // warp-instruction units
	MTAMLPref float64
	PHit      float64
}

// Analyze derives the model inputs from a workload spec: per-warp dynamic
// instruction counts and the spec's full-occupancy active warp count.
// pHit is the assumed prefetch-cache hit probability.
func Analyze(s *workload.Spec, pHit float64) Analysis {
	c := s.Program.DynamicCounts()
	comp := float64(c.Total - c.Memory) // non-memory warp-instructions
	mem := float64(c.Memory)
	w := s.ActiveWarpsPerCore()
	return Analysis{
		Benchmark: s.Name,
		Warps:     w,
		CompInst:  comp,
		MemInst:   mem,
		MTAML:     MTAML(comp, mem, w),
		MTAMLPref: MTAMLPref(comp, mem, w, pHit),
		PHit:      pHit,
	}
}

// ClassifyMeasured classifies a benchmark given measured average memory
// latencies in cycles and the issue occupancy per warp-instruction
// (config.IssueCostALU in the baseline machine).
func (a Analysis) ClassifyMeasured(avgLatCycles, avgLatPrefCycles float64, issueCost int) Case {
	u := float64(issueCost)
	return Classify(avgLatCycles/u, avgLatPrefCycles/u, a.MTAML, a.MTAMLPref)
}
