package prefetch

import (
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
)

// MTHWP is the paper's many-thread aware hardware prefetcher (Section
// III-B, Fig. 6). It combines three tables:
//
//   - PWS (Per-Warp Stride, 32 entries): a stride prefetcher trained per
//     (PC, warp id), immune to the warp-interleaving noise of Fig. 5.
//   - GS (Global Stride, 8 entries): when at least three warps agree on
//     the same stride for one PC, the (PC, stride) pair is promoted to the
//     GS table; yet-to-be-trained warps then prefetch immediately and,
//     crucially, skip the PWS lookup entirely (the power/scalability
//     argument of Section VIII-B).
//   - IP (Inter-thread Prefetching, 8 entries): detects constant strides
//     *across warps* at the same PC — the loop-free, massively-parallel
//     pattern where one thread can prefetch for the corresponding thread
//     of a later warp.
//
// Priority on a hit: GS first (promoted strides are better trained),
// then PWS, then IP.
type MTHWP struct {
	pws *table[key2, strideState]
	gs  *table[int, int64]
	ip  *table[int, ipState]

	enableGS bool
	enableIP bool

	distance int
	degree   int

	trace      *obs.Tracer // nil: promotion tracing disabled
	traceTrack int

	stats MTHWPStats
}

type ipState struct {
	lastWid  int
	lastAddr uint64
	stride   int64 // address delta per warp
	conf     int
}

// MTHWPStats counts per-table activity; PWSAccesses vs GSHits backs the
// Section VIII-B claim that the GS table removes most PWS lookups.
type MTHWPStats struct {
	Observations uint64
	PWSAccesses  uint64 // PWS lookups performed
	PWSHits      uint64 // prefetches generated from PWS
	GSHits       uint64 // prefetches generated from GS (PWS lookup skipped)
	IPHits       uint64 // prefetches generated from IP
	Promotions   uint64 // (PC, stride) pairs promoted into GS
}

// MTHWPOptions configures the prefetcher; zero values select the paper's
// evaluation configuration (32-entry PWS, 8-entry GS, 8-entry IP,
// distance 1, degree 1).
type MTHWPOptions struct {
	PWSSize  int
	GSSize   int
	IPSize   int
	EnableGS bool
	EnableIP bool
	Distance int
	Degree   int
}

// NewMTHWP builds an MT-HWP instance.
func NewMTHWP(o MTHWPOptions) *MTHWP {
	if o.PWSSize == 0 {
		o.PWSSize = 32
	}
	if o.GSSize == 0 {
		o.GSSize = 8
	}
	if o.IPSize == 0 {
		o.IPSize = 8
	}
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.Degree == 0 {
		o.Degree = 1
	}
	return &MTHWP{
		pws:      newTable[key2, strideState](o.PWSSize),
		gs:       newTable[int, int64](o.GSSize),
		ip:       newTable[int, ipState](o.IPSize),
		enableGS: o.EnableGS,
		enableIP: o.EnableIP,
		distance: o.Distance,
		degree:   o.Degree,
	}
}

// Name implements Prefetcher.
func (p *MTHWP) Name() string {
	n := "pws"
	if p.enableGS {
		n += "+gs"
	}
	if p.enableIP {
		n += "+ip"
	}
	return n
}

// Stats returns a snapshot of per-table counters.
func (p *MTHWP) Stats() MTHWPStats { return p.stats }

// Register wires the per-table counters into the registry.
func (p *MTHWP) Register(r *obs.Registry, l obs.Labels) {
	st := &p.stats
	r.CounterU64("mthwp.observations", l, &st.Observations)
	r.CounterU64("mthwp.pws_accesses", l, &st.PWSAccesses)
	r.CounterU64("mthwp.pws_hits", l, &st.PWSHits)
	r.CounterU64("mthwp.gs_hits", l, &st.GSHits)
	r.CounterU64("mthwp.ip_hits", l, &st.IPHits)
	r.CounterU64("mthwp.promotions", l, &st.Promotions)
}

// SetTrace enables stride-promotion events on tr under the given track
// (the owning core's id).
func (p *MTHWP) SetTrace(tr *obs.Tracer, track int) {
	p.trace = tr
	p.traceTrack = track
}

// promotionThreshold is the number of PWS entries for one PC that must
// agree on a stride before it is promoted to the GS table.
const promotionThreshold = 3

// ipTrainThreshold: "we train the IP table until three accesses from the
// same PC and different warps have the same stride" — three accesses give
// two consistent deltas.
const ipTrainThreshold = 2

// Observe implements Prefetcher.
func (p *MTHWP) Observe(t Train, out []Candidate) []Candidate {
	p.stats.Observations++
	// Cycle 0: GS (and IP) indexed in parallel by PC; a GS hit wins and
	// skips the PWS lookup entirely.
	if p.enableGS {
		if stride, ok := p.gs.get(t.PC); ok {
			p.stats.GSHits++
			if p.enableIP {
				p.trainIP(t) // IP keeps training; no extra generation
			}
			return genStride(memreq.SrcGS, t.Addr, *stride, p.distance, p.degree, t.Footprint, out)
		}
	}
	// Cycle 1: PWS.
	p.stats.PWSAccesses++
	k := key2{t.PC, t.WarpID}
	st, ok := p.pws.get(k)
	pwsTrained := false
	if !ok {
		p.pws.put(k, strideState{lastAddr: t.Addr})
	} else {
		pwsTrained = st.observe(t.Addr)
	}
	var ipHit bool
	var ipStride int64
	if p.enableIP {
		ipHit, ipStride = p.trainIP(t)
	}
	if pwsTrained {
		p.stats.PWSHits++
		if p.enableGS {
			p.maybePromote(t.PC, t.Cycle, st.stride)
		}
		return genStride(memreq.SrcPWS, t.Addr, st.stride, p.distance, p.degree, t.Footprint, out)
	}
	if ipHit {
		p.stats.IPHits++
		return genStride(memreq.SrcHWIP, t.Addr, ipStride, p.distance, p.degree, t.Footprint, out)
	}
	return out
}

// trainIP updates the IP table and reports whether a trained cross-warp
// stride is available for generation.
func (p *MTHWP) trainIP(t Train) (bool, int64) {
	st, ok := p.ip.get(t.PC)
	if !ok {
		p.ip.put(t.PC, ipState{lastWid: t.WarpID, lastAddr: t.Addr})
		return false, 0
	}
	widDelta := t.WarpID - st.lastWid
	if widDelta == 0 {
		// Same warp again (a loop iteration); refresh the anchor.
		st.lastAddr = t.Addr
		return st.conf >= ipTrainThreshold, st.stride
	}
	addrDelta := int64(t.Addr) - int64(st.lastAddr)
	if addrDelta%int64(widDelta) == 0 {
		s := addrDelta / int64(widDelta)
		if s == st.stride && s != 0 {
			if st.conf < 4 {
				st.conf++
			}
		} else {
			st.stride = s
			st.conf = s2conf(s)
		}
	} else {
		st.conf = 0
	}
	st.lastWid = t.WarpID
	st.lastAddr = t.Addr
	return st.conf >= ipTrainThreshold, st.stride
}

// s2conf starts a fresh stride at confidence 1 (first delta observed), or
// 0 for a degenerate zero stride.
func s2conf(s int64) int {
	if s == 0 {
		return 0
	}
	return 1
}

// maybePromote scans the (small) PWS table and promotes (pc, stride) to
// the GS table when enough warps agree.
func (p *MTHWP) maybePromote(pc int, cycle uint64, stride int64) {
	if _, ok := p.gs.peek(pc); ok {
		return
	}
	agree := 0
	for e := p.pws.head; e != nil; e = e.next {
		if e.key.a == pc && e.val.conf >= 1 && e.val.stride == stride {
			agree++
			if agree >= promotionThreshold {
				p.gs.put(pc, stride)
				p.stats.Promotions++
				p.trace.Emit(obs.EvStridePromotion, cycle, p.traceTrack, uint64(pc), stride)
				return
			}
		}
	}
}
