// Package prefetch implements the hardware prefetchers evaluated in the
// paper: the CPU baselines of Table V — a region-based stride prefetcher
// (Stride RPT), a per-PC stride prefetcher (StridePC), a stream prefetcher,
// and a GHB AC/DC delta-correlating prefetcher — plus the paper's
// contribution, the many-thread aware hardware prefetcher (MT-HWP) with
// its Per-Warp Stride, Global Stride, and Inter-thread Prefetching tables.
//
// Each baseline comes in two forms (Section VIII-A, Fig. 13): the naive
// version as originally proposed, and an "enhanced" version whose training
// state is additionally indexed by warp id, which untangles the
// interleaved per-warp address streams of Fig. 5.
//
// Prefetchers are per core. They observe demand accesses at warp
// granularity (one Train event per warp memory instruction, carrying the
// leading block address and the coalesced footprint) and emit candidate
// block addresses; the core filters candidates against the prefetch cache,
// the MRQ, and the throttle engine before issuing them.
package prefetch

import "mtprefetch/internal/memreq"

// Train is one demand observation presented to a prefetcher.
type Train struct {
	PC     int
	WarpID int    // global warp id
	Cycle  uint64 // core cycle of the observation (0 in offline replay)
	Addr   uint64 // leading block address of the warp access
	// Footprint holds the byte offsets (0 included, block-aligned) of
	// every block the warp access touched relative to Addr. A generated
	// prefetch replays the same footprint at the predicted address, so
	// an uncoalesced access prefetches an uncoalesced footprint.
	Footprint []uint64
}

// Candidate is one generated prefetch: a block address plus the table
// that produced it, so downstream attribution can key outcomes by source.
type Candidate struct {
	Addr   uint64
	Source memreq.Source
}

// Prefetcher turns demand observations into prefetch candidates.
type Prefetcher interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// Observe records the access and appends candidate prefetches to
	// out, returning the extended slice. The Footprint slice is only
	// valid during the call.
	Observe(t Train, out []Candidate) []Candidate
}

// Feedback carries one throttling period's prefetch outcome counters to
// feedback-directed prefetchers (GHB+F, StridePC+T — Section VIII-C).
type Feedback struct {
	Issued uint64 // prefetches sent to memory in the period
	Useful uint64 // prefetched blocks used before eviction
	Late   uint64 // prefetches a demand merged into before fill
}

// FeedbackPrefetcher is a Prefetcher that adapts to periodic feedback.
type FeedbackPrefetcher interface {
	Prefetcher
	ApplyFeedback(f Feedback)
}

// maxCandidates caps how many blocks one observation may generate, keeping
// uncoalesced footprints at high degree from flooding the queue.
const maxCandidates = 64

// genStride appends candidates for a detected stride: degree triggers at
// addr + stride*(distance+i), each replaying the footprint and stamped
// with the generating table's source.
func genStride(src memreq.Source, addr uint64, stride int64, distance, degree int, footprint []uint64, out []Candidate) []Candidate {
	start := len(out)
	for i := 0; i < degree; i++ {
		base := int64(addr) + stride*int64(distance+i)
		if base <= 0 {
			continue
		}
		for _, off := range footprint {
			if len(out)-start >= maxCandidates {
				return out
			}
			out = append(out, Candidate{Addr: uint64(base) + off, Source: src})
		}
	}
	return out
}

// key2 composes a PC (or region) with a warp id into a table key.
type key2 struct {
	a int
	b int
}

// lruEntry is a node of the intrusive LRU list used by table.
type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// table is a fixed-capacity associative table with LRU replacement — the
// building block of every prefetcher here ("both PWS and GS tables use a
// LRU replacement policy", Section III-B1).
type table[K comparable, V any] struct {
	cap       int
	m         map[K]*lruEntry[K, V]
	head      *lruEntry[K, V] // most recently used
	tail      *lruEntry[K, V] // least recently used
	accesses  uint64
	evictions uint64
}

func newTable[K comparable, V any](capacity int) *table[K, V] {
	return &table[K, V]{cap: capacity, m: make(map[K]*lruEntry[K, V], capacity)}
}

func (t *table[K, V]) len() int { return len(t.m) }

func (t *table[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (t *table[K, V]) pushFront(e *lruEntry[K, V]) {
	e.next = t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

// get returns a pointer to the value, touching LRU on hit.
func (t *table[K, V]) get(k K) (*V, bool) {
	t.accesses++
	e, ok := t.m[k]
	if !ok {
		return nil, false
	}
	if t.head != e {
		t.unlink(e)
		t.pushFront(e)
	}
	return &e.val, true
}

// peek returns the value without touching LRU or access counters.
func (t *table[K, V]) peek(k K) (*V, bool) {
	e, ok := t.m[k]
	if !ok {
		return nil, false
	}
	return &e.val, true
}

// put inserts (or replaces) a value, evicting the LRU entry at capacity.
// It returns a pointer to the stored value and, when an eviction occurred,
// the evicted key.
func (t *table[K, V]) put(k K, v V) (*V, *K) {
	if e, ok := t.m[k]; ok {
		e.val = v
		if t.head != e {
			t.unlink(e)
			t.pushFront(e)
		}
		return &e.val, nil
	}
	var evicted *K
	if len(t.m) >= t.cap {
		victim := t.tail
		t.unlink(victim)
		delete(t.m, victim.key)
		t.evictions++
		ev := victim.key
		evicted = &ev
	}
	e := &lruEntry[K, V]{key: k, val: v}
	t.m[k] = e
	t.pushFront(e)
	return &e.val, evicted
}
