package prefetch

import "mtprefetch/internal/memreq"

// Stream is the stream prefetcher of Table V (512-entry), in the style of
// Jouppi's stream buffers / the POWER5 prefetcher: it watches for accesses
// marching through a memory region in a constant direction and, once a
// direction is confirmed, runs ahead of the access stream.
type Stream struct {
	entries    []streamEntry
	blockBytes uint64
	window     uint64 // max block distance for an access to match a stream
	warpAware  bool
	distance   int
	degree     int
	stamp      uint64
}

type streamEntry struct {
	valid     bool
	lastBlock uint64 // block number of the most recent matching access
	dir       int64  // +1 / -1, 0 while untrained
	conf      int
	warpID    int
	lru       uint64
}

// StreamOptions configures a Stream prefetcher.
type StreamOptions struct {
	TableSize  int // stream entries (default 512)
	BlockBytes int // default 64
	Window     int // matching window in blocks (default 16)
	WarpAware  bool
	Distance   int
	Degree     int
}

// NewStream builds a stream prefetcher.
func NewStream(o StreamOptions) *Stream {
	if o.TableSize == 0 {
		o.TableSize = 512
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = 64
	}
	if o.Window == 0 {
		o.Window = 16
	}
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.Degree == 0 {
		o.Degree = 1
	}
	return &Stream{
		entries:    make([]streamEntry, o.TableSize),
		blockBytes: uint64(o.BlockBytes),
		window:     uint64(o.Window),
		warpAware:  o.WarpAware,
		distance:   o.Distance,
		degree:     o.Degree,
	}
}

// Name implements Prefetcher.
func (p *Stream) Name() string {
	if p.warpAware {
		return "stream+wid"
	}
	return "stream"
}

// Observe implements Prefetcher.
func (p *Stream) Observe(t Train, out []Candidate) []Candidate {
	p.stamp++
	block := t.Addr / p.blockBytes
	// Find the closest matching stream.
	best, bestDist := -1, p.window+1
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			continue
		}
		if p.warpAware && e.warpID != t.WarpID {
			continue
		}
		var d uint64
		if block > e.lastBlock {
			d = block - e.lastBlock
		} else {
			d = e.lastBlock - block
		}
		if d <= p.window && d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		// Allocate (LRU victim).
		victim := 0
		for i := range p.entries {
			if !p.entries[i].valid {
				victim = i
				break
			}
			if p.entries[i].lru < p.entries[victim].lru {
				victim = i
			}
		}
		p.entries[victim] = streamEntry{
			valid: true, lastBlock: block, warpID: t.WarpID, lru: p.stamp,
		}
		return out
	}
	e := &p.entries[best]
	e.lru = p.stamp
	var dir int64
	switch {
	case block > e.lastBlock:
		dir = 1
	case block < e.lastBlock:
		dir = -1
	default:
		return out // same block; no direction information
	}
	if e.dir == dir {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.dir = dir
		e.conf = 0
	}
	e.lastBlock = block
	if e.conf < 1 {
		return out
	}
	stride := dir * int64(p.blockBytes)
	return genStride(memreq.SrcStream, t.Addr, stride, p.distance, p.degree, t.Footprint, out)
}
