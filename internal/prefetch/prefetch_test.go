package prefetch

import (
	"testing"

	"mtprefetch/internal/memreq"
)

// fp is a trivial single-block footprint.
var fp = []uint64{0}

// addrsOf projects candidates to their block addresses.
func addrsOf(cs []Candidate) []uint64 {
	out := make([]uint64, len(cs))
	for i, c := range cs {
		out[i] = c.Addr
	}
	return out
}

func trainAddrs(p Prefetcher, pc, warp int, addrs ...uint64) []uint64 {
	var out []Candidate
	for _, a := range addrs {
		out = p.Observe(Train{PC: pc, WarpID: warp, Addr: a, Footprint: fp}, out[:0])
	}
	return addrsOf(out)
}

func TestStrideStateTraining(t *testing.T) {
	// Callers seed lastAddr with the first observed address.
	s := strideState{lastAddr: 1000}
	if s.observe(2000) {
		t.Error("trained after a single delta")
	}
	if !s.observe(3000) {
		t.Error("not trained after two equal deltas")
	}
	if s.stride != 1000 {
		t.Errorf("stride = %d, want 1000", s.stride)
	}
	// A changed delta retrains.
	if s.observe(3100) {
		t.Error("trained immediately after stride change")
	}
}

func TestGenStrideFootprintReplay(t *testing.T) {
	foot := []uint64{0, 64}
	cands := genStride(memreq.SrcPWS, 1000, 128, 1, 2, foot, nil)
	for _, c := range cands {
		if c.Source != memreq.SrcPWS {
			t.Errorf("candidate %#x source = %v, want pws", c.Addr, c.Source)
		}
	}
	out := addrsOf(cands)
	want := []uint64{1128, 1192, 1256, 1320}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestGenStrideNegativeGuard(t *testing.T) {
	out := genStride(memreq.SrcNone, 100, -1000, 1, 2, fp, nil)
	if len(out) != 0 {
		t.Errorf("negative addresses generated: %v", out)
	}
}

func TestGenStrideCandidateCap(t *testing.T) {
	big := make([]uint64, 32)
	for i := range big {
		big[i] = uint64(i * 64)
	}
	out := genStride(memreq.SrcNone, 1<<20, 4096, 1, 8, big, nil)
	if len(out) > maxCandidates {
		t.Errorf("generated %d candidates, cap is %d", len(out), maxCandidates)
	}
}

func TestStridePCDetectsPerWarpStride(t *testing.T) {
	p := NewStridePC(StridePCOptions{WarpAware: true})
	out := trainAddrs(p, 0x1a, 1, 0, 1000, 2000)
	if len(out) != 1 || out[0] != 3000 {
		t.Fatalf("prefetch = %v, want [3000]", out)
	}
}

// TestStridePCNaiveConfusedByInterleaving reproduces Fig. 5: each warp has
// a clean 1000-byte stride, but the interleaved stream seen by a
// PC-indexed prefetcher is noise.
func TestStridePCNaiveConfusedByInterleaving(t *testing.T) {
	naive := NewStridePC(StridePCOptions{WarpAware: false})
	enhanced := NewStridePC(StridePCOptions{WarpAware: true})
	// The exact interleaving of Fig. 5 (right column).
	seq := []struct {
		warp int
		addr uint64
	}{
		{1, 0}, {2, 10}, {1, 1000}, {3, 20}, {2, 1010},
		{3, 1020}, {3, 2020}, {1, 2000}, {2, 2010},
	}
	var naiveOut, enhOut []Candidate
	for _, s := range seq {
		tr := Train{PC: 0x1a, WarpID: s.warp, Addr: s.addr, Footprint: fp}
		naiveOut = naive.Observe(tr, naiveOut)
		enhOut = enhanced.Observe(tr, enhOut)
	}
	if len(naiveOut) != 0 {
		t.Errorf("naive prefetcher found a stride in interleaved noise: %v", naiveOut)
	}
	if len(enhOut) == 0 {
		t.Error("warp-aware prefetcher failed to find per-warp strides")
	}
	// Every enhanced prefetch extends some warp's 1000-stride stream.
	for _, c := range enhOut {
		if (c.Addr-0)%10 != 0 {
			t.Errorf("unexpected prefetch address %d", c.Addr)
		}
	}
}

func TestStridePCDistanceDegree(t *testing.T) {
	p := NewStridePC(StridePCOptions{WarpAware: true, Distance: 3, Degree: 2})
	out := trainAddrs(p, 1, 1, 0, 100, 200)
	want := []uint64{500, 600}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestStridePCTableEviction(t *testing.T) {
	p := NewStridePC(StridePCOptions{TableSize: 2, WarpAware: true})
	trainAddrs(p, 1, 1, 0, 100) // entry A
	trainAddrs(p, 2, 1, 0, 100) // entry B
	trainAddrs(p, 3, 1, 0, 100) // evicts A
	// Retraining PC 1 must start over.
	out := trainAddrs(p, 1, 1, 200, 300)
	if len(out) != 0 {
		t.Errorf("evicted entry retained state: %v", out)
	}
}

func TestStrideRPTRegionTraining(t *testing.T) {
	p := NewStrideRPT(StrideRPTOptions{})
	// Same 64KB region, constant stride.
	out := trainAddrs(p, 0, 1, 0x10000, 0x10100, 0x10200)
	if len(out) != 1 || out[0] != 0x10300 {
		t.Fatalf("prefetch = %v, want [0x10300]", out)
	}
}

func TestStrideRPTSeparateRegions(t *testing.T) {
	p := NewStrideRPT(StrideRPTOptions{})
	// Alternating between two far-apart regions; per-region strides hold.
	var out []Candidate
	addrsA := []uint64{0x10000, 0x10100, 0x10200}
	addrsB := []uint64{0x90000, 0x90040, 0x90080}
	for i := 0; i < 3; i++ {
		out = p.Observe(Train{PC: 0, WarpID: 0, Addr: addrsA[i], Footprint: fp}, out)
		out = p.Observe(Train{PC: 0, WarpID: 0, Addr: addrsB[i], Footprint: fp}, out)
	}
	if len(out) != 2 {
		t.Fatalf("prefetches = %v, want one per region", out)
	}
}

func TestStreamDetectsAscending(t *testing.T) {
	p := NewStream(StreamOptions{})
	out := trainAddrs(p, 0, 1, 0, 64, 128)
	if len(out) != 1 || out[0] != 192 {
		t.Fatalf("prefetch = %v, want [192]", out)
	}
}

func TestStreamDetectsDescending(t *testing.T) {
	p := NewStream(StreamOptions{})
	out := trainAddrs(p, 0, 1, 10*64, 9*64, 8*64)
	if len(out) != 1 || out[0] != 7*64 {
		t.Fatalf("prefetch = %v, want [448]", out)
	}
}

func TestStreamWindow(t *testing.T) {
	p := NewStream(StreamOptions{Window: 4})
	// Jumping far allocates a fresh stream instead of matching.
	out := trainAddrs(p, 0, 1, 0, 1<<20, 2<<20)
	if len(out) != 0 {
		t.Errorf("far jumps should not train a stream: %v", out)
	}
}

func TestStreamWarpAware(t *testing.T) {
	naive := NewStream(StreamOptions{})
	enh := NewStream(StreamOptions{WarpAware: true})
	// Two warps ping-pong within one region in opposite directions:
	// ascending for warp 1, descending for warp 2 — combined, direction
	// confidence never builds for the naive version.
	var nOut, eOut []Candidate
	w1 := []uint64{0, 64, 128, 192}
	w2 := []uint64{640, 576, 512, 448}
	for i := 0; i < 4; i++ {
		tr1 := Train{PC: 0, WarpID: 1, Addr: w1[i], Footprint: fp}
		tr2 := Train{PC: 0, WarpID: 2, Addr: w2[i], Footprint: fp}
		nOut = naive.Observe(tr1, nOut)
		nOut = naive.Observe(tr2, nOut)
		eOut = enh.Observe(tr1, eOut)
		eOut = enh.Observe(tr2, eOut)
	}
	if len(eOut) <= len(nOut) {
		t.Errorf("warp-aware stream (%d prefetches) should beat naive (%d)", len(eOut), len(nOut))
	}
}

func TestGHBConstantStride(t *testing.T) {
	p := NewGHB(GHBOptions{})
	out := trainAddrs(p, 0, 1, 0x1000, 0x1040, 0x1080)
	if len(out) != 1 || out[0] != 0x10C0 {
		t.Fatalf("prefetch = %v, want [0x10C0]", out)
	}
}

func TestGHBDeltaCorrelation(t *testing.T) {
	p := NewGHB(GHBOptions{Degree: 2})
	// Repeating irregular pattern within one CZone: deltas +8, +56, +8, +56...
	// (all within a 4KB zone). After the pattern repeats, the pair
	// correlation should predict the next deltas.
	addrs := []uint64{0x100, 0x108, 0x140, 0x148, 0x180}
	out := trainAddrs(p, 0, 1, addrs...)
	if len(out) == 0 {
		t.Fatal("delta correlation produced nothing")
	}
	// Last two deltas are (+56, +8)? time order: 8,56,8,56,8... at 0x180
	// recent pair is (56, 8); earlier occurrence found; next delta is +8
	// -> first prediction 0x188.
	if out[0] != 0x188 {
		t.Errorf("first prediction = %#x, want 0x188", out[0])
	}
}

func TestGHBSeparateCZones(t *testing.T) {
	p := NewGHB(GHBOptions{})
	var out []Candidate
	// Interleave two zones; strides per zone must still be found.
	for i := uint64(0); i < 3; i++ {
		out = p.Observe(Train{PC: 0, WarpID: 0, Addr: 0x1000 + i*64, Footprint: fp}, out)
		out = p.Observe(Train{PC: 0, WarpID: 0, Addr: 0x100000 + i*128, Footprint: fp}, out)
	}
	if len(out) != 2 {
		t.Fatalf("prefetches = %v, want one per zone", out)
	}
}

func TestGHBFeedbackAdjustsDegree(t *testing.T) {
	p := NewGHB(GHBOptions{Feedback: true})
	if p.degree != 1 {
		t.Fatalf("initial degree = %d", p.degree)
	}
	p.ApplyFeedback(Feedback{Issued: 100, Useful: 90})
	if p.degree != 2 {
		t.Errorf("degree after high accuracy = %d, want 2", p.degree)
	}
	p.ApplyFeedback(Feedback{Issued: 100, Useful: 5})
	if p.degree != 1 {
		t.Errorf("degree after low accuracy = %d, want 1", p.degree)
	}
	// Bounded below.
	p.ApplyFeedback(Feedback{Issued: 100, Useful: 5})
	if p.degree != 1 {
		t.Errorf("degree fell below 1: %d", p.degree)
	}
	// No feedback flag: degree frozen.
	q := NewGHB(GHBOptions{})
	q.ApplyFeedback(Feedback{Issued: 100, Useful: 100})
	if q.degree != 1 {
		t.Error("feedback applied to non-feedback GHB")
	}
}

func TestStridePCThrottleDropsOnLateness(t *testing.T) {
	p := NewStridePC(StridePCOptions{WarpAware: true, Throttled: true})
	p.ApplyFeedback(Feedback{Issued: 100, Late: 90})
	if p.dropNum != 1 {
		t.Fatalf("dropNum = %d, want 1", p.dropNum)
	}
	// With dropping active, a trained stream generates fewer prefetches.
	var out []Candidate
	for i := uint64(0); i < 16; i++ {
		out = p.Observe(Train{PC: 1, WarpID: 1, Addr: i * 1000, Footprint: fp}, out)
	}
	if len(out) >= 14 {
		t.Errorf("throttled StridePC issued %d of 14 possible prefetches", len(out))
	}
	// Recovery.
	p.ApplyFeedback(Feedback{Issued: 100, Late: 0})
	if p.dropNum != 0 {
		t.Errorf("dropNum after recovery = %d, want 0", p.dropNum)
	}
}

func TestLRUTable(t *testing.T) {
	tab := newTable[int, int](2)
	tab.put(1, 10)
	tab.put(2, 20)
	if v, ok := tab.get(1); !ok || *v != 10 {
		t.Fatal("get(1) failed")
	}
	tab.put(3, 30) // evicts 2 (LRU)
	if _, ok := tab.get(2); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := tab.get(1); !ok {
		t.Error("recently used entry evicted")
	}
	if tab.len() != 2 {
		t.Errorf("len = %d, want 2", tab.len())
	}
	if tab.evictions != 1 {
		t.Errorf("evictions = %d, want 1", tab.evictions)
	}
	// Replacing an existing key must not evict.
	tab.put(1, 11)
	if v, _ := tab.get(1); *v != 11 {
		t.Error("put did not replace value")
	}
	if tab.evictions != 1 {
		t.Error("replacement counted as eviction")
	}
}

func TestLRUTablePeek(t *testing.T) {
	tab := newTable[int, int](2)
	tab.put(1, 10)
	tab.put(2, 20)
	tab.peek(1)    // must NOT refresh 1
	tab.put(3, 30) // evicts 1
	if _, ok := tab.peek(1); ok {
		t.Error("peek refreshed LRU position")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		p    Prefetcher
		want string
	}{
		{NewStridePC(StridePCOptions{}), "stridepc"},
		{NewStridePC(StridePCOptions{WarpAware: true}), "stridepc+wid"},
		{NewStridePC(StridePCOptions{WarpAware: true, Throttled: true}), "stridepc+wid+T"},
		{NewStrideRPT(StrideRPTOptions{}), "stride"},
		{NewStrideRPT(StrideRPTOptions{WarpAware: true}), "stride+wid"},
		{NewStream(StreamOptions{}), "stream"},
		{NewGHB(GHBOptions{WarpAware: true, Feedback: true}), "ghb+wid+F"},
		{NewMTHWP(MTHWPOptions{EnableGS: true, EnableIP: true}), "pws+gs+ip"},
		{NewMTHWP(MTHWPOptions{}), "pws"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestGHBPCDCVariant(t *testing.T) {
	p := NewGHB(GHBOptions{PCLocalized: true, WarpAware: true})
	if p.Name() != "ghb-pcdc+wid" {
		t.Errorf("Name = %q", p.Name())
	}
	// PC-localized delta correlation: one PC strides across far-apart
	// zones — AC/DC's CZone index would fragment the history, PC/DC
	// should still find the stride.
	var out []Candidate
	for i := uint64(0); i < 3; i++ {
		out = p.Observe(Train{PC: 7, WarpID: 1, Addr: i * (1 << 16), Footprint: fp}, out)
	}
	if len(out) != 1 || out[0].Addr != 3<<16 {
		t.Fatalf("PC/DC prefetch = %v, want [0x30000]", out)
	}
	// The plain AC/DC version fragments this pattern across zones.
	q := NewGHB(GHBOptions{WarpAware: true})
	out = nil
	for i := uint64(0); i < 3; i++ {
		out = q.Observe(Train{PC: 7, WarpID: 1, Addr: i * (1 << 16), Footprint: fp}, out)
	}
	if len(out) != 0 {
		t.Errorf("AC/DC found a cross-zone stride: %v", out)
	}
}
