package prefetch

import "fmt"

// TableCost describes the storage of one MT-HWP table (Table VI).
type TableCost struct {
	Name         string
	Fields       string
	BitsPerEntry int
	Entries      int
}

// TotalBits returns the table's storage in bits.
func (t TableCost) TotalBits() int { return t.BitsPerEntry * t.Entries }

// MTHWPCost reproduces Table VI: the hardware budget of MT-HWP with the
// evaluated 32-entry PWS, 8-entry GS and 8-entry IP tables.
//
// Field widths, from the paper: PC 4B, warp id 1B, train bit 1b, last
// address 4B, stride 20b; the IP table keeps two (wid, addr) pairs.
func MTHWPCost() []TableCost {
	const (
		pcBits     = 32 // PC (4B)
		widBits    = 8  // wid (1B)
		trainBits  = 1
		addrBits   = 32 // last addr (4B)
		strideBits = 20
	)
	return []TableCost{
		{
			Name:         "PWS",
			Fields:       "PC (4B), wid (1B), train (1b), last (4B), stride (20b)",
			BitsPerEntry: pcBits + widBits + trainBits + addrBits + strideBits, // 93
			Entries:      32,
		},
		{
			Name:         "GS",
			Fields:       "PC (4B), stride (20b)",
			BitsPerEntry: pcBits + strideBits, // 52
			Entries:      8,
		},
		{
			Name:         "IP",
			Fields:       "PC (4B), stride (20b), train (1b), 2-wid (2B), 2-addr (8B)",
			BitsPerEntry: pcBits + strideBits + trainBits + 2*widBits + 2*addrBits, // 133
			Entries:      8,
		},
	}
}

// MTHWPCostBytes returns the total MT-HWP storage rounded up to bytes
// (557 bytes in the paper).
func MTHWPCostBytes() int {
	bits := 0
	for _, t := range MTHWPCost() {
		bits += t.TotalBits()
	}
	return (bits + 7) / 8
}

// CostString renders Table VI.
func CostString() string {
	s := ""
	total := 0
	for _, t := range MTHWPCost() {
		s += fmt.Sprintf("%-4s %d x %d bits  (%s)\n", t.Name, t.Entries, t.BitsPerEntry, t.Fields)
		total += t.TotalBits()
	}
	s += fmt.Sprintf("Total: %d bits = %d bytes\n", total, MTHWPCostBytes())
	return s
}
