package prefetch

import "mtprefetch/internal/memreq"

// strideState is the classic stride-prefetcher training automaton
// (Chen & Baer / Fu, Patel, Janssens).
type strideState struct {
	lastAddr uint64
	stride   int64
	conf     int // consecutive confirmations of stride
}

// observe updates the automaton with a new address and reports whether the
// stride is confirmed (trained) for prefetch generation. A repeated
// address (delta 0) carries no stride information — sliding-window
// kernels re-touch blocks constantly — so it neither confirms nor resets.
func (s *strideState) observe(addr uint64) bool {
	delta := int64(addr) - int64(s.lastAddr)
	switch {
	case delta == 0:
		return s.conf >= 1
	case delta == s.stride:
		if s.conf < 4 {
			s.conf++
		}
	default:
		s.stride = delta
		s.conf = 0
	}
	s.lastAddr = addr
	return s.conf >= 1 // stride seen twice in a row
}

// StridePC is the per-PC stride prefetcher of Table V ("StridePC",
// 1024-entry). In naive form the table is indexed by PC alone, so the
// interleaved accesses of many warps at one PC destroy the stride (Fig. 5);
// the enhanced form indexes by (PC, warp id). The throttled variant
// ("StridePC+T", Section VIII-C) drops a fraction of generated prefetches
// proportional to the observed lateness of earlier prefetches.
type StridePC struct {
	tab       *table[key2, strideState]
	warpAware bool
	distance  int
	degree    int

	// Lateness-directed throttling (StridePC+T).
	throttled bool
	dropNum   int // drop dropNum out of every 4 candidates
	dropTick  int
}

// StridePCOptions configures a StridePC prefetcher.
type StridePCOptions struct {
	TableSize int  // entries (default 1024)
	WarpAware bool // enhanced warp-id indexing
	Distance  int
	Degree    int
	Throttled bool // enable lateness-directed throttling (+T)
}

// NewStridePC builds a StridePC prefetcher.
func NewStridePC(o StridePCOptions) *StridePC {
	if o.TableSize == 0 {
		o.TableSize = 1024
	}
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.Degree == 0 {
		o.Degree = 1
	}
	return &StridePC{
		tab:       newTable[key2, strideState](o.TableSize),
		warpAware: o.WarpAware,
		distance:  o.Distance,
		degree:    o.Degree,
		throttled: o.Throttled,
	}
}

// Name implements Prefetcher.
func (p *StridePC) Name() string {
	n := "stridepc"
	if p.warpAware {
		n += "+wid"
	}
	if p.throttled {
		n += "+T"
	}
	return n
}

func (p *StridePC) key(t Train) key2 {
	if p.warpAware {
		return key2{t.PC, t.WarpID}
	}
	return key2{t.PC, 0}
}

// Observe implements Prefetcher.
func (p *StridePC) Observe(t Train, out []Candidate) []Candidate {
	k := p.key(t)
	st, ok := p.tab.get(k)
	if !ok {
		st, _ = p.tab.put(k, strideState{lastAddr: t.Addr})
		return out
	}
	if !st.observe(t.Addr) {
		return out
	}
	if p.throttled && p.dropNum > 0 {
		p.dropTick++
		if p.dropTick%4 < p.dropNum {
			return out
		}
	}
	return genStride(memreq.SrcStridePC, t.Addr, st.stride, p.distance, p.degree, t.Footprint, out)
}

// ApplyFeedback implements FeedbackPrefetcher for the +T variant: a high
// late fraction shrinks the number of prefetches issued.
func (p *StridePC) ApplyFeedback(f Feedback) {
	if !p.throttled || f.Issued == 0 {
		return
	}
	late := float64(f.Late) / float64(f.Issued)
	switch {
	case late > 0.5 && p.dropNum < 3:
		p.dropNum++
	case late < 0.1 && p.dropNum > 0:
		p.dropNum--
	}
}

var _ FeedbackPrefetcher = (*StridePC)(nil)
