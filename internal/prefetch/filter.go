package prefetch

// PollutionFilter is a hardware cache-pollution filter in the style of
// Zhuang & Lee [35] (discussed in the paper's Section X-B): a small table
// of saturating counters, indexed by the PC that generated a prefetch,
// classifying prefetches as good or bad from their observed outcomes.
// Prefetches from a PC whose recent history is dominated by early
// evictions are dropped before they reach the memory system.
//
// It composes with any Prefetcher: the core consults Allow before issuing
// a candidate and reports outcomes with RecordUseful/RecordEarly.
type PollutionFilter struct {
	tab       *table[int, int8]
	badThresh int8
	max       int8

	allowed uint64
	blocked uint64
}

// NewPollutionFilter builds a filter with the given table capacity
// (default 512 entries).
func NewPollutionFilter(capacity int) *PollutionFilter {
	if capacity == 0 {
		capacity = 512
	}
	return &PollutionFilter{
		tab:       newTable[int, int8](capacity),
		badThresh: 2,
		max:       3,
	}
}

// Allow reports whether a prefetch generated at pc should be issued.
func (f *PollutionFilter) Allow(pc int) bool {
	if v, ok := f.tab.peek(pc); ok && *v >= f.badThresh {
		f.blocked++
		return false
	}
	f.allowed++
	return true
}

// RecordEarly notes that a prefetch from pc was evicted before use.
func (f *PollutionFilter) RecordEarly(pc int) {
	v, ok := f.tab.get(pc)
	if !ok {
		v, _ = f.tab.put(pc, 0)
	}
	if *v < f.max {
		*v++
	}
}

// RecordUseful notes that a prefetch from pc served a demand.
func (f *PollutionFilter) RecordUseful(pc int) {
	if v, ok := f.tab.get(pc); ok && *v > 0 {
		*v--
	}
}

// Blocked reports how many candidates the filter dropped.
func (f *PollutionFilter) Blocked() uint64 { return f.blocked }

// Allowed reports how many candidates the filter passed.
func (f *PollutionFilter) Allowed() uint64 { return f.allowed }
