package prefetch

import "testing"

func TestPollutionFilterBlocksBadPC(t *testing.T) {
	f := NewPollutionFilter(0)
	if !f.Allow(7) {
		t.Fatal("fresh PC blocked")
	}
	f.RecordEarly(7)
	if !f.Allow(7) {
		t.Fatal("blocked after a single early eviction")
	}
	f.RecordEarly(7)
	if f.Allow(7) {
		t.Fatal("not blocked after repeated early evictions")
	}
	if f.Blocked() != 1 {
		t.Errorf("Blocked = %d, want 1", f.Blocked())
	}
}

func TestPollutionFilterRecovers(t *testing.T) {
	f := NewPollutionFilter(0)
	f.RecordEarly(7)
	f.RecordEarly(7)
	if f.Allow(7) {
		t.Fatal("should be blocked")
	}
	// Useful outcomes rehabilitate the PC.
	f.RecordUseful(7)
	if !f.Allow(7) {
		t.Fatal("did not recover after useful prefetch")
	}
}

func TestPollutionFilterSaturates(t *testing.T) {
	f := NewPollutionFilter(0)
	for i := 0; i < 100; i++ {
		f.RecordEarly(3)
	}
	// Saturation means a bounded number of useful events re-enables it.
	for i := 0; i < 2; i++ {
		f.RecordUseful(3)
	}
	if !f.Allow(3) {
		t.Fatal("counter did not saturate: recovery took more than max-threshold+1 useful events")
	}
}

func TestPollutionFilterIsolatesPCs(t *testing.T) {
	f := NewPollutionFilter(0)
	f.RecordEarly(1)
	f.RecordEarly(1)
	if f.Allow(1) {
		t.Error("PC 1 should be blocked")
	}
	if !f.Allow(2) {
		t.Error("PC 2 should be unaffected")
	}
}

func TestPollutionFilterUsefulUnknownPC(t *testing.T) {
	f := NewPollutionFilter(0)
	f.RecordUseful(99) // must not panic or allocate garbage state
	if !f.Allow(99) {
		t.Error("unknown PC blocked")
	}
}

func TestPollutionFilterCapacity(t *testing.T) {
	f := NewPollutionFilter(2)
	f.RecordEarly(1)
	f.RecordEarly(1)
	f.RecordEarly(2)
	f.RecordEarly(2)
	f.RecordEarly(3) // evicts PC 1 (LRU)
	f.RecordEarly(3)
	if f.Allow(2) || f.Allow(3) {
		t.Error("resident bad PCs allowed")
	}
	if !f.Allow(1) {
		t.Error("evicted PC should be forgiven")
	}
}
