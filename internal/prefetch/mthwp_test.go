package prefetch

import (
	"testing"

	"mtprefetch/internal/memreq"
)

func TestMTHWPPWSTraining(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{})
	out := trainAddrs(p, 0x1a, 1, 0, 1000, 2000)
	if len(out) != 1 || out[0] != 3000 {
		t.Fatalf("PWS prefetch = %v, want [3000]", out)
	}
	s := p.Stats()
	if s.PWSHits != 1 || s.GSHits != 0 || s.IPHits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestMTHWPStridePromotion exercises the GS table: once three warps agree
// on a stride for a PC, a fourth (yet-untrained) warp prefetches
// immediately from the GS table without any PWS access.
func TestMTHWPStridePromotion(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableGS: true})
	// Three warps each train the same 1000-byte stride (Fig. 5 left).
	for w := 1; w <= 3; w++ {
		base := uint64(w * 10)
		trainAddrs(p, 0x1a, w, base, base+1000, base+2000)
	}
	if got := p.Stats().Promotions; got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	pwsBefore := p.Stats().PWSAccesses
	// Warp 4 has never been seen; its very first access must prefetch.
	var out []Candidate
	out = p.Observe(Train{PC: 0x1a, WarpID: 4, Addr: 40, Footprint: fp}, out)
	if len(out) != 1 || out[0].Addr != 1040 {
		t.Fatalf("GS prefetch = %v, want [1040]", out)
	}
	if out[0].Source != memreq.SrcGS {
		t.Errorf("GS prefetch source = %v, want gs", out[0].Source)
	}
	s := p.Stats()
	if s.GSHits != 1 {
		t.Errorf("GSHits = %d, want 1", s.GSHits)
	}
	if s.PWSAccesses != pwsBefore {
		t.Errorf("GS hit performed a PWS access (%d -> %d)", pwsBefore, s.PWSAccesses)
	}
}

func TestMTHWPNoPromotionOnDisagreement(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableGS: true})
	strides := []uint64{1000, 2000, 3000, 4000}
	for w := 1; w <= 4; w++ {
		s := strides[w-1]
		trainAddrs(p, 0x1a, w, 0, s, 2*s)
	}
	if got := p.Stats().Promotions; got != 0 {
		t.Errorf("Promotions = %d, want 0 (strides differ across warps)", got)
	}
}

// TestMTHWPInterThread exercises the IP table on the mp-type pattern:
// loop-free kernels where warp w touches base + w*128 at one PC. No
// per-warp stride exists (each warp accesses the PC once), but the
// cross-warp stride is constant.
func TestMTHWPInterThread(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableIP: true})
	var out []Candidate
	// Warps 1,2,3 arrive in order; per-warp stride never trains.
	for w := 1; w <= 3; w++ {
		out = p.Observe(Train{PC: 7, WarpID: w, Addr: uint64(w * 128), Footprint: fp}, out[:0])
	}
	// After three consistent accesses the IP stride (128/warp) is trained;
	// warp 3's access prefetches for warp 4.
	if len(out) != 1 || out[0].Addr != 512 {
		t.Fatalf("IP prefetch = %v, want [512]", out)
	}
	if out[0].Source != memreq.SrcHWIP {
		t.Errorf("IP prefetch source = %v, want hw-ip", out[0].Source)
	}
	if got := p.Stats().IPHits; got != 1 {
		t.Errorf("IPHits = %d, want 1", got)
	}
}

func TestMTHWPInterThreadOutOfOrderWarps(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableIP: true})
	var out []Candidate
	// Warps arrive 2, 5, 9: deltas 3 and 4 warps, addresses consistent
	// with 128 bytes/warp.
	for _, w := range []int{2, 5, 9} {
		out = p.Observe(Train{PC: 7, WarpID: w, Addr: uint64(w * 128), Footprint: fp}, out[:0])
	}
	if len(out) != 1 || out[0].Addr != uint64(10*128) {
		t.Fatalf("IP prefetch = %v, want [1280]", out)
	}
}

func TestMTHWPIPDisabledWithoutFlag(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{})
	var out []Candidate
	for w := 1; w <= 5; w++ {
		out = p.Observe(Train{PC: 7, WarpID: w, Addr: uint64(w * 128), Footprint: fp}, out)
	}
	if len(out) != 0 {
		t.Errorf("PWS-only config generated IP prefetches: %v", out)
	}
}

// TestMTHWPPWSPriorityOverIP: for stride-type access patterns both PWS and
// IP may be trained; PWS must win (Section VIII-B: "Since PWS has higher
// priority than IP, all prefetches are covered by PWS").
func TestMTHWPPWSPriorityOverIP(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableIP: true})
	// Interleave warps so both per-warp (stride 1000) and cross-warp
	// (stride 10) patterns exist, like Fig. 5.
	var out []Candidate
	seq := []struct {
		w int
		a uint64
	}{
		{1, 0}, {2, 10}, {3, 20}, // trains IP (10/warp)
		{1, 1000}, {2, 1010}, {3, 1020}, // PWS deltas 1000
		{1, 2000}, {2, 2010}, {3, 2020}, // PWS trained now
	}
	hits := map[string]uint64{}
	for _, s := range seq {
		out = p.Observe(Train{PC: 0x1a, WarpID: s.w, Addr: s.a, Footprint: fp}, out[:0])
		st := p.Stats()
		hits["pws"], hits["ip"] = st.PWSHits, st.IPHits
	}
	if hits["pws"] == 0 {
		t.Error("PWS never generated despite trained per-warp stride")
	}
	// The last three accesses have trained PWS entries; they must come
	// from PWS, not IP.
	st := p.Stats()
	if st.PWSHits < 3 {
		t.Errorf("PWSHits = %d, want >= 3", st.PWSHits)
	}
}

func TestMTHWPGSPriorityOverIP(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableGS: true, EnableIP: true})
	for w := 1; w <= 3; w++ {
		base := uint64(w * 10)
		trainAddrs(p, 0x1a, w, base, base+1000, base+2000)
	}
	ipBefore := p.Stats().IPHits
	var out []Candidate
	out = p.Observe(Train{PC: 0x1a, WarpID: 9, Addr: 90, Footprint: fp}, out)
	if len(out) != 1 || out[0].Addr != 1090 {
		t.Fatalf("prefetch = %v, want GS-generated [1090]", out)
	}
	if p.Stats().IPHits != ipBefore {
		t.Error("IP generated despite GS hit")
	}
}

func TestMTHWPIPZeroStrideNotTrained(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableIP: true})
	var out []Candidate
	for w := 1; w <= 6; w++ {
		out = p.Observe(Train{PC: 7, WarpID: w, Addr: 4096, Footprint: fp}, out)
	}
	if len(out) != 0 {
		t.Errorf("zero cross-warp stride generated prefetches: %v", out)
	}
}

func TestMTHWPFootprintReplay(t *testing.T) {
	p := NewMTHWP(MTHWPOptions{EnableIP: true})
	foot := []uint64{0, 64, 128} // partially uncoalesced access
	var out []Candidate
	for w := 1; w <= 3; w++ {
		out = p.Observe(Train{PC: 7, WarpID: w, Addr: uint64(w * 4096), Footprint: foot}, out[:0])
	}
	want := []uint64{4 * 4096, 4*4096 + 64, 4*4096 + 128}
	if len(out) != 3 {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i].Addr != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestMTHWPTableVICost(t *testing.T) {
	costs := MTHWPCost()
	want := map[string]struct{ bits, entries int }{
		"PWS": {93, 32},
		"GS":  {52, 8},
		"IP":  {133, 8},
	}
	for _, c := range costs {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected table %q", c.Name)
			continue
		}
		if c.BitsPerEntry != w.bits || c.Entries != w.entries {
			t.Errorf("%s = %d bits x %d entries, want %d x %d",
				c.Name, c.BitsPerEntry, c.Entries, w.bits, w.entries)
		}
	}
	if got := MTHWPCostBytes(); got != 557 {
		t.Errorf("total cost = %d bytes, want 557 (Table VI)", got)
	}
	if CostString() == "" {
		t.Error("CostString empty")
	}
}

// TestMTHWPGSReducesPWSAccesses verifies the Section VIII-B mechanism that
// motivates the GS table: after promotion, a stream of stride-friendly
// accesses performs almost no PWS lookups.
func TestMTHWPGSReducesPWSAccesses(t *testing.T) {
	withGS := NewMTHWP(MTHWPOptions{EnableGS: true})
	without := NewMTHWP(MTHWPOptions{})
	feed := func(p *MTHWP) MTHWPStats {
		for w := 1; w <= 16; w++ {
			for i := uint64(0); i < 8; i++ {
				p.Observe(Train{PC: 0x1a, WarpID: w, Addr: uint64(w*16) + i*1000, Footprint: fp}, nil)
			}
		}
		return p.Stats()
	}
	a, b := feed(withGS), feed(without)
	if a.PWSAccesses >= b.PWSAccesses/2 {
		t.Errorf("GS saved too few PWS accesses: %d with GS vs %d without",
			a.PWSAccesses, b.PWSAccesses)
	}
}
