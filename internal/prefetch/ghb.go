package prefetch

import "mtprefetch/internal/memreq"

// GHB is the global history buffer prefetcher of Table V (Nesbit &
// Smith): an n-entry FIFO of recent miss addresses threaded by linked
// lists. In AC/DC form (the paper's configuration) the index table is
// keyed by CZone (address region); the PC/DC variant localizes by the
// accessing PC instead. On each access it rebuilds the localized delta
// history and applies two-delta correlation to predict the next
// addresses; a repeating pair of deltas anywhere in the history replays
// the deltas that followed it.
//
// The enhanced form additionally separates streams per warp id.
type GHB struct {
	buf       []ghbEntry // circular
	seq       uint64     // total pushes; buf[(seq-1) % len] is newest
	index     *table[key2, uint64]
	czoneBits uint
	pcLocal   bool
	warpAware bool
	distance  int
	degree    int
	maxChain  int

	// Accuracy-directed feedback (GHB+F, Section VIII-C): degree rises
	// when prefetch accuracy is high and falls when it is low.
	feedback  bool
	minDegree int
	maxDegree int
}

type ghbEntry struct {
	addr uint64
	key  key2
	prev uint64 // seq of previous entry with same key; 0 = none
}

// GHBOptions configures a GHB prefetcher.
type GHBOptions struct {
	BufferSize  int  // GHB entries (default 1024)
	IndexSize   int  // index-table entries (default 128)
	CZoneBits   uint // log2 of CZone size in bytes (default 12 = 4KB zones)
	PCLocalized bool // PC/DC variant: localize by PC instead of CZone
	WarpAware   bool
	Distance    int
	Degree      int
	Feedback    bool // enable accuracy-directed degree control (+F)
}

// NewGHB builds a GHB AC/DC prefetcher.
func NewGHB(o GHBOptions) *GHB {
	if o.BufferSize == 0 {
		o.BufferSize = 1024
	}
	if o.IndexSize == 0 {
		o.IndexSize = 128
	}
	if o.CZoneBits == 0 {
		o.CZoneBits = 12
	}
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.Degree == 0 {
		o.Degree = 1
	}
	return &GHB{
		buf:       make([]ghbEntry, o.BufferSize),
		index:     newTable[key2, uint64](o.IndexSize),
		czoneBits: o.CZoneBits,
		pcLocal:   o.PCLocalized,
		warpAware: o.WarpAware,
		distance:  o.Distance,
		degree:    o.Degree,
		maxChain:  16,
		feedback:  o.Feedback,
		minDegree: 1,
		maxDegree: 4,
	}
}

// Name implements Prefetcher.
func (p *GHB) Name() string {
	n := "ghb"
	if p.pcLocal {
		n = "ghb-pcdc"
	}
	if p.warpAware {
		n += "+wid"
	}
	if p.feedback {
		n += "+F"
	}
	return n
}

// entryAt returns the buffer entry for a sequence number if it is still
// resident, i.e. not yet overwritten by the FIFO.
func (p *GHB) entryAt(seq uint64) (*ghbEntry, bool) {
	if seq == 0 || seq+uint64(len(p.buf)) <= p.seq {
		return nil, false
	}
	e := &p.buf[(seq-1)%uint64(len(p.buf))]
	return e, true
}

// Observe implements Prefetcher.
func (p *GHB) Observe(t Train, out []Candidate) []Candidate {
	k := key2{int(t.Addr >> p.czoneBits), 0}
	if p.pcLocal {
		k.a = t.PC
	}
	if p.warpAware {
		k.b = t.WarpID
	}
	var prev uint64
	if s, ok := p.index.get(k); ok {
		prev = *s
	}
	// Push the new head entry.
	p.seq++
	p.buf[(p.seq-1)%uint64(len(p.buf))] = ghbEntry{addr: t.Addr, key: k, prev: prev}
	p.index.put(k, p.seq)

	// Walk the chain, newest first, collecting addresses.
	var addrs [17]uint64 // maxChain+1
	n := 0
	addrs[n] = t.Addr
	n++
	for seq := prev; n <= p.maxChain; {
		e, ok := p.entryAt(seq)
		if !ok || e.key != k {
			break
		}
		addrs[n] = e.addr
		n++
		seq = e.prev
	}
	if n < 3 {
		return out
	}
	// Time-ordered deltas: with addrs newest-first, delta[i] is the step
	// taken *into* addrs[i]: delta[i] = addrs[i] - addrs[i+1].
	var deltas [16]int64
	nd := n - 1
	for i := 0; i < nd; i++ {
		deltas[i] = int64(addrs[i]) - int64(addrs[i+1])
	}
	d0, d1 := deltas[0], deltas[1] // most recent pair (d1 happened, then d0)
	// Two-delta correlation: find the most recent earlier occurrence of
	// the pair (d1, d0) and replay the deltas that followed it.
	for j := 1; j+1 < nd; j++ {
		if deltas[j] == d0 && deltas[j+1] == d1 {
			base := int64(t.Addr)
			deg := p.degree
			for i := 0; i < deg && j-1-i >= 0; i++ {
				base += deltas[j-1-i]
				if base <= 0 {
					break
				}
				out = genStride(memreq.SrcGHB, uint64(base), 0, 0, 1, t.Footprint, out)
			}
			return out
		}
	}
	// Constant-stride fallback when the two most recent deltas agree.
	if d0 == d1 && d0 != 0 {
		return genStride(memreq.SrcGHB, t.Addr, d0, p.distance, p.degree, t.Footprint, out)
	}
	return out
}

// ApplyFeedback implements FeedbackPrefetcher for the +F variant.
func (p *GHB) ApplyFeedback(f Feedback) {
	if !p.feedback || f.Issued == 0 {
		return
	}
	acc := float64(f.Useful) / float64(f.Issued)
	switch {
	case acc > 0.5 && p.degree < p.maxDegree:
		p.degree++
	case acc < 0.25 && p.degree > p.minDegree:
		p.degree--
	}
}

var _ FeedbackPrefetcher = (*GHB)(nil)
