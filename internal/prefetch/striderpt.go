package prefetch

import "mtprefetch/internal/memreq"

// StrideRPT is the region-based stride prefetcher of Table V ("Stride RPT",
// 1024-entry, 16 region bits): training state is indexed by the memory
// region an access falls in rather than by PC. The enhanced form
// additionally separates regions per warp id.
type StrideRPT struct {
	tab        *table[key2, strideState]
	regionBits uint
	warpAware  bool
	distance   int
	degree     int
}

// StrideRPTOptions configures a StrideRPT prefetcher.
type StrideRPTOptions struct {
	TableSize  int  // entries (default 1024)
	RegionBits uint // log2 of the region size in bytes (default 16 = 64KB)
	WarpAware  bool
	Distance   int
	Degree     int
}

// NewStrideRPT builds a region-stride prefetcher.
func NewStrideRPT(o StrideRPTOptions) *StrideRPT {
	if o.TableSize == 0 {
		o.TableSize = 1024
	}
	if o.RegionBits == 0 {
		o.RegionBits = 16
	}
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.Degree == 0 {
		o.Degree = 1
	}
	return &StrideRPT{
		tab:        newTable[key2, strideState](o.TableSize),
		regionBits: o.RegionBits,
		warpAware:  o.WarpAware,
		distance:   o.Distance,
		degree:     o.Degree,
	}
}

// Name implements Prefetcher.
func (p *StrideRPT) Name() string {
	if p.warpAware {
		return "stride+wid"
	}
	return "stride"
}

// Observe implements Prefetcher.
func (p *StrideRPT) Observe(t Train, out []Candidate) []Candidate {
	region := int(t.Addr >> p.regionBits)
	k := key2{region, 0}
	if p.warpAware {
		k.b = t.WarpID
	}
	st, ok := p.tab.get(k)
	if !ok {
		p.tab.put(k, strideState{lastAddr: t.Addr})
		return out
	}
	if !st.observe(t.Addr) {
		return out
	}
	return genStride(memreq.SrcStrideRPT, t.Addr, st.stride, p.distance, p.degree, t.Footprint, out)
}
