// Package trace provides an offline, trace-driven workflow for prefetcher
// development, mirroring how the paper's own simulator was driven
// (GPUOcelot-generated traces): kernels are executed functionally to
// produce per-warp memory-access event streams, events are serialized in
// a compact binary format, and recorded streams can be replayed against
// any hardware prefetcher to measure pattern coverage and accuracy
// without running the full timing simulator.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mtprefetch/internal/kernel"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/workload"
)

// Event is one warp-level demand access: the leading block address plus
// the block offsets of the coalesced footprint (offset 0 included).
type Event struct {
	PC        uint32
	WarpID    uint32
	Addr      uint64
	Footprint []uint32 // byte offsets from Addr, block-aligned
}

// Order selects how warps' accesses interleave in a generated trace.
type Order uint8

const (
	// WarpMajor emits each warp's whole access stream before the next
	// warp's — the "executed long enough to train" best case of
	// Section VIII-A.
	WarpMajor Order = iota
	// Interleaved round-robins accesses across a resident window of
	// warps, reproducing the Fig. 5 interleaving a real core produces.
	Interleaved
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case WarpMajor:
		return "warp-major"
	case Interleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// Generate functionally executes a workload's kernel and returns its
// demand-access events. window is the number of co-resident warps for
// Interleaved order (typically Spec.ActiveWarpsPerCore()).
func Generate(s *workload.Spec, order Order, window, blockBytes int) []Event {
	if window < 1 {
		window = 1
	}
	perWarp := func(gwid int) []Event {
		var evs []Event
		prog := s.Program
		iter := 0
		trips := prog.LoopTrips
		var buf []uint64
		for pc := 0; pc < len(prog.Instrs); pc++ {
			in := &prog.Instrs[pc]
			switch in.Op {
			case kernel.OpLoad:
				buf = in.Mem.Transactions(gwid, 32, iter, blockBytes, buf[:0])
				base := buf[0]
				for _, a := range buf[1:] {
					if a < base {
						base = a
					}
				}
				foot := make([]uint32, len(buf))
				for i, a := range buf {
					foot[i] = uint32(a - base)
				}
				evs = append(evs, Event{PC: uint32(pc), WarpID: uint32(gwid), Addr: base, Footprint: foot})
			case kernel.OpLoopBack:
				if trips > 1 {
					trips--
					iter++
					pc = in.Target - 1
				}
			}
		}
		return evs
	}

	var out []Event
	switch order {
	case WarpMajor:
		for w := 0; w < s.TotalWarps; w++ {
			out = append(out, perWarp(w)...)
		}
	case Interleaved:
		for start := 0; start < s.TotalWarps; start += window {
			end := start + window
			if end > s.TotalWarps {
				end = s.TotalWarps
			}
			streams := make([][]Event, end-start)
			for i := range streams {
				streams[i] = perWarp(start + i)
			}
			for more := true; more; {
				more = false
				for i := range streams {
					if len(streams[i]) > 0 {
						out = append(out, streams[i][0])
						streams[i] = streams[i][1:]
						more = more || len(streams[i]) > 0
					}
				}
			}
		}
	}
	return out
}

// Binary format: magic, version, then per event:
//
//	u32 pc | u32 warp | u64 addr | u16 footLen | footLen x u32 offsets
var magic = [4]byte{'M', 'T', 'P', 'T'}

const version uint16 = 1

// Write serializes events to w.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(events))); err != nil {
		return err
	}
	for i := range events {
		e := &events[i]
		if len(e.Footprint) > 1<<16-1 {
			return fmt.Errorf("trace: footprint too large (%d)", len(e.Footprint))
		}
		if err := binary.Write(bw, binary.LittleEndian, e.PC); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.WarpID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.Addr); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(e.Footprint))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.Footprint); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not an mtprefetch trace)")
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxEvents = 1 << 30
	if n > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	events := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		var e Event
		if err := binary.Read(br, binary.LittleEndian, &e.PC); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &e.WarpID); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &e.Addr); err != nil {
			return nil, err
		}
		var fl uint16
		if err := binary.Read(br, binary.LittleEndian, &fl); err != nil {
			return nil, err
		}
		e.Footprint = make([]uint32, fl)
		if err := binary.Read(br, binary.LittleEndian, e.Footprint); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}

// ReplayResult summarizes an offline prefetcher replay.
type ReplayResult struct {
	Events              uint64 // warp accesses replayed
	Transactions        uint64 // block transactions
	Covered             uint64 // transactions that hit a prefetched block
	PrefetchesGenerated uint64
	PrefetchesUseful    uint64 // generated blocks later demanded before eviction
}

// Coverage is the fraction of demand transactions served by prefetches.
func (r ReplayResult) Coverage() float64 {
	if r.Transactions == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Transactions)
}

// Accuracy is the fraction of generated prefetches that proved useful.
func (r ReplayResult) Accuracy() float64 {
	if r.PrefetchesGenerated == 0 {
		return 0
	}
	return float64(r.PrefetchesUseful) / float64(r.PrefetchesGenerated)
}

// Replay drives a prefetcher with a trace against an idealized
// (zero-latency) prefetch cache of the given geometry. The result is the
// pattern-coverage upper bound: what the prefetcher could cover if
// timeliness were never an issue — the right tool for comparing training
// algorithms (e.g. naive vs warp-id indexing) in isolation.
func Replay(events []Event, p prefetch.Prefetcher, cacheBytes, ways, blockBytes int) ReplayResult {
	return ReplayObserved(events, p, cacheBytes, ways, blockBytes, nil)
}

// ReplayObserved is Replay with an optional event tracer: each demand
// access and generated prefetch is emitted on the observing warp's track,
// using the event index as the (pseudo-)cycle since offline replay has no
// timing. A nil tracer is free.
func ReplayObserved(events []Event, p prefetch.Prefetcher, cacheBytes, ways, blockBytes int, tr *obs.Tracer) ReplayResult {
	var res ReplayResult
	c := newReplayCache(cacheBytes, ways, blockBytes)
	var cand []prefetch.Candidate
	var foot []uint64
	for i := range events {
		e := &events[i]
		res.Events++
		hit := 0
		for _, off := range e.Footprint {
			res.Transactions++
			if c.demand(e.Addr + uint64(off)) {
				res.Covered++
				hit++
			}
		}
		covered := int64(0)
		if hit == len(e.Footprint) && hit > 0 {
			covered = 1
		}
		tr.Emit(obs.EvDemandAccess, uint64(i), int(e.WarpID), e.Addr, covered)
		foot = foot[:0]
		for _, off := range e.Footprint {
			foot = append(foot, uint64(off))
		}
		cand = p.Observe(prefetch.Train{
			PC: int(e.PC), WarpID: int(e.WarpID), Addr: e.Addr, Footprint: foot,
		}, cand[:0])
		for _, cd := range cand {
			res.PrefetchesGenerated++
			tr.Emit(obs.EvPrefetchIssued, uint64(i), int(e.WarpID), cd.Addr, int64(e.PC))
			c.fill(cd.Addr &^ (uint64(blockBytes) - 1))
		}
	}
	res.PrefetchesUseful = c.used
	return res
}

// replayCache is a tiny set-associative presence cache for Replay.
type replayCache struct {
	sets, ways int
	blockBits  uint
	tags       []uint64
	valid      []bool
	usedBit    []bool
	stampArr   []uint64
	stamp      uint64
	used       uint64
}

func newReplayCache(sizeBytes, ways, blockBytes int) *replayCache {
	c := &replayCache{ways: ways}
	for b := blockBytes; b > 1; b >>= 1 {
		c.blockBits++
	}
	c.sets = sizeBytes / blockBytes / ways
	if c.sets < 1 {
		c.sets = 1
	}
	n := c.sets * ways
	c.tags = make([]uint64, n)
	c.valid = make([]bool, n)
	c.usedBit = make([]bool, n)
	c.stampArr = make([]uint64, n)
	return c
}

func (c *replayCache) slot(addr uint64) (int, uint64) {
	blk := addr >> c.blockBits
	return int(blk%uint64(c.sets)) * c.ways, blk
}

func (c *replayCache) demand(addr uint64) bool {
	base, tag := c.slot(addr)
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.stamp++
			c.stampArr[i] = c.stamp
			if !c.usedBit[i] {
				c.usedBit[i] = true
				c.used++
			}
			return true
		}
	}
	return false
}

func (c *replayCache) fill(addr uint64) {
	base, tag := c.slot(addr)
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.stamp++
			c.stampArr[i] = c.stamp
			return
		}
		if !c.valid[i] {
			victim = i
			break
		}
		if c.stampArr[i] < c.stampArr[victim] {
			victim = i
		}
	}
	c.stamp++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.usedBit[victim] = false
	c.stampArr[victim] = c.stamp
}
