package trace

import (
	"bytes"
	"testing"

	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/workload"
)

func TestGenerateCounts(t *testing.T) {
	s := workload.ByName("monte").Scaled(64)
	evs := Generate(s, WarpMajor, 16, 64)
	c := s.Program.DynamicCounts()
	want := s.TotalWarps * c.Loads
	if len(evs) != want {
		t.Fatalf("events = %d, want %d (warps x dynamic loads)", len(evs), want)
	}
	// Interleaving preserves the event multiset size.
	evs2 := Generate(s, Interleaved, 16, 64)
	if len(evs2) != want {
		t.Fatalf("interleaved events = %d, want %d", len(evs2), want)
	}
}

func TestGenerateOrders(t *testing.T) {
	s := workload.ByName("monte").Scaled(128)
	wm := Generate(s, WarpMajor, 8, 64)
	il := Generate(s, Interleaved, 8, 64)
	// Warp-major: warp ids are non-decreasing.
	for i := 1; i < len(wm); i++ {
		if wm[i].WarpID < wm[i-1].WarpID {
			t.Fatal("warp-major order violated")
		}
	}
	// Interleaved: warp ids must change between adjacent events somewhere
	// early (round-robin across the window).
	changes := 0
	for i := 1; i < len(il) && i < 32; i++ {
		if il[i].WarpID != il[i-1].WarpID {
			changes++
		}
	}
	if changes < 8 {
		t.Fatalf("interleaved order too sequential: %d warp changes in 32 events", changes)
	}
}

func TestRoundTrip(t *testing.T) {
	s := workload.ByName("cfd").Scaled(404)
	evs := Generate(s, Interleaved, 6, 64)
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].PC != evs[i].PC || got[i].WarpID != evs[i].WarpID || got[i].Addr != evs[i].Addr {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], evs[i])
		}
		if len(got[i].Footprint) != len(evs[i].Footprint) {
			t.Fatalf("event %d footprint mismatch", i)
		}
		for j := range evs[i].Footprint {
			if got[i].Footprint[j] != evs[i].Footprint[j] {
				t.Fatalf("event %d offset %d mismatch", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated: valid header claiming events, then EOF.
	var buf bytes.Buffer
	Write(&buf, []Event{{PC: 1, WarpID: 2, Addr: 64, Footprint: []uint32{0}}})
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestWriteEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace read back %d events", len(got))
	}
}

// TestReplayStridePattern: a warp-major stride trace should be almost
// fully covered by a warp-aware StridePC prefetcher in the idealized
// replay (only cold/first accesses miss).
func TestReplayStridePattern(t *testing.T) {
	s := workload.ByName("scalar").Scaled(32)
	evs := Generate(s, WarpMajor, 16, 64)
	p := prefetch.NewStridePC(prefetch.StridePCOptions{WarpAware: true})
	res := Replay(evs, p, 16*1024, 8, 64)
	if res.Events == 0 || res.Transactions == 0 {
		t.Fatal("empty replay")
	}
	if cov := res.Coverage(); cov < 0.5 {
		t.Errorf("warp-aware coverage = %.2f, want > 0.5 on a pure stride trace", cov)
	}
	if acc := res.Accuracy(); acc < 0.5 {
		t.Errorf("accuracy = %.2f, want > 0.5", acc)
	}
}

// TestReplayFig5Offline reproduces the paper's Fig. 5 offline: on an
// interleaved trace, warp-aware training must beat naive PC-only training.
func TestReplayFig5Offline(t *testing.T) {
	s := workload.ByName("scalar").Scaled(16)
	evs := Generate(s, Interleaved, 16, 64)
	naive := Replay(evs, prefetch.NewStridePC(prefetch.StridePCOptions{}), 16*1024, 8, 64)
	aware := Replay(evs, prefetch.NewStridePC(prefetch.StridePCOptions{WarpAware: true}), 16*1024, 8, 64)
	if aware.Coverage() <= naive.Coverage() {
		t.Errorf("warp-aware coverage %.3f not above naive %.3f on interleaved trace",
			aware.Coverage(), naive.Coverage())
	}
}

func TestReplayMTHWPIPOnLoopFreeTrace(t *testing.T) {
	// mp-type kernels have no per-warp stride; only the IP table covers
	// them.
	s := workload.ByName("ocean").Scaled(512)
	evs := Generate(s, WarpMajor, 16, 64)
	pws := Replay(evs, prefetch.NewMTHWP(prefetch.MTHWPOptions{}), 16*1024, 8, 64)
	ip := Replay(evs, prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableIP: true}), 16*1024, 8, 64)
	if pws.PrefetchesGenerated != 0 {
		t.Errorf("PWS generated %d prefetches on a loop-free trace", pws.PrefetchesGenerated)
	}
	if ip.Coverage() < 0.5 {
		t.Errorf("IP coverage = %.3f on a regular loop-free trace, want > 0.5", ip.Coverage())
	}
}

func TestOrderString(t *testing.T) {
	for _, o := range []Order{WarpMajor, Interleaved, Order(9)} {
		if o.String() == "" {
			t.Errorf("Order(%d).String empty", uint8(o))
		}
	}
}

// TestGenerateMatchesSimulatorDemandCount cross-checks the functional
// trace generator against the timing simulator: total demand transactions
// must agree for the same workload.
func TestGenerateMatchesSimulatorDemandCount(t *testing.T) {
	s := workload.ByName("mersenne").Scaled(2)
	evs := Generate(s, WarpMajor, 8, 64)
	txs := uint64(0)
	for i := range evs {
		txs += uint64(len(evs[i].Footprint))
	}
	r, err := core.Run(core.Options{Workload: s})
	if err != nil {
		t.Fatal(err)
	}
	if txs != r.DemandTransactions {
		t.Errorf("trace transactions = %d, simulator demand transactions = %d", txs, r.DemandTransactions)
	}
}

func TestReplayEmpty(t *testing.T) {
	res := Replay(nil, prefetch.NewStridePC(prefetch.StridePCOptions{}), 1024, 4, 64)
	if res.Events != 0 || res.Coverage() != 0 || res.Accuracy() != 0 {
		t.Errorf("empty replay produced %+v", res)
	}
}

func TestWriteRejectsOversizedFootprint(t *testing.T) {
	var buf bytes.Buffer
	big := Event{Footprint: make([]uint32, 1<<16)}
	if err := Write(&buf, []Event{big}); err == nil {
		t.Error("oversized footprint accepted")
	}
}
