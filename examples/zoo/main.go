// Prefetcher zoo: run every implemented hardware prefetcher — the Table V
// CPU baselines in naive and warp-aware forms, the GHB PC/DC variant, and
// the paper's MT-HWP ablations — over a few representative benchmarks,
// side by side. This is Figures 13-15 condensed into one table.
//
//	go run ./examples/zoo
package main

import (
	"fmt"
	"log"

	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/workload"
)

func main() {
	zoo := []struct {
		name string
		make func() prefetch.Prefetcher
	}{
		{"stride", func() prefetch.Prefetcher { return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{}) }},
		{"stride+wid", func() prefetch.Prefetcher { return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true}) }},
		{"stridepc", func() prefetch.Prefetcher { return prefetch.NewStridePC(prefetch.StridePCOptions{}) }},
		{"stridepc+wid", func() prefetch.Prefetcher { return prefetch.NewStridePC(prefetch.StridePCOptions{WarpAware: true}) }},
		{"stream+wid", func() prefetch.Prefetcher { return prefetch.NewStream(prefetch.StreamOptions{WarpAware: true}) }},
		{"ghb+wid", func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true}) }},
		{"ghb-pcdc+wid", func() prefetch.Prefetcher {
			return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true, PCLocalized: true})
		}},
		{"pws", func() prefetch.Prefetcher { return prefetch.NewMTHWP(prefetch.MTHWPOptions{}) }},
		{"pws+gs", func() prefetch.Prefetcher { return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true}) }},
		{"mt-hwp", func() prefetch.Prefetcher {
			return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
		}},
	}
	benches := []string{"mersenne", "monte", "stream", "cfd", "sepia"}

	headers := append([]string{"prefetcher"}, benches...)
	t := stats.NewTable("speedup over no-prefetching baseline", headers...)

	baselines := map[string]*core.Result{}
	specs := map[string]*workload.Spec{}
	for _, b := range benches {
		s := workload.ByName(b)
		specs[b] = s.Scaled(s.Blocks / (14 * s.MaxBlocksPerCore * 2))
		r, err := core.Run(core.Options{Workload: specs[b]})
		if err != nil {
			log.Fatal(err)
		}
		baselines[b] = r
	}
	for _, z := range zoo {
		cells := []string{z.name}
		for _, b := range benches {
			r, err := core.Run(core.Options{Workload: specs[b], Hardware: z.make})
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, fmt.Sprintf("%.2f", r.Speedup(baselines[b])))
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
	fmt.Println("wid = warp-id-indexed training; pws/gs/ip are the MT-HWP tables.")
}
