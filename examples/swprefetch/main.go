// Software-prefetching study: the Figure 3/4 scenario of the paper. A
// massively-parallel kernel has no loop iterations to prefetch across, so
// classic register/stride prefetching does nothing — but a thread can
// prefetch for the corresponding thread of the *next warp* (inter-thread
// prefetching). This example applies each software transform to one
// mp-type and one stride-type benchmark and compares.
//
//	go run ./examples/swprefetch
package main

import (
	"fmt"
	"log"

	"mtprefetch/internal/core"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

func study(name string, scale int) {
	spec := workload.ByName(name).Scaled(scale)
	fmt.Printf("\n%s (%s-type, %d warps, loop=%v)\n",
		spec.Name, spec.Class, spec.TotalWarps, spec.Program.HasLoop())

	baseline, err := core.Run(core.Options{Workload: spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s %8d cycles (CPI %.2f)\n", "baseline", baseline.Cycles, baseline.CPI)

	for _, mode := range []swpref.Mode{swpref.Register, swpref.Stride, swpref.IP, swpref.MTSWP} {
		// Show what the transform does to the kernel before running it.
		transformed, st, err := swpref.Apply(spec, mode, swpref.Options{})
		if err != nil {
			log.Fatal(err)
		}
		r, err := core.Run(core.Options{Workload: spec, Software: mode})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if st.PrefetchInstrs > 0 {
			note = fmt.Sprintf("+%d prefetch instrs", st.PrefetchInstrs)
		}
		if st.PipelinedLoads > 0 {
			note = fmt.Sprintf("%d loads pipelined, occupancy %d->%d blocks/core",
				st.PipelinedLoads, st.OccupancyBefore, transformed.MaxBlocksPerCore)
		}
		if note == "" {
			note = "(transform does not apply: identical binary)"
		}
		fmt.Printf("  %-22s %8d cycles  speedup %.2fx  %s\n",
			mode, r.Cycles, r.Speedup(baseline), note)
	}
}

func main() {
	fmt.Println("Software prefetching on GPGPU kernels (paper Section III-A / Figure 10)")
	study("cfd", 21)  // loop-free uncoalesced kernel: only IP applies
	study("monte", 8) // stride-type: all transforms apply
}
