// MTAML: the paper's analytical model of when prefetching helps (Section
// IV, Figure 7). This example computes the minimum tolerable average
// memory latency for a benchmark across warp counts, classifies each point
// as useful / no-effect / useful-or-harmful, and then validates the model
// against actual simulations at three occupancy levels.
//
//	go run ./examples/mtaml
package main

import (
	"fmt"
	"log"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/model"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

func main() {
	spec := workload.ByName("monte").Scaled(8)
	a := model.Analyze(spec, 0.8)
	fmt.Printf("%s: %.0f compute / %.0f memory warp-instructions per warp\n\n",
		spec.Name, a.CompInst, a.MemInst)

	// Figure 7: MTAML grows linearly with the number of active warps.
	fmt.Println("warps   MTAML   MTAML_pref   (warp-instruction units, Eqs. 1-4)")
	for _, w := range []int{2, 4, 8, 16, 24, 32, 48} {
		fmt.Printf("%5d  %6.1f  %10.1f\n", w,
			model.MTAML(a.CompInst, a.MemInst, w),
			model.MTAMLPref(a.CompInst, a.MemInst, w, a.PHit))
	}

	// Validate: sweep the occupancy limit and compare the model's
	// classification with what the simulator measures.
	fmt.Println("\noccupancy sweep (model classification vs measured speedup):")
	issueCost := config.Baseline().IssueCostALU
	for _, maxBlk := range []int{1, 2, 4} {
		s := *spec
		s.MaxBlocksPerCore = maxBlk
		base, err := core.Run(core.Options{Workload: &s})
		if err != nil {
			log.Fatal(err)
		}
		pf, err := core.Run(core.Options{Workload: &s, Software: swpref.MTSWP})
		if err != nil {
			log.Fatal(err)
		}
		an := model.Analyze(&s, pf.Coverage)
		cls := an.ClassifyMeasured(base.AvgDemandLatency, pf.AvgDemandLatency, issueCost)
		fmt.Printf("  %2d warps/core: MTAML=%5.0f lat=%5.0f -> model says %-18s measured speedup %.2fx\n",
			s.ActiveWarpsPerCore(), an.MTAML, base.AvgDemandLatency/float64(issueCost),
			cls.String(), pf.Speedup(base))
	}
}
