// Quickstart: simulate one GPGPU benchmark three ways — no prefetching,
// the paper's MT-HWP hardware prefetcher, and MT-HWP with adaptive
// throttling — and print the speedups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/workload"
)

func main() {
	// Pick a benchmark from the Table III suite and scale its grid down
	// so the example finishes in about a second.
	spec := workload.ByName("mersenne")
	fmt.Printf("benchmark %s: %d warps in %d blocks, %s-type\n",
		spec.Name, spec.TotalWarps, spec.Blocks, spec.Class)

	// Baseline machine (Table II) with a throttling period matched to
	// the short run.
	cfg := config.Baseline()
	cfg.ThrottlePeriod = 10_000

	baseline, err := core.Run(core.Options{Config: cfg, Workload: spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:        %8d cycles  CPI %.2f  avg mem latency %.0f\n",
		baseline.Cycles, baseline.CPI, baseline.AvgDemandLatency)

	mthwp := func() prefetch.Prefetcher {
		return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
	}

	hw, err := core.Run(core.Options{Config: cfg, Workload: spec, Hardware: mthwp})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MT-HWP:          %8d cycles  speedup %.2fx  accuracy %.0f%%  coverage %.0f%%\n",
		hw.Cycles, hw.Speedup(baseline), hw.Accuracy*100, hw.Coverage*100)

	hwT, err := core.Run(core.Options{Config: cfg, Workload: spec, Hardware: mthwp, Throttle: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MT-HWP+throttle: %8d cycles  speedup %.2fx  (throttle periods: %d, fully off: %d)\n",
		hwT.Cycles, hwT.Speedup(baseline), hwT.ThrottlePeriods, hwT.NoPrefetchPeriods)
}
