// Custom kernels: the library is not limited to the paper's benchmark
// suite — describe your own workload in the kernel text format
// (workload.ParseSpec), then study it under any prefetching configuration.
// This example defines a small stencil kernel inline, prints its
// disassembly, and compares baseline vs MT-HWP vs MT-SWP+throttle.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

const myKernel = `
# A 3-point vertical stencil: each thread reads three rows of a
# column-major field (uncoalesced taps with heavy cross-warp overlap),
# does a little arithmetic, and writes one output element.
kernel stencil3 warps=896 blocks=448 maxblk=2 regs=18 class=uncoal
load   A0 lane=32
load   A0 lane=32 offset=1024
load   A0 lane=32 offset=2048
compute 9
store  A1 lane=4
`

func main() {
	spec, err := workload.ParseSpec(myKernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spec.Program)
	fmt.Printf("\n%d warps in %d blocks, %d blocks/core, %s-type\n\n",
		spec.TotalWarps, spec.Blocks, spec.MaxBlocksPerCore, spec.Class)

	cfg := config.Baseline()
	cfg.ThrottlePeriod = 10_000

	base, err := core.Run(core.Options{Config: cfg, Workload: spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8d cycles  CPI %.1f  lat %.0f\n",
		"baseline", base.Cycles, base.CPI, base.AvgDemandLatency)

	hw, err := core.Run(core.Options{Config: cfg, Workload: spec,
		Hardware: func() prefetch.Prefetcher {
			return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
		}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8d cycles  speedup %.2fx  coverage %.0f%%\n",
		"MT-HWP", hw.Cycles, hw.Speedup(base), hw.Coverage*100)

	sw, err := core.Run(core.Options{Config: cfg, Workload: spec,
		Software: swpref.MTSWP, Throttle: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8d cycles  speedup %.2fx  coverage %.0f%%\n",
		"MT-SWP+throttle", sw.Cycles, sw.Speedup(base), sw.Coverage*100)
}
