// Adaptive throttling: the paper's Section V mechanism rescuing harmful
// prefetching. The stream benchmark's tight loop makes distance-1
// prefetches late and its prefetch traffic contends with demands, so
// blind MT-SWP slows it down; the throttle engine detects this through
// the early-eviction-rate and merge-ratio metrics (Table I) and dials the
// prefetching back.
//
//	go run ./examples/throttling
package main

import (
	"fmt"
	"log"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

func run(o core.Options) *core.Result {
	r, err := core.Run(o)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func report(label string, r, base *core.Result) {
	fmt.Printf("%-18s %8d cycles  speedup %.2fx  earlyRate %.3f  merge %.3f  dropped %d\n",
		label, r.Cycles, r.Speedup(base), r.EarlyRate, r.MergeRatio, r.DroppedByThrottle)
}

func main() {
	cfg := config.Baseline()
	cfg.ThrottlePeriod = 10_000 // match the scaled run length

	for _, name := range []string{"stream", "scalar", "cfd"} {
		s := workload.ByName(name)
		spec := s.Scaled(s.Blocks / (14 * s.MaxBlocksPerCore * 2))
		fmt.Printf("\n== %s ==\n", name)
		base := run(core.Options{Config: cfg, Workload: spec})
		blind := run(core.Options{Config: cfg, Workload: spec, Software: swpref.MTSWP})
		throttled := run(core.Options{Config: cfg, Workload: spec, Software: swpref.MTSWP, Throttle: true})
		report("baseline", base, base)
		report("MT-SWP (blind)", blind, base)
		report("MT-SWP + throttle", throttled, base)
		if throttled.Cycles < blind.Cycles {
			fmt.Printf("-> throttling recovered %.1f%% of the blind-prefetching loss\n",
				100*float64(blind.Cycles-throttled.Cycles)/float64(blind.Cycles))
		}
	}
}
