package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreRun/cell/skip-8   \t       3\t   3424559 ns/op\t  61442619 cycles/s\t        47.23 %skipped\t 2878517 B/op\t   33989 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkCoreRun/cell/skip" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Runs != 3 || r.NsPerOp != 3424559 {
		t.Errorf("runs/ns = %d/%v", r.Runs, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 2878517 {
		t.Errorf("B/op = %v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 33989 {
		t.Errorf("allocs/op = %v", r.AllocsPerOp)
	}
	if r.Metrics["cycles/s"] != 61442619 || r.Metrics["%skipped"] != 47.23 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tmtprefetch\t14.365s",
		"goos: linux",
		"Benchmark name without numbers",
		"", // blank
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestParseLineCPIStack(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreRun/cell/skip-8   \t       3\t   3424559 ns/op\t  61442619 cycles/s\t        52.10 cpi%issued\t        31.40 cpi%scoreboard\t         6.50 cpi%mrq_full")
	if !ok {
		t.Fatal("line did not parse")
	}
	if len(r.CPIStack) != 3 {
		t.Fatalf("cpi_stack = %v, want 3 buckets", r.CPIStack)
	}
	if r.CPIStack["issued"] != 52.10 || r.CPIStack["scoreboard"] != 31.40 ||
		r.CPIStack["mrq_full"] != 6.50 {
		t.Errorf("cpi_stack = %v", r.CPIStack)
	}
	if _, ok := r.Metrics["cpi%issued"]; ok {
		t.Error("cpi%issued leaked into the flat metrics map")
	}
	if r.Metrics["cycles/s"] != 61442619 {
		t.Errorf("plain metrics lost: %v", r.Metrics)
	}
}

func TestParseLineNoBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreSkipSpeedup/cell-8 \t       3\t   8392261 ns/op\t         1.63 speedup")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Error("B/op and allocs/op should be absent")
	}
	if r.Metrics["speedup"] != 1.63 {
		t.Errorf("speedup = %v", r.Metrics["speedup"])
	}
}
