package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreRun/cell/skip-8   \t       3\t   3424559 ns/op\t  61442619 cycles/s\t        47.23 %skipped\t 2878517 B/op\t   33989 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkCoreRun/cell/skip" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Runs != 3 || r.NsPerOp != 3424559 {
		t.Errorf("runs/ns = %d/%v", r.Runs, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 2878517 {
		t.Errorf("B/op = %v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 33989 {
		t.Errorf("allocs/op = %v", r.AllocsPerOp)
	}
	if r.Metrics["cycles/s"] != 61442619 || r.Metrics["%skipped"] != 47.23 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tmtprefetch\t14.365s",
		"goos: linux",
		"Benchmark name without numbers",
		"", // blank
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestParseLineNoBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreSkipSpeedup/cell-8 \t       3\t   8392261 ns/op\t         1.63 speedup")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Error("B/op and allocs/op should be absent")
	}
	if r.Metrics["speedup"] != 1.63 {
		t.Errorf("speedup = %v", r.Metrics["speedup"])
	}
}
