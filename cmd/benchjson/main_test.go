package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreRun/cell/skip-8   \t       3\t   3424559 ns/op\t  61442619 cycles/s\t        47.23 %skipped\t 2878517 B/op\t   33989 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkCoreRun/cell/skip" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Runs != 3 || r.NsPerOp != 3424559 {
		t.Errorf("runs/ns = %d/%v", r.Runs, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 2878517 {
		t.Errorf("B/op = %v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 33989 {
		t.Errorf("allocs/op = %v", r.AllocsPerOp)
	}
	if r.Metrics["cycles/s"] != 61442619 || r.Metrics["%skipped"] != 47.23 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tmtprefetch\t14.365s",
		"goos: linux",
		"Benchmark name without numbers",
		"", // blank
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestParseLineCPIStack(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreRun/cell/skip-8   \t       3\t   3424559 ns/op\t  61442619 cycles/s\t        52.10 cpi%issued\t        31.40 cpi%scoreboard\t         6.50 cpi%mrq_full")
	if !ok {
		t.Fatal("line did not parse")
	}
	if len(r.CPIStack) != 3 {
		t.Fatalf("cpi_stack = %v, want 3 buckets", r.CPIStack)
	}
	if r.CPIStack["issued"] != 52.10 || r.CPIStack["scoreboard"] != 31.40 ||
		r.CPIStack["mrq_full"] != 6.50 {
		t.Errorf("cpi_stack = %v", r.CPIStack)
	}
	if _, ok := r.Metrics["cpi%issued"]; ok {
		t.Error("cpi%issued leaked into the flat metrics map")
	}
	if r.Metrics["cycles/s"] != 61442619 {
		t.Errorf("plain metrics lost: %v", r.Metrics)
	}
}

func TestParseLineShardNames(t *testing.T) {
	// Sharded-benchmark subnames end in /sN; the GOMAXPROCS stripper must
	// remove only the trailing "-8", never the shard suffix itself.
	r, ok := parseLine("BenchmarkCoreRunSharded/stream/s4-8 \t       3\t   5424559 ns/op\t  41442619 cycles/s\t         4.00 shards\t 2878517 B/op\t   33989 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkCoreRunSharded/stream/s4" {
		t.Errorf("name = %q, want the /s4 shard suffix kept and only -8 stripped", r.Name)
	}
	if r.Metrics["shards"] != 4 {
		t.Errorf("shards metric = %v, want 4", r.Metrics["shards"])
	}
	if r.Metrics["cycles/s"] != 41442619 {
		t.Errorf("cycles/s = %v", r.Metrics["cycles/s"])
	}

	// A dash-free name (go test run with GOMAXPROCS unreported) must
	// survive untouched even though it ends in a digit.
	r, ok = parseLine("BenchmarkCoreRunSharded/mersenne/s1 \t       5\t   3424559 ns/op\t         1.00 shards")
	if !ok {
		t.Fatal("suffix-free line did not parse")
	}
	if r.Name != "BenchmarkCoreRunSharded/mersenne/s1" {
		t.Errorf("name = %q, want it untouched", r.Name)
	}
}

func TestParseLineShardsWithCPIStack(t *testing.T) {
	// The shards metric must coexist with cpi%<bucket> grouping: buckets
	// still land in cpi_stack, shards and cycles/s in the flat map.
	r, ok := parseLine("BenchmarkCoreRun/cell/skip-8 \t       3\t   3424559 ns/op\t  61442619 cycles/s\t         4.00 shards\t        52.10 cpi%issued\t        31.40 cpi%scoreboard")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.CPIStack["issued"] != 52.10 || r.CPIStack["scoreboard"] != 31.40 {
		t.Errorf("cpi_stack = %v", r.CPIStack)
	}
	if _, leaked := r.Metrics["cpi%issued"]; leaked {
		t.Error("cpi%issued leaked into the flat metrics map")
	}
	if r.Metrics["shards"] != 4 || r.Metrics["cycles/s"] != 61442619 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseLineNoBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkCoreSkipSpeedup/cell-8 \t       3\t   8392261 ns/op\t         1.63 speedup")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Error("B/op and allocs/op should be absent")
	}
	if r.Metrics["speedup"] != 1.63 {
		t.Errorf("speedup = %v", r.Metrics["speedup"])
	}
}
