// Command benchjson converts `go test -bench` text output (read from
// stdin) into deterministic JSON on stdout, so benchmark results can be
// archived as CI artifacts (`make bench-core` → BENCH_core.json) and
// diffed across commits without parsing the text format downstream.
//
// Usage:
//
//	go test -bench=. -run=^$ . | go run ./cmd/benchjson > BENCH.json
//	go test -bench=CoreAlloc -benchmem -run=^$ . | go run ./cmd/benchjson -budget ci/alloc_budget.json > BENCH_alloc.json
//
// Each "Benchmark..." result line becomes one object carrying the
// benchmark name, iteration count, ns/op, the -benchmem B/op and
// allocs/op columns when present, and every custom b.ReportMetric pair
// (e.g. cycles/s, %skipped, speedup) under "metrics". Cycle-accounting
// metrics with a "cpi%<bucket>" unit are grouped into a nested
// "cpi_stack" object keyed by bucket name. The goos/goarch/pkg/cpu
// header lines are captured once at the top level. Lines that are not
// benchmark results (PASS, ok, warnings) are ignored.
//
// The document records the host parallelism (`gomaxprocs`, `num_cpu`)
// alongside the results, and any result whose `shards` metric exceeds
// the available CPUs gets a `note` saying so — a 4-shard "speedup" on a
// 1-CPU container measures barrier overhead, not parallel scaling, and
// the annotation keeps trajectory tooling from misreading it.
//
// With -budget FILE, the file is parsed as JSON mapping benchmark name
// to the maximum allowed allocs/op; after writing the document, any
// result over its budget (or any budgeted benchmark missing from the
// results — a rename must not silently disable the gate) fails the run
// with exit status 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// CPIStack collects the cycle-accounting metrics the core benchmarks
	// report with a "cpi%<bucket>" unit, keyed by bucket name, so the
	// per-bucket stall percentages form one nested object instead of
	// being scattered through Metrics.
	CPIStack map[string]float64 `json:"cpi_stack,omitempty"`
	// Note flags results that need interpretation context (e.g. shard
	// speedups measured with fewer CPUs than shards).
	Note string `json:"note,omitempty"`
}

// output is the whole document.
type output struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GOMAXPROCS and NumCPU describe the host the benchmarks ran on;
	// comparisons like shard speedups are meaningless without them.
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Results    []result `json:"results"`
}

// annotateShardResults marks every result whose `shards` metric exceeds
// the CPUs actually available: its wall-clock comparison measures
// barrier overhead, not parallel scaling.
func annotateShardResults(out *output) {
	cpus := out.GOMAXPROCS
	if out.NumCPU < cpus {
		cpus = out.NumCPU
	}
	for i := range out.Results {
		if s, ok := out.Results[i].Metrics["shards"]; ok && int(s) > cpus {
			out.Results[i].Note = fmt.Sprintf(
				"shards (%d) exceed available CPUs (%d); wall-clock ratios measure barrier overhead, not parallel scaling", int(s), cpus)
		}
	}
}

// checkBudget compares each result's allocs/op against the committed
// per-benchmark budget and returns one violation message per breach.
// Budgeted benchmarks missing from the results are violations too.
func checkBudget(out *output, budget map[string]float64) []string {
	var bad []string
	seen := map[string]bool{}
	for _, r := range out.Results {
		max, ok := budget[r.Name]
		if !ok {
			continue
		}
		seen[r.Name] = true
		if r.AllocsPerOp == nil {
			bad = append(bad, fmt.Sprintf("%s: no allocs/op column (run with -benchmem)", r.Name))
			continue
		}
		if *r.AllocsPerOp > max {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op exceeds budget %.0f", r.Name, *r.AllocsPerOp, max))
		}
	}
	for name := range budget {
		if !seen[name] {
			bad = append(bad, fmt.Sprintf("%s: budgeted benchmark missing from results", name))
		}
	}
	return bad
}

// parseLine parses one "BenchmarkName-8  	 123  	 456 ns/op ..." line.
// The unit of each value follows it as the next field; custom metrics
// use the same "value unit" convention.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Runs: runs}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix ("-8") if the tail is numeric.
		if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name = r.Name[:i]
		}
	}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if bucket, ok := strings.CutPrefix(unit, "cpi%"); ok {
				if r.CPIStack == nil {
					r.CPIStack = map[string]float64{}
				}
				r.CPIStack[bucket] = val
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	if !seenNs {
		return result{}, false
	}
	return r, true
}

func main() {
	budgetFile := flag.String("budget", "", "JSON file mapping benchmark name to max allocs/op; breaches fail with exit 1")
	flag.Parse()
	out := output{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	annotateShardResults(&out)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *budgetFile != "" {
		// The document is already written, so a failing gate still
		// leaves the artifact for inspection.
		data, err := os.ReadFile(*budgetFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var budget map[string]float64
		if err := json.Unmarshal(data, &budget); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", *budgetFile, err)
			os.Exit(1)
		}
		if bad := checkBudget(&out, budget); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "benchjson: allocation budget:", m)
			}
			os.Exit(1)
		}
	}
}
