// Command benchjson converts `go test -bench` text output (read from
// stdin) into deterministic JSON on stdout, so benchmark results can be
// archived as CI artifacts (`make bench-core` → BENCH_core.json) and
// diffed across commits without parsing the text format downstream.
//
// Usage:
//
//	go test -bench=. -run=^$ . | go run ./cmd/benchjson > BENCH.json
//
// Each "Benchmark..." result line becomes one object carrying the
// benchmark name, iteration count, ns/op, the -benchmem B/op and
// allocs/op columns when present, and every custom b.ReportMetric pair
// (e.g. cycles/s, %skipped, speedup) under "metrics". Cycle-accounting
// metrics with a "cpi%<bucket>" unit are grouped into a nested
// "cpi_stack" object keyed by bucket name. The goos/goarch/pkg/cpu
// header lines are captured once at the top level. Lines that are not
// benchmark results (PASS, ok, warnings) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// CPIStack collects the cycle-accounting metrics the core benchmarks
	// report with a "cpi%<bucket>" unit, keyed by bucket name, so the
	// per-bucket stall percentages form one nested object instead of
	// being scattered through Metrics.
	CPIStack map[string]float64 `json:"cpi_stack,omitempty"`
}

// output is the whole document.
type output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

// parseLine parses one "BenchmarkName-8  	 123  	 456 ns/op ..." line.
// The unit of each value follows it as the next field; custom metrics
// use the same "value unit" convention.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Runs: runs}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix ("-8") if the tail is numeric.
		if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name = r.Name[:i]
		}
	}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := f[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if bucket, ok := strings.CutPrefix(unit, "cpi%"); ok {
				if r.CPIStack == nil {
					r.CPIStack = map[string]float64{}
				}
				r.CPIStack[bucket] = val
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	if !seenNs {
		return result{}, false
	}
	return r, true
}

func main() {
	var out output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
