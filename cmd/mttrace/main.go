// Command mttrace is the offline, trace-driven prefetcher workbench:
// generate per-warp memory traces from the benchmark suite, inspect them,
// and replay them against any of the implemented hardware prefetchers to
// compare training algorithms without running the timing simulator.
//
// Usage:
//
//	mttrace gen    -bench monte -o monte.trace [-order interleaved] [-scale 16]
//	mttrace stat   monte.trace
//	mttrace replay -bench monte [-order interleaved] [-scale 16] [-pf all]
//
// Replay reports per-prefetcher pattern coverage and accuracy against an
// idealized zero-latency prefetch cache — the upper bound the timing
// simulator then erodes with lateness and contention.
package main

import (
	"flag"
	"fmt"
	"os"

	"mtprefetch/internal/obs"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/stats"
	"mtprefetch/internal/trace"
	"mtprefetch/internal/workload"
)

// resolveSpec loads a benchmark by name or, when kernelFile is set, parses
// a user kernel in the text format of workload.ParseSpec.
func resolveSpec(bench, kernelFile string, scale int) *workload.Spec {
	if kernelFile != "" {
		src, err := os.ReadFile(kernelFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mttrace:", err)
			os.Exit(1)
		}
		s, err := workload.ParseSpec(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mttrace: %s: %v\n", kernelFile, err)
			os.Exit(1)
		}
		return s.Scaled(scale)
	}
	return loadSpec(bench, scale)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mttrace {gen|stat|replay} [flags]  (see -h of each subcommand)")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func parseOrder(s string) trace.Order {
	switch s {
	case "warp-major":
		return trace.WarpMajor
	case "interleaved":
		return trace.Interleaved
	default:
		fmt.Fprintf(os.Stderr, "mttrace: unknown order %q (warp-major|interleaved)\n", s)
		os.Exit(1)
		return 0
	}
}

func loadSpec(name string, scale int) *workload.Spec {
	s := workload.ByName(name)
	if s == nil {
		fmt.Fprintf(os.Stderr, "mttrace: unknown benchmark %q\n", name)
		os.Exit(1)
	}
	return s.Scaled(scale)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "monte", "benchmark name (see workload suite)")
	kernelFile := fs.String("kernel", "", "custom kernel file (overrides -bench)")
	out := fs.String("o", "", "output file (required)")
	order := fs.String("order", "interleaved", "event order: warp-major|interleaved")
	scale := fs.Int("scale", 16, "grid scale divisor")
	window := fs.Int("window", 0, "interleave window (default: active warps/core)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mttrace gen: -o is required")
		os.Exit(1)
	}
	spec := resolveSpec(*bench, *kernelFile, *scale)
	w := *window
	if w == 0 {
		w = spec.ActiveWarpsPerCore()
	}
	evs := trace.Generate(spec, parseOrder(*order), w, 64)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mttrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Write(f, evs); err != nil {
		fmt.Fprintln(os.Stderr, "mttrace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events (%s, %d warps) to %s\n", len(evs), *order, spec.TotalWarps, *out)
}

func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "mttrace stat: one trace file required")
		os.Exit(1)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mttrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	evs, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mttrace:", err)
		os.Exit(1)
	}
	warps := map[uint32]bool{}
	pcs := map[uint32]bool{}
	txs := 0
	for i := range evs {
		warps[evs[i].WarpID] = true
		pcs[evs[i].PC] = true
		txs += len(evs[i].Footprint)
	}
	fmt.Printf("events:       %d\n", len(evs))
	fmt.Printf("transactions: %d (%.1f per event)\n", txs, float64(txs)/float64(max(1, len(evs))))
	fmt.Printf("warps:        %d\n", len(warps))
	fmt.Printf("static PCs:   %d\n", len(pcs))
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	bench := fs.String("bench", "monte", "benchmark name")
	kernelFile := fs.String("kernel", "", "custom kernel file (overrides -bench)")
	order := fs.String("order", "interleaved", "event order: warp-major|interleaved")
	scale := fs.Int("scale", 16, "grid scale divisor")
	traceOut := fs.String("trace", "", "Chrome trace-event JSON file (per-warp demand/prefetch tracks)")
	fs.Parse(args)
	spec := resolveSpec(*bench, *kernelFile, *scale)
	evs := trace.Generate(spec, parseOrder(*order), spec.ActiveWarpsPerCore(), 64)

	var tw *obs.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mttrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tw, err = obs.NewTraceWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mttrace:", err)
			os.Exit(1)
		}
	}

	prefetchers := []struct {
		name string
		make func() prefetch.Prefetcher
	}{
		{"stride (naive)", func() prefetch.Prefetcher { return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{}) }},
		{"stride+wid", func() prefetch.Prefetcher { return prefetch.NewStrideRPT(prefetch.StrideRPTOptions{WarpAware: true}) }},
		{"stridepc (naive)", func() prefetch.Prefetcher { return prefetch.NewStridePC(prefetch.StridePCOptions{}) }},
		{"stridepc+wid", func() prefetch.Prefetcher { return prefetch.NewStridePC(prefetch.StridePCOptions{WarpAware: true}) }},
		{"stream+wid", func() prefetch.Prefetcher { return prefetch.NewStream(prefetch.StreamOptions{WarpAware: true}) }},
		{"ghb+wid", func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true}) }},
		{"ghb-pcdc+wid", func() prefetch.Prefetcher {
			return prefetch.NewGHB(prefetch.GHBOptions{PCLocalized: true, WarpAware: true})
		}},
		{"mt-hwp", func() prefetch.Prefetcher {
			return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
		}},
	}
	t := stats.NewTable(
		fmt.Sprintf("offline replay: %s (%s order, %d events)", spec.Name, *order,
			len(evs)),
		"prefetcher", "coverage", "accuracy", "generated")
	for i, p := range prefetchers {
		var tr *obs.Tracer
		if tw != nil {
			tr = obs.NewTracer(obs.DefaultTraceCapacity)
		}
		res := trace.ReplayObserved(evs, p.make(), 16*1024, 8, 64, tr)
		if tw != nil {
			if err := tw.AddRun(i, p.name, "warp", tr); err != nil {
				fmt.Fprintln(os.Stderr, "mttrace:", err)
				os.Exit(1)
			}
		}
		t.AddRow(p.name,
			fmt.Sprintf("%.3f", res.Coverage()),
			fmt.Sprintf("%.3f", res.Accuracy()),
			fmt.Sprint(res.PrefetchesGenerated))
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mttrace:", err)
			os.Exit(1)
		}
	}
	fmt.Println(t)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
