// Command spanstat post-processes request-span JSONL (written by mtpref
// -spans, one "span" line per sampled memory request plus one
// "spansummary" trailer per source per run) into the per-source latency
// waterfall: how many sampled requests each source filled, and where
// their end-to-end cycles went (MRQ wait, request NoC transit, DRAM
// queueing, DRAM service, response NoC transit), aggregated across
// every run in the input.
//
// Usage:
//
//	spanstat [-run REGEX] [-byrun] [FILE...]
//
// With no FILE it reads stdin, so it composes with a sweep directly:
//
//	mtpref run gstable -spans /dev/stdout > /dev/null | spanstat
//
// Flags:
//
//	-run REGEX   only aggregate runs whose key matches REGEX
//	-byrun       additionally print one waterfall table per run
//
// Exit codes: 0 ok; 1 read/parse failure or no matching span records in
// the input; 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"

	"mtprefetch/internal/statcli"
	"mtprefetch/internal/stats"
)

// record mirrors the per-request "span" lines of the obs JSONL schema;
// the "spansummary" trailers are skipped — percentiles rebuilt from the
// raw per-span totals aggregate exactly across runs, summary lines do
// not.
type record struct {
	Record      string `json:"record"`
	Run         string `json:"run"`
	Source      string `json:"source"`
	Terminal    string `json:"terminal"`
	MRQ         uint64 `json:"mrq"`
	NoCReq      uint64 `json:"noc_req"`
	DRAMQueue   uint64 `json:"dram_queue"`
	DRAMService uint64 `json:"dram_service"`
	NoCResp     uint64 `json:"noc_resp"`
	Total       uint64 `json:"total"`
}

// stageNames orders the waterfall columns; it matches the telescoping
// stage order of obs.SpanStage.
var stageNames = [...]string{"mrq", "noc_req", "dram_queue", "dram_service", "noc_resp"}

// srcAgg accumulates one source's spans: terminal counts, per-stage
// cycle sums over fills, and the end-to-end latency distribution.
type srcAgg struct {
	fills       uint64
	mrqMerged   uint64
	mrqRejected uint64
	dropped     uint64
	stage       [len(stageNames)]uint64
	total       stats.Histogram
}

func (s *srcAgg) add(rec *record) {
	switch rec.Terminal {
	case "fill":
		s.fills++
		s.stage[0] += rec.MRQ
		s.stage[1] += rec.NoCReq
		s.stage[2] += rec.DRAMQueue
		s.stage[3] += rec.DRAMService
		s.stage[4] += rec.NoCResp
		s.total.Add(rec.Total)
	case "mrq_merged":
		s.mrqMerged++
	case "mrq_rejected":
		s.mrqRejected++
	case "dropped":
		s.dropped++
	}
}

// aggregate accumulates span records across the input: a cross-run
// per-source rollup plus a per-run breakdown for -byrun.
type aggregate struct {
	spans  uint64
	perSrc map[string]*srcAgg
	perRun map[string]map[string]*srcAgg
}

func newAggregate() *aggregate {
	return &aggregate{
		perSrc: make(map[string]*srcAgg),
		perRun: make(map[string]map[string]*srcAgg),
	}
}

// line aggregates one run-matching JSONL line; everything but the
// per-request "span" lines is skipped.
func (a *aggregate) line(p statcli.Probe, line []byte) error {
	if p.Record != "span" {
		return nil
	}
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("bad JSONL line: %w", err)
	}
	a.spans++
	s := a.perSrc[rec.Source]
	if s == nil {
		s = &srcAgg{}
		a.perSrc[rec.Source] = s
	}
	s.add(&rec)
	rm := a.perRun[rec.Run]
	if rm == nil {
		rm = make(map[string]*srcAgg)
		a.perRun[rec.Run] = rm
	}
	rs := rm[rec.Source]
	if rs == nil {
		rs = &srcAgg{}
		rm[rec.Source] = rs
	}
	rs.add(&rec)
	return nil
}

// empty reports whether the input contained no span records at all
// (after filtering) — an empty table would otherwise pass silently,
// hiding a wrong file, a typo'd -run regex, or a run without -spans.
func (a *aggregate) empty() bool { return a.spans == 0 }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pct(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(a)/float64(b)*100)
}

// writeTable renders one waterfall: a row per source with terminal
// counts, the mean end-to-end latency over fills, each stage's share of
// the filled cycles, and the latency percentiles.
func writeTable(w io.Writer, perSrc map[string]*srcAgg) error {
	if _, err := fmt.Fprintf(w, "%-10s %8s %7s %7s %7s %9s %7s %8s %8s %9s %9s %8s %8s %8s\n",
		"source", "fills", "merged", "reject", "dropped", "avgtotal",
		"mrq%", "nocreq%", "dramq%", "dramsvc%", "nocresp%", "p50", "p95", "p99"); err != nil {
		return err
	}
	for _, name := range sortedKeys(perSrc) {
		s := perSrc[name]
		if _, err := fmt.Fprintf(w, "%-10s %8d %7d %7d %7d %9.1f %7s %8s %8s %9s %9s %8.1f %8.1f %8.1f\n",
			name, s.fills, s.mrqMerged, s.mrqRejected, s.dropped, s.total.Avg(),
			pct(s.stage[0], s.total.Sum), pct(s.stage[1], s.total.Sum),
			pct(s.stage[2], s.total.Sum), pct(s.stage[3], s.total.Sum),
			pct(s.stage[4], s.total.Sum),
			s.total.Percentile(50), s.total.Percentile(95), s.total.Percentile(99)); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var byRun *bool
	agg := newAggregate()
	statcli.Main(statcli.Tool{
		Name:      "spanstat",
		Usage:     "usage: spanstat [-run REGEX] [-byrun] [FILE...]\n",
		EmptyWhat: "span records",
		EmptyFlag: "-spans",
		Flags: func(fs *flag.FlagSet) {
			byRun = fs.Bool("byrun", false, "additionally print one waterfall table per run")
		},
		Line:  agg.line,
		Empty: agg.empty,
		Render: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "%d run(s), %d sampled span(s)\n",
				len(agg.perRun), agg.spans); err != nil {
				return err
			}
			if err := writeTable(w, agg.perSrc); err != nil {
				return err
			}
			if !*byRun {
				return nil
			}
			for _, run := range sortedKeys(agg.perRun) {
				if _, err := fmt.Fprintf(w, "\n%s\n", run); err != nil {
					return err
				}
				if err := writeTable(w, agg.perRun[run]); err != nil {
					return err
				}
			}
			return nil
		},
	})
}
