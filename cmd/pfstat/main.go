// Command pfstat post-processes prefetch attribution JSONL (written by
// mtpref -pfreport, one "pfreport" line per (source, PC) bucket per run
// plus one "pfsummary" trailer per run) into the per-source accuracy /
// coverage / merge-ratio / early-eviction table, aggregated across every
// run in the input.
//
// Usage:
//
//	pfstat [-run REGEX] [-bypc] [FILE...]
//
// With no FILE it reads stdin, so it composes with a sweep directly:
//
//	mtpref run tab3 -pfreport /dev/stdout | pfstat
//
// Flags:
//
//	-run REGEX   only aggregate runs whose key matches REGEX
//	-bypc        additionally print the per-(source, PC) breakdown
//
// Exit codes: 0 ok; 1 read/parse failure or no matching attribution
// records in the input; 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"

	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/statcli"
	"mtprefetch/internal/stats"
)

// record mirrors the union of the obs JSONL schemas ("pfreport" bucket
// lines and "pfsummary" trailers); unknown record types are skipped, so
// pfstat also accepts a mixed stream that contains epoch-sample lines.
type record struct {
	Record string `json:"record"`
	Run    string `json:"run"`
	Source string `json:"source"`
	PC     int32  `json:"pc"`

	Generated        uint64 `json:"generated"`
	DroppedThrottle  uint64 `json:"dropped_throttle"`
	DroppedFilter    uint64 `json:"dropped_filter"`
	DroppedInCache   uint64 `json:"dropped_in_cache"`
	DroppedQueueFull uint64 `json:"dropped_queue_full"`
	MergedMRQ        uint64 `json:"merged_mrq"`
	Issued           uint64 `json:"issued"`
	Late             uint64 `json:"late"`
	Redundant        uint64 `json:"redundant"`
	Useful           uint64 `json:"useful"`
	EarlyEvicted     uint64 `json:"early_evicted"`
	UnusedAtDrain    uint64 `json:"unused_at_drain"`
	Hits             uint64 `json:"hits"`
	DemandMerges     uint64 `json:"demand_merges"`
	DegreeSum        uint64 `json:"degree_sum"`

	DemandTransactions uint64 `json:"demand_transactions"`
}

// aggregate accumulates attribution records across runs: a per-source
// rollup for the summary table and a rebuilt obs.PFReport for the
// per-(source, PC) breakdown.
type aggregate struct {
	perSrc map[string]*obs.PFCounts
	rep    *obs.PFReport
	runs   map[string]bool // distinct run keys seen
	demand uint64          // coverage denominator summed over runs
}

func newAggregate() *aggregate {
	return &aggregate{
		perSrc: make(map[string]*obs.PFCounts),
		rep:    obs.NewPFReport(),
		runs:   make(map[string]bool),
	}
}

// read consumes one JSONL stream, keeping runs matched by filter (nil
// keeps all).
func (a *aggregate) read(r io.Reader, filter *regexp.Regexp) error {
	return statcli.Read(r, filter, a.line)
}

// line aggregates one run-matching JSONL line; unknown record types are
// skipped, so pfstat also accepts a mixed stream.
func (a *aggregate) line(p statcli.Probe, line []byte) error {
	switch p.Record {
	case "pfreport":
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("bad JSONL line: %w", err)
		}
		a.addBucket(&rec)
	case "pfsummary":
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("bad JSONL line: %w", err)
		}
		a.runs[rec.Run] = true
		a.demand += rec.DemandTransactions
		a.rep.AddDemandTransactions(rec.DemandTransactions)
	}
	return nil
}

func (a *aggregate) addBucket(rec *record) {
	c := obs.PFCounts{
		Generated:        rec.Generated,
		DroppedThrottle:  rec.DroppedThrottle,
		DroppedFilter:    rec.DroppedFilter,
		DroppedInCache:   rec.DroppedInCache,
		DroppedQueueFull: rec.DroppedQueueFull,
		MergedMRQ:        rec.MergedMRQ,
		Issued:           rec.Issued,
		Late:             rec.Late,
		Redundant:        rec.Redundant,
		Useful:           rec.Useful,
		EarlyEvicted:     rec.EarlyEvicted,
		UnusedAtDrain:    rec.UnusedAtDrain,
		Hits:             rec.Hits,
		DemandMerges:     rec.DemandMerges,
		DegreeSum:        rec.DegreeSum,
	}
	s := a.perSrc[rec.Source]
	if s == nil {
		s = &obs.PFCounts{}
		a.perSrc[rec.Source] = s
	}
	addCounts(s, &c)
	if src, ok := memreq.ParseSource(rec.Source); ok {
		a.rep.Add(obs.PFKey{Source: src, PC: rec.PC}, c)
	} else {
		// Unknown source names (a newer writer) still roll up per source;
		// only the per-PC breakdown needs the enum.
		fmt.Fprintf(os.Stderr, "pfstat: unknown source %q (per-PC breakdown will omit it)\n", rec.Source)
	}
}

// empty reports whether the input contained no attribution records at
// all (after filtering) — an empty table would otherwise pass silently,
// hiding a wrong file, a typo'd -run regex, or a run without -pfreport.
func (a *aggregate) empty() bool {
	return len(a.runs) == 0 && len(a.perSrc) == 0
}

func addCounts(dst, src *obs.PFCounts) {
	dst.Generated += src.Generated
	dst.DroppedThrottle += src.DroppedThrottle
	dst.DroppedFilter += src.DroppedFilter
	dst.DroppedInCache += src.DroppedInCache
	dst.DroppedQueueFull += src.DroppedQueueFull
	dst.MergedMRQ += src.MergedMRQ
	dst.Issued += src.Issued
	dst.Late += src.Late
	dst.Redundant += src.Redundant
	dst.Useful += src.Useful
	dst.EarlyEvicted += src.EarlyEvicted
	dst.UnusedAtDrain += src.UnusedAtDrain
	dst.Hits += src.Hits
	dst.DemandMerges += src.DemandMerges
	dst.DegreeSum += src.DegreeSum
}

// writeSummary renders the per-source rollup: the paper's accuracy
// (used/issued), coverage (hits/demand transactions), merge ratio
// (demand-into-prefetch merges/issued, the Eq. 6 lateness signal), and
// early-eviction rate (early/used, Eq. 5), plus the mean throttle degree
// in force at issue.
func (a *aggregate) writeSummary(w io.Writer) error {
	names := make([]string, 0, len(a.perSrc))
	for n := range a.perSrc {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%d run(s), %d demand transactions\n", len(a.runs), a.demand); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %8s %8s %8s %9s %9s %7s\n",
		"source", "generated", "issued", "useful", "late", "early", "accuracy",
		"coverage", "mergeratio", "earlyrate", "degree"); err != nil {
		return err
	}
	for _, n := range names {
		c := a.perSrc[n]
		used := c.Useful + c.Late
		if _, err := fmt.Fprintf(w, "%-10s %10d %10d %8d %8d %8d %8s %8s %9s %9s %7s\n",
			n, c.Generated, c.Issued, c.Useful, c.Late, c.EarlyEvicted,
			ratio(used, c.Issued), ratio(c.Hits, a.demand),
			ratio(c.DemandMerges, c.Issued), ratio(c.EarlyEvicted, used),
			mean(c.DegreeSum, c.Issued)); err != nil {
			return err
		}
	}
	return nil
}

func ratio(n, d uint64) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", stats.SafeDiv(float64(n), float64(d)))
}

func mean(sum, n uint64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(sum)/float64(n))
}

func main() {
	var byPC *bool
	agg := newAggregate()
	statcli.Main(statcli.Tool{
		Name:      "pfstat",
		Usage:     "usage: pfstat [-run REGEX] [-bypc] [FILE...]\n",
		EmptyWhat: "pfreport/pfsummary records",
		EmptyFlag: "-pfreport",
		Flags: func(fs *flag.FlagSet) {
			byPC = fs.Bool("bypc", false, "additionally print the per-(source, PC) breakdown")
		},
		Line:  agg.line,
		Empty: agg.empty,
		Render: func(w io.Writer) error {
			if err := agg.writeSummary(w); err != nil {
				return err
			}
			if *byPC {
				fmt.Fprintln(w)
				return agg.rep.WriteTable(w)
			}
			return nil
		},
	})
}
