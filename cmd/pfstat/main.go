// Command pfstat post-processes prefetch attribution JSONL (written by
// mtpref -pfreport, one "pfreport" line per (source, PC) bucket per run
// plus one "pfsummary" trailer per run) into the per-source accuracy /
// coverage / merge-ratio / early-eviction table, aggregated across every
// run in the input.
//
// Usage:
//
//	pfstat [-run REGEX] [-bypc] [FILE...]
//
// With no FILE it reads stdin, so it composes with a sweep directly:
//
//	mtpref run tab3 -pfreport /dev/stdout | pfstat
//
// Flags:
//
//	-run REGEX   only aggregate runs whose key matches REGEX
//	-bypc        additionally print the per-(source, PC) breakdown
//
// Exit codes: 0 ok; 1 read/parse failure or no matching attribution
// records in the input; 2 usage error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"

	"mtprefetch/internal/jsonl"
	"mtprefetch/internal/memreq"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/stats"
)

// record mirrors the union of the obs JSONL schemas ("pfreport" bucket
// lines and "pfsummary" trailers); unknown record types are skipped, so
// pfstat also accepts a mixed stream that contains epoch-sample lines.
type record struct {
	Record string `json:"record"`
	Run    string `json:"run"`
	Source string `json:"source"`
	PC     int32  `json:"pc"`

	Generated        uint64 `json:"generated"`
	DroppedThrottle  uint64 `json:"dropped_throttle"`
	DroppedFilter    uint64 `json:"dropped_filter"`
	DroppedInCache   uint64 `json:"dropped_in_cache"`
	DroppedQueueFull uint64 `json:"dropped_queue_full"`
	MergedMRQ        uint64 `json:"merged_mrq"`
	Issued           uint64 `json:"issued"`
	Late             uint64 `json:"late"`
	Redundant        uint64 `json:"redundant"`
	Useful           uint64 `json:"useful"`
	EarlyEvicted     uint64 `json:"early_evicted"`
	UnusedAtDrain    uint64 `json:"unused_at_drain"`
	Hits             uint64 `json:"hits"`
	DemandMerges     uint64 `json:"demand_merges"`
	DegreeSum        uint64 `json:"degree_sum"`

	DemandTransactions uint64 `json:"demand_transactions"`
}

// aggregate accumulates attribution records across runs: a per-source
// rollup for the summary table and a rebuilt obs.PFReport for the
// per-(source, PC) breakdown.
type aggregate struct {
	perSrc map[string]*obs.PFCounts
	rep    *obs.PFReport
	runs   map[string]bool // distinct run keys seen
	demand uint64          // coverage denominator summed over runs
}

func newAggregate() *aggregate {
	return &aggregate{
		perSrc: make(map[string]*obs.PFCounts),
		rep:    obs.NewPFReport(),
		runs:   make(map[string]bool),
	}
}

// read consumes one JSONL stream, keeping runs matched by filter (nil
// keeps all).
func (a *aggregate) read(r io.Reader, filter *regexp.Regexp) error {
	sc := jsonl.NewReader(r)
	for {
		line, err := sc.Line()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("bad JSONL line: %w", err)
		}
		if filter != nil && !filter.MatchString(rec.Run) {
			continue
		}
		switch rec.Record {
		case "pfreport":
			a.addBucket(&rec)
		case "pfsummary":
			a.runs[rec.Run] = true
			a.demand += rec.DemandTransactions
			a.rep.AddDemandTransactions(rec.DemandTransactions)
		}
	}
}

func (a *aggregate) addBucket(rec *record) {
	c := obs.PFCounts{
		Generated:        rec.Generated,
		DroppedThrottle:  rec.DroppedThrottle,
		DroppedFilter:    rec.DroppedFilter,
		DroppedInCache:   rec.DroppedInCache,
		DroppedQueueFull: rec.DroppedQueueFull,
		MergedMRQ:        rec.MergedMRQ,
		Issued:           rec.Issued,
		Late:             rec.Late,
		Redundant:        rec.Redundant,
		Useful:           rec.Useful,
		EarlyEvicted:     rec.EarlyEvicted,
		UnusedAtDrain:    rec.UnusedAtDrain,
		Hits:             rec.Hits,
		DemandMerges:     rec.DemandMerges,
		DegreeSum:        rec.DegreeSum,
	}
	s := a.perSrc[rec.Source]
	if s == nil {
		s = &obs.PFCounts{}
		a.perSrc[rec.Source] = s
	}
	addCounts(s, &c)
	if src, ok := memreq.ParseSource(rec.Source); ok {
		a.rep.Add(obs.PFKey{Source: src, PC: rec.PC}, c)
	} else {
		// Unknown source names (a newer writer) still roll up per source;
		// only the per-PC breakdown needs the enum.
		fmt.Fprintf(os.Stderr, "pfstat: unknown source %q (per-PC breakdown will omit it)\n", rec.Source)
	}
}

// empty reports whether the input contained no attribution records at
// all (after filtering) — an empty table would otherwise pass silently,
// hiding a wrong file, a typo'd -run regex, or a run without -pfreport.
func (a *aggregate) empty() bool {
	return len(a.runs) == 0 && len(a.perSrc) == 0
}

func addCounts(dst, src *obs.PFCounts) {
	dst.Generated += src.Generated
	dst.DroppedThrottle += src.DroppedThrottle
	dst.DroppedFilter += src.DroppedFilter
	dst.DroppedInCache += src.DroppedInCache
	dst.DroppedQueueFull += src.DroppedQueueFull
	dst.MergedMRQ += src.MergedMRQ
	dst.Issued += src.Issued
	dst.Late += src.Late
	dst.Redundant += src.Redundant
	dst.Useful += src.Useful
	dst.EarlyEvicted += src.EarlyEvicted
	dst.UnusedAtDrain += src.UnusedAtDrain
	dst.Hits += src.Hits
	dst.DemandMerges += src.DemandMerges
	dst.DegreeSum += src.DegreeSum
}

// writeSummary renders the per-source rollup: the paper's accuracy
// (used/issued), coverage (hits/demand transactions), merge ratio
// (demand-into-prefetch merges/issued, the Eq. 6 lateness signal), and
// early-eviction rate (early/used, Eq. 5), plus the mean throttle degree
// in force at issue.
func (a *aggregate) writeSummary(w io.Writer) error {
	names := make([]string, 0, len(a.perSrc))
	for n := range a.perSrc {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%d run(s), %d demand transactions\n", len(a.runs), a.demand); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %8s %8s %8s %9s %9s %7s\n",
		"source", "generated", "issued", "useful", "late", "early", "accuracy",
		"coverage", "mergeratio", "earlyrate", "degree"); err != nil {
		return err
	}
	for _, n := range names {
		c := a.perSrc[n]
		used := c.Useful + c.Late
		if _, err := fmt.Fprintf(w, "%-10s %10d %10d %8d %8d %8d %8s %8s %9s %9s %7s\n",
			n, c.Generated, c.Issued, c.Useful, c.Late, c.EarlyEvicted,
			ratio(used, c.Issued), ratio(c.Hits, a.demand),
			ratio(c.DemandMerges, c.Issued), ratio(c.EarlyEvicted, used),
			mean(c.DegreeSum, c.Issued)); err != nil {
			return err
		}
	}
	return nil
}

func ratio(n, d uint64) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", stats.SafeDiv(float64(n), float64(d)))
}

func mean(sum, n uint64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(sum)/float64(n))
}

func main() {
	fs := flag.NewFlagSet("pfstat", flag.ExitOnError)
	runPat := fs.String("run", "", "only aggregate runs whose key matches this regexp")
	byPC := fs.Bool("bypc", false, "additionally print the per-(source, PC) breakdown")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pfstat [-run REGEX] [-bypc] [FILE...]\n")
		os.Exit(2)
	}
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	var filter *regexp.Regexp
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(2)
		}
		filter = re
	}

	agg := newAggregate()
	files := fs.Args()
	if len(files) == 0 {
		if err := agg.read(os.Stdin, filter); err != nil {
			fmt.Fprintln(os.Stderr, "pfstat: stdin:", err)
			os.Exit(1)
		}
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(1)
		}
		err = agg.read(f, filter)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfstat: %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	if agg.empty() {
		msg := "pfstat: no pfreport/pfsummary records in input (was the run started with -pfreport?)"
		if filter != nil {
			msg = fmt.Sprintf("pfstat: no pfreport/pfsummary records match -run %q", *runPat)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(1)
	}

	out := bufio.NewWriter(os.Stdout)
	if err := agg.writeSummary(out); err != nil {
		fmt.Fprintln(os.Stderr, "pfstat:", err)
		os.Exit(1)
	}
	if *byPC {
		fmt.Fprintln(out)
		if err := agg.rep.WriteTable(out); err != nil {
			fmt.Fprintln(os.Stderr, "pfstat:", err)
			os.Exit(1)
		}
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "pfstat:", err)
		os.Exit(1)
	}
}
