package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// sample JSONL covering two runs: a stride-RPT hardware run and an
// MT-HWP IP-table run, with a pfsummary trailer each. Values are chosen
// so the derived columns are easy to eyeball: stride-rpt accuracy
// (used/issued) = (6+2)/10 = 0.800, merge ratio 2/10 = 0.200, early rate
// 2/8 = 0.250; hw-ip accuracy = 3/4 = 0.750.
const sampleJSONL = `{"record":"pfreport","run":"hw/a/stride/true","source":"stride-rpt","pc":4,"generated":12,"dropped_throttle":1,"dropped_filter":0,"dropped_in_cache":1,"dropped_queue_full":0,"merged_mrq":0,"issued":10,"late":2,"redundant":0,"useful":6,"early_evicted":2,"unused_at_drain":0,"hits":9,"demand_merges":2,"degree_sum":20}
{"record":"pfsummary","run":"hw/a/stride/true","demand_transactions":100,"generated":12,"issued":10,"useful":6,"late":2,"early_evicted":2,"hits":9}
{"record":"pfreport","run":"hw/b/pws+ip/true","source":"hw-ip","pc":7,"generated":5,"dropped_throttle":0,"dropped_filter":0,"dropped_in_cache":1,"dropped_queue_full":0,"merged_mrq":0,"issued":4,"late":1,"redundant":0,"useful":2,"early_evicted":1,"unused_at_drain":0,"hits":3,"demand_merges":1,"degree_sum":4}
{"record":"pfsummary","run":"hw/b/pws+ip/true","demand_transactions":50,"generated":5,"issued":4,"useful":2,"late":1,"early_evicted":1,"hits":3}
{"record":"epoch","run":"hw/b/pws+ip/true","cycle":512}
`

func TestAggregateSummaryTable(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agg.writeSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 run(s), 150 demand transactions") {
		t.Errorf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header line, column line, two sources
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	var stride, ip string
	for _, l := range lines {
		if strings.HasPrefix(l, "stride-rpt") {
			stride = l
		}
		if strings.HasPrefix(l, "hw-ip") {
			ip = l
		}
	}
	if stride == "" || ip == "" {
		t.Fatalf("missing source rows:\n%s", out)
	}
	// accuracy (6+2)/10, merge ratio 2/10, early rate 2/(6+2)
	for _, want := range []string{"0.800", "0.200", "0.250"} {
		if !strings.Contains(stride, want) {
			t.Errorf("stride-rpt row missing %s: %s", want, stride)
		}
	}
	if !strings.Contains(ip, "0.750") { // accuracy 3/4
		t.Errorf("hw-ip row missing accuracy 0.750: %s", ip)
	}
}

func TestAggregateRunFilter(t *testing.T) {
	agg := newAggregate()
	re := regexp.MustCompile(`stride`)
	if err := agg.read(strings.NewReader(sampleJSONL), re); err != nil {
		t.Fatal(err)
	}
	if len(agg.runs) != 1 {
		t.Fatalf("filter kept %d runs, want 1", len(agg.runs))
	}
	if _, ok := agg.perSrc["hw-ip"]; ok {
		t.Error("filtered-out run's source still aggregated")
	}
	if agg.demand != 100 {
		t.Errorf("demand = %d, want 100", agg.demand)
	}
}

func TestAggregatePerPCRebuild(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	// The rebuilt report must satisfy the same conservation identities
	// the simulator enforces, and render the per-PC table.
	if err := agg.rep.CheckConservation(0); err != nil {
		t.Fatalf("rebuilt ledger does not balance: %v", err)
	}
	var buf bytes.Buffer
	if err := agg.rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stride-rpt", "hw-ip", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("per-PC table missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateMergesAcrossRuns(t *testing.T) {
	two := strings.ReplaceAll(sampleJSONL, "hw/b/", "hw/c/")
	agg := newAggregate()
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	if err := agg.read(strings.NewReader(two), nil); err != nil {
		t.Fatal(err)
	}
	c := agg.perSrc["stride-rpt"]
	if c == nil || c.Issued != 20 {
		t.Fatalf("cross-run merge: stride-rpt issued = %v, want 20", c)
	}
	if agg.demand != 300 {
		t.Errorf("demand = %d, want 300", agg.demand)
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := newAggregate()
	// Records of other kinds only: the aggregate must report empty so
	// main can exit nonzero instead of printing a zero-row table.
	in := `{"record":"epoch","run":"x","cycle":1}` + "\n"
	if err := agg.read(strings.NewReader(in), nil); err != nil {
		t.Fatal(err)
	}
	if !agg.empty() {
		t.Error("aggregate with no attribution records not reported empty")
	}
	full := newAggregate()
	if err := full.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	if full.empty() {
		t.Error("aggregate with attribution records reported empty")
	}
}

func TestAggregateRejectsGarbage(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader("not json\n"), nil); err == nil {
		t.Fatal("garbage line accepted")
	}
}

// TestAggregateLongLines is the regression test for the bufio.Scanner
// "token too long" failure: a record padded past the old 1 MiB scanner
// cap (here via a long run name) must parse, not error out.
func TestAggregateLongLines(t *testing.T) {
	longRun := strings.Repeat("r", 2<<20)
	input := strings.Replace(sampleJSONL, `"run":"hw/a/stride/true"`, `"run":"`+longRun+`"`, -1)
	agg := newAggregate()
	if err := agg.read(strings.NewReader(input), nil); err != nil {
		t.Fatalf("read with >1MiB lines: %v", err)
	}
	if !agg.runs[longRun] {
		t.Error("long-named run not aggregated")
	}
}
