package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// sample JSONL covering two runs of a two-core and a one-core config,
// with the epoch/tolerance/summary records a real -cpistack stream
// interleaves. Values are chosen so the derived shares are easy to
// eyeball: run a totals 2000 cycles with 1000 issued (50.0%), 400
// scoreboard (20.0%), 300 mrq_full (15.0%), 200 idle (10.0%), 100
// drain (5.0%); run b is 100% issued.
const sampleJSONL = `{"record":"cpiepoch","run":"hw/a/stride/true","cycle":512,"issued":100,"idle":0,"scoreboard":28,"mrq_full":0,"throttled":0,"drain":0}
{"record":"cpitol","run":"hw/a/stride/true","cycle":512,"core":0,"ready_warps":3,"active_warps":5,"live_warps":8,"mrq_outstanding":2,"mrq_free":6,"oldest_fill_age":40}
{"record":"cpistack","run":"hw/a/stride/true","core":0,"cycles":1000,"issued":600,"idle":100,"scoreboard":200,"mrq_full":100,"throttled":0,"drain":0}
{"record":"cpistack","run":"hw/a/stride/true","core":1,"cycles":1000,"issued":400,"idle":100,"scoreboard":200,"mrq_full":200,"throttled":0,"drain":100}
{"record":"cpisummary","run":"hw/a/stride/true","cores":2,"cycles":2000,"issued":1000,"idle":200,"scoreboard":400,"mrq_full":300,"throttled":0,"drain":100}
{"record":"cpistack","run":"hw/b/none/false","core":0,"cycles":500,"issued":500,"idle":0,"scoreboard":0,"mrq_full":0,"throttled":0,"drain":0}
{"record":"cpisummary","run":"hw/b/none/false","cores":1,"cycles":500,"issued":500,"idle":0,"scoreboard":0,"mrq_full":0,"throttled":0,"drain":0}
`

func TestAggregateSummaryTable(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agg.writeSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 run(s)") {
		t.Errorf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header line, column line, two runs
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	var a, b string
	for _, l := range lines {
		if strings.HasPrefix(l, "hw/a/") {
			a = l
		}
		if strings.HasPrefix(l, "hw/b/") {
			b = l
		}
	}
	if a == "" || b == "" {
		t.Fatalf("missing run rows:\n%s", out)
	}
	// run a: 2 cores, 2000 cycles; issued 50.0, scoreboard 20.0,
	// mrq_full 15.0, idle 10.0, drain 5.0
	for _, want := range []string{" 2 ", "2000", "50.0", "20.0", "15.0", "10.0", "5.0"} {
		if !strings.Contains(a, want) {
			t.Errorf("run a row missing %q: %s", want, a)
		}
	}
	for _, want := range []string{"500", "100.0", "0.0"} {
		if !strings.Contains(b, want) {
			t.Errorf("run b row missing %q: %s", want, b)
		}
	}
}

func TestAggregateRunFilter(t *testing.T) {
	agg := newAggregate()
	re := regexp.MustCompile(`stride`)
	if err := agg.read(strings.NewReader(sampleJSONL), re); err != nil {
		t.Fatal(err)
	}
	if len(agg.runs) != 1 {
		t.Fatalf("filter kept %d runs, want 1", len(agg.runs))
	}
	if _, ok := agg.runs["hw/b/none/false"]; ok {
		t.Error("filtered-out run still aggregated")
	}
}

func TestAggregateByCoreTable(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agg.writeByCore(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hw/a/stride/true", "hw/b/none/false",
		"scoreboard", "mrq_full", "600", "400"} {
		if !strings.Contains(out, want) {
			t.Errorf("per-core table missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateMergesAcrossStreams(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	if err := agg.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	ra := agg.runs["hw/a/stride/true"]
	if ra == nil || sum(ra.totals) != 4000 {
		t.Fatalf("cross-stream merge: run a total = %v, want 4000", ra)
	}
	if len(ra.cores) != 2 {
		t.Fatalf("run a cores = %d, want 2", len(ra.cores))
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := newAggregate()
	// Non-cpistack records only: the aggregate must report empty so main
	// can exit nonzero instead of printing a zero-row table.
	in := `{"record":"cpiepoch","run":"x","cycle":1}` + "\n" +
		`{"record":"pfreport","run":"x","source":"stride-rpt"}` + "\n"
	if err := agg.read(strings.NewReader(in), nil); err != nil {
		t.Fatal(err)
	}
	if !agg.empty() {
		t.Error("aggregate with no cpistack records not reported empty")
	}
	full := newAggregate()
	if err := full.read(strings.NewReader(sampleJSONL), nil); err != nil {
		t.Fatal(err)
	}
	if full.empty() {
		t.Error("aggregate with cpistack records reported empty")
	}
}

func TestAggregateRejectsGarbage(t *testing.T) {
	agg := newAggregate()
	if err := agg.read(strings.NewReader("not json\n"), nil); err == nil {
		t.Fatal("garbage line accepted")
	}
}

// TestAggregateLongLines is the regression test for the bufio.Scanner
// "token too long" failure: a record padded past the old 1 MiB scanner
// cap (here via a long run name) must parse, not error out.
func TestAggregateLongLines(t *testing.T) {
	longRun := strings.Repeat("r", 2<<20)
	input := strings.Replace(sampleJSONL, `"run":"hw/a/stride/true"`, `"run":"`+longRun+`"`, -1)
	agg := newAggregate()
	if err := agg.read(strings.NewReader(input), nil); err != nil {
		t.Fatalf("read with >1MiB lines: %v", err)
	}
	if agg.runs[longRun] == nil {
		t.Error("long-named run not aggregated")
	}
}
