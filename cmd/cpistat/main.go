// Command cpistat post-processes cycle-accounting JSONL (written by
// mtpref -cpistack, one "cpistack" line per core per run plus one
// "cpisummary" trailer per run) into per-run CPI-stack tables: where
// every core-cycle went, as a percentage per bucket.
//
// Usage:
//
//	cpistat [-run REGEX] [-bycore] [FILE...]
//
// With no FILE it reads stdin, so it composes with a sweep directly:
//
//	mtpref run gstable -cpistack /dev/stdout > /dev/null | cpistat
//
// Flags:
//
//	-run REGEX   only aggregate runs whose key matches REGEX
//	-bycore      additionally print raw per-core bucket counts per run
//
// Exit codes: 0 ok; 1 read/parse failure or no matching cycle-accounting
// records in the input; 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"regexp"
	"sort"

	"mtprefetch/internal/obs"
	"mtprefetch/internal/statcli"
)

// record mirrors the per-core "cpistack" lines of the obs JSONL schema;
// unknown record types ("cpiepoch", "cpitol", "cpisummary", epoch
// samples from a mixed stream) are skipped — the per-core lifetime lines
// carry everything the tables need.
type record struct {
	Record     string `json:"record"`
	Run        string `json:"run"`
	Core       int    `json:"core"`
	Cycles     uint64 `json:"cycles"`
	Issued     uint64 `json:"issued"`
	Idle       uint64 `json:"idle"`
	Scoreboard uint64 `json:"scoreboard"`
	MRQFull    uint64 `json:"mrq_full"`
	Throttled  uint64 `json:"throttled"`
	Drain      uint64 `json:"drain"`
}

func (r *record) buckets() [obs.NumBuckets]uint64 {
	var b [obs.NumBuckets]uint64
	b[obs.BucketIssued] = r.Issued
	b[obs.BucketIdle] = r.Idle
	b[obs.BucketScoreboard] = r.Scoreboard
	b[obs.BucketMRQFull] = r.MRQFull
	b[obs.BucketThrottled] = r.Throttled
	b[obs.BucketDrain] = r.Drain
	return b
}

// coreRow is one core's accumulated buckets within a run.
type coreRow struct {
	buckets [obs.NumBuckets]uint64
}

// runAgg accumulates one run's CPI stack.
type runAgg struct {
	cores  []coreRow
	totals [obs.NumBuckets]uint64
}

// aggregate accumulates cycle-accounting records across the input.
type aggregate struct {
	runs map[string]*runAgg
}

func newAggregate() *aggregate {
	return &aggregate{runs: make(map[string]*runAgg)}
}

// read consumes one JSONL stream, keeping runs matched by filter (nil
// keeps all).
func (a *aggregate) read(r io.Reader, filter *regexp.Regexp) error {
	return statcli.Read(r, filter, a.line)
}

// line aggregates one run-matching JSONL line; everything but the
// per-core "cpistack" lines is skipped.
func (a *aggregate) line(p statcli.Probe, line []byte) error {
	if p.Record != "cpistack" {
		return nil
	}
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("bad JSONL line: %w", err)
	}
	ra := a.runs[rec.Run]
	if ra == nil {
		ra = &runAgg{}
		a.runs[rec.Run] = ra
	}
	for len(ra.cores) <= rec.Core {
		ra.cores = append(ra.cores, coreRow{})
	}
	for b, v := range rec.buckets() {
		ra.cores[rec.Core].buckets[b] += v
		ra.totals[b] += v
	}
	return nil
}

// empty reports whether the input contained no cycle-accounting records
// at all (after filtering) — an empty table would otherwise pass
// silently, hiding a wrong file, a typo'd -run regex, or a run without
// -cpistack.
func (a *aggregate) empty() bool { return len(a.runs) == 0 }

// keys returns the run keys in sorted order, for deterministic output.
func (a *aggregate) keys() []string {
	keys := make([]string, 0, len(a.runs))
	for k := range a.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sum(b [obs.NumBuckets]uint64) uint64 {
	var n uint64
	for _, v := range b {
		n += v
	}
	return n
}

func pct(v, total uint64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(v)/float64(total)*100)
}

// writeSummary renders one row per run: core count, total attributed
// cycles, and each bucket's share of them.
func (a *aggregate) writeSummary(w io.Writer) error {
	keys := a.keys()
	if _, err := fmt.Fprintf(w, "%d run(s)\n", len(keys)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-36s %5s %14s", "run", "cores", "cycles"); err != nil {
		return err
	}
	for b := obs.Bucket(0); b < obs.NumBuckets; b++ {
		if _, err := fmt.Fprintf(w, " %11s", b.String()+"%"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, k := range keys {
		ra := a.runs[k]
		total := sum(ra.totals)
		if _, err := fmt.Fprintf(w, "%-36s %5d %14d", k, len(ra.cores), total); err != nil {
			return err
		}
		for _, v := range ra.totals {
			if _, err := fmt.Fprintf(w, " %11s", pct(v, total)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// writeByCore renders raw per-core bucket counts for every run.
func (a *aggregate) writeByCore(w io.Writer) error {
	for _, k := range a.keys() {
		ra := a.runs[k]
		if _, err := fmt.Fprintf(w, "\n%s\n", k); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-5s %14s", "core", "cycles"); err != nil {
			return err
		}
		for b := obs.Bucket(0); b < obs.NumBuckets; b++ {
			if _, err := fmt.Fprintf(w, " %12s", b); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for i, c := range ra.cores {
			if _, err := fmt.Fprintf(w, "%-5d %14d", i, sum(c.buckets)); err != nil {
				return err
			}
			for _, v := range c.buckets {
				if _, err := fmt.Fprintf(w, " %12d", v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func main() {
	var byCore *bool
	agg := newAggregate()
	statcli.Main(statcli.Tool{
		Name:      "cpistat",
		Usage:     "usage: cpistat [-run REGEX] [-bycore] [FILE...]\n",
		EmptyWhat: "cpistack records",
		EmptyFlag: "-cpistack",
		Flags: func(fs *flag.FlagSet) {
			byCore = fs.Bool("bycore", false, "additionally print raw per-core bucket counts")
		},
		Line:  agg.line,
		Empty: agg.empty,
		Render: func(w io.Writer) error {
			if err := agg.writeSummary(w); err != nil {
				return err
			}
			if *byCore {
				return agg.writeByCore(w)
			}
			return nil
		},
	})
}
