// Command mtpref regenerates the evaluation of "Many-Thread Aware
// Prefetching Mechanisms for GPGPU Applications" (Lee et al., MICRO 2010):
// every table and figure of the paper maps to one experiment id.
//
// Usage:
//
//	mtpref list                 # show all experiments
//	mtpref run <id> [...]       # run selected experiments
//	mtpref all                  # run everything
//
// Flags (accepted before or after the subcommand and ids):
//
//	-waves N        scale benchmarks to ~N occupancy waves per core (default 2)
//	-full           run sensitivity sweeps over the full suite, not the subset
//	-j N            run up to N simulations concurrently per experiment
//	                (default GOMAXPROCS; -j 1 is strictly sequential, and any
//	                setting produces byte-identical tables)
//	-shards N       step each simulation's cores in N parallel shards
//	                (default 1 = serial; any setting produces byte-identical
//	                output — CI enforces it). The worker pool is budgeted so
//	                that workers x shards stays within GOMAXPROCS.
//	-csv DIR        additionally write each table as <DIR>/<exp>-<n>.csv
//	-metrics FILE   write per-epoch time series as JSONL (one line per run per epoch)
//	-trace FILE     write a Chrome trace-event JSON (load in Perfetto / chrome://tracing)
//	-pfreport FILE  write per-run prefetch attribution (per-source/per-PC
//	                outcome counts) as JSONL; post-process with cmd/pfstat
//	-cpistack FILE  write per-run CPI stacks (cycle accounting: where every
//	                core-cycle went) and latency-tolerance snapshots as
//	                JSONL; post-process with cmd/cpistat
//	-spans FILE     write request-level span records (a deterministic sample
//	                of memory requests with per-stage latency decomposition:
//	                MRQ wait, NoC transit, DRAM queueing and service) as
//	                JSONL; post-process with cmd/spanstat. With -trace, the
//	                trace additionally carries one flow arc per sampled fill
//	-span-every N   span sampling divisor: one in N eligible requests is
//	                sampled (default 32); sampling is deterministic and
//	                independent of -j, -shards, and -noskip
//	-http ADDR      serve live sweep introspection on ADDR (e.g. :6060):
//	                "/" per-run progress JSON, "/metrics" Prometheus text,
//	                "/healthz" run-state JSON, "/tolerance" live per-core
//	                latency-tolerance snapshots, "/debug/pprof" Go profiling
//	-http-snapshots N
//	                keep the metrics snapshots of the last N finished runs
//	                on the debug server (default 32)
//	-sample N       epoch length in cycles for -metrics sampling and
//	                -cpistack epochs (default 10000)
//	-crashdir DIR   write a per-run crash-dump bundle for every failed simulation
//	-noskip         visit every cycle instead of event-driven skipping (slower;
//	                output is byte-identical either way — CI enforces it)
//	-store DIR      persist every completed run in a crash-safe
//	                content-addressed result store under DIR; reruns and
//	                resumed sweeps serve matching runs from disk
//	                byte-identically instead of re-simulating (CI enforces
//	                it). Corrupt entries are quarantined and re-simulated.
//	-run-timeout D  wall-clock deadline per simulation (e.g. 5m; 0 = none),
//	                complementing the cycle-domain livelock watchdog
//	-retries N      retries per run for transient failures (store I/O,
//	                injected chaos faults), with deterministic seeded
//	                exponential backoff (default 2)
//	-cpuprofile F   write a pprof CPU profile of the whole invocation to F
//	-memprofile F   write a pprof heap profile (taken at exit) to F
//
// The first SIGTERM/SIGINT drains gracefully: no new simulations start,
// in-flight ones cancel at their next poll barrier, results completed so
// far are committed to -store, and the aborted run keys are listed; a
// second signal exits immediately. Re-running the same command resumes
// from exactly the missing runs.
//
// Exit codes: 0 all experiments clean; 1 fatal error (nothing usable was
// produced); 2 usage error; 3 degraded (every experiment printed its
// tables, but some runs failed and rendered as ERR cells); 4 drained (a
// signal interrupted the sweep; completed results were committed).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mtprefetch/internal/harness"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: mtpref [-waves N] [-full] [-j N] [-shards N] [-csv DIR] [-metrics FILE] [-trace FILE] [-pfreport FILE] [-cpistack FILE] [-spans FILE] [-span-every N] [-http ADDR] [-http-snapshots N] [-sample N] [-crashdir DIR] [-noskip] [-store DIR] [-run-timeout D] [-retries N] [-cpuprofile FILE] [-memprofile FILE] {list | run <id>... | all}\n")
	os.Exit(2)
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"mtpref:"}, args...)...)
	stopProfiles()
	os.Exit(1)
}

// stopProfiles finalises -cpuprofile/-memprofile output. It is a
// package-level variable because fatal exits the process directly, so
// every exit path (normal, degraded, fatal) must flush through it; it
// replaces itself with a no-op on first call so a fatal inside a
// finaliser cannot recurse.
var stopProfiles = func() {}

// startProfiles begins CPU profiling and arranges the heap snapshot,
// installing the combined finaliser into stopProfiles.
func startProfiles(cpuPath, memPath string) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		})
	}
	if len(stops) == 0 {
		return
	}
	stopProfiles = func() {
		stopProfiles = func() {}
		for _, stop := range stops {
			stop()
		}
	}
}

// cliFlags holds every mtpref flag value after parsing.
type cliFlags struct {
	waves       int
	workers     int
	shards      int
	full        bool
	csvDir      string
	metricsPath string
	tracePath   string
	pfPath      string
	cpiPath     string
	spanPath    string
	spanEvery   uint64
	httpAddr    string
	httpSnaps   int
	sample      uint64
	crashDir    string
	noSkip      bool
	storeDir    string
	runTimeout  time.Duration
	retries     int
	cpuProfile  string
	memProfile  string
}

// defineFlags registers the mtpref flags on fs and returns the value
// struct they populate.
func defineFlags(fs *flag.FlagSet) *cliFlags {
	c := &cliFlags{}
	fs.IntVar(&c.waves, "waves", 2, "occupancy waves per core when scaling benchmarks")
	fs.IntVar(&c.workers, "j", runtime.GOMAXPROCS(0), "concurrent simulations per experiment (1 = sequential)")
	fs.IntVar(&c.shards, "shards", 1, "core shards per simulation (1 = serial core stepping; output is byte-identical at any value)")
	fs.BoolVar(&c.full, "full", false, "run sensitivity sweeps on the full suite")
	fs.StringVar(&c.csvDir, "csv", "", "directory to write per-table CSV files into")
	fs.StringVar(&c.metricsPath, "metrics", "", "JSONL file for per-epoch metric samples")
	fs.StringVar(&c.tracePath, "trace", "", "Chrome trace-event JSON file")
	fs.StringVar(&c.pfPath, "pfreport", "", "JSONL file for per-run prefetch attribution (see cmd/pfstat)")
	fs.StringVar(&c.cpiPath, "cpistack", "", "JSONL file for per-run CPI stacks and latency tolerance (see cmd/cpistat)")
	fs.StringVar(&c.spanPath, "spans", "", "JSONL file for per-run request span records (see cmd/spanstat)")
	fs.Uint64Var(&c.spanEvery, "span-every", obs.DefaultSpanEvery, "span sampling divisor: one in N eligible requests is sampled")
	fs.StringVar(&c.httpAddr, "http", "", "address for the live-introspection debug server (e.g. :6060)")
	fs.IntVar(&c.httpSnaps, "http-snapshots", harness.DefaultSnapshotKeep, "finished-run metrics snapshots kept on the debug server")
	fs.Uint64Var(&c.sample, "sample", 10_000, "epoch length in cycles for -metrics sampling")
	fs.StringVar(&c.crashDir, "crashdir", "", "directory for per-run crash-dump bundles on failure")
	fs.BoolVar(&c.noSkip, "noskip", false, "visit every cycle instead of event-driven skipping")
	fs.StringVar(&c.storeDir, "store", "", "directory for the crash-safe persistent result store (resumes sweeps byte-identically)")
	fs.DurationVar(&c.runTimeout, "run-timeout", 0, "wall-clock deadline per simulation (0 = none)")
	fs.IntVar(&c.retries, "retries", 2, "retries per run for transient failures (seeded exponential backoff)")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.memProfile, "memprofile", "", "write a pprof heap profile (at exit) to this file")
	return c
}

// parseIntermixed handles flags appearing after positional arguments
// (`mtpref run fig12 -sample 1000 -metrics m.jsonl`): the standard flag
// package stops at the first non-flag, so re-parse the remainder after
// collecting each positional. With flag.ExitOnError a bad flag exits;
// with flag.ContinueOnError (tests) the first parse error is returned.
func parseIntermixed(fs *flag.FlagSet, args []string) ([]string, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	var pos []string
	rest := fs.Args()
	for len(rest) > 0 {
		pos = append(pos, rest[0])
		if err := fs.Parse(rest[1:]); err != nil {
			return nil, err
		}
		rest = fs.Args()
	}
	return pos, nil
}

// outFile wraps a created file in a buffered writer; nil path gives nil
// writer (disabling that output).
type outFile struct {
	f  *os.File
	bw *bufio.Writer
}

func newOutFile(path string) (*outFile, io.Writer) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	o := &outFile{f: f, bw: bufio.NewWriter(f)}
	return o, o.bw
}

func (o *outFile) close() {
	if o == nil {
		return
	}
	if err := o.bw.Flush(); err != nil {
		fatal(err)
	}
	if err := o.f.Close(); err != nil {
		fatal(err)
	}
}

func main() {
	fs := flag.NewFlagSet("mtpref", flag.ExitOnError)
	fs.Usage = usage
	cli := defineFlags(fs)
	args, err := parseIntermixed(fs, os.Args[1:])
	if err != nil {
		usage()
	}
	if len(args) == 0 {
		usage()
	}

	subset := !cli.full
	cfg := harness.Config{Waves: cli.waves, Subset: &subset, Workers: cli.workers,
		Shards: cli.shards, CrashDir: cli.crashDir, NoCycleSkip: cli.noSkip,
		RunTimeout: cli.runTimeout, Retries: cli.retries}
	startProfiles(cli.cpuProfile, cli.memProfile)

	if cli.storeDir != "" {
		st, err := store.Open(cli.storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
	}

	// Graceful drain: the first SIGTERM/SIGINT stops new simulations and
	// cancels in-flight ones at their next poll barrier; completed
	// results stay committed to -store, so re-running resumes exactly
	// the aborted cells. A second signal exits immediately.
	lc := harness.NewLifecycle()
	cfg.Lifecycle = lc
	stopSignals := lc.HandleSignals()
	defer stopSignals()

	mf, mw := newOutFile(cli.metricsPath)
	tf, tw := newOutFile(cli.tracePath)
	pf, pw := newOutFile(cli.pfPath)
	cf, cw := newOutFile(cli.cpiPath)
	sf, sw := newOutFile(cli.spanPath)
	sink, err := obs.NewSink(mw, tw, pw, cw, sw, obs.Config{SampleEvery: cli.sample, SpanEvery: cli.spanEvery})
	if err != nil {
		fatal(err)
	}
	cfg.Obs = sink

	if cli.httpAddr != "" {
		ds, err := harness.NewDebugServer(cli.httpAddr)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		ds.SetSnapshotKeep(cli.httpSnaps)
		ds.SetStore(cfg.Store)
		fmt.Fprintf(os.Stderr, "mtpref: debug server listening on http://%s\n", ds.Addr())
		cfg.Debug = ds
	}

	// Experiments degraded by failed runs (ERR cells) are collected and
	// reported after everything else has had its chance to complete; a
	// nil-table failure aborts immediately.
	var degraded []error
	runExp := func(e *harness.Experiment) {
		err := runOne(e, cfg, cli.csvDir)
		if err == nil {
			return
		}
		var se *harness.SweepError
		if errors.As(err, &se) {
			degraded = append(degraded, err)
			return
		}
		fatal(err)
	}

	switch args[0] {
	case "list":
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
	case "all":
		for _, e := range harness.Experiments() {
			runExp(&e)
		}
	case "run":
		if len(args) < 2 {
			usage()
		}
		for _, id := range args[1:] {
			e := harness.ByID(id)
			if e == nil {
				fatal(fmt.Sprintf("unknown experiment %q (try 'mtpref list')", id))
			}
			runExp(e)
		}
	default:
		usage()
	}

	if err := sink.Close(); err != nil {
		fatal(err)
	}
	mf.close()
	tf.close()
	pf.close()
	cf.close()
	sf.close()
	stopProfiles()

	// A drain outranks the degraded exit: the aborted runs render as ERR
	// cells too, but they are interruptions to resume, not failures.
	if aborted := lc.Aborted(); len(aborted) > 0 {
		fmt.Fprintf(os.Stderr, "mtpref: drained: %d run(s) aborted:\n", len(aborted))
		for _, k := range aborted {
			fmt.Fprintf(os.Stderr, "  %s\n", k)
		}
		fmt.Fprintf(os.Stderr, "mtpref: completed results were committed; re-run with -store to resume\n")
		os.Exit(4)
	}
	if len(degraded) > 0 {
		fmt.Fprintf(os.Stderr, "mtpref: %d experiment(s) had failed runs:\n", len(degraded))
		for _, err := range degraded {
			fmt.Fprintf(os.Stderr, "  %v\n", err)
		}
		os.Exit(3)
	}
}

// runOne runs one experiment and prints its tables. A degraded sweep
// (tables plus a *harness.SweepError) still prints everything — failed
// cells show as ERR — and returns the error for the exit-code summary;
// only a nil-table failure produced nothing printable.
func runOne(e *harness.Experiment, cfg harness.Config, csvDir string) error {
	start := time.Now()
	tables, err := e.Run(cfg)
	if err != nil && tables == nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("== %s (%s) ==\n", e.ID, e.PaperRef)
	for i, t := range tables {
		fmt.Println(t)
		if csvDir == "" {
			continue
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		name := e.ID
		if len(tables) > 1 {
			name = fmt.Sprintf("%s-%d", e.ID, i+1)
		}
		path := filepath.Join(csvDir, name+".csv")
		content := "# " + strings.ReplaceAll(t.Title(), "\n", " ") + "\n" + t.CSV()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
	}
	if err != nil {
		// "with failed runs" keeps the CI determinism gate's
		// "completed in ..." normalisation from matching a degraded run.
		fmt.Printf("[%s completed with failed runs in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("[%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
