// Command mtpref regenerates the evaluation of "Many-Thread Aware
// Prefetching Mechanisms for GPGPU Applications" (Lee et al., MICRO 2010):
// every table and figure of the paper maps to one experiment id.
//
// Usage:
//
//	mtpref list                 # show all experiments
//	mtpref run <id> [...]       # run selected experiments
//	mtpref all                  # run everything
//
// Flags:
//
//	-waves N    scale benchmarks to ~N occupancy waves per core (default 2)
//	-full       run sensitivity sweeps over the full suite, not the subset
//	-csv DIR    additionally write each table as <DIR>/<exp>-<n>.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mtprefetch/internal/harness"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: mtpref [-waves N] [-full] [-csv DIR] {list | run <id>... | all}\n")
	os.Exit(2)
}

func main() {
	waves := flag.Int("waves", 2, "occupancy waves per core when scaling benchmarks")
	full := flag.Bool("full", false, "run sensitivity sweeps on the full suite")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files into")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	subset := !*full
	cfg := harness.Config{Waves: *waves, Subset: &subset}

	switch args[0] {
	case "list":
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
	case "all":
		for _, e := range harness.Experiments() {
			runOne(&e, cfg, *csvDir)
		}
	case "run":
		if len(args) < 2 {
			usage()
		}
		for _, id := range args[1:] {
			e := harness.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "mtpref: unknown experiment %q (try 'mtpref list')\n", id)
				os.Exit(1)
			}
			runOne(e, cfg, *csvDir)
		}
	default:
		usage()
	}
}

func runOne(e *harness.Experiment, cfg harness.Config, csvDir string) {
	start := time.Now()
	tables, err := e.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpref: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	fmt.Printf("== %s (%s) ==\n", e.ID, e.PaperRef)
	for i, t := range tables {
		fmt.Println(t)
		if csvDir == "" {
			continue
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mtpref:", err)
			os.Exit(1)
		}
		name := e.ID
		if len(tables) > 1 {
			name = fmt.Sprintf("%s-%d", e.ID, i+1)
		}
		path := filepath.Join(csvDir, name+".csv")
		content := "# " + strings.ReplaceAll(t.Title(), "\n", " ") + "\n" + t.CSV()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mtpref:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("[%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
}
