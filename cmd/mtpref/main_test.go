package main

import (
	"flag"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// parse runs the production flag definitions over argv with errors
// returned instead of exiting, mirroring main's wiring.
func parse(t *testing.T, argv []string) (*cliFlags, []string, error) {
	t.Helper()
	fs := flag.NewFlagSet("mtpref", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cli := defineFlags(fs)
	pos, err := parseIntermixed(fs, argv)
	return cli, pos, err
}

func TestParseFlagsBeforePositionals(t *testing.T) {
	cli, pos, err := parse(t, []string{"-waves", "3", "-j", "4", "-full", "run", "fig10"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []string{"run", "fig10"}) {
		t.Errorf("positionals = %v", pos)
	}
	if cli.waves != 3 || cli.workers != 4 || !cli.full {
		t.Errorf("flags = %+v, want waves=3 workers=4 full=true", cli)
	}
}

func TestParseFlagsAfterPositionals(t *testing.T) {
	cli, pos, err := parse(t, []string{"run", "fig12", "-metrics", "m.jsonl", "-sample", "500", "-j", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []string{"run", "fig12"}) {
		t.Errorf("positionals = %v", pos)
	}
	if cli.metricsPath != "m.jsonl" || cli.sample != 500 || cli.workers != 2 {
		t.Errorf("flags = %+v, want metrics=m.jsonl sample=500 workers=2", cli)
	}
}

func TestParseFlagsIntermixed(t *testing.T) {
	cli, pos, err := parse(t, []string{
		"-trace", "t.json", "run", "-j", "8", "fig10", "-waves", "1", "fig12", "-full"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []string{"run", "fig10", "fig12"}) {
		t.Errorf("positionals = %v", pos)
	}
	if cli.tracePath != "t.json" || cli.workers != 8 || cli.waves != 1 || !cli.full {
		t.Errorf("flags = %+v, want trace=t.json workers=8 waves=1 full=true", cli)
	}
}

func TestParseCrashDir(t *testing.T) {
	cli, pos, err := parse(t, []string{"run", "table3", "-crashdir", "/tmp/dumps"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []string{"run", "table3"}) {
		t.Errorf("positionals = %v", pos)
	}
	if cli.crashDir != "/tmp/dumps" {
		t.Errorf("crashDir = %q, want /tmp/dumps", cli.crashDir)
	}
}

func TestParseDefaults(t *testing.T) {
	cli, pos, err := parse(t, []string{"list"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []string{"list"}) {
		t.Errorf("positionals = %v", pos)
	}
	if cli.waves != 2 || cli.sample != 10_000 || cli.full || cli.csvDir != "" || cli.crashDir != "" {
		t.Errorf("defaults = %+v", cli)
	}
	if cli.workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS (%d)", cli.workers, runtime.GOMAXPROCS(0))
	}
}

func TestParseBadFlag(t *testing.T) {
	for _, argv := range [][]string{
		{"-bogus", "run", "fig10"},
		{"run", "fig10", "-bogus"},
		{"-waves", "x", "list"},
	} {
		if _, _, err := parse(t, argv); err == nil {
			t.Errorf("parse(%v) succeeded, want error", argv)
		}
	}
}

func TestParseStoreFlags(t *testing.T) {
	cli, pos, err := parse(t, []string{"run", "fig10", "-store", "/tmp/results",
		"-run-timeout", "5m", "-retries", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []string{"run", "fig10"}) {
		t.Errorf("positionals = %v", pos)
	}
	if cli.storeDir != "/tmp/results" {
		t.Errorf("storeDir = %q, want /tmp/results", cli.storeDir)
	}
	if cli.runTimeout != 5*time.Minute {
		t.Errorf("runTimeout = %v, want 5m", cli.runTimeout)
	}
	if cli.retries != 7 {
		t.Errorf("retries = %d, want 7", cli.retries)
	}
}

func TestParseStoreDefaults(t *testing.T) {
	cli, _, err := parse(t, []string{"list"})
	if err != nil {
		t.Fatal(err)
	}
	if cli.storeDir != "" || cli.runTimeout != 0 {
		t.Errorf("store defaults = %+v, want disabled store and no deadline", cli)
	}
	if cli.retries != 2 {
		t.Errorf("default retries = %d, want 2", cli.retries)
	}
}

func TestParseBadDuration(t *testing.T) {
	if _, _, err := parse(t, []string{"run", "fig10", "-run-timeout", "soon"}); err == nil {
		t.Error("parse accepted a malformed -run-timeout")
	}
}
