#!/bin/sh
# Kill-and-resume chaos gate for the persistent result store.
#
# Proves the ISSUE's differential guarantees end to end with the real
# binary:
#
#   1. cold      — no store: the reference output.
#   2. killed    — a sweep with -store is SIGKILLed mid-flight (the
#                  crash-safety worst case: no drain, no cleanup).
#   3. resumed   — the same sweep re-run over the surviving store
#                  directory must complete and print tables
#                  byte-identical to the cold run (after normalising
#                  wall-clock lines): every committed entry is served
#                  as-is, every lost or in-flight run re-simulates, and
#                  no torn entry is ever served (it would change cells).
#   4. warm      — a third run over the now-complete store must again
#                  be byte-identical while serving everything from disk.
#
# Usage: scripts/store_chaos.sh [STOREDIR]   (default: a fresh tmp dir)
set -eu
cd "$(dirname "$0")/.."

STOREDIR=${1:-$(mktemp -d /tmp/mtpref-store.XXXXXX)}
OUTDIR=$(mktemp -d /tmp/mtpref-chaos.XXXXXX)
EXPERIMENTS="table3 gstable"
NORM='s/completed in .*/completed/'

go build -o "$OUTDIR/mtpref" ./cmd/mtpref

echo "== cold run (no store) =="
"$OUTDIR/mtpref" -waves 1 run $EXPERIMENTS | sed "$NORM" > "$OUTDIR/cold.txt"

echo "== killed run (SIGKILL mid-sweep, store at $STOREDIR) =="
# -j 1 stretches the sweep so the kill lands mid-flight; worker count
# never affects store contents or output bytes (see the j1-vs-j8 gate).
"$OUTDIR/mtpref" -waves 1 -j 1 -store "$STOREDIR" run $EXPERIMENTS > "$OUTDIR/killed.txt" 2>&1 &
PID=$!
# Give the sweep time to commit some (but ideally not all) entries,
# then kill it the hard way. Timing only affects how much work the
# resume saves, never its bytes.
sleep 0.4
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
COMMITTED=$(ls "$STOREDIR/entries" 2>/dev/null | wc -l)
echo "killed with $COMMITTED entries committed"

echo "== resumed run (same store) =="
"$OUTDIR/mtpref" -waves 1 -store "$STOREDIR" run $EXPERIMENTS | sed "$NORM" > "$OUTDIR/resumed.txt"
diff "$OUTDIR/cold.txt" "$OUTDIR/resumed.txt"
echo "resumed output byte-identical to cold"

echo "== warm run (fully-populated store) =="
"$OUTDIR/mtpref" -waves 1 -store "$STOREDIR" run $EXPERIMENTS | sed "$NORM" > "$OUTDIR/warm.txt"
diff "$OUTDIR/cold.txt" "$OUTDIR/warm.txt"
echo "warm output byte-identical to cold"

echo "store_chaos: OK (store: $STOREDIR)"
