#!/bin/sh
# Full verification gate: vet, build, race-enabled tests, chaos suite.
# Equivalent to `make check`, for environments without make.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
go test -timeout 10m -run 'Chaos|Stalled|Dropped|Corrupt|CleanRun|Poisoned|CrashDump|Taxonomy|Store|Torn|Quarantine|Resume|Flake|Retry|Drain|RunTimeout|Sanitize' \
	./internal/faults/... ./internal/harness/... ./internal/store/...
# Allocation-budget gate: one iteration per workload, compared against
# the committed per-benchmark allocs/op budgets in ci/alloc_budget.json
# (same as `make bench-alloc BENCHTIME=1x`, inlined for make-less hosts).
go test -bench='CoreAlloc' -benchmem -run='^$' -benchtime=1x . > /tmp/bench_alloc.txt
go run ./cmd/benchjson -budget ci/alloc_budget.json < /tmp/bench_alloc.txt > BENCH_alloc.json
