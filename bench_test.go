// Repository-level benchmarks: one per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment through the
// harness registry and reports the headline number (usually a geomean
// speedup) as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Row-level output comes from
// cmd/mtpref ("mtpref run fig10" etc.); see EXPERIMENTS.md for the
// paper-vs-measured comparison.
package mtprefetch_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"mtprefetch/internal/harness"
	"mtprefetch/internal/stats"
)

// benchConfig keeps the benchmarks fast; shapes are stable across scales.
// Workers pins sequential execution so per-experiment numbers stay
// comparable across machines; the parallel speedup is measured separately
// by the *Sweep benchmarks below.
func benchConfig() harness.Config {
	subset := true
	return harness.Config{Waves: 2, Subset: &subset, Workers: 1}
}

// runExperiment executes a registry entry b.N times and reports rows.
func runExperiment(b *testing.B, id string) []*stats.Table {
	b.Helper()
	e := harness.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = e.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	rows := 0
	for _, t := range tables {
		rows += t.NumRows()
	}
	b.ReportMetric(float64(rows), "rows")
	return tables
}

// geomeanMetric extracts the last row's numeric cells (the geomean row of
// the speedup tables) and reports the value from the given column label.
func geomeanMetric(b *testing.B, t *stats.Table, metric string) {
	b.Helper()
	s := t.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	last := lines[len(lines)-1]
	fields := strings.Fields(last)
	if len(fields) < 2 {
		return
	}
	if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkTable2Config(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkTable3Characteristics(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4NonIntensive(b *testing.B)    { runExperiment(b, "table4") }
func BenchmarkTable5Prefetchers(b *testing.B)     { runExperiment(b, "table5") }
func BenchmarkTable6Cost(b *testing.B)            { runExperiment(b, "table6") }

func BenchmarkFig8MemoryLatency(b *testing.B) { runExperiment(b, "fig8") }

func BenchmarkFig10SoftwarePrefetch(b *testing.B) {
	tables := runExperiment(b, "fig10")
	geomeanMetric(b, tables[0], "geomean-mtswp")
}

func BenchmarkFig11SWPThrottle(b *testing.B) {
	tables := runExperiment(b, "fig11")
	geomeanMetric(b, tables[0], "geomean-mtswpT")
}

func BenchmarkFig12EarlyAndBandwidth(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkFig13HardwarePrefetchers(b *testing.B) {
	tables := runExperiment(b, "fig13")
	geomeanMetric(b, tables[1], "geomean-enhanced-ghb")
}

func BenchmarkFig14MTHWPAblation(b *testing.B) {
	tables := runExperiment(b, "fig14")
	geomeanMetric(b, tables[0], "geomean-mthwp")
}

func BenchmarkFig15HWThrottle(b *testing.B) {
	tables := runExperiment(b, "fig15")
	geomeanMetric(b, tables[0], "geomean-mthwpT")
}

func BenchmarkFig16CacheSize(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17Distance(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFig18Cores(b *testing.B)     { runExperiment(b, "fig18") }

func BenchmarkGSTableSavings(b *testing.B) { runExperiment(b, "gstable") }

func BenchmarkThresholdSensitivity(b *testing.B) { runExperiment(b, "thresholds") }
func BenchmarkMTAMLValidation(b *testing.B)      { runExperiment(b, "mtaml") }

// benchmarkSweepWorkers regenerates one sensitivity sweep at the given
// worker-pool size, so `go test -bench=Sweep` records how the parallel
// harness scales. Waves=1 keeps a single iteration affordable.
func benchmarkSweepWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	e := harness.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	subset := true
	cfg := harness.Config{Waves: 1, Subset: &subset, Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17SweepJ1(b *testing.B) { benchmarkSweepWorkers(b, "fig17", 1) }
func BenchmarkFig17SweepJ2(b *testing.B) { benchmarkSweepWorkers(b, "fig17", 2) }
func BenchmarkFig17SweepJ4(b *testing.B) { benchmarkSweepWorkers(b, "fig17", 4) }
func BenchmarkFig16SweepJ1(b *testing.B) { benchmarkSweepWorkers(b, "fig16", 1) }
func BenchmarkFig16SweepJ4(b *testing.B) { benchmarkSweepWorkers(b, "fig16", 4) }

// BenchmarkSweepParallelSpeedup times the fig17 sweep at -j 1 and -j 4
// back to back and reports the wall-clock ratio as the headline
// "speedup-j4" metric (expect ~min(4, GOMAXPROCS) on an idle machine;
// on a single-CPU host the pool adds no parallelism and the ratio
// stays ~1).
func BenchmarkSweepParallelSpeedup(b *testing.B) {
	e := harness.ByID("fig17")
	subset := true
	var speedup float64
	for i := 0; i < b.N; i++ {
		seqStart := time.Now()
		if _, err := e.Run(harness.Config{Waves: 1, Subset: &subset, Workers: 1}); err != nil {
			b.Fatal(err)
		}
		seq := time.Since(seqStart)
		parStart := time.Now()
		if _, err := e.Run(harness.Config{Waves: 1, Subset: &subset, Workers: 4}); err != nil {
			b.Fatal(err)
		}
		par := time.Since(parStart)
		speedup = seq.Seconds() / par.Seconds()
	}
	b.ReportMetric(speedup, "speedup-j4")
}
