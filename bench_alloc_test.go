package mtprefetch_test

import (
	"runtime"
	"testing"
	"time"

	"mtprefetch/internal/core"
	"mtprefetch/internal/obs"
	"mtprefetch/internal/workload"
)

// Allocation benchmarks: `make bench-alloc` runs these and archives the
// result as BENCH_alloc.json, which cmd/benchjson gates against the
// committed per-benchmark budgets in ci/alloc_budget.json. The tentpole
// claim they guard is that the steady-state simulation loop stays off
// the allocator: flat warp state, ring-buffered queues, free-listed
// requests and DRAM entries, and arena-carved observability epochs.

// benchCoreAlloc times complete simulations of one benchmark with the
// observability sinks configured per cfg (nil detaches them entirely),
// reporting simulation throughput alongside the -benchmem allocation
// columns the budget gate reads.
func benchCoreAlloc(b *testing.B, name string, cfg *obs.Config) {
	spec := coreBenchSpec(b, name)
	b.ReportAllocs()
	var cycles uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		o := core.Options{Workload: spec}
		if cfg != nil {
			o.Obs = obs.New(*cfg)
		}
		sim, err := core.New(o)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(cycles)/elapsed, "cycles/s")
	}
}

// BenchmarkCoreAlloc covers one benchmark per Table III access type
// (stride, merge-path, uncoalesced), with and without observability, so
// the budget file pins the allocation floor of each traffic shape.
func BenchmarkCoreAlloc(b *testing.B) {
	obsCfg := obs.Config{CPIStack: true, CPIEpoch: 1 << 40}
	for _, name := range []string{"black", "stream", "bfs"} {
		name := name
		b.Run(name+"/obs", func(b *testing.B) { benchCoreAlloc(b, name, &obsCfg) })
		b.Run(name+"/noobs", func(b *testing.B) { benchCoreAlloc(b, name, nil) })
	}
	// spansoff pins span tracing's zero-cost contract in the allocator
	// dimension: an attached observer with Spans explicitly off shares
	// the plain obs budget, even though every request-path stamp site now
	// runs its nil-check. (Spans-on is deliberately unbudgeted — sampled
	// span records allocate by design.)
	spansOff := obs.Config{CPIStack: true, CPIEpoch: 1 << 40, Spans: false}
	b.Run("black/spansoff", func(b *testing.B) { benchCoreAlloc(b, "black", &spansOff) })
}

// measureRun runs one complete simulation of spec with obs detached and
// returns the heap allocations it performed and the cycles it actually
// visited (skipped spans excluded — skipped cycles do no per-cycle work,
// so counting them would dilute the per-cycle allocation rate).
func measureRun(t *testing.T, spec *workload.Spec) (allocs, visited uint64) {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sim, err := core.New(core.Options{Workload: spec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, res.Cycles - sim.SkippedCycles()
}

// TestSteadyStateAllocs is the AllocsPerRun-style gate on the tentpole
// claim itself: with observability detached, the post-warmup simulation
// loop performs ~0 allocations per visited cycle. Comparing a short and
// a long run of the same workload cancels the setup cost (both pay the
// same machine construction and warm-up ramp), so the differential
// isolates the steady-state rate. The threshold of 0.01 allocs per
// extra visited cycle allows stragglers like late free-list growth
// while failing two orders of magnitude below the naive per-cycle
// allocation pattern this guards against.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-wave simulation runs")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, name := range []string{"black", "stream"} {
		full := workload.ByName(name)
		target := 14 * full.MaxBlocksPerCore
		short := full.Scaled(full.Blocks / (target * 2))
		long := full.Scaled(full.Blocks / (target * 6))

		// Warm the process (lazy runtime structures, one-time pools held
		// in package state) so neither measured run pays first-use costs.
		measureRun(t, short)

		// Take the best of three trials: an unlucky GC or background
		// runtime allocation can inflate one differential, but cannot
		// deflate it — the minimum is the honest steady-state rate.
		best := 1e18
		for trial := 0; trial < 3 && best > 0.01; trial++ {
			shortAllocs, shortVisited := measureRun(t, short)
			longAllocs, longVisited := measureRun(t, long)
			if longVisited <= shortVisited {
				t.Fatalf("%s: long run visited %d cycles <= short run's %d", name, longVisited, shortVisited)
			}
			extra := float64(longAllocs) - float64(shortAllocs)
			if rate := extra / float64(longVisited-shortVisited); rate < best {
				best = rate
			}
		}
		if best > 0.01 {
			t.Errorf("%s: steady state allocates %.4f objects per visited cycle, want <= 0.01", name, best)
		}
	}
}
