// Ablation benchmarks for the design decisions DESIGN.md calls out, plus
// the implemented extensions. Each reports its effect as a speedup metric:
//
//	go test -bench=Ablation -benchmem
package mtprefetch_test

import (
	"testing"

	"mtprefetch/internal/config"
	"mtprefetch/internal/core"
	"mtprefetch/internal/prefetch"
	"mtprefetch/internal/swpref"
	"mtprefetch/internal/workload"
)

func ablationSpec(b *testing.B, name string) *workload.Spec {
	b.Helper()
	s := workload.ByName(name)
	if s == nil {
		b.Fatalf("unknown benchmark %s", name)
	}
	return s.Scaled(s.Blocks / (14 * s.MaxBlocksPerCore * 2))
}

func ablationRun(b *testing.B, o core.Options) *core.Result {
	b.Helper()
	r, err := core.Run(o)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// mthwpFactory builds the paper's full MT-HWP.
func mthwpFactory() prefetch.Prefetcher {
	return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true})
}

// BenchmarkAblationScheduler compares switch-on-stall (the paper's
// scheduler) against per-instruction round-robin under MT-HWP.
func BenchmarkAblationScheduler(b *testing.B) {
	spec := ablationSpec(b, "mersenne")
	for i := 0; i < b.N; i++ {
		sos := ablationRun(b, core.Options{Workload: spec, Hardware: mthwpFactory})
		cfg := config.Baseline()
		cfg.Scheduler = config.RoundRobin
		rr := ablationRun(b, core.Options{Config: cfg, Workload: spec, Hardware: mthwpFactory})
		b.ReportMetric(float64(rr.Cycles)/float64(sos.Cycles), "rr-vs-sos-cycles")
	}
}

// BenchmarkAblationAgePromote measures the DRAM prefetch age-promotion
// mechanism: without it, strict demand priority starves prefetches.
func BenchmarkAblationAgePromote(b *testing.B) {
	spec := ablationSpec(b, "monte")
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, core.Options{Workload: spec})
		with := ablationRun(b, core.Options{Workload: spec, Software: swpref.Stride})
		cfg := config.Baseline()
		cfg.DRAMAgePromote = 0
		without := ablationRun(b, core.Options{Config: cfg, Workload: spec, Software: swpref.Stride})
		b.ReportMetric(with.Speedup(base), "speedup-with-promote")
		b.ReportMetric(without.Speedup(base), "speedup-without")
	}
}

// BenchmarkAblationMRQReserve measures the MRQ prefetch reservation:
// without reserved entries, demand traffic starves the prefetcher at the
// queue.
func BenchmarkAblationMRQReserve(b *testing.B) {
	spec := ablationSpec(b, "monte")
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, core.Options{Workload: spec})
		with := ablationRun(b, core.Options{Workload: spec, Software: swpref.Stride})
		cfg := config.Baseline()
		cfg.MRQSize = cfg.MRQSize - cfg.MRQPrefetchReserve
		cfg.MRQPrefetchReserve = 0
		without := ablationRun(b, core.Options{Config: cfg, Workload: spec, Software: swpref.Stride})
		b.ReportMetric(with.Speedup(base), "speedup-with-reserve")
		b.ReportMetric(without.Speedup(base), "speedup-without")
	}
}

// BenchmarkAblationHarmControl compares the paper's adaptive throttle
// against the related-work pollution filter (Zhuang & Lee) on a
// pollution-heavy workload.
func BenchmarkAblationHarmControl(b *testing.B) {
	spec := ablationSpec(b, "scalar")
	cfg := config.Baseline()
	cfg.ThrottlePeriod = 10_000
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, core.Options{Config: cfg, Workload: spec})
		blind := ablationRun(b, core.Options{Config: cfg, Workload: spec, Software: swpref.IP})
		throttled := ablationRun(b, core.Options{Config: cfg, Workload: spec, Software: swpref.IP, Throttle: true})
		filtered := ablationRun(b, core.Options{Config: cfg, Workload: spec, Software: swpref.IP, PollutionFilter: true})
		b.ReportMetric(blind.Speedup(base), "blind")
		b.ReportMetric(throttled.Speedup(base), "throttle")
		b.ReportMetric(filtered.Speedup(base), "pollution-filter")
	}
}

// BenchmarkAblationL2 measures the Section XI future-work extension: a
// shared L2 slice at the memory controllers, with and without MT-HWP on
// top.
func BenchmarkAblationL2(b *testing.B) {
	spec := ablationSpec(b, "sepia")
	cfg := config.Baseline()
	cfg.L2Bytes = 512 * 1024
	cfg.L2Ways = 16
	cfg.L2HitLatency = 20
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, core.Options{Workload: spec})
		l2 := ablationRun(b, core.Options{Config: cfg, Workload: spec})
		both := ablationRun(b, core.Options{Config: cfg, Workload: spec, Hardware: mthwpFactory})
		b.ReportMetric(l2.Speedup(base), "l2-only")
		b.ReportMetric(both.Speedup(base), "l2+mthwp")
	}
}

// BenchmarkAblationGHBLocalization compares CZone (AC/DC) vs PC (PC/DC)
// localization of the GHB.
func BenchmarkAblationGHBLocalization(b *testing.B) {
	spec := ablationSpec(b, "scalar")
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, core.Options{Workload: spec})
		acdc := ablationRun(b, core.Options{Workload: spec, Hardware: func() prefetch.Prefetcher {
			return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true})
		}})
		pcdc := ablationRun(b, core.Options{Workload: spec, Hardware: func() prefetch.Prefetcher {
			return prefetch.NewGHB(prefetch.GHBOptions{WarpAware: true, PCLocalized: true})
		}})
		b.ReportMetric(acdc.Speedup(base), "acdc")
		b.ReportMetric(pcdc.Speedup(base), "pcdc")
	}
}

// BenchmarkAblationPrefetchDegree sweeps the prefetch degree of MT-HWP.
func BenchmarkAblationPrefetchDegree(b *testing.B) {
	spec := ablationSpec(b, "mersenne")
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, core.Options{Workload: spec})
		for _, deg := range []int{1, 2, 4} {
			d := deg
			r := ablationRun(b, core.Options{Workload: spec, Hardware: func() prefetch.Prefetcher {
				return prefetch.NewMTHWP(prefetch.MTHWPOptions{EnableGS: true, EnableIP: true, Degree: d})
			}})
			b.ReportMetric(r.Speedup(base), map[int]string{1: "deg1", 2: "deg2", 4: "deg4"}[deg])
		}
	}
}
